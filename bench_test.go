// Package ecost's benchmark harness regenerates every table and figure
// of the paper's evaluation under `go test -bench=.`: one benchmark per
// artifact, each reporting the headline fidelity number as a custom
// metric alongside the usual ns/op.
//
// The shared environment (database + trained models) is built once on
// first use with the full-fidelity options; set -short to use the fast
// (coarse) environment instead.
package ecost

import (
	"os"
	"sync"
	"testing"

	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/mapreduce"
	"ecost/internal/workloads"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
)

func benchOptions() experiments.Options {
	if testing.Short() {
		return experiments.FastOptions()
	}
	return experiments.DefaultOptions()
}

// env returns the shared benchmark environment. Set ECOST_BENCH_CACHE
// to a directory to persist the built database and trained models
// across runs (CI caches it keyed on the source hash).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		opt := benchOptions()
		var e *experiments.Env
		var err error
		if dir := os.Getenv("ECOST_BENCH_CACHE"); dir != "" {
			e, _, err = experiments.LoadOrBuildEnv(opt, dir)
		} else {
			e, err = experiments.NewEnv(opt)
		}
		if err != nil {
			panic(err)
		}
		benchEnv = e
	})
	return benchEnv
}

// BenchmarkEnvBuild measures the full offline pipeline — profiling,
// the COLAO searches, the training-row sweeps and model training — the
// cost the parallel build and the artifact cache attack. It always
// builds from scratch (no cache), so ns/op is the cold-start cost at
// the current GOMAXPROCS.
func BenchmarkEnvBuild(b *testing.B) {
	opt := benchOptions()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NewEnv(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1PCA regenerates Figure 1 (PCA + clustering of the 14
// feature metrics) and reports the PC1+PC2 explained variance.
func BenchmarkFig1PCA(b *testing.B) {
	e := env(b)
	var explained float64
	for i := 0; i < b.N; i++ {
		_, data, err := experiments.Fig1PCA(e)
		if err != nil {
			b.Fatal(err)
		}
		explained = data.ExplainedPC2
	}
	b.ReportMetric(100*explained, "PC1+PC2_%")
}

// BenchmarkFig2EDPImprovement regenerates Figure 2 and reports the
// concurrent-tuning improvement range.
func BenchmarkFig2EDPImprovement(b *testing.B) {
	e := env(b)
	var d experiments.Fig2Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Fig2EDPImprovement(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.RangeMin, "cvi_min_%")
	b.ReportMetric(d.RangeMax, "cvi_max_%")
	b.ReportMetric(d.Concurrent[0], "concurrent_m1_%")
	b.ReportMetric(d.Concurrent[7], "concurrent_m8_%")
}

// BenchmarkFig3ColaoVsIlao regenerates Figure 3 and reports the largest
// ILAO/COLAO gap (paper: 4.52× at I-I).
func BenchmarkFig3ColaoVsIlao(b *testing.B) {
	e := env(b)
	var d experiments.Fig3Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Fig3ColaoVsIlao(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.MaxRatio, "max_ILAO/COLAO")
	b.ReportMetric(d.Ratio[core.NewClassPair(workloads.IOBound, workloads.IOBound)], "II_ratio")
	b.ReportMetric(d.Ratio[core.NewClassPair(workloads.MemBound, workloads.MemBound)], "MM_ratio")
}

// BenchmarkFig5PriorityRanking regenerates Figure 5 and reports the
// benefit of the top-ranked pair.
func BenchmarkFig5PriorityRanking(b *testing.B) {
	e := env(b)
	var d experiments.Fig5Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Fig5PriorityRanking(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Ranking[0].Benefit, "top_pair_benefit")
}

// BenchmarkTable1ModelAPE regenerates Table 1 and reports each model's
// average training APE (paper: LR 55.2%, REPTree 4.38%, MLP 0.77%).
func BenchmarkTable1ModelAPE(b *testing.B) {
	e := env(b)
	var d experiments.Table1Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Table1ModelAPE(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Average["LR"], "LR_APE_%")
	b.ReportMetric(d.Average["REPTree"], "REPTree_APE_%")
	b.ReportMetric(d.Average["MLP"], "MLP_APE_%")
}

// BenchmarkTable2PredictedConfigs regenerates Table 2 and reports each
// technique's mean EDP error versus the COLAO oracle
// (paper §7.1: LkT 8.09%, LR 20.37%, REPTree 3.84%, MLP 3.43%).
func BenchmarkTable2PredictedConfigs(b *testing.B) {
	e := env(b)
	var d experiments.Table2Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Table2PredictedConfigs(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Mean["LkT"], "LkT_err_%")
	b.ReportMetric(d.Mean["LR"], "LR_err_%")
	b.ReportMetric(d.Mean["REPTree"], "REPTree_err_%")
	b.ReportMetric(d.Mean["MLP"], "MLP_err_%")
}

// BenchmarkFig8Overheads regenerates Figure 8 (training and prediction
// time of the STP techniques).
func BenchmarkFig8Overheads(b *testing.B) {
	e := env(b)
	var d experiments.Fig8Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Fig8Overheads(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.PredictTime["LkT"].Microseconds()), "LkT_predict_us")
	b.ReportMetric(float64(d.PredictTime["MLP"].Microseconds()), "MLP_predict_us")
	b.ReportMetric(d.TrainTime["MLP"].Seconds(), "MLP_train_s")
}

// BenchmarkFig9MappingPolicies regenerates Figure 9 across 1/2/4/8 nodes
// and reports the ECoST-vs-UB gap at 1 and 8 nodes (paper: ~4% and ~8%).
func BenchmarkFig9MappingPolicies(b *testing.B) {
	e := env(b)
	var d experiments.Fig9Data
	for i := 0; i < b.N; i++ {
		var err error
		_, d, err = experiments.Fig9MappingPolicies(e, []int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.ECoSTGap[1], "gap_1node_%")
	b.ReportMetric(d.ECoSTGap[8], "gap_8node_%")
}

// BenchmarkOracleCOLAO measures one brute-force joint tuning search
// (11,200 model evaluations) — the cost ECoST's prediction replaces.
func BenchmarkOracleCOLAO(b *testing.B) {
	e := env(b)
	a := workloads.MustByName("gp")
	c := workloads.MustByName("km")
	for i := 0; i < b.N; i++ {
		fresh := core.NewOracle(e.Model)
		if _, err := fresh.COLAO(a, 5120, c, 5120); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTPPredict measures one online tuning decision with the
// paper's preferred model (REPTree).
func BenchmarkSTPPredict(b *testing.B) {
	e := env(b)
	oa, err := e.Observe(workloads.MustByName("nb"), 5)
	if err != nil {
		b.Fatal(err)
	}
	ob, err := e.Observe(workloads.MustByName("cf"), 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.REPTree.PredictBest(oa, ob); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelPairEval measures a single execution-model evaluation —
// the unit cost every search above is built from.
func BenchmarkModelPairEval(b *testing.B) {
	e := env(b)
	a := workloads.MustByName("wc")
	c := workloads.MustByName("st")
	cfg := [2]mapreduce.Config{
		{Freq: 2.4, Block: 256, Mappers: 4},
		{Freq: 1.6, Block: 512, Mappers: 4},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Oracle.EvalPair(a, 10240, c, 10240, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

package experiments

import (
	"fmt"
	"time"

	"ecost/internal/core"
	"ecost/internal/workloads"
)

// Fig8Data holds the measured STP overheads.
type Fig8Data struct {
	// TrainTime per technique. For LkT, "training" is the brute-force
	// population of the lookup table (the COLAO searches of the database
	// build), which is what the paper charges it with.
	TrainTime map[string]time.Duration
	// PredictTime is the mean per-decision latency of PredictBest.
	PredictTime map[string]time.Duration
}

// Fig8Overheads reproduces Figure 8: training time and prediction time
// of the studied STP techniques, measured on this machine.
func Fig8Overheads(env *Env) (Table, Fig8Data, error) {
	data := Fig8Data{
		TrainTime:   map[string]time.Duration{},
		PredictTime: map[string]time.Duration{},
	}
	// Training time: the MLM models record theirs; LkT's is the COLAO
	// database population, re-measured on a representative entry and
	// scaled to the entry count.
	start := time.Now()
	a := workloads.MustByName("wc")
	b := workloads.MustByName("ts")
	probe := core.NewOracle(env.Model) // fresh, unmemoized
	if _, err := probe.COLAO(a, 5*1024, b, 5*1024); err != nil {
		return Table{}, data, err
	}
	perEntry := time.Since(start)
	data.TrainTime["LkT"] = perEntry * time.Duration(len(env.DB.Entries))
	data.TrainTime["LR"] = env.LR.TrainTime()
	data.TrainTime["REPTree"] = env.REPTree.TrainTime()
	data.TrainTime["MLP"] = env.MLP.TrainTime()

	// Prediction time: average over a handful of unknown pairs.
	pairs := DefaultTestPairs()
	if len(pairs) > 4 {
		pairs = pairs[:4]
	}
	for _, s := range env.STPs() {
		var total time.Duration
		n := 0
		for _, tp := range pairs {
			appA := workloads.MustByName(tp.NameA)
			appB := workloads.MustByName(tp.NameB)
			oa, err := env.Observe(appA, tp.SizeA)
			if err != nil {
				return Table{}, data, err
			}
			ob, err := env.Observe(appB, tp.SizeB)
			if err != nil {
				return Table{}, data, err
			}
			t0 := time.Now()
			if _, err := s.PredictBest(oa, ob); err != nil {
				return Table{}, data, err
			}
			total += time.Since(t0)
			n++
		}
		data.PredictTime[s.Name()] = total / time.Duration(n)
	}

	tbl := Table{
		Title:  "Figure 8: (a) training and (b) prediction time of the STP techniques",
		Header: []string{"technique", "training", "prediction"},
	}
	for _, name := range []string{"LkT", "LR", "REPTree", "MLP"} {
		tbl.AddRow(name, data.TrainTime[name].Round(time.Millisecond).String(),
			data.PredictTime[name].Round(time.Microsecond).String())
	}
	tbl.Notes = append(tbl.Notes,
		"paper (on the study machine): training LR 0.13s, REPTree 0.06s, LkT 15s, MLP 77.8s;"+
			" prediction: LkT fastest, MLP slowest",
		fmt.Sprintf("LkT training = %d COLAO searches (brute-force table population)", len(env.DB.Entries)))
	return tbl, data, nil
}

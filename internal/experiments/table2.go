package experiments

import (
	"fmt"

	"ecost/internal/core"
	"ecost/internal/workloads"
)

// TestPair names one co-located testing workload (unknown applications).
type TestPair struct {
	NameA string
	SizeA float64
	NameB string
	SizeB float64
}

// DefaultTestPairs mirrors Table 2's subset of studied testing
// workloads: a spread of class combinations built from the unknown
// applications (NB, CF, SVM, PR, HMM, KM).
func DefaultTestPairs() []TestPair {
	return []TestPair{
		{"pr", 5, "pr", 5},    // H-H
		{"svm", 5, "km", 5},   // C-M
		{"nb", 5, "cf", 5},    // C-M (paper lists several M rows)
		{"pr", 10, "km", 10},  // H-M
		{"pr", 5, "hmm", 5},   // H-C
		{"pr", 10, "pr", 10},  // H-H
		{"hmm", 10, "cf", 10}, // C-M
		{"cf", 5, "km", 5},    // M-M
		{"nb", 1, "svm", 1},   // C-C
		{"svm", 10, "pr", 10}, // C-H
	}
}

// Table2Data holds the error of every STP technique against the COLAO
// oracle on the testing pairs.
type Table2Data struct {
	// Err[technique] lists per-pair EDP error percentages (chosen config
	// vs brute-force optimum).
	Err map[string][]float64
	// Mean[technique] is the average error — §7.1 reports LkT 8.09%,
	// LR 20.37%, REPTree 3.84%, MLP 3.43%.
	Mean map[string]float64
	// Worst[technique] is the maximum error (paper: 16% worst case for
	// REPTree/MLP).
	Worst map[string]float64
}

// Table2PredictedConfigs reproduces Table 2: for each testing pair, the
// configuration chosen by COLAO (oracle) and by each STP technique, and
// the relative EDP error of the technique's choice.
func Table2PredictedConfigs(env *Env) (Table, Table2Data, error) {
	return Table2On(env, DefaultTestPairs())
}

// Table2On runs the Table-2 comparison on a custom set of pairs.
func Table2On(env *Env, pairs []TestPair) (Table, Table2Data, error) {
	data := Table2Data{
		Err:   map[string][]float64{},
		Mean:  map[string]float64{},
		Worst: map[string]float64{},
	}
	stps := env.STPs()
	tbl := Table{
		Title: "Table 2: predicted configurations and EDP error vs COLAO (testing pairs)",
		Header: []string{"pair", "classes", "COLAO (f,h,m|f,h,m)",
			"LkT", "LR", "REPTree", "MLP",
			"LkT err%", "LR err%", "REPTree err%", "MLP err%"},
	}
	for _, tp := range pairs {
		a, err := workloads.ByName(tp.NameA)
		if err != nil {
			return Table{}, data, err
		}
		b, err := workloads.ByName(tp.NameB)
		if err != nil {
			return Table{}, data, err
		}
		oa, err := env.Observe(a, tp.SizeA)
		if err != nil {
			return Table{}, data, err
		}
		ob, err := env.Observe(b, tp.SizeB)
		if err != nil {
			return Table{}, data, err
		}
		colao, err := env.Oracle.COLAO(a, tp.SizeA*1024, b, tp.SizeB*1024)
		if err != nil {
			return Table{}, data, err
		}
		cells := []any{
			fmt.Sprintf("%s(%g)+%s(%g)", a.Name, tp.SizeA, b.Name, tp.SizeB),
			core.NewClassPair(a.Class, b.Class).String(),
			colao.Cfg[0].String() + "|" + colao.Cfg[1].String(),
		}
		var errs []any
		for _, s := range stps {
			cfg, err := s.PredictBest(oa, ob)
			if err != nil {
				return Table{}, data, err
			}
			out, err := env.Oracle.EvalPair(a, tp.SizeA*1024, b, tp.SizeB*1024, cfg)
			if err != nil {
				return Table{}, data, err
			}
			errPct := 100 * (out.EDP - colao.Out.EDP) / colao.Out.EDP
			data.Err[s.Name()] = append(data.Err[s.Name()], errPct)
			cells = append(cells, cfg[0].String()+"|"+cfg[1].String())
			errs = append(errs, errPct)
		}
		cells = append(cells, errs...)
		tbl.AddRow(cells...)
	}
	for name, errs := range data.Err {
		var sum, worst float64
		for _, e := range errs {
			sum += e
			if e > worst {
				worst = e
			}
		}
		data.Mean[name] = sum / float64(len(errs))
		data.Worst[name] = worst
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("mean error: LkT %.2f%%, LR %.2f%%, REPTree %.2f%%, MLP %.2f%% (paper §7.1: 8.09 / 20.37 / 3.84 / 3.43)",
			data.Mean["LkT"], data.Mean["LR"], data.Mean["REPTree"], data.Mean["MLP"]),
		fmt.Sprintf("worst case: LkT %.1f%%, LR %.1f%%, REPTree %.1f%%, MLP %.1f%%",
			data.Worst["LkT"], data.Worst["LR"], data.Worst["REPTree"], data.Worst["MLP"]))
	return tbl, data, nil
}

package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a renderable experiment artifact: the rows/series a paper
// table or figure reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells with %v (floats get
// compact %.4g formatting).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the table as CSV (header row first, notes as trailing
// comment-style rows) for downstream plotting.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package experiments

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/mapreduce"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// On-disk Env artifact cache: building the full-fidelity Env (stride-1
// database plus three trained model families) dominates the wall time
// of cmd/ecost-bench and every benchmark run, yet its output is a pure
// function of the options and the workload roster. The cache persists
// the expensive artifacts — database entries and trained models — keyed
// by a hash of everything that determines them, so repeat runs skip
// straight to the experiments. Training rows are NOT cached (a stride-1
// database carries millions); Env.EnsureRows regenerates them on demand
// for the one experiment that needs them.

// envCacheVersion invalidates every cached artifact when the build
// pipeline's output format or semantics change. Bump it whenever the
// database contents, the training-row definition, or any model's
// training procedure changes.
const envCacheVersion = 2

// cacheKey fingerprints everything the cached artifacts depend on:
// the format version, the build options, the training workload roster
// (names, classes, profile identity via name), the size grid, and the
// node spec the execution model is calibrated to.
func cacheKey(opt Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d|seed=%d|stride=%d|mlp=%d/%d|",
		envCacheVersion, opt.Seed, opt.ConfigStride, opt.MLPEpochs, opt.MLPRowStride)
	for _, app := range workloads.Training() {
		fmt.Fprintf(h, "app=%s/%d|", app.Name, app.Class)
	}
	for _, s := range workloads.DataSizesGB() {
		fmt.Fprintf(h, "size=%g|", s)
	}
	spec := cluster.AtomC2758()
	fmt.Fprintf(h, "node=%+v|", spec)
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

// envManifest records what a cache entry holds.
type envManifest struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Seed    int64  `json:"seed"`
	Stride  int    `json:"config_stride"`
}

const (
	manifestFile = "manifest.json"
	databaseFile = "database.json"
)

func modelFile(name string) string { return "model-" + name + ".json" }

// CacheDir returns the cache entry directory for the given options
// under root (informational; LoadOrBuildEnv manages it).
func CacheDir(root string, opt Options) string {
	return filepath.Join(root, "env-"+cacheKey(opt.withDefaults()))
}

// LoadOrBuildEnv returns the Env for opt, loading the database and
// trained models from the cache under root when a valid entry exists
// and building (then populating the cache) otherwise. The second
// return reports a cache hit. A loaded Env is experiment-equivalent to
// a built one: the profiler noise stream, database entries, classifier
// and model predictions are identical; only DB.Rows starts empty (see
// Env.EnsureRows).
func LoadOrBuildEnv(opt Options, root string) (*Env, bool, error) {
	opt = opt.withDefaults()
	dir := CacheDir(root, opt)
	if env, err := loadEnv(opt, dir); err == nil {
		return env, true, nil
	} else if !os.IsNotExist(err) {
		// A corrupt or stale entry is discarded and rebuilt, not fatal.
		os.RemoveAll(dir)
	}
	env, err := NewEnv(opt)
	if err != nil {
		return nil, false, err
	}
	if err := saveEnv(env, opt, dir); err != nil {
		// The Env itself is fine; a read-only cache dir just means the
		// next run rebuilds too.
		os.RemoveAll(dir)
		return env, false, nil
	}
	return env, false, nil
}

// loadEnv reconstructs an Env from one cache entry. The manifest is
// written last, so its presence marks a complete entry.
func loadEnv(opt Options, dir string) (*Env, error) {
	mf, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, err
	}
	var man envManifest
	if err := json.Unmarshal(mf, &man); err != nil {
		return nil, fmt.Errorf("experiments: cache manifest: %w", err)
	}
	if man.Version != envCacheVersion || man.Key != cacheKey(opt) {
		return nil, fmt.Errorf("experiments: cache entry %s is stale", dir)
	}
	model := mapreduce.NewModel(cluster.AtomC2758())
	oracle := core.NewOracle(model)
	profiler := core.NewProfiler(model, sim.NewRNG(opt.Seed))
	df, err := os.Open(filepath.Join(dir, databaseFile))
	if err != nil {
		return nil, err
	}
	defer df.Close()
	db, err := core.LoadDatabase(df, oracle)
	if err != nil {
		return nil, err
	}
	env := &Env{
		Model:    model,
		Oracle:   oracle,
		Profiler: profiler,
		DB:       db,
		LkT:      &core.LkTSTP{DB: db},
		Seed:     opt.Seed,
		opt:      opt,
	}
	for _, slot := range []struct {
		name string
		dst  **core.MLMSTP
	}{{"LR", &env.LR}, {"REPTree", &env.REPTree}, {"MLP", &env.MLP}} {
		f, err := os.Open(filepath.Join(dir, modelFile(slot.name)))
		if err != nil {
			return nil, err
		}
		s, err := core.LoadMLMSTP(f, db)
		f.Close()
		if err != nil {
			return nil, err
		}
		*slot.dst = s
	}
	return env, nil
}

// saveEnv writes one cache entry: database, models, then the manifest.
func saveEnv(env *Env, opt Options, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	df, err := os.Create(filepath.Join(dir, databaseFile))
	if err != nil {
		return err
	}
	if err := env.DB.SaveDatabase(df); err != nil {
		df.Close()
		return err
	}
	if err := df.Close(); err != nil {
		return err
	}
	for _, s := range []*core.MLMSTP{env.LR, env.REPTree, env.MLP} {
		f, err := os.Create(filepath.Join(dir, modelFile(s.Name())))
		if err != nil {
			return err
		}
		if err := s.SaveModels(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	man, err := json.Marshal(envManifest{
		Version: envCacheVersion,
		Key:     cacheKey(opt),
		Seed:    opt.Seed,
		Stride:  opt.ConfigStride,
	})
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestFile), man, 0o644)
}

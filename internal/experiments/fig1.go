package experiments

import (
	"fmt"
	"sort"

	"ecost/internal/ml"
	"ecost/internal/perfctr"
	"ecost/internal/workloads"
)

// Fig1Data is the structured result of the Figure-1 reproduction.
type Fig1Data struct {
	// ExplainedPC2 is the variance fraction captured by PC1+PC2
	// (the paper reports 85.22%).
	ExplainedPC2 float64
	// Loadings[i] is metric i's (PC1, PC2) coordinate — the scatter the
	// paper plots.
	Loadings [][]float64
	// Cluster[i] is metric i's group after hierarchical clustering into
	// 7 clusters.
	Cluster []int
	// Representatives holds one metric per cluster (the retained
	// feature set; the paper keeps CPUuser, CPUiowait, I/O read, I/O
	// write, IPC, memory footprint, LLC MPKI).
	Representatives []perfctr.Metric
}

// Fig1PCA reproduces Figure 1: the feature matrix over all applications
// and sizes is standardized, projected with PCA, and the 14 metrics'
// PC1/PC2 loadings are clustered hierarchically to find the redundant
// groups.
func Fig1PCA(env *Env) (Table, Fig1Data, error) {
	var data Fig1Data

	// Feature matrix: every application × size, noise-free observation
	// (the paper averages repeated runs).
	var X [][]float64
	for _, app := range workloads.Apps() {
		for _, size := range workloads.DataSizesGB() {
			o, err := env.Profiler.ObserveExact(app, size)
			if err != nil {
				return Table{}, data, err
			}
			X = append(X, o.Features.Slice())
		}
	}
	pca, err := ml.FitPCA(X)
	if err != nil {
		return Table{}, data, err
	}
	data.ExplainedPC2 = pca.ExplainedVariance(2)
	data.Loadings = pca.Loadings(2)

	dg, err := ml.HClusterFit(data.Loadings, ml.AverageLinkage)
	if err != nil {
		return Table{}, data, err
	}
	data.Cluster = dg.Cut(7)

	// One representative per cluster: prefer the paper's retained
	// metrics where they fall in distinct clusters; otherwise the metric
	// with the largest loading magnitude.
	reduced := map[perfctr.Metric]bool{}
	for _, m := range perfctr.ReducedMetrics() {
		reduced[m] = true
	}
	repOf := map[int]perfctr.Metric{}
	for c := 0; c < 7; c++ {
		bestMag := -1.0
		var best perfctr.Metric
		havePreferred := false
		for i, cl := range data.Cluster {
			if cl != c {
				continue
			}
			m := perfctr.Metric(i)
			mag := data.Loadings[i][0]*data.Loadings[i][0] + data.Loadings[i][1]*data.Loadings[i][1]
			preferred := reduced[m]
			if (preferred && !havePreferred) || (preferred == havePreferred && mag > bestMag) {
				best, bestMag = m, mag
				havePreferred = havePreferred || preferred
			}
		}
		repOf[c] = best
	}
	clusters := make([]int, 0, len(repOf))
	for c := range repOf {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		data.Representatives = append(data.Representatives, repOf[c])
	}

	tbl := Table{
		Title:  "Figure 1: PCA of the 14 feature metrics (PC1/PC2 loadings + clusters)",
		Header: []string{"metric", "PC1", "PC2", "cluster"},
	}
	for i, name := range perfctr.MetricNames() {
		tbl.AddRow(name, data.Loadings[i][0], data.Loadings[i][1], data.Cluster[i])
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("PC1+PC2 explain %.2f%% of total variance (paper: 85.22%%)", 100*data.ExplainedPC2),
		fmt.Sprintf("retained representatives: %v (paper keeps %v)", data.Representatives, perfctr.ReducedMetrics()),
	)
	return tbl, data, nil
}

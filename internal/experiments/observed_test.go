package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"ecost/internal/core"
	"ecost/internal/metrics"
)

// observedExports renders every export surface of one observed run into
// a single byte string: merged shard-labeled Prometheus, per-shard
// metrics snapshots and audit JSONL, the merged Chrome trace and
// timeline (per-shard sections + merged section), the merged EDP
// report, the shard-health report, the epoch wide-event JSONL, the
// per-shard health rows, and the flight dumps.
func observedExports(t *testing.T, obs *ShardedObservation) string {
	t.Helper()
	var buf bytes.Buffer
	snaps := make([]metrics.Snapshot, len(obs.Registries))
	for i, reg := range obs.Registries {
		snaps[i] = reg.Snapshot(false)
	}
	if err := metrics.WritePrometheusSharded(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	for i, snap := range snaps {
		if err := snap.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if err := obs.Audits[i].WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := obs.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Trace.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Trace.Report().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Flight.Health().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Flight.WriteEpochs(&buf, -1); err != nil {
		t.Fatal(err)
	}
	if err := obs.Flight.WriteShards(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Flight.WriteDumps(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestOnlineScenarioShardedObservedGolden is the acceptance golden for
// the observed runner: a steal-on multi-shard scenario run completes
// coherently and every observability export — metrics, audit, health,
// epochs, dumps — is byte-identical at GOMAXPROCS 1 and 4.
func TestOnlineScenarioShardedObservedGolden(t *testing.T) {
	spec := scenarioSpec(24)
	cfg := core.ShardedConfig{Shards: 4, Steal: true}
	var base string
	var baseData OnlineData
	for i, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		tbl, data, qs, obs, err := OnlineScenarioShardedObserved(freshEnv(t), spec, 4, cfg)
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatal(err)
		}
		if data.Jobs != 24 || qs.Utilization <= 0 {
			t.Fatalf("GOMAXPROCS=%d: incoherent run: %+v / %+v", procs, data, qs)
		}
		if obs.Flight.Epochs() == 0 {
			t.Fatalf("GOMAXPROCS=%d: run recorded no barrier epochs", procs)
		}
		if len(obs.Registries) != cfg.Shards || len(obs.Audits) != cfg.Shards || obs.Trace.Shards() != cfg.Shards {
			t.Fatalf("GOMAXPROCS=%d: observation handles incomplete: %d regs, %d audits, %d tracers",
				procs, len(obs.Registries), len(obs.Audits), obs.Trace.Shards())
		}
		for _, want := range []string{"shards", "steals", "epochs", "flight dumps"} {
			if !strings.Contains(tbl.String(), want) {
				t.Errorf("table missing %q:\n%s", want, tbl.String())
			}
		}
		got := observedExports(t, obs)
		if i == 0 {
			base, baseData = got, data
			continue
		}
		if data != baseData {
			t.Fatalf("summary diverged across GOMAXPROCS:\n got %+v\nwant %+v", data, baseData)
		}
		if got != base {
			t.Fatal("observed exports diverged across GOMAXPROCS")
		}
	}
	// The merged exposition is present and labeled.
	if !strings.Contains(base, `shard="`) {
		t.Fatalf("exports carry no shard-labeled Prometheus families:\n%s", base[:min(2000, len(base))])
	}
	// The health report rendered with its header and per-shard rows.
	if !strings.Contains(base, "# shard health") {
		t.Fatal("exports missing the shard-health report")
	}
	// The merged trace exports rendered: per-shard timeline sections, the
	// merged global section, and the merged EDP attribution rollup.
	for _, want := range []string{"== shard 0 ==", "== merged ==", "# ecost merged trace timeline", "# ecost EDP attribution"} {
		if !strings.Contains(base, want) {
			t.Fatalf("exports missing %q", want)
		}
	}
}

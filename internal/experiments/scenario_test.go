package experiments

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/scenario"
	"ecost/internal/sim"
	"ecost/internal/trace"
	"ecost/internal/tracing"
)

// scenarioSpec is the small mixed-shape stream the scenario tests run:
// bursty arrivals, heavy-tailed sizes, recurring zipf tenants.
func scenarioSpec(jobs int) scenario.Spec {
	return scenario.Spec{
		Jobs: jobs,
		Seed: 17,
		Arrivals: scenario.ArrivalSpec{Kind: scenario.ArrivalMMPP,
			CalmMean: 400, BurstMean: 40, CalmStay: 0.9, BurstStay: 0.8},
		Sizes: scenario.SizeSpec{Kind: scenario.SizePareto, Alpha: 1.6, Min: 1, Max: 12},
		Mix:   scenario.MixSpec{Kind: scenario.MixZipf, S: 1.1, Tenants: 6},
	}
}

// instrumentedRun drives one fully-observed online run (metrics +
// tracing + audit, memoized metered LkT tuner — the same stack
// ecost-sim wires up) over an arrival stream and returns the three
// deterministic exports: the metrics snapshot text, the span timeline,
// and the decision JSONL.
func instrumentedRun(t *testing.T, env *Env, arrivals []trace.Arrival, nodes int) (snap, timeline, decisions string) {
	t.Helper()
	reg := metrics.NewRegistry()
	eng := sim.NewEngine()
	tr := tracing.New(eng.Clock())
	aud := audit.NewLog(audit.DriftConfig{})
	model := mapreduce.NewModel(cluster.AtomC2758())
	model.Metrics = reg
	tuner := core.NewMeteredSTP(core.NewMemoSTP(env.LkT, reg), model, reg)
	prof := core.NewProfiler(model, sim.NewRNG(env.Seed))
	sched, err := core.NewOnlineScheduler(eng, model, env.DB, tuner, prof, nodes)
	if err != nil {
		t.Fatal(err)
	}
	sched.SetMetrics(reg)
	sched.SetTracer(tr)
	sched.SetAudit(aud)
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	if _, _, err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	var snapBuf, tlBuf, decBuf bytes.Buffer
	if err := reg.Snapshot(false).WriteText(&snapBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTimeline(&tlBuf); err != nil {
		t.Fatal(err)
	}
	if err := aud.WriteJSONL(&decBuf); err != nil {
		t.Fatal(err)
	}
	return snapBuf.String(), tlBuf.String(), decBuf.String()
}

// TestRecordReplayGolden is the acceptance golden: a generated stream
// recorded to JSONL and replayed produces byte-identical metrics
// snapshot, span timeline and decision JSONL through the online
// scheduler, at GOMAXPROCS 1 and 4.
func TestRecordReplayGolden(t *testing.T) {
	env := sharedEnv(t)
	generated, err := scenario.Generate(scenarioSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	var rec bytes.Buffer
	if err := scenario.WriteTrace(&rec, generated); err != nil {
		t.Fatal(err)
	}
	replayed, err := scenario.ReadTrace(bytes.NewReader(rec.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		snapGen, tlGen, decGen := instrumentedRun(t, env, generated, 2)
		snapRep, tlRep, decRep := instrumentedRun(t, env, replayed, 2)
		if snapGen != snapRep {
			t.Fatalf("GOMAXPROCS=%d: metrics snapshot diverged between generated and replayed run", procs)
		}
		if tlGen != tlRep {
			t.Fatalf("GOMAXPROCS=%d: span timeline diverged between generated and replayed run", procs)
		}
		if decGen != decRep {
			t.Fatalf("GOMAXPROCS=%d: decision JSONL diverged between generated and replayed run", procs)
		}
		if !strings.Contains(tlGen, "job") {
			t.Fatal("timeline carries no job spans; the run did not execute")
		}
	}

	// Cross-GOMAXPROCS: the exports themselves must not depend on
	// parallelism either.
	runtime.GOMAXPROCS(1)
	s1, t1, d1 := instrumentedRun(t, env, generated, 2)
	runtime.GOMAXPROCS(4)
	s4, t4, d4 := instrumentedRun(t, env, generated, 2)
	if s1 != s4 || t1 != t4 || d1 != d4 {
		t.Fatal("instrumented exports diverged across GOMAXPROCS 1 vs 4")
	}
}

// TestOnlineScenarioStats: the scenario runner reports coherent
// queueing observables on a saturating stream.
func TestOnlineScenarioStats(t *testing.T) {
	env := sharedEnv(t)
	spec := scenarioSpec(20)
	tbl, data, qs, err := OnlineScenario(env, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if data.Jobs != 20 {
		t.Fatalf("ran %d jobs, want 20", data.Jobs)
	}
	if qs.Utilization <= 0 || qs.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", qs.Utilization)
	}
	if qs.SojournP50 > qs.SojournP95 || qs.SojournP95 > qs.SojournP99 {
		t.Fatalf("sojourn percentiles not monotone: %v %v %v", qs.SojournP50, qs.SojournP95, qs.SojournP99)
	}
	if qs.WaitP50 > qs.WaitP95 || qs.WaitP95 > qs.WaitP99 {
		t.Fatalf("wait percentiles not monotone: %v %v %v", qs.WaitP50, qs.WaitP95, qs.WaitP99)
	}
	if qs.SojournP99 <= 0 {
		t.Fatal("p99 sojourn is zero; jobs take time")
	}
	if float64(qs.MaxQueueLen) < qs.P95QueueLen || qs.P95QueueLen < 0 {
		t.Fatalf("queue-length stats incoherent: max %d p95 %v", qs.MaxQueueLen, qs.P95QueueLen)
	}
	s := tbl.String()
	for _, want := range []string{"utilization", "sojourn p50/p95/p99", "max queue length"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

// TestUtilizationCurve: sweeping the arrival tempo from idle to
// saturation raises utilization monotonically (within measurement
// slack) and keeps every point well-formed.
func TestUtilizationCurve(t *testing.T) {
	env := sharedEnv(t)
	base := scenarioSpec(16)
	tbl, points, err := UtilizationCurve(env, base, 2, []float64{2000, 400, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	for _, p := range points {
		if p.Utilization <= 0 || p.Utilization > 1 {
			t.Fatalf("gap %v: utilization %v outside (0, 1]", p.MeanGap, p.Utilization)
		}
		if p.EDP <= 0 {
			t.Fatalf("gap %v: EDP %v", p.MeanGap, p.EDP)
		}
	}
	// Faster arrivals pack the cluster tighter: the saturated end must
	// clearly exceed the idle end.
	if !(points[2].Utilization > points[0].Utilization) {
		t.Fatalf("utilization did not rise with load: %v vs %v", points[2].Utilization, points[0].Utilization)
	}
	if !strings.Contains(tbl.String(), "Utilization vs. EDP") {
		t.Errorf("table title missing:\n%s", tbl.String())
	}
}

// TestStreamStatsUnion pins the busy-time union on a hand-built
// completion set: two overlapping residents on one node must not
// double-count.
func TestStreamStatsUnion(t *testing.T) {
	done := []core.CompletedJob{
		{Node: 0, Submitted: 0, Started: 0, Finished: 10},
		{Node: 0, Submitted: 0, Started: 5, Finished: 15}, // overlaps 5..10
		{Node: 1, Submitted: 2, Started: 16, Finished: 20},
	}
	qs := StreamStats(done, 2, 20)
	// Node 0 busy 0..15 (15s), node 1 busy 16..20 (4s) → 19/40.
	if got, want := qs.Utilization, 19.0/40.0; got != want {
		t.Fatalf("utilization %v, want %v", got, want)
	}
	// Job 2 waits 0..5 and job 3 waits 2..16: depth 2 during 2..5.
	if qs.MaxQueueLen != 2 {
		t.Fatalf("max queue length %d, want 2", qs.MaxQueueLen)
	}
	// Depth timeline: 1 over 0..2, 2 over 2..5, 1 over 5..16, 0 after.
	if got, want := qs.MeanQueueLen, (2*1+3*2+11*1)/20.0; got != want {
		t.Fatalf("mean queue length %v, want %v", got, want)
	}
}

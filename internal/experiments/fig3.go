package experiments

import (
	"fmt"
	"sort"

	"ecost/internal/core"
	"ecost/internal/workloads"
)

// Fig3Data summarizes the COLAO-vs-ILAO comparison per class pair.
type Fig3Data struct {
	// Ratio maps each class pair to the mean ILAO/COLAO EDP ratio over
	// the training-application pairs at equal input sizes (>1 means
	// co-located tuning wins).
	Ratio map[core.ClassPair]float64
	// MaxRatio is the largest single-pair ratio observed (the paper
	// reports up to 4.52× for I-I).
	MaxRatio     float64
	MaxRatioPair string
}

// Fig3ColaoVsIlao reproduces Figure 3: for every pair of training
// applications with the same input data size, the EDP of COLAO
// (co-located, jointly brute-force tuned) normalized to ILAO (each app
// tuned alone and run serially).
func Fig3ColaoVsIlao(env *Env) (Table, Fig3Data, error) {
	data := Fig3Data{Ratio: map[core.ClassPair]float64{}}
	counts := map[core.ClassPair]int{}

	tbl := Table{
		Title:  "Figure 3: EDP of ILAO relative to COLAO, training pairs, equal input sizes",
		Header: []string{"pair", "size", "classes", "ILAO EDP", "COLAO EDP", "ILAO/COLAO"},
	}
	training := workloads.Training()
	for i, a := range training {
		for _, b := range training[i:] {
			for _, size := range workloads.DataSizesGB() {
				dataMB := size * 1024
				ilao, _, err := env.Oracle.ILAO(a, dataMB, b, dataMB)
				if err != nil {
					return Table{}, data, err
				}
				colao, err := env.Oracle.COLAO(a, dataMB, b, dataMB)
				if err != nil {
					return Table{}, data, err
				}
				ratio := ilao / colao.Out.EDP
				cp := core.NewClassPair(a.Class, b.Class)
				data.Ratio[cp] += ratio
				counts[cp]++
				if ratio > data.MaxRatio {
					data.MaxRatio = ratio
					data.MaxRatioPair = fmt.Sprintf("%s+%s@%gGB (%v)", a.Name, b.Name, size, cp)
				}
				tbl.AddRow(a.Name+"+"+b.Name, fmt.Sprintf("%gGB", size), cp.String(),
					ilao, colao.Out.EDP, ratio)
			}
		}
	}
	for cp := range data.Ratio {
		data.Ratio[cp] /= float64(counts[cp])
	}

	// Per-class summary, best ratio first.
	type row struct {
		cp core.ClassPair
		r  float64
	}
	var rows []row
	for cp, r := range data.Ratio {
		rows = append(rows, row{cp, r})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].r > rows[j].r })
	for _, r := range rows {
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("class mean %v: ILAO/COLAO = %.2f", r.cp, r.r))
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("largest gap: %.2fx at %s (paper: up to 4.52x at I-I)", data.MaxRatio, data.MaxRatioPair))
	return tbl, data, nil
}

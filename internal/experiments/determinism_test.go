package experiments

import (
	"testing"

	"ecost/internal/core"
	"ecost/internal/sim"
)

// freshRunEnv clones the shared environment but resets every stateful
// component a figure run touches: a new oracle (so the second run cannot
// trivially replay memoized results) and a new profiler seeded
// identically (so the measurement-noise sequence restarts). The
// database and trained models are immutable and stay shared.
func freshRunEnv(t *testing.T) *Env {
	t.Helper()
	base := sharedEnv(t)
	e := *base
	e.Oracle = core.NewOracle(base.Model)
	e.Profiler = core.NewProfiler(base.Model, sim.NewRNG(base.Seed))
	return &e
}

// TestFig9GoldenRerun runs a Figure-9 subset twice from scratch and
// requires the rendered tables to be byte-identical: the whole policy
// pipeline (profiling noise, parallel COLAO search, pairing, tuning)
// must be deterministic for a fixed seed.
func TestFig9GoldenRerun(t *testing.T) {
	wl, err := core.Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		env := freshRunEnv(t)
		tbl, _, err := Fig9OnWith(env, env.LkT, []core.Workload{wl}, []int{2})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("Figure-9 rerun diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestFig3GoldenRerun repeats the COLAO-vs-ILAO comparison; it
// exercises many parallel pair searches, so it is the strongest
// determinism check in the suite. Skipped with -short (the CI race job
// runs short mode).
func TestFig3GoldenRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("golden double-run skipped in -short mode")
	}
	run := func() string {
		env := freshRunEnv(t)
		tbl, _, err := Fig3ColaoVsIlao(env)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("Figure-3 rerun diverged:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

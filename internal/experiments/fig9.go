package experiments

import (
	"fmt"

	"ecost/internal/core"
)

// Fig9Data holds the mapping-policy comparison across cluster sizes.
type Fig9Data struct {
	// Normalized[nodes][scenario][policy] is EDP normalized to UB
	// (1.0 = upper bound; larger is worse).
	Normalized map[int]map[string]map[core.Policy]float64
	// ECoSTGap[nodes] is the mean ECoST-vs-UB gap in percent at each
	// cluster size (the paper: within 4% at a node, within 8% at 8
	// nodes).
	ECoSTGap map[int]float64
}

// Fig9MappingPolicies reproduces Figure 9: the EDP of every application
// mapping policy on the Table-3 workload scenarios at 1, 2, 4 and 8
// nodes, normalized to the brute-force upper bound.
func Fig9MappingPolicies(env *Env, nodeCounts []int) (Table, Fig9Data, error) {
	return Fig9On(env, core.Scenarios(), nodeCounts)
}

// Fig9On runs the mapping-policy comparison on a chosen subset of
// scenarios and cluster sizes with the paper's preferred STP model
// (REPTree).
func Fig9On(env *Env, scenarios []core.Workload, nodeCounts []int) (Table, Fig9Data, error) {
	return Fig9OnWith(env, env.REPTree, scenarios, nodeCounts)
}

// Fig9OnWith runs the comparison with a chosen STP technique as ECoST's
// tuner (the fast-mode tests use LkT, whose accuracy does not depend on
// database coverage).
func Fig9OnWith(env *Env, tuner core.STP, scenarios []core.Workload, nodeCounts []int) (Table, Fig9Data, error) {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8}
	}
	runner := &core.PolicyRunner{
		Oracle:   env.Oracle,
		DB:       env.DB,
		Tuner:    tuner,
		Profiler: env.Profiler,
	}
	data := Fig9Data{
		Normalized: map[int]map[string]map[core.Policy]float64{},
		ECoSTGap:   map[int]float64{},
	}
	policies := core.Policies()

	header := []string{"nodes", "scenario"}
	for _, p := range policies {
		header = append(header, p.String())
	}
	tbl := Table{
		Title:  "Figure 9: EDP by mapping policy, normalized to UB (lower is better, UB = 1)",
		Header: header,
	}
	for _, nodes := range nodeCounts {
		data.Normalized[nodes] = map[string]map[core.Policy]float64{}
		var gapSum float64
		gapN := 0
		for _, wl := range scenarios {
			ub, err := runner.Run(core.UB, wl, nodes)
			if err != nil {
				return Table{}, data, err
			}
			perPolicy := map[core.Policy]float64{}
			cells := []any{nodes, wl.Name}
			for _, p := range policies {
				res, err := runner.Run(p, wl, nodes)
				if err != nil {
					return Table{}, data, err
				}
				norm := res.EDP / ub.EDP
				perPolicy[p] = norm
				cells = append(cells, norm)
				if p == core.ECoST {
					gapSum += 100 * (norm - 1)
					gapN++
				}
			}
			data.Normalized[nodes][wl.Name] = perPolicy
			tbl.AddRow(cells...)
		}
		data.ECoSTGap[nodes] = gapSum / float64(gapN)
	}
	for _, nodes := range nodeCounts {
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("%d node(s): ECoST within %.1f%% of UB on average", nodes, data.ECoSTGap[nodes]))
	}
	tbl.Notes = append(tbl.Notes,
		"paper: ECoST within ~4% of UB at node level, within ~8% on the 8-node cluster;"+
			" untuned serial mapping (SM) is the worst; tuning (PTM) beats untuned SNM/CBM")
	return tbl, data, nil
}

// Table3Workloads renders the Table-3 scenario definitions.
func Table3Workloads() Table {
	tbl := Table{
		Title:  "Table 3: studied workload scenarios",
		Header: []string{"scenario", "class signature", "applications"},
	}
	for _, wl := range core.Scenarios() {
		tbl.AddRow(wl.Name, wl.ClassSignature(), wl.AppSignature())
	}
	tbl.Notes = append(tbl.Notes,
		"every job uses the medium (5 GB) input; Table 3 leaves sizes unpinned")
	return tbl
}

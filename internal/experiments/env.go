// Package experiments reproduces every table and figure of the paper's
// evaluation: each driver regenerates one artifact (the same rows or
// series the paper reports) against the simulated testbed. cmd/ecost-bench
// prints them; bench_test.go regenerates them under `go test -bench`.
//
// The drivers return both a renderable Table and, where useful,
// structured data that the tests assert fidelity targets against
// (see DESIGN.md §6).
package experiments

import (
	"fmt"
	"time"

	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/ml"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// Env bundles the shared experimental setup: the calibrated execution
// model of the 8-core Atom node, the memoizing oracle, the profiler, the
// training database and the four STP techniques.
type Env struct {
	Model    *mapreduce.Model
	Oracle   *core.Oracle
	Profiler *core.Profiler
	DB       *core.Database

	LkT     core.STP
	LR      *core.MLMSTP
	REPTree *core.MLMSTP
	MLP     *core.MLMSTP

	// Seed drives every stochastic element (measurement noise).
	Seed int64

	// opt remembers the (normalized) build options so EnsureRows can
	// regenerate training matrices dropped by the artifact cache.
	opt Options
}

// Options tunes the cost of building an Env.
type Options struct {
	// Seed for measurement noise (default 42).
	Seed int64
	// ConfigStride for database construction (default 5; tests use a
	// coarser stride to stay fast).
	ConfigStride int
	// MLPEpochs and MLPRowStride bound the most expensive model's
	// training (defaults 150 and 6).
	MLPEpochs    int
	MLPRowStride int
	// Workers sizes the database build's worker pool (0 = GOMAXPROCS;
	// any count produces an identical database).
	Workers int
	// Metrics, when set, receives build observability: volatile
	// wall-clock gauges for the database build and per-technique
	// training times. It does not participate in the cache key.
	Metrics *metrics.Registry
}

// withDefaults normalizes the zero values to the documented defaults.
func (opt Options) withDefaults() Options {
	if opt.Seed == 0 {
		opt.Seed = 42
	}
	if opt.ConfigStride == 0 {
		opt.ConfigStride = 5
	}
	if opt.MLPEpochs == 0 {
		opt.MLPEpochs = 150
	}
	if opt.MLPRowStride == 0 {
		opt.MLPRowStride = 6
	}
	return opt
}

// DefaultOptions returns the full-fidelity configuration used by
// cmd/ecost-bench and the benchmarks: the database covers the complete
// joint configuration space (coverage is what lets the tree model's
// argmin find true optima — see DESIGN.md §6).
func DefaultOptions() Options {
	return Options{Seed: 42, ConfigStride: 1, MLPEpochs: 300, MLPRowStride: 6}
}

// FastOptions returns a cheaper configuration for unit tests and the
// example programs: a coarser database and lighter MLP, trading STP
// accuracy (roughly 2× the config-choice error) for an order of
// magnitude less build time.
func FastOptions() Options {
	return Options{Seed: 42, ConfigStride: 7, MLPEpochs: 80, MLPRowStride: 4}
}

// NewEnv builds the shared setup: model, oracle, profiler, database,
// classifiers and the four trained STP techniques.
func NewEnv(opt Options) (*Env, error) {
	opt = opt.withDefaults()
	model := mapreduce.NewModel(cluster.AtomC2758())
	oracle := core.NewOracle(model)
	profiler := core.NewProfiler(model, sim.NewRNG(opt.Seed))
	buildStart := time.Now()
	db, err := core.BuildDatabase(profiler, oracle, workloads.Training(), core.BuildOptions{
		Sizes:        workloads.DataSizesGB(),
		ConfigStride: opt.ConfigStride,
		Workers:      opt.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	opt.Metrics.VolatileGauge("env.db_build.wall_seconds").Set(time.Since(buildStart).Seconds())
	env := &Env{
		Model:    model,
		Oracle:   oracle,
		Profiler: profiler,
		DB:       db,
		LkT:      &core.LkTSTP{DB: db},
		Seed:     opt.Seed,
		opt:      opt,
	}
	env.LR, err = core.NewMLMSTP("LR", db, func() ml.Regressor { return ml.NewLinearRegression() })
	if err != nil {
		return nil, err
	}
	// REPTree gets the slot applications' features as extra inputs so it
	// can separate application combinations within a class pair — but
	// only when the database covers the configuration space densely;
	// on a sparse sample the extra dimensions fragment the data and the
	// argmin exploits under-supported leaves.
	if opt.ConfigStride <= 2 {
		env.REPTree, err = core.NewMLMSTPFeatures("REPTree", db, func() ml.Regressor {
			t := ml.NewREPTree()
			t.MinLeaf = 2
			return t
		}, 1)
	} else {
		// On a sparse sample a finely-resolved single tree is exploitable
		// by the argmin; bag coarser trees instead.
		env.REPTree, err = core.NewMLMSTP("REPTree", db, func() ml.Regressor {
			return ml.NewBagging(5, func() ml.Regressor {
				t := ml.NewREPTree()
				t.MinLeaf = 6
				return t
			})
		})
	}
	if err != nil {
		return nil, err
	}
	env.MLP, err = core.NewMLMSTPSampled("MLP", db, func() ml.Regressor {
		m := ml.NewMLP()
		m.Epochs = opt.MLPEpochs
		m.LearningRate = 0.005
		return m
	}, opt.MLPRowStride)
	if err != nil {
		return nil, err
	}
	for _, s := range []*core.MLMSTP{env.LR, env.REPTree, env.MLP} {
		opt.Metrics.VolatileGauge("env.train." + s.Name() + ".wall_seconds").Set(s.TrainTime().Seconds())
	}
	return env, nil
}

// EnsureRows makes sure the database's training matrices are populated.
// A cache-loaded Env carries entries and trained models but no rows
// (they are too large to persist at full stride); experiments that read
// DB.Rows directly — the Table-1 training-accuracy sweep — call this
// first. The rebuild is a pure sweep, so the rows match the original
// build's bit for bit.
func (e *Env) EnsureRows() error {
	if e.DB.HasRows() {
		return nil
	}
	start := time.Now()
	err := e.DB.RebuildRows(core.BuildOptions{
		Sizes:        workloads.DataSizesGB(),
		ConfigStride: e.opt.ConfigStride,
		Workers:      e.opt.Workers,
	})
	e.opt.Metrics.VolatileGauge("env.rows_rebuild.wall_seconds").Set(time.Since(start).Seconds())
	return err
}

// STPs returns the four techniques in the paper's order.
func (e *Env) STPs() []core.STP {
	return []core.STP{e.LkT, e.LR, e.REPTree, e.MLP}
}

// Observe profiles an application the way the online system would
// (with measurement noise).
func (e *Env) Observe(app workloads.App, sizeGB float64) (core.Observation, error) {
	return e.Profiler.Observe(app, sizeGB)
}

package experiments

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ecost/internal/workloads"
)

// TestEnvCacheRoundTrip drives the artifact cache end to end: a miss
// builds and populates the entry, a hit loads it, and the loaded Env is
// experiment-equivalent — same predictions, same noise stream, and
// (through EnsureRows) the same Table-1 numbers.
func TestEnvCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: cache round trip builds a full Env")
	}
	root := t.TempDir()
	opt := FastOptions()
	fresh, hit, err := LoadOrBuildEnv(opt, root)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first LoadOrBuildEnv reported a cache hit in an empty dir")
	}
	if _, err := os.Stat(filepath.Join(CacheDir(root, opt), manifestFile)); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}
	cached, hit, err := LoadOrBuildEnv(opt, root)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second LoadOrBuildEnv missed the cache")
	}

	if len(cached.DB.Entries) != len(fresh.DB.Entries) {
		t.Fatalf("cached entries = %d, want %d", len(cached.DB.Entries), len(fresh.DB.Entries))
	}
	if cached.DB.HasRows() {
		t.Fatal("cache-loaded database should start without training rows")
	}

	// Identical predictions from every technique, on noisy observations
	// drawn from both envs' (independent but same-seed) profilers.
	for _, pair := range [][2]string{{"wc", "st"}, {"gp", "wc"}} {
		fa, err := fresh.Observe(workloads.MustByName(pair[0]), 1)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := fresh.Observe(workloads.MustByName(pair[1]), 5)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := cached.Observe(workloads.MustByName(pair[0]), 1)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := cached.Observe(workloads.MustByName(pair[1]), 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fa.Features, ca.Features) || !reflect.DeepEqual(fb.Features, cb.Features) {
			t.Fatal("cache-loaded env's profiler noise stream diverges from a fresh build")
		}
		for i, s := range fresh.STPs() {
			want, werr := s.PredictBest(fa, fb)
			got, gerr := cached.STPs()[i].PredictBest(ca, cb)
			if (werr != nil) != (gerr != nil) {
				t.Fatalf("%s on %v: error mismatch: %v vs %v", s.Name(), pair, werr, gerr)
			}
			if want != got {
				t.Fatalf("%s on %v: cached predicts %v, fresh %v", s.Name(), pair, got, want)
			}
		}
	}

	// Table 1 forces EnsureRows on the cached env; the regenerated rows
	// must reproduce the fresh build's error numbers exactly.
	_, freshT1, err := Table1ModelAPE(fresh)
	if err != nil {
		t.Fatal(err)
	}
	_, cachedT1, err := Table1ModelAPE(cached)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.DB.HasRows() {
		t.Fatal("EnsureRows did not repopulate the cached database")
	}
	for name, want := range freshT1.Average {
		got, ok := cachedT1.Average[name]
		if !ok || math.Abs(got-want) > 1e-12 {
			t.Fatalf("Table 1 average APE for %s: cached %v, fresh %v", name, got, want)
		}
	}
}

// TestEnvCacheCorruptEntryRebuilds checks a damaged entry is discarded
// instead of poisoning every later run.
func TestEnvCacheCorruptEntryRebuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: rebuild after corruption builds a full Env")
	}
	root := t.TempDir()
	opt := FastOptions()
	dir := CacheDir(root, opt)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	env, hit, err := LoadOrBuildEnv(opt, root)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("corrupt entry reported as a hit")
	}
	if env == nil || len(env.DB.Entries) == 0 {
		t.Fatal("rebuild after corruption returned an empty env")
	}
	if _, _, err := LoadOrBuildEnv(opt, root); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"ecost/internal/core"
	"ecost/internal/ml"
)

// Table1Data holds the per-class-pair absolute percentage error of the
// three learning models on the training applications.
type Table1Data struct {
	// APE[pair][model] in percent; models keyed "LR", "REPTree", "MLP".
	APE map[core.ClassPair]map[string]float64
	// Average APE per model.
	Average map[string]float64
}

// Table1ModelAPE reproduces Table 1: the absolute percentage error of
// LR, REPTree and MLP when predicting the EDP of the training
// applications across all explored tuning-parameter combinations.
//
// Following the paper, this is training-set accuracy: the models are
// fitted and evaluated on the database rows of the known applications;
// the generalization question is Table 2's.
func Table1ModelAPE(env *Env) (Table, Table1Data, error) {
	// A cache-loaded Env drops the raw training rows; regenerate them.
	if err := env.EnsureRows(); err != nil {
		return Table{}, Table1Data{}, err
	}
	data := Table1Data{
		APE:     map[core.ClassPair]map[string]float64{},
		Average: map[string]float64{},
	}
	models := []*core.MLMSTP{env.LR, env.REPTree, env.MLP}

	for cp, rows := range env.DB.Rows {
		data.APE[cp] = map[string]float64{}
		for _, m := range models {
			var sum float64
			n := 0
			for _, r := range rows {
				pred, err := m.PredictRow(cp, r)
				if err != nil {
					return Table{}, data, err
				}
				sum += ml.APE(pred, r.RelEDP)
				n++
			}
			if n > 0 {
				data.APE[cp][m.Name()] = sum / float64(n)
			}
		}
	}
	for _, m := range models {
		var sum float64
		n := 0
		for _, per := range data.APE {
			if v, ok := per[m.Name()]; ok && !math.IsNaN(v) {
				sum += v
				n++
			}
		}
		if n > 0 {
			data.Average[m.Name()] = sum / float64(n)
		}
	}

	tbl := Table{
		Title:  "Table 1: Absolute Percentage Error (%) of training applications",
		Header: []string{"pair", "LR", "REPTree", "MLP"},
	}
	var pairs []core.ClassPair
	for cp := range data.APE {
		pairs = append(pairs, cp)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].String() < pairs[j].String() })
	for _, cp := range pairs {
		tbl.AddRow(cp.String(), data.APE[cp]["LR"], data.APE[cp]["REPTree"], data.APE[cp]["MLP"])
	}
	tbl.AddRow("Average", data.Average["LR"], data.Average["REPTree"], data.Average["MLP"])
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("paper averages: LR 55.20%%, REPTree 4.38%%, MLP 0.77%%"))
	return tbl, data, nil
}

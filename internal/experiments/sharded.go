package experiments

import (
	"fmt"
	"sort"
	"time"

	"ecost/internal/core"
	"ecost/internal/scenario"
	"ecost/internal/sim"
	"ecost/internal/trace"
)

// OnlineScenarioSharded drives a generated scenario stream through the
// sharded control plane (core.ShardedScheduler) and reports the same
// summary and queueing observables as OnlineScenario. With
// cfg.Shards == 1 the run is byte-identical to OnlineScenario given the
// same profiler state (the single-shard path is the legacy scheduler);
// with more shards and stealing off, makespan and energy match the
// single-shard run to 1e-9 whenever jobs do not overlap in time (see
// DESIGN.md §14 for the determinism contract).
func OnlineScenarioSharded(env *Env, spec scenario.Spec, nodes int, cfg core.ShardedConfig) (Table, OnlineData, QueueStats, error) {
	arrivals, err := scenario.Generate(spec)
	if err != nil {
		return Table{}, OnlineData{}, QueueStats{}, err
	}
	return shardedArrivals(env, spec.String(), arrivals, nodes, cfg)
}

// OnlineReplaySharded drives a pre-parsed arrival stream (a replayed
// JSONL trace) through the sharded control plane. Identical streams
// produce identical tables, independent of GOMAXPROCS.
func OnlineReplaySharded(env *Env, label string, arrivals []trace.Arrival, nodes int, cfg core.ShardedConfig) (Table, OnlineData, QueueStats, error) {
	return shardedArrivals(env, label, arrivals, nodes, cfg)
}

func shardedArrivals(env *Env, label string, arrivals []trace.Arrival, nodes int, cfg core.ShardedConfig) (Table, OnlineData, QueueStats, error) {
	data, done, sched, err := runShardedStream(env, arrivals, nodes, cfg)
	if err != nil {
		return Table{}, data, QueueStats{}, err
	}
	qs := StreamStats(done, nodes, data.Makespan)
	tbl := Table{
		Title:  fmt.Sprintf("Online ECoST scenario (%d shard(s)): %s, %d node(s)", sched.Shards(), label, nodes),
		Header: []string{"metric", "value"},
	}
	addOnlineRows(&tbl, data)
	qs.AddRows(&tbl)
	tbl.AddRow("shards", sched.Shards())
	tbl.AddRow("steals", sched.Steals())
	bs := sched.BarrierStats()
	tbl.AddRow("exact barriers", bs.Barriers)
	tbl.AddRow("free windows", bs.Windows)
	tbl.AddRow("events elided", bs.WindowEvents)
	tbl.AddRow("elided %", fmt.Sprintf("%.1f", 100*bs.ElidedRatio()))
	tbl.Notes = append(tbl.Notes,
		"shards own disjoint node slices; submissions route by tenant hash, idle shards steal queue heads at event barriers",
		"barriers are exact lock-step steal passes; free windows let shards run unsynchronized while no thief/victim pairing can exist (events elided counts work that skipped a barrier)")
	return tbl, data, qs, nil
}

// runShardedStream mirrors runOnlineStream over the sharded control
// plane. The router requires time-ordered submissions (it profiles
// serially at submit time to preserve the legacy profiling order), so
// an out-of-order stream is stable-sorted by arrival time first — the
// exact order the legacy event heap would fire those arrivals in.
func runShardedStream(env *Env, arrivals []trace.Arrival, nodes int, cfg core.ShardedConfig) (OnlineData, []core.CompletedJob, *core.ShardedScheduler, error) {
	var data OnlineData
	sched, err := core.NewShardedScheduler(env.Model, env.DB, env.Profiler,
		func() core.STP { return core.NewMemoSTP(env.LkT, nil) }, nodes, cfg)
	if err != nil {
		return data, nil, nil, err
	}
	if !sort.SliceIsSorted(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At }) {
		sorted := append([]trace.Arrival(nil), arrivals...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
		arrivals = sorted
	}
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	makespan, energy, err := sched.Run()
	if err != nil {
		return data, nil, nil, err
	}
	data.Jobs = len(arrivals)
	data.Makespan = makespan
	data.EnergyJ = energy
	data.EDP = energy * makespan

	done := sched.Completed()
	for _, c := range done {
		wait := c.Started - c.Submitted
		data.MeanWait += wait
		if wait > data.MaxWait {
			data.MaxWait = wait
		}
		data.MeanElapsed += c.Finished - c.Submitted
	}
	if len(done) > 0 {
		data.MeanWait /= float64(len(done))
		data.MeanElapsed /= float64(len(done))
	}
	return data, done, sched, nil
}

// ShardSweepPoint is one shard count of a control-plane throughput
// sweep.
type ShardSweepPoint struct {
	Shards     int
	WallMS     float64 // host wall-clock for the whole run
	JobsPerSec float64 // simulated jobs per host second
	Makespan   float64
	EnergyJ    float64
	Steals     int
	Barriers   int64 // exact lock-step barrier iterations (steal passes)
	Windows    int64 // free-running barrier-free spans
	Elided     int64 // events fired inside windows (barriers elided)
}

// ShardSweep reruns one scenario stream at each shard count and reports
// control-plane throughput (simulated jobs per host-second) next to the
// simulated outcome. Each point starts from a fresh profiler seeded by
// env.Seed, so the offered stream is identical across rows and only the
// partitioning changes; jobs/s is host-dependent and meant for relative
// comparison, the simulated columns for checking outcome stability. The
// sweep runs the perf configuration: stealing, recurring-tenant profile
// memoization, and O(1) aggregate energy accrual all on.
func ShardSweep(env *Env, spec scenario.Spec, nodes int, shardCounts []int) (Table, []ShardSweepPoint, error) {
	arrivals, err := scenario.Generate(spec)
	if err != nil {
		return Table{}, nil, err
	}
	tbl := Table{
		Title:  fmt.Sprintf("Shard sweep: %s, %d node(s)", spec.String(), nodes),
		Header: []string{"shards", "wall (ms)", "jobs/s", "makespan (s)", "energy (kJ)", "steals", "barriers", "elided", "elided %"},
	}
	var points []ShardSweepPoint
	for _, s := range shardCounts {
		e := *env
		e.Profiler = core.NewProfiler(env.Model, sim.NewRNG(env.Seed))
		cfg := core.ShardedConfig{Shards: s, Steal: s > 1, ProfileMemo: true}
		sched, err := core.NewShardedScheduler(e.Model, e.DB, e.Profiler,
			func() core.STP { return core.NewMemoSTP(e.LkT, nil) }, nodes, cfg)
		if err != nil {
			return Table{}, nil, err
		}
		sched.SetFastAccrual(true)
		start := time.Now()
		for _, a := range arrivals {
			sched.Submit(a.App, a.SizeGB, a.At)
		}
		makespan, energy, err := sched.Run()
		if err != nil {
			return Table{}, nil, err
		}
		wall := time.Since(start)
		bs := sched.BarrierStats()
		p := ShardSweepPoint{
			Shards:     s,
			WallMS:     float64(wall.Microseconds()) / 1000,
			JobsPerSec: float64(len(arrivals)) / wall.Seconds(),
			Makespan:   makespan,
			EnergyJ:    energy,
			Steals:     sched.Steals(),
			Barriers:   bs.Barriers,
			Windows:    bs.Windows,
			Elided:     bs.WindowEvents,
		}
		points = append(points, p)
		tbl.AddRow(p.Shards, p.WallMS, p.JobsPerSec, p.Makespan, p.EnergyJ/1000, p.Steals,
			p.Barriers, p.Elided, fmt.Sprintf("%.1f", 100*bs.ElidedRatio()))
	}
	tbl.Notes = append(tbl.Notes,
		"jobs/s is host wall-clock throughput of the control plane (machine-dependent); simulated columns show outcome stability",
		"barriers counts exact lock-step steal passes, elided the events that ran in free windows instead of under a barrier")
	return tbl, points, nil
}

package experiments

import (
	"fmt"
	"math"

	"ecost/internal/cluster"
	"ecost/internal/hdfs"
	"ecost/internal/mapreduce"
	"ecost/internal/workloads"
)

// Fig2Data holds the Figure-2 series: per mapper count, the EDP
// improvement over the (64 MB, 1.2 GHz) baseline when tuning the HDFS
// block size alone, the frequency alone, and both concurrently —
// averaged across the studied applications at the large input size.
type Fig2Data struct {
	Mappers []int
	// BlockOnly / FreqOnly / Concurrent are improvement percentages
	// (0–100) per mapper count.
	BlockOnly  []float64
	FreqOnly   []float64
	Concurrent []float64
	// ConcurrentVsIndividual is the extra improvement of concurrent over
	// the best individual knob, per mapper count; Min/Max give the range
	// across applications and mapper counts (the paper reports
	// 3.73%–87.39%).
	ConcurrentVsIndividual []float64
	RangeMin, RangeMax     float64
}

// Fig2EDPImprovement reproduces Figure 2: EDP improvement from tuning
// HDFS block size and frequency individually and concurrently, as a
// function of the number of mappers.
func Fig2EDPImprovement(env *Env) (Table, Fig2Data, error) {
	const dataMB = 10 * 1024
	apps := workloads.Apps()
	cores := env.Model.Spec.Cores

	var data Fig2Data
	data.RangeMin = math.Inf(1)

	eval := func(app workloads.App, cfg mapreduce.Config) (float64, error) {
		_, co, err := env.Model.Solo(mapreduce.RunSpec{App: app, DataMB: dataMB, Cfg: cfg})
		return co.EDP, err
	}

	tbl := Table{
		Title:  "Figure 2: EDP improvement vs (64MB, 1.2GHz) baseline, by #mappers (mean over 11 apps, 10GB)",
		Header: []string{"mappers", "block-only %", "freq-only %", "concurrent %", "concurrent vs best individual %"},
	}
	for m := 1; m <= cores; m++ {
		var sumB, sumF, sumC, sumCvI float64
		for _, app := range apps {
			base, err := eval(app, mapreduce.Baseline(m))
			if err != nil {
				return Table{}, data, err
			}
			bestB := math.Inf(1) // block sweep at min frequency
			for _, b := range hdfs.BlockSizes() {
				e, err := eval(app, mapreduce.Config{Freq: cluster.MinFreq, Block: b, Mappers: m})
				if err != nil {
					return Table{}, data, err
				}
				bestB = math.Min(bestB, e)
			}
			bestF := math.Inf(1) // frequency sweep at 64MB
			for _, f := range cluster.Frequencies() {
				e, err := eval(app, mapreduce.Config{Freq: f, Block: hdfs.Block64, Mappers: m})
				if err != nil {
					return Table{}, data, err
				}
				bestF = math.Min(bestF, e)
			}
			bestC := math.Inf(1) // joint sweep
			for _, f := range cluster.Frequencies() {
				for _, b := range hdfs.BlockSizes() {
					e, err := eval(app, mapreduce.Config{Freq: f, Block: b, Mappers: m})
					if err != nil {
						return Table{}, data, err
					}
					bestC = math.Min(bestC, e)
				}
			}
			sumB += 100 * (1 - bestB/base)
			sumF += 100 * (1 - bestF/base)
			sumC += 100 * (1 - bestC/base)
			bestInd := math.Min(bestB, bestF)
			cvi := 100 * (1 - bestC/bestInd)
			sumCvI += cvi
			data.RangeMin = math.Min(data.RangeMin, cvi)
			data.RangeMax = math.Max(data.RangeMax, cvi)
		}
		n := float64(len(apps))
		data.Mappers = append(data.Mappers, m)
		data.BlockOnly = append(data.BlockOnly, sumB/n)
		data.FreqOnly = append(data.FreqOnly, sumF/n)
		data.Concurrent = append(data.Concurrent, sumC/n)
		data.ConcurrentVsIndividual = append(data.ConcurrentVsIndividual, sumCvI/n)
		tbl.AddRow(m, sumB/n, sumF/n, sumC/n, sumCvI/n)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("concurrent-vs-individual range across apps and mappers: %.2f%%–%.2f%% (paper: 3.73%%–87.39%%)",
			data.RangeMin, data.RangeMax),
		"sensitivity shrinks as mappers increase (paper §4.1 remark)",
	)
	return tbl, data, nil
}

package experiments

import (
	"fmt"
	"sort"

	"ecost/internal/audit"
	"ecost/internal/core"
	"ecost/internal/flight"
	"ecost/internal/metrics"
	"ecost/internal/scenario"
	"ecost/internal/trace"
	"ecost/internal/tracing"
)

// ShardedObservation bundles the observability handles of one fully
// observed sharded run: per-shard registries and audit logs, the
// per-shard span tracers grouped for deterministic merging, plus the
// control plane's flight recorder. Every export they render (metrics
// snapshots, audit JSONL, merged Chrome trace and timeline, EDP
// report, shard-health report, epoch JSONL, flight dumps) is a pure
// function of the submitted stream, independent of GOMAXPROCS — the
// same determinism contract as the run itself.
type ShardedObservation struct {
	Registries []*metrics.Registry
	Audits     []*audit.Log
	Trace      *tracing.ShardSet
	Flight     *flight.Recorder
}

// OnlineScenarioShardedObserved is OnlineScenarioSharded with the full
// observability stack attached: per-shard registries feeding memoized
// metered tuners, per-shard decision audit logs, and the barrier flight
// recorder. It reports the same table and observables and additionally
// returns the observation handles so callers can render shard health,
// epoch wide-events, and anomaly dumps after the run.
func OnlineScenarioShardedObserved(env *Env, spec scenario.Spec, nodes int, cfg core.ShardedConfig) (Table, OnlineData, QueueStats, *ShardedObservation, error) {
	arrivals, err := scenario.Generate(spec)
	if err != nil {
		return Table{}, OnlineData{}, QueueStats{}, nil, err
	}
	var data OnlineData
	obs := &ShardedObservation{}
	newTuner := func() core.STP {
		reg := metrics.NewRegistry()
		obs.Registries = append(obs.Registries, reg)
		return core.NewMeteredSTP(core.NewMemoSTP(env.LkT, reg), env.Model, reg)
	}
	sched, err := core.NewShardedScheduler(env.Model, env.DB, env.Profiler, newTuner, nodes, cfg)
	if err != nil {
		return Table{}, data, QueueStats{}, nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := sched.Shard(i)
		sh.SetMetrics(obs.Registries[i])
		aud := audit.NewLog(audit.DriftConfig{})
		obs.Audits = append(obs.Audits, aud)
		sh.SetAudit(aud)
	}
	obs.Trace = tracing.NewShardSet()
	sched.SetTracer(obs.Trace)
	obs.Flight = flight.New(flight.Config{Shards: cfg.Shards, ShardNodes: sched.ShardNodes()})
	sched.SetFlight(obs.Flight)

	if !sort.SliceIsSorted(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At }) {
		sorted := append([]trace.Arrival(nil), arrivals...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
		arrivals = sorted
	}
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	makespan, energy, err := sched.Run()
	if err != nil {
		return Table{}, data, QueueStats{}, nil, err
	}
	data.Jobs = len(arrivals)
	data.Makespan = makespan
	data.EnergyJ = energy
	data.EDP = energy * makespan
	done := sched.Completed()
	for _, c := range done {
		wait := c.Started - c.Submitted
		data.MeanWait += wait
		if wait > data.MaxWait {
			data.MaxWait = wait
		}
		data.MeanElapsed += c.Finished - c.Submitted
	}
	if len(done) > 0 {
		data.MeanWait /= float64(len(done))
		data.MeanElapsed /= float64(len(done))
	}
	qs := StreamStats(done, nodes, data.Makespan)
	tbl := Table{
		Title:  fmt.Sprintf("Online ECoST scenario, observed (%d shard(s)): %s, %d node(s)", sched.Shards(), spec.String(), nodes),
		Header: []string{"metric", "value"},
	}
	addOnlineRows(&tbl, data)
	qs.AddRows(&tbl)
	tbl.AddRow("shards", sched.Shards())
	tbl.AddRow("steals", sched.Steals())
	tbl.AddRow("epochs", obs.Flight.Epochs())
	tbl.AddRow("flight dumps", len(obs.Flight.Dumps()))
	tbl.Notes = append(tbl.Notes,
		"fully observed run: per-shard metrics + audit + span tracers, barrier flight recorder; render traces, shard health, and dumps from the returned handles")
	return tbl, data, qs, obs, nil
}

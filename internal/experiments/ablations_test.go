package experiments

import (
	"math"
	"testing"
)

func TestAblationDecoupling(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := AblationDecoupling(env, "WS4", 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"tree+tuned":    data.TreePairingTuned,
		"arrival+tuned": data.ArrivalPairTuned,
		"tree+NT":       data.TreePairingNT,
		"arrival+NT":    data.ArrivalPairNT,
	} {
		if v < 0.95 || math.IsNaN(v) {
			t.Errorf("%s EDP/UB = %v; nothing should beat the brute-force UB", name, v)
		}
	}
	// Tuning must matter: untuned variants are clearly worse than tuned.
	if data.TreePairingNT <= data.TreePairingTuned {
		t.Errorf("untuned tree pairing (%v) not worse than tuned (%v)",
			data.TreePairingNT, data.TreePairingTuned)
	}
	if data.ArrivalPairNT <= data.ArrivalPairTuned {
		t.Errorf("untuned CBM (%v) not worse than tuned arrival pairing (%v)",
			data.ArrivalPairNT, data.ArrivalPairTuned)
	}
}

func TestAblationNoise(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := AblationNoise(env, []float64{0, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Scale) != 3 || len(data.MeanErrPct) != 3 {
		t.Fatalf("unexpected shape: %+v", data)
	}
	// Noise-free profiling must classify everything correctly.
	if data.Misclassified[0] != 0 {
		t.Errorf("noise-free run misclassified %d apps", data.Misclassified[0])
	}
	// Heavy noise should not *improve* tuning.
	if data.MeanErrPct[2] < data.MeanErrPct[0]-5 {
		t.Errorf("8x noise error %v%% better than noise-free %v%%",
			data.MeanErrPct[2], data.MeanErrPct[0])
	}
}

func TestAblationBeyondTwo(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := AblationBeyondTwo(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Degree) != 3 {
		t.Fatalf("degrees: %v", data.Degree)
	}
	if data.RelEDP[0] != 1 {
		t.Errorf("2-way baseline = %v, want 1", data.RelEDP[0])
	}
	// §4.2: beyond two applications, efficiency degrades monotonically.
	if data.RelEDP[1] <= data.RelEDP[0] {
		t.Errorf("4-way (%v) not worse than 2-way", data.RelEDP[1])
	}
	if data.RelEDP[2] <= data.RelEDP[1] {
		t.Errorf("8-way (%v) not worse than 4-way (%v)", data.RelEDP[2], data.RelEDP[1])
	}
}

func TestAblationSizeAware(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := AblationSizeAware(env, 2)
	if err != nil {
		t.Fatal(err)
	}
	helped := 0
	for name, classOnly := range data.ClassOnly {
		sized := data.SizeAware[name]
		if sized <= 0 || classOnly <= 0 {
			t.Fatalf("%s: degenerate ratios %v / %v", name, classOnly, sized)
		}
		if classOnly > 2.5 || sized > 2.5 {
			t.Errorf("%s: pairing variant far from UB: class-only %v, size-aware %v",
				name, classOnly, sized)
		}
		if sized <= classOnly+1e-9 {
			helped++
		}
	}
	// On size-mixed workloads the duration tie-breaker should help (or
	// tie) in the majority of scenarios.
	if helped*2 < len(data.ClassOnly) {
		t.Errorf("size-aware pairing helped on only %d of %d scenarios", helped, len(data.ClassOnly))
	}
}

package experiments

import (
	"strings"
	"testing"

	"ecost/internal/core"
	"ecost/internal/scenario"
	"ecost/internal/sim"
)

// freshEnv returns a shallow copy of the shared Env with a fresh
// profiler at the canonical seed, so two runs observe identical
// measurement noise regardless of what earlier tests consumed.
func freshEnv(t *testing.T) *Env {
	t.Helper()
	env := *sharedEnv(t)
	env.Profiler = core.NewProfiler(env.Model, sim.NewRNG(env.Seed))
	return &env
}

// TestOnlineScenarioShardedSingleShardMatchesLegacy is the
// experiments-level golden: with one shard the sharded runner reports
// bit-identical summary and queueing observables to OnlineScenario on
// the same stream and profiler state — the single-shard control plane
// IS the legacy scheduler.
func TestOnlineScenarioShardedSingleShardMatchesLegacy(t *testing.T) {
	spec := scenarioSpec(20)
	_, want, wantQS, err := OnlineScenario(freshEnv(t), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	tbl, got, gotQS, err := OnlineScenarioSharded(freshEnv(t), spec, 2, core.ShardedConfig{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("single-shard summary diverged from legacy:\n got %+v\nwant %+v", got, want)
	}
	if gotQS != wantQS {
		t.Fatalf("single-shard queue stats diverged from legacy:\n got %+v\nwant %+v", gotQS, wantQS)
	}
	for _, wantStr := range []string{"shards", "steals", "utilization"} {
		if !strings.Contains(tbl.String(), wantStr) {
			t.Errorf("table missing %q:\n%s", wantStr, tbl.String())
		}
	}
}

// TestOnlineScenarioShardedMultiShard: a multi-shard steal-enabled run
// completes the stream, reports coherent stats, and is deterministic
// run to run.
func TestOnlineScenarioShardedMultiShard(t *testing.T) {
	spec := scenarioSpec(20)
	cfg := core.ShardedConfig{Shards: 4, Steal: true, ProfileMemo: true}
	_, a, qsA, err := OnlineScenarioSharded(freshEnv(t), spec, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Jobs != 20 {
		t.Fatalf("ran %d jobs, want 20", a.Jobs)
	}
	if qsA.Utilization <= 0 || qsA.Utilization > 1 {
		t.Fatalf("utilization %v outside (0, 1]", qsA.Utilization)
	}
	if a.Makespan <= 0 || a.EnergyJ <= 0 {
		t.Fatalf("degenerate run: makespan %v energy %v", a.Makespan, a.EnergyJ)
	}
	_, b, qsB, err := OnlineScenarioSharded(freshEnv(t), spec, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || qsA != qsB {
		t.Fatalf("multi-shard run not deterministic:\n got %+v / %+v\nwant %+v / %+v", b, qsB, a, qsA)
	}
}

// TestOnlineReplaySharded: replaying the generating stream through the
// sharded runner reproduces the generated run exactly.
func TestOnlineReplaySharded(t *testing.T) {
	spec := scenarioSpec(16)
	cfg := core.ShardedConfig{Shards: 2, Steal: true}
	_, want, wantQS, err := OnlineScenarioSharded(freshEnv(t), spec, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := scenario.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, got, gotQS, err := OnlineReplaySharded(freshEnv(t), "replay", arrivals, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want || gotQS != wantQS {
		t.Fatalf("replay diverged from generating run:\n got %+v / %+v\nwant %+v / %+v", got, gotQS, want, wantQS)
	}
}

// TestShardSweep: the sweep produces one well-formed point per shard
// count with identical simulated job counts.
func TestShardSweep(t *testing.T) {
	env := sharedEnv(t)
	tbl, points, err := ShardSweep(env, scenarioSpec(16), 4, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3", len(points))
	}
	for _, p := range points {
		if p.JobsPerSec <= 0 || p.WallMS <= 0 {
			t.Fatalf("shards %d: degenerate throughput %v jobs/s, %v ms", p.Shards, p.JobsPerSec, p.WallMS)
		}
		if p.Makespan <= 0 || p.EnergyJ <= 0 {
			t.Fatalf("shards %d: degenerate outcome makespan %v energy %v", p.Shards, p.Makespan, p.EnergyJ)
		}
	}
	if points[0].Steals != 0 {
		t.Fatalf("single-shard point stole %d jobs; stealing needs a victim shard", points[0].Steals)
	}
	if !strings.Contains(tbl.String(), "Shard sweep") {
		t.Errorf("table title missing:\n%s", tbl.String())
	}
}

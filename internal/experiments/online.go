package experiments

import (
	"fmt"

	"ecost/internal/audit"
	"ecost/internal/core"
	"ecost/internal/sim"
	"ecost/internal/trace"
	"ecost/internal/tracing"
)

// OnlineData summarizes an open-loop run of the event-driven scheduler.
type OnlineData struct {
	Jobs        int
	Makespan    float64
	EnergyJ     float64
	EDP         float64
	MeanWait    float64 // mean queueing delay (start - submit)
	MaxWait     float64
	MeanElapsed float64 // mean sojourn (finish - submit)
}

// OnlineTrace drives the online ECoST scheduler with a synthetic arrival
// trace — the open-loop extension of the paper's closed 16-job
// scenarios. It reports cluster EDP and queueing behaviour (the head
// reservation keeps the maximum wait bounded).
func OnlineTrace(env *Env, spec trace.Spec, nodes int) (Table, OnlineData, error) {
	tbl, data, _, err := onlineTrace(env, spec, nodes, false, env.REPTree, nil)
	return tbl, data, err
}

// OnlineTraceObserved is OnlineTrace with span tracing attached: it
// additionally returns the per-job / per-class EDP attribution report
// and appends the attributed-energy summary to the table. The traced
// run is identical to the untraced one (tracing observes the same
// event loop without perturbing it).
func OnlineTraceObserved(env *Env, spec trace.Spec, nodes int) (Table, OnlineData, tracing.Report, error) {
	return onlineTrace(env, spec, nodes, true, env.REPTree, nil)
}

// OnlineQualityObserved is OnlineTrace with the decision-audit log
// attached, returning the aggregated quality report (classifier
// confusion, STP error histograms, interference, oracle regret, drift)
// alongside the raw log for JSONL export. The run is tuned by the
// lookup table rather than REPTree: LkT is the technique that exposes
// an outcome forecast, so the predicted-vs-realized joins the report is
// about actually populate.
func OnlineQualityObserved(env *Env, spec trace.Spec, nodes int) (Table, OnlineData, audit.QualityReport, *audit.Log, error) {
	aud := audit.NewLog(audit.DriftConfig{})
	tbl, data, _, err := onlineTrace(env, spec, nodes, false, env.LkT, aud)
	if err != nil {
		return tbl, data, audit.QualityReport{}, nil, err
	}
	q := aud.Quality(core.NewAuditOracle(env.Oracle))
	tbl.AddRow("classifier accuracy (%)", 100*q.Accuracy)
	tbl.AddRow("prediction joins", q.Joined)
	tbl.AddRow("oracle regret rows", len(q.Regret))
	tbl.AddRow("drift alerts", len(q.Drift.Alerts))
	tbl.Notes = append(tbl.Notes,
		"quality rows join every LkT forecast with its realized outcome (full report: ecost-sim -online -quality-report)")
	return tbl, data, q, aud, nil
}

func onlineTrace(env *Env, spec trace.Spec, nodes int, traced bool, tuner core.STP, aud *audit.Log) (Table, OnlineData, tracing.Report, error) {
	arrivals, err := trace.Generate(spec)
	if err != nil {
		return Table{}, OnlineData{}, tracing.Report{}, err
	}
	data, rep, _, err := runOnlineStream(env, arrivals, nodes, traced, tuner, aud)
	if err != nil {
		return Table{}, data, rep, err
	}
	tbl := Table{
		Title:  fmt.Sprintf("Online ECoST: %d jobs, %d node(s), mean inter-arrival %.0fs", data.Jobs, nodes, spec.MeanInterarrival),
		Header: []string{"metric", "value"},
	}
	addOnlineRows(&tbl, data)
	if traced {
		tbl.AddRow("attributed energy (kJ)", rep.AttributedJ/1000)
		tbl.Notes = append(tbl.Notes,
			"attributed energy is the solo+co-located share of the bill carried by job run spans")
	}
	return tbl, data, rep, nil
}

// addOnlineRows appends the shared summary rows of an online run.
func addOnlineRows(tbl *Table, data OnlineData) {
	tbl.AddRow("makespan (s)", data.Makespan)
	tbl.AddRow("energy (kJ)", data.EnergyJ/1000)
	tbl.AddRow("EDP (J·s)", data.EDP)
	tbl.AddRow("mean wait (s)", data.MeanWait)
	tbl.AddRow("max wait (s)", data.MaxWait)
	tbl.AddRow("mean sojourn (s)", data.MeanElapsed)
	tbl.Notes = append(tbl.Notes,
		"head-of-queue reservation bounds the maximum wait (no starvation)")
}

// runOnlineStream drives one online-scheduler run over a prepared
// arrival stream (generated trace, scenario stream, or replayed JSONL
// trace) and summarizes it. The completed jobs are returned for
// queueing analysis (StreamStats).
func runOnlineStream(env *Env, arrivals []trace.Arrival, nodes int, traced bool, tuner core.STP, aud *audit.Log) (OnlineData, tracing.Report, []core.CompletedJob, error) {
	var data OnlineData
	var rep tracing.Report
	eng := sim.NewEngine()
	sched, err := core.NewOnlineScheduler(eng, env.Model, env.DB, tuner, env.Profiler, nodes)
	if err != nil {
		return data, rep, nil, err
	}
	var tr *tracing.Tracer
	if traced {
		tr = tracing.New(eng.Clock())
		sched.SetTracer(tr)
	}
	sched.SetAudit(aud)
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	makespan, energy, err := sched.Run()
	if err != nil {
		return data, rep, nil, err
	}
	data.Jobs = len(arrivals)
	data.Makespan = makespan
	data.EnergyJ = energy
	data.EDP = energy * makespan

	done := sched.Completed()
	for _, c := range done {
		wait := c.Started - c.Submitted
		data.MeanWait += wait
		if wait > data.MaxWait {
			data.MaxWait = wait
		}
		data.MeanElapsed += c.Finished - c.Submitted
	}
	if len(done) > 0 {
		data.MeanWait /= float64(len(done))
		data.MeanElapsed /= float64(len(done))
	}
	if traced {
		rep = tr.Report()
	}
	return data, rep, done, nil
}

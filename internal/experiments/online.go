package experiments

import (
	"fmt"

	"ecost/internal/core"
	"ecost/internal/sim"
	"ecost/internal/trace"
)

// OnlineData summarizes an open-loop run of the event-driven scheduler.
type OnlineData struct {
	Jobs        int
	Makespan    float64
	EnergyJ     float64
	EDP         float64
	MeanWait    float64 // mean queueing delay (start - submit)
	MaxWait     float64
	MeanElapsed float64 // mean sojourn (finish - submit)
}

// OnlineTrace drives the online ECoST scheduler with a synthetic arrival
// trace — the open-loop extension of the paper's closed 16-job
// scenarios. It reports cluster EDP and queueing behaviour (the head
// reservation keeps the maximum wait bounded).
func OnlineTrace(env *Env, spec trace.Spec, nodes int) (Table, OnlineData, error) {
	var data OnlineData
	arrivals, err := trace.Generate(spec)
	if err != nil {
		return Table{}, data, err
	}
	eng := sim.NewEngine()
	sched, err := core.NewOnlineScheduler(eng, env.Model, env.DB, env.REPTree, env.Profiler, nodes)
	if err != nil {
		return Table{}, data, err
	}
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	makespan, energy, err := sched.Run()
	if err != nil {
		return Table{}, data, err
	}
	data.Jobs = len(arrivals)
	data.Makespan = makespan
	data.EnergyJ = energy
	data.EDP = energy * makespan

	done := sched.Completed()
	for _, c := range done {
		wait := c.Started - c.Submitted
		data.MeanWait += wait
		if wait > data.MaxWait {
			data.MaxWait = wait
		}
		data.MeanElapsed += c.Finished - c.Submitted
	}
	if len(done) > 0 {
		data.MeanWait /= float64(len(done))
		data.MeanElapsed /= float64(len(done))
	}

	tbl := Table{
		Title:  fmt.Sprintf("Online ECoST: %d jobs, %d node(s), mean inter-arrival %.0fs", data.Jobs, nodes, spec.MeanInterarrival),
		Header: []string{"metric", "value"},
	}
	tbl.AddRow("makespan (s)", data.Makespan)
	tbl.AddRow("energy (kJ)", data.EnergyJ/1000)
	tbl.AddRow("EDP (J·s)", data.EDP)
	tbl.AddRow("mean wait (s)", data.MeanWait)
	tbl.AddRow("max wait (s)", data.MaxWait)
	tbl.AddRow("mean sojourn (s)", data.MeanElapsed)
	tbl.Notes = append(tbl.Notes,
		"head-of-queue reservation bounds the maximum wait (no starvation)")
	return tbl, data, nil
}

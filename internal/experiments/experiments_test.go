package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"ecost/internal/core"
	"ecost/internal/perfctr"
	"ecost/internal/trace"
	"ecost/internal/workloads"
)

// onlineSpec is the small open-loop trace the online test uses.
func onlineSpec() trace.Spec {
	return trace.Spec{N: 12, MeanInterarrival: 240, Poisson: true, UnknownOnly: true, Seed: 7}
}

var (
	envOnce sync.Once
	testEnv *Env
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		e, err := NewEnv(FastOptions())
		if err != nil {
			panic(err)
		}
		testEnv = e
	})
	return testEnv
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow(1, 2.5)
	tbl.AddRow("xx", "y")
	tbl.Notes = append(tbl.Notes, "hello")
	s := tbl.String()
	for _, want := range []string{"== T ==", "a", "bb", "2.5", "xx", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFig1PCA(t *testing.T) {
	env := sharedEnv(t)
	tbl, data, err := Fig1PCA(env)
	if err != nil {
		t.Fatal(err)
	}
	if data.ExplainedPC2 < 0.5 || data.ExplainedPC2 > 1 {
		t.Errorf("PC1+PC2 explain %v; paper reports 85%%, want a dominant plane", data.ExplainedPC2)
	}
	if len(data.Loadings) != int(perfctr.NumMetrics) {
		t.Fatalf("loadings for %d metrics, want 14", len(data.Loadings))
	}
	clusters := map[int]bool{}
	for _, c := range data.Cluster {
		clusters[c] = true
	}
	if len(clusters) != 7 {
		t.Errorf("clustered into %d groups, want 7", len(clusters))
	}
	if len(data.Representatives) != 7 {
		t.Errorf("%d representatives, want 7", len(data.Representatives))
	}
	// The retained metrics must cover a majority of the paper's set.
	keep := map[perfctr.Metric]bool{}
	for _, m := range data.Representatives {
		keep[m] = true
	}
	hits := 0
	for _, m := range perfctr.ReducedMetrics() {
		if keep[m] {
			hits++
		}
	}
	if hits < 4 {
		t.Errorf("only %d of the paper's 7 retained metrics are representatives", hits)
	}
	if len(tbl.Rows) != int(perfctr.NumMetrics) {
		t.Errorf("table rows = %d", len(tbl.Rows))
	}
}

func TestFig2Shapes(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := Fig2EDPImprovement(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Mappers) != 8 {
		t.Fatalf("expected series for 8 mapper counts, got %d", len(data.Mappers))
	}
	// Concurrent tuning dominates individual tuning at every mapper count.
	for i := range data.Mappers {
		if data.Concurrent[i] < data.BlockOnly[i]-1e-9 || data.Concurrent[i] < data.FreqOnly[i]-1e-9 {
			t.Errorf("m=%d: concurrent %v below individual (%v, %v)",
				data.Mappers[i], data.Concurrent[i], data.BlockOnly[i], data.FreqOnly[i])
		}
	}
	// The paper's remark: sensitivity shrinks as mappers increase.
	if data.Concurrent[0] <= data.Concurrent[7] {
		t.Errorf("concurrent improvement at m=1 (%v) not above m=8 (%v)",
			data.Concurrent[0], data.Concurrent[7])
	}
	if data.RangeMin < 0 || data.RangeMax > 100 || data.RangeMax < 20 {
		t.Errorf("concurrent-vs-individual range [%v, %v] implausible", data.RangeMin, data.RangeMax)
	}
}

func TestFig3Shapes(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := Fig3ColaoVsIlao(env)
	if err != nil {
		t.Fatal(err)
	}
	ii := core.NewClassPair(workloads.IOBound, workloads.IOBound)
	mm := core.NewClassPair(workloads.MemBound, workloads.MemBound)
	for cp, r := range data.Ratio {
		if cp != ii && data.Ratio[ii] < r {
			t.Errorf("I-I ratio %v not the largest (beaten by %v at %v)", data.Ratio[ii], cp, r)
		}
	}
	// M-containing pairs have the smallest gap.
	for cp, r := range data.Ratio {
		if cp.A != workloads.MemBound && cp.B != workloads.MemBound && r < data.Ratio[mm] {
			t.Errorf("non-M pair %v ratio %v below M-M %v", cp, r, data.Ratio[mm])
		}
	}
	if data.MaxRatio < 2 {
		t.Errorf("largest ILAO/COLAO gap = %v, want >2 (paper: 4.52)", data.MaxRatio)
	}
	if !strings.Contains(data.MaxRatioPair, "I-I") {
		t.Errorf("largest gap at %s, want an I-I pair", data.MaxRatioPair)
	}
}

func TestFig5Ranking(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := Fig5PriorityRanking(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Ranking) != 10 {
		t.Fatalf("ranking covers %d pairs, want 10", len(data.Ranking))
	}
	first := data.Ranking[0].Pair
	if first.A != workloads.IOBound || first.B != workloads.IOBound {
		t.Errorf("top pair = %v, want I-I", first)
	}
	last := data.Ranking[9].Pair
	if last.A != workloads.MemBound && last.B != workloads.MemBound {
		t.Errorf("bottom pair = %v, want an M pair", last)
	}
	for c, order := range data.PartnerOrder {
		if len(order) != 4 {
			t.Errorf("partner order for %v has %d classes", c, len(order))
		}
	}
}

func TestTable1Ordering(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := Table1ModelAPE(env)
	if err != nil {
		t.Fatal(err)
	}
	// Fast-mode sanity only — the paper-facing ordering (LR worst, MLP
	// best) is a default-fidelity claim recorded in EXPERIMENTS.md. Our
	// LR uses interaction features, so its *training* APE is far below
	// the paper's 55% even though its config-choice error matches §7.1.
	lr, rep, mlp := data.Average["LR"], data.Average["REPTree"], data.Average["MLP"]
	if lr <= 0 || rep <= 0 || mlp <= 0 {
		t.Errorf("non-positive training APE: LR %v REPTree %v MLP %v", lr, rep, mlp)
	}
	if rep > 30 {
		t.Errorf("REPTree training APE %v%% too high (paper: 4.38%%)", rep)
	}
	for cp, per := range data.APE {
		for name, v := range per {
			if v < 0 {
				t.Errorf("%v %s APE negative: %v", cp, name, v)
			}
		}
	}
}

func TestTable2Errors(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := Table2PredictedConfigs(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"LkT", "LR", "REPTree", "MLP"} {
		if len(data.Err[name]) != len(DefaultTestPairs()) {
			t.Fatalf("%s evaluated on %d pairs", name, len(data.Err[name]))
		}
		if data.Mean[name] < 0 {
			t.Errorf("%s mean error negative: %v", name, data.Mean[name])
		}
	}
	// The paper's qualitative finding: LkT and the tree-based model beat
	// plain linear regression by a wide margin.
	if data.Mean["LkT"] >= data.Mean["LR"] {
		t.Errorf("LkT (%v%%) should beat LR (%v%%)", data.Mean["LkT"], data.Mean["LR"])
	}
}

func TestFig8Overheads(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := Fig8Overheads(env)
	if err != nil {
		t.Fatal(err)
	}
	// LkT predicts fastest (table scan); the MLM techniques scan 11,200
	// configurations through a model.
	if data.PredictTime["LkT"] >= data.PredictTime["MLP"] {
		t.Errorf("LkT prediction (%v) not faster than MLP (%v)",
			data.PredictTime["LkT"], data.PredictTime["MLP"])
	}
	// LkT training (brute-force table population) dwarfs LR training.
	if data.TrainTime["LkT"] <= data.TrainTime["LR"] {
		t.Errorf("LkT training (%v) should exceed LR training (%v)",
			data.TrainTime["LkT"], data.TrainTime["LR"])
	}
	for name, d := range data.TrainTime {
		if d <= 0 {
			t.Errorf("%s train time %v", name, d)
		}
	}
}

func TestFig9ReducedGrid(t *testing.T) {
	env := sharedEnv(t)
	ws4, err := core.Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	ws3, err := core.Scenario("WS3")
	if err != nil {
		t.Fatal(err)
	}
	_, data, err := Fig9OnWith(env, env.LkT, []core.Workload{ws3, ws4}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"WS3", "WS4"} {
		per := data.Normalized[2][wl]
		if len(per) != len(core.Policies()) {
			t.Fatalf("%s: %d policies evaluated", wl, len(per))
		}
		// ECoST must beat the untuned serial policy and stay within a
		// loose factor of UB. (These bounds are for the coarse fast-mode
		// database; the default-fidelity numbers live in EXPERIMENTS.md
		// and are regenerated by the bench harness.)
		if per[core.ECoST] >= per[core.SM] {
			t.Errorf("%s: ECoST (%v) not better than untuned serial SM (%v)", wl, per[core.ECoST], per[core.SM])
		}
		if per[core.ECoST] > 1.6 {
			t.Errorf("%s: ECoST %vx of UB; want close to the upper bound", wl, per[core.ECoST])
		}
		if per[core.UB] != 1.0 {
			t.Errorf("%s: UB normalized to %v, want 1", wl, per[core.UB])
		}
	}
}

func TestTable3Workloads(t *testing.T) {
	tbl := Table3Workloads()
	if len(tbl.Rows) != 8 {
		t.Fatalf("Table 3 has %d scenarios, want 8", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[0], "WS") {
			t.Errorf("scenario name %q", row[0])
		}
		if strings.Count(row[1], ",") != 15 {
			t.Errorf("%s signature does not list 16 classes: %s", row[0], row[1])
		}
	}
}

func TestOnlineTrace(t *testing.T) {
	env := sharedEnv(t)
	_, data, err := OnlineTrace(env, onlineSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if data.Jobs != 12 {
		t.Fatalf("jobs = %d", data.Jobs)
	}
	if data.Makespan <= 0 || data.EnergyJ <= 0 || data.EDP <= 0 {
		t.Fatalf("degenerate online result: %+v", data)
	}
	if data.MeanWait < 0 || data.MaxWait < data.MeanWait {
		t.Fatalf("wait stats inconsistent: %+v", data)
	}
	if data.MeanElapsed < data.MeanWait {
		t.Fatalf("sojourn below wait: %+v", data)
	}
}

func TestOnlineTraceObserved(t *testing.T) {
	tbl, data, rep, err := OnlineTraceObserved(freshRunEnv(t), onlineSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != data.Jobs {
		t.Fatalf("report covers %d jobs, run completed %d", len(rep.Jobs), data.Jobs)
	}
	if math.Abs(rep.Phases.TotalJ()-data.EnergyJ) > 1e-9*data.EnergyJ {
		t.Errorf("report phase total %v != run energy %v", rep.Phases.TotalJ(), data.EnergyJ)
	}
	if rep.AttributedJ <= 0 || rep.AttributedJ > data.EnergyJ {
		t.Errorf("attributed %v outside (0, %v]", rep.AttributedJ, data.EnergyJ)
	}
	for _, j := range rep.Jobs {
		if j.EnergyJ <= 0 || j.EDP <= 0 {
			t.Errorf("job %d has degenerate attribution: %+v", j.Job, j)
		}
	}
	found := false
	for _, row := range tbl.Rows {
		found = found || row[0] == "attributed energy (kJ)"
	}
	if !found {
		t.Error("table missing the attributed-energy row")
	}
	// The traced run must not perturb the untraced result (fresh env so
	// the profiler noise sequence restarts identically).
	_, plain, err := OnlineTrace(freshRunEnv(t), onlineSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.EDP != data.EDP || plain.Makespan != data.Makespan {
		t.Errorf("tracing perturbed the run: %+v vs %+v", plain, data)
	}
}

func TestOnlineQualityObserved(t *testing.T) {
	tbl, data, q, aud, err := OnlineQualityObserved(freshRunEnv(t), onlineSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Jobs != data.Jobs || q.Completed != data.Jobs {
		t.Fatalf("quality covers %d/%d jobs, run completed %d", q.Jobs, q.Completed, data.Jobs)
	}
	if len(q.Confusion) == 0 || len(q.Classes) == 0 {
		t.Fatal("confusion matrix empty")
	}
	if q.Joined == 0 || len(q.Hist) == 0 {
		t.Fatalf("no prediction joins under the lookup-table tuner (joined=%d)", q.Joined)
	}
	if len(q.Regret) == 0 {
		t.Error("no oracle regret rows for a pairing workload")
	}
	for _, row := range q.Regret {
		if row.RegretPct < -1e-6 && row.RealEDP < row.OracleEDP*(1-1e-9) {
			// Regret may legitimately be negative (realized union window
			// can beat the oracle's simultaneous-start assumption), so
			// only sanity-check the arithmetic here.
			if got := 100 * (row.RealEDP - row.OracleEDP) / row.OracleEDP; math.Abs(got-row.RegretPct) > 1e-9 {
				t.Errorf("regret row arithmetic off: %+v", row)
			}
		}
	}
	if got := len(aud.Decisions()); got != data.Jobs {
		t.Fatalf("audit log has %d decisions, want %d", got, data.Jobs)
	}
	var buf strings.Builder
	if err := aud.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != data.Jobs {
		t.Errorf("JSONL export has %d lines, want %d", lines, data.Jobs)
	}
	for _, want := range []string{"classifier accuracy (%)", "prediction joins", "drift alerts"} {
		found := false
		for _, row := range tbl.Rows {
			found = found || row[0] == want
		}
		if !found {
			t.Errorf("table missing the %q row", want)
		}
	}
	// The untraced, unaudited run is not perturbed by auditing — but it
	// is tuned by REPTree, so compare against an LkT-tuned baseline via
	// determinism of the quality run itself instead: rerun and require
	// identical realized totals.
	_, again, q2, _, err := OnlineQualityObserved(freshRunEnv(t), onlineSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if again.EDP != data.EDP || q2.Joined != q.Joined || len(q2.Regret) != len(q.Regret) {
		t.Errorf("quality run not reproducible: %+v vs %+v", again, data)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tbl := Table{Title: "T", Header: []string{"a", "b"}}
	tbl.AddRow(1, "x,y")
	tbl.Notes = append(tbl.Notes, "n")
	var buf strings.Builder
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"a,b", "1,\"x,y\"", "# n"} {
		if !strings.Contains(got, want) {
			t.Errorf("CSV missing %q:\n%s", want, got)
		}
	}
}

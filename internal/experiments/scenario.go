package experiments

import (
	"fmt"
	"math"
	"sort"

	"ecost/internal/core"
	"ecost/internal/scenario"
	"ecost/internal/trace"
)

// QueueStats are the queueing observables the paper never measured:
// cluster utilization, the wait-queue length distribution, and wait /
// sojourn percentiles. All derive deterministically from the completed
// jobs, so two identical runs report identical stats.
type QueueStats struct {
	// Utilization is busy node-seconds (union of resident intervals
	// per node) over nodes × makespan.
	Utilization float64

	// Time-weighted wait-queue length distribution over [0, makespan]:
	// jobs submitted but not yet started.
	MeanQueueLen float64
	P95QueueLen  float64
	MaxQueueLen  int

	// Wait (start − submit) and sojourn (finish − submit) percentiles.
	WaitP50, WaitP95, WaitP99          float64
	SojournP50, SojournP95, SojournP99 float64
}

// StreamStats computes the queueing observables of a finished online
// run. makespan bounds the busy-time integral; it is the scheduler's
// reported makespan (max finish time).
func StreamStats(done []core.CompletedJob, nodes int, makespan float64) QueueStats {
	var qs QueueStats
	if len(done) == 0 || nodes <= 0 || makespan <= 0 {
		return qs
	}

	// Utilization: per-node union of [Started, Finished) intervals
	// (co-located jobs overlap; the union counts the wall time the
	// node held at least one resident).
	type iv struct{ s, e float64 }
	byNode := map[int][]iv{}
	for _, c := range done {
		byNode[c.Node] = append(byNode[c.Node], iv{c.Started, c.Finished})
	}
	busy := 0.0
	for _, ivs := range byNode {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].s < ivs[j].s })
		curS, curE := ivs[0].s, ivs[0].e
		for _, v := range ivs[1:] {
			if v.s > curE {
				busy += curE - curS
				curS, curE = v.s, v.e
				continue
			}
			if v.e > curE {
				curE = v.e
			}
		}
		busy += curE - curS
	}
	qs.Utilization = busy / (float64(nodes) * makespan)

	// Wait-queue length over time: +1 at submit, −1 at start, swept in
	// time order with time-weighted durations per level.
	type ev struct {
		at float64
		d  int
	}
	evs := make([]ev, 0, 2*len(done))
	for _, c := range done {
		evs = append(evs, ev{c.Submitted, +1}, ev{c.Started, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return evs[i].d < evs[j].d // starts drain before same-instant submits
	})
	levelDur := map[int]float64{}
	depth, prevAt := 0, 0.0
	for _, e := range evs {
		if e.at > prevAt {
			levelDur[depth] += e.at - prevAt
			prevAt = e.at
		}
		depth += e.d
		if depth > qs.MaxQueueLen {
			qs.MaxQueueLen = depth
		}
	}
	if makespan > prevAt {
		levelDur[depth] += makespan - prevAt
	}
	levels := make([]int, 0, len(levelDur))
	total := 0.0
	for l, d := range levelDur {
		levels = append(levels, l)
		total += d
		qs.MeanQueueLen += float64(l) * d
	}
	if total > 0 {
		qs.MeanQueueLen /= total
		sort.Ints(levels)
		cum := 0.0
		qs.P95QueueLen = float64(levels[len(levels)-1])
		for _, l := range levels {
			cum += levelDur[l]
			if cum >= 0.95*total {
				qs.P95QueueLen = float64(l)
				break
			}
		}
	}

	waits := make([]float64, 0, len(done))
	sojourns := make([]float64, 0, len(done))
	for _, c := range done {
		waits = append(waits, c.Started-c.Submitted)
		sojourns = append(sojourns, c.Finished-c.Submitted)
	}
	sort.Float64s(waits)
	sort.Float64s(sojourns)
	qs.WaitP50, qs.WaitP95, qs.WaitP99 = pct(waits, 0.50), pct(waits, 0.95), pct(waits, 0.99)
	qs.SojournP50, qs.SojournP95, qs.SojournP99 = pct(sojourns, 0.50), pct(sojourns, 0.95), pct(sojourns, 0.99)
	return qs
}

// pct is the nearest-rank percentile of a sorted sample.
func pct(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// AddRows appends the stats to a result table.
func (qs QueueStats) AddRows(tbl *Table) {
	tbl.AddRow("utilization", qs.Utilization)
	tbl.AddRow("mean queue length", qs.MeanQueueLen)
	tbl.AddRow("p95 queue length", qs.P95QueueLen)
	tbl.AddRow("max queue length", qs.MaxQueueLen)
	tbl.AddRow("wait p50/p95/p99 (s)", fmt.Sprintf("%.1f / %.1f / %.1f", qs.WaitP50, qs.WaitP95, qs.WaitP99))
	tbl.AddRow("sojourn p50/p95/p99 (s)", fmt.Sprintf("%.1f / %.1f / %.1f", qs.SojournP50, qs.SojournP95, qs.SojournP99))
}

// OnlineScenario drives the online ECoST scheduler with a generated
// scenario stream (internal/scenario) and reports cluster EDP plus the
// queueing observables. It is OnlineTrace for production-shaped load:
// open-loop arrival processes, heavy-tailed sizes, recurring tenants.
func OnlineScenario(env *Env, spec scenario.Spec, nodes int) (Table, OnlineData, QueueStats, error) {
	arrivals, err := scenario.Generate(spec)
	if err != nil {
		return Table{}, OnlineData{}, QueueStats{}, err
	}
	return onlineScenarioArrivals(env, spec.String(), arrivals, nodes)
}

// OnlineReplay drives the scheduler with a pre-parsed arrival stream
// (a replayed JSONL trace). The run is indistinguishable from the
// generating run: identical streams produce identical tables.
func OnlineReplay(env *Env, label string, arrivals []trace.Arrival, nodes int) (Table, OnlineData, QueueStats, error) {
	return onlineScenarioArrivals(env, label, arrivals, nodes)
}

func onlineScenarioArrivals(env *Env, label string, arrivals []trace.Arrival, nodes int) (Table, OnlineData, QueueStats, error) {
	data, _, done, err := runOnlineStream(env, arrivals, nodes, false, env.LkT, nil)
	if err != nil {
		return Table{}, data, QueueStats{}, err
	}
	qs := StreamStats(done, nodes, data.Makespan)
	tbl := Table{
		Title:  fmt.Sprintf("Online ECoST scenario: %s, %d node(s)", label, nodes),
		Header: []string{"metric", "value"},
	}
	addOnlineRows(&tbl, data)
	qs.AddRows(&tbl)
	tbl.Notes = append(tbl.Notes,
		"utilization is busy node-time over nodes x makespan; queue lengths are time-weighted")
	return tbl, data, qs, nil
}

// CurvePoint is one load level of a utilization-vs-EDP sweep.
type CurvePoint struct {
	MeanGap     float64 // requested mean inter-arrival (s)
	Utilization float64
	EDP         float64
	EnergyJ     float64
	Makespan    float64
	MeanWait    float64
	SojournP95  float64
	MeanQueue   float64
}

// UtilizationCurve sweeps the arrival rate of a base scenario across
// the given mean inter-arrival gaps and reports utilization vs. EDP —
// the saturation study the paper never ran. Each point reruns the
// scenario with the same seed and substreams, so only the arrival
// tempo changes (the Split contract keeps apps and sizes pinned).
func UtilizationCurve(env *Env, base scenario.Spec, nodes int, meanGaps []float64) (Table, []CurvePoint, error) {
	tbl := Table{
		Title:  fmt.Sprintf("Utilization vs. EDP: %s, %d node(s)", base.String(), nodes),
		Header: []string{"mean gap (s)", "utilization", "EDP (J·s)", "energy (kJ)", "mean wait (s)", "p95 sojourn (s)", "mean queue"},
	}
	var points []CurvePoint
	for _, gap := range meanGaps {
		spec := base
		spec.Arrivals = withMeanGap(base.Arrivals, gap)
		_, data, qs, err := OnlineScenario(env, spec, nodes)
		if err != nil {
			return Table{}, nil, err
		}
		p := CurvePoint{
			MeanGap:     gap,
			Utilization: qs.Utilization,
			EDP:         data.EDP,
			EnergyJ:     data.EnergyJ,
			Makespan:    data.Makespan,
			MeanWait:    data.MeanWait,
			SojournP95:  qs.SojournP95,
			MeanQueue:   qs.MeanQueueLen,
		}
		points = append(points, p)
		tbl.AddRow(p.MeanGap, p.Utilization, p.EDP, p.EnergyJ/1000, p.MeanWait, p.SojournP95, p.MeanQueue)
	}
	tbl.Notes = append(tbl.Notes,
		"each row reruns the scenario at a different arrival tempo; apps and sizes stay pinned (Split substreams)")
	return tbl, points, nil
}

// withMeanGap retunes an arrival process to a new mean gap, preserving
// its shape: Poisson/fixed/diurnal move their mean, MMPP scales both
// regime means proportionally, and the batch process becomes Poisson
// (a batch has no rate to sweep).
func withMeanGap(a scenario.ArrivalSpec, gap float64) scenario.ArrivalSpec {
	switch a.Kind {
	case scenario.ArrivalMMPP:
		// Stationary regime occupancy from the stay probabilities.
		pc := (1 - a.BurstStay) / ((1 - a.CalmStay) + (1 - a.BurstStay))
		cur := pc*a.CalmMean + (1-pc)*a.BurstMean
		f := gap / cur
		a.CalmMean *= f
		a.BurstMean *= f
	case scenario.ArrivalFixed, scenario.ArrivalPoisson, scenario.ArrivalDiurnal:
		a.Mean = gap
	default:
		a = scenario.ArrivalSpec{Kind: scenario.ArrivalPoisson, Mean: gap}
	}
	return a
}

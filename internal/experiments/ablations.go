package experiments

import (
	"fmt"

	"ecost/internal/core"
	"ecost/internal/mapreduce"
	"ecost/internal/perfctr"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// This file holds the ablation studies DESIGN.md §7 calls out — they are
// not paper artifacts but probe the design decisions the paper asserts:
// that decoupling pairing from tuning is nearly free, that the
// class-priority decision tree beats arbitrary pairing, and that the
// whole pipeline tolerates measurement noise.

// AblationDecouplingData compares pairing/tuning combinations.
type AblationDecouplingData struct {
	// EDP per variant, normalized to the jointly-optimal UB.
	TreePairingTuned float64 // ECoST: decision-tree pairing + STP tuning
	ArrivalPairTuned float64 // arrival-order pairing + STP tuning
	TreePairingNT    float64 // decision-tree pairing, untuned
	ArrivalPairNT    float64 // arrival-order pairing, untuned (CBM)
}

// AblationDecoupling quantifies what each half of ECoST contributes on a
// mixed scenario: pairing choice (decision tree vs arrival order) and
// tuning (STP vs stock configuration).
func AblationDecoupling(env *Env, scenario string, nodes int) (Table, AblationDecouplingData, error) {
	var data AblationDecouplingData
	wl, err := core.Scenario(scenario)
	if err != nil {
		return Table{}, data, err
	}
	// The LkT tuner isolates the pairing question: its accuracy does not
	// depend on database coverage, so the comparison measures pairing
	// and tuning contributions rather than model-fit artifacts.
	runner := &core.PolicyRunner{Oracle: env.Oracle, DB: env.DB, Tuner: env.LkT, Profiler: env.Profiler}

	ub, err := runner.Run(core.UB, wl, nodes)
	if err != nil {
		return Table{}, data, err
	}
	ecost, err := runner.Run(core.ECoST, wl, nodes)
	if err != nil {
		return Table{}, data, err
	}
	cbm, err := runner.Run(core.CBM, wl, nodes)
	if err != nil {
		return Table{}, data, err
	}

	// Arrival-order pairing + STP tuning: pair (0,1), (2,3), … but tune
	// each pair with the predictor.
	arrTuned, err := arrivalPairTuned(env, wl, nodes)
	if err != nil {
		return Table{}, data, err
	}
	// Decision-tree pairing, untuned: pair via the class tree but run at
	// the stock configuration with an even core split.
	treeNT, err := treePairUntuned(env, wl, nodes)
	if err != nil {
		return Table{}, data, err
	}

	data.TreePairingTuned = ecost.EDP / ub.EDP
	data.ArrivalPairTuned = arrTuned / ub.EDP
	data.TreePairingNT = treeNT / ub.EDP
	data.ArrivalPairNT = cbm.EDP / ub.EDP

	tbl := Table{
		Title:  fmt.Sprintf("Ablation: pairing × tuning on %s, %d node(s), EDP normalized to UB", scenario, nodes),
		Header: []string{"pairing", "tuning", "EDP/UB"},
	}
	tbl.AddRow("decision tree", "STP (ECoST)", data.TreePairingTuned)
	tbl.AddRow("arrival order", "STP", data.ArrivalPairTuned)
	tbl.AddRow("decision tree", "none", data.TreePairingNT)
	tbl.AddRow("arrival order", "none (CBM)", data.ArrivalPairNT)
	tbl.Notes = append(tbl.Notes,
		"tuning contributes most; the decision tree recovers the rest of the gap to UB")
	return tbl, data, nil
}

// arrivalPairTuned pairs jobs in arrival order and tunes each pair with
// the environment's STP technique.
func arrivalPairTuned(env *Env, wl core.Workload, nodes int) (float64, error) {
	lanes := make([][]abUnit, nodes)
	li := 0
	for i := 0; i+1 < len(wl.Jobs); i += 2 {
		a, b := wl.Jobs[i], wl.Jobs[i+1]
		oa, err := env.Observe(a.App, a.SizeGB)
		if err != nil {
			return 0, err
		}
		ob, err := env.Observe(b.App, b.SizeGB)
		if err != nil {
			return 0, err
		}
		cfg, err := env.LkT.PredictBest(oa, ob)
		if err != nil {
			return 0, err
		}
		out, err := env.Oracle.EvalPair(a.App, a.SizeGB*1024, b.App, b.SizeGB*1024, cfg)
		if err != nil {
			return 0, err
		}
		lanes[li%nodes] = append(lanes[li%nodes], abUnit{out.Makespan, out.EnergyJ})
		li++
	}
	return lanesEDP(lanes, env.Model.Spec.IdleWatts), nil
}

// treePairUntuned pairs jobs with the class decision tree but runs each
// pair untuned at an even core split.
func treePairUntuned(env *Env, wl core.Workload, nodes int) (float64, error) {
	q := core.NewWaitQueue()
	for i, j := range wl.Jobs {
		obs, err := env.Observe(j.App, j.SizeGB)
		if err != nil {
			return 0, err
		}
		q.Push(&core.Job{ID: i, Obs: obs, Class: env.DB.Classifier().Classify(obs), EstTime: j.SizeGB})
	}
	half := env.Model.Spec.Cores / 2
	lanes := make([][]abUnit, nodes)
	li := 0
	for q.Len() > 0 {
		a := q.PopHead()
		partner := q.SelectPartner(a.Class, env.DB.PartnerPriority(a.Class))
		if partner == nil {
			out, _, err := env.Model.Solo(mapreduce.RunSpec{
				App: a.Obs.App, DataMB: a.Obs.SizeGB * 1024, Cfg: core.NTConfig(env.Model.Spec.Cores),
			})
			_ = out
			if err != nil {
				return 0, err
			}
			co, err := env.Model.CoLocate([]mapreduce.RunSpec{{
				App: a.Obs.App, DataMB: a.Obs.SizeGB * 1024, Cfg: core.NTConfig(env.Model.Spec.Cores),
			}})
			if err != nil {
				return 0, err
			}
			lanes[li%nodes] = append(lanes[li%nodes], abUnit{co.Makespan, co.EnergyJ})
			li++
			continue
		}
		b, err := q.Take(partner.ID)
		if err != nil {
			return 0, err
		}
		out, err := env.Oracle.EvalPair(
			a.Obs.App, a.Obs.SizeGB*1024, b.Obs.App, b.Obs.SizeGB*1024,
			[2]mapreduce.Config{core.NTConfig(half), core.NTConfig(half)},
		)
		if err != nil {
			return 0, err
		}
		lanes[li%nodes] = append(lanes[li%nodes], abUnit{out.Makespan, out.EnergyJ})
		li++
	}
	return lanesEDP(lanes, env.Model.Spec.IdleWatts), nil
}

// abUnit is one scheduled pair/solo execution in the ablation runners.
type abUnit struct{ time, energy float64 }

// lanesEDP aggregates per-node unit lists the same way PolicyRunner does.
func lanesEDP(lanes [][]abUnit, idleW float64) float64 {
	var makespan float64
	busy := make([]float64, len(lanes))
	for i, lane := range lanes {
		for _, u := range lane {
			busy[i] += u.time
		}
		if busy[i] > makespan {
			makespan = busy[i]
		}
	}
	var energy float64
	for i, lane := range lanes {
		for _, u := range lane {
			energy += u.energy
		}
		energy += idleW * (makespan - busy[i])
	}
	return energy * makespan
}

// AblationNoiseData records pipeline robustness to measurement noise.
type AblationNoiseData struct {
	// Scale lists the noise multipliers; Misclassified the classifier
	// error count (of total Observations), MeanErr the LkT tuning error
	// at that noise level.
	Scale         []float64
	Misclassified []int
	Total         int
	MeanErrPct    []float64
}

// AblationNoise injects increasing PMU/monitor noise into the profiling
// path and measures classification and tuning degradation — the failure
// injection study of DESIGN.md §7.
func AblationNoise(env *Env, scales []float64) (Table, AblationNoiseData, error) {
	if len(scales) == 0 {
		scales = []float64{0, 1, 10, 30}
	}
	data := AblationNoiseData{Scale: scales}
	pairs := []TestPair{
		{"nb", 5, "cf", 5}, {"svm", 5, "pr", 5}, {"hmm", 1, "km", 1},
	}
	tbl := Table{
		Title:  "Ablation: measurement-noise sensitivity of classification and LkT tuning",
		Header: []string{"noise x", "misclassified", "LkT mean err %"},
	}
	for _, scale := range scales {
		sampler := perfctr.NewSampler(sim.NewRNG(env.Seed + int64(scale*100)))
		sampler.BaseNoise *= scale
		sampler.MuxNoise *= scale
		prof := &core.Profiler{Model: env.Model, Sampler: sampler}

		mis := 0
		total := 0
		var errSum float64
		for _, app := range workloads.Testing() {
			o, err := prof.Observe(app, 5)
			if err != nil {
				return Table{}, data, err
			}
			total++
			if env.DB.Classifier().Classify(o) != app.Class {
				mis++
			}
		}
		for _, tp := range pairs {
			a := workloads.MustByName(tp.NameA)
			b := workloads.MustByName(tp.NameB)
			oa, err := prof.Observe(a, tp.SizeA)
			if err != nil {
				return Table{}, data, err
			}
			ob, err := prof.Observe(b, tp.SizeB)
			if err != nil {
				return Table{}, data, err
			}
			cfg, err := env.LkT.PredictBest(oa, ob)
			if err != nil {
				return Table{}, data, err
			}
			out, err := env.Oracle.EvalPair(a, tp.SizeA*1024, b, tp.SizeB*1024, cfg)
			if err != nil {
				return Table{}, data, err
			}
			colao, err := env.Oracle.COLAO(a, tp.SizeA*1024, b, tp.SizeB*1024)
			if err != nil {
				return Table{}, data, err
			}
			errSum += 100 * (out.EDP - colao.Out.EDP) / colao.Out.EDP
		}
		data.Misclassified = append(data.Misclassified, mis)
		data.Total = total
		mean := errSum / float64(len(pairs))
		data.MeanErrPct = append(data.MeanErrPct, mean)
		tbl.AddRow(scale, fmt.Sprintf("%d/%d", mis, total), mean)
	}
	tbl.Notes = append(tbl.Notes,
		"the paper's 3-run averaging keeps single-digit noise harmless; classification degrades first")
	return tbl, data, nil
}

// AblationBeyondTwoData records EDP per co-location degree.
type AblationBeyondTwoData struct {
	Degree []int
	// RelEDP is the per-unit-of-work EDP normalized to the 2-way run.
	RelEDP []float64
}

// AblationBeyondTwo reproduces the §4.2 observation that co-locating
// more than two applications per node degrades energy efficiency: the
// same total work (eight sort+terasort jobs) is run 2-, 4- and 8-way
// co-located and scored per unit of work.
func AblationBeyondTwo(env *Env) (Table, AblationBeyondTwoData, error) {
	var data AblationBeyondTwoData
	apps := []string{"st", "ts"}
	mk := func(degree int) ([]mapreduce.RunSpec, error) {
		mappers := env.Model.Spec.Cores / degree
		if mappers < 1 {
			return nil, fmt.Errorf("degree %d exceeds cores", degree)
		}
		var specs []mapreduce.RunSpec
		for i := 0; i < degree; i++ {
			specs = append(specs, mapreduce.RunSpec{
				App:    workloads.MustByName(apps[i%2]),
				DataMB: 10240,
				Cfg:    mapreduce.Config{Freq: 2.0, Block: 256, Mappers: mappers},
			})
		}
		return specs, nil
	}
	tbl := Table{
		Title:  "Ablation: co-locating beyond two applications per node (EDP per unit work, 2-way = 1)",
		Header: []string{"co-located apps", "EDP per unit work (norm.)"},
	}
	var base float64
	for _, degree := range []int{2, 4, 8} {
		specs, err := mk(degree)
		if err != nil {
			return Table{}, data, err
		}
		co, err := env.Model.CoLocate(specs)
		if err != nil {
			return Table{}, data, err
		}
		// Per unit of work: a k-way run does k/2 times the work of the
		// 2-way run; serialized 2-way batches would scale EDP by (k/2)².
		factor := float64(degree) / 2
		perWork := co.EDP / (factor * factor)
		if degree == 2 {
			base = perWork
		}
		rel := perWork / base
		data.Degree = append(data.Degree, degree)
		data.RelEDP = append(data.RelEDP, rel)
		tbl.AddRow(degree, rel)
	}
	tbl.Notes = append(tbl.Notes,
		"paper §4.2: co-locating 4+ applications degrades EDP significantly; 2 is the sweet spot")
	return tbl, data, nil
}

// AblationSizeAwareData compares class-only pairing against the
// size-aware extension on size-mixed workloads.
type AblationSizeAwareData struct {
	// EDP/UB per scenario for the class-only and size-aware variants.
	ClassOnly map[string]float64
	SizeAware map[string]float64
}

// AblationSizeAware evaluates the size-aware pairing extension: on
// workloads whose jobs mix 1/5/10 GB inputs, preferring duration-matched
// partners within the best class should close part of the gap to UB
// (which optimizes the matching globally). On uniform-size workloads the
// extension is a no-op by construction.
func AblationSizeAware(env *Env, nodes int) (Table, AblationSizeAwareData, error) {
	data := AblationSizeAwareData{
		ClassOnly: map[string]float64{},
		SizeAware: map[string]float64{},
	}
	tbl := Table{
		Title:  "Ablation: size-aware pairing on size-mixed workloads (EDP normalized to UB)",
		Header: []string{"scenario", "class-only", "size-aware"},
	}
	for _, name := range []string{"WS3", "WS4", "WS6"} {
		wl, err := core.ScenarioMixed(name, []float64{5, 10, 1})
		if err != nil {
			return Table{}, data, err
		}
		base := &core.PolicyRunner{Oracle: env.Oracle, DB: env.DB, Tuner: env.LkT, Profiler: env.Profiler}
		ub, err := base.Run(core.UB, wl, nodes)
		if err != nil {
			return Table{}, data, err
		}
		classOnly, err := base.Run(core.ECoST, wl, nodes)
		if err != nil {
			return Table{}, data, err
		}
		sized := &core.PolicyRunner{Oracle: env.Oracle, DB: env.DB, Tuner: env.LkT, Profiler: env.Profiler, SizeAware: true}
		withSize, err := sized.Run(core.ECoST, wl, nodes)
		if err != nil {
			return Table{}, data, err
		}
		data.ClassOnly[name] = classOnly.EDP / ub.EDP
		data.SizeAware[name] = withSize.EDP / ub.EDP
		tbl.AddRow(name, data.ClassOnly[name], data.SizeAware[name])
	}
	tbl.Notes = append(tbl.Notes,
		"the paper's decision tree considers class only; on size-mixed workloads the duration tie-breaker",
		"closes a large part of the remaining gap to the brute-force matching")
	return tbl, data, nil
}

package experiments

import (
	"fmt"

	"ecost/internal/core"
	"ecost/internal/workloads"
)

// Fig5Data is the class-pair priority ranking the scheduler's decision
// tree is derived from.
type Fig5Data struct {
	Ranking []core.RankedPair
	// PartnerOrder[c] is the preferred partner-class order when an
	// application of class c runs on the node.
	PartnerOrder map[workloads.Class][]workloads.Class
}

// Fig5PriorityRanking reproduces Figure 5: the ranking of co-located
// class pairs that drives the pairing decision tree (I-I first, M-X
// last). The paper ranks pairs by lowest tuned EDP over all core
// partitionings; with heterogeneous application weights the equivalent
// weight-free signal is the mean co-location benefit (ILAO/COLAO) —
// see core.Database.PriorityRanking.
func Fig5PriorityRanking(env *Env) (Table, Fig5Data, error) {
	data := Fig5Data{
		Ranking:      env.DB.PriorityRanking(),
		PartnerOrder: map[workloads.Class][]workloads.Class{},
	}
	tbl := Table{
		Title:  "Figure 5: class-pair priority ranking (co-location benefit, best first)",
		Header: []string{"rank", "pair", "mean ILAO/COLAO"},
	}
	for i, rp := range data.Ranking {
		tbl.AddRow(i+1, rp.Pair.String(), rp.Benefit)
	}
	for _, c := range workloads.Classes() {
		order := env.DB.PartnerPriority(c)
		data.PartnerOrder[c] = order
		tbl.Notes = append(tbl.Notes, fmt.Sprintf("running %v → partner priority %v", c, order))
	}
	tbl.Notes = append(tbl.Notes,
		"paper reads: I-I ranks first; I-C, I-H, H-H, H-C, C-C next; M-X last")
	return tbl, data, nil
}

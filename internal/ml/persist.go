package ml

import (
	"encoding/json"
	"fmt"
	"io"
)

// Model persistence: trained regressors serialize to a tagged JSON
// envelope so a deployment can build the ECoST database and models once
// (cmd/ecost-train) and ship them to the schedulers. Every regressor in
// this package round-trips through SaveModel/LoadModel.

// modelEnvelope tags the concrete type.
type modelEnvelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// SaveModel writes a trained regressor to w.
func SaveModel(w io.Writer, m Regressor) error {
	kind, payload, err := encodeModel(m)
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(modelEnvelope{Kind: kind, Data: payload})
}

// LoadModel reads a regressor written by SaveModel.
func LoadModel(r io.Reader) (Regressor, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("ml: load model: %w", err)
	}
	return decodeModel(env)
}

func encodeModel(m Regressor) (string, json.RawMessage, error) {
	switch v := m.(type) {
	case *LinearRegression:
		raw, err := json.Marshal(v)
		return "linreg", raw, err
	case *LookupTable:
		raw, err := json.Marshal(lookupDTO{Scaler: v.scaler, Rows: v.rows, Y: v.y})
		return "lookup", raw, err
	case *REPTree:
		raw, err := json.Marshal(treeToDTO(v))
		return "reptree", raw, err
	case *MLP:
		raw, err := json.Marshal(mlpDTO{
			Hidden: v.Hidden, In: v.in, W1: v.w1, W2: v.w2,
			Scaler: v.scaler, YMean: v.yMean, YStd: v.yStd,
		})
		return "mlp", raw, err
	case *Bagging:
		dto := baggingDTO{}
		for _, member := range v.members {
			kind, raw, err := encodeModel(member)
			if err != nil {
				return "", nil, err
			}
			dto.Members = append(dto.Members, modelEnvelope{Kind: kind, Data: raw})
		}
		raw, err := json.Marshal(dto)
		return "bagging", raw, err
	default:
		return "", nil, fmt.Errorf("ml: save model: unsupported type %T", m)
	}
}

func decodeModel(env modelEnvelope) (Regressor, error) {
	switch env.Kind {
	case "linreg":
		m := &LinearRegression{}
		if err := json.Unmarshal(env.Data, m); err != nil {
			return nil, fmt.Errorf("ml: load linreg: %w", err)
		}
		return m, nil
	case "lookup":
		var dto lookupDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, fmt.Errorf("ml: load lookup: %w", err)
		}
		return &LookupTable{scaler: dto.Scaler, rows: dto.Rows, y: dto.Y}, nil
	case "reptree":
		var dto treeDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, fmt.Errorf("ml: load reptree: %w", err)
		}
		return dtoToTree(dto)
	case "mlp":
		var dto mlpDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, fmt.Errorf("ml: load mlp: %w", err)
		}
		m := &MLP{Hidden: dto.Hidden, in: dto.In, w1: dto.W1, w2: dto.W2,
			scaler: dto.Scaler, yMean: dto.YMean, yStd: dto.YStd}
		if m.Hidden != len(m.w1) || len(m.w2) != m.Hidden+1 {
			return nil, fmt.Errorf("ml: load mlp: inconsistent shapes")
		}
		return m, nil
	case "bagging":
		var dto baggingDTO
		if err := json.Unmarshal(env.Data, &dto); err != nil {
			return nil, fmt.Errorf("ml: load bagging: %w", err)
		}
		b := &Bagging{N: len(dto.Members)}
		for _, me := range dto.Members {
			member, err := decodeModel(me)
			if err != nil {
				return nil, err
			}
			b.members = append(b.members, member)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("ml: load model: unknown kind %q", env.Kind)
	}
}

type lookupDTO struct {
	Scaler *Scaler     `json:"scaler"`
	Rows   [][]float64 `json:"rows"`
	Y      []float64   `json:"y"`
}

type mlpDTO struct {
	Hidden int         `json:"hidden"`
	In     int         `json:"in"`
	W1     [][]float64 `json:"w1"`
	W2     []float64   `json:"w2"`
	Scaler *Scaler     `json:"scaler"`
	YMean  float64     `json:"y_mean"`
	YStd   float64     `json:"y_std"`
}

type baggingDTO struct {
	Members []modelEnvelope `json:"members"`
}

// treeDTO flattens the tree into an index-linked node array.
type treeDTO struct {
	Nodes []nodeDTO `json:"nodes"` // node 0 is the root; empty = untrained
}

type nodeDTO struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t"`
	Value   float64 `json:"v"`
	Left    int     `json:"l"` // -1 = none
	Right   int     `json:"r"`
}

func treeToDTO(t *REPTree) treeDTO {
	var dto treeDTO
	if t.root == nil {
		return dto
	}
	var walk func(n *node) int
	walk = func(n *node) int {
		idx := len(dto.Nodes)
		dto.Nodes = append(dto.Nodes, nodeDTO{
			Feature: n.feature, Thresh: n.thresh, Value: n.value, Left: -1, Right: -1,
		})
		if n.left != nil {
			dto.Nodes[idx].Left = walk(n.left)
		}
		if n.right != nil {
			dto.Nodes[idx].Right = walk(n.right)
		}
		return idx
	}
	walk(t.root)
	return dto
}

func dtoToTree(dto treeDTO) (*REPTree, error) {
	t := NewREPTree()
	if len(dto.Nodes) == 0 {
		return t, nil
	}
	nodes := make([]*node, len(dto.Nodes))
	for i, nd := range dto.Nodes {
		nodes[i] = &node{feature: nd.Feature, thresh: nd.Thresh, value: nd.Value}
	}
	for i, nd := range dto.Nodes {
		if nd.Left >= 0 {
			if nd.Left >= len(nodes) || nd.Left <= i {
				return nil, fmt.Errorf("ml: load reptree: bad left link %d at node %d", nd.Left, i)
			}
			nodes[i].left = nodes[nd.Left]
		}
		if nd.Right >= 0 {
			if nd.Right >= len(nodes) || nd.Right <= i {
				return nil, fmt.Errorf("ml: load reptree: bad right link %d at node %d", nd.Right, i)
			}
			nodes[i].right = nodes[nd.Right]
		}
		if nodes[i].feature >= 0 && (nodes[i].left == nil || nodes[i].right == nil) {
			return nil, fmt.Errorf("ml: load reptree: internal node %d missing a child", i)
		}
	}
	t.root = nodes[0]
	t.leaves = countLeaves(t.root)
	return t, nil
}

package ml

import (
	"fmt"
	"math"
)

// LinearRegression is ordinary least squares with an intercept, solved by
// the normal equations with a small ridge term for numerical stability —
// the LR predictor of the paper (which it finds too weak for EDP: the
// response is strongly non-linear in the tuning knobs).
type LinearRegression struct {
	// Ridge is the L2 regularization added to the diagonal (not applied
	// to the intercept). Zero gives plain OLS with a tiny jitter for
	// invertibility.
	Ridge float64

	// Weights holds the fitted coefficients; Intercept the bias term.
	Weights   []float64
	Intercept float64
}

// NewLinearRegression returns an OLS model.
func NewLinearRegression() *LinearRegression { return &LinearRegression{} }

// Train fits the model with the normal equations (XᵀX + λI)w = Xᵀy.
func (m *LinearRegression) Train(X [][]float64, y []float64) error {
	rows, cols, err := checkXY(X, y)
	if err != nil {
		return fmt.Errorf("linear regression: %w", err)
	}
	d := cols + 1 // intercept column
	// Build the normal equations.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1) // augmented with Xᵀy
	}
	for r := 0; r < rows; r++ {
		xr := make([]float64, d)
		xr[0] = 1
		copy(xr[1:], X[r])
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += xr[i] * xr[j]
			}
			a[i][d] += xr[i] * y[r]
		}
	}
	// The ridge is relative to each diagonal entry's own scale so that
	// constant or collinear feature columns (common when a class pair has
	// a single training application) stay invertible regardless of the
	// features' magnitudes.
	rel := m.Ridge
	if rel <= 0 {
		rel = 1e-6
	}
	for i := 1; i < d; i++ {
		a[i][i] += rel*a[i][i] + 1e-9
	}
	w, err := solveGauss(a)
	if err != nil {
		return fmt.Errorf("linear regression: %w", err)
	}
	m.Intercept = w[0]
	m.Weights = w[1:]
	return nil
}

// Predict returns wᵀx + b. Extra features beyond the trained width are
// ignored; missing ones are treated as zero.
func (m *LinearRegression) Predict(x []float64) float64 {
	s := m.Intercept
	for i, w := range m.Weights {
		if i < len(x) {
			s += w * x[i]
		}
	}
	return s
}

// solveGauss solves the augmented system a·w = rhs (rhs in the last
// column) by Gaussian elimination with partial pivoting.
func solveGauss(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-14 {
			return nil, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[p] = a[p], a[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	w := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := a[r][n]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * w[c]
		}
		w[r] = s / a[r][r]
	}
	return w, nil
}

package ml

import (
	"fmt"
	"math"

	"ecost/internal/sim"
)

// MLP is a multilayer perceptron regressor with one sigmoid hidden layer
// and a linear output, trained by stochastic gradient descent with
// momentum — the most accurate (and most expensive) of the paper's EDP
// predictors. Inputs and the target are standardized internally, so the
// network trains on well-conditioned data regardless of feature scales.
type MLP struct {
	// Hidden is the hidden-layer width.
	Hidden int
	// Epochs is the number of full passes over the training data.
	Epochs int
	// LearningRate and Momentum follow Weka's MLP defaults in spirit.
	LearningRate float64
	Momentum     float64
	// Seed drives weight initialization and sample shuffling.
	Seed int64

	w1, dw1 [][]float64 // input→hidden (+bias)
	w2, dw2 []float64   // hidden→output (+bias)
	scaler  *Scaler
	yMean   float64
	yStd    float64
	in      int
}

// NewMLP returns an MLP with defaults suited to the small tabular
// datasets of this study.
func NewMLP() *MLP {
	return &MLP{Hidden: 16, Epochs: 400, LearningRate: 0.02, Momentum: 0.9, Seed: 1}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Train fits the network with SGD, retrying with a smaller learning
// rate if the optimization diverges (standardized targets make a
// non-finite output an unambiguous divergence signal).
func (m *MLP) Train(X [][]float64, y []float64) error {
	lr0 := m.LearningRate
	if lr0 <= 0 {
		lr0 = 0.02
	}
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		m.LearningRate = lr0 / math.Pow(4, float64(attempt))
		if err = m.train(X, y); err == nil {
			if len(X) > 0 && isFinite(m.Predict(X[0])) {
				m.LearningRate = lr0
				return nil
			}
			err = fmt.Errorf("mlp: diverged at learning rate %g", m.LearningRate)
		}
	}
	m.LearningRate = lr0
	return err
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func (m *MLP) train(X [][]float64, y []float64) error {
	rows, cols, err := checkXY(X, y)
	if err != nil {
		return fmt.Errorf("mlp: %w", err)
	}
	if m.Hidden < 1 {
		m.Hidden = 1
	}
	if m.Epochs < 1 {
		m.Epochs = 1
	}
	m.in = cols

	m.scaler, err = FitScaler(X)
	if err != nil {
		return fmt.Errorf("mlp: %w", err)
	}
	Xs := m.scaler.TransformAll(X)

	// Standardize the target too.
	var sum, sq float64
	for _, v := range y {
		sum += v
	}
	m.yMean = sum / float64(rows)
	for _, v := range y {
		d := v - m.yMean
		sq += d * d
	}
	m.yStd = math.Sqrt(sq / float64(rows))
	if m.yStd < 1e-12 {
		m.yStd = 1
	}
	ys := make([]float64, rows)
	for i, v := range y {
		ys[i] = (v - m.yMean) / m.yStd
	}

	rng := sim.NewRNG(m.Seed)
	initW := func(n int) []float64 {
		w := make([]float64, n)
		scale := 1 / math.Sqrt(float64(n))
		for i := range w {
			w[i] = rng.Normal(0, scale)
		}
		return w
	}
	m.w1 = make([][]float64, m.Hidden)
	m.dw1 = make([][]float64, m.Hidden)
	for h := range m.w1 {
		m.w1[h] = initW(cols + 1)
		m.dw1[h] = make([]float64, cols+1)
	}
	m.w2 = initW(m.Hidden + 1)
	m.dw2 = make([]float64, m.Hidden+1)

	hidden := make([]float64, m.Hidden)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		lr := m.LearningRate / (1 + 0.01*float64(epoch))
		for _, i := range rng.Perm(rows) {
			x := Xs[i]
			// Forward.
			for h := 0; h < m.Hidden; h++ {
				s := m.w1[h][cols] // bias
				for j := 0; j < cols; j++ {
					s += m.w1[h][j] * x[j]
				}
				hidden[h] = sigmoid(s)
			}
			out := m.w2[m.Hidden]
			for h := 0; h < m.Hidden; h++ {
				out += m.w2[h] * hidden[h]
			}
			// Backward (squared error), with the gradient clipped: the
			// targets are standardized, so an error beyond a few σ only
			// destabilizes SGD without informing the fit.
			errOut := out - ys[i]
			if errOut > 3 {
				errOut = 3
			} else if errOut < -3 {
				errOut = -3
			}
			for h := 0; h < m.Hidden; h++ {
				g := errOut * hidden[h]
				m.dw2[h] = m.Momentum*m.dw2[h] - lr*g
				deltaH := errOut * m.w2[h] * hidden[h] * (1 - hidden[h])
				for j := 0; j < cols; j++ {
					gh := deltaH * x[j]
					m.dw1[h][j] = m.Momentum*m.dw1[h][j] - lr*gh
					m.w1[h][j] += m.dw1[h][j]
				}
				m.dw1[h][cols] = m.Momentum*m.dw1[h][cols] - lr*deltaH
				m.w1[h][cols] += m.dw1[h][cols]
				m.w2[h] += m.dw2[h]
			}
			m.dw2[m.Hidden] = m.Momentum*m.dw2[m.Hidden] - lr*errOut
			m.w2[m.Hidden] += m.dw2[m.Hidden]
		}
	}
	return nil
}

// Predict runs a forward pass.
func (m *MLP) Predict(x []float64) float64 {
	if m.scaler == nil {
		return 0
	}
	xs := m.scaler.Transform(x)
	out := m.w2[m.Hidden]
	for h := 0; h < m.Hidden; h++ {
		s := m.w1[h][m.in]
		for j := 0; j < m.in && j < len(xs); j++ {
			s += m.w1[h][j] * xs[j]
		}
		out += m.w2[h] * sigmoid(s)
	}
	return out*m.yStd + m.yMean
}

var _ Regressor = (*MLP)(nil)

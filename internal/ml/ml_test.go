package ml

import (
	"math"
	"testing"
	"testing/quick"

	"ecost/internal/sim"
)

// synthLinear builds y = 3 + 2x₀ − x₁ + noise.
func synthLinear(n int, noise float64, seed int64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := rng.Float64()*10 - 5
		x1 := rng.Float64()*4 - 2
		X[i] = []float64{x0, x1}
		y[i] = 3 + 2*x0 - x1 + rng.Normal(0, noise)
	}
	return X, y
}

// synthStep builds a piecewise-constant target no linear model can fit.
func synthStep(n int, seed int64) ([][]float64, []float64) {
	rng := sim.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x0 := rng.Float64() * 10
		x1 := rng.Float64() * 10
		X[i] = []float64{x0, x1}
		switch {
		case x0 < 3 && x1 < 5:
			y[i] = 10
		case x0 < 3:
			y[i] = -4
		case x1 < 7:
			y[i] = 2
		default:
			y[i] = 25
		}
	}
	return X, y
}

func TestAPE(t *testing.T) {
	if got := APE(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("APE(110,100) = %v", got)
	}
	if got := APE(0, 0); got != 0 {
		t.Fatalf("APE(0,0) = %v", got)
	}
	if got := APE(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("APE(1,0) = %v, want +Inf", got)
	}
	f := func(p, tr float64) bool {
		tr = math.Mod(math.Abs(tr), 1e6) + 1
		p = math.Mod(math.Abs(p), 1e6)
		return APE(p, tr) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 2}
	if got := MAE(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(2.0/3)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := MAPE(pred, truth); math.Abs(got-100.0/3) > 1e-9 {
		t.Errorf("MAPE = %v", got)
	}
	if !math.IsNaN(MAE(nil, nil)) || !math.IsNaN(MAPE([]float64{1}, []float64{1, 2})) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100, 7}, {3, 200, 7}, {5, 300, 7}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := s.TransformAll(X)
	for j := 0; j < 2; j++ {
		var sum, sq float64
		for i := range Z {
			sum += Z[i][j]
		}
		mean := sum / 3
		for i := range Z {
			d := Z[i][j] - mean
			sq += d * d
		}
		if math.Abs(mean) > 1e-9 || math.Abs(math.Sqrt(sq/3)-1) > 1e-9 {
			t.Errorf("column %d not standardized: mean=%v", j, mean)
		}
	}
	// Constant column passes through centred, not NaN.
	if Z[0][2] != 0 || math.IsNaN(Z[1][2]) {
		t.Errorf("constant column mishandled: %v", Z)
	}
}

func TestLinearRegressionRecoversCoefficients(t *testing.T) {
	X, y := synthLinear(500, 0.01, 1)
	m := NewLinearRegression()
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 0.05 {
		t.Errorf("intercept = %v, want ~3", m.Intercept)
	}
	if math.Abs(m.Weights[0]-2) > 0.05 || math.Abs(m.Weights[1]+1) > 0.05 {
		t.Errorf("weights = %v, want ~[2,-1]", m.Weights)
	}
	if got := m.Predict([]float64{1, 1}); math.Abs(got-4) > 0.2 {
		t.Errorf("Predict(1,1) = %v, want ~4", got)
	}
}

func TestLinearRegressionValidation(t *testing.T) {
	m := NewLinearRegression()
	if err := m.Train(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if err := m.Train([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("mismatched rows accepted")
	}
	if err := m.Train([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if err := m.Train([][]float64{{1}, {2}}, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN target accepted")
	}
}

func TestREPTreeFitsStepFunction(t *testing.T) {
	X, y := synthStep(800, 2)
	Xt, yt := synthStep(200, 3)

	tree := NewREPTree()
	if err := tree.Train(X, y); err != nil {
		t.Fatal(err)
	}
	var pred []float64
	for _, x := range Xt {
		pred = append(pred, tree.Predict(x))
	}
	if rmse := RMSE(pred, yt); rmse > 1.0 {
		t.Fatalf("REPTree RMSE on step function = %v, want ≈0", rmse)
	}
	if tree.Leaves() < 4 {
		t.Fatalf("tree has %d leaves, want ≥4 for 4 regions", tree.Leaves())
	}

	// Linear regression must be much worse on the same data — the
	// paper's core observation about LR for EDP prediction.
	lr := NewLinearRegression()
	if err := lr.Train(X, y); err != nil {
		t.Fatal(err)
	}
	var lpred []float64
	for _, x := range Xt {
		lpred = append(lpred, lr.Predict(x))
	}
	if lr, tr := RMSE(lpred, yt), RMSE(pred, yt); lr < 5*tr+1 {
		t.Fatalf("LR (%v) should be far worse than REPTree (%v) on non-linear data", lr, tr)
	}
}

func TestREPTreePruningShrinksTree(t *testing.T) {
	// With noisy targets, reduced-error pruning must cut leaves relative
	// to an unpruned tree.
	rng := sim.NewRNG(5)
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10}
		base := 0.0
		if X[i][0] > 5 {
			base = 10
		}
		y[i] = base + rng.Normal(0, 3)
	}
	unpruned := NewREPTree()
	unpruned.PruneFrac = 0
	unpruned.MinLeaf = 1
	if err := unpruned.Train(X, y); err != nil {
		t.Fatal(err)
	}
	pruned := NewREPTree()
	pruned.MinLeaf = 1
	if err := pruned.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if pruned.Leaves() >= unpruned.Leaves() {
		t.Fatalf("pruned %d leaves vs unpruned %d: pruning had no effect",
			pruned.Leaves(), unpruned.Leaves())
	}
}

func TestREPTreeDeterministic(t *testing.T) {
	X, y := synthStep(300, 7)
	a, b := NewREPTree(), NewREPTree()
	if err := a.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(X, y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{float64(i) / 5, float64(50-i) / 5}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("same-seed trees disagree")
		}
	}
}

func TestMLPFitsNonlinear(t *testing.T) {
	// y = sin(x) on [0, 2π]: linear fails, MLP should fit closely.
	rng := sim.NewRNG(11)
	n := 600
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64() * 2 * math.Pi
		X[i] = []float64{x}
		y[i] = math.Sin(x)
	}
	m := NewMLP()
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	var worst float64
	for k := 0; k < 50; k++ {
		x := 0.1 + float64(k)*(2*math.Pi-0.2)/49
		if d := math.Abs(m.Predict([]float64{x}) - math.Sin(x)); d > worst {
			worst = d
		}
	}
	if worst > 0.15 {
		t.Fatalf("MLP worst-case error on sin = %v, want < 0.15", worst)
	}
}

func TestMLPDeterministic(t *testing.T) {
	X, y := synthLinear(100, 0.1, 13)
	a, b := NewMLP(), NewMLP()
	a.Epochs, b.Epochs = 50, 50
	if err := a.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if a.Predict([]float64{1, 1}) != b.Predict([]float64{1, 1}) {
		t.Fatal("same-seed MLPs disagree")
	}
}

func TestMLPUntrainedPredictsZero(t *testing.T) {
	if got := NewMLP().Predict([]float64{1, 2}); got != 0 {
		t.Fatalf("untrained MLP predicted %v", got)
	}
}

func TestLookupTableExactRecall(t *testing.T) {
	X := [][]float64{{0, 0}, {10, 0}, {0, 10}, {10, 10}}
	y := []float64{1, 2, 3, 4}
	lkt := NewLookupTable()
	if err := lkt.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if lkt.Len() != 4 {
		t.Fatalf("table size %d", lkt.Len())
	}
	for i, x := range X {
		if got := lkt.Predict(x); got != y[i] {
			t.Errorf("exact recall failed at %v: %v", x, got)
		}
	}
	// Nearest-neighbour behaviour off-grid.
	if got := lkt.Predict([]float64{9, 9}); got != 4 {
		t.Errorf("Predict(9,9) = %v, want 4", got)
	}
	if got := lkt.Predict([]float64{1, 1}); got != 1 {
		t.Errorf("Predict(1,1) = %v, want 1", got)
	}
}

func TestKNNClassifier(t *testing.T) {
	var X [][]float64
	var labels []int
	rng := sim.NewRNG(17)
	centers := [][]float64{{0, 0}, {10, 0}, {5, 10}}
	for c, ctr := range centers {
		for i := 0; i < 30; i++ {
			X = append(X, []float64{ctr[0] + rng.Normal(0, 1), ctr[1] + rng.Normal(0, 1)})
			labels = append(labels, c)
		}
	}
	knn := NewKNN(3)
	if err := knn.Train(X, labels); err != nil {
		t.Fatal(err)
	}
	for c, ctr := range centers {
		if got := knn.Classify(ctr); got != c {
			t.Errorf("Classify(center %d) = %d", c, got)
		}
	}
}

func TestKNNKClamped(t *testing.T) {
	knn := NewKNN(0)
	if knn.K != 1 {
		t.Fatalf("K=0 not clamped: %d", knn.K)
	}
	X := [][]float64{{0}, {1}}
	if err := knn.Train(X, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	big := NewKNN(50)
	if err := big.Train(X, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := big.Classify([]float64{0.1}); got != 0 && got != 1 {
		t.Fatalf("classify with k>n returned %d", got)
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points stretched along (1,1): PC1 must align with it and carry most
	// of the variance.
	rng := sim.NewRNG(19)
	n := 500
	X := make([][]float64, n)
	for i := range X {
		t1 := rng.Normal(0, 5)
		t2 := rng.Normal(0, 0.5)
		X[i] = []float64{t1 + t2, t1 - t2}
	}
	p, err := FitPCA(X)
	if err != nil {
		t.Fatal(err)
	}
	if ev := p.ExplainedVariance(1); ev < 0.9 {
		t.Fatalf("PC1 explains %v, want > 0.9", ev)
	}
	c := p.Components[0]
	if math.Abs(math.Abs(c[0])-math.Abs(c[1])) > 0.05 {
		t.Fatalf("PC1 = %v, want ~(±.707, ±.707)", c)
	}
	// Components are orthonormal.
	var dot, n0, n1 float64
	for i := range c {
		dot += p.Components[0][i] * p.Components[1][i]
		n0 += p.Components[0][i] * p.Components[0][i]
		n1 += p.Components[1][i] * p.Components[1][i]
	}
	if math.Abs(dot) > 1e-6 || math.Abs(n0-1) > 1e-6 || math.Abs(n1-1) > 1e-6 {
		t.Fatalf("components not orthonormal: dot=%v norms=%v,%v", dot, n0, n1)
	}
}

func TestPCAExplainedVarianceMonotone(t *testing.T) {
	X, _ := synthStep(100, 23)
	p, err := FitPCA(X)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for k := 0; k <= len(p.Variances); k++ {
		ev := p.ExplainedVariance(k)
		if ev < prev-1e-12 {
			t.Fatalf("explained variance not monotone at k=%d", k)
		}
		prev = ev
	}
	if math.Abs(p.ExplainedVariance(len(p.Variances))-1) > 1e-9 {
		t.Fatal("all components should explain 100%")
	}
}

func TestPCAProjectShape(t *testing.T) {
	X, _ := synthLinear(50, 0.1, 29)
	p, err := FitPCA(X)
	if err != nil {
		t.Fatal(err)
	}
	pr := p.Project(X[0], 2)
	if len(pr) != 2 {
		t.Fatalf("projection length %d", len(pr))
	}
	if got := p.Project(X[0], 99); len(got) != 2 {
		t.Fatalf("k beyond components not clamped: %d", len(got))
	}
	if l := p.Loadings(2); len(l) != 2 || len(l[0]) != 2 {
		t.Fatalf("loadings shape wrong: %v", l)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil); err == nil {
		t.Error("empty PCA accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}}); err == nil {
		t.Error("single-row PCA accepted")
	}
}

func TestHClusterSeparatesGroups(t *testing.T) {
	// Three tight groups far apart: cutting at k=3 must recover them.
	X := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
		{-10, 10}, {-10.1, 10},
	}
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		dg, err := HClusterFit(X, link)
		if err != nil {
			t.Fatal(err)
		}
		labels := dg.Cut(3)
		if labels[0] != labels[1] || labels[1] != labels[2] {
			t.Errorf("link %v: group A split: %v", link, labels)
		}
		if labels[3] != labels[4] || labels[4] != labels[5] {
			t.Errorf("link %v: group B split: %v", link, labels)
		}
		if labels[6] != labels[7] {
			t.Errorf("link %v: group C split: %v", link, labels)
		}
		if labels[0] == labels[3] || labels[3] == labels[6] || labels[0] == labels[6] {
			t.Errorf("link %v: groups merged: %v", link, labels)
		}
	}
}

func TestHClusterCutBounds(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	dg, err := HClusterFit(X, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if got := dg.Cut(1); !allSame(got) {
		t.Errorf("k=1 should merge all: %v", got)
	}
	if got := dg.Cut(99); !allDistinct(got) {
		t.Errorf("k≥n should keep all separate: %v", got)
	}
	if got := dg.Cut(0); !allSame(got) {
		t.Errorf("k=0 clamps to 1: %v", got)
	}
	if len(dg.Merges) != 3 {
		t.Errorf("n-1 merges expected, got %d", len(dg.Merges))
	}
}

func TestHClusterMergeDistancesNondecreasing(t *testing.T) {
	// For complete/average linkage on well-separated data the merge
	// distances should grow (reducibility holds for these linkages).
	X, _ := synthStep(40, 31)
	dg, err := HClusterFit(X, CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dg.Merges); i++ {
		if dg.Merges[i].Distance < dg.Merges[i-1].Distance-1e-9 {
			t.Fatalf("merge %d at %v after %v", i, dg.Merges[i].Distance, dg.Merges[i-1].Distance)
		}
	}
}

func allSame(xs []int) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}

func allDistinct(xs []int) bool {
	seen := map[int]bool{}
	for _, x := range xs {
		if seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

func TestBaggingBasics(t *testing.T) {
	X, y := synthStep(200, 41)
	b := NewBagging(0, func() Regressor { return NewREPTree() })
	if b.N != 1 {
		t.Fatalf("N=0 not clamped: %d", b.N)
	}
	b = NewBagging(4, func() Regressor { return NewREPTree() })
	if err := b.Train(X, y); err != nil {
		t.Fatal(err)
	}
	if b.Size() != 4 {
		t.Fatalf("ensemble size %d", b.Size())
	}
	var pred, truth []float64
	for i := range X {
		pred = append(pred, b.Predict(X[i]))
		truth = append(truth, y[i])
	}
	if r := RMSE(pred, truth); r > 3 {
		t.Fatalf("bagged RMSE %v too high", r)
	}
	if got := NewBagging(2, nil); got.Train(X, y) == nil {
		t.Fatal("nil factory accepted")
	}
	if got := (&Bagging{N: 1, New: func() Regressor { return NewREPTree() }}); got.Predict([]float64{1}) != 0 {
		t.Fatal("untrained ensemble should predict 0")
	}
}

func TestBaggingDeterministic(t *testing.T) {
	X, y := synthStep(150, 43)
	mk := func() *Bagging {
		b := NewBagging(3, func() Regressor { return NewREPTree() })
		if err := b.Train(X, y); err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	for i := 0; i < 20; i++ {
		if a.Predict(X[i]) != b.Predict(X[i]) {
			t.Fatal("same-seed ensembles disagree")
		}
	}
}

// Package ml is the from-scratch machine-learning substrate of the
// reproduction, standing in for the Weka toolkit the paper uses. It
// provides the three EDP predictors the paper studies — linear regression
// (LR), a reduced-error-pruning regression tree (REPTree) and a
// multilayer perceptron (MLP) — plus the lookup-table model (LkT), and
// the analysis tools of §3.2: PCA (via a Jacobi eigensolver),
// agglomerative hierarchical clustering, and a k-nearest-neighbour
// classifier.
//
// Everything is deterministic for a fixed seed and uses only the
// standard library.
package ml

import (
	"fmt"
	"math"
)

// Regressor predicts a scalar target from a feature vector. All models in
// this package implement it.
type Regressor interface {
	// Train fits the model to the rows of X and targets y.
	Train(X [][]float64, y []float64) error
	// Predict returns the model's estimate for one feature vector.
	Predict(x []float64) float64
}

// checkXY validates a training set's shape.
func checkXY(X [][]float64, y []float64) (rows, cols int, err error) {
	if len(X) == 0 {
		return 0, 0, fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return 0, 0, fmt.Errorf("ml: %d rows but %d targets", len(X), len(y))
	}
	cols = len(X[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("ml: zero-width feature vectors")
	}
	for i, r := range X {
		if len(r) != cols {
			return 0, 0, fmt.Errorf("ml: row %d has %d features, want %d", i, len(r), cols)
		}
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, fmt.Errorf("ml: target %d is not finite", i)
		}
	}
	return len(X), cols, nil
}

// APE returns the absolute percentage error of a prediction against the
// truth, in percent. A zero truth with nonzero prediction yields +Inf.
func APE(pred, truth float64) float64 {
	if truth == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * math.Abs(pred-truth) / math.Abs(truth)
}

// MAPE returns the mean APE over a prediction set.
func MAPE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		s += APE(pred[i], truth[i])
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// RMSE returns the root-mean-square error.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// Scaler standardizes features to zero mean and unit variance — the
// normalization the paper applies before PCA ("normalized the data to the
// unit normal distribution").
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-column mean and standard deviation from X.
func FitScaler(X [][]float64) (*Scaler, error) {
	rows, cols, err := checkXY(X, make([]float64, len(X)))
	if err != nil {
		return nil, err
	}
	s := &Scaler{Mean: make([]float64, cols), Std: make([]float64, cols)}
	for j := 0; j < cols; j++ {
		var sum float64
		for i := 0; i < rows; i++ {
			sum += X[i][j]
		}
		mu := sum / float64(rows)
		var sq float64
		for i := 0; i < rows; i++ {
			d := X[i][j] - mu
			sq += d * d
		}
		sd := math.Sqrt(sq / float64(rows))
		if sd < 1e-12 {
			sd = 1 // constant column: pass through centred
		}
		s.Mean[j] = mu
		s.Std[j] = sd
	}
	return s, nil
}

// Transform returns the standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		if j < len(s.Mean) {
			out[j] = (x[j] - s.Mean[j]) / s.Std[j]
		} else {
			out[j] = x[j]
		}
	}
	return out
}

// TransformAll standardizes every row of X into a new matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		out[i] = s.Transform(r)
	}
	return out
}

// Euclid returns the Euclidean distance between two equal-length vectors.
func Euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

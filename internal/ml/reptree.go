package ml

import (
	"fmt"
	"sort"

	"ecost/internal/sim"
)

// REPTree is a fast regression tree in the style of Weka's REPTree: it
// grows by variance reduction with binary numeric splits and then applies
// reduced-error pruning against a held-out fraction of the training data.
// The paper finds this model the best accuracy/complexity trade-off for
// self-tuning prediction.
type REPTree struct {
	// MinLeaf is the minimum number of training instances per leaf.
	MinLeaf int
	// MaxDepth bounds the tree (0 = unlimited).
	MaxDepth int
	// PruneFrac is the fraction of the training data held out for
	// reduced-error pruning (0 disables pruning).
	PruneFrac float64
	// Seed drives the train/prune shuffle.
	Seed int64

	root   *node
	leaves int
}

type node struct {
	feature  int
	thresh   float64
	left     *node
	right    *node
	value    float64 // leaf prediction / subtree mean
	count    int
	pruneSSE float64 // accumulated prune-set error as a subtree
	pruneN   int
}

// NewREPTree returns a tree with Weka-like defaults.
func NewREPTree() *REPTree {
	return &REPTree{MinLeaf: 2, MaxDepth: 0, PruneFrac: 0.25, Seed: 1}
}

// Leaves reports the number of leaves after training (0 before).
func (t *REPTree) Leaves() int { return t.leaves }

// Train grows and prunes the tree.
func (t *REPTree) Train(X [][]float64, y []float64) error {
	rows, _, err := checkXY(X, y)
	if err != nil {
		return fmt.Errorf("reptree: %w", err)
	}
	minLeaf := t.MinLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}

	idx := sim.NewRNG(t.Seed).Perm(rows)
	nPrune := 0
	if t.PruneFrac > 0 && rows >= 8 {
		nPrune = int(t.PruneFrac * float64(rows))
		if nPrune >= rows {
			nPrune = rows / 4
		}
	}
	pruneIdx, growIdx := idx[:nPrune], idx[nPrune:]

	t.root = t.grow(X, y, growIdx, minLeaf, 1)
	if t.root == nil {
		// Degenerate: grow set empty after the split; fall back to all data.
		t.root = t.grow(X, y, idx, minLeaf, 1)
	}
	if nPrune > 0 {
		for _, i := range pruneIdx {
			t.accumulatePrune(t.root, X[i], y[i])
		}
		t.prune(t.root)
	}
	t.leaves = countLeaves(t.root)
	return nil
}

func (t *REPTree) grow(X [][]float64, y []float64, idx []int, minLeaf, depth int) *node {
	if len(idx) == 0 {
		return nil
	}
	mean, sse := meanSSE(y, idx)
	n := &node{feature: -1, value: mean, count: len(idx)}
	if len(idx) < 2*minLeaf || sse < 1e-12 || (t.MaxDepth > 0 && depth > t.MaxDepth) {
		return n
	}

	bestGain := 0.0
	bestF, bestThresh := -1, 0.0
	cols := len(X[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < cols; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Prefix sums over the sorted order for O(n) split scan.
		var sumL, sqL float64
		sumR, sqR := 0.0, 0.0
		for _, i := range order {
			sumR += y[i]
			sqR += y[i] * y[i]
		}
		nTot := float64(len(order))
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			sqL += y[i] * y[i]
			sumR -= y[i]
			sqR -= y[i] * y[i]
			if k+1 < minLeaf || len(order)-k-1 < minLeaf {
				continue
			}
			if X[order[k]][f] == X[order[k+1]][f] {
				continue // cannot split between equal values
			}
			nl, nr := float64(k+1), nTot-float64(k+1)
			sseL := sqL - sumL*sumL/nl
			sseR := sqR - sumR*sumR/nr
			if gain := sse - sseL - sseR; gain > bestGain+1e-12 {
				bestGain = gain
				bestF = f
				bestThresh = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestF < 0 {
		return n
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestF] <= bestThresh {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return n
	}
	n.feature = bestF
	n.thresh = bestThresh
	n.left = t.grow(X, y, li, minLeaf, depth+1)
	n.right = t.grow(X, y, ri, minLeaf, depth+1)
	return n
}

// accumulatePrune routes one prune-set instance down the tree, charging
// every node on the path with its error as-if-collapsed and as-subtree.
func (t *REPTree) accumulatePrune(n *node, x []float64, y float64) {
	for n != nil {
		d := y - n.value
		n.pruneSSE += d * d
		n.pruneN++
		if n.feature < 0 {
			return
		}
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
}

// prune collapses any internal node whose leaf error on the prune set is
// no worse than its subtree's — classic reduced-error pruning, bottom-up.
// It returns the subtree's prune-set SSE after pruning.
func (t *REPTree) prune(n *node) float64 {
	if n == nil || n.feature < 0 {
		if n == nil {
			return 0
		}
		return n.pruneSSE
	}
	subtree := t.prune(n.left) + t.prune(n.right)
	if n.pruneN > 0 && n.pruneSSE <= subtree+1e-12 {
		// Collapse: this node becomes a leaf predicting its mean.
		n.feature = -1
		n.left, n.right = nil, nil
		return n.pruneSSE
	}
	return subtree
}

// Predict routes x to a leaf.
func (t *REPTree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for n.feature >= 0 {
		if n.feature < len(x) && x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the maximum depth of the trained tree.
func (t *REPTree) Depth() int { return depth(t.root) }

func depth(n *node) int {
	if n == nil {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if r > l {
		l = r
	}
	return 1 + l
}

func countLeaves(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature < 0 {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func meanSSE(y []float64, idx []int) (mean, sse float64) {
	var sum, sq float64
	for _, i := range idx {
		sum += y[i]
		sq += y[i] * y[i]
	}
	n := float64(len(idx))
	mean = sum / n
	sse = sq - sum*sum/n
	if sse < 0 {
		sse = 0
	}
	return mean, sse
}

var _ Regressor = (*REPTree)(nil)
var _ Regressor = (*LinearRegression)(nil)

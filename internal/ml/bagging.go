package ml

import (
	"fmt"

	"ecost/internal/sim"
)

// Bagging averages an ensemble of base regressors, each trained on a
// bootstrap resample of the training data. Averaging smooths the jagged
// minima of piecewise models — essential when a downstream argmin scans
// the model over a large configuration space, where any spuriously low
// region gets found and exploited. (Weka pairs REPTree with Bagging for
// exactly this reason; REPTree is its default base learner.)
type Bagging struct {
	// New constructs one base learner (called N times).
	New func() Regressor
	// N is the ensemble size.
	N int
	// Seed drives the bootstrap resampling.
	Seed int64

	members []Regressor
}

// NewBagging returns an ensemble of n base learners.
func NewBagging(n int, base func() Regressor) *Bagging {
	if n < 1 {
		n = 1
	}
	return &Bagging{New: base, N: n, Seed: 1}
}

// Train fits every member on its own bootstrap resample.
func (b *Bagging) Train(X [][]float64, y []float64) error {
	rows, _, err := checkXY(X, y)
	if err != nil {
		return fmt.Errorf("bagging: %w", err)
	}
	if b.New == nil {
		return fmt.Errorf("bagging: no base learner factory")
	}
	rng := sim.NewRNG(b.Seed)
	b.members = b.members[:0]
	for k := 0; k < b.N; k++ {
		bx := make([][]float64, rows)
		by := make([]float64, rows)
		for i := 0; i < rows; i++ {
			j := rng.Intn(rows)
			bx[i] = X[j]
			by[i] = y[j]
		}
		m := b.New()
		if err := m.Train(bx, by); err != nil {
			return fmt.Errorf("bagging: member %d: %w", k, err)
		}
		b.members = append(b.members, m)
	}
	return nil
}

// Predict returns the ensemble mean.
func (b *Bagging) Predict(x []float64) float64 {
	if len(b.members) == 0 {
		return 0
	}
	var s float64
	for _, m := range b.members {
		s += m.Predict(x)
	}
	return s / float64(len(b.members))
}

// Size reports the trained ensemble size.
func (b *Bagging) Size() int { return len(b.members) }

var _ Regressor = (*Bagging)(nil)

package ml

import (
	"bytes"
	"testing"
)

// fuzzTrainingSet is a tiny but well-posed regression problem used to
// produce honest serialized models for the seed corpus.
func fuzzTrainingSet() ([][]float64, []float64) {
	X := [][]float64{
		{0, 0}, {1, 0}, {0, 1}, {1, 1},
		{2, 0}, {0, 2}, {2, 1}, {1, 2},
	}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 1 + 2*x[0] - x[1]
	}
	return X, y
}

func seedModelJSON(f *testing.F, m Regressor) []byte {
	f.Helper()
	X, y := fuzzTrainingSet()
	if err := m.Train(X, y); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadModel feeds arbitrary bytes to the model loader: it must
// either error out or return a regressor that survives a save/load
// round trip — never panic.
func FuzzLoadModel(f *testing.F) {
	f.Add(seedModelJSON(f, NewLinearRegression()))
	f.Add(seedModelJSON(f, NewLookupTable()))
	f.Add(seedModelJSON(f, NewREPTree()))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"linreg","data":{}}`))
	f.Add([]byte(`{"kind":"nosuch","data":{}}`))
	f.Add([]byte(`{"kind":"reptree","data":{"nodes":[{"left":1,"right":1}]}}`))
	f.Add([]byte(`garbage`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("LoadModel returned nil model without error")
		}
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			t.Fatalf("re-save of loaded model failed: %v", err)
		}
		if _, err := LoadModel(&buf); err != nil {
			t.Fatalf("round trip of loaded model failed: %v", err)
		}
	})
}

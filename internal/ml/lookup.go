package ml

import "fmt"

// LookupTable is the LkT model of the paper: it memorizes every training
// row and predicts by returning the target of the nearest stored row
// (1-NN over standardized features). Training is expensive in the paper's
// sense because the table must be *populated* with brute-force-optimal
// entries; prediction is a single scan of a small table.
type LookupTable struct {
	scaler *Scaler
	rows   [][]float64
	y      []float64
}

// NewLookupTable returns an empty table.
func NewLookupTable() *LookupTable { return &LookupTable{} }

// Train stores the (standardized) training rows.
func (t *LookupTable) Train(X [][]float64, y []float64) error {
	if _, _, err := checkXY(X, y); err != nil {
		return fmt.Errorf("lookup table: %w", err)
	}
	s, err := FitScaler(X)
	if err != nil {
		return fmt.Errorf("lookup table: %w", err)
	}
	t.scaler = s
	t.rows = s.TransformAll(X)
	t.y = append([]float64(nil), y...)
	return nil
}

// Predict returns the target of the nearest stored row.
func (t *LookupTable) Predict(x []float64) float64 {
	if len(t.rows) == 0 {
		return 0
	}
	xs := t.scaler.Transform(x)
	best, bestD := 0, Euclid(xs, t.rows[0])
	for i := 1; i < len(t.rows); i++ {
		if d := Euclid(xs, t.rows[i]); d < bestD {
			best, bestD = i, d
		}
	}
	return t.y[best]
}

// Len reports the number of stored entries.
func (t *LookupTable) Len() int { return len(t.rows) }

var _ Regressor = (*LookupTable)(nil)

// KNNClassifier is a k-nearest-neighbour classifier over standardized
// features — the cluster-assignment step of the paper's incoming
// application analyzer (it "chooses the application in the database that
// best resembles the testing application").
type KNNClassifier struct {
	K int

	scaler *Scaler
	rows   [][]float64
	labels []int
}

// NewKNN returns a classifier with the given neighbourhood size.
func NewKNN(k int) *KNNClassifier {
	if k < 1 {
		k = 1
	}
	return &KNNClassifier{K: k}
}

// Train stores the labelled exemplars.
func (c *KNNClassifier) Train(X [][]float64, labels []int) error {
	y := make([]float64, len(labels))
	if _, _, err := checkXY(X, y); err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	s, err := FitScaler(X)
	if err != nil {
		return fmt.Errorf("knn: %w", err)
	}
	c.scaler = s
	c.rows = s.TransformAll(X)
	c.labels = append([]int(nil), labels...)
	return nil
}

// Classify returns the majority label among the k nearest exemplars
// (ties broken toward the nearest).
func (c *KNNClassifier) Classify(x []float64) int {
	if len(c.rows) == 0 {
		return 0
	}
	xs := c.scaler.Transform(x)
	type nd struct {
		d     float64
		label int
	}
	k := c.K
	if k > len(c.rows) {
		k = len(c.rows)
	}
	// Partial selection of the k nearest.
	nearest := make([]nd, 0, k)
	for i, r := range c.rows {
		d := Euclid(xs, r)
		if len(nearest) < k {
			nearest = append(nearest, nd{d, c.labels[i]})
			continue
		}
		// Replace the farthest if closer.
		far := 0
		for j := 1; j < k; j++ {
			if nearest[j].d > nearest[far].d {
				far = j
			}
		}
		if d < nearest[far].d {
			nearest[far] = nd{d, c.labels[i]}
		}
	}
	votes := map[int]int{}
	bestD := map[int]float64{}
	for _, n := range nearest {
		votes[n.label]++
		if d, ok := bestD[n.label]; !ok || n.d < d {
			bestD[n.label] = n.d
		}
	}
	best, bestVotes := nearest[0].label, -1
	for label, v := range votes {
		if v > bestVotes || (v == bestVotes && bestD[label] < bestD[best]) {
			best, bestVotes = label, v
		}
	}
	return best
}

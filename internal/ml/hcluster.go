package ml

import (
	"fmt"
	"math"
)

// HCluster performs agglomerative hierarchical clustering with a choice
// of linkage — the technique the paper applies to the PCA loadings to
// group redundant feature metrics (§3.2) before retaining one
// representative per group.
type Linkage int

// Supported linkage criteria.
const (
	SingleLinkage   Linkage = iota // min pairwise distance
	CompleteLinkage                // max pairwise distance
	AverageLinkage                 // mean pairwise distance
)

// Dendrogram records the merge history; Merges[i] joined clusters A and B
// (ids: 0..n-1 are leaves, n+i is the cluster created by merge i) at the
// given distance.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Merge is one agglomeration step.
type Merge struct {
	A, B     int
	Distance float64
}

// HClusterFit builds the full dendrogram over the rows of X.
func HClusterFit(X [][]float64, link Linkage) (*Dendrogram, error) {
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("hcluster: no observations")
	}
	for i, r := range X {
		if len(r) != len(X[0]) {
			return nil, fmt.Errorf("hcluster: row %d width %d != %d", i, len(r), len(X[0]))
		}
	}
	// Active clusters as member lists.
	type clust struct {
		id      int
		members []int
	}
	active := make([]clust, n)
	for i := range active {
		active[i] = clust{id: i, members: []int{i}}
	}
	dist := func(a, b clust) float64 {
		switch link {
		case SingleLinkage:
			best := math.Inf(1)
			for _, i := range a.members {
				for _, j := range b.members {
					if d := Euclid(X[i], X[j]); d < best {
						best = d
					}
				}
			}
			return best
		case CompleteLinkage:
			worst := 0.0
			for _, i := range a.members {
				for _, j := range b.members {
					if d := Euclid(X[i], X[j]); d > worst {
						worst = d
					}
				}
			}
			return worst
		default:
			var s float64
			for _, i := range a.members {
				for _, j := range b.members {
					s += Euclid(X[i], X[j])
				}
			}
			return s / float64(len(a.members)*len(b.members))
		}
	}
	dg := &Dendrogram{N: n}
	next := n
	for len(active) > 1 {
		bi, bj, bd := 0, 1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			for j := i + 1; j < len(active); j++ {
				if d := dist(active[i], active[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		a, b := active[bi], active[bj]
		dg.Merges = append(dg.Merges, Merge{A: a.id, B: b.id, Distance: bd})
		merged := clust{id: next, members: append(append([]int{}, a.members...), b.members...)}
		next++
		// Remove bj first (bj > bi).
		active = append(active[:bj], active[bj+1:]...)
		active[bi] = merged
	}
	return dg, nil
}

// Cut returns cluster labels (0..k-1) for the leaves when the dendrogram
// is cut into k clusters. k is clamped to [1, N].
func (d *Dendrogram) Cut(k int) []int {
	if k < 1 {
		k = 1
	}
	if k > d.N {
		k = d.N
	}
	// Union-find over the first N-k merges.
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < d.N-k && i < len(d.Merges); i++ {
		m := d.Merges[i]
		id := d.N + i
		parent[find(m.A)] = id
		parent[find(m.B)] = id
	}
	labels := make([]int, d.N)
	seen := map[int]int{}
	for i := 0; i < d.N; i++ {
		root := find(i)
		if _, ok := seen[root]; !ok {
			seen[root] = len(seen)
		}
		labels[i] = seen[root]
	}
	return labels
}

package ml

import (
	"fmt"
	"math"
	"sort"
)

// PCA holds a fitted principal-component analysis: the eigenvectors of
// the (standardized) covariance matrix sorted by explained variance.
// The paper projects its 14 feature metrics onto the first two PCs
// (≈85% of variance) and plots the component loadings to find redundant
// metrics (Figure 1).
type PCA struct {
	scaler *Scaler
	// Components[k] is the k-th principal axis (unit vector, length =
	// number of features).
	Components [][]float64
	// Variances[k] is the eigenvalue (variance along component k).
	Variances []float64
}

// FitPCA computes the PCA of X (rows = observations). Features are
// standardized first, matching the paper's normalization.
func FitPCA(X [][]float64) (*PCA, error) {
	rows, cols, err := checkXY(X, make([]float64, len(X)))
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	if rows < 2 {
		return nil, fmt.Errorf("pca: need at least 2 observations, got %d", rows)
	}
	scaler, err := FitScaler(X)
	if err != nil {
		return nil, fmt.Errorf("pca: %w", err)
	}
	Z := scaler.TransformAll(X)

	// Covariance matrix of the standardized data (== correlation matrix).
	cov := make([][]float64, cols)
	for i := range cov {
		cov[i] = make([]float64, cols)
	}
	for _, z := range Z {
		for i := 0; i < cols; i++ {
			for j := i; j < cols; j++ {
				cov[i][j] += z[i] * z[j]
			}
		}
	}
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			cov[i][j] /= float64(rows - 1)
			cov[j][i] = cov[i][j]
		}
	}

	vals, vecs := jacobiEigen(cov)
	// Sort by eigenvalue descending.
	order := make([]int, cols)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	p := &PCA{scaler: scaler}
	for _, k := range order {
		comp := make([]float64, cols)
		for i := 0; i < cols; i++ {
			comp[i] = vecs[i][k]
		}
		// Deterministic sign: make the largest-magnitude loading positive.
		maxI := 0
		for i := range comp {
			if math.Abs(comp[i]) > math.Abs(comp[maxI]) {
				maxI = i
			}
		}
		if comp[maxI] < 0 {
			for i := range comp {
				comp[i] = -comp[i]
			}
		}
		p.Components = append(p.Components, comp)
		v := vals[k]
		if v < 0 {
			v = 0 // numerical noise
		}
		p.Variances = append(p.Variances, v)
	}
	return p, nil
}

// ExplainedVariance returns the fraction of total variance captured by
// the first k components.
func (p *PCA) ExplainedVariance(k int) float64 {
	var total, head float64
	for i, v := range p.Variances {
		total += v
		if i < k {
			head += v
		}
	}
	if total == 0 {
		return 0
	}
	return head / total
}

// Project maps an observation onto the first k principal components.
func (p *PCA) Project(x []float64, k int) []float64 {
	z := p.scaler.Transform(x)
	if k > len(p.Components) {
		k = len(p.Components)
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var s float64
		for i, v := range z {
			if i < len(p.Components[c]) {
				s += v * p.Components[c][i]
			}
		}
		out[c] = s
	}
	return out
}

// Loadings returns each original feature's coordinates in the first k
// components — the scatter the paper plots in Figure 1 (features close
// together behave similarly). Row i corresponds to feature i.
func (p *PCA) Loadings(k int) [][]float64 {
	if k > len(p.Components) {
		k = len(p.Components)
	}
	nf := len(p.Components[0])
	out := make([][]float64, nf)
	for i := 0; i < nf; i++ {
		out[i] = make([]float64, k)
		for c := 0; c < k; c++ {
			out[i][c] = p.Components[c][i] * math.Sqrt(p.Variances[c])
		}
	}
	return out
}

// jacobiEigen computes the eigenvalues and eigenvectors of a symmetric
// matrix with the cyclic Jacobi rotation method. vecs[i][k] is component
// i of eigenvector k.
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-20 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-18 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for i := 0; i < n; i++ {
					mpi, mqi := m[p][i], m[q][i]
					m[p][i] = c*mpi - s*mqi
					m[q][i] = s*mpi + c*mqi
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}

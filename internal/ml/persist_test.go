package ml

import (
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, m Regressor) Regressor {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func assertSamePredictions(t *testing.T, a, b Regressor, X [][]float64) {
	t.Helper()
	for i, x := range X {
		if pa, pb := a.Predict(x), b.Predict(x); pa != pb {
			t.Fatalf("prediction %d differs after round-trip: %v vs %v", i, pa, pb)
		}
	}
}

func TestPersistLinearRegression(t *testing.T) {
	X, y := synthLinear(200, 0.1, 1)
	m := NewLinearRegression()
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, m, roundTrip(t, m), X[:20])
}

func TestPersistREPTree(t *testing.T) {
	X, y := synthStep(400, 2)
	m := NewREPTree()
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, m)
	assertSamePredictions(t, m, loaded, X[:50])
	if lt := loaded.(*REPTree); lt.Leaves() != m.Leaves() {
		t.Fatalf("leaf count changed: %d vs %d", lt.Leaves(), m.Leaves())
	}
}

func TestPersistMLP(t *testing.T) {
	X, y := synthLinear(150, 0.1, 3)
	m := NewMLP()
	m.Epochs = 30
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, m, roundTrip(t, m), X[:20])
}

func TestPersistLookupTable(t *testing.T) {
	X, y := synthStep(100, 5)
	m := NewLookupTable()
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	assertSamePredictions(t, m, roundTrip(t, m), X[:20])
}

func TestPersistBagging(t *testing.T) {
	X, y := synthStep(300, 7)
	m := NewBagging(3, func() Regressor {
		tr := NewREPTree()
		tr.MinLeaf = 4
		return tr
	})
	if err := m.Train(X, y); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, m)
	assertSamePredictions(t, m, loaded, X[:30])
	if lb := loaded.(*Bagging); lb.Size() != 3 {
		t.Fatalf("ensemble size changed: %d", lb.Size())
	}
}

func TestPersistUntrainedTree(t *testing.T) {
	m := NewREPTree()
	loaded := roundTrip(t, m)
	if got := loaded.Predict([]float64{1}); got != 0 {
		t.Fatalf("untrained tree predicted %v after round-trip", got)
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"kind":"nope","data":{}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	// A corrupt tree with a cycle-forming link must be rejected.
	if _, err := LoadModel(strings.NewReader(
		`{"kind":"reptree","data":{"nodes":[{"f":0,"t":1,"v":0,"l":0,"r":0}]}}`)); err == nil {
		t.Error("self-referencing tree accepted")
	}
}

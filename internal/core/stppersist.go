package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"ecost/internal/ml"
	"ecost/internal/workloads"
)

// MLM-STP persistence: the trained per-(class-pair, size) regressors
// serialize to a versioned JSON envelope so the Env artifact cache can
// skip retraining. Keys are written in sorted order, so equal model
// sets produce byte-identical output — the property the build
// determinism tests compare.

const mlmSTPFormatVersion = 1

type mlmSTPFile struct {
	Version     int            `json:"version"`
	Name        string         `json:"name"`
	UseFeatures bool           `json:"use_features"`
	TrainTimeNS int64          `json:"train_time_ns"`
	Models      []mlmModelFile `json:"models"`
}

type mlmModelFile struct {
	ClassA int             `json:"class_a"`
	ClassB int             `json:"class_b"`
	SizeA  float64         `json:"size_a"`
	SizeB  float64         `json:"size_b"`
	Model  json.RawMessage `json:"model"`
}

// SaveModels writes every trained regressor to w in sorted key order.
func (s *MLMSTP) SaveModels(w io.Writer) error {
	keys := make([]modelKey, 0, len(s.models))
	for k := range s.models {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.cp != b.cp {
			if a.cp.A != b.cp.A {
				return a.cp.A < b.cp.A
			}
			return a.cp.B < b.cp.B
		}
		if a.sizeA != b.sizeA {
			return a.sizeA < b.sizeA
		}
		return a.sizeB < b.sizeB
	})
	file := mlmSTPFile{
		Version:     mlmSTPFormatVersion,
		Name:        s.name,
		UseFeatures: s.useFeatures,
		TrainTimeNS: s.trainTime.Nanoseconds(),
		Models:      make([]mlmModelFile, 0, len(keys)),
	}
	for _, k := range keys {
		var buf bytes.Buffer
		if err := ml.SaveModel(&buf, s.models[k]); err != nil {
			return fmt.Errorf("core: save %s model %v: %w", s.name, k.cp, err)
		}
		file.Models = append(file.Models, mlmModelFile{
			ClassA: int(k.cp.A),
			ClassB: int(k.cp.B),
			SizeA:  k.sizeA,
			SizeB:  k.sizeB,
			Model:  json.RawMessage(bytes.TrimSpace(buf.Bytes())),
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// LoadMLMSTP reads a technique written by SaveModels, rebinding it to
// db (the database supplies the classifier and configuration space the
// prediction path needs; it must be the one the models were trained
// from, which the Env artifact cache guarantees by keying both on the
// same options hash).
func LoadMLMSTP(r io.Reader, db *Database) (*MLMSTP, error) {
	var file mlmSTPFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("core: load MLM-STP: %w", err)
	}
	if file.Version != mlmSTPFormatVersion {
		return nil, fmt.Errorf("core: load MLM-STP: unsupported format version %d", file.Version)
	}
	if len(file.Models) == 0 {
		return nil, fmt.Errorf("core: load MLM-STP %s: no models", file.Name)
	}
	s := &MLMSTP{
		name:        file.Name,
		db:          db,
		models:      make(map[modelKey]ml.Regressor, len(file.Models)),
		useFeatures: file.UseFeatures,
		trainTime:   time.Duration(file.TrainTimeNS),
	}
	for _, mf := range file.Models {
		m, err := ml.LoadModel(bytes.NewReader(mf.Model))
		if err != nil {
			return nil, fmt.Errorf("core: load %s model: %w", file.Name, err)
		}
		k := modelKey{
			cp:    ClassPair{A: workloads.Class(mf.ClassA), B: workloads.Class(mf.ClassB)},
			sizeA: mf.SizeA,
			sizeB: mf.SizeB,
		}
		s.models[k] = m
	}
	return s, nil
}

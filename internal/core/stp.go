package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/ml"
)

// STP is a self-tuning prediction technique: given the observations of
// two co-located (possibly unknown) applications, it predicts the joint
// configuration that minimizes the pair's EDP — without running the
// brute-force search COLAO needs.
type STP interface {
	// Name identifies the technique in tables (LkT, LR, REPTree, MLP).
	Name() string
	// PredictBest returns the predicted-optimal joint configuration.
	PredictBest(a, b Observation) ([2]mapreduce.Config, error)
}

// LkTSTP is the lookup-table technique (Figure 6): classify the two
// incoming applications against the database and return the stored
// optimal configuration of the best-resembling known pair.
type LkTSTP struct {
	DB *Database
}

// Name implements STP.
func (s *LkTSTP) Name() string { return "LkT" }

// PredictBest implements STP.
func (s *LkTSTP) PredictBest(a, b Observation) ([2]mapreduce.Config, error) {
	best, err := s.DB.LookupBest(a, b)
	if err != nil {
		return [2]mapreduce.Config{}, err
	}
	return best.Cfg, nil
}

// PredictBestEDP implements PairEDPPredictor: the lookup table stores
// the best-resembling known pair's measured EDP alongside its optimal
// configuration, so LkT's own expectation comes for free.
func (s *LkTSTP) PredictBestEDP(a, b Observation) ([2]mapreduce.Config, float64, error) {
	best, err := s.DB.LookupBest(a, b)
	if err != nil {
		return [2]mapreduce.Config{}, 0, err
	}
	return best.Cfg, best.Out.EDP, nil
}

// PairEDPPredictor is implemented by STP techniques that expose their
// own EDP estimate alongside the predicted configuration. The metered
// wrapper uses it to score predicted-vs-realized EDP error online.
type PairEDPPredictor interface {
	PredictBestEDP(a, b Observation) ([2]mapreduce.Config, float64, error)
}

// PairExpectation is a technique's full outcome forecast at its chosen
// configuration: pair EDP in J·s, makespan seconds, average watts. Its
// field layout matches audit.Expectation so the scheduler converts by
// plain struct conversion.
type PairExpectation struct {
	EDP    float64
	TimeS  float64
	PowerW float64
}

// ExpectingSTP is implemented by techniques that expose a full outcome
// forecast alongside the predicted configuration — the decision-audit
// log joins it against the realized outcome at completion.
type ExpectingSTP interface {
	PredictBestExpected(a, b Observation) ([2]mapreduce.Config, PairExpectation, error)
}

// PredictBestExpected implements ExpectingSTP: the lookup table stores
// the best-resembling known pair's full measured outcome alongside its
// optimal configuration, so LkT's forecast comes for free.
func (s *LkTSTP) PredictBestExpected(a, b Observation) ([2]mapreduce.Config, PairExpectation, error) {
	best, err := s.DB.LookupBest(a, b)
	if err != nil {
		return [2]mapreduce.Config{}, PairExpectation{}, err
	}
	return best.Cfg, PairExpectation{
		EDP:    best.Out.EDP,
		TimeS:  best.Out.Makespan,
		PowerW: best.Out.AvgPower,
	}, nil
}

// predictExpected dispatches to the richest prediction interface the
// technique implements, degrading gracefully: full forecast, EDP-only,
// or configuration-only (zero expectation).
func predictExpected(t STP, a, b Observation) ([2]mapreduce.Config, PairExpectation, error) {
	switch p := t.(type) {
	case ExpectingSTP:
		return p.PredictBestExpected(a, b)
	case PairEDPPredictor:
		cfg, edp, err := p.PredictBestEDP(a, b)
		return cfg, PairExpectation{EDP: edp}, err
	}
	cfg, err := t.PredictBest(a, b)
	return cfg, PairExpectation{}, err
}

// MeteredSTP wraps any STP technique with observability: prediction
// counts, the per-prediction candidate-scan size (the deterministic
// latency proxy), wall-clock prediction latency (volatile — real time
// is jittery, so it stays out of deterministic snapshots), and, for
// techniques that expose their own EDP estimate, the error between the
// predicted EDP and the execution model's realized EDP at the chosen
// configuration. The realized-EDP check consults the observations'
// ground-truth identity, which is fine for telemetry (like
// CompletedJob.App) but means the wrapper must never feed predictions
// back into the models.
type MeteredSTP struct {
	Inner STP
	// Model realizes predicted configurations for EDP-error accounting;
	// when nil the error metric is skipped.
	Model *mapreduce.Model

	predictions *metrics.Counter
	failures    *metrics.Counter
	evals       *metrics.Histogram
	wall        *metrics.Histogram
	edpErr      *metrics.Histogram
}

// NewMeteredSTP wraps inner, registering its instruments in reg (a nil
// registry yields a zero-overhead pass-through).
func NewMeteredSTP(inner STP, model *mapreduce.Model, reg *metrics.Registry) *MeteredSTP {
	return &MeteredSTP{
		Inner:       inner,
		Model:       model,
		predictions: reg.Counter("stp.predictions"),
		failures:    reg.Counter("stp.failures"),
		evals:       reg.Histogram("stp.predict.evals", metrics.ExpBuckets(1, 4, 10)),
		wall:        reg.VolatileHistogram("stp.predict.wall_ns", metrics.ExpBuckets(1e3, 4, 12)),
		edpErr:      reg.Histogram("stp.edp_err_pct", metrics.LinearBuckets(5, 5, 20)),
	}
}

// Name implements STP.
func (s *MeteredSTP) Name() string { return s.Inner.Name() }

// PredictBest implements STP, recording telemetry around the inner call.
func (s *MeteredSTP) PredictBest(a, b Observation) ([2]mapreduce.Config, error) {
	cfg, _, err := s.PredictBestExpected(a, b)
	return cfg, err
}

// PredictBestExpected implements ExpectingSTP, forwarding the inner
// technique's forecast (zero when it exposes none) and recording the
// same telemetry as PredictBest — the two paths are one code path, so
// an audited run predicts identically to an unaudited one.
func (s *MeteredSTP) PredictBestExpected(a, b Observation) ([2]mapreduce.Config, PairExpectation, error) {
	start := time.Now()
	cfg, exp, err := predictExpected(s.Inner, a, b)
	s.wall.Observe(float64(time.Since(start).Nanoseconds()))
	if err != nil {
		s.failures.Inc()
		return cfg, exp, err
	}
	s.predictions.Inc()
	s.evals.Observe(float64(s.scanSize()))
	if s.Model != nil && exp.EDP > 0 {
		co, err2 := s.Model.Pair(
			mapreduce.RunSpec{App: a.App, DataMB: a.SizeGB * 1024, Cfg: cfg[0]},
			mapreduce.RunSpec{App: b.App, DataMB: b.SizeGB * 1024, Cfg: cfg[1]},
		)
		if err2 == nil && co.EDP > 0 {
			s.edpErr.Observe(100 * math.Abs(exp.EDP-co.EDP) / co.EDP)
		}
	}
	return cfg, exp, nil
}

// scanSize is the deterministic work a single prediction performs: the
// argmin sweep over the joint configuration space for model techniques,
// the database scan for the lookup table. A memoizing wrapper is
// transparent (the scan it may have skipped is still the prediction's
// deterministic cost), so it unwraps to its inner technique — metered
// snapshots stay byte-identical with and without the cache, and the
// cache's actual effectiveness travels in its volatile hit/miss
// counters instead.
func (s *MeteredSTP) scanSize() int {
	t := s.Inner
	for {
		switch v := t.(type) {
		case *MemoSTP:
			t = v.Inner
		case *MLMSTP:
			return len(mapreduce.PairConfigsCached(v.db.Oracle().Model.Spec.Cores))
		case *LkTSTP:
			return len(v.DB.Entries)
		default:
			return 1
		}
	}
}

// MLMSTP is the machine-learning-model technique (Figure 7): one
// regressor per class pair is trained on the database's (features,
// configuration) → EDP rows; prediction classifies the incoming pair,
// selects the class-pair model, evaluates it over every permutation of
// the tunable parameters, and returns the argmin.
// modelKey identifies one trained regressor: a class pair at one
// data-size combination. Splitting by size combination keeps each
// model's response surface unimodal over the knobs — pooling sizes lets
// the argmin land in leaves whose statistics mix size regimes.
type modelKey struct {
	cp           ClassPair
	sizeA, sizeB float64
}

type MLMSTP struct {
	name        string
	db          *Database
	models      map[modelKey]ml.Regressor
	useFeatures bool

	trainTime time.Duration
}

// ModelFactory builds a fresh regressor (one is trained per class pair).
type ModelFactory func() ml.Regressor

// NewMLMSTP trains per-class-pair models from the database rows.
func NewMLMSTP(name string, db *Database, factory ModelFactory) (*MLMSTP, error) {
	return newMLMSTP(name, db, factory, 1, false)
}

// NewMLMSTPSampled is NewMLMSTP with every rowStride-th training row —
// used to keep expensive models (the MLP) tractable on dense databases.
func NewMLMSTPSampled(name string, db *Database, factory ModelFactory, rowStride int) (*MLMSTP, error) {
	return newMLMSTP(name, db, factory, rowStride, false)
}

// NewMLMSTPFeatures trains models whose inputs include the two slot
// applications' reduced feature vectors alongside the knobs, letting
// tree models distinguish application combinations within a class pair
// and route unknown applications to the most similar training surface.
func NewMLMSTPFeatures(name string, db *Database, factory ModelFactory, rowStride int) (*MLMSTP, error) {
	return newMLMSTP(name, db, factory, rowStride, true)
}

func newMLMSTP(name string, db *Database, factory ModelFactory, rowStride int, useFeatures bool) (*MLMSTP, error) {
	if rowStride < 1 {
		rowStride = 1
	}
	s := &MLMSTP{name: name, db: db, models: make(map[modelKey]ml.Regressor), useFeatures: useFeatures}
	start := time.Now()
	groups := make(map[modelKey][]TrainRow)
	for cp, all := range db.Rows {
		for i := 0; i < len(all); i += rowStride {
			r := all[i]
			groups[modelKey{cp, r.X[0], r.X[1]}] = append(groups[modelKey{cp, r.X[0], r.X[1]}], r)
		}
	}
	for key, rows := range groups {
		X := make([][]float64, len(rows))
		y := make([]float64, len(rows))
		for i, r := range rows {
			X[i] = s.inputRow(r.FA, r.FB, r.X)
			// Train on the log of the baseline-relative EDP: absolute EDP
			// spans orders of magnitude across pairs and sizes, but the
			// response to the knobs — what the argmin needs — is a small,
			// class-determined surface. The monotone map leaves the
			// argmin unchanged.
			y[i] = math.Log(r.RelEDP)
		}
		m := factory()
		if err := m.Train(X, y); err != nil {
			return nil, fmt.Errorf("core: %s model for %v: %w", name, key.cp, err)
		}
		s.models[key] = m
	}
	s.trainTime = time.Since(start)
	if len(s.models) == 0 {
		return nil, fmt.Errorf("core: %s: database has no training rows", name)
	}
	return s, nil
}

// Models reports the number of trained per-(class-pair, size) models.
func (s *MLMSTP) Models() int { return len(s.models) }

// inputRow assembles a model input, prepending slot features when the
// technique is feature-aware.
func (s *MLMSTP) inputRow(fa, fb, cfgRow []float64) []float64 {
	if !s.useFeatures {
		return cfgRow
	}
	x := make([]float64, 0, len(fa)+len(fb)+len(cfgRow))
	x = append(x, fa...)
	x = append(x, fb...)
	x = append(x, cfgRow...)
	return x
}

// Name implements STP.
func (s *MLMSTP) Name() string { return s.name }

// TrainTime reports the wall-clock cost of training all class-pair
// models (the Figure-8 overhead metric).
func (s *MLMSTP) TrainTime() time.Duration { return s.trainTime }

// model selects the trained regressor for two observations: the exact
// (class pair, size combination) if present, otherwise the same class
// pair at the nearest size combination, otherwise any model sharing a
// class.
func (s *MLMSTP) model(a, b Observation) (ml.Regressor, error) {
	ca := s.db.Classifier().Classify(a)
	cb := s.db.Classifier().Classify(b)
	cp := NewClassPair(ca, cb)
	sa, sb := a.SizeGB, b.SizeGB
	if cb < ca || (ca == cb && sb < sa) {
		sa, sb = sb, sa
	}
	if m, ok := s.models[modelKey{cp, sa, sb}]; ok {
		return m, nil
	}
	// Nearest size combination within the class pair.
	var best ml.Regressor
	bestD := math.Inf(1)
	for key, m := range s.models {
		if key.cp != cp {
			continue
		}
		d := math.Abs(math.Log(key.sizeA/sa)) + math.Abs(math.Log(key.sizeB/sb))
		if d < bestD {
			best, bestD = m, d
		}
	}
	if best != nil {
		return best, nil
	}
	// Any model sharing a class, then any at all.
	for key, m := range s.models {
		if key.cp.A == ca || key.cp.B == ca || key.cp.A == cb || key.cp.B == cb {
			return m, nil
		}
	}
	for _, m := range s.models {
		return m, nil
	}
	return nil, fmt.Errorf("core: %s: no trained models", s.name)
}

// PredictBest implements STP: argmin of the selected class-pair model
// over every permutation of the tunable parameters (Figure 7, step 4).
// The sweep runs over the precomputed design matrix in parallel chunks;
// ties break by configuration index, so the chosen configuration is
// bit-identical to a serial scan at any GOMAXPROCS.
func (s *MLMSTP) PredictBest(a, b Observation) ([2]mapreduce.Config, error) {
	m, err := s.model(a, b)
	if err != nil {
		return [2]mapreduce.Config{}, err
	}
	// Match the training slot canonicalization (see BuildDatabase), using
	// the *classified* classes — the true identity stays hidden from the
	// prediction path.
	ca := s.db.Classifier().Classify(a)
	cb := s.db.Classifier().Classify(b)
	swapped := cb < ca || (ca == cb && b.SizeGB < a.SizeGB)
	sa, sb := a, b
	if swapped {
		sa, sb = b, a
	}
	fa, fb := sa.Reduced(), sb.Reduced()
	cores := s.db.Oracle().Model.Spec.Cores
	rows := DesignMatrixCached(cores, sa.SizeGB, sb.SizeGB)
	idx := s.argminRows(m, rows, fa, fb)
	if idx < 0 {
		return [2]mapreduce.Config{}, fmt.Errorf("core: %s: empty configuration space", s.name)
	}
	best := mapreduce.PairConfigsCached(cores)[idx]
	if swapped {
		best[0], best[1] = best[1], best[0]
	}
	return best, nil
}

// argminRows returns the index of the design-matrix row the regressor
// scores lowest, ties broken by lowest index (the serial scan's
// first-wins rule). Chunks fan out over GOMAXPROCS workers; each worker
// reuses one input-row scratch buffer, so the sweep allocates nothing
// per configuration.
func (s *MLMSTP) argminRows(m ml.Regressor, rows [][]float64, fa, fb []float64) int {
	if len(rows) == 0 {
		return -1
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rows)/minRowsPerWorker {
		workers = len(rows) / minRowsPerWorker
	}
	if workers <= 1 {
		best, _ := s.argminChunk(m, rows, fa, fb, 0, len(rows))
		return best
	}
	type localBest struct {
		idx  int
		pred float64
	}
	results := make([]localBest, workers)
	var wg sync.WaitGroup
	chunk := (len(rows) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			results[w] = localBest{idx: -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			idx, pred := s.argminChunk(m, rows, fa, fb, lo, hi)
			results[w] = localBest{idx: idx, pred: pred}
		}(w, lo, hi)
	}
	wg.Wait()
	best := localBest{idx: -1, pred: math.Inf(1)}
	for _, lb := range results {
		if lb.idx < 0 {
			continue
		}
		if best.idx < 0 || lb.pred < best.pred || (lb.pred == best.pred && lb.idx < best.idx) {
			best = lb
		}
	}
	return best.idx
}

// minRowsPerWorker keeps tiny sweeps serial: below this many rows per
// worker the goroutine hand-off costs more than the scan.
const minRowsPerWorker = 512

// argminChunk scans rows[lo:hi] with one reused input buffer.
func (s *MLMSTP) argminChunk(m ml.Regressor, rows [][]float64, fa, fb []float64, lo, hi int) (int, float64) {
	bestIdx := -1
	bestPred := math.Inf(1)
	var x []float64
	off := 0
	if s.useFeatures {
		x = make([]float64, len(fa)+len(fb)+len(rows[0]))
		copy(x, fa)
		copy(x[len(fa):], fb)
		off = len(fa) + len(fb)
	}
	for i := lo; i < hi; i++ {
		var in []float64
		if s.useFeatures {
			copy(x[off:], rows[i])
			in = x
		} else {
			in = rows[i]
		}
		if pred := m.Predict(in); pred < bestPred {
			bestPred = pred
			bestIdx = i
		}
	}
	return bestIdx, bestPred
}

// PredictSoloBest predicts the best standalone configuration for one
// application (used by the PTM mapping policy, which tunes without
// pairing): the observation is paired with itself at a token 1-mapper
// slot and the primary slot's knobs are returned.
func PredictSoloBest(s STP, o Observation, db *Database) (mapreduce.Config, error) {
	cfg, _, err := PredictSoloBestExpected(s, o, db)
	return cfg, err
}

// PredictSoloBestExpected is PredictSoloBest plus the forecast backing
// it: the nearest known application's solo-optimal measured outcome.
// The forecast is for the database's conditions (the neighbour's app
// and size, run alone at the returned configuration), so its error
// against the realized outcome measures how well the database still
// resembles the live workload — the decision-audit drift signal.
func PredictSoloBestExpected(s STP, o Observation, db *Database) (mapreduce.Config, PairExpectation, error) {
	// LkT has a natural solo answer: the nearest known application's
	// solo-optimal configuration.
	near := db.Classifier().NearestKnown(o)
	best, err := db.Oracle().BestSolo(near.App, near.SizeGB*1024)
	if err != nil {
		return mapreduce.Config{}, PairExpectation{}, err
	}
	return best.Cfg, PairExpectation{
		EDP:    best.Out.EDP,
		TimeS:  best.Out.Makespan,
		PowerW: best.Out.AvgPower,
	}, nil
}

// PredictRow returns the technique's baseline-relative EDP estimate for
// one database row of the given class pair — used by the Table-1
// training-accuracy experiment.
func (s *MLMSTP) PredictRow(cp ClassPair, r TrainRow) (float64, error) {
	m, ok := s.models[modelKey{cp, r.X[0], r.X[1]}]
	if !ok {
		return 0, fmt.Errorf("core: %s: no model for %v at sizes (%g,%g)", s.name, cp, r.X[0], r.X[1])
	}
	return math.Exp(m.Predict(s.inputRow(r.FA, r.FB, r.X))), nil
}

package core

import (
	"math"
	"sync"
	"testing"

	"ecost/internal/cluster"
	"ecost/internal/mapreduce"
	"ecost/internal/ml"
	"ecost/internal/perfctr"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// The fixture is shared across the package's tests: a database over two
// sizes with a coarse config sample keeps the one-time cost low.
var (
	fixOnce sync.Once
	fix     struct {
		model    *mapreduce.Model
		oracle   *Oracle
		profiler *Profiler
		db       *Database
		lkt      *LkTSTP
		rep      *MLMSTP
	}
)

func fixture(t testing.TB) {
	t.Helper()
	fixOnce.Do(func() {
		fix.model = mapreduce.NewModel(cluster.AtomC2758())
		fix.oracle = NewOracle(fix.model)
		fix.profiler = NewProfiler(fix.model, sim.NewRNG(42))
		db, err := BuildDatabase(fix.profiler, fix.oracle, workloads.Training(), BuildOptions{
			Sizes:        []float64{1, 5},
			ConfigStride: 13,
		})
		if err != nil {
			panic(err)
		}
		fix.db = db
		fix.lkt = &LkTSTP{DB: db}
		rep, err := NewMLMSTP("REPTree", db, func() ml.Regressor {
			tr := ml.NewREPTree()
			tr.MinLeaf = 2
			return tr
		})
		if err != nil {
			panic(err)
		}
		fix.rep = rep
	})
}

func obsOf(t *testing.T, name string, size float64) Observation {
	t.Helper()
	o, err := fix.profiler.Observe(workloads.MustByName(name), size)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestClassifierOnAllApps(t *testing.T) {
	fixture(t)
	for _, app := range workloads.Apps() {
		for _, size := range []float64{1, 5} {
			o, err := fix.profiler.Observe(app, size)
			if err != nil {
				t.Fatal(err)
			}
			if got := fix.db.Classifier().Classify(o); got != app.Class {
				t.Errorf("%s@%vGB classified %v, want %v", app.Name, size, got, app.Class)
			}
		}
	}
}

func TestNearestKnownSameClass(t *testing.T) {
	fixture(t)
	for _, app := range workloads.Testing() {
		o, err := fix.profiler.Observe(app, 5)
		if err != nil {
			t.Fatal(err)
		}
		near := fix.db.Classifier().NearestKnown(o)
		if near.App.Class != app.Class {
			t.Errorf("%s nearest known is %s of class %v, want class %v",
				app.Name, near.App.Name, near.App.Class, app.Class)
		}
		if near.SizeGB != 5 {
			t.Errorf("%s matched size %v, want same-size preference", app.Name, near.SizeGB)
		}
	}
}

func TestProfilingConfigValid(t *testing.T) {
	if err := ProfilingConfig().Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestObservationReducedWidth(t *testing.T) {
	fixture(t)
	o := obsOf(t, "wc", 5)
	if len(o.Reduced()) != 7 {
		t.Fatalf("reduced features = %d, want 7", len(o.Reduced()))
	}
}

func TestOracleCOLAOIsOptimal(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("gp")
	b := workloads.MustByName("st")
	best, err := fix.oracle.COLAO(a, 1024, b, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check alternative configs: none may beat COLAO.
	pcs := mapreduce.PairConfigsCached(8)
	for i := 0; i < len(pcs); i += 513 {
		co, err := fix.oracle.EvalPair(a, 1024, b, 1024, pcs[i])
		if err != nil {
			t.Fatal(err)
		}
		if co.EDP < best.Out.EDP*(1-1e-9) {
			t.Fatalf("config %v beats COLAO: %g < %g", pcs[i], co.EDP, best.Out.EDP)
		}
	}
}

func TestOracleMemoization(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("wc")
	before := fix.oracle.CachedPairs()
	if _, err := fix.oracle.COLAO(a, 1024, a, 1024); err != nil {
		t.Fatal(err)
	}
	mid := fix.oracle.CachedPairs()
	if _, err := fix.oracle.COLAO(a, 1024, a, 1024); err != nil {
		t.Fatal(err)
	}
	if fix.oracle.CachedPairs() != mid || mid < before {
		t.Fatal("COLAO memoization broken")
	}
}

func TestOracleSymmetry(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("wc")
	b := workloads.MustByName("fp")
	ab, err := fix.oracle.COLAO(a, 1024, b, 5120)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := fix.oracle.COLAO(b, 5120, a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Out.EDP != ba.Out.EDP {
		t.Fatalf("COLAO not symmetric: %g vs %g", ab.Out.EDP, ba.Out.EDP)
	}
	if ab.Cfg[0] != ba.Cfg[1] || ab.Cfg[1] != ba.Cfg[0] {
		t.Fatalf("COLAO configs not mirrored: %v vs %v", ab.Cfg, ba.Cfg)
	}
}

func TestILAOFormula(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("wc")
	b := workloads.MustByName("st")
	edp, cfgs, err := fix.oracle.ILAO(a, 1024, b, 1024)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := fix.oracle.BestSolo(a, 1024)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := fix.oracle.BestSolo(b, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := (sa.Out.EnergyJ + sb.Out.EnergyJ) * (sa.Out.Makespan + sb.Out.Makespan)
	if edp != want {
		t.Fatalf("ILAO EDP = %g, want %g", edp, want)
	}
	if cfgs[0] != sa.Cfg || cfgs[1] != sb.Cfg {
		t.Fatal("ILAO configs are not the solo-optimal ones")
	}
}

func TestDatabaseShape(t *testing.T) {
	fixture(t)
	// 5 training apps × 2 sizes = 10 observations → 55 unordered pairs.
	if got := len(fix.db.Entries); got != 55 {
		t.Fatalf("database entries = %d, want 55", got)
	}
	if len(fix.db.Rows) == 0 {
		t.Fatal("no training rows")
	}
	for cp, rows := range fix.db.Rows {
		for _, r := range rows {
			if len(r.X) != len(ConfigRow(1, 1, [2]mapreduce.Config{{Freq: 1.2, Block: 64, Mappers: 1}, {Freq: 1.2, Block: 64, Mappers: 1}})) {
				t.Fatalf("%v row width %d inconsistent", cp, len(r.X))
			}
			if r.EDP <= 0 || r.RelEDP <= 0 {
				t.Fatalf("%v row has non-positive EDP", cp)
			}
		}
	}
}

func TestPriorityRankingShape(t *testing.T) {
	fixture(t)
	ranking := fix.db.PriorityRanking()
	if len(ranking) != 10 {
		t.Fatalf("ranking has %d class pairs, want 10", len(ranking))
	}
	if got := ranking[0].Pair; got != (ClassPair{workloads.IOBound, workloads.IOBound}) {
		t.Errorf("top-ranked pair = %v, want I-I (paper Fig. 5)", got)
	}
	last := ranking[len(ranking)-1].Pair
	if last.A != workloads.MemBound && last.B != workloads.MemBound {
		t.Errorf("lowest-ranked pair = %v, want an M pair", last)
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i].Benefit > ranking[i-1].Benefit {
			t.Fatal("ranking not sorted by benefit")
		}
	}
}

func TestPartnerPriorityIncludesAllClasses(t *testing.T) {
	fixture(t)
	for _, c := range workloads.Classes() {
		order := fix.db.PartnerPriority(c)
		if len(order) != 4 {
			t.Fatalf("PartnerPriority(%v) = %v, want all 4 classes", c, order)
		}
		// M must never be the preferred partner (paper: M-X ranks last).
		if order[0] == workloads.MemBound {
			t.Errorf("PartnerPriority(%v) prefers M first: %v", c, order)
		}
	}
}

func TestLookupBestReturnsStoredOptimum(t *testing.T) {
	fixture(t)
	// A known application must map to itself and return its own entry.
	o, err := fix.profiler.ObserveExact(workloads.MustByName("st"), 5)
	if err != nil {
		t.Fatal(err)
	}
	best, err := fix.db.LookupBest(o, o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fix.oracle.COLAO(workloads.MustByName("st"), 5120, workloads.MustByName("st"), 5120)
	if err != nil {
		t.Fatal(err)
	}
	if best.Out.EDP != want.Out.EDP {
		t.Fatalf("lookup for known pair returned EDP %g, want stored optimum %g", best.Out.EDP, want.Out.EDP)
	}
}

func TestSTPConfigsValid(t *testing.T) {
	fixture(t)
	oa := obsOf(t, "nb", 5)
	ob := obsOf(t, "km", 5)
	for _, s := range []STP{fix.lkt, fix.rep} {
		cfg, err := s.PredictBest(oa, ob)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := cfg[0].Validate(8); err != nil {
			t.Errorf("%s slot 0: %v", s.Name(), err)
		}
		if err := cfg[1].Validate(8); err != nil {
			t.Errorf("%s slot 1: %v", s.Name(), err)
		}
		if cfg[0].Mappers+cfg[1].Mappers > 8 {
			t.Errorf("%s overcommits cores: %v", s.Name(), cfg)
		}
	}
}

func TestSTPReasonableVsOracle(t *testing.T) {
	fixture(t)
	oa := obsOf(t, "nb", 5)
	ob := obsOf(t, "cf", 5)
	colao, err := fix.oracle.COLAO(workloads.MustByName("nb"), 5120, workloads.MustByName("cf"), 5120)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []STP{fix.lkt, fix.rep} {
		cfg, err := s.PredictBest(oa, ob)
		if err != nil {
			t.Fatal(err)
		}
		out, err := fix.oracle.EvalPair(workloads.MustByName("nb"), 5120, workloads.MustByName("cf"), 5120, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if gap := out.EDP / colao.Out.EDP; gap > 2 {
			t.Errorf("%s chose a config %.1fx worse than the oracle", s.Name(), gap)
		}
	}
}

func TestMLMSTPSlotCanonicalization(t *testing.T) {
	fixture(t)
	oa := obsOf(t, "svm", 5) // C
	ob := obsOf(t, "km", 5)  // M
	ab, err := fix.rep.PredictBest(oa, ob)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := fix.rep.PredictBest(ob, oa)
	if err != nil {
		t.Fatal(err)
	}
	if ab[0] != ba[1] || ab[1] != ba[0] {
		t.Fatalf("prediction not order-equivariant: %v vs %v", ab, ba)
	}
}

func TestPredictRowKnownPair(t *testing.T) {
	fixture(t)
	for cp, rows := range fix.db.Rows {
		if len(rows) == 0 {
			continue
		}
		got, err := fix.rep.PredictRow(cp, rows[0])
		if err != nil {
			t.Fatalf("%v: %v", cp, err)
		}
		if got <= 0 {
			t.Fatalf("%v: non-positive RelEDP prediction %g", cp, got)
		}
		break
	}
}

func TestRuleClassifyVectors(t *testing.T) {
	fixture(t)
	vectors := make([]perfctr.Vector, 0, len(workloads.Training()))
	byName := map[string]perfctr.Vector{}
	for _, app := range workloads.Training() {
		o, err := fix.profiler.ObserveExact(app, 5)
		if err != nil {
			t.Fatal(err)
		}
		vectors = append(vectors, o.Features)
		byName[app.Name] = o.Features
	}
	cases := map[string]workloads.Class{
		"wc": workloads.Compute,
		"st": workloads.IOBound,
		"fp": workloads.MemBound,
	}
	for name, want := range cases {
		if got := RuleClassify(byName[name], vectors); got != want {
			t.Errorf("RuleClassify(%s) = %v, want %v", name, got, want)
		}
	}
	// Degenerate reference: classifying against itself lands in the
	// default (Hybrid) branch rather than panicking.
	if got := RuleClassify(byName["wc"], nil); got != workloads.Hybrid {
		t.Errorf("RuleClassify with empty reference = %v, want Hybrid", got)
	}
}

func TestParallelCOLAOMatchesSerialScan(t *testing.T) {
	fixture(t)
	// The parallel search must return the exact argmin of the serial scan
	// (ties broken by configuration index).
	a := workloads.MustByName("gp")
	b := workloads.MustByName("km")
	got, err := fix.oracle.COLAO(a, 2048, b, 2048)
	if err != nil {
		t.Fatal(err)
	}
	bestEDP := math.Inf(1)
	var bestIdx int
	pcs := mapreduce.PairConfigsCached(8)
	for i, pc := range pcs {
		co, err := fix.oracle.EvalPair(a, 2048, b, 2048, pc)
		if err != nil {
			t.Fatal(err)
		}
		if co.EDP < bestEDP {
			bestEDP = co.EDP
			bestIdx = i
		}
	}
	if got.Cfg != pcs[bestIdx] {
		t.Fatalf("parallel COLAO chose %v, serial scan %v", got.Cfg, pcs[bestIdx])
	}
	if got.Out.EDP != bestEDP {
		t.Fatalf("parallel COLAO EDP %g, serial %g", got.Out.EDP, bestEDP)
	}
}

func TestParallelCOLAODeterministic(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("pr")
	b := workloads.MustByName("hmm")
	first, err := fix.oracle.searchPair(a, 3072, b, 3072)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := fix.oracle.searchPair(a, 3072, b, 3072)
		if err != nil {
			t.Fatal(err)
		}
		if again.Cfg != first.Cfg || again.Out.EDP != first.Out.EDP {
			t.Fatalf("parallel search not deterministic: %v vs %v", again.Cfg, first.Cfg)
		}
	}
}

package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"testing"

	"ecost/internal/flight"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// TestShardedElisionMatchesFullBarriers is the tentpole property: for
// every seed × shard count × steal mode, the barrier-eliding drive
// (free-running windows wherever no thief/victim pairing can exist)
// must be byte-identical to the retained full-barrier reference path —
// makespan and energy bits, per-shard metrics snapshots, span
// timelines, and decision JSONL. The dense streams force queueing (and
// steals, when enabled) so the exact-barrier fallback is exercised; the
// matrix also proves windows actually elided work somewhere, or the
// property would be vacuous.
func TestShardedElisionMatchesFullBarriers(t *testing.T) {
	var elided, barriers, steals int64
	for _, shards := range []int{2, 4} {
		for _, steal := range []bool{false, true} {
			for _, seed := range []int64{1, 7, 42} {
				cfg := ShardedConfig{Shards: shards, Steal: steal}
				stream := seededStream(48, seed, 5)
				label := fmt.Sprintf("shards=%d steal=%v seed=%d", shards, steal, seed)
				ref := runShardedMode(t, 8, cfg, true, stream)
				got := runShardedMode(t, 8, cfg, false, stream)
				if ref.stats.Windows != 0 || ref.stats.WindowEvents != 0 {
					t.Fatalf("%s: reference path ran %d free windows", label, ref.stats.Windows)
				}
				if !steal && got.stats.Barriers != 0 {
					t.Fatalf("%s: steal-off run still barriered %d times", label, got.stats.Barriers)
				}
				elided += got.stats.WindowEvents
				barriers += got.stats.Barriers
				steals += int64(got.steals)
				// The cadences differ by design; every export must not.
				got.stats = ref.stats
				shardedExportsEqual(t, label, ref, got)
			}
		}
	}
	if elided == 0 {
		t.Fatal("no configuration elided a single barrier — the property is vacuous")
	}
	if barriers == 0 {
		t.Fatal("no steal-on configuration fell back to an exact barrier")
	}
	if steals == 0 {
		t.Fatal("no configuration stole — the steal-on half of the property is vacuous")
	}
}

// TestShardedElisionStealExactness pins the eligibility predicate from
// both sides. A window opens only while every wait queue is empty — the
// exact condition under which the reference steal pass early-outs — so
// the elided run must reproduce the reference's steal count on streams
// engineered to maximize stealing (a single-tenant burst landing on one
// home shard), and must never open a window before those queues drain.
// The sparse stream proves the other direction: with queues always
// empty at the barriers, the run is nearly all windows and an exact
// barrier fires only at arrival times.
func TestShardedElisionStealExactness(t *testing.T) {
	cfg := ShardedConfig{Shards: 4, Steal: true}

	// Burst: every arrival at t=0 on one home shard. Queues are
	// non-empty from the first barrier until the backlog drains, so no
	// window may open before the last steal-eligible barrier has run.
	burst := func(c *ShardedScheduler) {
		app := workloads.MustByName("wc")
		for i := 0; i < 32; i++ {
			c.Submit(app, 5, 0)
		}
	}
	ref := runShardedMode(t, 8, cfg, true, burst)
	got := runShardedMode(t, 8, cfg, false, burst)
	if got.steals != ref.steals || got.steals == 0 {
		t.Fatalf("burst: elided run stole %d, reference %d (want equal, nonzero)", got.steals, ref.steals)
	}
	if got.stats.Barriers == 0 {
		t.Fatal("burst: elided run never fell back to an exact barrier while queues were non-empty")
	}
	if got.stats.WindowEvents == 0 {
		t.Fatal("burst: drained tail never ran as a free window")
	}
	gotStats := got.stats
	got.stats = ref.stats
	shardedExportsEqual(t, "burst", ref, got)

	// Sparse: arrivals spaced far beyond any runtime. Queues never form,
	// the reference never steals, and the elided run's only exact
	// barriers sit at arrival times (each fires at least one arrival).
	const jobs = 12
	sparse := func(c *ShardedScheduler) {
		apps := workloads.Training()
		for i := 0; i < jobs; i++ {
			c.Submit(apps[i%len(apps)], 5, float64(i)*5e4)
		}
	}
	ref = runShardedMode(t, 8, cfg, true, sparse)
	got = runShardedMode(t, 8, cfg, false, sparse)
	if got.steals != 0 || ref.steals != 0 {
		t.Fatalf("sparse: steals fired (%d elided, %d reference) on a non-overlapping stream", got.steals, ref.steals)
	}
	if got.stats.Barriers > jobs {
		t.Fatalf("sparse: %d exact barriers for %d arrivals — a barrier ran where no queue could exist", got.stats.Barriers, jobs)
	}
	if got.stats.Windows == 0 {
		t.Fatal("sparse: no free-running window on an empty-queue stream")
	}
	got.stats = ref.stats
	shardedExportsEqual(t, "sparse", ref, got)
	t.Logf("burst: %d barriers + %d window events (%.0f%% elided); sparse: %d barriers for %d arrivals",
		gotStats.Barriers, gotStats.WindowEvents, 100*gotStats.ElidedRatio(), got.stats.Barriers, jobs)
}

// TestShardedFlightPinsFullBarriers proves the flight-recorder
// contract: epoch records sample every shard at every global event
// time, which elision cannot reproduce, so attaching a recorder must
// force the exact cadence — zero windows — and produce dumps
// byte-identical to an explicit SetFullBarriers run.
func TestShardedFlightPinsFullBarriers(t *testing.T) {
	run := func(full bool) (BarrierStats, string) {
		fixture(t)
		prof := NewProfiler(fix.model, sim.NewRNG(99))
		c, err := NewShardedScheduler(fix.model, fix.db, prof,
			func() STP { return NewMemoSTP(fix.lkt, nil) }, 8,
			ShardedConfig{Shards: 4, Steal: true})
		if err != nil {
			t.Fatal(err)
		}
		fr := flight.New(flight.Config{Shards: 4, ShardNodes: c.ShardNodes()})
		c.SetFlight(fr)
		c.SetFullBarriers(full)
		seededStream(48, 7, 5)(c)
		if _, _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
		return c.BarrierStats(), flightExports(t, fr)
	}
	implicit, dumpA := run(false)
	explicit, dumpB := run(true)
	if implicit.Windows != 0 || implicit.WindowEvents != 0 {
		t.Fatalf("flight-attached run opened %d windows (%d events) — epoch records would skip barriers",
			implicit.Windows, implicit.WindowEvents)
	}
	if implicit != explicit {
		t.Fatalf("flight-attached cadence %+v != explicit full-barrier cadence %+v", implicit, explicit)
	}
	if dumpA != dumpB {
		t.Fatalf("flight exports diverged between implicit and explicit full-barrier runs:\n--- implicit ---\n%s\n--- explicit ---\n%s", dumpA, dumpB)
	}
}

// TestRouteShardMatchesFNV pins the inlined routing hash to the library
// FNV-1a it replaced: any divergence would silently re-home every
// tenant and break the recorded sweep baselines.
func TestRouteShardMatchesFNV(t *testing.T) {
	names := []string{"", "a", "wc", "st", "gp", "ts", "kmeans", "pagerank", "tenant-4711", "Σ/utf8·name"}
	for _, app := range workloads.Training() {
		names = append(names, app.Name)
	}
	for _, name := range names {
		for _, shards := range []int{1, 2, 3, 4, 16} {
			h := fnv.New32a()
			h.Write([]byte(name))
			want := int(h.Sum32() % uint32(shards))
			if got := routeShard(name, shards); got != want {
				t.Fatalf("routeShard(%q, %d) = %d, library FNV-1a gives %d", name, shards, got, want)
			}
		}
	}
}

// TestShardedCompletedMerge pins the S-way completion merge against the
// global sort it replaced: cross-shard finish-time ties break by id,
// and a shard whose same-instant completions landed out of id order
// still produces the sorted order via the fallback.
func TestShardedCompletedMerge(t *testing.T) {
	fixture(t)
	build := func() *ShardedScheduler {
		prof := NewProfiler(fix.model, sim.NewRNG(99))
		c, err := NewShardedScheduler(fix.model, fix.db, prof,
			func() STP { return NewMemoSTP(fix.lkt, nil) }, 4, ShardedConfig{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	reference := func(c *ShardedScheduler) []CompletedJob {
		var out []CompletedJob
		for _, sh := range c.shards {
			out = append(out, sh.completed...)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Finished != out[j].Finished {
				return out[i].Finished < out[j].Finished
			}
			return out[i].ID < out[j].ID
		})
		return out
	}
	check := func(label string, c *ShardedScheduler) {
		t.Helper()
		want := reference(c)
		got := c.Completed()
		if len(got) != len(want) {
			t.Fatalf("%s: merged %d jobs, want %d", label, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Float64bits(got[i].Finished) != math.Float64bits(want[i].Finished) {
				t.Fatalf("%s: position %d: got job %d @%v, want job %d @%v",
					label, i, got[i].ID, got[i].Finished, want[i].ID, want[i].Finished)
			}
		}
	}

	// Sorted shards with a cross-shard tie at t=30 (ids 5 vs 2).
	c := build()
	c.shards[0].completed = []CompletedJob{{ID: 0, Finished: 10}, {ID: 5, Finished: 30}, {ID: 6, Finished: 40}}
	c.shards[1].completed = []CompletedJob{{ID: 1, Finished: 20}, {ID: 2, Finished: 30}, {ID: 3, Finished: 30}}
	check("cross-shard ties", c)

	// A same-instant pair out of id order within one shard: the merge
	// must detect it and fall back to the global sort.
	c = build()
	c.shards[0].completed = []CompletedJob{{ID: 9, Finished: 30}, {ID: 4, Finished: 30}}
	c.shards[1].completed = []CompletedJob{{ID: 1, Finished: 20}}
	check("within-shard tie fallback", c)

	// Degenerate shapes: one empty shard, then all empty.
	c = build()
	c.shards[1].completed = []CompletedJob{{ID: 0, Finished: 5}}
	check("one empty shard", c)
	c = build()
	check("all empty", c)
}

package core

import (
	"testing"

	"ecost/internal/sim"
	"ecost/internal/workloads"
)

func newSched(t *testing.T, nodes int) (*OnlineScheduler, *sim.Engine) {
	t.Helper()
	fixture(t)
	eng := sim.NewEngine()
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.rep, fix.profiler, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func TestOnlineSchedulerValidation(t *testing.T) {
	fixture(t)
	eng := sim.NewEngine()
	if _, err := NewOnlineScheduler(nil, fix.model, fix.db, fix.rep, fix.profiler, 1); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.rep, fix.profiler, 0); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestOnlineSchedulerCompletesAll(t *testing.T) {
	s, _ := newSched(t, 2)
	apps := []string{"nb", "pr", "km", "svm", "cf", "hmm"}
	for i, name := range apps {
		s.Submit(workloads.MustByName(name), 5, float64(i)*50)
	}
	makespan, energy, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	done := s.Completed()
	if len(done) != len(apps) {
		t.Fatalf("completed %d of %d jobs", len(done), len(apps))
	}
	if makespan <= 0 || energy <= 0 {
		t.Fatalf("makespan %v energy %v", makespan, energy)
	}
	for _, c := range done {
		if c.Finished <= c.Started || c.Started < c.Submitted {
			t.Errorf("job %d has inconsistent times: %+v", c.ID, c)
		}
		if err := c.Cfg.Validate(8); err != nil {
			t.Errorf("job %d got invalid config: %v", c.ID, err)
		}
	}
	if s.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", s.QueueLen())
	}
}

func TestOnlineSchedulerCoLocates(t *testing.T) {
	s, _ := newSched(t, 1)
	// Two jobs arriving together on one node must overlap in time.
	s.Submit(workloads.MustByName("st"), 5, 0)
	s.Submit(workloads.MustByName("pr"), 5, 0)
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	done := s.Completed()
	if len(done) != 2 {
		t.Fatalf("completed %d jobs", len(done))
	}
	first, second := done[0], done[1]
	if second.Started >= first.Finished {
		t.Fatalf("jobs ran serially: first finished %v, second started %v",
			first.Finished, second.Started)
	}
	if first.Node != second.Node {
		t.Fatalf("jobs on different nodes of a 1-node cluster")
	}
}

func TestOnlineSchedulerAtMostTwoPerNode(t *testing.T) {
	// The model's Steady() validates core limits at every event, so an
	// overcommit would surface as a Run error; here we check the paper's
	// co-location cap of two applications per node.
	s, _ := newSched(t, 1)
	for _, name := range []string{"nb", "cf", "pr", "km", "svm"} {
		s.Submit(workloads.MustByName(name), 1, 0)
	}
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	done := s.Completed()
	if len(done) != 5 {
		t.Fatalf("completed %d of 5", len(done))
	}
	for _, a := range done {
		overlapping := 1
		for _, b := range done {
			if b.ID == a.ID {
				continue
			}
			if b.Started < a.Started+1e-9 && b.Finished > a.Started+1e-9 {
				overlapping++
			}
		}
		if overlapping > 2 {
			t.Fatalf("%d jobs co-located at job %d's start; the cap is 2", overlapping, a.ID)
		}
	}
}

func TestOnlineSchedulerFasterWithMoreNodes(t *testing.T) {
	run := func(nodes int) float64 {
		s, _ := newSched(t, nodes)
		for _, name := range []string{"nb", "pr", "km", "svm", "cf", "hmm", "nb", "pr"} {
			s.Submit(workloads.MustByName(name), 5, 0)
		}
		makespan, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return makespan
	}
	one, four := run(1), run(4)
	if four >= one {
		t.Fatalf("4 nodes (%vs) not faster than 1 node (%vs)", four, one)
	}
}

func TestOnlineSchedulerEnergyMatchesIdleFloor(t *testing.T) {
	s, _ := newSched(t, 2)
	s.Submit(workloads.MustByName("nb"), 1, 0)
	makespan, energy, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	idleFloor := 2 * fix.model.IdlePower() * makespan
	if energy < idleFloor {
		t.Fatalf("energy %v below the idle floor %v", energy, idleFloor)
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewWaitQueue()
	if q.PopHead() != nil || q.Head() != nil {
		t.Fatal("empty queue returned a job")
	}
	for i := 0; i < 5; i++ {
		q.Push(&Job{ID: i, EstTime: 10})
	}
	q.Push(nil) // ignored
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 5; i++ {
		j := q.PopHead()
		if j.ID != i {
			t.Fatalf("pop %d returned job %d", i, j.ID)
		}
	}
}

func TestQueueLeapForward(t *testing.T) {
	q := NewWaitQueue()
	q.Push(&Job{ID: 0, EstTime: 10})
	q.Push(&Job{ID: 1, EstTime: 9})  // too large to leap
	q.Push(&Job{ID: 2, EstTime: 4})  // small: can leap
	q.Push(&Job{ID: 3, EstTime: 11}) // too large
	cands := q.Candidates()
	if len(cands) != 2 || cands[0].ID != 0 || cands[1].ID != 2 {
		t.Fatalf("candidates = %v, want head plus small job 2", ids(cands))
	}
}

func TestQueueTake(t *testing.T) {
	q := NewWaitQueue()
	for i := 0; i < 3; i++ {
		q.Push(&Job{ID: i})
	}
	j, err := q.Take(1)
	if err != nil || j.ID != 1 {
		t.Fatalf("Take(1) = %v, %v", j, err)
	}
	if _, err := q.Take(1); err == nil {
		t.Fatal("double Take succeeded")
	}
	if q.Len() != 2 || q.Head().ID != 0 {
		t.Fatal("queue corrupted by Take")
	}
}

func TestSelectPartnerPriority(t *testing.T) {
	q := NewWaitQueue()
	q.Push(&Job{ID: 0, Class: workloads.MemBound, EstTime: 10})
	q.Push(&Job{ID: 1, Class: workloads.IOBound, EstTime: 4}) // small leaper, top class
	q.Push(&Job{ID: 2, Class: workloads.Compute, EstTime: 3})
	got := q.SelectPartner(workloads.Compute, DefaultPriority())
	if got == nil || got.ID != 1 {
		t.Fatalf("SelectPartner = %v, want the I-class leaper (job 1)", got)
	}
	// A partner slot never delays the head, so even a large I job deeper
	// in the queue may be chosen as the partner (the head keeps its
	// reservation for the next fresh slot).
	q2 := NewWaitQueue()
	q2.Push(&Job{ID: 0, Class: workloads.MemBound, EstTime: 10})
	q2.Push(&Job{ID: 1, Class: workloads.IOBound, EstTime: 9})
	got = q2.SelectPartner(workloads.Compute, DefaultPriority())
	if got == nil || got.ID != 1 {
		t.Fatalf("SelectPartner = %v, want the I-class job", got)
	}
	if q2.SelectPartner(workloads.Compute, nil) == nil {
		t.Fatal("nil priority should still return the head")
	}
	empty := NewWaitQueue()
	if empty.SelectPartner(workloads.Compute, DefaultPriority()) != nil {
		t.Fatal("empty queue returned a partner")
	}
}

func ids(js []*Job) []int {
	out := make([]int, len(js))
	for i, j := range js {
		out[i] = j.ID
	}
	return out
}

func TestSelectPartnerSized(t *testing.T) {
	q := NewWaitQueue()
	q.Push(&Job{ID: 0, Class: workloads.IOBound, EstTime: 10})
	q.Push(&Job{ID: 1, Class: workloads.IOBound, EstTime: 4}) // leaper, same class, better size match
	got := q.SelectPartnerSized(workloads.IOBound, 4, DefaultPriority())
	if got == nil || got.ID != 1 {
		t.Fatalf("SelectPartnerSized = %v, want the duration-matched job 1", got)
	}
	// With a running estimate near the head's, the head wins.
	got = q.SelectPartnerSized(workloads.IOBound, 10, DefaultPriority())
	if got == nil || got.ID != 0 {
		t.Fatalf("SelectPartnerSized = %v, want head (duration 10 matches)", got)
	}
	// Class priority still dominates size matching.
	q2 := NewWaitQueue()
	q2.Push(&Job{ID: 0, Class: workloads.MemBound, EstTime: 10})
	q2.Push(&Job{ID: 1, Class: workloads.IOBound, EstTime: 1}) // tiny but top class
	got = q2.SelectPartnerSized(workloads.Compute, 10, DefaultPriority())
	if got == nil || got.ID != 1 {
		t.Fatalf("SelectPartnerSized = %v, want the I-class job despite the size gap", got)
	}
	if NewWaitQueue().SelectPartnerSized(workloads.Compute, 1, DefaultPriority()) != nil {
		t.Fatal("empty queue returned a partner")
	}
}

func TestSelectPartnerSizedUniformEquivalence(t *testing.T) {
	// With uniform estimates the extension must reduce to SelectPartner.
	mk := func() *WaitQueue {
		q := NewWaitQueue()
		q.Push(&Job{ID: 0, Class: workloads.MemBound, EstTime: 5})
		q.Push(&Job{ID: 1, Class: workloads.Hybrid, EstTime: 2})
		q.Push(&Job{ID: 2, Class: workloads.IOBound, EstTime: 2})
		return q
	}
	a := mk().SelectPartner(workloads.Compute, DefaultPriority())
	b := mk().SelectPartnerSized(workloads.Compute, 5, DefaultPriority())
	if a.ID != b.ID {
		t.Fatalf("divergence on uniform sizes: %d vs %d", a.ID, b.ID)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ecost/internal/audit"
	"ecost/internal/flight"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/perfctr"
	"ecost/internal/power"
	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// OnlineScheduler is the event-driven form of ECoST (Figure 4): jobs
// arrive over time, are profiled and classified, wait in the FIFO queue
// with head reservation, and are co-located onto nodes by the pairing
// decision tree with STP-tuned configurations. Job progress follows the
// execution model's fluid contention solver, recomputed whenever a
// node's resident set changes.
type OnlineScheduler struct {
	Engine   *sim.Engine
	Model    *mapreduce.Model
	DB       *Database
	Tuner    STP
	Profiler *Profiler

	// MaxPerNode caps co-located jobs per node (the paper fixes 2).
	MaxPerNode int

	queue *WaitQueue
	nodes []*onlineNode

	// naive selects the legacy reference paths (O(nodes) power
	// recompute per accrual, linear dispatch and partner scans) kept
	// for equivalence testing and baseline benchmarks; see SetNaive.
	naive bool

	// base offsets node ids in every export (metrics events, span
	// attributes, audit rows, CompletedJob.Node) so a shard owning
	// nodes [base, base+len) reports cluster-global ids while its
	// internal indexes stay dense. Zero for the unsharded scheduler.
	base int

	// fastAcc selects the O(1) aggregate accrual path: reschedule
	// maintains phaseWatts, the running sum of cached node draws per
	// occupancy phase (0 idle, 1 solo, 2 co-located), and accrueEnergy
	// integrates the three sums instead of walking every node. Summing
	// incrementally reassociates the float adds, so total energy can
	// differ from the per-node walk in the last ulps (golden-tested to
	// 1e-9 relative); scheduling decisions never read energy, so
	// makespan and every placement stay bit-identical. The fast path
	// only engages when no per-node attribution is needed (tracer and
	// audit off, not naive); see SetFastAccrual.
	fastAcc    bool
	phaseWatts [3]float64

	// steadyMemo caches steady-state contention solves by the exact
	// model inputs (per-resident app name, data size, configuration, in
	// resident order). Steady is a pure function of those inputs, so a
	// hit returns bit-identical times and watts — the cache is
	// transparent to every golden — while recurring tenant pairs skip
	// the fluid solver entirely. Nil when disabled; see SetSteadyMemo.
	steadyMemo map[steadyKey]steadyVal

	// freeCnt / halfCnt mirror the dispatch bitmaps' populations so
	// FreeSlots — called per shard at every steal barrier — is O(1)
	// instead of a popcount walk.
	freeCnt, halfCnt int

	// idleWatts caches the empty-node steady-state draw (bit-identical
	// to Model.Steady(nil)); scratch is the reusable RunSpec buffer the
	// reschedule path builds resident specs into; freeSet / halfSet
	// index nodes with zero / exactly one resident for O(1) dispatch.
	idleWatts float64
	scratch   []mapreduce.RunSpec
	freeSet   nodeSet
	halfSet   nodeSet

	nextID    int
	pending   int
	completed []CompletedJob

	// energy accounting
	energyJ    float64
	lastUpdate float64
	phases     power.PhaseAccumulator

	// met holds the pre-resolved metric handles (nil = observability
	// off; see SetMetrics).
	met *schedMetrics

	// tracer records lifecycle and occupancy spans (nil = tracing off;
	// see SetTracer). traced maps in-flight job IDs to their open
	// spans; nodeSpans holds each node's current occupancy span.
	tracer    *tracing.Tracer
	traced    map[int]*jobSpans
	nodeSpans []*tracing.Span

	// aud records every decision joined with its realized outcome
	// (nil = auditing off; see SetAudit).
	aud *audit.Log

	// fl is this shard's flight-recorder collector (nil = flight
	// recording off; see SetFlight). Forecast joins and drift alerts
	// accumulate here until the control plane drains them at the next
	// barrier.
	fl *flight.Collector

	// arrQ is the pending-arrival ring SubmitObserved fills: instead of
	// one closure + one engine event per submission, the scheduler keeps
	// a single in-flight head event (arrFire) that batch-drains every
	// arrival sharing its timestamp and then re-arms itself at the next
	// arrival time. arrHead indexes the first undelivered entry. The
	// ring keeps shard event heaps shallow — a 200k-job stream holds one
	// pending arrival event instead of 12.5k per shard.
	arrQ    []pendingArrival
	arrHead int
	arrFire func()

	// classMemo caches Classify verdicts by feature vector. Classify is
	// a pure function of Observation.Reduced() — KNN against a fixed
	// training set — so a hit is bit-identical to a fresh call while
	// recurring tenants (identical memoized observations under the
	// sharded router's ProfileMemo) skip the KNN distance scan and its
	// allocations entirely. Nil when disabled; see SetClassMemo.
	classMemo map[perfctr.Vector]workloads.Class

	// jobPool / ojPool recycle Job and onlineJob records: both become
	// unreachable at completion (CompletedJob copies every exported
	// field; spans, audit rows, and metrics hold ids and strings, never
	// the pointers), so the completion path returns them here and
	// arrive/place reuse them. A stolen job's pointer migrates with it
	// and retires into the thief's pool.
	jobPool []*Job
	ojPool  []*onlineJob
}

// pendingArrival is one undelivered SubmitObserved entry in the ring.
type pendingArrival struct {
	id  int
	at  float64
	obs Observation
}

// classMemoCap bounds the classify memo; at the cap it clears wholesale
// (same policy as the steady memo: recurring tenants repopulate the hot
// entries immediately).
const classMemoCap = 8192

// SetClassMemo toggles the Classify memo. A hit is bit-identical to
// calling the classifier (Classify is pure), so this is safe under every
// golden; it pays off when observations recur exactly — the sharded
// control plane enables it on every shard, where ProfileMemo makes
// recurring tenants' feature vectors identical. Call before the first
// Submit.
func (s *OnlineScheduler) SetClassMemo(v bool) {
	if v {
		s.classMemo = make(map[perfctr.Vector]workloads.Class)
	} else {
		s.classMemo = nil
	}
}

// classify returns the behaviour class for obs, through the memo when
// one is attached.
func (s *OnlineScheduler) classify(obs Observation) workloads.Class {
	if s.classMemo == nil {
		return s.DB.Classifier().Classify(obs)
	}
	if c, ok := s.classMemo[obs.Features]; ok {
		return c
	}
	c := s.DB.Classifier().Classify(obs)
	if len(s.classMemo) >= classMemoCap {
		clear(s.classMemo)
	}
	s.classMemo[obs.Features] = c
	return c
}

// jobSpans tracks one in-flight job's open spans plus the model's
// latest map/total time split (refreshed at every reschedule, so the
// final value reflects the contention conditions the job actually
// finished under).
type jobSpans struct {
	job, wait, run *tracing.Span
	mapFrac        float64
}

// schedMetrics pre-resolves the scheduler's instruments so the hot
// event path never takes the registry lock.
type schedMetrics struct {
	reg        *metrics.Registry
	submitted  *metrics.Counter
	completed  *metrics.Counter
	pairs      *metrics.Counter
	reserves   *metrics.Counter
	leaps      *metrics.Counter
	tunePair   *metrics.Counter
	tuneSolo   *metrics.Counter
	depth      *metrics.Series
	turnaround *metrics.Histogram
	wait       map[workloads.Class]*metrics.Histogram

	energyIdle   *metrics.Gauge
	energySolo   *metrics.Gauge
	energyPaired *metrics.Gauge

	// Audit mirrors (registered by auditMetrics once both a registry
	// and an audit log are attached).
	driftAlert  *metrics.Gauge   // stp.drift_alert: 0 healthy, latched 1 on alarm
	driftAlerts *metrics.Counter // audit.drift_alerts: alarms fired
	relErr      map[string]*metrics.Histogram

	// Steal counters, registered lazily on first use so steal-free
	// runs' snapshots stay byte-identical to the unsharded scheduler's.
	stealsIn  *metrics.Counter // sched.steals_in: jobs claimed from neighbors
	stealsOut *metrics.Counter // sched.steals_out: queued jobs claimed away
}

// stealIn lazily registers the jobs-claimed-from-neighbors counter.
func (m *schedMetrics) stealIn() *metrics.Counter {
	if m.stealsIn == nil {
		m.stealsIn = m.reg.Counter("sched.steals_in")
	}
	return m.stealsIn
}

// stealOut lazily registers the jobs-claimed-away counter.
func (m *schedMetrics) stealOut() *metrics.Counter {
	if m.stealsOut == nil {
		m.stealsOut = m.reg.Counter("sched.steals_out")
	}
	return m.stealsOut
}

// waitFor returns the per-class wait-latency histogram.
func (m *schedMetrics) waitFor(c workloads.Class) *metrics.Histogram {
	h, ok := m.wait[c]
	if !ok {
		h = m.reg.Histogram("sched.wait_s."+c.String(), metrics.ExpBuckets(16, 2, 14))
		m.wait[c] = h
	}
	return h
}

// relErrFor returns the per-predicted-class STP relative-error
// histogram (buckets track audit.ErrBuckets: 5% doubling to 1280%).
func (m *schedMetrics) relErrFor(class string) *metrics.Histogram {
	h, ok := m.relErr[class]
	if !ok {
		h = m.reg.Histogram("audit.rel_err_pct."+class, metrics.ExpBuckets(5, 2, 9))
		m.relErr[class] = h
	}
	return h
}

// SetMetrics attaches an observability registry to the scheduler (and
// its wait queue). Call before the first Submit; pass nil to disable.
// The execution model is deliberately left alone — attach a registry to
// Model.Metrics separately if steady-state telemetry is wanted (the
// model may be shared with uninstrumented components).
func (s *OnlineScheduler) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		s.met = nil
		s.queue.Metrics = nil
		return
	}
	s.met = &schedMetrics{
		reg:          reg,
		submitted:    reg.Counter("sched.submitted"),
		completed:    reg.Counter("sched.completed"),
		pairs:        reg.Counter("sched.pairings"),
		reserves:     reg.Counter("sched.reservations"),
		leaps:        reg.Counter("sched.leaps"),
		tunePair:     reg.Counter("sched.tune.pair"),
		tuneSolo:     reg.Counter("sched.tune.solo"),
		depth:        reg.Series("sched.queue_depth"),
		turnaround:   reg.Histogram("sched.turnaround_s", metrics.ExpBuckets(16, 2, 14)),
		wait:         map[workloads.Class]*metrics.Histogram{},
		energyIdle:   reg.Gauge("power.energy_j.idle"),
		energySolo:   reg.Gauge("power.energy_j.solo"),
		energyPaired: reg.Gauge("power.energy_j.paired"),
		relErr:       map[string]*metrics.Histogram{},
	}
	s.queue.Metrics = reg
	s.auditMetrics()
}

// SetAudit attaches a decision-audit log to the scheduler. Call before
// the first Submit; pass nil to disable. When a metrics registry is
// also attached, joins and drift alarms are mirrored into it
// (per-class audit.rel_err_pct histograms, the stp.drift_alert gauge,
// the audit.drift_alerts counter, and EvDrift events).
func (s *OnlineScheduler) SetAudit(l *audit.Log) {
	s.aud = l
	s.auditMetrics()
}

// auditMetrics pre-registers the audit mirror instruments once both an
// audit log and a registry are attached (either attachment order), so
// the drift gauge is visible at 0 on healthy runs.
func (s *OnlineScheduler) auditMetrics() {
	if s.aud == nil || s.met == nil {
		return
	}
	s.met.driftAlert = s.met.reg.Gauge("stp.drift_alert")
	s.met.driftAlerts = s.met.reg.Counter("audit.drift_alerts")
}

// SetTracer attaches a span tracer to the scheduler. Call before the
// first Submit; pass nil to disable. The tracer's clock must be the
// scheduler's engine (tracing.New(engine.Clock())) or span timestamps
// will not line up with the event log.
func (s *OnlineScheduler) SetTracer(tr *tracing.Tracer) {
	s.tracer = tr
	if tr == nil {
		s.traced = nil
		s.nodeSpans = nil
		return
	}
	s.traced = make(map[int]*jobSpans)
	s.nodeSpans = make([]*tracing.Span, len(s.nodes))
	for _, n := range s.nodes {
		s.nodeSpans[n.id] = tr.Start(tracing.KindNode, power.PhaseName(0), nil,
			tracing.Attrs{Job: -1, Node: s.gid(n)})
	}
}

// SetFlight attaches this shard's flight-recorder collector (nil =
// off). The completion path feeds it audit joins and drift alerts;
// the sharded control plane drains it at every barrier. Only the
// owning shard's goroutine writes it between barriers.
func (s *OnlineScheduler) SetFlight(c *flight.Collector) { s.fl = c }

// Nodes reports this scheduler's node count.
func (s *OnlineScheduler) Nodes() int { return len(s.nodes) }

// TopTenants names the most-queued applications, busiest first (name
// ascending on ties), at most max. The flight recorder's triggers use
// it to name the tenants behind a hot shard.
func (s *OnlineScheduler) TopTenants(max int) []string {
	counts := make(map[string]int)
	for _, j := range s.queue.Jobs() {
		counts[j.Obs.App.Name]++
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if counts[names[i]] != counts[names[j]] {
			return counts[names[i]] > counts[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > max {
		names = names[:max]
	}
	return names
}

// Tracer returns the attached span tracer (nil when tracing is off).
func (s *OnlineScheduler) Tracer() *tracing.Tracer { return s.tracer }

// Audit returns the attached decision-audit log (nil when off).
func (s *OnlineScheduler) Audit() *audit.Log { return s.aud }

// rollOccupancy closes a node's current occupancy span and opens the
// next one — called whenever the resident set changes (after the
// closing interval's energy has been accrued). The nil branch must
// stay small enough to inline (see Histogram.Observe): with tracing
// off the call compiles down to a compare-and-return (sub-ns,
// BenchmarkDisabledOccupancyRoll, guarded in CI).
func (s *OnlineScheduler) rollOccupancy(n *onlineNode) {
	if s.tracer == nil {
		return
	}
	s.rollOccupancySlow(n)
}

func (s *OnlineScheduler) rollOccupancySlow(n *onlineNode) {
	now := s.Engine.Now()
	s.nodeSpans[n.id].FinishAt(now)
	var names []string
	for _, r := range n.residents {
		names = append(names, r.job.Obs.App.Name)
	}
	s.nodeSpans[n.id] = s.tracer.Start(tracing.KindNode, power.PhaseName(len(n.residents)), nil,
		tracing.Attrs{Job: -1, Node: s.gid(n), Detail: strings.Join(names, "+")})
}

// sampleDepth records the queue depth at the current sim-time. Like
// rollOccupancy, the disabled path is a single inlined branch
// (BenchmarkDisabledDepthSample) — dispatch calls this per placement,
// so an uninstrumented run must not even read the engine clock.
func (s *OnlineScheduler) sampleDepth() {
	if s.met == nil {
		return
	}
	s.sampleDepthSlow()
}

func (s *OnlineScheduler) sampleDepthSlow() {
	s.met.depth.Sample(s.Engine.Now(), float64(s.queue.Len()))
}

// Phases returns the energy split by node-occupancy phase accrued so
// far (idle / solo / co-located).
func (s *OnlineScheduler) Phases() power.PhaseAccumulator { return s.phases }

// CompletedJob records one finished job for reporting.
type CompletedJob struct {
	ID        int
	App       string
	Class     workloads.Class
	SizeGB    float64
	Submitted float64
	Started   float64
	Finished  float64
	Node      int
	Cfg       mapreduce.Config
}

type onlineJob struct {
	job     *Job
	cfg     mapreduce.Config
	rem     float64 // fraction of work remaining
	started float64
}

type onlineNode struct {
	id        int
	residents []*onlineJob
	event     *sim.Event // next completion event

	// watts caches the node's steady-state draw for the current
	// resident set. It is refreshed at every reschedule (the one place
	// the resident set or its configurations change hands) and reset to
	// the idle draw when the node empties, so the accrual path reads it
	// instead of re-solving the execution model per node per event.
	watts float64

	// rates is the reusable progress-rate buffer the completion path
	// reads: a cancelled event never fires and a live event is always
	// cancelled before the next reschedule refills the buffer, so the
	// backing array is never read after being overwritten.
	rates []float64

	// fire is the node's persistent completion callback (built once at
	// construction); evDT and evFinisher carry the pending event's
	// elapsed interval and predicted finisher, refreshed by every
	// reschedule under the same cancel-before-refill discipline as
	// rates. Together they replace a fresh closure allocation per
	// completion event.
	fire       func()
	evDT       float64
	evFinisher *onlineJob

	// accWatts/accPhase are the contribution this node currently makes
	// to the scheduler's phaseWatts sums under fast accrual: the watts
	// last folded in and the phase bucket they went into. reschedule
	// subtracts the old contribution and adds the new one; every
	// resident-set or configuration mutation is followed by a
	// reschedule before the next accrual, so the sums are always
	// consistent with the per-node caches at integration time.
	accWatts float64
	accPhase int8
}

// NewOnlineScheduler builds a scheduler over `nodes` single-node lanes.
func NewOnlineScheduler(eng *sim.Engine, model *mapreduce.Model, db *Database, tuner STP, prof *Profiler, nodes int) (*OnlineScheduler, error) {
	if eng == nil || model == nil || db == nil || tuner == nil || prof == nil {
		return nil, fmt.Errorf("core: online scheduler: nil dependency")
	}
	if nodes < 1 {
		return nil, fmt.Errorf("core: online scheduler: need at least one node")
	}
	s := &OnlineScheduler{
		Engine:     eng,
		Model:      model,
		DB:         db,
		Tuner:      tuner,
		Profiler:   prof,
		MaxPerNode: 2,
		queue:      NewWaitQueue(),
	}
	// The idle draw is the same expression Model.Steady evaluates for an
	// empty spec set, so cached node watts stay bit-identical to a fresh
	// per-accrual recompute.
	s.idleWatts = model.IdlePower()
	s.freeSet = newNodeSet(nodes)
	s.halfSet = newNodeSet(nodes)
	for i := 0; i < nodes; i++ {
		n := &onlineNode{id: i, watts: s.idleWatts}
		n.fire = func() { s.nodeComplete(n) }
		s.nodes = append(s.nodes, n)
		s.freeSet.set(i, true)
	}
	s.freeCnt = nodes
	return s, nil
}

// SetNaive selects the legacy reference implementation: per-accrual
// steady-state recomputes for every node, linear node scans in
// dispatch, and the linear partner scan in the wait queue. The naive
// and indexed paths are bit-identical (golden-tested); the naive one
// exists as the equivalence baseline and for `-ecost.naive` benchmark
// comparisons. Call before the first Submit.
func (s *OnlineScheduler) SetNaive(v bool) { s.naive = v }

// SetNodeBase sets the cluster-global id of this scheduler's first
// node: a shard owning nodes [base, base+n) keeps dense internal
// indexes but exports global ids everywhere an id leaves the scheduler.
// Call before the first Submit (and before SetTracer, so the initial
// occupancy spans carry global ids).
func (s *OnlineScheduler) SetNodeBase(base int) { s.base = base }

// NodeBase returns the cluster-global id of this scheduler's first node.
func (s *OnlineScheduler) NodeBase() int { return s.base }

// gid maps a node's dense internal index to its cluster-global id.
func (s *OnlineScheduler) gid(n *onlineNode) int { return s.base + n.id }

// SetFastAccrual enables the O(1) aggregate energy-accrual path (see
// the fastAcc field). It only takes effect while no tracer and no
// audit log are attached and the scheduler is not in naive mode —
// per-node and per-job energy attribution need the per-node walk.
// Call before the first Submit.
func (s *OnlineScheduler) SetFastAccrual(v bool) {
	s.fastAcc = v
	if !v {
		return
	}
	// Seed the phase sums from the current (all-idle) node caches.
	s.phaseWatts = [3]float64{}
	for _, n := range s.nodes {
		n.accWatts = n.watts
		n.accPhase = nodePhase(len(n.residents))
		s.phaseWatts[n.accPhase] += n.accWatts
	}
}

// nodePhase buckets a resident count into the phase accumulator's
// categories: 0 idle, 1 solo, 2 co-located.
func nodePhase(residents int) int8 {
	if residents > 2 {
		residents = 2
	}
	return int8(residents)
}

// steadySpecKey identifies one resident's contention-solver inputs.
// Applications are identified by name — unique in the workload
// registry — so equal keys mean equal RunSpecs.
type steadySpecKey struct {
	app    string
	dataMB float64
	cfg    mapreduce.Config
}

// steadyKey is a full node's solver input: up to two residents in
// resident order (order matters — the returned states are positional).
type steadyKey struct {
	a, b steadySpecKey
	n    int8
}

// steadyVal is one cached solve.
type steadyVal struct {
	sts   [2]mapreduce.SteadyState
	watts float64
}

// steadyKeyOf builds the memo key for a 1- or 2-resident spec list.
func steadyKeyOf(specs []mapreduce.RunSpec) steadyKey {
	k := steadyKey{
		a: steadySpecKey{specs[0].App.Name, specs[0].DataMB, specs[0].Cfg},
		n: int8(len(specs)),
	}
	if len(specs) == 2 {
		k.b = steadySpecKey{specs[1].App.Name, specs[1].DataMB, specs[1].Cfg}
	}
	return k
}

// steadyMemoCap bounds the memo; at the cap it clears wholesale (the
// MemoSTP policy: recurring streams re-warm instantly, adversarial key
// churn cannot grow memory).
const steadyMemoCap = 4096

// SetSteadyMemo toggles memoization of per-node steady-state solves.
// A hit is bit-identical to the solve it replaces (Steady is pure in
// its spec list), so the memo composes with every equivalence golden;
// it pays off when tenants recur — the sharded control plane enables
// it on every shard. Nodes holding more than two residents bypass the
// cache.
func (s *OnlineScheduler) SetSteadyMemo(v bool) {
	if v {
		s.steadyMemo = make(map[steadyKey]steadyVal)
	} else {
		s.steadyMemo = nil
	}
}

// Submit schedules a job arrival at the given simulated time.
func (s *OnlineScheduler) Submit(app workloads.App, sizeGB, at float64) {
	id := s.nextID
	s.nextID++
	s.pending++
	s.Engine.At(at, func() {
		obs, err := s.Profiler.Observe(app, sizeGB)
		if err != nil {
			panic(fmt.Sprintf("core: online profile: %v", err)) // model inputs are validated at Submit
		}
		s.arrive(id, obs, at)
	})
}

// SubmitObserved schedules an arrival whose profile was measured by the
// caller — the sharded router profiles serially at submission time (in
// submission order, so the sampler's draw sequence matches the legacy
// in-event profiling for nondecreasing arrival times) and hands each
// shard a ready Observation plus a router-assigned cluster-global job
// id. Submissions must be in nondecreasing time order (the router
// enforces this). Do not mix with Submit on the same scheduler: Submit
// owns the internal id counter.
//
// Arrivals land in the ring, not the event heap: one AtHead event per
// scheduler delivers the ring head, batch-draining everything sharing
// its timestamp in submission order and re-arming at the next arrival
// time. The AtHead priority reproduces the legacy ordering exactly —
// per-job events scheduled before the run always outranked
// runtime-scheduled completions at equal timestamps via their lower
// seq, and the ring's head event must too.
func (s *OnlineScheduler) SubmitObserved(id int, obs Observation, at float64) {
	s.pending++
	if s.arrFire == nil {
		s.arrFire = s.fireArrivals
	}
	s.arrQ = append(s.arrQ, pendingArrival{id: id, at: at, obs: obs})
	if len(s.arrQ)-s.arrHead == 1 {
		s.Engine.AtHead(at, s.arrFire)
	}
}

// fireArrivals delivers every ring entry at the current clock (arrive's
// per-job work — classify, queue, dispatch — runs in submission order,
// exactly the sequence back-to-back per-job events produced), then
// re-arms the head event at the next pending arrival time.
func (s *OnlineScheduler) fireArrivals() {
	now := s.Engine.Now()
	for s.arrHead < len(s.arrQ) && s.arrQ[s.arrHead].at <= now {
		p := s.arrQ[s.arrHead]
		s.arrQ[s.arrHead] = pendingArrival{}
		s.arrHead++
		s.arrive(p.id, p.obs, p.at)
	}
	if s.arrHead < len(s.arrQ) {
		s.Engine.AtHead(s.arrQ[s.arrHead].at, s.arrFire)
	} else {
		s.arrQ = s.arrQ[:0]
		s.arrHead = 0
	}
}

// arrive is the in-event half of submission: classify, queue, record,
// dispatch. obs.SizeGB doubles as the nominal size (Observe preserves
// the requested size exactly).
func (s *OnlineScheduler) arrive(id int, obs Observation, at float64) {
	app, sizeGB := obs.App, obs.SizeGB
	var j *Job
	if k := len(s.jobPool); k > 0 {
		j = s.jobPool[k-1]
		s.jobPool[k-1] = nil
		s.jobPool = s.jobPool[:k-1]
	} else {
		j = new(Job)
	}
	*j = Job{
		ID:      id,
		Obs:     obs,
		Class:   s.classify(obs),
		EstTime: sizeGB,
		Arrived: at,
	}
	s.queue.Push(j)
	// app.Class is ground truth the prediction path never sees;
	// recording it next to the Classify verdict is what makes the
	// confusion matrix possible.
	s.aud.Submit(id, app.Name, sizeGB, app.Class.String(), j.Class.String(), at)
	if s.met != nil {
		s.met.submitted.Inc()
		s.met.reg.Emit(metrics.Event{
			At: at, Kind: metrics.EvSubmit, Job: id, Node: -1,
			Detail: fmt.Sprintf("%s@%gG class=%s", app.Name, sizeGB, j.Class),
		})
		s.sampleDepth()
	}
	if s.tracer != nil {
		attrs := tracing.Attrs{
			Job: id, Node: -1,
			App: app.Name, Class: j.Class.String(), SizeGB: sizeGB,
		}
		js := &jobSpans{}
		js.job = s.tracer.Start(tracing.KindJob, "job "+app.Name, nil, attrs)
		js.wait = s.tracer.Start(tracing.KindWait, "wait", js.job, attrs)
		s.traced[id] = js
	}
	s.dispatch()
}

// Completed returns the finished jobs sorted by completion time.
func (s *OnlineScheduler) Completed() []CompletedJob {
	out := append([]CompletedJob(nil), s.completed...)
	sort.Slice(out, func(i, j int) bool { return out[i].Finished < out[j].Finished })
	return out
}

// EnergyJ returns the cluster energy integrated so far (all nodes,
// including idle draw).
func (s *OnlineScheduler) EnergyJ() float64 { return s.energyJ }

// QueueLen reports the current wait-queue length.
func (s *OnlineScheduler) QueueLen() int { return s.queue.Len() }

// Run drives the simulation until all submitted jobs complete and
// returns the makespan and total energy.
func (s *OnlineScheduler) Run() (makespan, energyJ float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: online scheduler: %v", r)
		}
	}()
	s.Engine.Run(0)
	if s.pending > 0 {
		return 0, 0, fmt.Errorf("core: online scheduler: %d jobs never completed", s.pending)
	}
	s.finishRun()
	return s.Engine.Now(), s.energyJ, nil
}

// finishRun closes out a drained run at the engine's current clock:
// the last accrual interval is integrated and open occupancy spans are
// finished. The sharded control plane advances every shard to the
// global makespan first, so idle tails are billed exactly as the
// single-scheduler run bills them.
func (s *OnlineScheduler) finishRun() {
	s.accrueEnergy() // close the last interval
	if s.tracer != nil {
		now := s.Engine.Now()
		for _, sp := range s.nodeSpans {
			sp.FinishAt(now)
		}
	}
}

// Pending reports jobs submitted but not yet completed.
func (s *OnlineScheduler) Pending() int { return s.pending }

// FreeSlots reports how many more residents dispatch could place right
// now: an empty node absorbs up to two queued jobs (head claim, then a
// partner), a half-busy node one. The work-stealing pass uses it to
// bound a starved shard's claim budget. Indexed path only — the
// sharded control plane never runs naive.
func (s *OnlineScheduler) FreeSlots() int {
	if s.MaxPerNode < 2 {
		return s.freeCnt
	}
	return 2*s.freeCnt + s.halfCnt
}

// releaseHead removes the wait queue's head for migration to shard
// `to` at barrier time `at` (the engine must already be advanced to
// at). The victim records a steal_out span carrying the steal's link
// id, closes the job's open spans, and forgets it — the audit record
// stays submit-only, documenting where the job first landed — while
// the thief re-registers it under the same global id. Returns nil when
// the queue is empty.
func (s *OnlineScheduler) releaseHead(at float64, to, link int) *Job {
	j := s.queue.PopHead()
	if j == nil {
		return nil
	}
	s.pending--
	if s.met != nil {
		s.met.stealOut().Inc()
		s.sampleDepth()
	}
	if s.tracer != nil {
		if js := s.traced[j.ID]; js != nil {
			if link > 0 {
				s.tracer.Record(tracing.KindStealOut, "steal_out", js.job, at, at, tracing.Attrs{
					Job: j.ID, Node: -1,
					App: j.Obs.App.Name, Class: j.Class.String(), SizeGB: j.Obs.SizeGB,
					Detail: fmt.Sprintf("to=shard%d", to), Link: link,
				})
			}
			js.wait.FinishAt(at)
			js.job.FinishAt(at)
			delete(s.traced, j.ID)
		}
	}
	return j
}

// acceptStolen registers a job claimed from neighbor shard `from` at
// barrier time `at` (the engine must already be advanced to at). The
// job keeps its global id, observation, class, and original arrival
// time — wait-latency metrics still measure from first submission —
// and opens fresh spans (plus a steal_in span linked to the victim's
// steal_out through `link`) and a fresh audit record in this shard's
// exports. The caller dispatches after the claim batch.
func (s *OnlineScheduler) acceptStolen(j *Job, from int, at float64, link int) {
	s.pending++
	s.queue.Push(j)
	s.aud.Submit(j.ID, j.Obs.App.Name, j.Obs.SizeGB, j.Obs.App.Class.String(), j.Class.String(), j.Arrived)
	if s.met != nil {
		s.met.stealIn().Inc()
		s.met.reg.Emit(metrics.Event{
			At: at, Kind: metrics.EvSteal, Job: j.ID, Node: -1,
			Detail: fmt.Sprintf("from=shard%d arrived=%g", from, j.Arrived),
		})
		s.sampleDepth()
	}
	if s.tracer != nil {
		attrs := tracing.Attrs{
			Job: j.ID, Node: -1,
			App: j.Obs.App.Name, Class: j.Class.String(), SizeGB: j.Obs.SizeGB,
		}
		js := &jobSpans{}
		js.job = s.tracer.Start(tracing.KindJob, "job "+j.Obs.App.Name, nil, attrs)
		js.wait = s.tracer.Start(tracing.KindWait, "wait", js.job, attrs)
		s.traced[j.ID] = js
		if link > 0 {
			inAttrs := attrs
			inAttrs.Detail = fmt.Sprintf("from=shard%d", from)
			inAttrs.Link = link
			s.tracer.Record(tracing.KindStealIn, "steal_in", js.job, at, at, inAttrs)
		}
	}
}

// accrueEnergy integrates cluster power since the last update.
//
// The per-node watts are read from the cache reschedule maintains, so
// the loop is a handful of float adds per node — no execution-model
// solves and no allocations (asserted by TestAccrueEnergyZeroAlloc
// with tracing, audit, and metrics all attached). The summation keeps
// the naive path's exact per-node order (node id ascending, one
// phases.Add and one share division per node), so the accumulated
// energy, phase split, and every span/audit attribution are
// bit-identical to recomputing Steady per node — a running cluster-sum
// updated at invalidation points would drift in the last ulp.
func (s *OnlineScheduler) accrueEnergy() {
	now := s.Engine.Now()
	dt := now - s.lastUpdate
	if dt <= 0 {
		return
	}
	if s.fastAcc && s.tracer == nil && s.aud == nil && !s.naive {
		// O(1) aggregate path: integrate the phase sums reschedule
		// maintains instead of walking the node array. At 16k nodes the
		// per-node walk is the dominant cost of every event.
		s.phases.IdleJ += s.phaseWatts[0] * dt
		s.phases.SoloJ += s.phaseWatts[1] * dt
		s.phases.CoJ += s.phaseWatts[2] * dt
		s.energyJ += (s.phaseWatts[0] + s.phaseWatts[1] + s.phaseWatts[2]) * dt
		s.lastUpdate = now
		if s.met != nil {
			s.met.energyIdle.Set(s.phases.IdleJ)
			s.met.energySolo.Set(s.phases.SoloJ)
			s.met.energyPaired.Set(s.phases.CoJ)
		}
		return
	}
	var watts float64
	for _, n := range s.nodes {
		w := n.watts
		if s.naive {
			// Legacy reference: re-solve the steady state of every node
			// (idle ones included) on every accrual.
			var err error
			_, w, err = s.Model.Steady(n.specs())
			if err != nil {
				panic(err)
			}
		}
		watts += w
		s.phases.Add(len(n.residents), w*dt)
		if s.tracer != nil {
			// Attribute the node's joules to its occupancy span in full,
			// so node spans re-integrate to the cluster bill.
			s.nodeSpans[n.id].AddEnergy(w * dt)
		}
		if (s.tracer != nil || s.aud != nil) && len(n.residents) > 0 {
			// Equal shares to the resident jobs — run spans carry the
			// solo+co-located share of the bill, and the audit log uses
			// the *same* division, so its realized join is bit-identical
			// to tracing's JobReport.EnergyJ.
			share := w * dt / float64(len(n.residents))
			for _, r := range n.residents {
				if s.tracer != nil {
					if js := s.traced[r.job.ID]; js != nil {
						js.run.AddEnergy(share)
					}
				}
				s.aud.AddEnergy(r.job.ID, share)
			}
		}
	}
	s.energyJ += watts * dt
	s.lastUpdate = now
	if s.met != nil {
		s.met.energyIdle.Set(s.phases.IdleJ)
		s.met.energySolo.Set(s.phases.SoloJ)
		s.met.energyPaired.Set(s.phases.CoJ)
	}
}

func (n *onlineNode) specs() []mapreduce.RunSpec {
	out := make([]mapreduce.RunSpec, 0, len(n.residents))
	for _, r := range n.residents {
		out = append(out, mapreduce.RunSpec{
			App:    r.job.Obs.App,
			DataMB: r.job.Obs.SizeGB * 1024,
			Cfg:    r.cfg,
		})
	}
	return out
}

// specsInto is specs over the scheduler's reusable scratch buffer: the
// event loop is single-threaded and Model.Steady only reads the slice,
// so the reschedule path builds every resident-spec list in place
// instead of allocating one per call.
func (s *OnlineScheduler) specsInto(n *onlineNode) []mapreduce.RunSpec {
	out := s.scratch[:0]
	for _, r := range n.residents {
		out = append(out, mapreduce.RunSpec{
			App:    r.job.Obs.App,
			DataMB: r.job.Obs.SizeGB * 1024,
			Cfg:    r.cfg,
		})
	}
	s.scratch = out
	return out
}

// refreshPhaseWatts folds a node's freshly-cached draw into the fast
// accrual's phase sums, retiring its previous contribution. Called
// from reschedule only — the single point where n.watts changes.
func (s *OnlineScheduler) refreshPhaseWatts(n *onlineNode) {
	if !s.fastAcc {
		return
	}
	s.phaseWatts[n.accPhase] -= n.accWatts
	n.accPhase = nodePhase(len(n.residents))
	n.accWatts = n.watts
	s.phaseWatts[n.accPhase] += n.accWatts
}

// occupancyChanged refreshes the dispatch indexes (and their mirror
// counts) after a node's resident count changed (a placement or a
// completion).
func (s *OnlineScheduler) occupancyChanged(n *onlineNode) {
	free := len(n.residents) == 0
	half := len(n.residents) == 1
	if s.freeSet.has(n.id) != free {
		if free {
			s.freeCnt++
		} else {
			s.freeCnt--
		}
		s.freeSet.set(n.id, free)
	}
	if s.halfSet.has(n.id) != half {
		if half {
			s.halfCnt++
		} else {
			s.halfCnt--
		}
		s.halfSet.set(n.id, half)
	}
}

// dispatch places queued jobs: empty slots are filled head-first; a node
// with one resident gets a partner chosen by the decision tree.
func (s *OnlineScheduler) dispatch() {
	for s.queue.Len() > 0 {
		// Prefer pairing onto a half-busy node, then an empty node. The
		// indexes hand back the lowest node id, which is exactly the
		// node the legacy in-order scan would stop at.
		var target *onlineNode
		if s.naive {
			for _, n := range s.nodes {
				if len(n.residents) == 1 && s.MaxPerNode >= 2 {
					target = n
					break
				}
			}
			if target == nil {
				for _, n := range s.nodes {
					if len(n.residents) == 0 {
						target = n
						break
					}
				}
			}
		} else {
			if s.MaxPerNode >= 2 {
				if id, ok := s.halfSet.min(); ok {
					target = s.nodes[id]
				}
			}
			if target == nil {
				if id, ok := s.freeSet.min(); ok {
					target = s.nodes[id]
				}
			}
		}
		if target == nil {
			return // cluster full
		}
		var j *Job
		branch := audit.BranchReserve
		leapOver := -1
		if len(target.residents) == 1 {
			running := target.residents[0].job.Class
			head := s.queue.Head()
			priority := s.DB.PartnerPriority(running)
			if s.naive {
				j = s.queue.selectPartnerLinear(priority)
			} else {
				j = s.queue.SelectPartner(running, priority)
			}
			if j != nil {
				taken, err := s.queue.Take(j.ID)
				if err != nil {
					panic(err)
				}
				j = taken
				branch = audit.BranchPairHead
				if head != nil && j.ID != head.ID {
					branch = audit.BranchPairLeap
					leapOver = head.ID
				}
				if s.met != nil {
					now := s.Engine.Now()
					s.met.pairs.Inc()
					s.met.reg.Counter("sched.pair." + running.String() + "+" + j.Class.String()).Inc()
					s.met.reg.Emit(metrics.Event{
						At: now, Kind: metrics.EvPair, Job: j.ID, Node: s.gid(target),
						Detail: fmt.Sprintf("partner=%s running=%s", j.Class, running),
					})
					if branch == audit.BranchPairLeap {
						s.met.leaps.Inc()
						s.met.reg.Emit(metrics.Event{
							At: now, Kind: metrics.EvLeap, Job: j.ID, Node: s.gid(target),
							Detail: fmt.Sprintf("over=%d", leapOver),
						})
					}
				}
			}
		} else {
			j = s.queue.PopHead()
			if j != nil && s.met != nil {
				s.met.reserves.Inc()
				s.met.reg.Emit(metrics.Event{
					At: s.Engine.Now(), Kind: metrics.EvReserve, Job: j.ID, Node: s.gid(target),
					Detail: "head claims fresh slot",
				})
			}
		}
		if j == nil {
			return
		}
		s.sampleDepth()
		s.place(target, j, branch, leapOver)
	}
}

// place starts a job on a node and retunes the node's residents:
// "after pairing, ECoST fine-tunes the architectural, system, and
// application level parameters of the paired applications concurrently"
// (§5). The resident application's frequency and mapper slots are
// re-tuned live; its HDFS block size stays as loaded (data layout is
// fixed once written).
func (s *OnlineScheduler) place(n *onlineNode, j *Job, branch audit.Branch, leapOver int) {
	s.accrueEnergy()
	cfg, ti := s.tuneFor(n, j)
	now := s.Engine.Now()
	if s.met != nil {
		s.met.waitFor(j.Class).Observe(now - j.Arrived)
	}
	var partner *onlineJob
	if len(n.residents) == 1 {
		partner = n.residents[0]
	}
	if s.aud != nil {
		s.aud.Place(j.ID, s.gid(n), now, branch, leapOver)
		s.aud.Tune(j.ID, s.Tuner.Name(), cfg.String(), ti.path, ti.exp)
		if partner != nil {
			var pred audit.Expectation
			if ti.path == audit.TunePair {
				// The pair forecast only holds when the pair tuning was
				// actually applied; a solo fallback leaves it zero (no
				// join, no drift sample).
				pred = ti.exp
				s.aud.Retune(partner.job.ID, partner.cfg.String())
			}
			s.aud.Paired(partner.job.ID, j.ID, s.gid(n), now, branch, pred)
		}
	}
	var oj *onlineJob
	if k := len(s.ojPool); k > 0 {
		oj = s.ojPool[k-1]
		s.ojPool[k-1] = nil
		s.ojPool = s.ojPool[:k-1]
	} else {
		oj = new(onlineJob)
	}
	*oj = onlineJob{job: j, cfg: cfg, rem: 1, started: now}
	n.residents = append(n.residents, oj)
	s.occupancyChanged(n)
	if s.tracer != nil {
		js := s.traced[j.ID]
		js.wait.FinishAt(now)
		attrs := tracing.Attrs{
			Job: j.ID, Node: s.gid(n),
			App: j.Obs.App.Name, Class: j.Class.String(), SizeGB: j.Obs.SizeGB,
			Config: cfg.String(),
		}
		if partner != nil {
			attrs.Partner = partner.job.Obs.App.Name
			// The resident learns its partner too (and its possibly
			// re-tuned configuration).
			if pjs := s.traced[partner.job.ID]; pjs != nil {
				pjs.run.SetPartner(j.Obs.App.Name)
				pjs.run.SetConfig(partner.cfg.String())
			}
		}
		js.run = s.tracer.Start(tracing.KindRun, "run "+j.Obs.App.Name, js.job, attrs)
		s.rollOccupancy(n)
	}
	s.reschedule(n)
}

// tuneInfo carries what the audit log wants to know about a tuning
// decision alongside the chosen configuration.
type tuneInfo struct {
	path audit.TunePath
	exp  audit.Expectation
}

// tuneFor picks the new job's configuration, adjusting the resident's
// frequency and mapper count to the pair-tuned values when co-locating.
// The returned tuneInfo records which path fired and the tuner's own
// outcome forecast (zero when the technique exposes none).
func (s *OnlineScheduler) tuneFor(n *onlineNode, j *Job) (mapreduce.Config, tuneInfo) {
	if len(n.residents) == 1 {
		resident := n.residents[0]
		pairCfg, exp, err := predictExpected(s.Tuner, resident.job.Obs, j.Obs)
		if err == nil && pairCfg[0].Mappers+pairCfg[1].Mappers <= s.Model.Spec.Cores {
			resident.cfg.Freq = pairCfg[0].Freq
			resident.cfg.Mappers = pairCfg[0].Mappers
			if s.met != nil {
				s.met.tunePair.Inc()
				s.met.reg.Emit(metrics.Event{
					At: s.Engine.Now(), Kind: metrics.EvTune, Job: j.ID, Node: s.gid(n),
					Detail: fmt.Sprintf("pair cfg=%v resident=%d cfg=%v", pairCfg[1], resident.job.ID, pairCfg[0]),
				})
			}
			if s.tracer != nil { // build the detail string only when traced
				s.traceTune(n, j, pairCfg[1], fmt.Sprintf("pair resident=%d cfg=%v", resident.job.ID, pairCfg[0]))
			}
			return pairCfg[1], tuneInfo{path: audit.TunePair, exp: audit.Expectation(exp)}
		}
	}
	cfg, soloExp, err := PredictSoloBestExpected(s.Tuner, j.Obs, s.DB)
	if err != nil {
		cfg = NTConfig(s.Model.Spec.Cores / s.MaxPerNode)
		soloExp = PairExpectation{}
	}
	free := s.Model.Spec.Cores
	for _, r := range n.residents {
		free -= r.cfg.Mappers
	}
	if cfg.Mappers > free {
		cfg.Mappers = free
	}
	if cfg.Mappers < 1 {
		cfg.Mappers = 1
	}
	if s.met != nil {
		s.met.tuneSolo.Inc()
		s.met.reg.Emit(metrics.Event{
			At: s.Engine.Now(), Kind: metrics.EvTune, Job: j.ID, Node: s.gid(n),
			Detail: fmt.Sprintf("solo cfg=%v", cfg),
		})
	}
	s.traceTune(n, j, cfg, "solo")
	return cfg, tuneInfo{path: audit.TuneSolo, exp: audit.Expectation(soloExp)}
}

// traceTune records the (instantaneous in sim-time) STP tuning decision
// as a zero-duration span under the job.
func (s *OnlineScheduler) traceTune(n *onlineNode, j *Job, cfg mapreduce.Config, detail string) {
	if s.tracer == nil {
		return
	}
	now := s.Engine.Now()
	var parent *tracing.Span
	if js := s.traced[j.ID]; js != nil {
		parent = js.job
	}
	s.tracer.Record(tracing.KindTune, "tune", parent, now, now, tracing.Attrs{
		Job: j.ID, Node: s.gid(n),
		App: j.Obs.App.Name, Class: j.Class.String(),
		Config: cfg.String(), Detail: detail,
	})
}

// traceComplete closes a finished job's spans: the run span ends now,
// the retroactive map and shuffle/reduce sub-spans split the run at the
// model's phase boundary (sharing the run's attributed energy in the
// same proportion), and the node's occupancy span rolls over.
func (s *OnlineScheduler) traceComplete(n *onlineNode, finisher *onlineJob) {
	if s.tracer == nil {
		return
	}
	js := s.traced[finisher.job.ID]
	if js == nil {
		return
	}
	now := s.Engine.Now()
	js.run.FinishAt(now)
	run := js.run.Snapshot()
	attrs := tracing.Attrs{
		Job: finisher.job.ID, Node: s.gid(n),
		App: finisher.job.Obs.App.Name, Class: finisher.job.Class.String(),
	}
	mapEnd := run.Start + js.mapFrac*(now-run.Start)
	s.tracer.Record(tracing.KindMap, "map", js.run, run.Start, mapEnd, attrs).
		SetEnergy(js.mapFrac * run.EnergyJ)
	s.tracer.Record(tracing.KindReduce, "shuffle/reduce", js.run, mapEnd, now, attrs).
		SetEnergy((1 - js.mapFrac) * run.EnergyJ)
	js.job.FinishAt(now)
	delete(s.traced, finisher.job.ID)
	s.rollOccupancy(n)
}

// reschedule recomputes the node's next completion event from the
// current resident set's steady-state rates.
func (s *OnlineScheduler) reschedule(n *onlineNode) {
	if n.event != nil {
		s.Engine.Cancel(n.event)
		n.event = nil
	}
	if len(n.residents) == 0 {
		n.watts = s.idleWatts
		s.refreshPhaseWatts(n)
		return
	}
	specs := s.specsInto(n)
	if s.naive {
		specs = n.specs()
	}
	var stsBuf [2]mapreduce.SteadyState
	var sts []mapreduce.SteadyState
	var watts float64
	if s.steadyMemo != nil && len(specs) <= 2 {
		k := steadyKeyOf(specs)
		if v, ok := s.steadyMemo[k]; ok {
			stsBuf, watts = v.sts, v.watts
		} else {
			out, w, err := s.Model.Steady(specs)
			if err != nil {
				panic(err)
			}
			copy(stsBuf[:], out)
			watts = w
			if len(s.steadyMemo) >= steadyMemoCap {
				clear(s.steadyMemo)
			}
			s.steadyMemo[k] = steadyVal{sts: stsBuf, watts: w}
		}
		sts = stsBuf[:len(specs)]
	} else {
		out, w, err := s.Model.Steady(specs)
		if err != nil {
			panic(err)
		}
		sts, watts = out, w
	}
	// Capture the node's steady-state draw for the incremental accrual
	// path: this is the single point where a node's resident set or
	// configurations take effect, so the cache is fresh at every later
	// accrual (which always runs before the next mutation).
	n.watts = watts
	s.refreshPhaseWatts(n)
	if s.tracer != nil {
		// Refresh each resident's map/total split under the current
		// contention — the value in force at completion places the
		// map → shuffle/reduce boundary on the job's span.
		for i, r := range n.residents {
			if js := s.traced[r.job.ID]; js != nil {
				if tot := sts[i].MapTime + sts[i].ReduceTime; tot > 0 {
					js.mapFrac = sts[i].MapTime / tot
				}
			}
		}
	}
	// Next finisher under current contention.
	next := -1
	nextDT := math.Inf(1)
	for i, r := range n.residents {
		dt := r.rem * sts[i].JobTime
		if dt < nextDT {
			next, nextDT = i, dt
		}
	}
	if next < 0 {
		return
	}
	// Record progress rates to advance remaining fractions at the event.
	// The buffer lives on the node: the pending event is cancelled
	// before any refill, so the closure never reads overwritten rates.
	if cap(n.rates) < len(n.residents) {
		n.rates = make([]float64, len(n.residents))
	}
	rates := n.rates[:len(n.residents)]
	for i := range n.residents {
		rates[i] = 1 / sts[i].JobTime
	}
	n.evDT = nextDT
	n.evFinisher = n.residents[next]
	n.event = s.Engine.After(nextDT, n.fire)
}

// nodeComplete is the node's completion event: advance every resident's
// remaining fraction by the elapsed interval's progress rates, retire
// the finisher, and refill the node. It reads the reschedule-maintained
// n.evDT / n.evFinisher / n.rates instead of closure captures.
func (s *OnlineScheduler) nodeComplete(n *onlineNode) {
	nextDT := n.evDT
	finisher := n.evFinisher
	rates := n.rates[:len(n.residents)]
	s.accrueEnergy()
	for i, r := range n.residents {
		r.rem -= nextDT * rates[i]
		if r.rem < 0 {
			r.rem = 0
		}
	}
	// Remove the finisher.
	for i, r := range n.residents {
		if r == finisher {
			n.residents = append(n.residents[:i], n.residents[i+1:]...)
			break
		}
	}
	s.occupancyChanged(n)
	s.pending--
	s.completed = append(s.completed, CompletedJob{
		ID:        finisher.job.ID,
		App:       finisher.job.Obs.App.Name,
		Class:     finisher.job.Class,
		SizeGB:    finisher.job.Obs.SizeGB,
		Submitted: finisher.job.Arrived,
		Started:   finisher.started,
		Finished:  s.Engine.Now(),
		Node:      s.gid(n),
		Cfg:       finisher.cfg,
	})
	if s.met != nil {
		now := s.Engine.Now()
		s.met.completed.Inc()
		s.met.turnaround.Observe(now - finisher.job.Arrived)
		s.met.reg.Emit(metrics.Event{
			At: now, Kind: metrics.EvComplete, Job: finisher.job.ID, Node: s.gid(n),
			Detail: fmt.Sprintf("%s class=%s", finisher.job.Obs.App.Name, finisher.job.Class),
		})
	}
	if s.aud != nil {
		now := s.Engine.Now()
		joins, alerts := s.aud.Complete(finisher.job.ID, now)
		if s.fl != nil {
			for _, jn := range joins {
				s.fl.Join(jn.RelErrPct)
			}
			for _, a := range alerts {
				tenant := finisher.job.Obs.App.Name + ":" + finisher.job.Class.String()
				s.fl.Drift(finisher.job.ID, tenant, a.Stat)
			}
		}
		if s.met != nil {
			for _, jn := range joins {
				s.met.relErrFor(jn.Class).Observe(jn.RelErrPct)
			}
			for _, a := range alerts {
				s.met.driftAlerts.Inc()
				s.met.driftAlert.Set(1)
				s.met.reg.Emit(metrics.Event{
					At: now, Kind: metrics.EvDrift, Job: finisher.job.ID, Node: s.gid(n),
					Detail: fmt.Sprintf("cusum stat=%.1f mean=%.1f%% sample=%d", a.Stat, a.Mean, a.Sample),
				})
			}
		}
	}
	s.traceComplete(n, finisher)
	// The finisher and its job are unreachable now — every export above
	// copied what it needed — so both records go back to the pools.
	n.evFinisher = nil
	s.jobPool = append(s.jobPool, finisher.job)
	*finisher = onlineJob{}
	s.ojPool = append(s.ojPool, finisher)
	n.event = nil
	s.reschedule(n)
	s.dispatch()
}

package core

import (
	"fmt"
	"math"
	"sort"

	"ecost/internal/mapreduce"
)

// Policy is one of the application mapping policies of the scalability
// study (§8).
type Policy int

// The studied mapping policies.
const (
	SM    Policy = iota // serial: each app alone on the whole cluster, untuned
	MNM1                // two apps in parallel, each on half the nodes, untuned
	MNM2                // four apps in parallel, each on a quarter of the nodes, untuned
	SNM                 // each app alone on a single node (8 cores), untuned
	CBM                 // pairs co-located, 4+4 cores, untuned
	PTM                 // no pairing; STP-tuned solo configs
	ECoST               // decision-tree pairing + STP tuning (the paper's system)
	UB                  // brute-force best pairing and tuning (upper bound)
)

// String returns the paper's policy label.
func (p Policy) String() string {
	switch p {
	case SM:
		return "SM"
	case MNM1:
		return "MNM1"
	case MNM2:
		return "MNM2"
	case SNM:
		return "SNM"
	case CBM:
		return "CBM"
	case PTM:
		return "PTM"
	case ECoST:
		return "ECoST"
	case UB:
		return "UB"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Policies lists all mapping policies in the paper's presentation order.
func Policies() []Policy { return []Policy{SM, MNM1, MNM2, SNM, CBM, PTM, ECoST, UB} }

// NTConfig is the untuned default configuration the [NT] policies run
// with: the stock performance governor at maximum frequency, Hadoop's
// default 128 MB block size, and the given mapper count.
func NTConfig(mappers int) mapreduce.Config {
	return mapreduce.Config{Freq: 2.4, Block: 128, Mappers: mappers}
}

// Result is the cluster-level outcome of running a workload under one
// policy: total energy across all nodes over the cluster makespan
// (idle nodes burn idle power until the last node finishes), and the
// resulting EDP.
type Result struct {
	Policy   Policy
	Nodes    int
	EnergyJ  float64
	Makespan float64
	EDP      float64
}

// PolicyRunner evaluates workload scenarios under the mapping policies.
type PolicyRunner struct {
	Oracle   *Oracle
	DB       *Database // required for PTM and ECoST
	Tuner    STP       // required for ECoST (PTM uses the database's solo entries)
	Profiler *Profiler // observes incoming jobs for classification/tuning

	// SizeAware enables the size-aware pairing extension: among
	// same-class candidates ECoST prefers duration-matched partners
	// (see WaitQueue.SelectPartnerSized). Off by default — the paper's
	// decision tree considers class only.
	SizeAware bool
}

// unit is one scheduled execution: some applications sharing one node
// (or one app spread over several nodes) for a stretch of time.
type unit struct {
	time    float64
	energyJ float64 // total energy across the unit's nodes while it runs
	nodes   int
}

// lane is a group of nodes processing units serially.
type lane struct {
	nodes int
	units []unit
}

func (l lane) busy() float64 {
	var t float64
	for _, u := range l.units {
		t += u.time
	}
	return t
}

// aggregate folds lanes into a cluster Result: the makespan is the
// longest lane; every lane's nodes burn idle power after it drains.
func (r *PolicyRunner) aggregate(p Policy, nodes int, lanes []lane) Result {
	res := Result{Policy: p, Nodes: nodes}
	idleW := r.Oracle.Model.Spec.IdleWatts
	for _, l := range lanes {
		if b := l.busy(); b > res.Makespan {
			res.Makespan = b
		}
	}
	for _, l := range lanes {
		for _, u := range l.units {
			res.EnergyJ += u.energyJ
		}
		res.EnergyJ += float64(l.nodes) * idleW * (res.Makespan - l.busy())
	}
	res.EDP = res.EnergyJ * res.Makespan
	return res
}

// soloUnit runs one app alone across `nodes` nodes (data split evenly).
func (r *PolicyRunner) soloUnit(j JobSpec, nodes int, cfg mapreduce.Config) (unit, error) {
	_, co, err := r.Oracle.Model.Solo(mapreduce.RunSpec{
		App: j.App, DataMB: j.SizeGB * 1024 / float64(nodes), Cfg: cfg,
	})
	if err != nil {
		return unit{}, err
	}
	return unit{time: co.Makespan, energyJ: co.EnergyJ * float64(nodes), nodes: nodes}, nil
}

// pairUnit co-locates two apps on one node at the given configs.
func (r *PolicyRunner) pairUnit(a, b JobSpec, cfg [2]mapreduce.Config) (unit, error) {
	co, err := r.Oracle.EvalPair(a.App, a.SizeGB*1024, b.App, b.SizeGB*1024, cfg)
	if err != nil {
		return unit{}, err
	}
	return unit{time: co.Makespan, energyJ: co.EnergyJ, nodes: 1}, nil
}

// Run evaluates the workload under the policy on an n-node cluster.
func (r *PolicyRunner) Run(p Policy, wl Workload, nodes int) (Result, error) {
	if nodes < 1 {
		return Result{}, fmt.Errorf("core: policy %v: need at least one node", p)
	}
	if len(wl.Jobs) == 0 {
		return Result{}, fmt.Errorf("core: policy %v: empty workload", p)
	}
	switch p {
	case SM:
		return r.runSpread(p, wl, nodes, 1)
	case MNM1:
		return r.runSpread(p, wl, nodes, min2(2, nodes))
	case MNM2:
		return r.runSpread(p, wl, nodes, min2(4, nodes))
	case SNM:
		return r.runPerNodeSolo(p, wl, nodes, nil)
	case PTM:
		return r.runPerNodeSolo(p, wl, nodes, r.predictSoloCfg)
	case CBM:
		return r.runCBM(wl, nodes)
	case ECoST:
		return r.runECoST(wl, nodes)
	case UB:
		return r.runUB(wl, nodes)
	default:
		return Result{}, fmt.Errorf("core: unknown policy %v", p)
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runSpread implements SM/MNM1/MNM2: `streams` groups of nodes process
// applications in parallel; each application uses its whole group.
func (r *PolicyRunner) runSpread(p Policy, wl Workload, nodes, streams int) (Result, error) {
	if streams > nodes {
		streams = nodes
	}
	per := nodes / streams
	lanes := make([]lane, streams)
	for i := range lanes {
		lanes[i].nodes = per
	}
	// Account for nodes left over by uneven division as an idle lane.
	if rem := nodes - streams*per; rem > 0 {
		lanes = append(lanes, lane{nodes: rem})
	}
	for i, j := range wl.Jobs {
		u, err := r.soloUnit(j, per, NTConfig(r.Oracle.Model.Spec.Cores))
		if err != nil {
			return Result{}, err
		}
		lanes[i%streams].units = append(lanes[i%streams].units, u)
	}
	return r.aggregate(p, nodes, lanes), nil
}

// runPerNodeSolo implements SNM (cfg == nil → untuned) and PTM
// (cfg picks a tuned configuration per job).
func (r *PolicyRunner) runPerNodeSolo(p Policy, wl Workload, nodes int, cfgFn func(JobSpec) (mapreduce.Config, error)) (Result, error) {
	lanes := make([]lane, nodes)
	for i := range lanes {
		lanes[i].nodes = 1
	}
	for i, j := range wl.Jobs {
		cfg := NTConfig(r.Oracle.Model.Spec.Cores)
		if cfgFn != nil {
			c, err := cfgFn(j)
			if err != nil {
				return Result{}, err
			}
			cfg = c
		}
		u, err := r.soloUnit(j, 1, cfg)
		if err != nil {
			return Result{}, err
		}
		lanes[i%nodes].units = append(lanes[i%nodes].units, u)
	}
	return r.aggregate(p, nodes, lanes), nil
}

// predictSoloCfg asks the database for the solo-optimal configuration of
// the known application most resembling the observed job.
func (r *PolicyRunner) predictSoloCfg(j JobSpec) (mapreduce.Config, error) {
	if r.DB == nil || r.Profiler == nil {
		return mapreduce.Config{}, fmt.Errorf("core: PTM needs a database and profiler")
	}
	obs, err := r.Profiler.Observe(j.App, j.SizeGB)
	if err != nil {
		return mapreduce.Config{}, err
	}
	return PredictSoloBest(r.Tuner, obs, r.DB)
}

// runCBM co-locates arrival-order pairs with an even 4/4 core split,
// untuned otherwise.
func (r *PolicyRunner) runCBM(wl Workload, nodes int) (Result, error) {
	half := r.Oracle.Model.Spec.Cores / 2
	lanes := make([]lane, nodes)
	for i := range lanes {
		lanes[i].nodes = 1
	}
	li := 0
	for i := 0; i+1 < len(wl.Jobs); i += 2 {
		cfg := [2]mapreduce.Config{NTConfig(half), NTConfig(half)}
		u, err := r.pairUnit(wl.Jobs[i], wl.Jobs[i+1], cfg)
		if err != nil {
			return Result{}, err
		}
		lanes[li%nodes].units = append(lanes[li%nodes].units, u)
		li++
	}
	if len(wl.Jobs)%2 == 1 {
		u, err := r.soloUnit(wl.Jobs[len(wl.Jobs)-1], 1, NTConfig(half))
		if err != nil {
			return Result{}, err
		}
		lanes[li%nodes].units = append(lanes[li%nodes].units, u)
	}
	return r.aggregate(CBM, nodes, lanes), nil
}

// runECoST is the paper's system: profile and classify the incoming
// jobs, pair them with the Figure-4 decision tree over the wait queue
// (head reservation + small-job leap-forward), tune each pair with the
// STP technique, and dispatch pairs to the least-loaded node.
func (r *PolicyRunner) runECoST(wl Workload, nodes int) (Result, error) {
	if r.DB == nil || r.Tuner == nil || r.Profiler == nil {
		return Result{}, fmt.Errorf("core: ECoST needs a database, tuner and profiler")
	}
	q := NewWaitQueue()
	for i, j := range wl.Jobs {
		obs, err := r.Profiler.Observe(j.App, j.SizeGB)
		if err != nil {
			return Result{}, err
		}
		cls := r.DB.Classifier().Classify(obs)
		// Rough runtime estimate for the leap-forward smallness test:
		// scale the profiling-config run time by data size.
		est := obs.SizeGB
		q.Push(&Job{ID: i, Obs: obs, Class: cls, EstTime: est})
	}

	lanes := make([]lane, nodes)
	for i := range lanes {
		lanes[i].nodes = 1
	}
	dispatch := func(u unit) {
		// Least-loaded node first.
		best := 0
		for i := 1; i < nodes; i++ {
			if lanes[i].busy() < lanes[best].busy() {
				best = i
			}
		}
		lanes[best].units = append(lanes[best].units, u)
	}

	for q.Len() > 0 {
		a := q.PopHead()
		var partner *Job
		if r.SizeAware {
			partner = q.SelectPartnerSized(a.Class, a.EstTime, r.DB.PartnerPriority(a.Class))
		} else {
			partner = q.SelectPartner(a.Class, r.DB.PartnerPriority(a.Class))
		}
		if partner == nil {
			cfg, err := PredictSoloBest(r.Tuner, a.Obs, r.DB)
			if err != nil {
				return Result{}, err
			}
			u, err := r.soloUnit(JobSpec{App: a.Obs.App, SizeGB: a.Obs.SizeGB}, 1, cfg)
			if err != nil {
				return Result{}, err
			}
			dispatch(u)
			continue
		}
		b, err := q.Take(partner.ID)
		if err != nil {
			return Result{}, err
		}
		cfg, err := r.Tuner.PredictBest(a.Obs, b.Obs)
		if err != nil {
			return Result{}, err
		}
		u, err := r.pairUnit(
			JobSpec{App: a.Obs.App, SizeGB: a.Obs.SizeGB},
			JobSpec{App: b.Obs.App, SizeGB: b.Obs.SizeGB},
			cfg,
		)
		if err != nil {
			return Result{}, err
		}
		dispatch(u)
	}
	return r.aggregate(ECoST, nodes, lanes), nil
}

// runUB is the brute-force upper bound: a minimum-weight perfect
// matching over the jobs (weights = COLAO-optimal pair EDP, bitmask DP)
// with every pair at its COLAO configuration, dispatched longest-first.
func (r *PolicyRunner) runUB(wl Workload, nodes int) (Result, error) {
	n := len(wl.Jobs)
	if n > 20 {
		return Result{}, fmt.Errorf("core: UB matching supports ≤20 jobs, got %d", n)
	}
	// Pair weights from the COLAO oracle (memoized).
	type pairInfo struct {
		out  mapreduce.CoOutcome
		edp  float64
		solo bool
	}
	pairs := make([][]pairInfo, n)
	for i := range pairs {
		pairs[i] = make([]pairInfo, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			best, err := r.Oracle.COLAO(
				wl.Jobs[i].App, wl.Jobs[i].SizeGB*1024,
				wl.Jobs[j].App, wl.Jobs[j].SizeGB*1024,
			)
			if err != nil {
				return Result{}, err
			}
			pairs[i][j] = pairInfo{out: best.Out, edp: best.Out.EDP}
		}
	}
	soloEDP := make([]float64, n)
	soloOut := make([]mapreduce.CoOutcome, n)
	for i := 0; i < n; i++ {
		b, err := r.Oracle.BestSolo(wl.Jobs[i].App, wl.Jobs[i].SizeGB*1024)
		if err != nil {
			return Result{}, err
		}
		soloEDP[i] = b.Out.EDP
		soloOut[i] = b.Out
	}

	// Bitmask DP for the minimum-total-EDP matching (solo allowed, so odd
	// workloads are handled too, but pairing is strictly better when the
	// model says so).
	full := 1 << n
	const inf = math.MaxFloat64
	dp := make([]float64, full)
	choice := make([]int, full) // encodes (i<<8|j), j==0xFF for solo
	for m := 1; m < full; m++ {
		dp[m] = inf
	}
	for m := 1; m < full; m++ {
		i := 0
		for ; i < n; i++ {
			if m&(1<<i) != 0 {
				break
			}
		}
		// i solo:
		rest := m &^ (1 << i)
		if c := dp[rest] + soloEDP[i]; c < dp[m] {
			dp[m] = c
			choice[m] = i<<8 | 0xFF
		}
		for j := i + 1; j < n; j++ {
			if m&(1<<j) == 0 {
				continue
			}
			rest := m &^ (1 << i) &^ (1 << j)
			if c := dp[rest] + pairs[i][j].edp; c < dp[m] {
				dp[m] = c
				choice[m] = i<<8 | j
			}
		}
	}

	// Reconstruct units.
	var units []unit
	for m := full - 1; m != 0; {
		c := choice[m]
		i, j := c>>8, c&0xFF
		if j == 0xFF {
			units = append(units, unit{time: soloOut[i].Makespan, energyJ: soloOut[i].EnergyJ, nodes: 1})
			m &^= 1 << i
		} else {
			out := pairs[i][j].out
			units = append(units, unit{time: out.Makespan, energyJ: out.EnergyJ, nodes: 1})
			m &^= 1 << i
			m &^= 1 << j
		}
	}

	// Longest-processing-time-first dispatch over the nodes.
	sort.Slice(units, func(a, b int) bool { return units[a].time > units[b].time })
	lanes := make([]lane, nodes)
	for i := range lanes {
		lanes[i].nodes = 1
	}
	for _, u := range units {
		best := 0
		for i := 1; i < nodes; i++ {
			if lanes[i].busy() < lanes[best].busy() {
				best = i
			}
		}
		lanes[best].units = append(lanes[best].units, u)
	}
	return r.aggregate(UB, nodes, lanes), nil
}

package core

import (
	"fmt"

	"ecost/internal/metrics"
	"ecost/internal/workloads"
)

// Job is one application instance flowing through the ECoST scheduler.
type Job struct {
	ID    int
	Obs   Observation
	Class workloads.Class // assigned by the incoming-application analyzer

	// EstTime is the scheduler's rough runtime estimate (from the
	// profiling run), used only by the leap-forward smallness test.
	EstTime float64

	Arrived float64 // arrival time (seconds)
}

// WaitQueue is the paper's FIFO wait queue with a reservation at the
// head: jobs enter at the tail; the head job holds a reservation so it
// cannot starve, and a small job deeper in the queue may leap forward
// only if taking it does not delay the head (§5).
type WaitQueue struct {
	jobs []*Job
	// LeapFraction caps how large a leaping job may be relative to the
	// head job's estimated runtime. A job at most this fraction of the
	// head's size is "small": co-locating it alongside the current
	// resident leaves the head's reserved slot unaffected.
	LeapFraction float64

	// Metrics, when non-nil, receives queue telemetry: per-class push
	// counts and the depth high-water mark. The owning scheduler samples
	// depth over sim-time separately (the queue has no clock).
	Metrics *metrics.Registry

	// byClass sub-indexes the FIFO per class (each deque in queue
	// order) and seq records every queued job's arrival sequence, so
	// SelectPartner inspects one front per class instead of scanning
	// the whole queue. The jobs slice stays the source of truth; the
	// index mirrors it exactly (fuzz-tested against the linear scan).
	byClass map[workloads.Class][]*Job
	seq     map[int]uint64
	nextSeq uint64
}

// NewWaitQueue returns an empty queue with the default smallness bound.
func NewWaitQueue() *WaitQueue { return &WaitQueue{LeapFraction: 0.5} }

// Push appends a job at the tail.
func (q *WaitQueue) Push(j *Job) {
	if j == nil {
		return
	}
	q.jobs = append(q.jobs, j)
	q.index(j)
	if q.Metrics != nil {
		q.Metrics.Counter("queue.push." + j.Class.String()).Inc()
		if hw := q.Metrics.Gauge("queue.depth_highwater"); float64(len(q.jobs)) > hw.Value() {
			hw.Set(float64(len(q.jobs)))
		}
	}
}

// DepthByClass tallies the queued jobs per class (for depth gauges).
func (q *WaitQueue) DepthByClass() map[workloads.Class]int {
	out := map[workloads.Class]int{}
	for _, j := range q.jobs {
		out[j.Class]++
	}
	return out
}

// Len reports the queue length.
func (q *WaitQueue) Len() int { return len(q.jobs) }

// Head returns the reserved head job without removing it.
func (q *WaitQueue) Head() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	return q.jobs[0]
}

// Jobs returns the queued jobs in order (shared slice: do not mutate).
func (q *WaitQueue) Jobs() []*Job { return q.jobs }

// PopHead removes and returns the head job.
func (q *WaitQueue) PopHead() *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	q.unindex(j)
	return j
}

// index registers a freshly pushed job in the per-class sub-index
// (lazily initialized so literal WaitQueue values keep working).
func (q *WaitQueue) index(j *Job) {
	if q.byClass == nil {
		q.byClass = map[workloads.Class][]*Job{}
		q.seq = map[int]uint64{}
	}
	q.byClass[j.Class] = append(q.byClass[j.Class], j)
	q.seq[j.ID] = q.nextSeq
	q.nextSeq++
}

// unindex drops a removed job from the per-class sub-index. The
// scheduler removes fronts (PopHead, or Take of the job SelectPartner
// just returned), so the common case splices at position 0.
func (q *WaitQueue) unindex(j *Job) {
	d := q.byClass[j.Class]
	for i, x := range d {
		if x != j {
			continue
		}
		if i == 0 {
			d = d[1:]
		} else {
			d = append(d[:i], d[i+1:]...)
		}
		break
	}
	if len(d) == 0 {
		delete(q.byClass, j.Class)
	} else {
		q.byClass[j.Class] = d
	}
	delete(q.seq, j.ID)
}

// Candidates returns the jobs eligible to fill a fresh node slot: the
// head (always, by reservation) plus any job small enough to leap
// forward without delaying the head.
func (q *WaitQueue) Candidates() []*Job {
	if len(q.jobs) == 0 {
		return nil
	}
	head := q.jobs[0]
	out := []*Job{head}
	for _, j := range q.jobs[1:] {
		if head.EstTime > 0 && j.EstTime <= q.LeapFraction*head.EstTime {
			out = append(out, j)
		}
	}
	return out
}

// PartnerCandidates returns the jobs eligible to be co-located NEXT TO an
// already-running application. Unlike a fresh node slot, a partner slot
// does not consume the head's reservation — the head keeps first claim
// on the next full slot — so the decision tree may choose any queued
// job (§5: "a small job is allowed to leap forward as long as it does
// not delay the job at the head of the queue"; a partner placement never
// delays the head).
func (q *WaitQueue) PartnerCandidates() []*Job { return q.jobs }

// Take removes the specific job from the queue (by ID).
func (q *WaitQueue) Take(id int) (*Job, error) {
	for i, j := range q.jobs {
		if j.ID == id {
			q.jobs = append(q.jobs[:i], q.jobs[i+1:]...)
			q.unindex(j)
			return j, nil
		}
	}
	return nil, fmt.Errorf("core: queue: job %d not queued", id)
}

// SelectPartner implements the pairing decision tree of Figure 4: given
// the class of the application currently running on a node, choose the
// queued job to co-locate. Every queued job is a candidate (placing a
// partner never delays the reserved head — see PartnerCandidates); the
// partner-class priority order derived from the Figure-5 ranking decides
// (I first, then H/C, then M), with queue order breaking ties. Returns
// nil if the queue is empty.
//
// Only the front of each class's sub-index can win — within a class,
// queue order is push order — so the scan inspects at most one job per
// distinct queued class instead of the whole FIFO. The (rank, arrival
// sequence) order is total (sequences are unique), so the choice is
// deterministic and equals selectPartnerLinear's first-strictly-better
// sweep (fuzz-tested).
func (q *WaitQueue) SelectPartner(running workloads.Class, priority []workloads.Class) *Job {
	if len(q.jobs) == 0 {
		return nil
	}
	var best *Job
	bestRank := 0
	for c, d := range q.byClass {
		j := d[0]
		r := classRank(c, priority)
		if best == nil || r < bestRank || (r == bestRank && q.seq[j.ID] < q.seq[best.ID]) {
			best, bestRank = j, r
		}
	}
	return best
}

// classRank resolves a class's priority rank the same way the linear
// scan's map build does (a duplicated class keeps its last position;
// unlisted classes rank after every listed one) without allocating.
func classRank(c workloads.Class, priority []workloads.Class) int {
	r := len(priority)
	for i, p := range priority {
		if p == c {
			r = i
		}
	}
	return r
}

// selectPartnerLinear is the legacy whole-queue scan SelectPartner
// replaced — kept verbatim as the reference implementation for the
// naive scheduler mode and the index equivalence tests.
func (q *WaitQueue) selectPartnerLinear(priority []workloads.Class) *Job {
	cands := q.PartnerCandidates()
	if len(cands) == 0 {
		return nil
	}
	rank := map[workloads.Class]int{}
	for i, c := range priority {
		rank[c] = i
	}
	best := cands[0]
	bestRank, ok := rank[best.Class]
	if !ok {
		bestRank = len(priority)
	}
	for _, j := range cands[1:] {
		r, ok := rank[j.Class]
		if !ok {
			r = len(priority)
		}
		if r < bestRank {
			best, bestRank = j, r
		}
	}
	return best
}

// DefaultPriority is the static partner-class order the paper reads off
// Figure 5 when no database-derived order is available: I/O-bound
// applications pair best with anything; memory-bound last.
func DefaultPriority() []workloads.Class {
	return []workloads.Class{workloads.IOBound, workloads.Hybrid, workloads.Compute, workloads.MemBound}
}

// SelectPartnerSized extends the Figure-4 decision tree with a
// tie-breaker the paper leaves open: among candidates of the best
// available class, prefer the job whose expected duration is closest to
// the running application's — balanced completion times maximize the
// co-located overlap the EDP gain comes from. With uniform job sizes it
// reduces exactly to SelectPartner; on size-mixed workloads the
// size-aware ablation measures a 14–32% EDP improvement over the
// class-only tree.
func (q *WaitQueue) SelectPartnerSized(running workloads.Class, runningEst float64, priority []workloads.Class) *Job {
	cands := q.PartnerCandidates()
	if len(cands) == 0 {
		return nil
	}
	rank := map[workloads.Class]int{}
	for i, c := range priority {
		rank[c] = i
	}
	classRank := func(j *Job) int {
		if r, ok := rank[j.Class]; ok {
			return r
		}
		return len(priority)
	}
	sizeGap := func(j *Job) float64 {
		a, b := j.EstTime, runningEst
		if a <= 0 || b <= 0 {
			return 0
		}
		if a < b {
			a, b = b, a
		}
		return a / b // ≥ 1; closer to 1 is better
	}
	best := cands[0]
	for _, j := range cands[1:] {
		switch {
		case classRank(j) < classRank(best):
			best = j
		case classRank(j) == classRank(best) && sizeGap(j) < sizeGap(best):
			best = j
		}
	}
	return best
}

package core

import (
	"flag"
	"testing"

	"ecost/internal/sim"
)

// shardsFlag overrides the shard count for BenchmarkOnlineShardedCluster
// (0 = the default per size), for shard-sweep measurements:
//
//	go test -bench OnlineShardedCluster -ecost.shards 8 ./internal/core/
var shardsFlag = flag.Int("ecost.shards", 0,
	"shard count for the sharded online benchmark (0 = size default)")

// benchSharded drives one sharded run and returns completions plus the
// drive cadence (exact barriers vs free-running windows).
func benchSharded(b *testing.B, nodes, jobs, shards int, mean float64) (int, BarrierStats) {
	wl, err := Scenario("WS4")
	if err != nil {
		b.Fatal(err)
	}
	prof := NewProfiler(fix.model, sim.NewRNG(17))
	c, err := NewShardedScheduler(fix.model, fix.db, prof,
		func() STP { return NewMemoSTP(fix.lkt, nil) }, nodes,
		ShardedConfig{Shards: shards, Steal: true, ProfileMemo: true})
	if err != nil {
		b.Fatal(err)
	}
	c.SetFastAccrual(true)
	rng := sim.NewRNG(18)
	at := 0.0
	for j := 0; j < jobs; j++ {
		spec := wl.Jobs[j%len(wl.Jobs)]
		c.Submit(spec.App, spec.SizeGB, at)
		at += rng.Exp(mean)
	}
	if _, _, err := c.Run(); err != nil {
		b.Fatal(err)
	}
	return len(c.Completed()), c.BarrierStats()
}

// BenchmarkOnlineShardedCluster is the PR 8 tentpole benchmark: the
// sharded control plane at 10k+ scale, with work stealing, memoized
// recurring-tenant profiling, and O(1) aggregate accrual all on. Short
// mode (what CI's bench-guard runs) uses 4096 nodes × 40k jobs over 16
// shards; full mode 16384 × 200k — the acceptance point, which must
// clear 100k jobs simulated/s (vs 22.7k for the unsharded
// BenchmarkOnlineLargeCluster path). The mean interarrival scales
// inversely with cluster size, matching the unsharded benchmark's
// offered load.
func BenchmarkOnlineShardedCluster(b *testing.B) {
	fixture(b)
	nodes, jobs, shards := 16384, 200000, 16
	if testing.Short() {
		nodes, jobs, shards = 4096, 40000, 16
	}
	if *shardsFlag > 0 {
		shards = *shardsFlag
	}
	mean := 1536.0 / float64(nodes)
	completed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, _ := benchSharded(b, nodes, jobs, shards, mean)
		completed += n
	}
	b.StopTimer()
	if completed != b.N*jobs {
		b.Fatalf("completed %d jobs, want %d", completed, b.N*jobs)
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkBarrierElision measures the elided drive itself: a steal-on
// stream at half the sharded benchmark's offered load, so wait queues
// drain between arrival clusters and the control plane alternates
// between exact barriers (queues non-empty — a thief/victim pairing
// could exist) and free-running windows (all queues empty — shards
// drain to the next arrival with no synchronization). Reported metrics:
// %elided is the share of events fired inside windows rather than under
// barriers, ns/epoch the mean drive-step cost across both kinds. The
// guard gates ns/op and allocs/op like every other throughput entry.
func BenchmarkBarrierElision(b *testing.B) {
	fixture(b)
	nodes, jobs, shards := 1024, 20000, 8
	if testing.Short() {
		nodes, jobs, shards = 512, 8000, 8
	}
	mean := 3072.0 / float64(nodes)
	completed := 0
	var stats BarrierStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, s := benchSharded(b, nodes, jobs, shards, mean)
		completed += n
		stats.Barriers += s.Barriers
		stats.Windows += s.Windows
		stats.WindowEvents += s.WindowEvents
	}
	b.StopTimer()
	if completed != b.N*jobs {
		b.Fatalf("completed %d jobs, want %d", completed, b.N*jobs)
	}
	if stats.Barriers == 0 || stats.WindowEvents == 0 {
		b.Fatalf("stream exercised only one drive mode: %+v", stats)
	}
	epochs := stats.Barriers + stats.Windows
	b.ReportMetric(100*stats.ElidedRatio(), "%elided")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(epochs), "ns/epoch")
}

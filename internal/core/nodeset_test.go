package core

import (
	"testing"

	"ecost/internal/sim"
)

// TestNodeSetPropertyVsMapModel drives a nodeSet and a map-based
// reference model with the same random operation stream and checks
// set/has/min/count agree after every step. Sizes straddle the 64-bit
// word boundaries the bitmap packs into — the set became load-bearing
// per shard, where slices start at arbitrary sizes.
func TestNodeSetPropertyVsMapModel(t *testing.T) {
	for _, size := range []int{1, 2, 63, 64, 65, 127, 128, 129, 200, 1024} {
		rng := sim.NewRNG(int64(911 + size))
		s := newNodeSet(size)
		model := map[int]bool{}
		check := func(step int) {
			t.Helper()
			// min: smallest id present in the model.
			wantMin, wantOK := 0, false
			for id := 0; id < size; id++ {
				if model[id] {
					wantMin, wantOK = id, true
					break
				}
			}
			gotMin, gotOK := s.min()
			if gotOK != wantOK || (wantOK && gotMin != wantMin) {
				t.Fatalf("size %d step %d: min() = %d,%v want %d,%v", size, step, gotMin, gotOK, wantMin, wantOK)
			}
			if got, want := s.count(), len(model); got != want {
				t.Fatalf("size %d step %d: count() = %d want %d", size, step, got, want)
			}
		}
		check(-1)
		for step := 0; step < 400; step++ {
			id := rng.Intn(size)
			switch rng.Intn(3) {
			case 0:
				s.set(id, true)
				model[id] = true
			case 1:
				s.set(id, false)
				delete(model, id)
			case 2:
				if got, want := s.has(id), model[id]; got != want {
					t.Fatalf("size %d step %d: has(%d) = %v want %v", size, step, id, got, want)
				}
			}
			check(step)
		}
		// Full iterate via has across every id, against the model.
		for id := 0; id < size; id++ {
			if s.has(id) != model[id] {
				t.Fatalf("size %d: final has(%d) = %v want %v", size, id, s.has(id), model[id])
			}
		}
		// Drain through min(): repeatedly remove the minimum and confirm
		// the set empties in strictly increasing id order.
		prev := -1
		for {
			id, ok := s.min()
			if !ok {
				break
			}
			if id <= prev {
				t.Fatalf("size %d: min() drain not increasing: %d after %d", size, id, prev)
			}
			if !model[id] {
				t.Fatalf("size %d: min() returned %d not in model", size, id)
			}
			s.set(id, false)
			delete(model, id)
			prev = id
		}
		if len(model) != 0 {
			t.Fatalf("size %d: drain left %d members in model", size, len(model))
		}
	}
}

// TestNodeSetWordBoundary pins the exact bit placement at the 64-bit
// seams: ids 63/64/127/128 must land in distinct words without
// clobbering neighbors.
func TestNodeSetWordBoundary(t *testing.T) {
	s := newNodeSet(129)
	for _, id := range []int{63, 64, 127, 128} {
		s.set(id, true)
	}
	if got := s.count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if id, ok := s.min(); !ok || id != 63 {
		t.Fatalf("min = %d,%v want 63,true", id, ok)
	}
	s.set(63, false)
	if id, ok := s.min(); !ok || id != 64 {
		t.Fatalf("min after clearing 63 = %d,%v want 64,true", id, ok)
	}
	for _, id := range []int{62, 65, 126, 0} {
		if s.has(id) {
			t.Fatalf("has(%d) = true, want false (neighbor clobbered)", id)
		}
	}
}

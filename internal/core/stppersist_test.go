package core

import (
	"bytes"
	"testing"
)

// TestMLMSTPRoundTrip checks SaveModels/LoadMLMSTP preserves the
// trained technique: the loaded copy predicts identically (feature-
// aware REPTree, the most structurally complex case) and re-serializes
// to the same bytes.
func TestMLMSTPRoundTrip(t *testing.T) {
	fixture(t)
	var buf bytes.Buffer
	if err := fix.rep.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	loaded, err := LoadMLMSTP(&buf, fix.db)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name() != fix.rep.Name() {
		t.Fatalf("name = %q, want %q", loaded.Name(), fix.rep.Name())
	}
	if loaded.Models() != fix.rep.Models() {
		t.Fatalf("models = %d, want %d", loaded.Models(), fix.rep.Models())
	}
	if loaded.TrainTime() != fix.rep.TrainTime() {
		t.Fatalf("train time = %v, want %v", loaded.TrainTime(), fix.rep.TrainTime())
	}
	for _, pair := range [][2]string{{"wc", "st"}, {"gp", "wc"}, {"st", "st"}} {
		oa := obsOf(t, pair[0], 1)
		ob := obsOf(t, pair[1], 5)
		want, werr := fix.rep.PredictBest(oa, ob)
		got, gerr := loaded.PredictBest(oa, ob)
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("%v: error mismatch: %v vs %v", pair, werr, gerr)
		}
		if want != got {
			t.Fatalf("%v: loaded model predicts %v, want %v", pair, got, want)
		}
	}
	var again bytes.Buffer
	if err := loaded.SaveModels(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, again.Bytes()) {
		t.Fatal("re-serialized bytes differ from original save")
	}
}

package core

import (
	"testing"

	"ecost/internal/metrics"
	"ecost/internal/workloads"
)

// qjob builds a minimal queued job for queue-only tests (no profiling).
func qjob(id int, class workloads.Class, est float64) *Job {
	return &Job{ID: id, Class: class, EstTime: est}
}

func TestQueueCandidatesEdgeCases(t *testing.T) {
	C, H, I, M := workloads.Compute, workloads.Hybrid, workloads.IOBound, workloads.MemBound
	cases := []struct {
		name string
		jobs []*Job
		want []int // expected candidate IDs in order
	}{
		{
			name: "empty queue",
			jobs: nil,
			want: nil,
		},
		{
			name: "single element is only the head",
			jobs: []*Job{qjob(0, C, 100)},
			want: []int{0},
		},
		{
			name: "small job leaps past reserved head",
			jobs: []*Job{qjob(0, C, 100), qjob(1, H, 80), qjob(2, I, 50)},
			want: []int{0, 2}, // 80 > 0.5*100 stays; 50 <= 0.5*100 leaps
		},
		{
			name: "leap bound is inclusive",
			jobs: []*Job{qjob(0, C, 100), qjob(1, I, 50.0000001)},
			want: []int{0},
		},
		{
			name: "zero-estimate head blocks all leaps",
			jobs: []*Job{qjob(0, M, 0), qjob(1, I, 0), qjob(2, C, 0)},
			want: []int{0}, // EstTime 0: the smallness test can't certify anyone
		},
		{
			name: "all tiny jobs leap",
			jobs: []*Job{qjob(0, C, 100), qjob(1, I, 1), qjob(2, H, 2), qjob(3, M, 3)},
			want: []int{0, 1, 2, 3},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := NewWaitQueue()
			for _, j := range tc.jobs {
				q.Push(j)
			}
			got := q.Candidates()
			if len(got) != len(tc.want) {
				t.Fatalf("candidates = %d jobs, want %d", len(got), len(tc.want))
			}
			for i, j := range got {
				if j.ID != tc.want[i] {
					t.Errorf("candidate[%d] = job %d, want %d", i, j.ID, tc.want[i])
				}
			}
		})
	}
}

func TestQueueReservationHandoffAfterTake(t *testing.T) {
	// When the reserved head itself is taken (as a partner), the
	// reservation passes to the next job in FIFO order.
	q := NewWaitQueue()
	q.Push(qjob(0, workloads.Compute, 100))
	q.Push(qjob(1, workloads.Hybrid, 100))
	q.Push(qjob(2, workloads.IOBound, 100))
	if _, err := q.Take(0); err != nil {
		t.Fatal(err)
	}
	if h := q.Head(); h == nil || h.ID != 1 {
		t.Fatalf("head after taking old head = %v, want job 1", h)
	}
	// Taking from the middle must not disturb the head's reservation.
	if _, err := q.Take(2); err != nil {
		t.Fatal(err)
	}
	if h := q.Head(); h == nil || h.ID != 1 {
		t.Fatalf("head after taking tail = %v, want job 1", h)
	}
	if _, err := q.Take(42); err == nil {
		t.Error("taking an absent job must error")
	}
	if q.Len() != 1 {
		t.Fatalf("queue length = %d, want 1", q.Len())
	}
}

func TestQueueAllSameClassKeepsFIFO(t *testing.T) {
	// With every queued job in one class, the decision tree has no class
	// signal and must fall back to strict queue order.
	q := NewWaitQueue()
	for i := 0; i < 5; i++ {
		q.Push(qjob(i, workloads.Compute, 10))
	}
	for want := 0; want < 5; want++ {
		j := q.SelectPartner(workloads.Hybrid, DefaultPriority())
		if j == nil || j.ID != want {
			t.Fatalf("same-class partner pick = %v, want job %d", j, want)
		}
		if _, err := q.Take(j.ID); err != nil {
			t.Fatal(err)
		}
	}
	if q.SelectPartner(workloads.Hybrid, DefaultPriority()) != nil {
		t.Error("empty queue must yield no partner")
	}
}

func TestQueuePopHeadAndNilPush(t *testing.T) {
	q := NewWaitQueue()
	if q.PopHead() != nil {
		t.Error("PopHead on empty queue must return nil")
	}
	q.Push(nil) // ignored
	if q.Len() != 0 {
		t.Error("nil push must not enqueue")
	}
	q.Push(qjob(7, workloads.MemBound, 1))
	if j := q.PopHead(); j == nil || j.ID != 7 {
		t.Fatalf("PopHead = %v, want job 7", j)
	}
	if q.Len() != 0 {
		t.Error("queue not empty after PopHead")
	}
}

func TestQueueMetricsCounts(t *testing.T) {
	reg := metrics.NewRegistry()
	q := NewWaitQueue()
	q.Metrics = reg
	q.Push(qjob(0, workloads.Compute, 1))
	q.Push(qjob(1, workloads.Compute, 1))
	q.Push(qjob(2, workloads.IOBound, 1))
	q.PopHead()
	q.Push(qjob(3, workloads.IOBound, 1))
	if got := reg.Counter("queue.push.C").Value(); got != 2 {
		t.Errorf("queue.push.C = %d, want 2", got)
	}
	if got := reg.Counter("queue.push.I").Value(); got != 2 {
		t.Errorf("queue.push.I = %d, want 2", got)
	}
	if hw := reg.Gauge("queue.depth_highwater").Value(); hw != 3 {
		t.Errorf("depth high-water = %v, want 3", hw)
	}
	byClass := q.DepthByClass()
	if byClass[workloads.Compute] != 1 || byClass[workloads.IOBound] != 2 {
		t.Errorf("DepthByClass = %v", byClass)
	}
}

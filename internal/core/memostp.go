package core

import (
	"encoding/binary"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
)

// MemoSTP memoizes an STP technique's predictions keyed by the exact
// (Observation a, Observation b) pair. Recurring jobs have recurring
// resource profiles (arXiv:1303.3632, arXiv:1301.4753); whenever the
// same two observations are paired again — replayed traces, exact
// (noise-free) profiling, policy sweeps re-running a workload, or any
// caller re-asking for a pair it already tuned — the cache answers in
// one map lookup instead of a database scan or an argmin sweep.
//
// Exact keying is deliberate: with the noise-model profiler each job
// instance's feature vector differs, so a stream that re-profiles
// every arrival keeps the cache cold — at the cost of one map lookup
// per miss, negligible next to the prediction itself. A similarity
// (app+size) key would hit constantly but return a *different*
// instance's answer, silently changing tuning decisions; exact keys
// are what keeps the wrapper bit-identical to the unmemoized run.
//
// The wrapper is transparent: it returns whatever the inner technique
// returned for the first occurrence of a key (inner techniques are
// deterministic, so the cached answer is the answer), forwards Name,
// and exposes the full ExpectingSTP surface via the same
// predictExpected dispatch the scheduler uses — stack it under
// MeteredSTP (NewMeteredSTP(NewMemoSTP(inner, reg), model, reg)) and
// every deterministic metric, audit forecast, and tuning decision is
// bit-identical to the unmemoized run. Hit/miss counters are volatile
// (implementation-effort telemetry), so deterministic snapshots do not
// see the cache either.
//
// Like the Oracle, the cache is sharded: one mutex per shard keyed by
// a hash of the two application identities, so concurrent policy
// sweeps do not serialize on a single lock. Unlike the Oracle there is
// no singleflight — the online event loop is single-threaded, and for
// concurrent callers recomputing a prediction is cheap enough that
// waiting infrastructure would cost more than it saves.
type MemoSTP struct {
	Inner STP

	seed   maphash.Seed
	shards [memoShards]memoShard

	hits   *metrics.Counter
	misses *metrics.Counter

	// nhits/nmisses are the deterministic shadow counts the flight
	// recorder samples at epoch barriers. Unlike the volatile registry
	// counters above, their totals are a pure function of the query
	// stream (atomics only order concurrent sweeps; the sum is
	// order-independent), so epoch records stay byte-identical.
	nhits   atomic.Int64
	nmisses atomic.Int64
}

// memoShards is a power of two so shard selection is a mask.
const memoShards = 16

// memoShardCap bounds each shard's entry count; a full shard is
// cleared wholesale (the workload stream's working set is tiny — the
// cap only guards unbounded growth under adversarial churn).
const memoShardCap = 4096

type memoShard struct {
	mu sync.Mutex
	m  map[memoPairKey]memoResult
}

// memoPairKey is the exact observation pair. Observation is a value
// type (app identity, size, fixed-width feature vector), so equality
// is the bitwise feature match the profiler's noise model makes
// meaningful: identical observations — not merely similar ones — hit.
type memoPairKey struct{ a, b Observation }

type memoResult struct {
	cfg [2]mapreduce.Config
	exp PairExpectation
	err error
}

// NewMemoSTP wraps inner with a sharded memoization cache, registering
// volatile hit/miss counters in reg (nil disables the counters only —
// the cache itself always works).
func NewMemoSTP(inner STP, reg *metrics.Registry) *MemoSTP {
	m := &MemoSTP{
		Inner:  inner,
		seed:   maphash.MakeSeed(),
		hits:   reg.VolatileCounter("stp.memo.hits"),
		misses: reg.VolatileCounter("stp.memo.misses"),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[memoPairKey]memoResult)
	}
	return m
}

// Name implements STP.
func (m *MemoSTP) Name() string { return m.Inner.Name() }

// HitMiss reports the deterministic cumulative cache hit/miss counts.
func (m *MemoSTP) HitMiss() (hits, misses int64) {
	return m.nhits.Load(), m.nmisses.Load()
}

func (m *MemoSTP) shard(a, b Observation) *memoShard {
	var h maphash.Hash
	h.SetSeed(m.seed)
	h.WriteString(a.App.Name)
	h.WriteString(b.App.Name)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(a.SizeGB))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(b.SizeGB))
	h.Write(buf[:])
	return &m.shards[h.Sum64()&(memoShards-1)]
}

// PredictBest implements STP.
func (m *MemoSTP) PredictBest(a, b Observation) ([2]mapreduce.Config, error) {
	cfg, _, err := m.PredictBestExpected(a, b)
	return cfg, err
}

// PredictBestExpected implements ExpectingSTP. Both prediction entry
// points share this one cache: the stored value carries the richest
// answer the inner technique exposes (predictExpected's graceful
// degradation), so a PredictBest after a PredictBestExpected of the
// same pair — or vice versa — hits.
func (m *MemoSTP) PredictBestExpected(a, b Observation) ([2]mapreduce.Config, PairExpectation, error) {
	k := memoPairKey{a, b}
	sh := m.shard(a, b)
	sh.mu.Lock()
	if r, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		m.hits.Inc()
		m.nhits.Add(1)
		return r.cfg, r.exp, r.err
	}
	sh.mu.Unlock()
	m.misses.Inc()
	m.nmisses.Add(1)
	cfg, exp, err := predictExpected(m.Inner, a, b)
	sh.mu.Lock()
	if len(sh.m) >= memoShardCap {
		clear(sh.m)
	}
	sh.m[k] = memoResult{cfg: cfg, exp: exp, err: err}
	sh.mu.Unlock()
	return cfg, exp, err
}

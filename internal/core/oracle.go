package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ecost/internal/mapreduce"
	"ecost/internal/workloads"
)

// SoloBest is the result of tuning one application in isolation: the
// configuration minimizing its standalone EDP (the per-application step
// of ILAO).
type SoloBest struct {
	Cfg mapreduce.Config
	Out mapreduce.CoOutcome
}

// PairBest is the result of the COLAO brute-force search for one
// co-located pair: the joint configuration minimizing node EDP.
type PairBest struct {
	Cfg [2]mapreduce.Config
	Out mapreduce.CoOutcome
}

// Oracle runs the brute-force searches of the paper (§4.2) against the
// execution model, memoizing results: the full COLAO search for a pair
// covers every joint knob setting with m1+m2 ≤ cores (the study's
// 84,480-run budget collapses to milliseconds on the analytic model).
type Oracle struct {
	Model *mapreduce.Model

	solo map[soloKey]SoloBest
	pair map[pairKey]PairBest
}

type soloKey struct {
	app  string
	data float64
}

type pairKey struct {
	appA  string
	dataA float64
	appB  string
	dataB float64
}

func canonPair(a workloads.App, dataA float64, b workloads.App, dataB float64) (pairKey, bool) {
	if a.Name < b.Name || (a.Name == b.Name && dataA <= dataB) {
		return pairKey{a.Name, dataA, b.Name, dataB}, false
	}
	return pairKey{b.Name, dataB, a.Name, dataA}, true
}

// NewOracle returns a memoizing oracle over the given model.
func NewOracle(m *mapreduce.Model) *Oracle {
	return &Oracle{
		Model: m,
		solo:  make(map[soloKey]SoloBest),
		pair:  make(map[pairKey]PairBest),
	}
}

// BestSolo exhaustively tunes one application running alone.
func (o *Oracle) BestSolo(app workloads.App, dataMB float64) (SoloBest, error) {
	k := soloKey{app.Name, dataMB}
	if b, ok := o.solo[k]; ok {
		return b, nil
	}
	best := SoloBest{}
	bestEDP := math.Inf(1)
	for _, cfg := range mapreduce.AllConfigs(o.Model.Spec.Cores) {
		_, co, err := o.Model.Solo(mapreduce.RunSpec{App: app, DataMB: dataMB, Cfg: cfg})
		if err != nil {
			return SoloBest{}, fmt.Errorf("core: solo oracle %s: %w", app.Name, err)
		}
		if co.EDP < bestEDP {
			bestEDP = co.EDP
			best = SoloBest{Cfg: cfg, Out: co}
		}
	}
	o.solo[k] = best
	return best, nil
}

// ILAO evaluates the individually-located application optimization
// baseline for a pair: each application is tuned alone and the pair runs
// serially, so the workload's energy is the sum and its delay the sum.
func (o *Oracle) ILAO(a workloads.App, dataA float64, b workloads.App, dataB float64) (edp float64, cfgs [2]mapreduce.Config, err error) {
	ba, err := o.BestSolo(a, dataA)
	if err != nil {
		return 0, cfgs, err
	}
	bb, err := o.BestSolo(b, dataB)
	if err != nil {
		return 0, cfgs, err
	}
	energy := ba.Out.EnergyJ + bb.Out.EnergyJ
	delay := ba.Out.Makespan + bb.Out.Makespan
	return energy * delay, [2]mapreduce.Config{ba.Cfg, bb.Cfg}, nil
}

// COLAO evaluates the co-located application optimization oracle: a
// brute-force search over the joint configuration space for the pair.
func (o *Oracle) COLAO(a workloads.App, dataA float64, b workloads.App, dataB float64) (PairBest, error) {
	k, swapped := canonPair(a, dataA, b, dataB)
	if best, ok := o.pair[k]; ok {
		return unswap(best, swapped), nil
	}
	ca, cb := a, b
	da, db := dataA, dataB
	if swapped {
		ca, cb, da, db = b, a, dataB, dataA
	}
	best, err := o.searchPair(ca, da, cb, db)
	if err != nil {
		return PairBest{}, err
	}
	o.pair[k] = best
	return unswap(best, swapped), nil
}

// searchPair scans the 11,200-point joint configuration space with a
// pool of worker goroutines (the execution model is pure, so the scan is
// embarrassingly parallel). Each worker keeps its chunk's argmin; the
// merge breaks EDP ties by configuration index, so the result is
// bit-identical to the serial scan regardless of worker count.
func (o *Oracle) searchPair(a workloads.App, dataA float64, b workloads.App, dataB float64) (PairBest, error) {
	pcs := mapreduce.PairConfigsCached(o.Model.Spec.Cores)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pcs) {
		workers = len(pcs)
	}
	if workers < 1 {
		workers = 1
	}
	type localBest struct {
		idx  int
		out  mapreduce.CoOutcome
		err  error
		edp  float64
		seen bool
	}
	results := make([]localBest, workers)
	var wg sync.WaitGroup
	chunk := (len(pcs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pcs) {
			hi = len(pcs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			lb := localBest{edp: math.Inf(1)}
			for i := lo; i < hi; i++ {
				co, err := o.Model.Pair(
					mapreduce.RunSpec{App: a, DataMB: dataA, Cfg: pcs[i][0]},
					mapreduce.RunSpec{App: b, DataMB: dataB, Cfg: pcs[i][1]},
				)
				if err != nil {
					lb.err = err
					break
				}
				if co.EDP < lb.edp {
					lb = localBest{idx: i, out: co, edp: co.EDP, seen: true}
				}
			}
			results[w] = lb
		}(w, lo, hi)
	}
	wg.Wait()
	merged := localBest{edp: math.Inf(1)}
	for _, lb := range results {
		if lb.err != nil {
			return PairBest{}, fmt.Errorf("core: COLAO %s+%s: %w", a.Name, b.Name, lb.err)
		}
		if !lb.seen {
			continue
		}
		if lb.edp < merged.edp || (lb.edp == merged.edp && merged.seen && lb.idx < merged.idx) {
			merged = lb
		}
	}
	if !merged.seen {
		return PairBest{}, fmt.Errorf("core: COLAO %s+%s: empty configuration space", a.Name, b.Name)
	}
	return PairBest{Cfg: pcs[merged.idx], Out: merged.out}, nil
}

func unswap(b PairBest, swapped bool) PairBest {
	if !swapped {
		return b
	}
	b.Cfg[0], b.Cfg[1] = b.Cfg[1], b.Cfg[0]
	if len(b.Out.Apps) == 2 {
		apps := make([]mapreduce.Outcome, 2)
		apps[0], apps[1] = b.Out.Apps[1], b.Out.Apps[0]
		b.Out.Apps = apps
	}
	return b
}

// EvalPair runs the pair at a given joint configuration (used to score
// STP-predicted configurations against the oracle).
func (o *Oracle) EvalPair(a workloads.App, dataA float64, b workloads.App, dataB float64, cfg [2]mapreduce.Config) (mapreduce.CoOutcome, error) {
	return o.Model.Pair(
		mapreduce.RunSpec{App: a, DataMB: dataA, Cfg: cfg[0]},
		mapreduce.RunSpec{App: b, DataMB: dataB, Cfg: cfg[1]},
	)
}

// CachedPairs reports how many COLAO searches have been memoized.
func (o *Oracle) CachedPairs() int { return len(o.pair) }

package core

import (
	"fmt"
	"hash/maphash"
	"math"
	"runtime"
	"sync"

	"ecost/internal/mapreduce"
	"ecost/internal/workloads"
)

// SoloBest is the result of tuning one application in isolation: the
// configuration minimizing its standalone EDP (the per-application step
// of ILAO).
type SoloBest struct {
	Cfg mapreduce.Config
	Out mapreduce.CoOutcome
}

// PairBest is the result of the COLAO brute-force search for one
// co-located pair: the joint configuration minimizing node EDP.
type PairBest struct {
	Cfg [2]mapreduce.Config
	Out mapreduce.CoOutcome
}

// Oracle runs the brute-force searches of the paper (§4.2) against the
// execution model, memoizing results: the full COLAO search for a pair
// covers every joint knob setting with m1+m2 ≤ cores (the study's
// 84,480-run budget collapses to milliseconds on the analytic model).
//
// The oracle is safe for concurrent use: memoization is sharded (one
// mutex per shard, keyed by a hash of the search key) and each key is
// computed at most once — concurrent callers of the same uncached
// search wait for the single in-flight computation instead of
// duplicating an 11,200-point scan.
type Oracle struct {
	Model *mapreduce.Model

	seed   maphash.Seed
	shards [oracleShards]oracleShard
}

// oracleShards is a power of two so shard selection is a mask. 16
// shards keeps contention negligible for the worker-pool sizes the
// database build uses.
const oracleShards = 16

type oracleShard struct {
	mu       sync.Mutex
	solo     map[soloKey]SoloBest
	pair     map[pairKey]PairBest
	soloWait map[soloKey]*inflight[SoloBest]
	pairWait map[pairKey]*inflight[PairBest]
}

// inflight is one in-progress search other goroutines can wait on
// (a minimal per-key singleflight).
type inflight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

type soloKey struct {
	app  string
	data float64
}

type pairKey struct {
	appA  string
	dataA float64
	appB  string
	dataB float64
}

func canonPair(a workloads.App, dataA float64, b workloads.App, dataB float64) (pairKey, bool) {
	if a.Name < b.Name || (a.Name == b.Name && dataA <= dataB) {
		return pairKey{a.Name, dataA, b.Name, dataB}, false
	}
	return pairKey{b.Name, dataB, a.Name, dataA}, true
}

// NewOracle returns a memoizing oracle over the given model.
func NewOracle(m *mapreduce.Model) *Oracle {
	o := &Oracle{Model: m, seed: maphash.MakeSeed()}
	for i := range o.shards {
		o.shards[i] = oracleShard{
			solo:     make(map[soloKey]SoloBest),
			pair:     make(map[pairKey]PairBest),
			soloWait: make(map[soloKey]*inflight[SoloBest]),
			pairWait: make(map[pairKey]*inflight[PairBest]),
		}
	}
	return o
}

func (o *Oracle) soloShard(k soloKey) *oracleShard {
	var h maphash.Hash
	h.SetSeed(o.seed)
	h.WriteString(k.app)
	return &o.shards[h.Sum64()&(oracleShards-1)]
}

func (o *Oracle) pairShard(k pairKey) *oracleShard {
	var h maphash.Hash
	h.SetSeed(o.seed)
	h.WriteString(k.appA)
	h.WriteString(k.appB)
	return &o.shards[h.Sum64()&(oracleShards-1)]
}

// BestSolo exhaustively tunes one application running alone.
func (o *Oracle) BestSolo(app workloads.App, dataMB float64) (SoloBest, error) {
	k := soloKey{app.Name, dataMB}
	sh := o.soloShard(k)
	sh.mu.Lock()
	if b, ok := sh.solo[k]; ok {
		sh.mu.Unlock()
		return b, nil
	}
	if c, ok := sh.soloWait[k]; ok {
		sh.mu.Unlock()
		<-c.done
		return c.v, c.err
	}
	c := &inflight[SoloBest]{done: make(chan struct{})}
	sh.soloWait[k] = c
	sh.mu.Unlock()

	c.v, c.err = o.searchSolo(app, dataMB)
	sh.mu.Lock()
	if c.err == nil {
		sh.solo[k] = c.v
	}
	delete(sh.soloWait, k)
	sh.mu.Unlock()
	close(c.done)
	return c.v, c.err
}

// searchSolo scans the standalone tuning space (160 points) with a
// reused evaluator, then realizes the winner's full outcome.
func (o *Oracle) searchSolo(app workloads.App, dataMB float64) (SoloBest, error) {
	ev := o.Model.NewEvaluator()
	cfgs := mapreduce.AllConfigs(o.Model.Spec.Cores)
	bestIdx := -1
	bestEDP := math.Inf(1)
	for i, cfg := range cfgs {
		cm, err := ev.SoloMetrics(mapreduce.RunSpec{App: app, DataMB: dataMB, Cfg: cfg})
		if err != nil {
			return SoloBest{}, fmt.Errorf("core: solo oracle %s: %w", app.Name, err)
		}
		if cm.EDP < bestEDP {
			bestEDP = cm.EDP
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return SoloBest{}, fmt.Errorf("core: solo oracle %s: empty configuration space", app.Name)
	}
	co, err := ev.Solo(mapreduce.RunSpec{App: app, DataMB: dataMB, Cfg: cfgs[bestIdx]})
	if err != nil {
		return SoloBest{}, fmt.Errorf("core: solo oracle %s: %w", app.Name, err)
	}
	return SoloBest{Cfg: cfgs[bestIdx], Out: co}, nil
}

// ILAO evaluates the individually-located application optimization
// baseline for a pair: each application is tuned alone and the pair runs
// serially, so the workload's energy is the sum and its delay the sum.
func (o *Oracle) ILAO(a workloads.App, dataA float64, b workloads.App, dataB float64) (edp float64, cfgs [2]mapreduce.Config, err error) {
	ba, err := o.BestSolo(a, dataA)
	if err != nil {
		return 0, cfgs, err
	}
	bb, err := o.BestSolo(b, dataB)
	if err != nil {
		return 0, cfgs, err
	}
	energy := ba.Out.EnergyJ + bb.Out.EnergyJ
	delay := ba.Out.Makespan + bb.Out.Makespan
	return energy * delay, [2]mapreduce.Config{ba.Cfg, bb.Cfg}, nil
}

// COLAO evaluates the co-located application optimization oracle: a
// brute-force search over the joint configuration space for the pair.
func (o *Oracle) COLAO(a workloads.App, dataA float64, b workloads.App, dataB float64) (PairBest, error) {
	k, swapped := canonPair(a, dataA, b, dataB)
	sh := o.pairShard(k)
	sh.mu.Lock()
	if best, ok := sh.pair[k]; ok {
		sh.mu.Unlock()
		return unswap(best, swapped), nil
	}
	if c, ok := sh.pairWait[k]; ok {
		sh.mu.Unlock()
		<-c.done
		if c.err != nil {
			return PairBest{}, c.err
		}
		return unswap(c.v, swapped), nil
	}
	c := &inflight[PairBest]{done: make(chan struct{})}
	sh.pairWait[k] = c
	sh.mu.Unlock()

	ca, cb := a, b
	da, db := dataA, dataB
	if swapped {
		ca, cb, da, db = b, a, dataB, dataA
	}
	c.v, c.err = o.searchPair(ca, da, cb, db)
	sh.mu.Lock()
	if c.err == nil {
		sh.pair[k] = c.v
	}
	delete(sh.pairWait, k)
	sh.mu.Unlock()
	close(c.done)
	if c.err != nil {
		return PairBest{}, c.err
	}
	return unswap(c.v, swapped), nil
}

// searchPairChunk is the batch granularity of the COLAO scan: small
// enough that per-worker metric buffers stay cache-resident, large
// enough to amortize the loop bookkeeping.
const searchPairChunk = 512

// searchPair scans the 11,200-point joint configuration space with a
// pool of worker goroutines (the execution model is pure, so the scan is
// embarrassingly parallel). Each worker sweeps its chunks through a
// reused Evaluator via PairBatch — zero allocations per configuration —
// and keeps its chunk's argmin; the merge breaks EDP ties by
// configuration index, so the result is bit-identical to the serial
// scan regardless of worker count.
func (o *Oracle) searchPair(a workloads.App, dataA float64, b workloads.App, dataB float64) (PairBest, error) {
	pcs := mapreduce.PairConfigsCached(o.Model.Spec.Cores)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pcs) {
		workers = len(pcs)
	}
	if workers < 1 {
		workers = 1
	}
	type localBest struct {
		idx  int
		err  error
		edp  float64
		seen bool
	}
	results := make([]localBest, workers)
	var wg sync.WaitGroup
	chunk := (len(pcs) + workers - 1) / workers
	specA := mapreduce.RunSpec{App: a, DataMB: dataA}
	specB := mapreduce.RunSpec{App: b, DataMB: dataB}
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pcs) {
			hi = len(pcs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ev := o.Model.NewEvaluator()
			var buf [searchPairChunk]mapreduce.CoMetrics
			lb := localBest{edp: math.Inf(1)}
			for start := lo; start < hi; start += searchPairChunk {
				end := start + searchPairChunk
				if end > hi {
					end = hi
				}
				out := buf[:end-start]
				if err := ev.PairBatch(specA, specB, pcs[start:end], out); err != nil {
					lb.err = err
					break
				}
				for j, cm := range out {
					if cm.EDP < lb.edp {
						lb = localBest{idx: start + j, edp: cm.EDP, seen: true}
					}
				}
			}
			results[w] = lb
		}(w, lo, hi)
	}
	wg.Wait()
	merged := localBest{edp: math.Inf(1)}
	for _, lb := range results {
		if lb.err != nil {
			return PairBest{}, fmt.Errorf("core: COLAO %s+%s: %w", a.Name, b.Name, lb.err)
		}
		if !lb.seen {
			continue
		}
		if lb.edp < merged.edp || (lb.edp == merged.edp && merged.seen && lb.idx < merged.idx) {
			merged = lb
		}
	}
	if !merged.seen {
		return PairBest{}, fmt.Errorf("core: COLAO %s+%s: empty configuration space", a.Name, b.Name)
	}
	specA.Cfg, specB.Cfg = pcs[merged.idx][0], pcs[merged.idx][1]
	co, err := o.Model.Pair(specA, specB)
	if err != nil {
		return PairBest{}, fmt.Errorf("core: COLAO %s+%s: %w", a.Name, b.Name, err)
	}
	return PairBest{Cfg: pcs[merged.idx], Out: co}, nil
}

func unswap(b PairBest, swapped bool) PairBest {
	if !swapped {
		return b
	}
	b.Cfg[0], b.Cfg[1] = b.Cfg[1], b.Cfg[0]
	if len(b.Out.Apps) == 2 {
		apps := make([]mapreduce.Outcome, 2)
		apps[0], apps[1] = b.Out.Apps[1], b.Out.Apps[0]
		b.Out.Apps = apps
	}
	return b
}

// EvalPair runs the pair at a given joint configuration (used to score
// STP-predicted configurations against the oracle).
func (o *Oracle) EvalPair(a workloads.App, dataA float64, b workloads.App, dataB float64, cfg [2]mapreduce.Config) (mapreduce.CoOutcome, error) {
	return o.Model.Pair(
		mapreduce.RunSpec{App: a, DataMB: dataA, Cfg: cfg[0]},
		mapreduce.RunSpec{App: b, DataMB: dataB, Cfg: cfg[1]},
	)
}

// CachedPairs reports how many COLAO searches have been memoized.
func (o *Oracle) CachedPairs() int {
	n := 0
	for i := range o.shards {
		sh := &o.shards[i]
		sh.mu.Lock()
		n += len(sh.pair)
		sh.mu.Unlock()
	}
	return n
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"ecost/internal/mapreduce"
	"ecost/internal/perfctr"
	"ecost/internal/workloads"
)

// seedDatabaseJSON serializes a small hand-built database — the honest
// on-disk shape the fuzzer mutates from.
func seedDatabaseJSON(f *testing.F) []byte {
	f.Helper()
	var feat perfctr.Vector
	for i := range feat {
		feat[i] = float64(i+1) / float64(len(feat))
	}
	obs := func(name string, size float64) Observation {
		app, err := workloads.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		return Observation{App: app, SizeGB: size, Features: feat}
	}
	db := &Database{Entries: []DBEntry{
		{
			A: obs("wc", 1), B: obs("st", 5),
			Best: PairBest{
				Cfg: [2]mapreduce.Config{
					{Freq: 2.4, Block: 128, Mappers: 4},
					{Freq: 1.6, Block: 64, Mappers: 2},
				},
				Out: mapreduce.CoOutcome{EDP: 120, Makespan: 12, EnergyJ: 10},
			},
		},
		{
			A: obs("ts", 5), B: obs("km", 1),
			Best: PairBest{
				Cfg: [2]mapreduce.Config{
					{Freq: 2.0, Block: 256, Mappers: 3},
					{Freq: 2.0, Block: 128, Mappers: 5},
				},
				Out: mapreduce.CoOutcome{EDP: 300, Makespan: 20, EnergyJ: 15},
			},
		},
	}}
	var buf bytes.Buffer
	if err := db.SaveDatabase(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadDatabase feeds arbitrary bytes to the database loader: it must
// either return an error or a database whose entries are internally
// consistent — never panic, never a silently empty success.
func FuzzLoadDatabase(f *testing.F) {
	valid := seedDatabaseJSON(f)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"entries":[]}`))
	f.Add([]byte(`{"version":99,"entries":[{}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"a":{"app":"wc","size_gb":1,"features":[1]}}]}`))
	f.Add([]byte(strings.Replace(string(valid), `"wc"`, `"nosuchapp"`, 1)))
	f.Add([]byte(`not json at all`))
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := LoadDatabase(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		if db == nil || len(db.Entries) == 0 {
			t.Fatal("LoadDatabase succeeded with an empty database")
		}
		for i, e := range db.Entries {
			if e.A.App.Name == "" || e.B.App.Name == "" {
				t.Fatalf("entry %d resolved to an empty application", i)
			}
		}
		// A loaded database must survive re-serialization.
		var buf bytes.Buffer
		if err := db.SaveDatabase(&buf); err != nil {
			t.Fatalf("re-save of loaded database failed: %v", err)
		}
	})
}

package core

import "math/bits"

// nodeSet is a fixed-capacity bitmap over node ids backing the dispatch
// indexes (free nodes, half-busy nodes). min returns the lowest set id,
// which matches the legacy linear scan's first-match choice exactly —
// the scheduler's node slice is ordered by id — while costing O(words)
// instead of O(nodes) resident-set inspections per placement.
type nodeSet struct{ words []uint64 }

func newNodeSet(n int) nodeSet { return nodeSet{words: make([]uint64, (n+63)/64)} }

// set adds or removes one id.
func (s nodeSet) set(id int, present bool) {
	if present {
		s.words[id>>6] |= 1 << (uint(id) & 63)
	} else {
		s.words[id>>6] &^= 1 << (uint(id) & 63)
	}
}

// has reports membership.
func (s nodeSet) has(id int) bool { return s.words[id>>6]&(1<<(uint(id)&63)) != 0 }

// min returns the smallest member id, or false when the set is empty.
func (s nodeSet) min() (int, bool) {
	for w, word := range s.words {
		if word != 0 {
			return w<<6 | bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// count returns the number of members. The work-stealing pass uses it
// to size a starved shard's claim budget; it runs only at epoch
// barriers, so the O(words) popcount walk is off the hot path.
func (s nodeSet) count() int {
	n := 0
	for _, word := range s.words {
		n += bits.OnesCount64(word)
	}
	return n
}

package core

import (
	"ecost/internal/audit"
	"ecost/internal/workloads"
)

// AuditOracle adapts the memoized brute-force Oracle to the
// audit.Oracle reference interface. Lookups resolve applications by
// name and hit the sharded singleflight caches, so the first quality
// report pays for each distinct (app, size) search once and every
// later report — or a second /quality scrape — is a cache hit.
type AuditOracle struct {
	o *Oracle
}

// NewAuditOracle wraps the oracle; returns a true nil interface for a
// nil oracle (not a typed-nil pointer) so the caller can pass the
// result straight to Log.Quality and the nil check there still works.
func NewAuditOracle(o *Oracle) audit.Oracle {
	if o == nil {
		return nil
	}
	return &AuditOracle{o: o}
}

var _ audit.Oracle = (*AuditOracle)(nil)

// SoloBestEDP implements audit.Oracle.
func (a *AuditOracle) SoloBestEDP(app string, sizeGB float64) (float64, error) {
	w, err := workloads.ByName(app)
	if err != nil {
		return 0, err
	}
	best, err := a.o.BestSolo(w, sizeGB*1024)
	if err != nil {
		return 0, err
	}
	return best.Out.EDP, nil
}

// PairBestEDP implements audit.Oracle via COLAO's exhaustive search
// over the joint configuration space for the actually co-located pair.
func (a *AuditOracle) PairBestEDP(appA string, sizeAGB float64, appB string, sizeBGB float64) (float64, error) {
	wa, err := workloads.ByName(appA)
	if err != nil {
		return 0, err
	}
	wb, err := workloads.ByName(appB)
	if err != nil {
		return 0, err
	}
	best, err := a.o.COLAO(wa, sizeAGB*1024, wb, sizeBGB*1024)
	if err != nil {
		return 0, err
	}
	return best.Out.EDP, nil
}

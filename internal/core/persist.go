package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ecost/internal/cluster"
	"ecost/internal/hdfs"
	"ecost/internal/mapreduce"
	"ecost/internal/perfctr"
	"ecost/internal/workloads"
)

// Knowledge-base persistence: a deployment builds the database and
// trains the STP models once (cmd/ecost-train), then ships the bundle to
// the schedulers. The database serializes its entries and observations;
// the raw training rows are not persisted (they are only needed to train
// models, which serialize themselves through the ml package).

// dbDTO is the serialized database.
type dbDTO struct {
	Version int          `json:"version"`
	Entries []dbEntryDTO `json:"entries"`
}

type dbEntryDTO struct {
	A    obsDTO    `json:"a"`
	B    obsDTO    `json:"b"`
	Cfg  [2]cfgDTO `json:"cfg"`
	EDP  float64   `json:"edp"`
	Time float64   `json:"makespan"`
	En   float64   `json:"energy_j"`
}

type obsDTO struct {
	App      string    `json:"app"`
	SizeGB   float64   `json:"size_gb"`
	Features []float64 `json:"features"`
}

type cfgDTO struct {
	Freq    float64 `json:"freq_ghz"`
	BlockMB int     `json:"block_mb"`
	Mappers int     `json:"mappers"`
}

func toObsDTO(o Observation) obsDTO {
	return obsDTO{App: o.App.Name, SizeGB: o.SizeGB, Features: o.Features.Slice()}
}

func fromObsDTO(d obsDTO) (Observation, error) {
	app, err := workloads.ByName(d.App)
	if err != nil {
		return Observation{}, err
	}
	if len(d.Features) != int(perfctr.NumMetrics) {
		return Observation{}, fmt.Errorf("core: load database: %s has %d features, want %d",
			d.App, len(d.Features), perfctr.NumMetrics)
	}
	var v perfctr.Vector
	copy(v[:], d.Features)
	return Observation{App: app, SizeGB: d.SizeGB, Features: v}, nil
}

func toCfgDTO(c mapreduce.Config) cfgDTO {
	return cfgDTO{Freq: float64(c.Freq), BlockMB: int(c.Block), Mappers: c.Mappers}
}

func fromCfgDTO(d cfgDTO) mapreduce.Config {
	return mapreduce.Config{
		Freq:    cluster.FreqGHz(d.Freq),
		Block:   hdfs.BlockMB(d.BlockMB),
		Mappers: d.Mappers,
	}
}

// SaveDatabase writes the database's lookup entries to w as JSON.
// The class-pair training rows are not persisted — they exist to train
// models, and trained models serialize via ml.SaveModel.
func (db *Database) SaveDatabase(w io.Writer) error {
	dto := dbDTO{Version: 1}
	for _, e := range db.Entries {
		dto.Entries = append(dto.Entries, dbEntryDTO{
			A:    toObsDTO(e.A),
			B:    toObsDTO(e.B),
			Cfg:  [2]cfgDTO{toCfgDTO(e.Best.Cfg[0]), toCfgDTO(e.Best.Cfg[1])},
			EDP:  e.Best.Out.EDP,
			Time: e.Best.Out.Makespan,
			En:   e.Best.Out.EnergyJ,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(dto)
}

// LoadDatabase reads a database written by SaveDatabase and rebuilds the
// classifier over its observations. The oracle is re-attached so lookups
// and evaluations keep working against the given model.
func LoadDatabase(r io.Reader, oracle *Oracle) (*Database, error) {
	var dto dbDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: load database: %w", err)
	}
	if dto.Version != 1 {
		return nil, fmt.Errorf("core: load database: unsupported version %d", dto.Version)
	}
	if len(dto.Entries) == 0 {
		return nil, fmt.Errorf("core: load database: no entries")
	}
	db := &Database{Rows: map[ClassPair][]TrainRow{}, oracle: oracle}
	seen := map[string]Observation{}
	for i, ed := range dto.Entries {
		a, err := fromObsDTO(ed.A)
		if err != nil {
			return nil, fmt.Errorf("core: load database entry %d: %w", i, err)
		}
		b, err := fromObsDTO(ed.B)
		if err != nil {
			return nil, fmt.Errorf("core: load database entry %d: %w", i, err)
		}
		cfg := [2]mapreduce.Config{fromCfgDTO(ed.Cfg[0]), fromCfgDTO(ed.Cfg[1])}
		db.Entries = append(db.Entries, DBEntry{
			A: a, B: b,
			Best: PairBest{Cfg: cfg, Out: mapreduce.CoOutcome{
				EDP: ed.EDP, Makespan: ed.Time, EnergyJ: ed.En,
			}},
		})
		seen[fmt.Sprintf("%s@%g", a.App.Name, a.SizeGB)] = a
		seen[fmt.Sprintf("%s@%g", b.App.Name, b.SizeGB)] = b
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	obs := make([]Observation, 0, len(keys))
	for _, k := range keys {
		obs = append(obs, seen[k])
	}
	classer, err := NewClassifier(obs)
	if err != nil {
		return nil, fmt.Errorf("core: load database: %w", err)
	}
	db.classer = classer
	return db, nil
}

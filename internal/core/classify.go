// Package core implements the paper's contribution: the ECoST controller
// that (1) characterizes unknown incoming MapReduce applications from
// hardware-counter and resource-monitor features, (2) decides which
// applications to co-locate on a node using a class-priority decision
// tree, and (3) self-tunes the frequency / HDFS block size / mapper
// knobs of the co-located pair with a self-tuning prediction (STP)
// technique — either a lookup table (LkT-STP) or a machine-learning model
// (MLM-STP with LR, REPTree or MLP).
//
// The package also implements the offline baselines the paper compares
// against: the ILAO and COLAO brute-force oracles, and the mapping
// policies of the scalability study (SM, MNM1, MNM2, SNM, CBM, PTM,
// ECoST, UB).
package core

import (
	"fmt"

	"ecost/internal/mapreduce"
	"ecost/internal/ml"
	"ecost/internal/perfctr"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// ProfilingConfig is the fixed reference configuration every incoming
// application is briefly run at to collect its feature vector (the
// paper's "learning period"). A mid-range point keeps the measured
// features comparable across applications.
func ProfilingConfig() mapreduce.Config {
	return mapreduce.Config{Freq: 2.0, Block: 256, Mappers: 4}
}

// ProfilingRuns is how many times the profiling run is repeated to
// average out PMU multiplexing noise (§2.5 of the paper).
const ProfilingRuns = 3

// Observation is what ECoST knows about an application: its measured
// feature vector and data size. The true identity (App) is carried for
// ground-truth accounting by experiments but is never consulted by the
// classifier or the STP models.
type Observation struct {
	App      workloads.App // ground truth; hidden from the predictor path
	SizeGB   float64
	Features perfctr.Vector
}

// Reduced returns the 7 PCA-selected features the predictors consume.
func (o Observation) Reduced() []float64 {
	return o.Features.Select(perfctr.ReducedMetrics())
}

// Profiler produces Observations by running an application at the
// reference configuration on the execution model and measuring it with
// the synthetic perf/dstat stack.
type Profiler struct {
	Model   *mapreduce.Model
	Sampler *perfctr.Sampler
}

// NewProfiler returns a profiler over the given execution model; rng
// seeds the measurement noise.
func NewProfiler(m *mapreduce.Model, rng *sim.RNG) *Profiler {
	return &Profiler{Model: m, Sampler: perfctr.NewSampler(rng)}
}

// Observe profiles one application at the reference configuration.
func (p *Profiler) Observe(app workloads.App, sizeGB float64) (Observation, error) {
	out, _, err := p.Model.Solo(mapreduce.RunSpec{
		App: app, DataMB: sizeGB * 1024, Cfg: ProfilingConfig(),
	})
	if err != nil {
		return Observation{}, fmt.Errorf("core: profile %s: %w", app.Name, err)
	}
	v := p.Sampler.MeasureAveraged(app.Profile, out.Telemetry(), ProfilingRuns)
	return Observation{App: app, SizeGB: sizeGB, Features: v}, nil
}

// ObserveExact is Observe without measurement noise (used by the oracle
// experiments and to build noise-free training matrices).
func (p *Profiler) ObserveExact(app workloads.App, sizeGB float64) (Observation, error) {
	out, _, err := p.Model.Solo(mapreduce.RunSpec{
		App: app, DataMB: sizeGB * 1024, Cfg: ProfilingConfig(),
	})
	if err != nil {
		return Observation{}, fmt.Errorf("core: profile %s: %w", app.Name, err)
	}
	return Observation{App: app, SizeGB: sizeGB, Features: perfctr.Exact(app.Profile, out.Telemetry())}, nil
}

// Classifier assigns an incoming application to one of the four behaviour
// classes by k-nearest-neighbour matching against the training
// applications' feature vectors — "the classifier chooses the application
// in the database that best resembles the testing application" (§6.4).
type Classifier struct {
	knn      *ml.KNNClassifier
	scaler   *ml.Scaler
	training []Observation
	scaled   [][]float64
}

// NewClassifier trains a classifier on observations of the known
// (training-set) applications.
func NewClassifier(training []Observation) (*Classifier, error) {
	if len(training) == 0 {
		return nil, fmt.Errorf("core: classifier needs training observations")
	}
	X := make([][]float64, len(training))
	labels := make([]int, len(training))
	for i, o := range training {
		X[i] = o.Reduced()
		labels[i] = int(o.App.Class)
	}
	knn := ml.NewKNN(3)
	if err := knn.Train(X, labels); err != nil {
		return nil, fmt.Errorf("core: classifier: %w", err)
	}
	scaler, err := ml.FitScaler(X)
	if err != nil {
		return nil, fmt.Errorf("core: classifier: %w", err)
	}
	return &Classifier{
		knn:      knn,
		scaler:   scaler,
		training: training,
		scaled:   scaler.TransformAll(X),
	}, nil
}

// Classify returns the behaviour class for an observation.
func (c *Classifier) Classify(o Observation) workloads.Class {
	return workloads.Class(c.knn.Classify(o.Reduced()))
}

// NearestKnown returns the training observation whose features best
// resemble o — the LkT-STP matching step. Distances are computed on
// standardized features (so megabyte-scale metrics do not drown the
// ratios) and same-data-size entries are strongly preferred, mirroring
// the paper's per-size database organization.
func (c *Classifier) NearestKnown(o Observation) Observation {
	var best *Observation
	bestD := 0.0
	x := c.scaler.Transform(o.Reduced())
	for i := range c.training {
		t := &c.training[i]
		d := ml.Euclid(x, c.scaled[i])
		// Same-size entries are strongly preferred.
		if t.SizeGB != o.SizeGB {
			d *= 4
		}
		if best == nil || d < bestD {
			best, bestD = t, d
		}
	}
	return *best
}

// RuleClassify is the threshold-based classifier sketched in §6.1 of the
// paper ("the CPU user utilization of wordcount is higher than the
// average user utilization of the studied applications, and with low CPU
// iowait utilization and I/O bandwidth rates this application is
// categorized as compute intensive"): each feature is compared against
// the mean over reference observations. It needs no training beyond the
// reference means, which makes it usable on live engine runs whose
// absolute feature scales differ from the simulated testbed's.
func RuleClassify(v perfctr.Vector, reference []perfctr.Vector) workloads.Class {
	var mean perfctr.Vector
	if len(reference) > 0 {
		for _, r := range reference {
			for i := range mean {
				mean[i] += r[i]
			}
		}
		for i := range mean {
			mean[i] /= float64(len(reference))
		}
	} else {
		mean = v
	}
	rel := func(m perfctr.Metric) float64 {
		if mean[m] == 0 {
			return 1
		}
		return v[m] / mean[m]
	}
	switch {
	case rel(perfctr.LLCMPKI) > 2 && rel(perfctr.IPC) < 1:
		return workloads.MemBound
	case rel(perfctr.CPUIOWait) > 1.3 && rel(perfctr.CPUUser) < 1:
		return workloads.IOBound
	case rel(perfctr.CPUUser) > 1.05 && rel(perfctr.CPUIOWait) < 1:
		return workloads.Compute
	default:
		return workloads.Hybrid
	}
}

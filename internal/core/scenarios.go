package core

import (
	"fmt"

	"ecost/internal/workloads"
)

// JobSpec names one application instance in a workload scenario.
type JobSpec struct {
	App    workloads.App
	SizeGB float64
}

// Workload is one of the paper's studied workload scenarios (Table 3):
// sixteen applications to be mapped onto the cluster.
type Workload struct {
	Name string
	Jobs []JobSpec
}

// ClassSignature renders the scenario's class string ("[C,C,H,I,…]").
func (w Workload) ClassSignature() string {
	s := "["
	for i, j := range w.Jobs {
		if i > 0 {
			s += ","
		}
		s += j.App.Class.String()
	}
	return s + "]"
}

// AppSignature renders the application list the way Table 3 does.
func (w Workload) AppSignature() string {
	s := "["
	for i, j := range w.Jobs {
		if i > 0 {
			s += ", "
		}
		s += j.App.Name
	}
	return s + "]"
}

// scenarioApps are the Table-3 application sequences. WS2, WS6 and WS7
// are printed with 15 entries in the paper (a typesetting slip against
// the stated 16-application workloads and their 16-class signatures);
// the sixteenth element repeats the scenario's dominant application.
var scenarioApps = map[string][]string{
	"WS1": {"svm", "svm", "wc", "wc", "svm", "wc", "hmm", "wc", "hmm", "hmm", "wc", "wc", "hmm", "wc", "svm", "wc"},
	"WS2": {"ts", "gp", "ts", "ts", "ts", "gp", "ts", "ts", "ts", "gp", "ts", "ts", "gp", "ts", "ts", "ts"},
	"WS3": {"st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st", "st"},
	"WS4": {"svm", "wc", "ts", "st", "wc", "wc", "ts", "st", "hmm", "svm", "ts", "st", "wc", "wc", "ts", "st"},
	"WS5": {"hmm", "ts", "st", "ts", "wc", "ts", "st", "ts", "svm", "ts", "st", "ts", "hmm", "ts", "st", "ts"},
	"WS6": {"ts", "st", "ts", "st", "ts", "ts", "st", "st", "ts", "st", "ts", "st", "ts", "st", "ts", "st"},
	"WS7": {"cf", "cf", "cf", "st", "cf", "cf", "cf", "st", "cf", "cf", "cf", "cf", "cf", "cf", "st", "cf"},
	"WS8": {"cf", "fp", "ts", "st", "cf", "fp", "ts", "st", "hmm", "svm", "ts", "st", "wc", "wc", "ts", "st"},
}

// DefaultScenarioSizeGB is the per-node input size used for the Table-3
// scenarios (the paper leaves scenario sizes unpinned; the medium 5 GB
// point keeps every policy comparable, and ScenarioMixed exercises
// size diversity).
const DefaultScenarioSizeGB = 5

// Scenario returns one of the eight studied workload scenarios by name
// ("WS1".."WS8"), every job at the medium input size.
func Scenario(name string) (Workload, error) {
	return ScenarioMixed(name, []float64{DefaultScenarioSizeGB})
}

// ScenarioMixed returns a scenario whose positions cycle through the
// given data sizes — the size-diverse variant used by the robustness
// tests and the size-aware-pairing ablation.
func ScenarioMixed(name string, sizeCycle []float64) (Workload, error) {
	names, ok := scenarioApps[name]
	if !ok {
		return Workload{}, fmt.Errorf("core: unknown workload scenario %q", name)
	}
	if len(sizeCycle) == 0 {
		sizeCycle = []float64{DefaultScenarioSizeGB}
	}
	w := Workload{Name: name}
	for i, n := range names {
		app, err := workloads.ByName(n)
		if err != nil {
			return Workload{}, err
		}
		w.Jobs = append(w.Jobs, JobSpec{App: app, SizeGB: sizeCycle[i%len(sizeCycle)]})
	}
	return w, nil
}

// Scenarios returns all eight scenarios in order.
func Scenarios() []Workload {
	var out []Workload
	for i := 1; i <= 8; i++ {
		w, err := Scenario(fmt.Sprintf("WS%d", i))
		if err != nil {
			panic(err) // static tables; cannot fail
		}
		out = append(out, w)
	}
	return out
}

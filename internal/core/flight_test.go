package core

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/flight"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// runShardedFlight drives one sharded run with per-shard registries and
// the flight recorder attached, returning all three handles for
// post-run assertions.
func runShardedFlight(t *testing.T, nodes int, cfg ShardedConfig, submit func(c *ShardedScheduler)) (*ShardedScheduler, *flight.Recorder, []*metrics.Registry) {
	t.Helper()
	fixture(t)
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	regs := make([]*metrics.Registry, 0, cfg.Shards)
	newTuner := func() STP {
		reg := metrics.NewRegistry()
		regs = append(regs, reg)
		return NewMeteredSTP(NewMemoSTP(fix.lkt, reg), fix.model, reg)
	}
	c, err := NewShardedScheduler(fix.model, fix.db, prof, newTuner, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Shards; i++ {
		c.Shard(i).SetMetrics(regs[i])
	}
	fr := flight.New(flight.Config{Shards: cfg.Shards, ShardNodes: c.ShardNodes()})
	c.SetFlight(fr)
	submit(c)
	if _, _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c, fr, regs
}

// seededStream mixes the training tenants with seeded exponential gaps
// — dense enough that multi-shard steal-on runs migrate work.
func seededStream(jobs int, seed int64, meanGap float64) func(c *ShardedScheduler) {
	apps := workloads.Training()
	return func(c *ShardedScheduler) {
		rng := sim.NewRNG(seed)
		at := 0.0
		for i := 0; i < jobs; i++ {
			c.Submit(apps[i%len(apps)], 5, at)
			at += rng.Exp(meanGap)
		}
	}
}

// TestFlightStealFlowMatchesCounters is the accounting property: for
// every seed and shard count, the flight recorder's steal-flow matrix
// must agree exactly with the schedulers' own books — row i sums to
// shard i's sched.steals_out counter, column i to its sched.steals_in,
// and the grand total to ShardedScheduler.Steals().
func TestFlightStealFlowMatchesCounters(t *testing.T) {
	totalSteals := 0
	for _, shards := range []int{2, 4, 8} {
		for _, seed := range []int64{1, 7, 42} {
			c, fr, regs := runShardedFlight(t, 8, ShardedConfig{Shards: shards, Steal: true},
				seededStream(48, seed, 5))
			flow := fr.StealFlow()
			if len(flow) != shards {
				t.Fatalf("shards=%d seed=%d: flow matrix has %d rows", shards, seed, len(flow))
			}
			var grand int64
			for i := 0; i < shards; i++ {
				var rowSum, colSum int64
				for j := 0; j < shards; j++ {
					rowSum += flow[i][j]
					colSum += flow[j][i]
					grand += flow[i][j]
				}
				if out := regs[i].Counter("sched.steals_out").Value(); rowSum != out {
					t.Errorf("shards=%d seed=%d: shard %d flow row sum %d != sched.steals_out %d",
						shards, seed, i, rowSum, out)
				}
				if in := regs[i].Counter("sched.steals_in").Value(); colSum != in {
					t.Errorf("shards=%d seed=%d: shard %d flow col sum %d != sched.steals_in %d",
						shards, seed, i, colSum, in)
				}
				if flow[i][i] != 0 {
					t.Errorf("shards=%d seed=%d: shard %d stole from itself %d times", shards, seed, i, flow[i][i])
				}
			}
			if grand != int64(c.Steals()) {
				t.Errorf("shards=%d seed=%d: flow total %d != Steals() %d", shards, seed, grand, c.Steals())
			}
			totalSteals += c.Steals()
		}
	}
	if totalSteals == 0 {
		t.Fatal("no configuration stole anything — the property is vacuous")
	}
}

// TestFlightShardedStaleDriftDump is the acceptance scenario: a stale
// STP database (trained on 1 GB inputs, fed 12 GB jobs) run through the
// sharded control plane must trip the CUSUM drift detector, and the
// flight recorder must snapshot the ring into a dump that names the
// drifting tenant class.
func TestFlightShardedStaleDriftDump(t *testing.T) {
	fixture(t)
	stale, err := BuildDatabase(NewProfiler(fix.model, sim.NewRNG(7)), fix.oracle, workloads.Training(), BuildOptions{
		Sizes:        []float64{1},
		ConfigStride: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 2
	c, err := NewShardedScheduler(fix.model, stale, NewProfiler(fix.model, sim.NewRNG(99)),
		func() STP { return &LkTSTP{DB: stale} }, 4, ShardedConfig{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	auds := make([]*audit.Log, shards)
	for i := 0; i < shards; i++ {
		auds[i] = audit.NewLog(audit.DriftConfig{})
		c.Shard(i).SetAudit(auds[i])
	}
	fr := flight.New(flight.Config{Shards: shards, ShardNodes: c.ShardNodes()})
	c.SetFlight(fr)
	// Each shard runs its own CUSUM (default MinSamples per shard), so
	// the stream cycles the tenant list enough times that every shard
	// joins plenty of mispredicted completions.
	apps := []string{"nb", "pr", "km", "svm", "cf", "hmm", "st", "ts"}
	for i := 0; i < 4*len(apps); i++ {
		c.Submit(workloads.MustByName(apps[i%len(apps)]), 12, float64(i)*40)
	}
	if _, _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	alerts := 0
	for _, aud := range auds {
		alerts += len(aud.Alerts())
	}
	if alerts == 0 {
		t.Fatal("stale database tripped no drift alert across shards")
	}
	dumps := fr.Dumps()
	if len(dumps) == 0 {
		t.Fatal("drift alerts fired but the flight recorder dumped nothing")
	}
	d := dumps[0]
	if d.Trigger.Kind != flight.TriggerDrift {
		t.Fatalf("first dump kind = %q, want %q", d.Trigger.Kind, flight.TriggerDrift)
	}
	if len(d.Trigger.Tenants) == 0 {
		t.Fatal("drift dump names no tenants")
	}
	for _, tn := range d.Trigger.Tenants {
		app, class, ok := strings.Cut(tn, ":")
		if !ok || app == "" || class == "" {
			t.Errorf("implicated tenant %q is not app:class", tn)
		}
	}
	if len(d.Records) == 0 {
		t.Fatal("drift dump carries no epoch records")
	}
	var jsonl bytes.Buffer
	if err := fr.WriteDumps(&jsonl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trigger":"stp_drift_alert"`, `"` + d.Trigger.Tenants[0] + `"`} {
		if !strings.Contains(jsonl.String(), want) {
			t.Errorf("flight JSONL missing %q:\n%s", want, jsonl.String())
		}
	}
}

// flightExports renders every flight-recorder export surface into one
// byte string.
func flightExports(t *testing.T, fr *flight.Recorder) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fr.Health().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteEpochs(&buf, -1); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteShards(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fr.WriteDumps(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestFlightExportsGOMAXPROCSInvariant is the determinism golden: every
// flight export (health report, epoch JSONL, shard rows, dumps) is a
// pure function of the submitted stream — byte-identical at GOMAXPROCS
// 1 and 4, with the steal pass actually firing.
func TestFlightExportsGOMAXPROCSInvariant(t *testing.T) {
	var base string
	for i, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		c, fr, _ := runShardedFlight(t, 8, ShardedConfig{Shards: 4, Steal: true},
			skewedStream(t, 48, 10))
		runtime.GOMAXPROCS(old)
		if c.Steals() == 0 {
			t.Fatal("skewed stream never triggered a steal — the invariance case is vacuous")
		}
		if fr.Epochs() == 0 {
			t.Fatal("run recorded no barrier epochs")
		}
		got := flightExports(t, fr)
		if i == 0 {
			base = got
			continue
		}
		if got != base {
			t.Fatalf("flight exports diverged across GOMAXPROCS:\n--- procs=4 ---\n%s\n--- procs=1 ---\n%s", got, base)
		}
	}
}

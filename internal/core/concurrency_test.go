package core

import (
	"sync"
	"testing"

	"ecost/internal/workloads"
)

// TestOracleConcurrentHammer drives COLAO and BestSolo from many
// goroutines over the same keys. Run under -race it proves the sharded
// memoization is sound; the result comparison proves concurrent callers
// all see the single in-flight computation's answer.
func TestOracleConcurrentHammer(t *testing.T) {
	fixture(t)
	o := NewOracle(fix.model)
	apps := []workloads.App{
		workloads.MustByName("wc"),
		workloads.MustByName("gp"),
		workloads.MustByName("st"),
	}
	const goroutines = 8
	const rounds = 3
	type result struct {
		pair PairBest
		solo SoloBest
	}
	results := make([][]result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for i, a := range apps {
					b := apps[(i+1)%len(apps)]
					pb, err := o.COLAO(a, 1024, b, 1024)
					if err != nil {
						t.Error(err)
						return
					}
					sb, err := o.BestSolo(a, 1024)
					if err != nil {
						t.Error(err)
						return
					}
					results[g] = append(results[g], result{pair: pb, solo: sb})
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 1; g < goroutines; g++ {
		if len(results[g]) != len(results[0]) {
			t.Fatalf("goroutine %d saw %d results, want %d", g, len(results[g]), len(results[0]))
		}
		for i := range results[g] {
			if results[g][i].pair.Cfg != results[0][i].pair.Cfg ||
				results[g][i].pair.Out.EDP != results[0][i].pair.Out.EDP {
				t.Fatalf("goroutine %d result %d: COLAO diverged", g, i)
			}
			if results[g][i].solo.Cfg != results[0][i].solo.Cfg ||
				results[g][i].solo.Out.EDP != results[0][i].solo.Out.EDP {
				t.Fatalf("goroutine %d result %d: BestSolo diverged", g, i)
			}
		}
	}
	if got := o.CachedPairs(); got != len(apps) {
		t.Fatalf("CachedPairs = %d, want %d (singleflight should compute each key once)", got, len(apps))
	}
}

// TestOracleSwappedCallersShareCache checks both argument orders hit the
// same canonical memo entry and unswap consistently under concurrency.
func TestOracleSwappedCallersShareCache(t *testing.T) {
	fixture(t)
	o := NewOracle(fix.model)
	a := workloads.MustByName("wc")
	b := workloads.MustByName("st")
	var wg sync.WaitGroup
	fwd := make([]PairBest, 4)
	rev := make([]PairBest, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := o.COLAO(a, 1024, b, 5120)
			if err != nil {
				t.Error(err)
				return
			}
			r, err := o.COLAO(b, 5120, a, 1024)
			if err != nil {
				t.Error(err)
				return
			}
			fwd[g], rev[g] = f, r
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 0; g < 4; g++ {
		if fwd[g].Cfg[0] != rev[g].Cfg[1] || fwd[g].Cfg[1] != rev[g].Cfg[0] {
			t.Fatalf("goroutine %d: swapped call does not mirror configs: %v vs %v", g, fwd[g].Cfg, rev[g].Cfg)
		}
		if fwd[g].Out.EDP != rev[g].Out.EDP {
			t.Fatalf("goroutine %d: swapped call EDP differs", g)
		}
	}
	if got := o.CachedPairs(); got != 1 {
		t.Fatalf("CachedPairs = %d, want 1 (both orders share one canonical entry)", got)
	}
}

package core

import (
	"testing"

	"ecost/internal/audit"
	"ecost/internal/cluster"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/tracing"
)

// tracedBusyScheduler builds a fully instrumented 4-node scheduler with
// every node co-running two WS4 jobs: arrivals are submitted at t=0 and
// the engine is stepped through exactly the arrival events, so the
// placements happen but no completion has fired yet.
func tracedBusyScheduler(tb testing.TB) *OnlineScheduler {
	tb.Helper()
	fixture(tb)
	eng := sim.NewEngine()
	reg := metrics.NewRegistry()
	prof := NewProfiler(fix.model, sim.NewRNG(3))
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.lkt, prof, 4)
	if err != nil {
		tb.Fatal(err)
	}
	s.SetMetrics(reg)
	s.SetTracer(tracing.New(eng.Clock()))
	s.SetAudit(audit.NewLog(audit.DriftConfig{}))
	wl, err := Scenario("WS4")
	if err != nil {
		tb.Fatal(err)
	}
	for _, j := range wl.Jobs[:8] {
		s.Submit(j.App, j.SizeGB, 0)
	}
	for i := 0; i < 8; i++ {
		if !eng.Step() {
			tb.Fatal("engine drained before all arrivals fired")
		}
	}
	for _, n := range s.nodes {
		if len(n.residents) == 0 {
			tb.Fatalf("node %d idle; want every node busy", n.id)
		}
	}
	return s
}

// TestAccrueEnergyZeroAlloc is the satellite acceptance check: with
// metrics, tracing, AND the decision audit all attached, the energy
// accrual path must not allocate — the per-node watts cache and the
// scratch spec buffer removed the last per-accrual allocations.
func TestAccrueEnergyZeroAlloc(t *testing.T) {
	s := tracedBusyScheduler(t)
	allocs := testing.AllocsPerRun(100, func() {
		s.lastUpdate = -1 // force dt > 0 so the full accrual body runs
		s.accrueEnergy()
	})
	if allocs != 0 {
		t.Fatalf("accrueEnergy allocates %v times per call with tracing+audit enabled; want 0", allocs)
	}
}

// BenchmarkAccrueEnergyTraced measures the fully instrumented accrual
// path (metrics + tracing + audit attached, all nodes co-running).
// Guarded in CI via BENCH_PERF.json: must stay allocation-free.
// -ecost.naive measures the legacy per-accrual specs()+Steady recompute.
func BenchmarkAccrueEnergyTraced(b *testing.B) {
	s := tracedBusyScheduler(b)
	s.SetNaive(*naiveFlag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.lastUpdate = -1
		s.accrueEnergy()
	}
}

// disabledScheduler builds the smallest possible scheduler with every
// observability sink off, for benchmarking the disabled fast paths.
func disabledScheduler(tb testing.TB) *OnlineScheduler {
	tb.Helper()
	eng := sim.NewEngine()
	model := mapreduce.NewModel(cluster.AtomC2758())
	db := &Database{}
	s, err := NewOnlineScheduler(eng, model, db, &LkTSTP{DB: db}, NewProfiler(model, sim.NewRNG(1)), 1)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkDisabledDepthSample measures sampleDepth with observability
// fully off — like the other disabled-path no-ops it must stay a
// single inlined nil check (sub-ns, zero alloc; guarded in CI).
func BenchmarkDisabledDepthSample(b *testing.B) {
	s := disabledScheduler(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.sampleDepth()
	}
}

// BenchmarkDisabledOccupancyRoll measures rollOccupancy with
// observability fully off (sub-ns, zero alloc; guarded in CI).
func BenchmarkDisabledOccupancyRoll(b *testing.B) {
	s := disabledScheduler(b)
	n := s.nodes[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.rollOccupancy(n)
	}
}

// BenchmarkOnlineLargeCluster is the tentpole scale benchmark: a
// thousand-node cluster fed a long recurring-job stream. Short mode
// (what CI's bench-guard runs) uses 256 nodes × 2000 jobs; full mode
// 1024 × 20000. The mean interarrival scales inversely with cluster
// size so the offered load — and therefore queue behavior — is
// comparable across sizes. -ecost.naive measures the legacy
// reference path (per-accrual Steady recompute over every node,
// linear dispatch scans, whole-queue partner scans, no tune memo);
// the optimized path must beat it ≥10× at the full size.
func BenchmarkOnlineLargeCluster(b *testing.B) {
	fixture(b)
	nodes, jobs := 1024, 20000
	if testing.Short() {
		nodes, jobs = 256, 2000
	}
	wl, err := Scenario("WS4")
	if err != nil {
		b.Fatal(err)
	}
	mean := 1536.0 / float64(nodes)
	completed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		prof := NewProfiler(fix.model, sim.NewRNG(17))
		var tuner STP = fix.lkt
		if !*naiveFlag {
			tuner = NewMemoSTP(fix.lkt, nil)
		}
		s, err := NewOnlineScheduler(eng, fix.model, fix.db, tuner, prof, nodes)
		if err != nil {
			b.Fatal(err)
		}
		s.SetNaive(*naiveFlag)
		rng := sim.NewRNG(18)
		at := 0.0
		for j := 0; j < jobs; j++ {
			spec := wl.Jobs[j%len(wl.Jobs)]
			s.Submit(spec.App, spec.SizeGB, at)
			at += rng.Exp(mean)
		}
		if _, _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
		completed += len(s.Completed())
	}
	b.StopTimer()
	if completed != b.N*jobs {
		b.Fatalf("completed %d jobs, want %d", completed, b.N*jobs)
	}
	b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "jobs/s")
}

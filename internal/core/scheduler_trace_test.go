package core

import (
	"bytes"
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// tracedRun drives one traced online simulation (same workload as
// metricsRun) and returns the tracer and scheduler. A fresh profiler is
// seeded identically each call so the noise sequence restarts.
func tracedRun(t *testing.T) (*tracing.Tracer, *OnlineScheduler) {
	t.Helper()
	fixture(t)
	eng := sim.NewEngine()
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.lkt, prof, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := tracing.New(eng.Clock())
	s.SetTracer(tr)
	apps := []string{"nb", "pr", "km", "svm", "cf", "hmm", "st", "ts"}
	for i, name := range apps {
		s.Submit(workloads.MustByName(name), 5, float64(i)*40)
	}
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return tr, s
}

func timelineOf(t *testing.T, tr *tracing.Tracer) string {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSchedulerTraceGoldenAcrossGOMAXPROCS is the acceptance golden:
// the rendered text timeline must be byte-identical between a
// single-threaded and a multi-threaded run of the same seed.
func TestSchedulerTraceGoldenAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	tr1, _ := tracedRun(t)
	narrow := timelineOf(t, tr1)
	runtime.GOMAXPROCS(4)
	tr4, _ := tracedRun(t)
	runtime.GOMAXPROCS(old)
	wide := timelineOf(t, tr4)
	if narrow != wide {
		t.Fatalf("timeline diverged across GOMAXPROCS:\n--- GOMAXPROCS=1 ---\n%s\n--- GOMAXPROCS=4 ---\n%s", narrow, wide)
	}
	if timelineOf(t, tr1) != narrow {
		t.Fatal("timeline not byte-stable across renders")
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSchedulerTraceEnergyConservation is the acceptance invariant: the
// span energy attribution must re-integrate to the scheduler's own
// energy accounting within 1e-9 relative error.
func TestSchedulerTraceEnergyConservation(t *testing.T) {
	tr, s := tracedRun(t)
	spans := tr.Spans()
	total := s.EnergyJ()
	ph := s.Phases()

	// Node occupancy spans carry the full cluster bill.
	if e := relErr(tracing.TotalEnergyJ(spans, tracing.KindNode), total); e > 1e-9 {
		t.Errorf("node span energies off by %.2e relative (sum %v, want %v)",
			e, tracing.TotalEnergyJ(spans, tracing.KindNode), total)
	}
	// Job run spans carry the attributable (solo + co-located) share;
	// adding the idle remainder recovers the full bill.
	runJ := tracing.TotalEnergyJ(spans, tracing.KindRun)
	if e := relErr(runJ+ph.IdleJ, total); e > 1e-9 {
		t.Errorf("run spans + idle off by %.2e relative (run %v + idle %v, want %v)",
			e, runJ, ph.IdleJ, total)
	}
	if e := relErr(runJ, ph.SoloJ+ph.CoJ); e > 1e-9 {
		t.Errorf("run spans %v != solo+co %v (rel %.2e)", runJ, ph.SoloJ+ph.CoJ, e)
	}
	// The map/reduce split shares each run's energy exactly.
	mapJ := tracing.TotalEnergyJ(spans, tracing.KindMap)
	redJ := tracing.TotalEnergyJ(spans, tracing.KindReduce)
	if e := relErr(mapJ+redJ, runJ); e > 1e-9 {
		t.Errorf("map %v + reduce %v != run %v (rel %.2e)", mapJ, redJ, runJ, e)
	}
	// The rolled-up report re-integrates the phase accumulator.
	rep := tr.Report()
	if e := relErr(rep.Phases.TotalJ(), total); e > 1e-9 {
		t.Errorf("report phase total %v != energy %v", rep.Phases.TotalJ(), total)
	}
	if e := relErr(rep.Phases.IdleJ, ph.IdleJ); e > 1e-9 {
		t.Errorf("report idle %v != accumulator idle %v", rep.Phases.IdleJ, ph.IdleJ)
	}
	if e := relErr(rep.AttributedJ, runJ); e > 1e-9 {
		t.Errorf("report attributed %v != run span sum %v", rep.AttributedJ, runJ)
	}
}

// TestSchedulerTraceLifecycle checks span structure against the
// scheduler's completion records.
func TestSchedulerTraceLifecycle(t *testing.T) {
	tr, s := tracedRun(t)
	done := s.Completed()
	rep := tr.Report()
	if len(rep.Jobs) != len(done) {
		t.Fatalf("report has %d jobs, scheduler completed %d", len(rep.Jobs), len(done))
	}
	byID := map[int]CompletedJob{}
	for _, c := range done {
		byID[c.ID] = c
	}
	for _, j := range rep.Jobs {
		c, ok := byID[j.Job]
		if !ok {
			t.Fatalf("report job %d not in completions", j.Job)
		}
		if j.App != c.App || j.Class != c.Class.String() || j.Node != c.Node {
			t.Errorf("job %d identity mismatch: report %+v vs completion %+v", j.Job, j, c)
		}
		if e := relErr(j.WaitS, c.Started-c.Submitted); e > 1e-9 {
			t.Errorf("job %d wait %v != %v", j.Job, j.WaitS, c.Started-c.Submitted)
		}
		if e := relErr(j.RunS, c.Finished-c.Started); e > 1e-9 {
			t.Errorf("job %d run %v != %v", j.Job, j.RunS, c.Finished-c.Started)
		}
		if e := relErr(j.MapS+j.ReduceS, j.RunS); j.RunS > 0 && e > 1e-9 {
			t.Errorf("job %d map %v + reduce %v != run %v", j.Job, j.MapS, j.ReduceS, j.RunS)
		}
		if j.Config == "" {
			t.Errorf("job %d has no config attribute", j.Job)
		}
		if j.EnergyJ <= 0 || j.EDP != j.EnergyJ*j.RunS {
			t.Errorf("job %d energy/EDP wrong: %+v", j.Job, j)
		}
	}
	// No open spans remain after Run.
	for _, sp := range tr.Spans() {
		if sp.Open() {
			t.Errorf("span %d (%s %q) left open", sp.ID, sp.Kind, sp.Name)
		}
	}
	// Pairing happened somewhere in this workload: at least one run span
	// carries a partner.
	partners := 0
	for _, sp := range tr.Spans() {
		if sp.Kind == tracing.KindRun && sp.Attrs.Partner != "" {
			partners++
		}
	}
	if partners == 0 {
		t.Error("no run span carries a partner; pairing attribution broken")
	}
}

// TestSchedulerTraceChromeExport validates the end-to-end Chrome JSON.
func TestSchedulerTraceChromeExport(t *testing.T) {
	tr, _ := tracedRun(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var complete int
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			complete++
		}
	}
	if complete == 0 {
		t.Fatal("chrome trace has no complete events")
	}
}

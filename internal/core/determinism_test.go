package core

import (
	"bytes"
	"runtime"
	"testing"

	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// TestParallelCOLAOAcrossGOMAXPROCS pins the parallel pair search to one
// OS thread and compares against the multi-worker result: the argmin
// (configuration and EDP bits) must not depend on the degree of
// parallelism.
func TestParallelCOLAOAcrossGOMAXPROCS(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("gp")
	b := workloads.MustByName("hmm")
	wide, err := fix.oracle.searchPair(a, 1024, b, 5120)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	narrow, err := fix.oracle.searchPair(a, 1024, b, 5120)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Cfg != wide.Cfg {
		t.Fatalf("GOMAXPROCS=1 chose %v, GOMAXPROCS=%d chose %v", narrow.Cfg, old, wide.Cfg)
	}
	if narrow.Out.EDP != wide.Out.EDP || narrow.Out.Makespan != wide.Out.Makespan ||
		narrow.Out.EnergyJ != wide.Out.EnergyJ {
		t.Fatalf("outcomes differ across parallelism: %+v vs %+v", narrow.Out, wide.Out)
	}
}

// metricsRun drives one fully instrumented online simulation and returns
// the deterministic snapshot text plus the scheduler for invariant
// checks. Each call builds a fresh profiler from the same seed so the
// measurement noise sequence is identical run to run.
func metricsRun(t *testing.T) (string, *OnlineScheduler) {
	t.Helper()
	fixture(t)
	reg := metrics.NewRegistry()
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	tuner := NewMeteredSTP(fix.lkt, fix.model, reg)
	s, err := NewOnlineScheduler(sim.NewEngine(), fix.model, fix.db, tuner, prof, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMetrics(reg)
	apps := []string{"nb", "pr", "km", "svm", "cf", "hmm", "st", "ts"}
	for i, name := range apps {
		s.Submit(workloads.MustByName(name), 5, float64(i)*40)
	}
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.Snapshot(false).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), s
}

// TestSchedulerMetricsSnapshotGolden runs the same instrumented
// simulation twice and requires byte-identical snapshots — the property
// `ecost-sim -metrics` relies on.
func TestSchedulerMetricsSnapshotGolden(t *testing.T) {
	first, _ := metricsRun(t)
	second, _ := metricsRun(t)
	if first != second {
		t.Fatalf("metrics snapshot not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	for _, want := range []string{
		"sched.submitted", "sched.completed", "sched.queue_depth",
		"stp.predictions", "power.energy_j.", "sched.wait_s.",
	} {
		if !bytes.Contains([]byte(first), []byte(want)) {
			t.Errorf("snapshot missing %q:\n%s", want, first)
		}
	}
}

// TestSchedulerMetricsInvariants cross-checks the instruments against
// the scheduler's own accounting.
func TestSchedulerMetricsInvariants(t *testing.T) {
	_, s := metricsRun(t)
	if got, want := len(s.Completed()), 8; got != want {
		t.Fatalf("completed %d jobs, want %d", got, want)
	}
	ph := s.Phases()
	if ph.TotalJ() <= 0 {
		t.Fatalf("phase accumulator empty: %+v", ph)
	}
	diff := ph.TotalJ() - s.EnergyJ()
	if diff < -1e-6 || diff > 1e-6 {
		t.Errorf("phase split %.6f J disagrees with integrated energy %.6f J", ph.TotalJ(), s.EnergyJ())
	}
	if ph.CoJ <= 0 {
		t.Errorf("no co-located energy recorded; pairing instrumentation broken: %+v", ph)
	}
}

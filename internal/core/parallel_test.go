package core

import (
	"bytes"
	"reflect"
	"regexp"
	"runtime"
	"testing"

	"ecost/internal/cluster"
	"ecost/internal/mapreduce"
	"ecost/internal/ml"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// buildAt constructs a fresh database with the given worker count,
// holding everything else (profiler seed, sizes, stride) fixed.
func buildAt(t *testing.T, workers int) *Database {
	t.Helper()
	model := mapreduce.NewModel(cluster.AtomC2758())
	oracle := NewOracle(model)
	profiler := NewProfiler(model, sim.NewRNG(42))
	db, err := BuildDatabase(profiler, oracle, workloads.Training(), BuildOptions{
		Sizes:        []float64{1, 5},
		ConfigStride: 13,
		Workers:      workers,
	})
	if err != nil {
		t.Fatalf("build (workers=%d): %v", workers, err)
	}
	return db
}

// trainTimeRE masks the one legitimately volatile field in the model
// envelope — wall-clock training time — so the byte-compare pins only
// the fitted coefficients and key order.
var trainTimeRE = regexp.MustCompile(`"train_time_ns":\d+`)

// modelBytes trains a linear-regression MLM-STP on the database and
// serializes all of its per-pair models: any divergence in training-row
// content or order shows up in the fitted coefficients.
func modelBytes(t *testing.T, db *Database) []byte {
	t.Helper()
	stp, err := NewMLMSTP("LR", db, func() ml.Regressor { return ml.NewLinearRegression() })
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stp.SaveModels(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no models serialized")
	}
	return trainTimeRE.ReplaceAll(buf.Bytes(), []byte(`"train_time_ns":0`))
}

// TestParallelBuildMatchesSerial is the determinism contract for the
// worker-pool database build: any worker count — and any GOMAXPROCS —
// must produce byte-identical entries, training rows, and trained
// models. The merge happens in canonical job order and every evaluation
// is a pure function of its inputs, so the schedule cannot leak into
// the output.
func TestParallelBuildMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: serial-vs-parallel build is a full double build")
	}
	serial := buildAt(t, 1)
	serialBytes := modelBytes(t, serial)
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		parallel := buildAt(t, 4)
		runtime.GOMAXPROCS(prev)

		if !reflect.DeepEqual(serial.Entries, parallel.Entries) {
			t.Fatalf("GOMAXPROCS=%d: parallel entries diverge from serial build", procs)
		}
		if len(serial.Rows) != len(parallel.Rows) {
			t.Fatalf("GOMAXPROCS=%d: row map sizes differ: %d vs %d", procs, len(serial.Rows), len(parallel.Rows))
		}
		for cp, rows := range serial.Rows {
			if !reflect.DeepEqual(rows, parallel.Rows[cp]) {
				t.Fatalf("GOMAXPROCS=%d: training rows for %v diverge", procs, cp)
			}
		}
		if got := modelBytes(t, parallel); !bytes.Equal(serialBytes, got) {
			t.Fatalf("GOMAXPROCS=%d: trained LR model bytes diverge from serial build", procs)
		}
	}
}

// TestPredictBestGOMAXPROCSInvariant pins the chunked argmin merge: the
// predicted configuration must not depend on how many workers scanned
// the space.
func TestPredictBestGOMAXPROCSInvariant(t *testing.T) {
	fixture(t)
	oa := obsOf(t, "wc", 1)
	ob := obsOf(t, "st", 5)
	stps := []STP{fix.lkt, fix.rep}
	type pred struct {
		cfg [2]mapreduce.Config
		err bool
	}
	var base []pred
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		var got []pred
		for _, s := range stps {
			cfg, err := s.PredictBest(oa, ob)
			got = append(got, pred{cfg, err != nil})
		}
		runtime.GOMAXPROCS(prev)
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("GOMAXPROCS=%d: predictions diverge: %v vs %v", procs, base, got)
		}
	}
}

// TestCOLAOGOMAXPROCSInvariant pins the parallel oracle scan the same
// way: fresh oracles at different GOMAXPROCS must agree exactly.
func TestCOLAOGOMAXPROCSInvariant(t *testing.T) {
	fixture(t)
	a := workloads.MustByName("wc")
	b := workloads.MustByName("gp")
	var base *PairBest
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		o := NewOracle(fix.model)
		pb, err := o.COLAO(a, 1024, b, 5120)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if base == nil {
			base = &pb
			continue
		}
		if pb.Cfg != base.Cfg || pb.Out.EDP != base.Out.EDP || pb.Out.Makespan != base.Out.Makespan {
			t.Fatalf("GOMAXPROCS=%d: COLAO diverged: %+v vs %+v", procs, pb, *base)
		}
	}
}

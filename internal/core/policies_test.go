package core

import (
	"testing"

	"ecost/internal/workloads"
)

func runner(t *testing.T) *PolicyRunner {
	t.Helper()
	fixture(t)
	// The fixture database is coarse (stride 13), where the lookup table
	// is the reliable tuner; REPTree's coverage-dependent accuracy is
	// exercised by the experiments package at full fidelity.
	return &PolicyRunner{
		Oracle:   fix.oracle,
		DB:       fix.db,
		Tuner:    fix.lkt,
		Profiler: fix.profiler,
	}
}

// smallWorkload keeps policy tests fast: six jobs, two classes.
func smallWorkload() Workload {
	names := []string{"st", "nb", "pr", "st", "km", "pr"}
	w := Workload{Name: "test6"}
	for i, n := range names {
		w.Jobs = append(w.Jobs, JobSpec{App: workloads.MustByName(n), SizeGB: []float64{5, 1}[i%2]})
	}
	return w
}

func TestScenariosWellFormed(t *testing.T) {
	ws := Scenarios()
	if len(ws) != 8 {
		t.Fatalf("%d scenarios, want 8", len(ws))
	}
	for _, w := range ws {
		if len(w.Jobs) != 16 {
			t.Errorf("%s has %d jobs, want 16", w.Name, len(w.Jobs))
		}
		for _, j := range w.Jobs {
			if j.SizeGB != 1 && j.SizeGB != 5 && j.SizeGB != 10 {
				t.Errorf("%s: size %v not in the studied set", w.Name, j.SizeGB)
			}
		}
	}
	if _, err := Scenario("WS9"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestScenarioClassSignatures(t *testing.T) {
	// Spot-check the paper's Table 3 class rows.
	ws1, err := Scenario("WS1")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range ws1.Jobs {
		if j.App.Class != workloads.Compute {
			t.Fatalf("WS1 must be all-C; %s is %v", j.App.Name, j.App.Class)
		}
	}
	ws3, err := Scenario("WS3")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range ws3.Jobs {
		if j.App.Name != "st" {
			t.Fatalf("WS3 must be all sort; got %s", j.App.Name)
		}
	}
	ws8, err := Scenario("WS8")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[workloads.Class]bool{}
	for _, j := range ws8.Jobs {
		seen[j.App.Class] = true
	}
	if len(seen) != 4 {
		t.Fatalf("WS8 must cover all 4 classes, saw %d", len(seen))
	}
}

func TestPolicyStrings(t *testing.T) {
	want := []string{"SM", "MNM1", "MNM2", "SNM", "CBM", "PTM", "ECoST", "UB"}
	ps := Policies()
	if len(ps) != len(want) {
		t.Fatalf("%d policies", len(ps))
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("policy %d = %q, want %q", i, p, want[i])
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy has empty name")
	}
}

func TestAllPoliciesRun(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	for _, nodes := range []int{1, 2} {
		for _, p := range Policies() {
			res, err := r.Run(p, wl, nodes)
			if err != nil {
				t.Fatalf("%v on %d nodes: %v", p, nodes, err)
			}
			if res.EDP <= 0 || res.Makespan <= 0 || res.EnergyJ <= 0 {
				t.Errorf("%v on %d nodes: non-positive result %+v", p, nodes, res)
			}
			if res.Policy != p || res.Nodes != nodes {
				t.Errorf("%v result mislabelled: %+v", p, res)
			}
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	r := runner(t)
	if _, err := r.Run(SM, smallWorkload(), 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := r.Run(SM, Workload{}, 2); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := r.Run(Policy(99), smallWorkload(), 2); err == nil {
		t.Error("unknown policy accepted")
	}
	bare := &PolicyRunner{Oracle: fix.oracle}
	if _, err := bare.Run(ECoST, smallWorkload(), 2); err == nil {
		t.Error("ECoST without database accepted")
	}
	if _, err := bare.Run(PTM, smallWorkload(), 2); err == nil {
		t.Error("PTM without database accepted")
	}
}

func TestUBIsLowerBoundAmongPairedPolicies(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	ub, err := r.Run(UB, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{SNM, CBM, ECoST} {
		res, err := r.Run(p, wl, 2)
		if err != nil {
			t.Fatal(err)
		}
		// UB does a brute-force matching + tuning; a heuristic policy
		// should not beat it by more than scheduling noise.
		if res.EDP < ub.EDP*0.98 {
			t.Errorf("%v EDP %g beats UB %g", p, res.EDP, ub.EDP)
		}
	}
}

func TestTuningBeatsUntuned(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	snm, err := r.Run(SNM, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	ptm, err := r.Run(PTM, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ptm.EDP >= snm.EDP {
		t.Errorf("PTM (tuned, %g) not better than SNM (untuned, %g)", ptm.EDP, snm.EDP)
	}
}

func TestECoSTBeatsUntunedPolicies(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	ec, err := r.Run(ECoST, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{SM, SNM, CBM} {
		res, err := r.Run(p, wl, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ec.EDP >= res.EDP {
			t.Errorf("ECoST (%g) not better than untuned %v (%g)", ec.EDP, p, res.EDP)
		}
	}
}

func TestMoreNodesReduceMakespan(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	for _, p := range []Policy{SNM, ECoST, UB} {
		one, err := r.Run(p, wl, 1)
		if err != nil {
			t.Fatal(err)
		}
		four, err := r.Run(p, wl, 4)
		if err != nil {
			t.Fatal(err)
		}
		if four.Makespan >= one.Makespan {
			t.Errorf("%v makespan did not improve with nodes: %g vs %g", p, four.Makespan, one.Makespan)
		}
	}
}

func TestSpreadPoliciesDegenerateGracefully(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	// On one node MNM1/MNM2 must fall back to SM-like behaviour, not fail.
	sm, err := r.Run(SM, wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := r.Run(MNM1, wl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1.EDP != sm.EDP {
		t.Errorf("MNM1 on 1 node EDP %g, want SM's %g", m1.EDP, sm.EDP)
	}
}

func TestNTConfig(t *testing.T) {
	cfg := NTConfig(8)
	if err := cfg.Validate(8); err != nil {
		t.Fatal(err)
	}
	if cfg.Freq != 2.4 || cfg.Block != 128 {
		t.Errorf("NT config = %v, want stock defaults", cfg)
	}
}

func TestOddWorkloadECoST(t *testing.T) {
	r := runner(t)
	wl := smallWorkload()
	wl.Jobs = wl.Jobs[:5] // odd count: one job must run solo
	res, err := r.Run(ECoST, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.EDP <= 0 {
		t.Fatal("odd workload produced no result")
	}
	ub, err := r.Run(UB, wl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ub.EDP <= 0 {
		t.Fatal("UB failed on odd workload")
	}
}

func TestUBMatchingRejectsHugeWorkloads(t *testing.T) {
	r := runner(t)
	var wl Workload
	for i := 0; i < 21; i++ {
		wl.Jobs = append(wl.Jobs, JobSpec{App: workloads.MustByName("st"), SizeGB: 1})
	}
	if _, err := r.Run(UB, wl, 2); err == nil {
		t.Error("UB accepted a 21-job matching")
	}
}

package core

import (
	"bytes"
	"math"
	"runtime"
	"sort"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// shardedResult captures every externally observable artifact of one
// fully instrumented sharded run: per-shard exports concatenated in
// shard order (the deterministic merge order the CLI uses too).
type shardedResult struct {
	makespan, energy uint64 // float bits
	perShard         []equivResult
	steals           int
	completed        int

	// stats is how the run drove its shards (barriers vs windows). Not
	// part of export equality — the elision property tests read it to
	// prove both cadences were actually exercised.
	stats BarrierStats
}

// runSharded drives one fully instrumented sharded run. submit feeds
// the stream; every shard gets its own registry, tracer, and audit log,
// and the tuner chain mirrors equivRun's (MemoSTP under MeteredSTP on
// the shard's registry) so a 1-shard run is comparable byte for byte
// with the unsharded scheduler.
func runSharded(t *testing.T, nodes int, cfg ShardedConfig, submit func(c *ShardedScheduler)) shardedResult {
	return runShardedMode(t, nodes, cfg, false, submit)
}

// runShardedMode is runSharded with the drive cadence explicit:
// fullBarriers true selects the exact lock-step reference path the
// elision goldens diff against.
func runShardedMode(t *testing.T, nodes int, cfg ShardedConfig, fullBarriers bool, submit func(c *ShardedScheduler)) shardedResult {
	t.Helper()
	fixture(t)
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	regs := make([]*metrics.Registry, 0, cfg.Shards)
	newTuner := func() STP {
		reg := metrics.NewRegistry()
		regs = append(regs, reg)
		return NewMeteredSTP(NewMemoSTP(fix.lkt, reg), fix.model, reg)
	}
	c, err := NewShardedScheduler(fix.model, fix.db, prof, newTuner, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tracers := make([]*tracing.Tracer, cfg.Shards)
	auds := make([]*audit.Log, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		sh := c.Shard(i)
		sh.SetMetrics(regs[i])
		tracers[i] = tracing.New(sh.Engine.Clock())
		sh.SetTracer(tracers[i])
		auds[i] = audit.NewLog(audit.DriftConfig{})
		sh.SetAudit(auds[i])
	}
	c.SetFullBarriers(fullBarriers)
	submit(c)
	mk, en, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := shardedResult{
		makespan:  math.Float64bits(mk),
		energy:    math.Float64bits(en),
		steals:    c.Steals(),
		completed: len(c.Completed()),
		stats:     c.BarrierStats(),
	}
	for i := 0; i < cfg.Shards; i++ {
		var snap, tl, dec bytes.Buffer
		if err := regs[i].Snapshot(false).WriteText(&snap); err != nil {
			t.Fatal(err)
		}
		if err := tracers[i].WriteTimeline(&tl); err != nil {
			t.Fatal(err)
		}
		if err := auds[i].WriteJSONL(&dec); err != nil {
			t.Fatal(err)
		}
		out.perShard = append(out.perShard, equivResult{
			snapshot:  snap.String(),
			timeline:  tl.String(),
			decisions: dec.String(),
		})
	}
	return out
}

// submitWS4 feeds the equivRun stream: the WS4 scenario, one job every
// 40 s.
func submitWS4(t *testing.T) func(c *ShardedScheduler) {
	wl, err := Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	return func(c *ShardedScheduler) {
		for i, j := range wl.Jobs {
			c.Submit(j.App, j.SizeGB, float64(i)*40)
		}
	}
}

// TestShardedSingleShardEquivalence is the acceptance golden: a 1-shard
// sharded run must be byte-identical to the unsharded optimized
// scheduler — makespan and energy bits, the deterministic metrics
// snapshot, the span timeline, and the decision JSONL — at GOMAXPROCS
// 1 and 4. The router profiles serially at submission instead of
// inside arrival events, so this also proves the profiling-order
// contract (nondecreasing arrivals ⇒ identical sampler draws).
func TestShardedSingleShardEquivalence(t *testing.T) {
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		legacy := equivRun(t, false)
		sharded := runSharded(t, 2, ShardedConfig{Shards: 1}, submitWS4(t))
		runtime.GOMAXPROCS(old)
		if sharded.makespan != legacy.makespan || sharded.energy != legacy.energy {
			t.Fatalf("GOMAXPROCS=%d: sharded (makespan %x energy %x) != legacy (makespan %x energy %x)",
				procs, sharded.makespan, sharded.energy, legacy.makespan, legacy.energy)
		}
		got := sharded.perShard[0]
		if got.snapshot != legacy.snapshot {
			t.Fatalf("GOMAXPROCS=%d: metrics snapshot diverged:\n--- sharded ---\n%s\n--- legacy ---\n%s",
				procs, got.snapshot, legacy.snapshot)
		}
		if got.timeline != legacy.timeline {
			t.Fatalf("GOMAXPROCS=%d: timeline diverged:\n--- sharded ---\n%s\n--- legacy ---\n%s",
				procs, got.timeline, legacy.timeline)
		}
		if got.decisions != legacy.decisions {
			t.Fatalf("GOMAXPROCS=%d: decision JSONL diverged:\n--- sharded ---\n%s\n--- legacy ---\n%s",
				procs, got.decisions, legacy.decisions)
		}
	}
}

// shardedExportsEqual compares two instrumented runs artifact by
// artifact.
func shardedExportsEqual(t *testing.T, label string, a, b shardedResult) {
	t.Helper()
	if a.makespan != b.makespan || a.energy != b.energy || a.steals != b.steals || a.completed != b.completed {
		t.Fatalf("%s: scalar divergence: makespan %x/%x energy %x/%x steals %d/%d completed %d/%d",
			label, a.makespan, b.makespan, a.energy, b.energy, a.steals, b.steals, a.completed, b.completed)
	}
	if a.stats != b.stats {
		t.Fatalf("%s: drive cadence diverged: %+v vs %+v", label, a.stats, b.stats)
	}
	for i := range a.perShard {
		if a.perShard[i] != b.perShard[i] {
			t.Fatalf("%s: shard %d exports diverged", label, i)
		}
	}
}

// skewedStream sends `jobs` copies of one application, which all hash
// to a single home shard — the adversarial input for work stealing.
func skewedStream(t *testing.T, jobs int, gap float64) func(c *ShardedScheduler) {
	app := workloads.MustByName("wc")
	return func(c *ShardedScheduler) {
		for i := 0; i < jobs; i++ {
			c.Submit(app, 5, float64(i)*gap)
		}
	}
}

// TestShardedGOMAXPROCSInvariance proves the lock-step epoch loop makes
// every export a pure function of the stream at any GOMAXPROCS — with
// stealing off (balanced WS4 stream) and on (skewed single-tenant
// stream, where the steal pass must actually fire).
func TestShardedGOMAXPROCSInvariance(t *testing.T) {
	cases := []struct {
		name   string
		cfg    ShardedConfig
		stream func(c *ShardedScheduler)
		steals bool
	}{
		{"steal-off", ShardedConfig{Shards: 4}, submitWS4(t), false},
		{"steal-on", ShardedConfig{Shards: 4, Steal: true}, skewedStream(t, 48, 10), true},
	}
	for _, tc := range cases {
		var base shardedResult
		for i, procs := range []int{1, 4} {
			old := runtime.GOMAXPROCS(procs)
			got := runSharded(t, 8, tc.cfg, tc.stream)
			runtime.GOMAXPROCS(old)
			if tc.steals && got.steals == 0 {
				t.Fatalf("%s: steal pass never fired — the invariance case is vacuous", tc.name)
			}
			if i == 0 {
				base = got
				continue
			}
			shardedExportsEqual(t, tc.name, base, got)
		}
	}
}

// TestShardedShardCountInvariance is the global golden: for a
// steal-free, temporally non-overlapping stream (every job finishes
// before the next arrives, so pairing and queueing never couple jobs),
// the makespan is bit-identical at every shard count and the energy
// agrees to 1e-9 relative (per-shard summation reassociates the float
// adds). Overlapping streams do diverge across shard counts — routing
// changes who pairs with whom — which is why the contract is scoped to
// steal-free, non-interacting runs (DESIGN.md §14).
func TestShardedShardCountInvariance(t *testing.T) {
	fixture(t)
	wl, err := Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	const nodes, jobs = 16, 12
	const gap = 5e4 // comfortably above any solo 5 GB runtime
	type runOut struct {
		mk     uint64
		en     float64
		phases [3]float64
		comp   []CompletedJob
	}
	var runs []runOut
	for _, shards := range []int{1, 2, 4, 8, 16} {
		prof := NewProfiler(fix.model, sim.NewRNG(99))
		c, err := NewShardedScheduler(fix.model, fix.db, prof,
			func() STP { return NewMemoSTP(fix.lkt, nil) }, nodes, ShardedConfig{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < jobs; i++ {
			j := wl.Jobs[i%len(wl.Jobs)]
			c.Submit(j.App, j.SizeGB, float64(i)*gap)
		}
		mk, en, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		p := c.Phases()
		runs = append(runs, runOut{
			mk:     math.Float64bits(mk),
			en:     en,
			phases: [3]float64{p.IdleJ, p.SoloJ, p.CoJ},
			comp:   c.Completed(),
		})
	}
	// The premise: jobs must not overlap in time, or the contract does
	// not apply. Verified on the 1-shard run.
	comp := append([]CompletedJob(nil), runs[0].comp...)
	sort.Slice(comp, func(i, j int) bool { return comp[i].Started < comp[j].Started })
	for i := 1; i < len(comp); i++ {
		if comp[i].Started < comp[i-1].Finished {
			t.Fatalf("stream not temporally disjoint: job %d starts %.0f before job %d finishes %.0f — widen gap",
				comp[i].ID, comp[i].Started, comp[i-1].ID, comp[i-1].Finished)
		}
	}
	relDiff := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].mk != runs[0].mk {
			t.Fatalf("makespan diverged across shard counts: %x (S variant %d) != %x (S=1)", runs[i].mk, i, runs[0].mk)
		}
		if d := relDiff(runs[i].en, runs[0].en); d > 1e-9 {
			t.Fatalf("energy diverged across shard counts: rel %g (%.6f vs %.6f)", d, runs[i].en, runs[0].en)
		}
		for p := 0; p < 3; p++ {
			if d := relDiff(runs[i].phases[p], runs[0].phases[p]); d > 1e-9 {
				t.Fatalf("phase %d energy diverged: rel %g", p, d)
			}
		}
		if len(runs[i].comp) != jobs {
			t.Fatalf("variant %d completed %d jobs, want %d", i, len(runs[i].comp), jobs)
		}
		// Same jobs finish at the same times (node ids legitimately
		// differ — routing owns placement).
		for k := range runs[i].comp {
			a, b := runs[i].comp[k], runs[0].comp[k]
			if a.ID != b.ID || math.Float64bits(a.Finished) != math.Float64bits(b.Finished) {
				t.Fatalf("variant %d: completion %d = job %d @%v, S=1 has job %d @%v",
					i, k, a.ID, a.Finished, b.ID, b.Finished)
			}
		}
	}
}

// TestShardedStealEffectiveness documents both halves of the stealing
// contract on a skewed single-tenant stream: with stealing on, starved
// shards absorb the overload (strictly smaller makespan than steal-off,
// all jobs complete) — and the moment steals fire, the run diverges
// from the steal-free golden (the bounded-divergence caveat in
// DESIGN.md §14). Two steal-on runs must still be identical to each
// other: steals are a function of sim time, not goroutine timing.
func TestShardedStealEffectiveness(t *testing.T) {
	fixture(t)
	const nodes, jobs = 8, 48
	run := func(steal bool) (float64, float64, int) {
		prof := NewProfiler(fix.model, sim.NewRNG(99))
		c, err := NewShardedScheduler(fix.model, fix.db, prof,
			func() STP { return NewMemoSTP(fix.lkt, nil) }, nodes,
			ShardedConfig{Shards: 4, Steal: steal})
		if err != nil {
			t.Fatal(err)
		}
		skewedStream(t, jobs, 10)(c)
		mk, en, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := len(c.Completed()); got != jobs {
			t.Fatalf("steal=%v: completed %d, want %d", steal, got, jobs)
		}
		return mk, en, c.Steals()
	}
	mkOff, _, stealsOff := run(false)
	mkOn, _, stealsOn := run(true)
	mkOn2, _, stealsOn2 := run(true)
	if stealsOff != 0 {
		t.Fatalf("steal-off run recorded %d steals", stealsOff)
	}
	if stealsOn == 0 {
		t.Fatal("skewed stream never triggered a steal")
	}
	if mkOn >= mkOff {
		t.Fatalf("stealing did not help: makespan %v (on) vs %v (off)", mkOn, mkOff)
	}
	if math.Float64bits(mkOn) == math.Float64bits(mkOff) {
		t.Fatal("steal-on run identical to steal-off — divergence documentation is vacuous")
	}
	if math.Float64bits(mkOn) != math.Float64bits(mkOn2) || stealsOn != stealsOn2 {
		t.Fatalf("steal-on runs nondeterministic: makespan %v/%v steals %d/%d", mkOn, mkOn2, stealsOn, stealsOn2)
	}
	t.Logf("skewed stream: makespan %.0f s (steal off) → %.0f s (steal on, %d steals)", mkOff, mkOn, stealsOn)
}

// TestFastAccrualGolden proves the O(1) aggregate accrual path against
// the per-node walk: identical placements and makespan to the bit, and
// energy (total and per phase) within 1e-9 relative — the documented
// reassociation tolerance.
func TestFastAccrualGolden(t *testing.T) {
	fixture(t)
	wl, err := Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	run := func(fast bool) (uint64, float64, [3]float64, []CompletedJob) {
		eng := sim.NewEngine()
		prof := NewProfiler(fix.model, sim.NewRNG(17))
		s, err := NewOnlineScheduler(eng, fix.model, fix.db, NewMemoSTP(fix.lkt, nil), prof, 64)
		if err != nil {
			t.Fatal(err)
		}
		s.SetFastAccrual(fast)
		rng := sim.NewRNG(18)
		at := 0.0
		for i := 0; i < 400; i++ {
			j := wl.Jobs[i%len(wl.Jobs)]
			s.Submit(j.App, j.SizeGB, at)
			at += rng.Exp(20)
		}
		mk, en, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		p := s.Phases()
		return math.Float64bits(mk), en, [3]float64{p.IdleJ, p.SoloJ, p.CoJ}, s.Completed()
	}
	mkA, enA, phA, compA := run(false)
	mkB, enB, phB, compB := run(true)
	if mkA != mkB {
		t.Fatalf("makespan diverged: %x vs %x", mkA, mkB)
	}
	relDiff := func(a, b float64) float64 {
		if a == b {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}
	if d := relDiff(enA, enB); d > 1e-9 {
		t.Fatalf("energy diverged: rel %g (%.6f vs %.6f)", d, enA, enB)
	}
	for p := 0; p < 3; p++ {
		if d := relDiff(phA[p], phB[p]); d > 1e-9 {
			t.Fatalf("phase %d diverged: rel %g", p, d)
		}
	}
	if len(compA) != len(compB) {
		t.Fatalf("completion counts diverged: %d vs %d", len(compA), len(compB))
	}
	for i := range compA {
		if compA[i].ID != compB[i].ID || compA[i].Node != compB[i].Node ||
			math.Float64bits(compA[i].Finished) != math.Float64bits(compB[i].Finished) {
			t.Fatalf("completion %d diverged: %+v vs %+v", i, compA[i], compB[i])
		}
	}
	// With attribution consumers attached the fast path must stand down
	// (per-node walk required for span/audit energy shares).
	eng := sim.NewEngine()
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, NewMemoSTP(fix.lkt, nil), NewProfiler(fix.model, sim.NewRNG(17)), 4)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFastAccrual(true)
	s.SetTracer(tracing.New(eng.Clock()))
	s.Submit(wl.Jobs[0].App, 1, 0)
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.EnergyJ() <= 0 {
		t.Fatal("instrumented fast-accrual run accrued no energy")
	}
	if ph := s.Phases(); ph.TotalJ() <= 0 {
		t.Fatal("instrumented fast-accrual run accrued no phase energy")
	}
}

// TestRouteShardDeterministic pins the routing hash's properties: it is
// stable call to call, lands in range, and spreads the training tenants
// across shards rather than collapsing onto one.
func TestRouteShardDeterministic(t *testing.T) {
	seen := map[int]bool{}
	for _, app := range workloads.Training() {
		s := routeShard(app.Name, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("routeShard(%q, 4) = %d out of range", app.Name, s)
		}
		if s2 := routeShard(app.Name, 4); s2 != s {
			t.Fatalf("routeShard(%q, 4) unstable: %d then %d", app.Name, s, s2)
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all training tenants routed to one shard: %v", seen)
	}
}

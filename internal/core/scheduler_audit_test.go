package core

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// auditedRun drives one fully-instrumented online simulation (same
// workload and seed as tracedRun/metricsRun) with the audit log,
// metrics registry, and tracer all attached.
func auditedRun(t *testing.T) (*audit.Log, *metrics.Registry, *tracing.Tracer, *OnlineScheduler) {
	t.Helper()
	fixture(t)
	eng := sim.NewEngine()
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.lkt, prof, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)
	aud := audit.NewLog(audit.DriftConfig{})
	s.SetAudit(aud)
	tr := tracing.New(eng.Clock())
	s.SetTracer(tr)
	apps := []string{"nb", "pr", "km", "svm", "cf", "hmm", "st", "ts"}
	for i, name := range apps {
		s.Submit(workloads.MustByName(name), 5, float64(i)*40)
	}
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return aud, reg, tr, s
}

// TestSchedulerAuditBranches cross-checks the audit log's recorded
// decision-tree branches against the scheduler's own metrics counters.
func TestSchedulerAuditBranches(t *testing.T) {
	aud, reg, _, _ := auditedRun(t)
	decisions := aud.Decisions()
	if len(decisions) != 8 {
		t.Fatalf("decisions = %d, want 8", len(decisions))
	}
	counts := map[audit.Branch]int{}
	for _, d := range decisions {
		if !d.Done {
			t.Errorf("job %d not marked done", d.Job)
		}
		if d.Node < 0 || d.Branch == audit.BranchNone {
			t.Errorf("job %d never placed: %+v", d.Job, d)
		}
		counts[d.Branch]++
		if d.Branch == audit.BranchPairLeap && d.LeapOver < 0 {
			t.Errorf("job %d leapt but records no head: %+v", d.Job, d)
		}
		if d.Branch != audit.BranchPairLeap && d.LeapOver != -1 {
			t.Errorf("job %d did not leap but records leap_over=%d", d.Job, d.LeapOver)
		}
		if d.Method != fix.lkt.Name() {
			t.Errorf("job %d method %q, want %q", d.Job, d.Method, fix.lkt.Name())
		}
		if d.Config == "" || d.Path == audit.TuneNone {
			t.Errorf("job %d has no tuning record: %+v", d.Job, d)
		}
	}
	if counts[audit.BranchReserve] == 0 {
		t.Error("no reserve placements recorded")
	}
	pairs := counts[audit.BranchPairHead] + counts[audit.BranchPairLeap]
	if pairs == 0 {
		t.Error("no pairings recorded")
	}
	if got := int(reg.Counter("sched.reservations").Value()); got != counts[audit.BranchReserve] {
		t.Errorf("reservations counter %d != audit reserve branches %d", got, counts[audit.BranchReserve])
	}
	if got := int(reg.Counter("sched.pairings").Value()); got != pairs {
		t.Errorf("pairings counter %d != audit pair branches %d", got, pairs)
	}
	if got := int(reg.Counter("sched.leaps").Value()); got != counts[audit.BranchPairLeap] {
		t.Errorf("leaps counter %d != audit leap branches %d", got, counts[audit.BranchPairLeap])
	}
	if got := len(aud.Pairings()); got != pairs {
		t.Errorf("pairing records %d != pair placements %d", got, pairs)
	}
	// Every pairing marked both partners and carried the pair forecast
	// when the pair tuning path fired.
	byID := map[int]audit.Decision{}
	for _, d := range decisions {
		byID[d.Job] = d
	}
	for _, p := range aud.Pairings() {
		r, in := byID[p.Resident], byID[p.Incoming]
		if !r.Colocated || !in.Colocated {
			t.Errorf("pairing %d+%d members not marked colocated", p.Resident, p.Incoming)
		}
		if in.Path == audit.TunePair && p.Pred.EDP <= 0 {
			t.Errorf("pair-tuned pairing %d+%d has no forecast", p.Resident, p.Incoming)
		}
		if in.Path == audit.TunePair && r.Retune == "" {
			t.Errorf("pair-tuned pairing %d+%d did not retune the resident", p.Resident, p.Incoming)
		}
	}
}

// TestSchedulerAuditLeapForward crafts a guaranteed leap-forward: one
// node runs two same-class jobs; two more queue behind them, the head
// from the class the partner-priority order ranks last, behind it one
// from the class it ranks first. When a slot opens the decision tree
// must leap the later job past the reserved head — and the audit log
// must say so.
func TestSchedulerAuditLeapForward(t *testing.T) {
	fixture(t)
	// Pick the apps by what the fixture database actually ranks.
	base := workloads.MustByName("nb") // Compute
	prio := fix.db.PartnerPriority(base.Class)
	appOf := map[workloads.Class]string{}
	for _, a := range workloads.Apps() {
		if _, ok := appOf[a.Class]; !ok {
			appOf[a.Class] = a.Name
		}
	}
	headApp := workloads.MustByName(appOf[prio[len(prio)-1]])
	leapApp := workloads.MustByName(appOf[prio[0]])
	if headApp.Class == leapApp.Class {
		t.Fatalf("degenerate priority order %v", prio)
	}

	eng := sim.NewEngine()
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.lkt, prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)
	aud := audit.NewLog(audit.DriftConfig{})
	s.SetAudit(aud)

	s.Submit(base, 5, 0)    // job 0: reserve (empty node)
	s.Submit(base, 5, 1)    // job 1: pair with the head's reservation intact
	s.Submit(headApp, 5, 2) // job 2: queues as head — node is full
	s.Submit(leapApp, 5, 3) // job 3: queues behind, better partner class
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	byID := map[int]audit.Decision{}
	for _, d := range aud.Decisions() {
		byID[d.Job] = d
	}
	if b := byID[0].Branch; b != audit.BranchReserve {
		t.Errorf("job 0 branch %v, want reserve", b)
	}
	if b := byID[1].Branch; b != audit.BranchPairHead {
		t.Errorf("job 1 branch %v, want pair_head", b)
	}
	leap := byID[3]
	if leap.Branch != audit.BranchPairLeap {
		t.Fatalf("job 3 branch %v, want pair_leap (decisions: %+v)", leap.Branch, aud.Decisions())
	}
	if leap.LeapOver != 2 {
		t.Errorf("job 3 leapt over %d, want head job 2", leap.LeapOver)
	}
	if got := int(reg.Counter("sched.leaps").Value()); got < 1 {
		t.Errorf("leaps counter %d, want >= 1", got)
	}
	var leapEvents int
	for _, e := range reg.Events() {
		if e.Kind == metrics.EvLeap && e.Job == 3 {
			leapEvents++
			if !strings.Contains(e.Detail, "over=2") {
				t.Errorf("leap event detail %q does not name the head", e.Detail)
			}
		}
	}
	if leapEvents == 0 {
		t.Error("no EvLeap event for the leaping job")
	}
	// The leapt-over head still completes, placed by a later branch.
	if head := byID[2]; !head.Done || head.Branch == audit.BranchNone {
		t.Errorf("leapt-over head never placed/completed: %+v", head)
	}
}

// TestSchedulerAuditRealizedMatchesTracing asserts the audit log's
// realized energy join is bit-identical to the tracer's span-attributed
// job report: both views bill the same equal-share division of the same
// accrual intervals, so the float64s must be exactly equal.
func TestSchedulerAuditRealizedMatchesTracing(t *testing.T) {
	aud, _, tr, _ := auditedRun(t)
	byID := map[int]audit.Decision{}
	for _, d := range aud.Decisions() {
		byID[d.Job] = d
	}
	rep := tr.Report()
	if len(rep.Jobs) != len(byID) {
		t.Fatalf("report jobs %d != audit decisions %d", len(rep.Jobs), len(byID))
	}
	for _, j := range rep.Jobs {
		d, ok := byID[j.Job]
		if !ok {
			t.Fatalf("report job %d missing from audit log", j.Job)
		}
		if d.EnergyJ != j.EnergyJ {
			t.Errorf("job %d audit energy %v != trace energy %v", j.Job, d.EnergyJ, j.EnergyJ)
		}
		if d.RunS != j.RunS {
			t.Errorf("job %d audit run %v != trace run %v", j.Job, d.RunS, j.RunS)
		}
		if d.EDP != j.EDP {
			t.Errorf("job %d audit EDP %v != trace EDP %v", j.Job, d.EDP, j.EDP)
		}
	}
}

// TestSchedulerAuditQualityPopulated is the tentpole acceptance check:
// a seeded online run must yield a populated confusion matrix,
// per-class STP error histograms, at least one oracle-regret row — and
// no drift alerts under the default detector configuration.
func TestSchedulerAuditQualityPopulated(t *testing.T) {
	aud, reg, _, _ := auditedRun(t)
	r := aud.Quality(NewAuditOracle(fix.oracle))
	if r.Jobs != 8 || r.Completed != 8 {
		t.Fatalf("jobs %d completed %d, want 8/8", r.Jobs, r.Completed)
	}
	if len(r.Confusion) == 0 || len(r.Classes) == 0 {
		t.Fatal("confusion matrix empty")
	}
	var diag int
	for _, c := range r.Confusion {
		diag += c.N
	}
	if diag != r.Jobs {
		t.Errorf("confusion cells sum to %d, want %d", diag, r.Jobs)
	}
	if r.Accuracy <= 0 {
		t.Error("zero classifier accuracy on a workload the classifier handles")
	}
	if r.Joined == 0 || len(r.Hist) == 0 {
		t.Fatalf("no prediction joins (joined=%d hist=%d)", r.Joined, len(r.Hist))
	}
	for _, h := range r.Hist {
		if h.Count == 0 {
			t.Errorf("class %s histogram empty", h.Class)
		}
	}
	if len(r.Interference) == 0 {
		t.Error("no interference rows for a workload that pairs")
	}
	for _, row := range r.Interference {
		if row.Ratio <= 0 {
			t.Errorf("interference row %+v has non-positive ratio", row)
		}
	}
	if len(r.Regret) == 0 {
		t.Error("no oracle regret rows for a workload that pairs")
	}
	for _, row := range r.Regret {
		if row.OracleEDP <= 0 || row.RealEDP <= 0 {
			t.Errorf("regret row %+v has non-positive EDP", row)
		}
	}
	if r.OracleErrors != 0 {
		t.Errorf("oracle errors = %d, want 0", r.OracleErrors)
	}
	// Healthy run: the default CUSUM stays quiet, and the mirrored
	// instruments agree.
	if len(r.Drift.Alerts) != 0 {
		t.Errorf("drift alerts on a healthy run: %+v", r.Drift.Alerts)
	}
	if v := reg.Gauge("stp.drift_alert").Value(); v != 0 {
		t.Errorf("stp.drift_alert = %v, want 0", v)
	}
	if v := reg.Counter("audit.drift_alerts").Value(); v != 0 {
		t.Errorf("audit.drift_alerts = %d, want 0", v)
	}
	// Joins were mirrored into per-class histograms.
	var mirrored int64
	for _, h := range r.Hist {
		mirrored += reg.Histogram("audit.rel_err_pct."+h.Class, nil).Count()
	}
	if mirrored != int64(r.Joined) {
		t.Errorf("mirrored rel-err observations = %d, want %d", mirrored, r.Joined)
	}
}

// auditRenders renders the two -serve/-quality exports from one run.
func auditRenders(t *testing.T, aud *audit.Log) (jsonl, quality string) {
	t.Helper()
	var b1, b2 bytes.Buffer
	if err := aud.WriteJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := aud.Quality(NewAuditOracle(fix.oracle)).WriteText(&b2); err != nil {
		t.Fatal(err)
	}
	return b1.String(), b2.String()
}

// TestSchedulerAuditGoldenAcrossGOMAXPROCS is the determinism
// acceptance golden: /decisions (JSONL) and /quality (text) must be
// byte-identical between a single-threaded and a multi-threaded run of
// the same seed.
func TestSchedulerAuditGoldenAcrossGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	aud1, _, _, _ := auditedRun(t)
	jsonl1, quality1 := auditRenders(t, aud1)
	runtime.GOMAXPROCS(4)
	aud4, _, _, _ := auditedRun(t)
	runtime.GOMAXPROCS(old)
	jsonl4, quality4 := auditRenders(t, aud4)
	if jsonl1 != jsonl4 {
		t.Errorf("decision JSONL diverged across GOMAXPROCS:\n--- 1 ---\n%s\n--- 4 ---\n%s", jsonl1, jsonl4)
	}
	if quality1 != quality4 {
		t.Errorf("quality report diverged across GOMAXPROCS:\n--- 1 ---\n%s\n--- 4 ---\n%s", quality1, quality4)
	}
	// And stable across renders of the same log.
	j, q := auditRenders(t, aud1)
	if j != jsonl1 || q != quality1 {
		t.Error("renders not byte-stable")
	}
}

// TestDriftAlertStaleDatabase is the injected-staleness acceptance
// scenario: train the STP database on small inputs only, then run much
// larger jobs through it. The size-extrapolation error must trip the
// drift detector at its default configuration, latch the gauge, and
// land EvDrift events in the metrics log.
func TestDriftAlertStaleDatabase(t *testing.T) {
	fixture(t)
	prof := NewProfiler(fix.model, sim.NewRNG(7))
	stale, err := BuildDatabase(prof, fix.oracle, workloads.Training(), BuildOptions{
		Sizes:        []float64{1},
		ConfigStride: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	s, err := NewOnlineScheduler(eng, fix.model, stale, &LkTSTP{DB: stale}, NewProfiler(fix.model, sim.NewRNG(99)), 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)
	aud := audit.NewLog(audit.DriftConfig{})
	s.SetAudit(aud)
	apps := []string{"nb", "pr", "km", "svm", "cf", "hmm", "st", "ts"}
	for i, name := range apps {
		s.Submit(workloads.MustByName(name), 12, float64(i)*40)
	}
	if _, _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	alerts := aud.Alerts()
	if len(alerts) == 0 {
		t.Fatalf("stale database tripped no drift alert (joins: %+v)", aud.Joins())
	}
	if v := reg.Gauge("stp.drift_alert").Value(); v != 1 {
		t.Errorf("stp.drift_alert = %v, want latched 1", v)
	}
	if got := reg.Counter("audit.drift_alerts").Value(); got != int64(len(alerts)) {
		t.Errorf("audit.drift_alerts = %d, want %d", got, len(alerts))
	}
	var drifts int
	for _, e := range reg.Events() {
		if e.Kind == metrics.EvDrift {
			drifts++
			if !strings.Contains(e.Detail, "cusum stat=") {
				t.Errorf("drift event detail %q", e.Detail)
			}
		}
	}
	if drifts != len(alerts) {
		t.Errorf("EvDrift events = %d, want %d", drifts, len(alerts))
	}
	r := aud.Quality(nil)
	if len(r.Drift.Alerts) != len(alerts) {
		t.Errorf("quality report alerts = %d, want %d", len(r.Drift.Alerts), len(alerts))
	}
}

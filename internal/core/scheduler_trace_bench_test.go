package core

import (
	"io"
	"testing"

	"ecost/internal/sim"
	"ecost/internal/tracing"
)

// BenchmarkTraceExport measures exporting the full span set of a traced
// 16-job WS4 online run as Chrome trace_event JSON — the cost of one
// -trace-out write or one /trace scrape. The run itself happens once
// outside the timed region; the export is what repeats per request.
func BenchmarkTraceExport(b *testing.B) {
	fixture(b)
	wl, err := Scenario("WS4")
	if err != nil {
		b.Fatal(err)
	}
	eng := sim.NewEngine()
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.lkt,
		NewProfiler(fix.model, sim.NewRNG(99)), 2)
	if err != nil {
		b.Fatal(err)
	}
	tr := tracing.New(eng.Clock())
	s.SetTracer(tr)
	for i, j := range wl.Jobs {
		s.Submit(j.App, j.SizeGB, float64(i)*40)
	}
	if _, _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.WriteChromeTrace(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"ecost/internal/workloads"
)

func TestDatabaseRoundTrip(t *testing.T) {
	fixture(t)
	var buf bytes.Buffer
	if err := fix.db.SaveDatabase(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatabase(&buf, fix.oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Entries) != len(fix.db.Entries) {
		t.Fatalf("entries: %d vs %d", len(loaded.Entries), len(fix.db.Entries))
	}
	for i := range loaded.Entries {
		a, b := loaded.Entries[i], fix.db.Entries[i]
		if a.A.App.Name != b.A.App.Name || a.B.SizeGB != b.B.SizeGB {
			t.Fatalf("entry %d identity changed", i)
		}
		if a.Best.Cfg != b.Best.Cfg || a.Best.Out.EDP != b.Best.Out.EDP {
			t.Fatalf("entry %d payload changed: %+v vs %+v", i, a.Best, b.Best)
		}
	}
	// The rebuilt classifier must behave identically on clean features.
	for _, app := range workloads.Apps() {
		o, err := fix.profiler.ObserveExact(app, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := loaded.Classifier().Classify(o), fix.db.Classifier().Classify(o); got != want {
			t.Errorf("%s classified %v after reload, want %v", app.Name, got, want)
		}
	}
	// LkT lookups keep working on the reloaded database.
	oa, err := fix.profiler.Observe(workloads.MustByName("nb"), 5)
	if err != nil {
		t.Fatal(err)
	}
	lkt := &LkTSTP{DB: loaded}
	cfg, err := lkt.PredictBest(oa, oa)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg[0].Validate(8); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDatabaseRejectsGarbage(t *testing.T) {
	fixture(t)
	if _, err := LoadDatabase(strings.NewReader("nope"), fix.oracle); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadDatabase(strings.NewReader(`{"version":99,"entries":[]}`), fix.oracle); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := LoadDatabase(strings.NewReader(`{"version":1,"entries":[]}`), fix.oracle); err == nil {
		t.Error("empty database accepted")
	}
	bad := `{"version":1,"entries":[{"a":{"app":"bogus","size_gb":5,"features":[]},` +
		`"b":{"app":"wc","size_gb":5,"features":[]},"cfg":[{},{}],"edp":1}]}`
	if _, err := LoadDatabase(strings.NewReader(bad), fix.oracle); err == nil {
		t.Error("unknown application accepted")
	}
}

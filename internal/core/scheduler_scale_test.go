package core

import (
	"bytes"
	"flag"
	"math"
	"runtime"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// naiveFlag routes the large-cluster benchmarks through the legacy
// reference paths (per-accrual Steady recompute, linear dispatch and
// partner scans):
//
//	go test -bench OnlineLargeCluster -ecost.naive ./internal/core/
//
// measures the baseline the BENCH_PERF.json entries compare against.
var naiveFlag = flag.Bool("ecost.naive", false,
	"run online-scheduler benchmarks on the legacy (pre-index, pre-cache) reference path")

// equivResult captures every externally observable artifact of one
// fully instrumented online run.
type equivResult struct {
	makespan, energy uint64 // float bits: equality must be exact, not approximate
	snapshot         string
	timeline         string
	decisions        string
}

// equivRun drives one WS4 online run with metrics, tracing, and
// auditing all attached. naive selects the legacy reference paths and
// drops the memoization wrapper, so the comparison covers every
// optimized component at once.
func equivRun(t *testing.T, naive bool) equivResult {
	t.Helper()
	fixture(t)
	reg := metrics.NewRegistry()
	eng := sim.NewEngine()
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	var inner STP = fix.lkt
	if !naive {
		inner = NewMemoSTP(fix.lkt, reg)
	}
	tuner := NewMeteredSTP(inner, fix.model, reg)
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, tuner, prof, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetNaive(naive)
	s.SetMetrics(reg)
	tr := tracing.New(eng.Clock())
	s.SetTracer(tr)
	aud := audit.NewLog(audit.DriftConfig{})
	s.SetAudit(aud)
	wl, err := Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range wl.Jobs {
		s.Submit(j.App, j.SizeGB, float64(i)*40)
	}
	mk, en, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var snap, tl, dec bytes.Buffer
	if err := reg.Snapshot(false).WriteText(&snap); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTimeline(&tl); err != nil {
		t.Fatal(err)
	}
	if err := aud.WriteJSONL(&dec); err != nil {
		t.Fatal(err)
	}
	return equivResult{
		makespan:  math.Float64bits(mk),
		energy:    math.Float64bits(en),
		snapshot:  snap.String(),
		timeline:  tl.String(),
		decisions: dec.String(),
	}
}

// TestOnlineNaiveEquivalence is the tentpole acceptance golden: the
// incremental accounting + indexed dispatch + memoized tuning path
// must be bit-identical to the legacy reference — makespan, energy,
// the deterministic metrics snapshot, the span timeline, and the
// /decisions JSONL — at GOMAXPROCS 1 and 4.
func TestOnlineNaiveEquivalence(t *testing.T) {
	results := map[string]equivResult{}
	for _, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		naive := equivRun(t, true)
		opt := equivRun(t, false)
		runtime.GOMAXPROCS(old)
		if naive.makespan != opt.makespan || naive.energy != opt.energy {
			t.Fatalf("GOMAXPROCS=%d: naive (makespan %x energy %x) != optimized (makespan %x energy %x)",
				procs, naive.makespan, naive.energy, opt.makespan, opt.energy)
		}
		if naive.snapshot != opt.snapshot {
			t.Fatalf("GOMAXPROCS=%d: metrics snapshot diverged:\n--- naive ---\n%s\n--- optimized ---\n%s",
				procs, naive.snapshot, opt.snapshot)
		}
		if naive.timeline != opt.timeline {
			t.Fatalf("GOMAXPROCS=%d: timeline diverged:\n--- naive ---\n%s\n--- optimized ---\n%s",
				procs, naive.timeline, opt.timeline)
		}
		if naive.decisions != opt.decisions {
			t.Fatalf("GOMAXPROCS=%d: decision JSONL diverged:\n--- naive ---\n%s\n--- optimized ---\n%s",
				procs, naive.decisions, opt.decisions)
		}
		results["naive"] = naive
		if prev, ok := results["opt"]; ok && prev != opt {
			t.Fatalf("optimized run diverged across GOMAXPROCS values")
		}
		results["opt"] = opt
	}
}

// TestNodeSetsAgainstLinearScan steps a randomized run event by event
// and, after every event, checks the free / half-busy dispatch indexes
// against a linear scan of the node resident sets — the property the
// indexed dispatch equivalence rests on.
func TestNodeSetsAgainstLinearScan(t *testing.T) {
	fixture(t)
	eng := sim.NewEngine()
	prof := NewProfiler(fix.model, sim.NewRNG(5))
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, fix.lkt, prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	apps := workloads.Training()
	rng := sim.NewRNG(6)
	at := 0.0
	for i := 0; i < 40; i++ {
		size := 1.0
		if i%3 == 0 {
			size = 5
		}
		s.Submit(apps[i%len(apps)], size, at)
		at += rng.Exp(150)
	}
	check := func() {
		t.Helper()
		for _, n := range s.nodes {
			if got, want := s.freeSet.has(n.id), len(n.residents) == 0; got != want {
				t.Fatalf("t=%.0f node %d: freeSet=%v, residents=%d", eng.Now(), n.id, got, len(n.residents))
			}
			if got, want := s.halfSet.has(n.id), len(n.residents) == 1; got != want {
				t.Fatalf("t=%.0f node %d: halfSet=%v, residents=%d", eng.Now(), n.id, got, len(n.residents))
			}
		}
	}
	check()
	for eng.Step() {
		check()
	}
	if s.pending != 0 {
		t.Fatalf("%d jobs never completed", s.pending)
	}
	if len(s.Completed()) != 40 {
		t.Fatalf("completed %d jobs, want 40", len(s.Completed()))
	}
}

// TestOnlineLargeClusterShortSmoke is the CI scale smoke: 256 nodes ×
// 2000 jobs through the optimized path must complete (fast enough for
// -short and -race runs — the legacy path would spend minutes here).
func TestOnlineLargeClusterShortSmoke(t *testing.T) {
	fixture(t)
	const nodes, jobs = 256, 2000
	eng := sim.NewEngine()
	prof := NewProfiler(fix.model, sim.NewRNG(17))
	s, err := NewOnlineScheduler(eng, fix.model, fix.db, NewMemoSTP(fix.lkt, nil), prof, nodes)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(18)
	at := 0.0
	for i := 0; i < jobs; i++ {
		j := wl.Jobs[i%len(wl.Jobs)]
		s.Submit(j.App, j.SizeGB, at)
		at += rng.Exp(6)
	}
	mk, en, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.Completed()); got != jobs {
		t.Fatalf("completed %d jobs, want %d", got, jobs)
	}
	if mk <= 0 || en <= 0 {
		t.Fatalf("degenerate run: makespan %v, energy %v", mk, en)
	}
	for _, n := range s.nodes {
		if len(n.residents) != 0 || !s.freeSet.has(n.id) || s.halfSet.has(n.id) {
			t.Fatalf("node %d not drained: residents=%d free=%v half=%v",
				n.id, len(n.residents), s.freeSet.has(n.id), s.halfSet.has(n.id))
		}
	}
}

// queueFuzzJob builds a deterministic fuzz-driven job.
func queueFuzzJob(id int, class workloads.Class, est float64) *Job {
	return &Job{ID: id, Class: class, EstTime: est}
}

// fuzzPriorities are the priority shapes each fuzz step cross-checks:
// the standard order, a single class, empty (every class unlisted),
// and one with a duplicate (last position wins, like the map build).
func fuzzPriorities() [][]workloads.Class {
	return [][]workloads.Class{
		DefaultPriority(),
		{workloads.MemBound},
		{},
		{workloads.Compute, workloads.IOBound, workloads.Compute},
	}
}

// FuzzWaitQueueIndex drives randomized push / pop-head / take
// sequences and asserts, after every operation, that the per-class
// index's SelectPartner agrees with the legacy linear scan for every
// priority shape — the queue-index half of the indexed-dispatch
// equivalence argument.
func FuzzWaitQueueIndex(f *testing.F) {
	f.Add([]byte{0, 4, 8, 12, 1, 5, 2, 9, 3, 13, 2, 3, 7, 11, 2, 2, 2, 2})
	f.Add([]byte{0, 0, 0, 3, 3, 3, 2, 2, 2})
	f.Add([]byte{12, 8, 4, 0, 1, 3, 2, 15, 14, 13})
	f.Fuzz(func(t *testing.T, ops []byte) {
		classes := workloads.Classes()
		q := NewWaitQueue()
		next := 0
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // bias toward growth so scans see populated queues
				q.Push(queueFuzzJob(next, classes[int(op/4)%len(classes)], float64(op%7)+1))
				next++
			case 2:
				q.PopHead()
			case 3:
				if n := q.Len(); n > 0 {
					if _, err := q.Take(q.jobs[int(op/4)%n].ID); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, prio := range fuzzPriorities() {
				got := q.SelectPartner(workloads.Hybrid, prio)
				want := q.selectPartnerLinear(prio)
				if got != want {
					t.Fatalf("after %d ops, priority %v: indexed chose %+v, linear chose %+v (queue %d deep)",
						len(ops), prio, got, want, q.Len())
				}
			}
			if len(q.seq) != q.Len() {
				t.Fatalf("seq index has %d entries, queue has %d jobs", len(q.seq), q.Len())
			}
			indexed := 0
			for _, d := range q.byClass {
				if len(d) == 0 {
					t.Fatal("empty class deque left in index")
				}
				indexed += len(d)
			}
			if indexed != q.Len() {
				t.Fatalf("class index holds %d jobs, queue has %d", indexed, q.Len())
			}
		}
	})
}

// TestMemoSTPTransparency checks the memo wrapper end to end: repeat
// predictions hit, hits return the exact first answer, and the metered
// wrapper's deterministic telemetry cannot tell the cache is there.
func TestMemoSTPTransparency(t *testing.T) {
	fixture(t)
	reg := metrics.NewRegistry()
	memo := NewMemoSTP(fix.lkt, reg)
	a := obsOf(t, "wc", 5)
	b := obsOf(t, "st", 5)
	cfg1, exp1, err1 := memo.PredictBestExpected(a, b)
	cfg2, exp2, err2 := memo.PredictBestExpected(a, b)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if cfg1 != cfg2 || exp1 != exp2 {
		t.Fatalf("memoized answer diverged: %v/%v vs %v/%v", cfg1, exp1, cfg2, exp2)
	}
	wantCfg, wantExp, err := fix.lkt.PredictBestExpected(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cfg1 != wantCfg || exp1 != wantExp {
		t.Fatalf("memo answer %v/%v != inner answer %v/%v", cfg1, exp1, wantCfg, wantExp)
	}
	if hits := reg.Counter("stp.memo.hits").Value(); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
	if misses := reg.Counter("stp.memo.misses").Value(); misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
	// PredictBest shares the same cache.
	if _, err := memo.PredictBest(a, b); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter("stp.memo.hits").Value(); hits != 2 {
		t.Fatalf("hits after PredictBest = %d, want 2", hits)
	}
	// The hit/miss counters are operational telemetry: they must stay
	// out of the deterministic snapshot (golden expositions cannot
	// depend on cache effectiveness) and appear in the volatile one.
	var det, vol bytes.Buffer
	if err := reg.Snapshot(false).WriteText(&det); err != nil {
		t.Fatal(err)
	}
	if err := reg.Snapshot(true).WriteText(&vol); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(det.Bytes(), []byte("stp.memo.")) {
		t.Fatalf("memo counters leaked into the deterministic snapshot:\n%s", det.String())
	}
	if !bytes.Contains(vol.Bytes(), []byte("stp.memo.hits")) {
		t.Fatalf("memo counters missing from the volatile snapshot:\n%s", vol.String())
	}
	// MeteredSTP unwraps the memo for its deterministic scan-size proxy.
	met := NewMeteredSTP(memo, nil, metrics.NewRegistry())
	if got, want := met.scanSize(), len(fix.db.Entries); got != want {
		t.Fatalf("scanSize through memo = %d, want %d (DB entries)", got, want)
	}
}

package core

import (
	"fmt"
	"sort"

	"ecost/internal/mapreduce"
	"ecost/internal/workloads"
)

// ClassPair is an unordered pair of behaviour classes, the unit the
// paper's per-class models and priority ranking are organized around.
type ClassPair struct{ A, B workloads.Class }

// NewClassPair returns the canonical (sorted) form.
func NewClassPair(a, b workloads.Class) ClassPair {
	if b < a {
		a, b = b, a
	}
	return ClassPair{a, b}
}

// String renders "C-M" style labels like the paper's tables.
func (p ClassPair) String() string { return p.A.String() + "-" + p.B.String() }

// AllClassPairs lists the 10 unordered class pairs in the paper's order.
func AllClassPairs() []ClassPair {
	cs := workloads.Classes()
	var out []ClassPair
	for i, a := range cs {
		for _, b := range cs[i:] {
			out = append(out, NewClassPair(a, b))
		}
	}
	return out
}

// DBEntry is one database record: the COLAO-optimal configuration for a
// known co-located pair (§6.2 — "the database is populated with the best
// results for various co-located applications").
type DBEntry struct {
	A, B Observation
	Best PairBest
}

// TrainRow is one supervised example for the MLM-STP models: the two
// applications' data sizes plus the joint configuration, and the
// resulting EDP. The application *features* select which class-pair
// model to use (Figure 7, step 3); the model itself is then evaluated
// over "all permutations of tunable parameters" (step 4), so its inputs
// are the permutation — keeping prediction strictly in-distribution
// even for unknown applications.
//
// RelEDP is the pair's EDP at this configuration divided by its EDP at
// the untuned baseline configuration: the models learn the configuration
// *response surface* (which is what the class structure determines)
// rather than the pair's absolute magnitude, and the argmin over
// configurations is unchanged because the baseline is constant per pair.
type TrainRow struct {
	X      []float64 // sizes + knobs + interactions (see ConfigRow)
	EDP    float64
	RelEDP float64
	// FA and FB are the slot observations' reduced feature vectors
	// (shared across the entry's rows). Feature-aware models append them
	// to X so they can distinguish application combinations within a
	// class pair; see NewMLMSTPFeatures.
	FA, FB []float64
}

// baselinePairConfig is the normalization reference for RelEDP: the
// untuned even split.
func baselinePairConfig(cores int) [2]mapreduce.Config {
	return [2]mapreduce.Config{NTConfig(cores / 2), NTConfig(cores / 2)}
}

// Database is the offline knowledge ECoST builds from the training
// applications: per-pair optimal configurations (the lookup table) and
// per-class-pair training matrices for the learning models.
type Database struct {
	Entries []DBEntry
	Rows    map[ClassPair][]TrainRow
	classer *Classifier
	oracle  *Oracle
}

// BuildOptions controls database construction cost.
type BuildOptions struct {
	// Sizes are the per-node data sizes to include (default: the paper's
	// 1, 5, 10 GB).
	Sizes []float64
	// ConfigStride subsamples the joint configuration space when
	// generating ML training rows: every stride-th configuration is
	// evaluated (1 = all 11,200 per pair). Larger strides build faster.
	ConfigStride int
}

// DefaultBuildOptions matches the paper's setup with a training-tractable
// configuration sample.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Sizes: workloads.DataSizesGB(), ConfigStride: 5}
}

// BuildDatabase profiles the training applications, runs the COLAO
// search for every known pair and size combination, and assembles the
// per-class-pair training matrices.
func BuildDatabase(profiler *Profiler, oracle *Oracle, training []workloads.App, opt BuildOptions) (*Database, error) {
	if len(training) == 0 {
		return nil, fmt.Errorf("core: database: no training applications")
	}
	if len(opt.Sizes) == 0 {
		opt.Sizes = workloads.DataSizesGB()
	}
	if opt.ConfigStride < 1 {
		opt.ConfigStride = 1
	}

	// Profile every (app, size) once, noise-free: the database stores the
	// asymptotic feature vectors (the paper averages repeated runs).
	var obs []Observation
	for _, app := range training {
		for _, size := range opt.Sizes {
			o, err := profiler.ObserveExact(app, size)
			if err != nil {
				return nil, err
			}
			obs = append(obs, o)
		}
	}
	classer, err := NewClassifier(obs)
	if err != nil {
		return nil, err
	}

	db := &Database{
		Rows:    make(map[ClassPair][]TrainRow),
		classer: classer,
		oracle:  oracle,
	}
	configs := mapreduce.PairConfigsCached(oracle.Model.Spec.Cores)
	for i := 0; i < len(obs); i++ {
		for j := i; j < len(obs); j++ {
			a, b := obs[i], obs[j]
			best, err := oracle.COLAO(a.App, a.SizeGB*1024, b.App, b.SizeGB*1024)
			if err != nil {
				return nil, err
			}
			db.Entries = append(db.Entries, DBEntry{A: a, B: b, Best: best})

			base, err := oracle.EvalPair(a.App, a.SizeGB*1024, b.App, b.SizeGB*1024,
				baselinePairConfig(oracle.Model.Spec.Cores))
			if err != nil {
				return nil, err
			}
			cp := NewClassPair(a.App.Class, b.App.Class)
			caObs, cbObs := a, b
			if slotLess(b, a) {
				caObs, cbObs = b, a
			}
			fa, fb := caObs.Reduced(), cbObs.Reduced()
			for k := 0; k < len(configs); k += opt.ConfigStride {
				pc := configs[k]
				co, err := oracle.EvalPair(a.App, a.SizeGB*1024, b.App, b.SizeGB*1024, pc)
				if err != nil {
					return nil, err
				}
				// Canonical slot order so asymmetric class pairs always
				// see the lower class in slot 0 (prediction swaps the
				// same way and swaps the answer back).
				ca, cb, pcc := a, b, pc
				if slotLess(b, a) {
					ca, cb = b, a
					pcc[0], pcc[1] = pc[1], pc[0]
				}
				db.Rows[cp] = append(db.Rows[cp], TrainRow{
					X:      ConfigRow(ca.SizeGB, cb.SizeGB, pcc),
					EDP:    co.EDP,
					RelEDP: co.EDP / base.EDP,
					FA:     fa,
					FB:     fb,
				})
			}
		}
	}
	return db, nil
}

// ConfigRow assembles the model input for one tunable-parameter
// permutation: both data sizes, the six knobs, and engineered
// interaction terms. The interactions matter most for the linear model:
// without them an OLS argmin over a box always lands on a vertex; with
// the split-count and mapper-product terms it can prefer interior
// mapper splits and block sizes, which is how Weka-era linear models
// were actually used on this kind of tuning data.
func ConfigRow(sizeA, sizeB float64, cfg [2]mapreduce.Config) []float64 {
	f1, b1, m1 := float64(cfg[0].Freq), float64(cfg[0].Block), float64(cfg[0].Mappers)
	f2, b2, m2 := float64(cfg[1].Freq), float64(cfg[1].Block), float64(cfg[1].Mappers)
	splitsA := sizeA * 1024 / b1
	splitsB := sizeB * 1024 / b2
	return []float64{
		sizeA, sizeB,
		f1, b1, m1, f2, b2, m2,
		m1 + m2, m1 * m2, // core allocation balance
		1 / m1, 1 / m2, // serialization of each slot
		f1 * m1, f2 * m2, // active dynamic power proxy
		splitsA, splitsB, // task counts
		splitsA / m1, splitsB / m2, // wave counts
		m1 * b1, m2 * b2, // memory-pressure proxy
	}
}

// slotLess orders observations into canonical model slots: by class,
// then data size, then application name.
func slotLess(a, b Observation) bool {
	if a.App.Class != b.App.Class {
		return a.App.Class < b.App.Class
	}
	if a.SizeGB != b.SizeGB {
		return a.SizeGB < b.SizeGB
	}
	return a.App.Name < b.App.Name
}

// Classifier returns the classifier trained on the database's
// observations.
func (db *Database) Classifier() *Classifier { return db.classer }

// Oracle returns the oracle used to build the database.
func (db *Database) Oracle() *Oracle { return db.oracle }

// LookupBest returns the stored optimal configuration for the known pair
// most resembling (a, b): the LkT-STP scan of §6.4. The match score is
// the summed feature distance of both slots (tried in both orders).
func (db *Database) LookupBest(a, b Observation) (PairBest, error) {
	if len(db.Entries) == 0 {
		return PairBest{}, fmt.Errorf("core: lookup: empty database")
	}
	na := db.classer.NearestKnown(a)
	nb := db.classer.NearestKnown(b)
	var found *DBEntry
	swapped := false
	for i := range db.Entries {
		e := &db.Entries[i]
		if e.A.App.Name == na.App.Name && e.A.SizeGB == na.SizeGB &&
			e.B.App.Name == nb.App.Name && e.B.SizeGB == nb.SizeGB {
			found = e
			swapped = false
			break
		}
		if e.A.App.Name == nb.App.Name && e.A.SizeGB == nb.SizeGB &&
			e.B.App.Name == na.App.Name && e.B.SizeGB == na.SizeGB {
			found = e
			swapped = true
		}
	}
	if found == nil {
		return PairBest{}, fmt.Errorf("core: lookup: no entry for %s/%s", na.App.Name, nb.App.Name)
	}
	return unswap(found.Best, swapped), nil
}

// pairBenefits computes, per class pair, the mean co-location benefit
// across the database: ILAO EDP ÷ COLAO EDP. The paper ranks class pairs
// by the lowest pair EDP across core partitionings (Figure 5); its
// applications have comparable standalone weight, so absolute EDP works
// there. Our calibrated applications differ in intrinsic heaviness, so
// the ranking normalizes each pair by its own ILAO baseline — the same
// ordering signal (how much does co-locating this class combination
// help) without the per-application weight.
func (db *Database) pairBenefits() map[ClassPair]float64 {
	sums := map[ClassPair]float64{}
	counts := map[ClassPair]int{}
	for _, e := range db.Entries {
		ilao, _, err := db.oracle.ILAO(e.A.App, e.A.SizeGB*1024, e.B.App, e.B.SizeGB*1024)
		if err != nil || e.Best.Out.EDP <= 0 {
			continue
		}
		cp := NewClassPair(e.A.App.Class, e.B.App.Class)
		sums[cp] += ilao / e.Best.Out.EDP
		counts[cp]++
	}
	out := map[ClassPair]float64{}
	for cp, s := range sums {
		out[cp] = s / float64(counts[cp])
	}
	return out
}

// PriorityRanking derives the class-pair ranking of Figure 5: class
// pairs ordered by co-location benefit, descending. I-I ranks first;
// M-M last.
func (db *Database) PriorityRanking() []RankedPair {
	var out []RankedPair
	for cp, b := range db.pairBenefits() {
		out = append(out, RankedPair{Pair: cp, Benefit: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benefit != out[j].Benefit {
			return out[i].Benefit > out[j].Benefit
		}
		return out[i].Pair.String() < out[j].Pair.String()
	})
	return out
}

// RankedPair is one row of the Figure-5 ranking.
type RankedPair struct {
	Pair ClassPair
	// Benefit is the mean ILAO/COLAO EDP ratio for the class pair:
	// >1 means co-locating this combination beats running it serially.
	Benefit float64
}

// PartnerPriority distils the ranking into the scheduler's decision
// order: given a running application's class, which partner class to
// prefer from the wait queue (the paper reads I first, then H/C, then M
// off Figure 5; here the order falls out of the database).
func (db *Database) PartnerPriority(running workloads.Class) []workloads.Class {
	benefits := db.pairBenefits()
	type score struct {
		c workloads.Class
		b float64
	}
	var scores []score
	for _, c := range workloads.Classes() {
		if b, ok := benefits[NewClassPair(running, c)]; ok {
			scores = append(scores, score{c, b})
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].b != scores[j].b {
			return scores[i].b > scores[j].b
		}
		return scores[i].c < scores[j].c
	})
	out := make([]workloads.Class, len(scores))
	for i, s := range scores {
		out[i] = s.c
	}
	return out
}

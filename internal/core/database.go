package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"ecost/internal/mapreduce"
	"ecost/internal/workloads"
)

// ClassPair is an unordered pair of behaviour classes, the unit the
// paper's per-class models and priority ranking are organized around.
type ClassPair struct{ A, B workloads.Class }

// NewClassPair returns the canonical (sorted) form.
func NewClassPair(a, b workloads.Class) ClassPair {
	if b < a {
		a, b = b, a
	}
	return ClassPair{a, b}
}

// String renders "C-M" style labels like the paper's tables.
func (p ClassPair) String() string { return p.A.String() + "-" + p.B.String() }

// AllClassPairs lists the 10 unordered class pairs in the paper's order.
func AllClassPairs() []ClassPair {
	cs := workloads.Classes()
	var out []ClassPair
	for i, a := range cs {
		for _, b := range cs[i:] {
			out = append(out, NewClassPair(a, b))
		}
	}
	return out
}

// DBEntry is one database record: the COLAO-optimal configuration for a
// known co-located pair (§6.2 — "the database is populated with the best
// results for various co-located applications").
type DBEntry struct {
	A, B Observation
	Best PairBest
}

// TrainRow is one supervised example for the MLM-STP models: the two
// applications' data sizes plus the joint configuration, and the
// resulting EDP. The application *features* select which class-pair
// model to use (Figure 7, step 3); the model itself is then evaluated
// over "all permutations of tunable parameters" (step 4), so its inputs
// are the permutation — keeping prediction strictly in-distribution
// even for unknown applications.
//
// RelEDP is the pair's EDP at this configuration divided by its EDP at
// the untuned baseline configuration: the models learn the configuration
// *response surface* (which is what the class structure determines)
// rather than the pair's absolute magnitude, and the argmin over
// configurations is unchanged because the baseline is constant per pair.
type TrainRow struct {
	X      []float64 // sizes + knobs + interactions (see ConfigRow)
	EDP    float64
	RelEDP float64
	// FA and FB are the slot observations' reduced feature vectors
	// (shared across the entry's rows). Feature-aware models append them
	// to X so they can distinguish application combinations within a
	// class pair; see NewMLMSTPFeatures.
	FA, FB []float64
}

// baselinePairConfig is the normalization reference for RelEDP: the
// untuned even split.
func baselinePairConfig(cores int) [2]mapreduce.Config {
	return [2]mapreduce.Config{NTConfig(cores / 2), NTConfig(cores / 2)}
}

// Database is the offline knowledge ECoST builds from the training
// applications: per-pair optimal configurations (the lookup table) and
// per-class-pair training matrices for the learning models.
type Database struct {
	Entries []DBEntry
	Rows    map[ClassPair][]TrainRow
	classer *Classifier
	oracle  *Oracle

	// partnerOnce guards the lazily-built PartnerPriority cache. The
	// ranking is a pure function of Entries (which are frozen after
	// build/load), yet the uncached computation re-ran pairBenefits —
	// an ILAO lookup per database entry plus a sort — on every pairing
	// dispatch, ~28% of a large online run. One build serves every
	// class and every shard; the sync.Once makes the first call safe
	// from concurrent shard goroutines.
	partnerOnce sync.Once
	partnerPrio map[workloads.Class][]workloads.Class
}

// BuildOptions controls database construction cost.
type BuildOptions struct {
	// Sizes are the per-node data sizes to include (default: the paper's
	// 1, 5, 10 GB).
	Sizes []float64
	// ConfigStride subsamples the joint configuration space when
	// generating ML training rows: every stride-th configuration is
	// evaluated (1 = all 11,200 per pair). Larger strides build faster.
	ConfigStride int
	// Workers sizes the pair-level worker pool (0 = GOMAXPROCS). Results
	// merge in canonical pair order, so every worker count — including 1,
	// the serial build — produces an identical database.
	Workers int
}

// DefaultBuildOptions matches the paper's setup with a training-tractable
// configuration sample.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Sizes: workloads.DataSizesGB(), ConfigStride: 5}
}

// BuildDatabase profiles the training applications, runs the COLAO
// search for every known pair and size combination, and assembles the
// per-class-pair training matrices.
//
// Pair jobs fan out over a worker pool (each worker sweeps the joint
// configuration space through a reused evaluator); results merge back
// in canonical (i, j) pair order, so the entries, the training rows and
// everything trained from them are byte-identical to a serial build at
// any worker count.
func BuildDatabase(profiler *Profiler, oracle *Oracle, training []workloads.App, opt BuildOptions) (*Database, error) {
	if len(training) == 0 {
		return nil, fmt.Errorf("core: database: no training applications")
	}
	if len(opt.Sizes) == 0 {
		opt.Sizes = workloads.DataSizesGB()
	}
	if opt.ConfigStride < 1 {
		opt.ConfigStride = 1
	}

	// Profile every (app, size) once, noise-free: the database stores the
	// asymptotic feature vectors (the paper averages repeated runs).
	var obs []Observation
	for _, app := range training {
		for _, size := range opt.Sizes {
			o, err := profiler.ObserveExact(app, size)
			if err != nil {
				return nil, err
			}
			obs = append(obs, o)
		}
	}
	classer, err := NewClassifier(obs)
	if err != nil {
		return nil, err
	}

	db := &Database{
		Rows:    make(map[ClassPair][]TrainRow),
		classer: classer,
		oracle:  oracle,
	}

	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := 0; i < len(obs); i++ {
		for j := i; j < len(obs); j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}
	type pairResult struct {
		entry DBEntry
		cp    ClassPair
		rows  []TrainRow
		err   error
	}
	results := make([]pairResult, len(jobs))

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := oracle.Model.NewEvaluator()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(jobs) {
					return
				}
				a, b := obs[jobs[n].i], obs[jobs[n].j]
				entry, cp, rows, err := buildPair(oracle, ev, a, b, opt.ConfigStride)
				results[n] = pairResult{entry: entry, cp: cp, rows: rows, err: err}
			}
		}()
	}
	wg.Wait()

	// Deterministic merge: canonical (i, j) order, exactly the serial
	// loop's append order.
	for n := range results {
		if results[n].err != nil {
			return nil, results[n].err
		}
		db.Entries = append(db.Entries, results[n].entry)
		db.Rows[results[n].cp] = append(db.Rows[results[n].cp], results[n].rows...)
	}
	return db, nil
}

// buildPair computes one database pair: the COLAO-optimal entry plus
// the strided training-row sweep. The evaluator is reused across
// configurations (zero allocations per point); row feature vectors
// reference the shared design matrix where the canonical slot order
// permits.
func buildPair(oracle *Oracle, ev *mapreduce.Evaluator, a, b Observation, stride int) (DBEntry, ClassPair, []TrainRow, error) {
	best, err := oracle.COLAO(a.App, a.SizeGB*1024, b.App, b.SizeGB*1024)
	if err != nil {
		return DBEntry{}, ClassPair{}, nil, err
	}
	entry := DBEntry{A: a, B: b, Best: best}
	cp, rows, err := pairRows(oracle, ev, a, b, stride)
	if err != nil {
		return DBEntry{}, ClassPair{}, nil, err
	}
	return entry, cp, rows, nil
}

// pairRows runs the strided training-row sweep for one pair — the
// COLAO-independent part of buildPair, reused by RebuildRows when a
// loaded database (entries only) needs its training matrices back.
func pairRows(oracle *Oracle, ev *mapreduce.Evaluator, a, b Observation, stride int) (ClassPair, []TrainRow, error) {
	cores := oracle.Model.Spec.Cores
	specA := mapreduce.RunSpec{App: a.App, DataMB: a.SizeGB * 1024}
	specB := mapreduce.RunSpec{App: b.App, DataMB: b.SizeGB * 1024}
	baseCfg := baselinePairConfig(cores)
	specA.Cfg, specB.Cfg = baseCfg[0], baseCfg[1]
	base, err := ev.PairMetrics(specA, specB)
	if err != nil {
		return ClassPair{}, nil, err
	}

	cp := NewClassPair(a.App.Class, b.App.Class)
	swapped := slotLess(b, a)
	caObs, cbObs := a, b
	if swapped {
		caObs, cbObs = b, a
	}
	fa, fb := caObs.Reduced(), cbObs.Reduced()
	configs := mapreduce.PairConfigsCached(cores)
	dm := DesignMatrixCached(cores, caObs.SizeGB, cbObs.SizeGB)
	rows := make([]TrainRow, 0, (len(configs)+stride-1)/stride)
	for k := 0; k < len(configs); k += stride {
		pc := configs[k]
		specA.Cfg, specB.Cfg = pc[0], pc[1]
		co, err := ev.PairMetrics(specA, specB)
		if err != nil {
			return ClassPair{}, nil, err
		}
		// Canonical slot order so asymmetric class pairs always see the
		// lower class in slot 0 (prediction swaps the same way and swaps
		// the answer back). In the unswapped case the input row IS the
		// shared design-matrix row; only swapped slots materialize one.
		x := dm[k]
		if swapped {
			x = ConfigRow(caObs.SizeGB, cbObs.SizeGB, [2]mapreduce.Config{pc[1], pc[0]})
		}
		rows = append(rows, TrainRow{
			X:      x,
			EDP:    co.EDP,
			RelEDP: co.EDP / base.EDP,
			FA:     fa,
			FB:     fb,
		})
	}
	return cp, rows, nil
}

// HasRows reports whether the training matrices are populated. A
// database loaded from disk carries entries only (rows are too large to
// persist at full stride); RebuildRows restores them.
func (db *Database) HasRows() bool {
	for _, rows := range db.Rows {
		if len(rows) > 0 {
			return true
		}
	}
	return false
}

// RebuildRows regenerates the per-class-pair training matrices from the
// entries' stored observations — the sweep half of BuildDatabase,
// skipping the COLAO searches the entries already hold. The sweep is a
// pure function of the observations, so the rebuilt rows are
// byte-identical to the original build's. Jobs fan out and merge
// exactly like BuildDatabase.
func (db *Database) RebuildRows(opt BuildOptions) error {
	if db.oracle == nil {
		return fmt.Errorf("core: rebuild rows: database has no oracle")
	}
	if opt.ConfigStride < 1 {
		opt.ConfigStride = 1
	}
	// Recover the unique observation list in build order: entries are in
	// canonical (i, j) order, so first appearance order is index order.
	type obsKey struct {
		app  string
		size float64
	}
	seen := make(map[obsKey]bool)
	var obs []Observation
	for _, e := range db.Entries {
		for _, o := range []Observation{e.A, e.B} {
			k := obsKey{o.App.Name, o.SizeGB}
			if !seen[k] {
				seen[k] = true
				obs = append(obs, o)
			}
		}
	}
	type pairJob struct{ i, j int }
	var jobs []pairJob
	for i := 0; i < len(obs); i++ {
		for j := i; j < len(obs); j++ {
			jobs = append(jobs, pairJob{i, j})
		}
	}
	if len(jobs) != len(db.Entries) {
		return fmt.Errorf("core: rebuild rows: %d entries do not form a full pair grid over %d observations", len(db.Entries), len(obs))
	}
	type rowResult struct {
		cp   ClassPair
		rows []TrainRow
		err  error
	}
	results := make([]rowResult, len(jobs))
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ev := db.oracle.Model.NewEvaluator()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(jobs) {
					return
				}
				cp, rows, err := pairRows(db.oracle, ev, obs[jobs[n].i], obs[jobs[n].j], opt.ConfigStride)
				results[n] = rowResult{cp: cp, rows: rows, err: err}
			}
		}()
	}
	wg.Wait()
	rowsByPair := make(map[ClassPair][]TrainRow)
	for n := range results {
		if results[n].err != nil {
			return results[n].err
		}
		rowsByPair[results[n].cp] = append(rowsByPair[results[n].cp], results[n].rows...)
	}
	db.Rows = rowsByPair
	return nil
}

// ConfigRow assembles the model input for one tunable-parameter
// permutation: both data sizes, the six knobs, and engineered
// interaction terms. The interactions matter most for the linear model:
// without them an OLS argmin over a box always lands on a vertex; with
// the split-count and mapper-product terms it can prefer interior
// mapper splits and block sizes, which is how Weka-era linear models
// were actually used on this kind of tuning data.
func ConfigRow(sizeA, sizeB float64, cfg [2]mapreduce.Config) []float64 {
	f1, b1, m1 := float64(cfg[0].Freq), float64(cfg[0].Block), float64(cfg[0].Mappers)
	f2, b2, m2 := float64(cfg[1].Freq), float64(cfg[1].Block), float64(cfg[1].Mappers)
	splitsA := sizeA * 1024 / b1
	splitsB := sizeB * 1024 / b2
	return []float64{
		sizeA, sizeB,
		f1, b1, m1, f2, b2, m2,
		m1 + m2, m1 * m2, // core allocation balance
		1 / m1, 1 / m2, // serialization of each slot
		f1 * m1, f2 * m2, // active dynamic power proxy
		splitsA, splitsB, // task counts
		splitsA / m1, splitsB / m2, // wave counts
		m1 * b1, m2 * b2, // memory-pressure proxy
	}
}

// slotLess orders observations into canonical model slots: by class,
// then data size, then application name.
func slotLess(a, b Observation) bool {
	if a.App.Class != b.App.Class {
		return a.App.Class < b.App.Class
	}
	if a.SizeGB != b.SizeGB {
		return a.SizeGB < b.SizeGB
	}
	return a.App.Name < b.App.Name
}

// Classifier returns the classifier trained on the database's
// observations.
func (db *Database) Classifier() *Classifier { return db.classer }

// Oracle returns the oracle used to build the database.
func (db *Database) Oracle() *Oracle { return db.oracle }

// LookupBest returns the stored optimal configuration for the known pair
// most resembling (a, b): the LkT-STP scan of §6.4. The match score is
// the summed feature distance of both slots (tried in both orders).
func (db *Database) LookupBest(a, b Observation) (PairBest, error) {
	if len(db.Entries) == 0 {
		return PairBest{}, fmt.Errorf("core: lookup: empty database")
	}
	na := db.classer.NearestKnown(a)
	nb := db.classer.NearestKnown(b)
	direct, reverse := db.scanEntries(na, nb)
	switch {
	case direct >= 0:
		return unswap(db.Entries[direct].Best, false), nil
	case reverse >= 0:
		return unswap(db.Entries[reverse].Best, true), nil
	}
	return PairBest{}, fmt.Errorf("core: lookup: no entry for %s/%s", na.App.Name, nb.App.Name)
}

// lookupParallelMin is the entry count below which the LkT scan stays
// serial: the paper-scale table (hundreds of entries) fits one core's
// sweep, but a production-scale table fans out.
const lookupParallelMin = 2048

// scanEntries finds the lowest-index direct match and the highest-index
// reverse match for the nearest-known pair — the parallel-safe
// restatement of the serial scan's "first direct wins, else last
// reverse" rule, so both paths return identical entries.
func (db *Database) scanEntries(na, nb Observation) (direct, reverse int) {
	match := func(lo, hi int) (d, r int) {
		d, r = -1, -1
		for i := lo; i < hi; i++ {
			e := &db.Entries[i]
			if e.A.App.Name == na.App.Name && e.A.SizeGB == na.SizeGB &&
				e.B.App.Name == nb.App.Name && e.B.SizeGB == nb.SizeGB {
				return i, r
			}
			if e.A.App.Name == nb.App.Name && e.A.SizeGB == nb.SizeGB &&
				e.B.App.Name == na.App.Name && e.B.SizeGB == na.SizeGB {
				r = i
			}
		}
		return d, r
	}
	n := len(db.Entries)
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < lookupParallelMin {
		return match(0, n)
	}
	type span struct{ d, r int }
	results := make([]span, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			results[w] = span{-1, -1}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			d, r := match(lo, hi)
			results[w] = span{d, r}
		}(w, lo, hi)
	}
	wg.Wait()
	direct, reverse = -1, -1
	for _, s := range results {
		if s.d >= 0 && (direct < 0 || s.d < direct) {
			direct = s.d
		}
		if s.r > reverse {
			reverse = s.r
		}
	}
	return direct, reverse
}

// pairBenefits computes, per class pair, the mean co-location benefit
// across the database: ILAO EDP ÷ COLAO EDP. The paper ranks class pairs
// by the lowest pair EDP across core partitionings (Figure 5); its
// applications have comparable standalone weight, so absolute EDP works
// there. Our calibrated applications differ in intrinsic heaviness, so
// the ranking normalizes each pair by its own ILAO baseline — the same
// ordering signal (how much does co-locating this class combination
// help) without the per-application weight.
func (db *Database) pairBenefits() map[ClassPair]float64 {
	sums := map[ClassPair]float64{}
	counts := map[ClassPair]int{}
	for _, e := range db.Entries {
		ilao, _, err := db.oracle.ILAO(e.A.App, e.A.SizeGB*1024, e.B.App, e.B.SizeGB*1024)
		if err != nil || e.Best.Out.EDP <= 0 {
			continue
		}
		cp := NewClassPair(e.A.App.Class, e.B.App.Class)
		sums[cp] += ilao / e.Best.Out.EDP
		counts[cp]++
	}
	out := map[ClassPair]float64{}
	for cp, s := range sums {
		out[cp] = s / float64(counts[cp])
	}
	return out
}

// PriorityRanking derives the class-pair ranking of Figure 5: class
// pairs ordered by co-location benefit, descending. I-I ranks first;
// M-M last.
func (db *Database) PriorityRanking() []RankedPair {
	var out []RankedPair
	for cp, b := range db.pairBenefits() {
		out = append(out, RankedPair{Pair: cp, Benefit: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Benefit != out[j].Benefit {
			return out[i].Benefit > out[j].Benefit
		}
		return out[i].Pair.String() < out[j].Pair.String()
	})
	return out
}

// RankedPair is one row of the Figure-5 ranking.
type RankedPair struct {
	Pair ClassPair
	// Benefit is the mean ILAO/COLAO EDP ratio for the class pair:
	// >1 means co-locating this combination beats running it serially.
	Benefit float64
}

// PartnerPriority distils the ranking into the scheduler's decision
// order: given a running application's class, which partner class to
// prefer from the wait queue (the paper reads I first, then H/C, then M
// off Figure 5; here the order falls out of the database). The returned
// slice is cached and shared — callers must treat it as read-only.
func (db *Database) PartnerPriority(running workloads.Class) []workloads.Class {
	db.partnerOnce.Do(db.buildPartnerPriority)
	return db.partnerPrio[running]
}

// buildPartnerPriority materializes the decision order for every class
// in one pass. The per-class loop, tie-break, and underlying
// pairBenefits iteration are identical to the previous per-call
// computation, so the cached orders are the exact slices the uncached
// path produced.
func (db *Database) buildPartnerPriority() {
	benefits := db.pairBenefits()
	db.partnerPrio = make(map[workloads.Class][]workloads.Class, len(workloads.Classes()))
	type score struct {
		c workloads.Class
		b float64
	}
	for _, running := range workloads.Classes() {
		var scores []score
		for _, c := range workloads.Classes() {
			if b, ok := benefits[NewClassPair(running, c)]; ok {
				scores = append(scores, score{c, b})
			}
		}
		sort.Slice(scores, func(i, j int) bool {
			if scores[i].b != scores[j].b {
				return scores[i].b > scores[j].b
			}
			return scores[i].c < scores[j].c
		})
		out := make([]workloads.Class, len(scores))
		for i, s := range scores {
			out[i] = s.c
		}
		db.partnerPrio[running] = out
	}
}

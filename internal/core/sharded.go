package core

// The sharded control plane: the cluster is partitioned across S
// per-shard OnlineSchedulers — each owning its own node slice, engine,
// wait-queue index, and tune-cache shard — with submissions routed by a
// deterministic app/tenant hash and a bounded work-stealing pass at
// event-loop barriers. Every export — metrics snapshots, timelines,
// decision logs, completions, energy — is a pure function of the
// submitted stream at any GOMAXPROCS, and steals fire at deterministic
// sim times rather than goroutine-timing-dependent moments.
//
// Barriers are elided wherever cross-shard interaction is provably
// impossible (DESIGN.md §17). The steal pass is the only cross-shard
// interaction, and a queue can only grow at an arrival event — every
// arrival is submitted before Run, so the arrival timeline is fully
// known. Whenever all wait queues are empty, no steal can fire at any
// barrier before the next arrival, and every shard free-runs through
// that window fully in parallel; with stealing off (or one shard) the
// whole run is one window. The exact lock-step cadence is retained as
// the reference path (SetFullBarriers) and engages automatically when a
// flight recorder is attached, because epoch records sample every shard
// at every global event time.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ecost/internal/flight"
	"ecost/internal/mapreduce"
	"ecost/internal/power"
	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// ShardedConfig parameterizes the sharded control plane.
type ShardedConfig struct {
	// Shards is the number of per-shard schedulers (1..nodes).
	Shards int
	// Steal enables the barrier work-stealing pass: a shard with an
	// empty queue and free capacity claims queued jobs from neighbors.
	Steal bool
	// StealBatch caps how many jobs one shard claims per barrier
	// (0 = DefaultStealBatch). The cap bounds how far a single barrier
	// can rebalance, keeping steal-induced divergence local.
	StealBatch int
	// ProfileMemo replaces the router's serial noisy profiling with
	// noise-free ObserveExact profiles memoized by (app, size). Recurring
	// tenants then profile once ever — the "recurring jobs have
	// recurring profiles" shortcut — at the cost of exact equivalence
	// with the legacy sampler-noise stream. Benchmarks and large
	// scenario sweeps want this; equivalence goldens must not.
	ProfileMemo bool
}

// DefaultStealBatch bounds per-barrier claims when StealBatch is 0.
const DefaultStealBatch = 8

// ShardedScheduler drives S per-shard OnlineSchedulers in lock-step
// epochs. Build with NewShardedScheduler, attach per-shard
// observability via Shard(i), Submit the stream in nondecreasing
// arrival order, then Run.
type ShardedScheduler struct {
	cfg    ShardedConfig
	shards []*OnlineScheduler
	prof   *Profiler

	// memo caches router profiles under ProfileMemo.
	memo map[profileKey]Observation

	nextID int
	lastAt float64
	steals int

	// arrTimes records every submitted arrival time in order (Submit
	// enforces nondecreasing); arrCursor trails the run, pointing at the
	// first arrival not yet fired. Together they give the elision loop
	// the next instant a wait queue could possibly grow — the horizon a
	// barrier-free window may run to.
	arrTimes  []float64
	arrCursor int

	// fullBarriers forces the exact lock-step reference cadence (one
	// barrier per global event timestamp); see SetFullBarriers. stats
	// counts barriers executed vs elided.
	fullBarriers bool
	stats        BarrierStats

	// workers are the persistent per-shard drain goroutines (started by
	// Run, stopped on return; nil when S==1): each barrier or window
	// signals the active shards over their channels instead of spawning
	// a goroutine + WaitGroup per epoch. panics holds the first panic
	// each shard's drain raised, re-raised in shard order at the next
	// join. active is the reusable active-shard scratch buffer. serial
	// is latched by Run when only one proc is available — the shards
	// then drain inline in shard order (identical results: they share no
	// mutable state) instead of paying channel handoffs that cannot
	// overlap.
	workers []chan shardCmd
	wwg     sync.WaitGroup
	panics  []any
	active  []int
	serial  bool

	// flight is the barrier-epoch flight recorder (nil = off; see
	// SetFlight). flightT0 is the previous barrier time (each epoch
	// record spans [flightT0, t]); statBuf is the reusable per-barrier
	// sample buffer.
	flight   *flight.Recorder
	flightT0 float64
	statBuf  []flight.ShardStat
}

// shardCmd tells a shard worker how far to drain its engine: through
// horizon inclusive (a barrier epoch) or strictly before it (a
// free-running window, whose horizon is the next arrival time).
type shardCmd struct {
	horizon float64
	excl    bool
}

// BarrierStats counts how the run's event work was driven. Barriers is
// the number of exact lock-step barrier iterations (each with a steal
// pass); Windows is the number of barrier-free free-running spans;
// WindowEvents is how many events fired inside those spans — each would
// have cost roughly one global barrier under the lock-step cadence, so
// it measures the barriers elided.
type BarrierStats struct {
	Barriers     int64
	Windows      int64
	WindowEvents int64
}

// ElidedRatio is the fraction of event work that ran barrier-free:
// WindowEvents / (WindowEvents + Barriers). Zero on an empty run.
func (b BarrierStats) ElidedRatio() float64 {
	tot := b.Barriers + b.WindowEvents
	if tot == 0 {
		return 0
	}
	return float64(b.WindowEvents) / float64(tot)
}

type profileKey struct {
	app    string
	sizeGB float64
}

// routeShard maps an application/tenant name to its home shard: FNV-1a
// over the name, mod S. The hash is stable across processes and
// platforms, so a recurring tenant always lands on the same shard —
// which is what lets the per-shard tune caches and wait-queue indexes
// stay hot for its recurring profile. Inlined rather than hash/fnv so
// the per-submission route costs no hasher or byte-slice allocation
// (TestRouteShardMatchesFNV pins it to the library hash).
func routeShard(name string, shards int) int {
	h := uint32(2166136261) // FNV-1a 32-bit offset basis
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619 // FNV 32-bit prime
	}
	return int(h % uint32(shards))
}

// NewShardedScheduler partitions `nodes` across cfg.Shards schedulers
// (near-even split: the first nodes%S shards own one extra node) over a
// shared model, database, and profiler. newTuner builds one tuner per
// shard so each shard owns its own memo shard (pass a closure returning
// a fresh MemoSTP); it must return non-nil. The model and database are
// shared across shard goroutines: the database's caches are
// synchronized, and the model must not carry a metrics registry (its
// emissions would interleave nondeterministically).
func NewShardedScheduler(model *mapreduce.Model, db *Database, prof *Profiler, newTuner func() STP, nodes int, cfg ShardedConfig) (*ShardedScheduler, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: sharded scheduler: need at least one shard")
	}
	if cfg.Shards > nodes {
		return nil, fmt.Errorf("core: sharded scheduler: %d shards exceed %d nodes", cfg.Shards, nodes)
	}
	if newTuner == nil {
		return nil, fmt.Errorf("core: sharded scheduler: nil tuner factory")
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = DefaultStealBatch
	}
	c := &ShardedScheduler{cfg: cfg, prof: prof}
	if cfg.ProfileMemo {
		c.memo = make(map[profileKey]Observation)
	}
	base := 0
	for i := 0; i < cfg.Shards; i++ {
		n := nodes / cfg.Shards
		if i < nodes%cfg.Shards {
			n++
		}
		tuner := newTuner()
		if tuner == nil {
			return nil, fmt.Errorf("core: sharded scheduler: tuner factory returned nil for shard %d", i)
		}
		sh, err := NewOnlineScheduler(sim.NewEngine(), model, db, tuner, prof, n)
		if err != nil {
			return nil, fmt.Errorf("core: sharded scheduler: shard %d: %w", i, err)
		}
		sh.SetNodeBase(base)
		// Steady-solve memoization is bit-identical to solving (proven
		// by the single-shard equivalence golden) and recurring tenants
		// concentrate per shard by construction, so every shard gets it.
		sh.SetSteadyMemo(true)
		// Classify is pure, so its memo is bit-identical too — and the
		// shard never hands out *sim.Event pointers beyond the per-node
		// completion handle it nils on fire, so event recycling is safe.
		sh.SetClassMemo(true)
		sh.Engine.SetRecycle(true)
		base += n
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Shards reports the shard count.
func (c *ShardedScheduler) Shards() int { return len(c.shards) }

// Shard returns the i-th per-shard scheduler, for attaching per-shard
// observability (SetMetrics/SetTracer/SetAudit — each shard needs its
// own registry, tracer, and log; they are written concurrently during
// epochs) and reading per-shard exports afterwards.
func (c *ShardedScheduler) Shard(i int) *OnlineScheduler { return c.shards[i] }

// Steals reports how many jobs migrated between shards.
func (c *ShardedScheduler) Steals() int { return c.steals }

// ShardNodes returns each shard's node count in shard order.
func (c *ShardedScheduler) ShardNodes() []int {
	out := make([]int, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.Nodes()
	}
	return out
}

// SetFlight attaches a flight recorder: every barrier epoch emits one
// wide record per shard, each shard's forecast joins and drift alerts
// flow into its collector, and the steal pass reports per-edge flow.
// The recorder's triggers read shard queues through the tenant source
// to name the implicated applications. Pass nil to detach (the
// disabled path costs one branch per barrier).
func (c *ShardedScheduler) SetFlight(r *flight.Recorder) {
	c.flight = r
	for i, sh := range c.shards {
		sh.SetFlight(r.Collector(i))
	}
	r.SetTenantSource(func(shard, max int) []string {
		return c.shards[shard].TopTenants(max)
	})
}

// SetTracer attaches a sharded span tracer: one fresh Tracer per shard
// — reading that shard's engine clock, stamped with its shard index —
// appended to ts in shard order. Call before the first Submit on a
// fresh ShardSet; pass nil to detach every shard. Each shard's tracer
// is written only by that shard's goroutine between barriers (plus the
// single-threaded steal pass), and ts merges the span sets
// deterministically for export.
func (c *ShardedScheduler) SetTracer(ts *tracing.ShardSet) {
	for _, sh := range c.shards {
		if ts == nil {
			sh.SetTracer(nil)
			continue
		}
		tr := tracing.New(sh.Engine.Clock())
		ts.Attach(tr)
		sh.SetTracer(tr)
	}
}

// recordBarrier samples every shard after a barrier's events and steal
// pass have settled and closes the epoch [flightT0, t] in the
// recorder. Runs on the barrier goroutine only — the epoch WaitGroup
// ordered all shard writes before it.
func (c *ShardedScheduler) recordBarrier(t float64) {
	stats := c.statBuf[:0]
	for _, sh := range c.shards {
		st := flight.ShardStat{
			Queue:   sh.QueueLen(),
			Free:    sh.FreeSlots(),
			Active:  sh.Pending() - sh.QueueLen(),
			EnergyJ: sh.EnergyJ(),
		}
		if m := memoOf(sh.Tuner); m != nil {
			st.TuneHits, st.TuneMisses = m.HitMiss()
		}
		stats = append(stats, st)
	}
	c.statBuf = stats
	c.flight.RecordEpoch(c.flightT0, t, stats)
	c.flightT0 = t
}

// memoOf unwraps the shard tuner chain down to its MemoSTP, if any
// (the deterministic tune-cache hit/miss source for epoch records).
func memoOf(t STP) *MemoSTP {
	for t != nil {
		switch v := t.(type) {
		case *MemoSTP:
			return v
		case *MeteredSTP:
			t = v.Inner
		default:
			return nil
		}
	}
	return nil
}

// Submit routes a job arrival to its home shard. Arrivals must be
// submitted in nondecreasing time order: the router profiles serially
// at submission so the sampler's draw sequence matches the legacy
// scheduler's in-event profiling order (every stream source — scenario
// generators, trace replay, workload cycling — emits sorted arrivals).
func (c *ShardedScheduler) Submit(app workloads.App, sizeGB, at float64) {
	if at < c.lastAt {
		panic(fmt.Sprintf("core: sharded scheduler: out-of-order submission at %g after %g", at, c.lastAt))
	}
	c.lastAt = at
	obs, err := c.profile(app, sizeGB)
	if err != nil {
		panic(fmt.Sprintf("core: sharded profile: %v", err))
	}
	id := c.nextID
	c.nextID++
	c.arrTimes = append(c.arrTimes, at)
	c.shards[routeShard(app.Name, len(c.shards))].SubmitObserved(id, obs, at)
}

func (c *ShardedScheduler) profile(app workloads.App, sizeGB float64) (Observation, error) {
	if c.memo == nil {
		return c.prof.Observe(app, sizeGB)
	}
	k := profileKey{app.Name, sizeGB}
	if obs, ok := c.memo[k]; ok {
		return obs, nil
	}
	obs, err := c.prof.ObserveExact(app, sizeGB)
	if err == nil {
		c.memo[k] = obs
	}
	return obs, err
}

// SetFullBarriers forces the exact lock-step reference cadence: one
// global barrier per distinct event timestamp, a steal pass at each,
// never a free-running window. Elision is proven byte-identical to this
// path (TestShardedElisionMatchesFullBarriers diffs every export), so
// it exists as the reference for those goldens — and it is what a
// flight recorder implicitly selects, since epoch records sample every
// shard at every barrier. Call before Run.
func (c *ShardedScheduler) SetFullBarriers(v bool) { c.fullBarriers = v }

// BarrierStats reports how the last Run drove the shards: exact
// barriers executed vs events fired inside free-running windows.
func (c *ShardedScheduler) BarrierStats() BarrierStats { return c.stats }

// Run drives all shards to completion and returns the global makespan
// and summed energy. Three drive modes, all byte-identical (§17):
//
//   - full barriers (flight recorder attached, or SetFullBarriers):
//     lock-step epochs at every global min next-event time, a
//     deterministic steal pass at each — the reference cadence.
//   - steal off: shards share no mutable state at all, so every shard
//     free-runs to completion fully in parallel and the exports merge
//     deterministically afterwards.
//   - steal on: free-running windows between barriers. Queues grow only
//     at arrival events, so while every wait queue is empty no
//     thief/victim pairing can exist before the next arrival time and
//     all shards drain strictly past it in parallel; the moment a queue
//     is non-empty the loop falls back to exact barrier cadence.
//
// After the last event every shard is advanced to the global makespan
// and closed out, so trailing idle energy is billed exactly as the
// unsharded scheduler bills it.
func (c *ShardedScheduler) Run() (makespan, energyJ float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: sharded scheduler: %v", r)
		}
	}()
	c.startWorkers()
	defer c.stopWorkers()
	switch {
	case c.fullBarriers || c.flight != nil:
		c.runBarriers()
	case !c.cfg.Steal:
		c.runFree()
	default:
		c.runElided()
	}
	pending := 0
	for _, sh := range c.shards {
		pending += sh.Pending()
	}
	if pending > 0 {
		return 0, 0, fmt.Errorf("core: sharded scheduler: %d jobs never completed", pending)
	}
	end := 0.0
	for _, sh := range c.shards {
		if now := sh.Engine.Now(); now > end {
			end = now
		}
	}
	for _, sh := range c.shards {
		sh.Engine.AdvanceTo(end)
		sh.finishRun()
	}
	var energy float64
	for _, sh := range c.shards { // shard order: deterministic float sum
		energy += sh.EnergyJ()
	}
	if c.flight != nil {
		// One closing epoch so trailing idle energy and the drained
		// final state land in the ring.
		c.recordBarrier(end)
	}
	return end, energy, nil
}

// runBarriers is the exact lock-step reference loop: one barrier per
// global event timestamp, each followed by the steal pass and, when a
// recorder is attached, a flight epoch.
func (c *ShardedScheduler) runBarriers() {
	for {
		t := c.nextBarrier()
		if math.IsInf(t, 1) {
			return
		}
		c.gatherActive(t, false)
		c.stats.Barriers++
		c.runSpan(shardCmd{horizon: t})
		if c.cfg.Steal {
			c.stealPass(t)
		}
		if c.flight != nil {
			c.recordBarrier(t)
		}
	}
}

// runFree drives a steal-free run: no cross-shard interaction exists,
// so the whole run is one free-running window with every shard drained
// to completion in parallel.
func (c *ShardedScheduler) runFree() {
	c.gatherActive(math.Inf(1), true)
	if len(c.active) == 0 {
		return
	}
	fired := c.totalFired()
	c.stats.Windows++
	c.runSpan(shardCmd{horizon: math.Inf(1), excl: true})
	c.stats.WindowEvents += c.totalFired() - fired
}

// runElided drives a steal-on run with barrier elision. The
// steal-eligibility invariant: a wait queue grows only at an arrival
// event (WaitQueue.Push is reached from arrive and acceptStolen alone),
// and every arrival time is known before Run. So when all queues are
// empty at the global next-event time t, the reference steal pass is a
// no-op at every barrier in [t, nextArrival) — there is no victim to
// steal from, which is precisely the reference pass's own early-out —
// and all shards can free-run through events strictly before
// nextArrival with no barrier at all. Otherwise one exact barrier (with
// its steal pass) runs at t, and the loop re-evaluates.
func (c *ShardedScheduler) runElided() {
	for {
		t := c.nextBarrier()
		if math.IsInf(t, 1) {
			return
		}
		if !c.anyQueued() {
			// Every arrival strictly before t has fired: each shard's
			// earliest unfired arrival keeps a pending event at its
			// time, so the global min next-event time t bounds it.
			for c.arrCursor < len(c.arrTimes) && c.arrTimes[c.arrCursor] < t {
				c.arrCursor++
			}
			horizon := math.Inf(1)
			if c.arrCursor < len(c.arrTimes) {
				horizon = c.arrTimes[c.arrCursor]
			}
			if horizon > t {
				c.gatherActive(horizon, true)
				fired := c.totalFired()
				c.stats.Windows++
				c.runSpan(shardCmd{horizon: horizon, excl: true})
				c.stats.WindowEvents += c.totalFired() - fired
				continue
			}
			// The next event is itself an arrival: barrier at t.
		}
		c.gatherActive(t, false)
		c.stats.Barriers++
		c.runSpan(shardCmd{horizon: t})
		c.stealPass(t)
	}
}

// nextBarrier returns the minimum next-event time across shards (+Inf
// when every engine is drained).
func (c *ShardedScheduler) nextBarrier() float64 {
	t := math.Inf(1)
	for _, sh := range c.shards {
		if at, ok := sh.Engine.NextAt(); ok && at < t {
			t = at
		}
	}
	return t
}

// gatherActive fills c.active with the shards holding an event at the
// barrier (excl false: NextAt <= horizon) or inside the window (excl
// true: NextAt < horizon).
func (c *ShardedScheduler) gatherActive(horizon float64, excl bool) {
	c.active = c.active[:0]
	for i, sh := range c.shards {
		if at, ok := sh.Engine.NextAt(); ok && (at < horizon || (!excl && at == horizon)) {
			c.active = append(c.active, i)
		}
	}
}

// anyQueued reports whether any shard has queued work — the
// steal-eligibility read, O(1) per shard off the wait-queue counters.
func (c *ShardedScheduler) anyQueued() bool {
	for _, sh := range c.shards {
		if sh.QueueLen() > 0 {
			return true
		}
	}
	return false
}

// totalFired sums shard event counts (window accounting).
func (c *ShardedScheduler) totalFired() int64 {
	var n int64
	for _, sh := range c.shards {
		n += sh.Engine.Fired()
	}
	return n
}

// startWorkers spawns one persistent drain goroutine per shard (none
// for a single shard — it always runs inline). Workers replace the
// per-epoch goroutine + WaitGroup churn: each barrier or window signals
// only the active shards over their channels.
func (c *ShardedScheduler) startWorkers() {
	c.serial = runtime.GOMAXPROCS(0) == 1
	if len(c.shards) == 1 || c.serial || c.workers != nil {
		return
	}
	c.panics = make([]any, len(c.shards))
	c.workers = make([]chan shardCmd, len(c.shards))
	for i := range c.shards {
		ch := make(chan shardCmd, 1)
		c.workers[i] = ch
		go func(i int, ch chan shardCmd) {
			for cmd := range ch {
				c.runShard(i, cmd)
				c.wwg.Done()
			}
		}(i, ch)
	}
}

// stopWorkers retires the drain goroutines (Run's defer).
func (c *ShardedScheduler) stopWorkers() {
	for _, ch := range c.workers {
		close(ch)
	}
	c.workers = nil
}

// runShard drains shard i per cmd, capturing a panic for the joining
// barrier to re-raise in shard order.
func (c *ShardedScheduler) runShard(i int, cmd shardCmd) {
	defer func() {
		if p := recover(); p != nil && c.panics[i] == nil {
			c.panics[i] = p
		}
	}()
	eng := c.shards[i].Engine
	if cmd.excl {
		eng.RunBefore(cmd.horizon)
	} else {
		eng.RunThrough(cmd.horizon)
	}
}

// runSpan drains every shard in c.active per cmd. One active shard (the
// overwhelmingly common barrier case) runs inline with zero goroutines
// and zero channel traffic; otherwise the first active shard runs
// inline while the rest are signaled to their workers, and panics are
// re-raised in shard order so Run's recover surfaces the same error a
// serial pass would.
func (c *ShardedScheduler) runSpan(cmd shardCmd) {
	active := c.active
	if len(active) == 0 {
		return
	}
	if len(active) == 1 || c.serial {
		for _, i := range active {
			sh := c.shards[i]
			if cmd.excl {
				sh.Engine.RunBefore(cmd.horizon)
			} else {
				sh.Engine.RunThrough(cmd.horizon)
			}
		}
		return
	}
	c.wwg.Add(len(active) - 1)
	for _, i := range active[1:] {
		c.workers[i] <- cmd
	}
	c.runShard(active[0], cmd)
	c.wwg.Wait()
	for _, i := range active {
		if p := c.panics[i]; p != nil {
			c.panics[i] = nil
			panic(p)
		}
	}
}

// stealPass runs single-threaded at the barrier: shards are scanned in
// index order; a shard with an empty queue and free capacity claims
// queue heads from its neighbors (nearest first, wrapping upward) up to
// min(StealBatch, FreeSlots) jobs, then dispatches them at the barrier
// time. Everything here is a function of shard state and t alone, so a
// steal that fires at t fires at t in every run of the same stream.
func (c *ShardedScheduler) stealPass(t float64) {
	queued := false
	for _, sh := range c.shards {
		if sh.QueueLen() > 0 {
			queued = true
			break
		}
	}
	if !queued {
		return // nothing to steal anywhere — the common barrier
	}
	s := len(c.shards)
	for i, thief := range c.shards {
		if thief.QueueLen() > 0 {
			continue
		}
		budget := thief.FreeSlots()
		if budget > c.cfg.StealBatch {
			budget = c.cfg.StealBatch
		}
		if budget <= 0 {
			continue
		}
		claimed := 0
		for k := 1; k < s && budget > 0; k++ {
			vi := (i + k) % s
			victim := c.shards[vi]
			for budget > 0 && victim.QueueLen() > 0 {
				victim.Engine.AdvanceTo(t)
				// The link id is the global steal sequence number — a
				// function of shard state and t alone, so the victim's
				// steal_out span and the thief's steal_in span carry
				// the same id in every run of the same stream.
				link := c.steals + 1
				j := victim.releaseHead(t, i, link)
				if j == nil {
					break
				}
				thief.Engine.AdvanceTo(t)
				thief.acceptStolen(j, vi, t, link)
				c.flight.Steal(vi, i)
				c.steals++
				claimed++
				budget--
			}
		}
		if claimed > 0 {
			thief.dispatch()
		}
	}
}

// Completed returns all finished jobs merged across shards, ordered by
// (finish time, job id) — the id tie-break makes the merged order
// deterministic where the single-shard sort tolerated ambiguity. With
// one shard it defers to that shard's own ordering for exact legacy
// equivalence.
//
// Each shard appends completions at its own completion events, so the
// per-shard slices are already in nondecreasing finish order and a
// linear S-way merge replaces the global sort (which burned ~15% of the
// sharded bench in comparator closures and 120-byte struct swaps). The
// rare shard whose same-instant completions landed out of id order
// falls back to the sort; both paths produce the identical unique
// (Finished, ID) total order.
func (c *ShardedScheduler) Completed() []CompletedJob {
	if len(c.shards) == 1 {
		return c.shards[0].Completed()
	}
	total := 0
	sorted := true
	for _, sh := range c.shards {
		total += len(sh.completed)
		for i := 1; sorted && i < len(sh.completed); i++ {
			a, b := &sh.completed[i-1], &sh.completed[i]
			if a.Finished > b.Finished || (a.Finished == b.Finished && a.ID > b.ID) {
				sorted = false
			}
		}
	}
	out := make([]CompletedJob, 0, total)
	if !sorted {
		for _, sh := range c.shards {
			out = append(out, sh.completed...)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Finished != out[j].Finished {
				return out[i].Finished < out[j].Finished
			}
			return out[i].ID < out[j].ID
		})
		return out
	}
	idx := make([]int, len(c.shards))
	for len(out) < total {
		best := -1
		for si := range c.shards {
			i := idx[si]
			if i >= len(c.shards[si].completed) {
				continue
			}
			if best < 0 {
				best = si
				continue
			}
			a, b := &c.shards[si].completed[i], &c.shards[best].completed[idx[best]]
			if a.Finished < b.Finished || (a.Finished == b.Finished && a.ID < b.ID) {
				best = si
			}
		}
		out = append(out, c.shards[best].completed[idx[best]])
		idx[best]++
	}
	return out
}

// EnergyJ sums shard energy in shard order.
func (c *ShardedScheduler) EnergyJ() float64 {
	var e float64
	for _, sh := range c.shards {
		e += sh.EnergyJ()
	}
	return e
}

// Phases sums the per-shard phase splits in shard order.
func (c *ShardedScheduler) Phases() power.PhaseAccumulator {
	var p power.PhaseAccumulator
	for _, sh := range c.shards {
		sp := sh.Phases()
		p.IdleJ += sp.IdleJ
		p.SoloJ += sp.SoloJ
		p.CoJ += sp.CoJ
	}
	return p
}

// QueueLen sums the shard wait-queue lengths.
func (c *ShardedScheduler) QueueLen() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.QueueLen()
	}
	return n
}

// SetFastAccrual toggles the O(1) aggregate accrual path on every
// shard (see OnlineScheduler.SetFastAccrual for when it engages).
func (c *ShardedScheduler) SetFastAccrual(v bool) {
	for _, sh := range c.shards {
		sh.SetFastAccrual(v)
	}
}

package core

// The sharded control plane: the cluster is partitioned across S
// per-shard OnlineSchedulers — each owning its own node slice, engine,
// wait-queue index, and tune-cache shard — with submissions routed by a
// deterministic app/tenant hash and a bounded work-stealing pass at
// event-loop barriers. Shards advance in lock-step epochs between
// global event timestamps (the PR 2 deterministic-merge worker-pool
// pattern applied to the online loop), so every export — metrics
// snapshots, timelines, decision logs, completions, energy — is a pure
// function of the submitted stream at any GOMAXPROCS, and steals fire
// at deterministic sim times rather than goroutine-timing-dependent
// moments.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"ecost/internal/flight"
	"ecost/internal/mapreduce"
	"ecost/internal/power"
	"ecost/internal/sim"
	"ecost/internal/tracing"
	"ecost/internal/workloads"
)

// ShardedConfig parameterizes the sharded control plane.
type ShardedConfig struct {
	// Shards is the number of per-shard schedulers (1..nodes).
	Shards int
	// Steal enables the barrier work-stealing pass: a shard with an
	// empty queue and free capacity claims queued jobs from neighbors.
	Steal bool
	// StealBatch caps how many jobs one shard claims per barrier
	// (0 = DefaultStealBatch). The cap bounds how far a single barrier
	// can rebalance, keeping steal-induced divergence local.
	StealBatch int
	// ProfileMemo replaces the router's serial noisy profiling with
	// noise-free ObserveExact profiles memoized by (app, size). Recurring
	// tenants then profile once ever — the "recurring jobs have
	// recurring profiles" shortcut — at the cost of exact equivalence
	// with the legacy sampler-noise stream. Benchmarks and large
	// scenario sweeps want this; equivalence goldens must not.
	ProfileMemo bool
}

// DefaultStealBatch bounds per-barrier claims when StealBatch is 0.
const DefaultStealBatch = 8

// ShardedScheduler drives S per-shard OnlineSchedulers in lock-step
// epochs. Build with NewShardedScheduler, attach per-shard
// observability via Shard(i), Submit the stream in nondecreasing
// arrival order, then Run.
type ShardedScheduler struct {
	cfg    ShardedConfig
	shards []*OnlineScheduler
	prof   *Profiler

	// memo caches router profiles under ProfileMemo.
	memo map[profileKey]Observation

	nextID int
	lastAt float64
	steals int

	// flight is the barrier-epoch flight recorder (nil = off; see
	// SetFlight). flightT0 is the previous barrier time (each epoch
	// record spans [flightT0, t]); statBuf is the reusable per-barrier
	// sample buffer.
	flight   *flight.Recorder
	flightT0 float64
	statBuf  []flight.ShardStat
}

type profileKey struct {
	app    string
	sizeGB float64
}

// routeShard maps an application/tenant name to its home shard: FNV-1a
// over the name, mod S. The hash is stable across processes and
// platforms, so a recurring tenant always lands on the same shard —
// which is what lets the per-shard tune caches and wait-queue indexes
// stay hot for its recurring profile.
func routeShard(name string, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(shards))
}

// NewShardedScheduler partitions `nodes` across cfg.Shards schedulers
// (near-even split: the first nodes%S shards own one extra node) over a
// shared model, database, and profiler. newTuner builds one tuner per
// shard so each shard owns its own memo shard (pass a closure returning
// a fresh MemoSTP); it must return non-nil. The model and database are
// shared across shard goroutines: the database's caches are
// synchronized, and the model must not carry a metrics registry (its
// emissions would interleave nondeterministically).
func NewShardedScheduler(model *mapreduce.Model, db *Database, prof *Profiler, newTuner func() STP, nodes int, cfg ShardedConfig) (*ShardedScheduler, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("core: sharded scheduler: need at least one shard")
	}
	if cfg.Shards > nodes {
		return nil, fmt.Errorf("core: sharded scheduler: %d shards exceed %d nodes", cfg.Shards, nodes)
	}
	if newTuner == nil {
		return nil, fmt.Errorf("core: sharded scheduler: nil tuner factory")
	}
	if cfg.StealBatch <= 0 {
		cfg.StealBatch = DefaultStealBatch
	}
	c := &ShardedScheduler{cfg: cfg, prof: prof}
	if cfg.ProfileMemo {
		c.memo = make(map[profileKey]Observation)
	}
	base := 0
	for i := 0; i < cfg.Shards; i++ {
		n := nodes / cfg.Shards
		if i < nodes%cfg.Shards {
			n++
		}
		tuner := newTuner()
		if tuner == nil {
			return nil, fmt.Errorf("core: sharded scheduler: tuner factory returned nil for shard %d", i)
		}
		sh, err := NewOnlineScheduler(sim.NewEngine(), model, db, tuner, prof, n)
		if err != nil {
			return nil, fmt.Errorf("core: sharded scheduler: shard %d: %w", i, err)
		}
		sh.SetNodeBase(base)
		// Steady-solve memoization is bit-identical to solving (proven
		// by the single-shard equivalence golden) and recurring tenants
		// concentrate per shard by construction, so every shard gets it.
		sh.SetSteadyMemo(true)
		base += n
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Shards reports the shard count.
func (c *ShardedScheduler) Shards() int { return len(c.shards) }

// Shard returns the i-th per-shard scheduler, for attaching per-shard
// observability (SetMetrics/SetTracer/SetAudit — each shard needs its
// own registry, tracer, and log; they are written concurrently during
// epochs) and reading per-shard exports afterwards.
func (c *ShardedScheduler) Shard(i int) *OnlineScheduler { return c.shards[i] }

// Steals reports how many jobs migrated between shards.
func (c *ShardedScheduler) Steals() int { return c.steals }

// ShardNodes returns each shard's node count in shard order.
func (c *ShardedScheduler) ShardNodes() []int {
	out := make([]int, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.Nodes()
	}
	return out
}

// SetFlight attaches a flight recorder: every barrier epoch emits one
// wide record per shard, each shard's forecast joins and drift alerts
// flow into its collector, and the steal pass reports per-edge flow.
// The recorder's triggers read shard queues through the tenant source
// to name the implicated applications. Pass nil to detach (the
// disabled path costs one branch per barrier).
func (c *ShardedScheduler) SetFlight(r *flight.Recorder) {
	c.flight = r
	for i, sh := range c.shards {
		sh.SetFlight(r.Collector(i))
	}
	r.SetTenantSource(func(shard, max int) []string {
		return c.shards[shard].TopTenants(max)
	})
}

// SetTracer attaches a sharded span tracer: one fresh Tracer per shard
// — reading that shard's engine clock, stamped with its shard index —
// appended to ts in shard order. Call before the first Submit on a
// fresh ShardSet; pass nil to detach every shard. Each shard's tracer
// is written only by that shard's goroutine between barriers (plus the
// single-threaded steal pass), and ts merges the span sets
// deterministically for export.
func (c *ShardedScheduler) SetTracer(ts *tracing.ShardSet) {
	for _, sh := range c.shards {
		if ts == nil {
			sh.SetTracer(nil)
			continue
		}
		tr := tracing.New(sh.Engine.Clock())
		ts.Attach(tr)
		sh.SetTracer(tr)
	}
}

// recordBarrier samples every shard after a barrier's events and steal
// pass have settled and closes the epoch [flightT0, t] in the
// recorder. Runs on the barrier goroutine only — the epoch WaitGroup
// ordered all shard writes before it.
func (c *ShardedScheduler) recordBarrier(t float64) {
	stats := c.statBuf[:0]
	for _, sh := range c.shards {
		st := flight.ShardStat{
			Queue:   sh.QueueLen(),
			Free:    sh.FreeSlots(),
			Active:  sh.Pending() - sh.QueueLen(),
			EnergyJ: sh.EnergyJ(),
		}
		if m := memoOf(sh.Tuner); m != nil {
			st.TuneHits, st.TuneMisses = m.HitMiss()
		}
		stats = append(stats, st)
	}
	c.statBuf = stats
	c.flight.RecordEpoch(c.flightT0, t, stats)
	c.flightT0 = t
}

// memoOf unwraps the shard tuner chain down to its MemoSTP, if any
// (the deterministic tune-cache hit/miss source for epoch records).
func memoOf(t STP) *MemoSTP {
	for t != nil {
		switch v := t.(type) {
		case *MemoSTP:
			return v
		case *MeteredSTP:
			t = v.Inner
		default:
			return nil
		}
	}
	return nil
}

// Submit routes a job arrival to its home shard. Arrivals must be
// submitted in nondecreasing time order: the router profiles serially
// at submission so the sampler's draw sequence matches the legacy
// scheduler's in-event profiling order (every stream source — scenario
// generators, trace replay, workload cycling — emits sorted arrivals).
func (c *ShardedScheduler) Submit(app workloads.App, sizeGB, at float64) {
	if at < c.lastAt {
		panic(fmt.Sprintf("core: sharded scheduler: out-of-order submission at %g after %g", at, c.lastAt))
	}
	c.lastAt = at
	obs, err := c.profile(app, sizeGB)
	if err != nil {
		panic(fmt.Sprintf("core: sharded profile: %v", err))
	}
	id := c.nextID
	c.nextID++
	c.shards[routeShard(app.Name, len(c.shards))].SubmitObserved(id, obs, at)
}

func (c *ShardedScheduler) profile(app workloads.App, sizeGB float64) (Observation, error) {
	if c.memo == nil {
		return c.prof.Observe(app, sizeGB)
	}
	k := profileKey{app.Name, sizeGB}
	if obs, ok := c.memo[k]; ok {
		return obs, nil
	}
	obs, err := c.prof.ObserveExact(app, sizeGB)
	if err == nil {
		c.memo[k] = obs
	}
	return obs, err
}

// Run drives all shards to completion in lock-step epochs and returns
// the global makespan and summed energy. Each epoch: (1) the barrier is
// the minimum next-event time across shards, (2) every shard with work
// at the barrier drains its events through it — in parallel when more
// than one shard is active, which cannot change any result because
// shards share no mutable state — and (3) with stealing enabled, a
// single-threaded deterministic steal pass runs at the barrier. After
// the last event every shard is advanced to the global makespan and
// closed out, so trailing idle energy is billed exactly as the
// unsharded scheduler bills it.
func (c *ShardedScheduler) Run() (makespan, energyJ float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: sharded scheduler: %v", r)
		}
	}()
	active := make([]*OnlineScheduler, 0, len(c.shards))
	for {
		t := math.Inf(1)
		for _, sh := range c.shards {
			if at, ok := sh.Engine.NextAt(); ok && at < t {
				t = at
			}
		}
		if math.IsInf(t, 1) {
			break
		}
		active = active[:0]
		for _, sh := range c.shards {
			if at, ok := sh.Engine.NextAt(); ok && at <= t {
				active = append(active, sh)
			}
		}
		c.runEpoch(active, t)
		if c.cfg.Steal {
			c.stealPass(t)
		}
		if c.flight != nil {
			c.recordBarrier(t)
		}
	}
	pending := 0
	for _, sh := range c.shards {
		pending += sh.Pending()
	}
	if pending > 0 {
		return 0, 0, fmt.Errorf("core: sharded scheduler: %d jobs never completed", pending)
	}
	end := 0.0
	for _, sh := range c.shards {
		if now := sh.Engine.Now(); now > end {
			end = now
		}
	}
	for _, sh := range c.shards {
		sh.Engine.AdvanceTo(end)
		sh.finishRun()
	}
	var energy float64
	for _, sh := range c.shards { // shard order: deterministic float sum
		energy += sh.EnergyJ()
	}
	if c.flight != nil {
		// One closing epoch so trailing idle energy and the drained
		// final state land in the ring.
		c.recordBarrier(end)
	}
	return end, energy, nil
}

// runEpoch drains every active shard through the barrier. One active
// shard (the overwhelmingly common case — barriers sit at every
// distinct global event timestamp) runs inline with zero goroutines;
// timestamp collisions fan out across a transient worker group, with
// panics captured and re-raised in shard order so Run's recover turns
// the first failure into the same error a serial pass would surface.
func (c *ShardedScheduler) runEpoch(active []*OnlineScheduler, t float64) {
	if len(active) == 1 {
		active[0].Engine.RunThrough(t)
		return
	}
	panics := make([]any, len(active))
	var wg sync.WaitGroup
	for i := 1; i < len(active); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			active[i].Engine.RunThrough(t)
		}(i)
	}
	func() {
		defer func() { panics[0] = recover() }()
		active[0].Engine.RunThrough(t)
	}()
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// stealPass runs single-threaded at the barrier: shards are scanned in
// index order; a shard with an empty queue and free capacity claims
// queue heads from its neighbors (nearest first, wrapping upward) up to
// min(StealBatch, FreeSlots) jobs, then dispatches them at the barrier
// time. Everything here is a function of shard state and t alone, so a
// steal that fires at t fires at t in every run of the same stream.
func (c *ShardedScheduler) stealPass(t float64) {
	queued := false
	for _, sh := range c.shards {
		if sh.QueueLen() > 0 {
			queued = true
			break
		}
	}
	if !queued {
		return // nothing to steal anywhere — the common barrier
	}
	s := len(c.shards)
	for i, thief := range c.shards {
		if thief.QueueLen() > 0 {
			continue
		}
		budget := thief.FreeSlots()
		if budget > c.cfg.StealBatch {
			budget = c.cfg.StealBatch
		}
		if budget <= 0 {
			continue
		}
		claimed := 0
		for k := 1; k < s && budget > 0; k++ {
			vi := (i + k) % s
			victim := c.shards[vi]
			for budget > 0 && victim.QueueLen() > 0 {
				victim.Engine.AdvanceTo(t)
				// The link id is the global steal sequence number — a
				// function of shard state and t alone, so the victim's
				// steal_out span and the thief's steal_in span carry
				// the same id in every run of the same stream.
				link := c.steals + 1
				j := victim.releaseHead(t, i, link)
				if j == nil {
					break
				}
				thief.Engine.AdvanceTo(t)
				thief.acceptStolen(j, vi, t, link)
				c.flight.Steal(vi, i)
				c.steals++
				claimed++
				budget--
			}
		}
		if claimed > 0 {
			thief.dispatch()
		}
	}
}

// Completed returns all finished jobs merged across shards, ordered by
// (finish time, job id) — the id tie-break makes the merged order
// deterministic where the single-shard sort tolerated ambiguity. With
// one shard it defers to that shard's own ordering for exact legacy
// equivalence.
func (c *ShardedScheduler) Completed() []CompletedJob {
	if len(c.shards) == 1 {
		return c.shards[0].Completed()
	}
	var out []CompletedJob
	for _, sh := range c.shards {
		out = append(out, sh.completed...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Finished != out[j].Finished {
			return out[i].Finished < out[j].Finished
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// EnergyJ sums shard energy in shard order.
func (c *ShardedScheduler) EnergyJ() float64 {
	var e float64
	for _, sh := range c.shards {
		e += sh.EnergyJ()
	}
	return e
}

// Phases sums the per-shard phase splits in shard order.
func (c *ShardedScheduler) Phases() power.PhaseAccumulator {
	var p power.PhaseAccumulator
	for _, sh := range c.shards {
		sp := sh.Phases()
		p.IdleJ += sp.IdleJ
		p.SoloJ += sp.SoloJ
		p.CoJ += sp.CoJ
	}
	return p
}

// QueueLen sums the shard wait-queue lengths.
func (c *ShardedScheduler) QueueLen() int {
	n := 0
	for _, sh := range c.shards {
		n += sh.QueueLen()
	}
	return n
}

// SetFastAccrual toggles the O(1) aggregate accrual path on every
// shard (see OnlineScheduler.SetFastAccrual for when it engages).
func (c *ShardedScheduler) SetFastAccrual(v bool) {
	for _, sh := range c.shards {
		sh.SetFastAccrual(v)
	}
}

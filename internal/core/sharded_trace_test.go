package core

// Cross-shard distributed tracing tests: the SetTracer fan-out, the
// deterministic merge, steal flow linkage, and the shard-wise
// extension of the energy-conservation invariants.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"
	"runtime"
	"testing"

	"ecost/internal/audit"
	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/tracing"
)

// runShardedTraceSet drives one sharded run with the full
// observability stack attached, the tracers wired through the control
// plane's SetTracer fan-out (the CLI path). The registries and audit
// logs mirror runSharded/equivRun so a 1-shard run is byte-comparable
// with the legacy unsharded scheduler.
func runShardedTraceSet(t *testing.T, nodes int, cfg ShardedConfig, submit func(c *ShardedScheduler)) (*ShardedScheduler, *tracing.ShardSet) {
	t.Helper()
	fixture(t)
	prof := NewProfiler(fix.model, sim.NewRNG(99))
	regs := make([]*metrics.Registry, 0, cfg.Shards)
	newTuner := func() STP {
		reg := metrics.NewRegistry()
		regs = append(regs, reg)
		return NewMeteredSTP(NewMemoSTP(fix.lkt, reg), fix.model, reg)
	}
	c, err := NewShardedScheduler(fix.model, fix.db, prof, newTuner, nodes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := c.Shard(i)
		sh.SetMetrics(regs[i])
		sh.SetAudit(audit.NewLog(audit.DriftConfig{}))
	}
	ts := tracing.NewShardSet()
	c.SetTracer(ts)
	submit(c)
	if _, _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c, ts
}

// render captures one export surface as a string.
func render(t *testing.T, write func(w *bytes.Buffer) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestShardSetSingleShardLegacyEquivalence: with one shard, the
// ShardSet's merged exports are byte-identical to the legacy unsharded
// tracer's — the timeline matches the unsharded scheduler's run of the
// same stream, and both ShardSet exporters delegate exactly to the
// solo tracer.
func TestShardSetSingleShardLegacyEquivalence(t *testing.T) {
	legacy := equivRun(t, false)
	submitWS4 := func(c *ShardedScheduler) {
		wl, err := Scenario("WS4")
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range wl.Jobs {
			c.Submit(j.App, j.SizeGB, float64(i)*40)
		}
	}
	c, ts := runShardedTraceSet(t, 2, ShardedConfig{Shards: 1}, submitWS4)
	if got := ts.Shards(); got != 1 {
		t.Fatalf("SetTracer attached %d tracers, want 1", got)
	}
	if got := render(t, func(w *bytes.Buffer) error { return ts.WriteTimeline(w) }); got != legacy.timeline {
		t.Fatalf("1-shard ShardSet timeline != legacy unsharded timeline:\n--- sharded ---\n%s\n--- legacy ---\n%s",
			got, legacy.timeline)
	}
	solo := ts.Tracer(0)
	if got, want := render(t, func(w *bytes.Buffer) error { return ts.WriteChromeTrace(w) }),
		render(t, func(w *bytes.Buffer) error { return solo.WriteChromeTrace(w) }); got != want {
		t.Fatal("1-shard ShardSet Chrome trace != solo tracer export")
	}
	rep := ts.Report()
	if rel := relErr(rep.Phases.TotalJ(), c.EnergyJ()); rel > 1e-9 {
		t.Fatalf("merged report energy %.6f != scheduler energy %.6f (rel %g)", rep.Phases.TotalJ(), c.EnergyJ(), rel)
	}
}

// TestShardedMergedTraceGOMAXPROCSInvariance: the merged Chrome trace
// and timeline of a steal-heavy multi-shard run are byte-identical at
// GOMAXPROCS 1 and 4 — the merge is a pure function of the stream,
// invariant to shard drain order.
func TestShardedMergedTraceGOMAXPROCSInvariance(t *testing.T) {
	var baseChrome, baseTimeline string
	for i, procs := range []int{1, 4} {
		old := runtime.GOMAXPROCS(procs)
		c, ts := runShardedTraceSet(t, 8, ShardedConfig{Shards: 4, Steal: true}, skewedStream(t, 48, 10))
		runtime.GOMAXPROCS(old)
		if c.Steals() == 0 {
			t.Fatal("steal pass never fired — the invariance case is vacuous")
		}
		chrome := render(t, func(w *bytes.Buffer) error { return ts.WriteChromeTrace(w) })
		timeline := render(t, func(w *bytes.Buffer) error { return ts.WriteTimeline(w) })
		if i == 0 {
			baseChrome, baseTimeline = chrome, timeline
			continue
		}
		if chrome != baseChrome {
			t.Fatal("merged Chrome trace diverged across GOMAXPROCS")
		}
		if timeline != baseTimeline {
			t.Fatal("merged timeline diverged across GOMAXPROCS")
		}
	}
}

// TestShardedStealFlowPairs: every steal produces exactly one
// victim-side steal_out span and one thief-side steal_in span sharing
// a unique link id, each naming the counterparty shard, and the merged
// Chrome export joins them with a flow-start ("s") / flow-finish ("f")
// event pair per link.
func TestShardedStealFlowPairs(t *testing.T) {
	c, ts := runShardedTraceSet(t, 8, ShardedConfig{Shards: 4, Steal: true}, skewedStream(t, 48, 10))
	steals := c.Steals()
	if steals == 0 {
		t.Fatal("steal pass never fired")
	}
	outs := map[int]tracing.Span{}
	ins := map[int]tracing.Span{}
	for _, s := range ts.Merge() {
		switch s.Kind {
		case tracing.KindStealOut:
			if _, dup := outs[s.Attrs.Link]; dup {
				t.Fatalf("link %d has two steal_out spans", s.Attrs.Link)
			}
			outs[s.Attrs.Link] = s
		case tracing.KindStealIn:
			if _, dup := ins[s.Attrs.Link]; dup {
				t.Fatalf("link %d has two steal_in spans", s.Attrs.Link)
			}
			ins[s.Attrs.Link] = s
		}
	}
	if len(outs) != steals || len(ins) != steals {
		t.Fatalf("%d steal_out and %d steal_in spans for %d steals", len(outs), len(ins), steals)
	}
	for link, out := range outs {
		in, ok := ins[link]
		if !ok {
			t.Fatalf("steal_out link %d has no steal_in counterpart", link)
		}
		if out.Attrs.Job != in.Attrs.Job || out.Attrs.App != in.Attrs.App || out.Start != in.Start {
			t.Fatalf("link %d halves disagree: out %+v in %+v", link, out.Attrs, in.Attrs)
		}
		if out.Shard == in.Shard {
			t.Fatalf("link %d stayed on shard %d — steals are cross-shard by construction", link, out.Shard)
		}
		// Each half names the counterparty shard.
		if want := fmt.Sprintf("to=shard%d", in.Shard); out.Attrs.Detail != want {
			t.Fatalf("link %d steal_out detail %q, want %q", link, out.Attrs.Detail, want)
		}
		if want := fmt.Sprintf("from=shard%d", out.Shard); in.Attrs.Detail != want {
			t.Fatalf("link %d steal_in detail %q, want %q", link, in.Attrs.Detail, want)
		}
	}

	// The merged Chrome document carries one flow pair per steal, ids
	// matching the span links.
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
			ID int    `json:"id"`
			BP string `json:"bp"`
		} `json:"traceEvents"`
	}
	raw := render(t, func(w *bytes.Buffer) error { return ts.WriteChromeTrace(w) })
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	starts := map[int]int{}
	finishes := map[int]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			starts[e.ID]++
		case "f":
			finishes[e.ID]++
			if e.BP != "e" {
				t.Fatalf("flow finish id %d missing bp=e binding", e.ID)
			}
		}
	}
	if len(starts) != steals || len(finishes) != steals {
		t.Fatalf("%d flow starts and %d finishes for %d steals", len(starts), len(finishes), steals)
	}
	for link := range outs {
		if starts[link] != 1 || finishes[link] != 1 {
			t.Fatalf("link %d has %d flow starts and %d finishes, want 1/1", link, starts[link], finishes[link])
		}
	}

	// The merged timeline renders both halves with their link ids.
	timeline := render(t, func(w *bytes.Buffer) error { return ts.WriteTimeline(w) })
	for _, pat := range []string{`steal_out`, `steal_in`, `link=1\b`, `== merged ==`} {
		if !regexp.MustCompile(pat).MatchString(timeline) {
			t.Fatalf("merged timeline missing %q:\n%s", pat, timeline[:min(2000, len(timeline))])
		}
	}
}

// TestShardedTraceEnergyConservation extends the conservation
// invariants shard-wise: per shard, the node-occupancy spans integrate
// exactly that shard's engine energy; summed over shards they match
// the global total the merged report prints; and the merged run spans
// carry exactly the solo+co-located share.
func TestShardedTraceEnergyConservation(t *testing.T) {
	c, ts := runShardedTraceSet(t, 8, ShardedConfig{Shards: 4, Steal: true}, skewedStream(t, 48, 10))
	if c.Steals() == 0 {
		t.Fatal("steal pass never fired — conservation across steals is vacuous")
	}
	var nodeSum float64
	for i := 0; i < c.Shards(); i++ {
		spans := ts.Tracer(i).Spans()
		shardNodes := tracing.TotalEnergyJ(spans, tracing.KindNode)
		if rel := relErr(shardNodes, c.Shard(i).EnergyJ()); rel > 1e-9 {
			t.Fatalf("shard %d: node spans %.6f J != engine energy %.6f J (rel %g)",
				i, shardNodes, c.Shard(i).EnergyJ(), rel)
		}
		nodeSum += shardNodes
	}
	if rel := relErr(nodeSum, c.EnergyJ()); rel > 1e-9 {
		t.Fatalf("Σ per-shard node spans %.6f J != global energy %.6f J (rel %g)", nodeSum, c.EnergyJ(), rel)
	}
	merged := ts.Merge()
	p := c.Phases()
	runSum := tracing.TotalEnergyJ(merged, tracing.KindRun)
	if rel := relErr(runSum, p.SoloJ+p.CoJ); rel > 1e-9 {
		t.Fatalf("merged run spans %.6f J != solo+co %.6f J (rel %g)", runSum, p.SoloJ+p.CoJ, rel)
	}
	phaseSum := tracing.TotalEnergyJ(merged, tracing.KindMap) + tracing.TotalEnergyJ(merged, tracing.KindReduce)
	if rel := relErr(phaseSum, runSum); rel > 1e-9 {
		t.Fatalf("merged map+reduce spans %.6f J != run spans %.6f J (rel %g)", phaseSum, runSum, rel)
	}
	// Steal spans are instantaneous markers: they carry no energy.
	for _, k := range []tracing.Kind{tracing.KindStealOut, tracing.KindStealIn} {
		if e := tracing.TotalEnergyJ(merged, k); e != 0 {
			t.Fatalf("%v spans carry %.6f J, want 0", k, e)
		}
	}
	rep := ts.Report()
	if rel := relErr(rep.Phases.TotalJ(), c.EnergyJ()); rel > 1e-9 {
		t.Fatalf("merged report total %.6f J != global energy %.6f J (rel %g)", rep.Phases.TotalJ(), c.EnergyJ(), rel)
	}
	if rel := relErr(rep.AttributedJ, p.SoloJ+p.CoJ); rel > 1e-9 {
		t.Fatalf("merged report attributed %.6f J != solo+co %.6f J (rel %g)", rep.AttributedJ, p.SoloJ+p.CoJ, rel)
	}
}

package core

import (
	"sync"

	"ecost/internal/mapreduce"
)

// The MLM-STP argmin and the database's training-row sweep both iterate
// ConfigRow over the full joint configuration space for a (sizeA,
// sizeB) combination. The row depends only on (cores, sizeA, sizeB) —
// the knobs come from the shared PairConfigsCached enumeration — so the
// whole design matrix is precomputed once per combination and shared,
// exactly like PairConfigsCached: the data-size grid is tiny (the
// paper's 1/5/10 GB), so the cache stays small while every prediction
// drops from 11,200 ConfigRow allocations to zero.

type designKey struct {
	cores        int
	sizeA, sizeB float64
}

var designCache sync.Map // designKey → [][]float64

// DesignMatrixCached returns the ConfigRow design matrix for every
// configuration in PairConfigsCached(cores), in enumeration order:
// row i is ConfigRow(sizeA, sizeB, PairConfigsCached(cores)[i]).
// The matrix is shared — callers must not mutate the rows.
func DesignMatrixCached(cores int, sizeA, sizeB float64) [][]float64 {
	k := designKey{cores, sizeA, sizeB}
	if v, ok := designCache.Load(k); ok {
		return v.([][]float64)
	}
	pcs := mapreduce.PairConfigsCached(cores)
	if len(pcs) == 0 {
		return nil
	}
	rows := make([][]float64, len(pcs))
	// One backing array keeps the matrix cache-dense for the sweep.
	width := len(ConfigRow(sizeA, sizeB, pcs[0]))
	flat := make([]float64, len(pcs)*width)
	for i, pc := range pcs {
		row := flat[i*width : (i+1)*width : (i+1)*width]
		copy(row, ConfigRow(sizeA, sizeB, pc))
		rows[i] = row
	}
	v, _ := designCache.LoadOrStore(k, rows)
	return v.([][]float64)
}

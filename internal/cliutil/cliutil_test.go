package cliutil

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug":   slog.LevelDebug,
		"info":    slog.LevelInfo,
		"warn":    slog.LevelWarn,
		"WARNING": slog.LevelWarn,
		"Error":   slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestSetupLoggingFilters(t *testing.T) {
	old := slog.Default()
	defer slog.SetDefault(old)
	var buf bytes.Buffer
	if err := SetupLogging(&buf, "warn"); err != nil {
		t.Fatal(err)
	}
	slog.Info("hidden")
	slog.Warn("shown", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Errorf("info line leaked through warn level: %q", out)
	}
	if !strings.Contains(out, "shown") || !strings.Contains(out, "k=1") {
		t.Errorf("warn line missing: %q", out)
	}
	if err := SetupLogging(&buf, "nope"); err == nil {
		t.Error("SetupLogging accepted an unknown level")
	}
}

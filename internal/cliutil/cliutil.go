// Package cliutil holds the small pieces shared by the ecost command
// line tools: structured-logging setup and the exit-code convention
// (2 for flag/usage errors, 1 for runtime failures).
package cliutil

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// ExitUsage is the exit code for invalid flags or flag combinations,
// matching the convention of flag.ExitOnError.
const ExitUsage = 2

// ParseLevel maps a -log-level flag value onto a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
	}
}

// SetupLogging installs the process-wide slog default: a text handler
// on w (normally os.Stderr) at the named level. It returns an error
// for an unrecognized level name; callers should exit with ExitUsage.
func SetupLogging(w io.Writer, level string) error {
	l, err := ParseLevel(level)
	if err != nil {
		return err
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: l})))
	return nil
}

// Fatalf logs err at error level with the given message and exits 1.
// It replaces the bare fmt.Fprintln(os.Stderr, ...) error paths the
// commands used to have.
func Fatalf(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// Usagef logs a flag-validation failure and exits ExitUsage.
func Usagef(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(ExitUsage)
}

// Package hdfs simulates the aspects of the Hadoop Distributed File
// System that matter to the ECoST study: the HDFS block size knob
// (64–1024 MB), how a dataset of a given size splits into input blocks,
// replica placement across nodes, and the data-locality fraction that the
// MapReduce model uses to cost block reads.
//
// The paper flushes the buffer page cache before each run so every block
// is read fresh from disk; the model therefore charges full disk reads.
package hdfs

import (
	"fmt"
	"sort"
)

// BlockMB is an HDFS block size in megabytes.
type BlockMB int

// The block sizes studied in the paper.
const (
	Block64   BlockMB = 64
	Block128  BlockMB = 128
	Block256  BlockMB = 256
	Block512  BlockMB = 512
	Block1024 BlockMB = 1024
)

// BlockSizes lists the studied HDFS block sizes in ascending order.
func BlockSizes() []BlockMB {
	return []BlockMB{Block64, Block128, Block256, Block512, Block1024}
}

// ValidBlock reports whether b is one of the studied block sizes.
func ValidBlock(b BlockMB) bool {
	for _, x := range BlockSizes() {
		if x == b {
			return true
		}
	}
	return false
}

// DefaultReplication is the HDFS default replica count.
const DefaultReplication = 3

// Splits returns the number of input splits (map tasks) for a dataset of
// dataMB megabytes at block size b: ceil(dataMB/b), at least 1 for any
// non-empty dataset.
func Splits(dataMB float64, b BlockMB) int {
	if dataMB <= 0 {
		return 0
	}
	n := int(dataMB) / int(b)
	if float64(n*int(b)) < dataMB {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// LastSplitMB returns the size of the final (possibly short) split.
func LastSplitMB(dataMB float64, b BlockMB) float64 {
	n := Splits(dataMB, b)
	if n == 0 {
		return 0
	}
	rem := dataMB - float64((n-1)*int(b))
	if rem <= 0 {
		rem = float64(b)
	}
	return rem
}

// Block is one replicated block of a stored file.
type Block struct {
	File     string
	Index    int
	SizeMB   float64
	Replicas []int // node ids holding a replica
}

// File is a dataset stored in the simulated HDFS.
type File struct {
	Name    string
	SizeMB  float64
	BlockMB BlockMB
	Blocks  []Block
}

// FS is a simulated HDFS namespace over a fixed set of nodes. Placement
// is deterministic: block replicas round-robin across nodes starting at a
// rotating offset, mimicking HDFS's even spread without rack topology.
type FS struct {
	nodes       int
	replication int
	files       map[string]*File
	nextOffset  int
	usedMB      []float64 // per-node stored bytes
}

// New returns an empty filesystem over n nodes with the given replica
// count (clamped to n).
func New(n, replication int) *FS {
	if n <= 0 {
		panic(fmt.Sprintf("hdfs: node count %d must be positive", n))
	}
	if replication < 1 {
		replication = 1
	}
	if replication > n {
		replication = n
	}
	return &FS{
		nodes:       n,
		replication: replication,
		files:       make(map[string]*File),
		usedMB:      make([]float64, n),
	}
}

// Nodes returns the node count.
func (fs *FS) Nodes() int { return fs.nodes }

// Replication returns the replica count.
func (fs *FS) Replication() int { return fs.replication }

// Write stores a file of sizeMB at block size b, placing replicas across
// the nodes. It fails if the name exists or parameters are invalid.
func (fs *FS) Write(name string, sizeMB float64, b BlockMB) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("hdfs: write: empty file name")
	}
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("hdfs: write %q: file exists", name)
	}
	if sizeMB <= 0 {
		return nil, fmt.Errorf("hdfs: write %q: size %vMB must be positive", name, sizeMB)
	}
	if !ValidBlock(b) {
		return nil, fmt.Errorf("hdfs: write %q: block size %dMB not in studied set", name, b)
	}
	n := Splits(sizeMB, b)
	f := &File{Name: name, SizeMB: sizeMB, BlockMB: b, Blocks: make([]Block, n)}
	for i := 0; i < n; i++ {
		size := float64(b)
		if i == n-1 {
			size = LastSplitMB(sizeMB, b)
		}
		reps := make([]int, fs.replication)
		for r := 0; r < fs.replication; r++ {
			node := (fs.nextOffset + r) % fs.nodes
			reps[r] = node
			fs.usedMB[node] += size
		}
		fs.nextOffset = (fs.nextOffset + 1) % fs.nodes
		f.Blocks[i] = Block{File: name, Index: i, SizeMB: size, Replicas: reps}
	}
	fs.files[name] = f
	return f, nil
}

// Open returns the file metadata, or an error if it does not exist.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("hdfs: open %q: no such file", name)
	}
	return f, nil
}

// Delete removes a file and releases its storage accounting.
func (fs *FS) Delete(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("hdfs: delete %q: no such file", name)
	}
	for _, blk := range f.Blocks {
		for _, node := range blk.Replicas {
			fs.usedMB[node] -= blk.SizeMB
		}
	}
	delete(fs.files, name)
	return nil
}

// UsedMB returns stored megabytes on the given node (replicas included).
func (fs *FS) UsedMB(node int) float64 {
	if node < 0 || node >= fs.nodes {
		return 0
	}
	return fs.usedMB[node]
}

// Files returns the stored file names in sorted order.
func (fs *FS) Files() []string {
	out := make([]string, 0, len(fs.files))
	for name := range fs.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LocalityFraction returns the expected fraction of map tasks that read a
// node-local replica when tasks for the file run on `runNodes` of the
// cluster's nodes. With r replicas spread over n nodes, a block is local
// to a running node with probability ≈ 1-(1-runNodes/n)^r, the standard
// locality estimate the scheduler model uses (remote reads pay a network
// penalty in the MapReduce model).
func (fs *FS) LocalityFraction(runNodes int) float64 {
	if runNodes >= fs.nodes {
		return 1
	}
	if runNodes <= 0 {
		return 0
	}
	p := float64(runNodes) / float64(fs.nodes)
	miss := 1.0
	for i := 0; i < fs.replication; i++ {
		miss *= 1 - p
	}
	return 1 - miss
}

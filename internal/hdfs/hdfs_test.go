package hdfs

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitsExact(t *testing.T) {
	cases := []struct {
		dataMB float64
		block  BlockMB
		want   int
	}{
		{1024, Block64, 16},
		{1024, Block128, 8},
		{1024, Block256, 4},
		{1024, Block512, 2},
		{1024, Block1024, 1},
		{10240, Block1024, 10},
		{100, Block64, 2},
		{64, Block64, 1},
		{65, Block64, 2},
		{1, Block1024, 1},
		{0, Block64, 0},
		{-5, Block64, 0},
	}
	for _, c := range cases {
		if got := Splits(c.dataMB, c.block); got != c.want {
			t.Errorf("Splits(%v, %d) = %d, want %d", c.dataMB, c.block, got, c.want)
		}
	}
}

func TestSplitsCoverData(t *testing.T) {
	f := func(raw uint32, bi uint8) bool {
		dataMB := float64(raw%200000) + 1
		b := BlockSizes()[int(bi)%5]
		n := Splits(dataMB, b)
		// n blocks must cover the data, n-1 must not.
		return float64(n)*float64(b) >= dataMB && float64(n-1)*float64(b) < dataMB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLastSplit(t *testing.T) {
	if got := LastSplitMB(100, Block64); got != 36 {
		t.Errorf("LastSplitMB(100,64) = %v, want 36", got)
	}
	if got := LastSplitMB(128, Block64); got != 64 {
		t.Errorf("LastSplitMB(128,64) = %v, want 64", got)
	}
	if got := LastSplitMB(0, Block64); got != 0 {
		t.Errorf("LastSplitMB(0,64) = %v, want 0", got)
	}
}

func TestLastSplitSums(t *testing.T) {
	f := func(raw uint32, bi uint8) bool {
		dataMB := float64(raw%100000) + 1
		b := BlockSizes()[int(bi)%5]
		n := Splits(dataMB, b)
		total := float64(n-1)*float64(b) + LastSplitMB(dataMB, b)
		return math.Abs(total-dataMB) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWriteOpenDelete(t *testing.T) {
	fs := New(8, 3)
	f, err := fs.Write("input/wc", 1000, Block256)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	for i, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", i, len(b.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if r < 0 || r >= 8 {
				t.Fatalf("replica on bogus node %d", r)
			}
			if seen[r] {
				t.Fatalf("block %d has duplicate replica node %d", i, r)
			}
			seen[r] = true
		}
	}
	if f.Blocks[3].SizeMB != 232 { // 1000 - 3*256
		t.Fatalf("last block size = %v, want 232", f.Blocks[3].SizeMB)
	}
	got, err := fs.Open("input/wc")
	if err != nil || got != f {
		t.Fatalf("Open: %v %v", got, err)
	}
	if _, err := fs.Write("input/wc", 10, Block64); err == nil {
		t.Fatal("duplicate Write succeeded")
	}
	if err := fs.Delete("input/wc"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("input/wc"); err == nil {
		t.Fatal("Open after Delete succeeded")
	}
	for n := 0; n < 8; n++ {
		if u := fs.UsedMB(n); math.Abs(u) > 1e-9 {
			t.Fatalf("node %d still accounts %vMB after delete", n, u)
		}
	}
}

func TestWriteValidation(t *testing.T) {
	fs := New(4, 3)
	if _, err := fs.Write("", 10, Block64); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := fs.Write("f", 0, Block64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := fs.Write("f", 10, 100); err == nil {
		t.Error("bogus block size accepted")
	}
}

func TestReplicationClamped(t *testing.T) {
	fs := New(2, 3)
	if fs.Replication() != 2 {
		t.Fatalf("replication = %d, want clamped 2", fs.Replication())
	}
	fs = New(5, 0)
	if fs.Replication() != 1 {
		t.Fatalf("replication = %d, want 1", fs.Replication())
	}
}

func TestStorageBalance(t *testing.T) {
	fs := New(8, 3)
	for i := 0; i < 16; i++ {
		name := string(rune('a' + i))
		if _, err := fs.Write(name, 1024, Block128); err != nil {
			t.Fatal(err)
		}
	}
	var min, max float64 = math.Inf(1), 0
	for n := 0; n < 8; n++ {
		u := fs.UsedMB(n)
		if u < min {
			min = u
		}
		if u > max {
			max = u
		}
	}
	if max > min*1.2 {
		t.Fatalf("placement imbalanced: min=%v max=%v", min, max)
	}
}

func TestLocalityFraction(t *testing.T) {
	fs := New(8, 3)
	if got := fs.LocalityFraction(8); got != 1 {
		t.Errorf("full-cluster locality = %v, want 1", got)
	}
	if got := fs.LocalityFraction(0); got != 0 {
		t.Errorf("zero-node locality = %v, want 0", got)
	}
	// 1 of 8 nodes, 3 replicas: 1-(7/8)^3 ≈ 0.3301
	got := fs.LocalityFraction(1)
	if math.Abs(got-0.330078125) > 1e-9 {
		t.Errorf("locality(1/8, r=3) = %v", got)
	}
	// Monotone in runNodes.
	prev := 0.0
	for k := 1; k <= 8; k++ {
		l := fs.LocalityFraction(k)
		if l < prev {
			t.Fatalf("locality not monotone at k=%d", k)
		}
		prev = l
	}
}

func TestFilesSorted(t *testing.T) {
	fs := New(4, 2)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := fs.Write(n, 100, Block64); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.Files()
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Files() = %v, want %v", got, want)
		}
	}
}

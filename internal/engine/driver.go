package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Drivers chain MapReduce jobs the way Mahout's iterative algorithms do:
// K-Means runs Lloyd steps until the centroids stop moving, PageRank
// runs power iterations until the rank vector converges. Each iteration
// is a full engine job; the driver threads state between them.

// KMeansResult is the outcome of an iterative K-Means run.
type KMeansResult struct {
	Centers    [][2]float64
	Iterations int
	Converged  bool
	Counters   []Counters // per-iteration statistics
}

// KMeans runs Lloyd iterations over the points until no centre moves
// more than tol, or maxIter is reached.
func KMeans(points []KV, initial [][2]float64, mappers, maxIter int, tol float64) (*KMeansResult, error) {
	if len(initial) == 0 {
		return nil, fmt.Errorf("engine: kmeans: no initial centers")
	}
	if tol <= 0 {
		tol = 1e-3
	}
	if maxIter < 1 {
		maxIter = 20
	}
	centers := append([][2]float64(nil), initial...)
	splits := SplitRecords(points, mappers)
	res := &KMeansResult{}
	for it := 0; it < maxIter; it++ {
		job := KMeansIteration(centers)
		job.Mappers = mappers
		job.Reducers = len(centers)
		out, err := Run(job, splits)
		if err != nil {
			return nil, fmt.Errorf("engine: kmeans iteration %d: %w", it, err)
		}
		res.Counters = append(res.Counters, out.Counters)
		res.Iterations = it + 1

		next := append([][2]float64(nil), centers...)
		for _, kv := range out.Output {
			idx, err := strconv.Atoi(kv.Key)
			if err != nil || idx < 0 || idx >= len(centers) {
				continue
			}
			x, y, ok := parsePoint(kv.Value)
			if ok {
				next[idx] = [2]float64{x, y}
			}
		}
		var worst float64
		for i := range centers {
			dx := next[i][0] - centers[i][0]
			dy := next[i][1] - centers[i][1]
			if d := math.Sqrt(dx*dx + dy*dy); d > worst {
				worst = d
			}
		}
		centers = next
		if worst <= tol {
			res.Converged = true
			break
		}
	}
	res.Centers = centers
	return res, nil
}

// PageRankResult is the outcome of an iterative PageRank run.
type PageRankResult struct {
	Ranks      map[string]float64
	Iterations int
	Converged  bool
}

// PageRank runs power iterations over the graph (in the adjacency
// format of PageRankIteration) until the L1 change drops below tol.
func PageRank(graph []KV, damping float64, mappers, maxIter int, tol float64) (*PageRankResult, error) {
	if len(graph) == 0 {
		return nil, fmt.Errorf("engine: pagerank: empty graph")
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	if tol <= 0 {
		tol = 1e-6
	}
	if maxIter < 1 {
		maxIter = 30
	}
	state := append([]KV(nil), graph...)
	prev := ranksOf(state)
	res := &PageRankResult{}
	for it := 0; it < maxIter; it++ {
		job := PageRankIteration(damping, len(graph))
		job.Mappers = mappers
		out, err := Run(job, SplitRecords(state, mappers))
		if err != nil {
			return nil, fmt.Errorf("engine: pagerank iteration %d: %w", it, err)
		}
		// The reduce output is the next iteration's input state.
		state = state[:0]
		for _, kv := range out.Output {
			state = append(state, KV{Key: kv.Key, Value: kv.Key + "\t" + kv.Value})
		}
		res.Iterations = it + 1
		cur := ranksOf(state)
		var delta float64
		for k, v := range cur {
			delta += math.Abs(v - prev[k])
		}
		prev = cur
		if delta <= tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = prev
	return res, nil
}

// ranksOf extracts the rank column from adjacency-format records.
func ranksOf(state []KV) map[string]float64 {
	out := make(map[string]float64, len(state))
	for _, kv := range state {
		parts := strings.SplitN(kv.Value, "\t", 3)
		if len(parts) < 2 {
			continue
		}
		if r, err := strconv.ParseFloat(parts[1], 64); err == nil {
			out[parts[0]] = r
		}
	}
	return out
}

package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"ecost/internal/sim"
)

// This file implements genuine MapReduce applications matching the
// paper's micro-benchmarks and a representative subset of its real-world
// workloads: WordCount, Grep, Sort, TeraSort, Naïve Bayes (training
// counts), K-Means (one Lloyd iteration) and PageRank (one power
// iteration). The examples and the live-characterization path run these
// against synthetic inputs from datagen.go.

// WordCount counts word occurrences in text lines.
func WordCount() Job {
	return Job{
		Name: "wordcount",
		Map: func(_, line string, emit func(KV)) {
			for _, w := range strings.Fields(line) {
				emit(KV{Key: strings.ToLower(strings.Trim(w, ".,!?;:\"'")), Value: "1"})
			}
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

// sumReducer adds integer values per key.
func sumReducer(key string, values []string, emit func(KV)) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			continue
		}
		total += n
	}
	emit(KV{Key: key, Value: strconv.Itoa(total)})
}

// Grep emits lines matching the pattern (substring match, like the
// Hadoop example's default mode) keyed by the match.
func Grep(pattern string) Job {
	return Job{
		Name: "grep",
		Map: func(_, line string, emit func(KV)) {
			if strings.Contains(line, pattern) {
				emit(KV{Key: pattern, Value: line})
			}
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			emit(KV{Key: key, Value: strconv.Itoa(len(values))})
		},
	}
}

// Sort is the identity MapReduce: the shuffle's sort-merge does the
// work, exactly like Hadoop's Sort example.
func Sort() Job {
	return Job{
		Name: "sort",
		Map: func(key, value string, emit func(KV)) {
			emit(KV{Key: key, Value: value})
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			for _, v := range values {
				emit(KV{Key: key, Value: v})
			}
		},
	}
}

// TeraSort sorts fixed-width records by their 10-byte key prefix.
func TeraSort() Job {
	return Job{
		Name: "terasort",
		Map: func(_, record string, emit func(KV)) {
			k := record
			if len(k) > 10 {
				k = k[:10]
			}
			emit(KV{Key: k, Value: record})
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			sort.Strings(values)
			for _, v := range values {
				emit(KV{Key: key, Value: v})
			}
		},
	}
}

// NaiveBayes computes per-class word likelihood counts from labelled
// documents ("label<TAB>text") — the training pass of the classifier.
func NaiveBayes() Job {
	return Job{
		Name: "naivebayes",
		Map: func(_, doc string, emit func(KV)) {
			label, text, ok := strings.Cut(doc, "\t")
			if !ok {
				return
			}
			for _, w := range strings.Fields(text) {
				emit(KV{Key: label + ":" + strings.ToLower(w), Value: "1"})
			}
			emit(KV{Key: label + ":#docs", Value: "1"})
		},
		Combine: sumReducer,
		Reduce:  sumReducer,
	}
}

// KMeansIteration assigns points ("x,y") to the nearest centre and
// reduces to new centroids — one Lloyd step.
func KMeansIteration(centers [][2]float64) Job {
	return Job{
		Name: "kmeans",
		Map: func(_, pt string, emit func(KV)) {
			x, y, ok := parsePoint(pt)
			if !ok {
				return
			}
			best, bestD := 0, math.Inf(1)
			for i, c := range centers {
				d := (x-c[0])*(x-c[0]) + (y-c[1])*(y-c[1])
				if d < bestD {
					best, bestD = i, d
				}
			}
			emit(KV{Key: strconv.Itoa(best), Value: pt})
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			var sx, sy float64
			n := 0
			for _, v := range values {
				x, y, ok := parsePoint(v)
				if !ok {
					continue
				}
				sx += x
				sy += y
				n++
			}
			if n > 0 {
				emit(KV{Key: key, Value: fmt.Sprintf("%.4f,%.4f", sx/float64(n), sy/float64(n))})
			}
		},
	}
}

func parsePoint(s string) (x, y float64, ok bool) {
	xs, ys, found := strings.Cut(s, ",")
	if !found {
		return 0, 0, false
	}
	x, err1 := strconv.ParseFloat(strings.TrimSpace(xs), 64)
	y, err2 := strconv.ParseFloat(strings.TrimSpace(ys), 64)
	return x, y, err1 == nil && err2 == nil
}

// PageRankIteration performs one power-iteration step over an adjacency
// list ("src<TAB>rank<TAB>dst1,dst2,…"): mass flows to successors; the
// reducer applies the damping factor.
func PageRankIteration(damping float64, numPages int) Job {
	return Job{
		Name: "pagerank",
		Map: func(_, line string, emit func(KV)) {
			parts := strings.SplitN(line, "\t", 3)
			if len(parts) != 3 {
				return
			}
			src := parts[0]
			rank, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				return
			}
			var dests []string
			if parts[2] != "" {
				dests = strings.Split(parts[2], ",")
			}
			// Preserve the structure for the next iteration.
			emit(KV{Key: src, Value: "links\t" + parts[2]})
			if len(dests) > 0 {
				share := rank / float64(len(dests))
				for _, d := range dests {
					emit(KV{Key: d, Value: "mass\t" + strconv.FormatFloat(share, 'g', 17, 64)})
				}
			}
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			var mass float64
			links := ""
			for _, v := range values {
				kind, rest, _ := strings.Cut(v, "\t")
				switch kind {
				case "mass":
					m, err := strconv.ParseFloat(rest, 64)
					if err == nil {
						mass += m
					}
				case "links":
					links = rest
				}
			}
			rank := (1-damping)/float64(numPages) + damping*mass
			emit(KV{Key: key, Value: fmt.Sprintf("%.6f\t%s", rank, links)})
		},
	}
}

// InvertedIndex builds a word → documents index, a classic analysis
// kernel used by several Mahout-era workloads.
func InvertedIndex() Job {
	return Job{
		Name: "invertedindex",
		Map: func(doc, text string, emit func(KV)) {
			seen := map[string]bool{}
			for _, w := range strings.Fields(text) {
				w = strings.ToLower(w)
				if !seen[w] {
					seen[w] = true
					emit(KV{Key: w, Value: doc})
				}
			}
		},
		Reduce: func(key string, values []string, emit func(KV)) {
			sort.Strings(values)
			emit(KV{Key: key, Value: strings.Join(values, ",")})
		},
	}
}

// --- Synthetic input generators ---

// TextLines generates n lines of zipf-ish text with the given vocabulary
// size, deterministically from seed.
func TextLines(n, wordsPerLine, vocab int, seed int64) []KV {
	rng := sim.NewRNG(seed)
	out := make([]KV, n)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			// Squaring a uniform sample skews toward low word ids — a
			// cheap Zipf-like frequency profile.
			u := rng.Float64()
			id := int(u * u * float64(vocab))
			fmt.Fprintf(&b, "w%04d", id)
		}
		out[i] = KV{Key: fmt.Sprintf("line%06d", i), Value: b.String()}
	}
	return out
}

// TeraRecords generates n TeraSort-style records with random 10-char
// keys.
func TeraRecords(n int, seed int64) []KV {
	rng := sim.NewRNG(seed)
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	out := make([]KV, n)
	for i := 0; i < n; i++ {
		var key [10]byte
		for j := range key {
			key[j] = alphabet[rng.Intn(len(alphabet))]
		}
		out[i] = KV{Key: fmt.Sprintf("rec%06d", i), Value: string(key[:]) + fmt.Sprintf("|payload%06d", i)}
	}
	return out
}

// LabelledDocs generates labelled documents for Naïve Bayes.
func LabelledDocs(n int, labels []string, seed int64) []KV {
	rng := sim.NewRNG(seed)
	text := TextLines(n, 12, 400, seed+1)
	out := make([]KV, n)
	for i := 0; i < n; i++ {
		label := labels[rng.Intn(len(labels))]
		out[i] = KV{Key: fmt.Sprintf("doc%06d", i), Value: label + "\t" + text[i].Value}
	}
	return out
}

// Points generates 2-D points around the given centres.
func Points(n int, centers [][2]float64, spread float64, seed int64) []KV {
	rng := sim.NewRNG(seed)
	out := make([]KV, n)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(len(centers))]
		x := rng.Normal(c[0], spread)
		y := rng.Normal(c[1], spread)
		out[i] = KV{Key: fmt.Sprintf("p%06d", i), Value: fmt.Sprintf("%.4f,%.4f", x, y)}
	}
	return out
}

// WebGraph generates a random graph in PageRank's adjacency format with
// uniform initial rank.
func WebGraph(pages, avgOut int, seed int64) []KV {
	rng := sim.NewRNG(seed)
	out := make([]KV, pages)
	initial := 1.0 / float64(pages)
	for i := 0; i < pages; i++ {
		nOut := 1 + rng.Intn(2*avgOut)
		seen := map[int]bool{}
		var dests []string
		for len(dests) < nOut {
			d := rng.Intn(pages)
			if d == i || seen[d] {
				continue
			}
			seen[d] = true
			dests = append(dests, fmt.Sprintf("p%d", d))
		}
		out[i] = KV{
			Key:   fmt.Sprintf("p%d", i),
			Value: fmt.Sprintf("p%d\t%g\t%s", i, initial, strings.Join(dests, ",")),
		}
	}
	return out
}

package engine

import (
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestWordCountCorrect(t *testing.T) {
	recs := []KV{
		{Key: "l1", Value: "the quick brown fox"},
		{Key: "l2", Value: "the lazy dog"},
		{Key: "l3", Value: "The end."},
	}
	res, err := Run(WordCount(), SplitRecords(recs, 2))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range res.Output {
		counts[kv.Key] = kv.Value
	}
	if counts["the"] != "3" {
		t.Errorf("count(the) = %q, want 3", counts["the"])
	}
	if counts["fox"] != "1" || counts["dog"] != "1" || counts["end"] != "1" {
		t.Errorf("unexpected counts: %v", counts)
	}
	if res.Counters.MapInputRecords != 3 {
		t.Errorf("map input records = %d", res.Counters.MapInputRecords)
	}
}

func TestWordCountCombinerPreservesResult(t *testing.T) {
	recs := TextLines(200, 10, 50, 7)
	with, err := Run(WordCount(), SplitRecords(recs, 4))
	if err != nil {
		t.Fatal(err)
	}
	job := WordCount()
	job.Combine = nil
	without, err := Run(job, SplitRecords(recs, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(with.Output) != len(without.Output) {
		t.Fatalf("combiner changed output size: %d vs %d", len(with.Output), len(without.Output))
	}
	for i := range with.Output {
		if with.Output[i] != without.Output[i] {
			t.Fatalf("combiner changed record %d: %v vs %v", i, with.Output[i], without.Output[i])
		}
	}
	if with.Counters.MapOutputRecords <= int64(len(with.Output)) {
		t.Error("combiner statistics look wrong")
	}
}

func TestResultIndependentOfParallelism(t *testing.T) {
	recs := TextLines(300, 8, 80, 11)
	var outputs [][]KV
	for _, cfg := range []struct{ splits, mappers, reducers int }{
		{1, 1, 1}, {4, 2, 3}, {8, 8, 5}, {16, 3, 2},
	} {
		job := WordCount()
		job.Mappers = cfg.mappers
		job.Reducers = cfg.reducers
		res, err := Run(job, SplitRecords(recs, cfg.splits))
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, res.Output)
	}
	for i := 1; i < len(outputs); i++ {
		if len(outputs[i]) != len(outputs[0]) {
			t.Fatalf("parallelism changed output size: %d vs %d", len(outputs[i]), len(outputs[0]))
		}
		for j := range outputs[i] {
			if outputs[i][j] != outputs[0][j] {
				t.Fatalf("parallelism changed output record %d", j)
			}
		}
	}
}

func TestSortProducesSortedOutput(t *testing.T) {
	recs := TeraRecords(500, 3)
	// Key the records by their sort key for the identity sort.
	for i := range recs {
		recs[i] = KV{Key: recs[i].Value[:10], Value: recs[i].Value}
	}
	res, err := Run(Sort(), SplitRecords(recs, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 500 {
		t.Fatalf("sort lost records: %d", len(res.Output))
	}
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i].Key < res.Output[i-1].Key {
			t.Fatal("output not sorted")
		}
	}
}

func TestTeraSortTotalOrder(t *testing.T) {
	recs := TeraRecords(400, 5)
	res, err := Run(TeraSort(), SplitRecords(recs, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 400 {
		t.Fatalf("terasort lost records: %d of 400", len(res.Output))
	}
	for i := 1; i < len(res.Output); i++ {
		if res.Output[i].Key < res.Output[i-1].Key {
			t.Fatal("terasort output not key-ordered")
		}
	}
}

func TestGrep(t *testing.T) {
	recs := []KV{
		{Key: "1", Value: "error: disk failure"},
		{Key: "2", Value: "all good"},
		{Key: "3", Value: "another error here"},
	}
	res, err := Run(Grep("error"), SplitRecords(recs, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0].Value != "2" {
		t.Fatalf("grep output = %v, want [error→2]", res.Output)
	}
}

func TestNaiveBayesCounts(t *testing.T) {
	recs := []KV{
		{Key: "d1", Value: "spam\tbuy now"},
		{Key: "d2", Value: "ham\thello friend"},
		{Key: "d3", Value: "spam\tbuy cheap"},
	}
	res, err := Run(NaiveBayes(), SplitRecords(recs, 2))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Value
	}
	if got["spam:buy"] != "2" || got["spam:#docs"] != "2" || got["ham:#docs"] != "1" {
		t.Fatalf("naive bayes counts wrong: %v", got)
	}
}

func TestKMeansIterationMovesCenters(t *testing.T) {
	centers := [][2]float64{{0, 0}, {10, 10}}
	pts := Points(500, [][2]float64{{1, 1}, {9, 9}}, 0.5, 13)
	res, err := Run(KMeansIteration(centers), SplitRecords(pts, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 2 {
		t.Fatalf("kmeans produced %d centroids, want 2", len(res.Output))
	}
	for _, kv := range res.Output {
		x, y, ok := parsePoint(kv.Value)
		if !ok {
			t.Fatalf("bad centroid %q", kv.Value)
		}
		// Centroids must have moved toward the true clusters (1,1)/(9,9).
		if kv.Key == "0" && (x < 0.8 || x > 1.2 || y < 0.8 || y > 1.2) {
			t.Errorf("centroid 0 at (%v,%v), want ≈(1,1)", x, y)
		}
		if kv.Key == "1" && (x < 8.8 || x > 9.2 || y < 8.8 || y > 9.2) {
			t.Errorf("centroid 1 at (%v,%v), want ≈(9,9)", x, y)
		}
	}
}

func TestPageRankConservesMass(t *testing.T) {
	graph := WebGraph(100, 4, 17)
	res, err := Run(PageRankIteration(0.85, 100), SplitRecords(graph, 8))
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	n := 0
	for _, kv := range res.Output {
		rankStr, _, _ := strings.Cut(kv.Value, "\t")
		r, err := strconv.ParseFloat(rankStr, 64)
		if err != nil {
			t.Fatalf("bad rank %q", kv.Value)
		}
		total += r
		n++
	}
	// Dangling-free graph: total rank stays ≈ 1 under the power step.
	if total < 0.9 || total > 1.1 {
		t.Fatalf("rank mass = %v over %d pages, want ≈1", total, n)
	}
}

func TestInvertedIndex(t *testing.T) {
	recs := []KV{
		{Key: "doc1", Value: "apple banana"},
		{Key: "doc2", Value: "banana cherry"},
	}
	res, err := Run(InvertedIndex(), SplitRecords(recs, 2))
	if err != nil {
		t.Fatal(err)
	}
	idx := map[string]string{}
	for _, kv := range res.Output {
		idx[kv.Key] = kv.Value
	}
	if idx["banana"] != "doc1,doc2" || idx["apple"] != "doc1" {
		t.Fatalf("index wrong: %v", idx)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Job{Name: "broken"}, SplitRecords(TextLines(2, 2, 2, 1), 1)); err == nil {
		t.Fatal("job without map/reduce accepted")
	}
	res, err := Run(WordCount(), nil)
	if err != nil || len(res.Output) != 0 {
		t.Fatalf("empty input should give empty output: %v %v", res, err)
	}
}

func TestSplitRecordsProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw)%20 + 1
		recs := TextLines(n, 2, 10, 1)
		splits := SplitRecords(recs, k)
		total := 0
		for _, s := range splits {
			if len(s) == 0 {
				return false
			}
			total += len(s)
		}
		return total == n && len(splits) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionStable(t *testing.T) {
	for _, key := range []string{"a", "hello", "w0042", ""} {
		p := partition(key, 7)
		for i := 0; i < 10; i++ {
			if partition(key, 7) != p {
				t.Fatalf("partition(%q) unstable", key)
			}
		}
		if p < 0 || p >= 7 {
			t.Fatalf("partition(%q) = %d out of range", key, p)
		}
	}
}

func TestCountersConsistent(t *testing.T) {
	recs := TextLines(100, 6, 40, 19)
	res, err := Run(WordCount(), SplitRecords(recs, 5))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.MapInputRecords != 100 || c.MapTasks != 5 {
		t.Errorf("map counters wrong: %+v", c)
	}
	if c.OutputRecords != int64(len(res.Output)) {
		t.Errorf("output counter %d != %d records", c.OutputRecords, len(res.Output))
	}
	if c.ReduceInputKeys != c.OutputRecords {
		t.Errorf("wordcount emits one record per key: %d keys vs %d outputs", c.ReduceInputKeys, c.OutputRecords)
	}
}

package engine

import (
	"math"
	"testing"
)

func TestKMeansConverges(t *testing.T) {
	truth := [][2]float64{{0, 0}, {10, 0}, {5, 8}}
	pts := Points(1500, truth, 0.4, 21)
	initial := [][2]float64{{1, 1}, {8, 1}, {4, 6}}
	res, err := KMeans(pts, initial, 4, 30, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	if res.Iterations < 2 {
		t.Fatalf("converged suspiciously fast (%d iterations)", res.Iterations)
	}
	// Each found centre must be near one true centre.
	for _, c := range res.Centers {
		best := math.Inf(1)
		for _, tc := range truth {
			d := math.Hypot(c[0]-tc[0], c[1]-tc[1])
			if d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("center %v is %.2f away from any true center", c, best)
		}
	}
	if len(res.Counters) != res.Iterations {
		t.Errorf("%d counter records for %d iterations", len(res.Counters), res.Iterations)
	}
}

func TestKMeansValidation(t *testing.T) {
	if _, err := KMeans(nil, nil, 2, 5, 0.1); err == nil {
		t.Error("no centers accepted")
	}
}

func TestPageRankConverges(t *testing.T) {
	graph := WebGraph(200, 5, 23)
	res, err := PageRank(graph, 0.85, 4, 60, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d iterations", res.Iterations)
	}
	var total float64
	for _, r := range res.Ranks {
		if r <= 0 {
			t.Fatal("non-positive rank")
		}
		total += r
	}
	if math.Abs(total-1) > 0.05 {
		t.Errorf("rank mass = %v, want ≈1", total)
	}
	if len(res.Ranks) != 200 {
		t.Errorf("%d ranked pages, want 200", len(res.Ranks))
	}
}

func TestPageRankHubGetsHigherRank(t *testing.T) {
	// A star graph: every page links to p0; p0 links to p1.
	var graph []KV
	graph = append(graph, KV{Key: "p0", Value: "p0\t0.1\tp1"})
	for i := 1; i < 10; i++ {
		graph = append(graph, KV{
			Key:   "p" + string(rune('0'+i)),
			Value: "p" + string(rune('0'+i)) + "\t0.1\tp0",
		})
	}
	res, err := PageRank(graph, 0.85, 2, 80, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for page, r := range res.Ranks {
		if page == "p0" || page == "p1" {
			continue
		}
		if res.Ranks["p0"] <= r {
			t.Fatalf("hub p0 (%v) not above leaf %s (%v)", res.Ranks["p0"], page, r)
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	if _, err := PageRank(nil, 0.85, 2, 5, 0.1); err == nil {
		t.Error("empty graph accepted")
	}
}

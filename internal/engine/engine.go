// Package engine is a real, in-process MapReduce execution engine: user
// map and reduce functions run over actual input splits on a pool of
// worker goroutines, with combiners, hash partitioning, and a sort-merge
// shuffle. It is the live counterpart of the analytic model in
// internal/mapreduce — the examples and the characterization path run
// genuine computations here (word counting, sorting, grepping, …) and
// feed the resulting resource profile to the same ECoST classifier the
// simulator uses.
//
// The engine is deliberately shaped like Hadoop's API: jobs process
// (key, value) records; map output is partitioned by key hash across
// reducers; each reducer sees its keys in sorted order with all values
// grouped.
package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ecost/internal/metrics"
)

// KV is one key-value record.
type KV struct {
	Key   string
	Value string
}

// MapFunc consumes one input record and emits zero or more intermediate
// records through emit. Implementations must be safe for concurrent
// calls (each mapper task invokes it from its own goroutine).
type MapFunc func(key, value string, emit func(KV))

// ReduceFunc consumes one intermediate key with all its values (sorted
// order across keys) and emits zero or more output records.
type ReduceFunc func(key string, values []string, emit func(KV))

// Job describes one MapReduce execution.
type Job struct {
	Name   string
	Map    MapFunc
	Reduce ReduceFunc
	// Combine, if non-nil, pre-aggregates map-side output per mapper
	// (same contract as Reduce).
	Combine ReduceFunc

	// Mappers is the number of concurrent map tasks (defaults to the
	// number of splits); Reducers the number of reduce partitions
	// (defaults to 1).
	Mappers  int
	Reducers int

	// Metrics, when non-nil, receives the job's counters after Run:
	// record counts and spill partitions as deterministic counters, and
	// the map/reduce wall times as volatile histograms.
	Metrics *metrics.Registry
}

// Split is one input slice: a list of records a single map task
// processes.
type Split []KV

// Counters aggregates execution statistics, mirroring Hadoop's job
// counters.
type Counters struct {
	MapInputRecords     int64
	MapOutputRecords    int64
	CombineInputRecords int64
	ReduceInputKeys     int64
	ReduceInputRecords  int64
	OutputRecords       int64
	MapTasks            int64
	ReduceTasks         int64

	// SpillPartitions counts the non-empty per-mapper, per-reducer
	// partition buffers handed to the shuffle — the in-process analogue
	// of Hadoop's map-side spill files.
	SpillPartitions int64

	MapTime    time.Duration
	ReduceTime time.Duration
	TotalTime  time.Duration
}

// Result is a completed job's output and statistics.
type Result struct {
	Output   []KV // sorted by key, then value
	Counters Counters
}

// partition assigns a key to a reducer with the FNV-1a hash, Hadoop's
// default behaviour modulo the hash function.
func partition(key string, reducers int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(reducers))
}

// Run executes the job over the given splits.
func Run(job Job, splits []Split) (*Result, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("engine: job %q needs both map and reduce functions", job.Name)
	}
	if len(splits) == 0 {
		return &Result{}, nil
	}
	reducers := job.Reducers
	if reducers < 1 {
		reducers = 1
	}
	mappers := job.Mappers
	if mappers < 1 || mappers > len(splits) {
		mappers = len(splits)
	}

	start := time.Now()
	var ctr Counters
	ctr.MapTasks = int64(len(splits))
	ctr.ReduceTasks = int64(reducers)

	// ---- Map phase: a bounded pool of mapper goroutines. ----
	mapStart := time.Now()
	type mapOut struct {
		parts [][]KV // per-reducer
		in    int64
		out   int64
		cmb   int64
		spl   int64
	}
	outs := make([]mapOut, len(splits))
	sem := make(chan struct{}, mappers)
	var wg sync.WaitGroup
	for si, split := range splits {
		wg.Add(1)
		go func(si int, split Split) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parts := make([][]KV, reducers)
			emit := func(kv KV) {
				p := partition(kv.Key, reducers)
				parts[p] = append(parts[p], kv)
				outs[si].out++
			}
			for _, rec := range split {
				outs[si].in++
				job.Map(rec.Key, rec.Value, emit)
			}
			if job.Combine != nil {
				for p := range parts {
					outs[si].cmb += int64(len(parts[p]))
					parts[p] = combine(job.Combine, parts[p])
				}
			}
			for p := range parts {
				if len(parts[p]) > 0 {
					outs[si].spl++
				}
			}
			outs[si].parts = parts
		}(si, split)
	}
	wg.Wait()
	for _, o := range outs {
		ctr.MapInputRecords += o.in
		ctr.MapOutputRecords += o.out
		ctr.CombineInputRecords += o.cmb
		ctr.SpillPartitions += o.spl
	}
	ctr.MapTime = time.Since(mapStart)

	// ---- Shuffle + reduce phase. ----
	redStart := time.Now()
	type redOut struct {
		kvs  []KV
		keys int64
		recs int64
	}
	redResults := make([]redOut, reducers)
	var rwg sync.WaitGroup
	for r := 0; r < reducers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			// Merge this partition from every mapper.
			var recs []KV
			for _, o := range outs {
				recs = append(recs, o.parts[r]...)
			}
			sort.Slice(recs, func(i, j int) bool {
				if recs[i].Key != recs[j].Key {
					return recs[i].Key < recs[j].Key
				}
				return recs[i].Value < recs[j].Value
			})
			emit := func(kv KV) { redResults[r].kvs = append(redResults[r].kvs, kv) }
			for i := 0; i < len(recs); {
				j := i
				for j < len(recs) && recs[j].Key == recs[i].Key {
					j++
				}
				values := make([]string, 0, j-i)
				for k := i; k < j; k++ {
					values = append(values, recs[k].Value)
				}
				redResults[r].keys++
				redResults[r].recs += int64(j - i)
				job.Reduce(recs[i].Key, values, emit)
				i = j
			}
		}(r)
	}
	rwg.Wait()
	var output []KV
	for _, ro := range redResults {
		ctr.ReduceInputKeys += ro.keys
		ctr.ReduceInputRecords += ro.recs
		output = append(output, ro.kvs...)
	}
	ctr.ReduceTime = time.Since(redStart)
	sort.Slice(output, func(i, j int) bool {
		if output[i].Key != output[j].Key {
			return output[i].Key < output[j].Key
		}
		return output[i].Value < output[j].Value
	})
	ctr.OutputRecords = int64(len(output))
	ctr.TotalTime = time.Since(start)
	job.observe(&ctr)
	return &Result{Output: output, Counters: ctr}, nil
}

// observe publishes the finished job's counters to the attached
// registry. Record and spill counts are deterministic; phase wall times
// go to volatile histograms excluded from deterministic snapshots.
func (j Job) observe(c *Counters) {
	reg := j.Metrics
	if reg == nil {
		return
	}
	reg.Counter("engine.jobs").Inc()
	reg.Counter("engine.map.tasks").Add(c.MapTasks)
	reg.Counter("engine.map.records_in").Add(c.MapInputRecords)
	reg.Counter("engine.map.records_out").Add(c.MapOutputRecords)
	reg.Counter("engine.combine.records_in").Add(c.CombineInputRecords)
	reg.Counter("engine.spill.partitions").Add(c.SpillPartitions)
	reg.Counter("engine.reduce.keys").Add(c.ReduceInputKeys)
	reg.Counter("engine.reduce.records").Add(c.ReduceInputRecords)
	reg.Counter("engine.output.records").Add(c.OutputRecords)
	reg.VolatileHistogram("engine.map.wall_ns", metrics.ExpBuckets(1e3, 4, 14)).
		Observe(float64(c.MapTime.Nanoseconds()))
	reg.VolatileHistogram("engine.reduce.wall_ns", metrics.ExpBuckets(1e3, 4, 14)).
		Observe(float64(c.ReduceTime.Nanoseconds()))
}

// combine runs a reduce-style function over a single mapper's partition
// output (already local, unsorted): group, apply, return.
func combine(fn ReduceFunc, recs []KV) []KV {
	if len(recs) == 0 {
		return recs
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Key != recs[j].Key {
			return recs[i].Key < recs[j].Key
		}
		return recs[i].Value < recs[j].Value
	})
	var out []KV
	emit := func(kv KV) { out = append(out, kv) }
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].Key == recs[i].Key {
			j++
		}
		values := make([]string, 0, j-i)
		for k := i; k < j; k++ {
			values = append(values, recs[k].Value)
		}
		fn(recs[i].Key, values, emit)
		i = j
	}
	return out
}

// SplitRecords divides records into n roughly equal splits (at least one
// record per non-empty split).
func SplitRecords(recs []KV, n int) []Split {
	if len(recs) == 0 || n < 1 {
		return nil
	}
	if n > len(recs) {
		n = len(recs)
	}
	out := make([]Split, 0, n)
	per := (len(recs) + n - 1) / n
	for i := 0; i < len(recs); i += per {
		j := i + per
		if j > len(recs) {
			j = len(recs)
		}
		out = append(out, Split(recs[i:j]))
	}
	return out
}

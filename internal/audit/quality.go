package audit

import (
	"fmt"
	"io"
	"sort"
)

// Oracle supplies lazily-computed reference EDPs for the quality
// report: the solo-optimal baseline (interference ratios) and the
// co-location oracle COLAO (regret). Implemented in internal/core by an
// adapter over the memoized sharded-singleflight Oracle, so repeated
// reports stay cheap. A nil Oracle skips both sections.
type Oracle interface {
	// SoloBestEDP is the app's solo-optimal EDP at the given input size.
	SoloBestEDP(app string, sizeGB float64) (float64, error)
	// PairBestEDP is COLAO's optimal pair EDP for the two apps.
	PairBestEDP(appA string, sizeAGB float64, appB string, sizeBGB float64) (float64, error)
}

// ErrBuckets are the per-class relative-error histogram edges in
// percent (a bucket counts errors ≤ its edge; the last bucket is +Inf).
var ErrBuckets = []float64{5, 10, 20, 40, 80, 160, 320, 640, 1280}

// ErrHist is one class's relative-error distribution over ErrBuckets.
type ErrHist struct {
	Class   string  `json:"class"`
	Counts  []int   `json:"counts"` // len(ErrBuckets)+1, last = overflow
	Count   int     `json:"count"`
	MeanPct float64 `json:"mean_pct"`
	MaxPct  float64 `json:"max_pct"`
}

// InterferenceRow is one co-located job's realized EDP against its
// solo-optimal baseline: the ratio is the price of sharing the node.
type InterferenceRow struct {
	Job         int     `json:"job"`
	App         string  `json:"app"`
	Class       string  `json:"class"`
	Partner     int     `json:"partner"`
	RealEDP     float64 `json:"real_edp"`
	SoloBestEDP float64 `json:"solo_best_edp"`
	Ratio       float64 `json:"ratio"`
}

// RegretRow is one realized pairing against COLAO's optimum for the
// same two applications: how much EDP the online decision left on the
// table relative to the brute-force oracle.
type RegretRow struct {
	Resident  int     `json:"resident"`
	Incoming  int     `json:"incoming"`
	Apps      string  `json:"apps"`
	RealEDP   float64 `json:"real_edp"`
	OracleEDP float64 `json:"oracle_edp"`
	RegretPct float64 `json:"regret_pct"`
}

// ConfusionCell is one (true class, predicted class) count.
type ConfusionCell struct {
	True string `json:"true"`
	Pred string `json:"pred"`
	N    int    `json:"n"`
}

// DriftSummary is the detector's configuration and current state.
type DriftSummary struct {
	Config  DriftConfig `json:"config"`
	Samples int         `json:"samples"` // since last reset
	Mean    float64     `json:"mean"`
	Stat    float64     `json:"stat"`
	Alerts  []Alert     `json:"alerts"`
}

// QualityReport aggregates the audit log into decision-quality views:
// classifier confusion, per-class STP error histograms, co-location
// interference, oracle regret, and drift state.
type QualityReport struct {
	Jobs      int `json:"jobs"`
	Completed int `json:"completed"`
	Joined    int `json:"joined"`

	Classes   []string        `json:"classes"`
	Confusion []ConfusionCell `json:"confusion"` // only non-zero cells
	Accuracy  float64         `json:"accuracy"`  // fraction of jobs classified to truth

	Hist []ErrHist `json:"hist"`

	Interference []InterferenceRow `json:"interference"`
	Regret       []RegretRow       `json:"regret"`
	// OracleErrors counts reference lookups that failed (rows skipped).
	OracleErrors int `json:"oracle_errors,omitempty"`

	Drift DriftSummary `json:"drift"`
}

// Quality builds the report from the log's current state. With a nil
// oracle the interference and regret sections stay empty. Safe on a
// nil log (returns the zero report).
func (l *Log) Quality(o Oracle) QualityReport {
	var r QualityReport
	if l == nil {
		return r
	}
	decisions := l.Decisions()
	joins := l.Joins()
	pairings := l.Pairings()

	l.mu.Lock()
	n, mean, stat := l.detector.state()
	r.Drift = DriftSummary{
		Config:  l.detector.cfg,
		Samples: n, Mean: mean, Stat: stat,
		Alerts: append([]Alert(nil), l.alerts...),
	}
	l.mu.Unlock()

	// Classifier confusion over every submitted job.
	classSet := map[string]bool{}
	cells := map[[2]string]int{}
	right := 0
	for _, d := range decisions {
		r.Jobs++
		if d.Done {
			r.Completed++
		}
		classSet[d.TrueClass] = true
		classSet[d.PredClass] = true
		cells[[2]string{d.TrueClass, d.PredClass}]++
		if d.TrueClass == d.PredClass {
			right++
		}
	}
	for c := range classSet {
		r.Classes = append(r.Classes, c)
	}
	sort.Strings(r.Classes)
	for _, t := range r.Classes {
		for _, p := range r.Classes {
			if n := cells[[2]string{t, p}]; n > 0 {
				r.Confusion = append(r.Confusion, ConfusionCell{True: t, Pred: p, N: n})
			}
		}
	}
	if r.Jobs > 0 {
		r.Accuracy = float64(right) / float64(r.Jobs)
	}

	// Per-class relative-error histograms over all joins.
	r.Joined = len(joins)
	hists := map[string]*ErrHist{}
	for _, j := range joins {
		h := hists[j.Class]
		if h == nil {
			h = &ErrHist{Class: j.Class, Counts: make([]int, len(ErrBuckets)+1)}
			hists[j.Class] = h
		}
		i := sort.SearchFloat64s(ErrBuckets, j.RelErrPct)
		h.Counts[i]++
		h.Count++
		h.MeanPct += (j.RelErrPct - h.MeanPct) / float64(h.Count)
		if j.RelErrPct > h.MaxPct {
			h.MaxPct = j.RelErrPct
		}
	}
	classes := make([]string, 0, len(hists))
	for c := range hists {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		r.Hist = append(r.Hist, *hists[c])
	}

	if o == nil {
		return r
	}

	// Interference: realized EDP of each completed co-located job over
	// its solo-optimal baseline.
	for _, d := range decisions {
		if !d.Done || !d.Colocated || d.EDP <= 0 {
			continue
		}
		solo, err := o.SoloBestEDP(d.App, d.SizeGB)
		if err != nil || solo <= 0 {
			r.OracleErrors++
			continue
		}
		r.Interference = append(r.Interference, InterferenceRow{
			Job: d.Job, App: d.App, Class: d.PredClass, Partner: d.Partner,
			RealEDP: d.EDP, SoloBestEDP: solo, Ratio: d.EDP / solo,
		})
	}

	// Regret: each realized pairing against COLAO for the same apps.
	byID := map[int]Decision{}
	for _, d := range decisions {
		byID[d.Job] = d
	}
	for _, p := range pairings {
		if p.RealEDP <= 0 {
			continue
		}
		a, okA := byID[p.Resident]
		b, okB := byID[p.Incoming]
		if !okA || !okB {
			continue
		}
		oracle, err := o.PairBestEDP(a.App, a.SizeGB, b.App, b.SizeGB)
		if err != nil || oracle <= 0 {
			r.OracleErrors++
			continue
		}
		r.Regret = append(r.Regret, RegretRow{
			Resident: p.Resident, Incoming: p.Incoming,
			Apps:    a.App + "+" + b.App,
			RealEDP: p.RealEDP, OracleEDP: oracle,
			RegretPct: 100 * (p.RealEDP - oracle) / oracle,
		})
	}
	return r
}

// WriteText renders the report deterministically (fixed precision, no
// maps iterated directly) — golden-tested byte-identical across
// same-seed runs at any GOMAXPROCS.
func (r QualityReport) WriteText(w io.Writer) error {
	var werr error
	p := func(format string, args ...any) {
		if werr == nil {
			_, werr = fmt.Fprintf(w, format, args...)
		}
	}
	p("decision quality: %d jobs, %d completed, %d prediction joins\n",
		r.Jobs, r.Completed, r.Joined)

	p("\nclassifier confusion (true class rows × predicted class columns, accuracy %.1f%%):\n",
		100*r.Accuracy)
	cells := map[[2]string]int{}
	for _, c := range r.Confusion {
		cells[[2]string{c.True, c.Pred}] = c.N
	}
	p("  %-5s", "")
	for _, c := range r.Classes {
		p(" %5s", c)
	}
	p("\n")
	for _, t := range r.Classes {
		p("  %-5s", t)
		for _, c := range r.Classes {
			p(" %5d", cells[[2]string{t, c}])
		}
		p("\n")
	}

	p("\nSTP relative error by predicted class (%% of realized EDP):\n")
	if len(r.Hist) == 0 {
		p("  (no joined predictions)\n")
	}
	for _, h := range r.Hist {
		p("  class %-2s n=%-3d mean=%.1f%% max=%.1f%%  |", h.Class, h.Count, h.MeanPct, h.MaxPct)
		for i, n := range h.Counts {
			if i < len(ErrBuckets) {
				p(" ≤%g:%d", ErrBuckets[i], n)
			} else {
				p(" >%g:%d", ErrBuckets[len(ErrBuckets)-1], n)
			}
		}
		p("\n")
	}

	p("\nco-location interference (realized job EDP ÷ solo-optimal EDP):\n")
	if len(r.Interference) == 0 {
		p("  (no completed co-located jobs, or no oracle)\n")
	}
	for _, row := range r.Interference {
		p("  job %-3d %-5s class %-2s partner %-3d  %11.4g / %11.4g = %6.2fx\n",
			row.Job, row.App, row.Class, row.Partner, row.RealEDP, row.SoloBestEDP, row.Ratio)
	}

	p("\noracle regret (realized pair EDP vs COLAO optimum):\n")
	if len(r.Regret) == 0 {
		p("  (no realized pairings, or no oracle)\n")
	}
	for _, row := range r.Regret {
		p("  pair %d+%-3d %-11s %11.4g vs %11.4g  regret %+.1f%%\n",
			row.Resident, row.Incoming, row.Apps, row.RealEDP, row.OracleEDP, row.RegretPct)
	}
	if r.OracleErrors > 0 {
		p("  (%d rows skipped: oracle lookups failed)\n", r.OracleErrors)
	}

	p("\ndrift (CUSUM over join relative error, δ=%g λ=%g warmup=%d):\n",
		r.Drift.Config.Delta, r.Drift.Config.Lambda, r.Drift.Config.MinSamples)
	p("  samples=%d mean=%.1f%% stat=%.1f alerts=%d\n",
		r.Drift.Samples, r.Drift.Mean, r.Drift.Stat, len(r.Drift.Alerts))
	for _, a := range r.Drift.Alerts {
		p("  ALERT at t=%.0fs job=%d sample=%d stat=%.1f mean=%.1f%%\n",
			a.AtS, a.Job, a.Sample, a.Stat, a.Mean)
	}
	return werr
}

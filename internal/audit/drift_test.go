package audit

import "testing"

func TestCusumQuietOnStableStream(t *testing.T) {
	p := cusum{cfg: DriftConfig{Delta: 60, Lambda: 600, MinSamples: 4}}
	// Healthy scatter around 40% with excursions below mean+Delta.
	for i := 0; i < 200; i++ {
		x := 30.0
		if i%3 == 0 {
			x = 60
		}
		if _, fired := p.observe(x); fired {
			t.Fatalf("false alarm at sample %d", i+1)
		}
	}
}

func TestCusumFiresOnUpwardShift(t *testing.T) {
	p := cusum{cfg: DriftConfig{Delta: 60, Lambda: 600, MinSamples: 4}}
	for i := 0; i < 20; i++ {
		if _, fired := p.observe(40); fired {
			t.Fatalf("false alarm during healthy phase at %d", i+1)
		}
	}
	// The database goes stale: errors jump to thousands of percent.
	fired := false
	var a Alert
	for i := 0; i < 10 && !fired; i++ {
		a, fired = p.observe(3000)
	}
	if !fired {
		t.Fatal("no alarm after upward shift")
	}
	if a.Sample < 21 || a.Stat <= 600 || a.Mean <= 40 {
		t.Fatalf("alert state: %+v", a)
	}
	// State reset: the detector re-arms and needs warmup again.
	if n, mean, stat := p.state(); n != 0 || mean != 0 || stat != 0 {
		t.Fatalf("state after alarm: n=%d mean=%g stat=%g", n, mean, stat)
	}
	if _, f := p.observe(5000); f {
		t.Fatal("alarmed inside warmup after reset")
	}
}

func TestCusumWarmup(t *testing.T) {
	p := cusum{cfg: DriftConfig{Delta: 1, Lambda: 1, MinSamples: 5}}
	for i := 0; i < 4; i++ {
		if _, fired := p.observe(1e6); fired {
			t.Fatalf("alarmed during warmup at sample %d", i+1)
		}
	}
	if _, fired := p.observe(1e6); !fired {
		t.Fatal("no alarm once warmup satisfied")
	}
}

func TestNewLogDefaultsFill(t *testing.T) {
	l := NewLog(DriftConfig{})
	def := DefaultDriftConfig()
	if l.detector.cfg != def {
		t.Fatalf("zero config not defaulted: %+v", l.detector.cfg)
	}
	l2 := NewLog(DriftConfig{Delta: 1, Lambda: 2, MinSamples: 3})
	if l2.detector.cfg != (DriftConfig{Delta: 1, Lambda: 2, MinSamples: 3}) {
		t.Fatalf("explicit config overridden: %+v", l2.detector.cfg)
	}
}

func TestDriftAlertsSurfaceInCompleteAndQuality(t *testing.T) {
	l := NewLog(DriftConfig{Delta: 10, Lambda: 50, MinSamples: 2})
	var alerts []Alert
	for i := 0; i < 4; i++ {
		l.Submit(i, "nb", 5, "C", "C", 0)
		l.Place(i, 0, 0, BranchReserve, -1)
		l.Tune(i, "LkT", "cfg", TuneSolo, Expectation{EDP: 1}) // realized ≫ predicted
		l.AddEnergy(i, 100)
		_, a := l.Complete(i, float64(10+i))
		alerts = append(alerts, a...)
	}
	if len(alerts) == 0 {
		t.Fatal("no drift alerts from Complete")
	}
	if got := l.Alerts(); len(got) != len(alerts) {
		t.Fatalf("Alerts() = %d, want %d", len(got), len(alerts))
	}
	r := l.Quality(nil)
	if len(r.Drift.Alerts) != len(alerts) {
		t.Fatalf("report alerts = %d, want %d", len(r.Drift.Alerts), len(alerts))
	}
	if r.Drift.Config.Lambda != 50 {
		t.Fatalf("report config: %+v", r.Drift.Config)
	}
}

// Package audit records the online controller's decisions and joins
// them with realized outcomes, so the *quality* of ECoST's choices —
// classification, partner selection, STP tuning — is observable, not
// just their resource cost. Every record is derived from simulated
// state only, so the log is deterministic: same seed, same bytes, at
// any GOMAXPROCS.
//
// Like internal/metrics and internal/tracing, the package is nil-safe:
// a nil *Log makes every recording call a single-branch no-op (sub-ns,
// zero allocations, benchmarked), so callers never guard call sites.
package audit

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
)

// Branch labels the decision-tree branch that placed a job (the paper's
// Figure 4 queue discipline: head reservation + leap-forward pairing).
type Branch uint8

// The placement branch vocabulary.
const (
	BranchNone     Branch = iota // not yet placed
	BranchReserve                // the reserved head claimed a fresh node slot
	BranchPairHead               // the head was paired next to a resident
	BranchPairLeap               // a non-head job leapt forward to pair
)

// String implements fmt.Stringer.
func (b Branch) String() string {
	switch b {
	case BranchNone:
		return "none"
	case BranchReserve:
		return "reserve"
	case BranchPairHead:
		return "pair_head"
	case BranchPairLeap:
		return "pair_leap"
	}
	return "unknown"
}

// MarshalText renders the branch as its name in JSON expositions.
func (b Branch) MarshalText() ([]byte, error) { return []byte(b.String()), nil }

// TunePath labels which STP path produced a job's configuration.
type TunePath uint8

// The tuning-path vocabulary.
const (
	TuneNone TunePath = iota // not yet tuned
	TunePair                 // pair-tuned against the resident
	TuneSolo                 // solo-tuned (empty node, or the pair prediction failed/overflowed)
)

// String implements fmt.Stringer.
func (p TunePath) String() string {
	switch p {
	case TuneNone:
		return "none"
	case TunePair:
		return "pair"
	case TuneSolo:
		return "solo"
	}
	return "unknown"
}

// MarshalText renders the path as its name in JSON expositions.
func (p TunePath) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// Expectation is the tuner's own forecast of the outcome at its chosen
// configuration: EDP in J·s, makespan in seconds, average watts. A zero
// EDP means the technique exposed no forecast (nothing joins, nothing
// drifts).
type Expectation struct {
	EDP    float64 `json:"edp"`
	TimeS  float64 `json:"time_s"`
	PowerW float64 `json:"power_w"`
}

// Decision is one job's full controller story: what was observed, what
// was predicted, what was decided, and — once the job finishes — what
// actually happened.
type Decision struct {
	Job       int     `json:"job"`
	App       string  `json:"app"`
	SizeGB    float64 `json:"size_gb"`
	TrueClass string  `json:"true_class"` // ground truth from workloads
	PredClass string  `json:"pred_class"` // the online Classify result
	SubmitS   float64 `json:"submit_s"`

	Branch   Branch  `json:"branch"`
	LeapOver int     `json:"leap_over"` // head job ID leapt past (-1 = none)
	Node     int     `json:"node"`
	StartS   float64 `json:"start_s"`

	Method string      `json:"method,omitempty"` // STP technique name
	Path   TunePath    `json:"path"`
	Config string      `json:"config,omitempty"`
	Retune string      `json:"retune,omitempty"` // live re-tuned config (resident side of a pairing)
	Pred   Expectation `json:"pred"`

	Partner   int  `json:"partner"` // most recent co-resident job ID (-1 = none)
	Colocated bool `json:"colocated"`

	Done      bool    `json:"done"`
	FinishS   float64 `json:"finish_s"`
	RunS      float64 `json:"run_s"`
	EnergyJ   float64 `json:"energy_j"`    // equal-share node energy over residency
	EDP       float64 `json:"edp"`         // realized job EDP = EnergyJ × RunS
	RelErrPct float64 `json:"rel_err_pct"` // solo prediction error (-1 = no join)
}

// Pairing is one co-location decision: a resident and the partner the
// decision tree placed next to it, with the pair-level forecast and —
// once both finish — the realized pair EDP over their union residency.
type Pairing struct {
	Node     int         `json:"node"`
	Resident int         `json:"resident"`
	Incoming int         `json:"incoming"`
	AtS      float64     `json:"at_s"`
	Branch   Branch      `json:"branch"`
	Pred     Expectation `json:"pred"` // zero EDP when the tuner fell back to solo

	RealEDP   float64 `json:"real_edp"`    // (Eres+Einc) × (last finish − first start); 0 until both done
	RelErrPct float64 `json:"rel_err_pct"` // -1 = not joined
	joined    bool
}

// Join is one predicted-vs-realized EDP comparison produced at job
// completion — the drift detector's input stream. Class is the
// *predicted* class of the tuned job (pair joins use the incoming
// side), matching the per-class error histograms.
type Join struct {
	Job       int     `json:"job"`
	Class     string  `json:"class"`
	Pair      bool    `json:"pair"` // pair-level join vs solo job-level join
	PredEDP   float64 `json:"pred_edp"`
	RealEDP   float64 `json:"real_edp"`
	RelErrPct float64 `json:"rel_err_pct"`
}

// Log is the decision-audit log. A nil *Log is valid and disabled:
// every method short-circuits on one branch. The zero cost matters —
// the scheduler calls AddEnergy on every energy-accrual interval.
type Log struct {
	mu       sync.Mutex
	jobs     map[int]*Decision
	pairings []*Pairing
	joins    []Join
	detector cusum
	alerts   []Alert
}

// NewLog builds an enabled audit log with the given drift-detector
// configuration (zero-value fields fall back to DefaultDriftConfig).
func NewLog(cfg DriftConfig) *Log {
	def := DefaultDriftConfig()
	if cfg.Delta <= 0 {
		cfg.Delta = def.Delta
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = def.Lambda
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = def.MinSamples
	}
	return &Log{
		jobs:     make(map[int]*Decision),
		detector: cusum{cfg: cfg},
	}
}

// Enabled reports whether the log records anything.
func (l *Log) Enabled() bool { return l != nil }

// Submit records a job's arrival: identity, observed size, the
// ground-truth class, and the online classifier's verdict.
func (l *Log) Submit(job int, app string, sizeGB float64, trueClass, predClass string, at float64) {
	if l == nil {
		return
	}
	l.submit(job, app, sizeGB, trueClass, predClass, at)
}

func (l *Log) submit(job int, app string, sizeGB float64, trueClass, predClass string, at float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.jobs[job] = &Decision{
		Job: job, App: app, SizeGB: sizeGB,
		TrueClass: trueClass, PredClass: predClass, SubmitS: at,
		LeapOver: -1, Node: -1, Partner: -1, RelErrPct: -1,
	}
}

// Place records the placement decision: which decision-tree branch
// fired and, for leap-forward, which head was leapt past.
func (l *Log) Place(job, node int, at float64, branch Branch, leapOver int) {
	if l == nil {
		return
	}
	l.place(job, node, at, branch, leapOver)
}

func (l *Log) place(job, node int, at float64, branch Branch, leapOver int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.jobs[job]
	if d == nil {
		return
	}
	d.Node = node
	d.StartS = at
	d.Branch = branch
	d.LeapOver = leapOver
}

// Tune records the STP decision for a job: technique, path, chosen
// configuration, and the technique's own outcome forecast (zero
// Expectation when the technique exposes none).
func (l *Log) Tune(job int, method, config string, path TunePath, exp Expectation) {
	if l == nil {
		return
	}
	l.tune(job, method, config, path, exp)
}

func (l *Log) tune(job int, method, config string, path TunePath, exp Expectation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.jobs[job]
	if d == nil {
		return
	}
	d.Method = method
	d.Config = config
	d.Path = path
	d.Pred = exp
}

// Retune records that a resident's live configuration was adjusted when
// a partner arrived (frequency and mapper slots; see scheduler.place).
func (l *Log) Retune(job int, config string) {
	if l == nil {
		return
	}
	l.retune(job, config)
}

func (l *Log) retune(job int, config string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if d := l.jobs[job]; d != nil {
		d.Retune = config
	}
}

// Paired records one co-location decision with the pair-level forecast.
func (l *Log) Paired(resident, incoming, node int, at float64, branch Branch, pred Expectation) {
	if l == nil {
		return
	}
	l.paired(resident, incoming, node, at, branch, pred)
}

func (l *Log) paired(resident, incoming, node int, at float64, branch Branch, pred Expectation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pairings = append(l.pairings, &Pairing{
		Node: node, Resident: resident, Incoming: incoming,
		AtS: at, Branch: branch, Pred: pred, RelErrPct: -1,
	})
	if d := l.jobs[resident]; d != nil {
		d.Partner = incoming
		d.Colocated = true
	}
	if d := l.jobs[incoming]; d != nil {
		d.Partner = resident
		d.Colocated = true
	}
}

// AddEnergy attributes an equal-share slice of node energy to an
// in-flight job — the same share the tracer bills to run spans, so the
// realized join is bit-identical to tracing's JobReport.EnergyJ.
func (l *Log) AddEnergy(job int, joules float64) {
	if l == nil {
		return
	}
	l.addEnergy(job, joules)
}

func (l *Log) addEnergy(job int, joules float64) {
	l.mu.Lock()
	if d := l.jobs[job]; d != nil {
		d.EnergyJ += joules
	}
	l.mu.Unlock()
}

// Complete closes a job's record, computes its realized EDP, and joins
// every prediction that became comparable: the job's own solo forecast
// (never-co-located jobs) and any pairing whose second member just
// finished. Each join feeds the drift detector in completion order —
// deterministic, because the simulation's completion order is. The
// returned joins and alerts let the caller mirror them into metrics.
func (l *Log) Complete(job int, at float64) (joins []Join, alerts []Alert) {
	if l == nil {
		return nil, nil
	}
	return l.complete(job, at)
}

func (l *Log) complete(job int, at float64) (joins []Join, alerts []Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.jobs[job]
	if d == nil || d.Done {
		return nil, nil
	}
	d.Done = true
	d.FinishS = at
	d.RunS = at - d.StartS
	d.EDP = d.EnergyJ * d.RunS

	// Solo join: the job never shared a node, so its solo forecast is
	// directly comparable to its realized EDP.
	if !d.Colocated && d.Pred.EDP > 0 && d.EDP > 0 {
		joins = append(joins, l.recordJoin(Join{
			Job: d.Job, Class: d.PredClass,
			PredEDP: d.Pred.EDP, RealEDP: d.EDP,
			RelErrPct: relErrPct(d.Pred.EDP, d.EDP),
		}))
		d.RelErrPct = joins[len(joins)-1].RelErrPct
	}

	// Pair joins: any pairing whose other member already finished is now
	// fully realized over the union residency window.
	for _, p := range l.pairings {
		if p.joined || (p.Resident != job && p.Incoming != job) {
			continue
		}
		a, b := l.jobs[p.Resident], l.jobs[p.Incoming]
		if a == nil || b == nil || !a.Done || !b.Done {
			continue
		}
		span := math.Max(a.FinishS, b.FinishS) - math.Min(a.StartS, b.StartS)
		p.RealEDP = (a.EnergyJ + b.EnergyJ) * span
		p.joined = true
		if p.Pred.EDP > 0 && p.RealEDP > 0 {
			p.RelErrPct = relErrPct(p.Pred.EDP, p.RealEDP)
			joins = append(joins, l.recordJoin(Join{
				Job: b.Job, Class: b.PredClass, Pair: true,
				PredEDP: p.Pred.EDP, RealEDP: p.RealEDP, RelErrPct: p.RelErrPct,
			}))
		}
	}

	// Feed the detector in join order.
	for _, j := range joins {
		if a, fired := l.detector.observe(j.RelErrPct); fired {
			a.AtS = at
			a.Job = job
			l.alerts = append(l.alerts, a)
			alerts = append(alerts, a)
		}
	}
	return joins, alerts
}

func (l *Log) recordJoin(j Join) Join {
	l.joins = append(l.joins, j)
	return j
}

// relErrPct is the relative prediction error in percent of realized.
func relErrPct(pred, real float64) float64 {
	return 100 * math.Abs(pred-real) / real
}

// Decisions returns a copy of all records in job-ID order.
func (l *Log) Decisions() []Decision {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, 0, len(l.jobs))
	for _, d := range l.jobs {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// Pairings returns a copy of all co-location records in decision order.
func (l *Log) Pairings() []Pairing {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Pairing, 0, len(l.pairings))
	for _, p := range l.pairings {
		out = append(out, *p)
	}
	return out
}

// Joins returns a copy of all predicted-vs-realized comparisons in
// completion order (the drift detector's input stream).
func (l *Log) Joins() []Join {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Join(nil), l.joins...)
}

// Alerts returns a copy of all drift alerts fired so far.
func (l *Log) Alerts() []Alert {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Alert(nil), l.alerts...)
}

// WriteJSONL streams the audit log as JSON Lines: one Decision object
// per line in job-ID order. All values derive from simulated state, so
// the bytes are identical across same-seed runs at any GOMAXPROCS.
func (l *Log) WriteJSONL(w io.Writer) error {
	for _, d := range l.Decisions() {
		b, err := json.Marshal(d)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

package audit

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// fakeOracle serves fixed references: solo EDP 100 for every app, pair
// EDP 1000 for every pair, with one app name that always errors.
type fakeOracle struct{}

func (fakeOracle) SoloBestEDP(app string, sizeGB float64) (float64, error) {
	if app == "broken" {
		return 0, fmt.Errorf("no such app")
	}
	return 100, nil
}

func (fakeOracle) PairBestEDP(a string, sa float64, b string, sb float64) (float64, error) {
	if a == "broken" || b == "broken" {
		return 0, fmt.Errorf("no such app")
	}
	return 1000, nil
}

// drive records a tiny deterministic scenario: job 0 solo-placed and
// never co-located, jobs 1 and 2 paired (2 leaps over head 3).
func drive(l *Log) {
	l.Submit(0, "nb", 5, "C", "C", 0)
	l.Place(0, 0, 1, BranchReserve, -1)
	l.Tune(0, "LkT", "cfg0", TuneSolo, Expectation{EDP: 500, TimeS: 10, PowerW: 50})

	l.Submit(1, "pr", 5, "H", "H", 2)
	l.Place(1, 1, 3, BranchReserve, -1)
	l.Tune(1, "LkT", "cfg1", TuneSolo, Expectation{EDP: 800})

	l.Submit(3, "st", 5, "I", "M", 4) // misclassified, stays queued (head)
	l.Submit(2, "km", 5, "I", "I", 4)
	l.Place(2, 1, 5, BranchPairLeap, 3)
	l.Tune(2, "LkT", "cfg2", TunePair, Expectation{EDP: 2000})
	l.Retune(1, "cfg1'")
	l.Paired(1, 2, 1, 5, BranchPairLeap, Expectation{EDP: 2000})

	// Energy: job 0 solo 10 J; jobs 1+2 get 30 J and 20 J.
	l.AddEnergy(0, 10)
	l.AddEnergy(1, 30)
	l.AddEnergy(2, 20)
}

func TestLogJoinsAndRecords(t *testing.T) {
	l := NewLog(DriftConfig{})
	drive(l)

	// Job 0 completes at t=11: solo join, realized EDP = 10 J × 10 s.
	joins, alerts := l.Complete(0, 11)
	if len(alerts) != 0 {
		t.Fatalf("unexpected alerts: %v", alerts)
	}
	if len(joins) != 1 {
		t.Fatalf("want 1 solo join, got %v", joins)
	}
	j := joins[0]
	wantReal := 10.0 * 10
	if j.Pair || j.Job != 0 || j.Class != "C" || j.RealEDP != wantReal {
		t.Fatalf("bad solo join: %+v", j)
	}
	wantErr := 100 * math.Abs(500-wantReal) / wantReal
	if j.RelErrPct != wantErr {
		t.Fatalf("rel err = %g, want %g", j.RelErrPct, wantErr)
	}

	// Job 1 completes at t=9; pairing not realized until job 2 is done.
	joins, _ = l.Complete(1, 9)
	if len(joins) != 0 {
		t.Fatalf("pair joined early: %v", joins)
	}

	// Job 2 completes at t=15: pair join over the union window [3,15]
	// with 30+20 J.
	joins, _ = l.Complete(2, 15)
	if len(joins) != 1 || !joins[0].Pair {
		t.Fatalf("want 1 pair join, got %v", joins)
	}
	wantPair := (30.0 + 20.0) * (15 - 3)
	if joins[0].RealEDP != wantPair || joins[0].Class != "I" || joins[0].Job != 2 {
		t.Fatalf("bad pair join: %+v (want real %g)", joins[0], wantPair)
	}

	ds := l.Decisions()
	if len(ds) != 4 {
		t.Fatalf("want 4 decisions, got %d", len(ds))
	}
	d0, d1, d2, d3 := ds[0], ds[1], ds[2], ds[3]
	if d0.Colocated || d0.Partner != -1 || d0.Branch != BranchReserve {
		t.Fatalf("job 0: %+v", d0)
	}
	if !d1.Colocated || d1.Partner != 2 || d1.Retune != "cfg1'" {
		t.Fatalf("job 1: %+v", d1)
	}
	if d2.Branch != BranchPairLeap || d2.LeapOver != 3 || d2.Path != TunePair {
		t.Fatalf("job 2: %+v", d2)
	}
	if d3.Done || d3.Branch != BranchNone || d3.TrueClass != "I" || d3.PredClass != "M" {
		t.Fatalf("job 3: %+v", d3)
	}
	if d0.EDP != wantReal || d0.RelErrPct != wantErr {
		t.Fatalf("job 0 realized: %+v", d0)
	}

	ps := l.Pairings()
	if len(ps) != 1 || ps[0].RealEDP != wantPair || ps[0].Resident != 1 || ps[0].Incoming != 2 {
		t.Fatalf("pairings: %+v", ps)
	}
}

func TestQualityReport(t *testing.T) {
	l := NewLog(DriftConfig{})
	drive(l)
	l.Complete(0, 11)
	l.Complete(1, 9)
	l.Complete(2, 15)

	r := l.Quality(fakeOracle{})
	if r.Jobs != 4 || r.Completed != 3 || r.Joined != 2 {
		t.Fatalf("counts: %+v", r)
	}
	// Confusion: C→C, H→H, I→I, I→M; accuracy 3/4.
	if r.Accuracy != 0.75 {
		t.Fatalf("accuracy = %g", r.Accuracy)
	}
	cells := map[string]int{}
	for _, c := range r.Confusion {
		cells[c.True+">"+c.Pred] = c.N
	}
	if cells["I>M"] != 1 || cells["I>I"] != 1 || cells["C>C"] != 1 || cells["H>H"] != 1 {
		t.Fatalf("confusion: %v", cells)
	}
	// Histograms keyed by predicted class of the joined job.
	if len(r.Hist) != 2 || r.Hist[0].Class != "C" || r.Hist[1].Class != "I" {
		t.Fatalf("hist classes: %+v", r.Hist)
	}
	// Interference only for co-located completed jobs (1 and 2).
	if len(r.Interference) != 2 {
		t.Fatalf("interference: %+v", r.Interference)
	}
	if r.Interference[0].Job != 1 || r.Interference[0].Ratio != (30.0*6)/100 {
		t.Fatalf("interference row 0: %+v", r.Interference[0])
	}
	// Regret for the one realized pairing vs the fake oracle's 1000.
	if len(r.Regret) != 1 {
		t.Fatalf("regret: %+v", r.Regret)
	}
	wantRegret := 100 * (600.0 - 1000) / 1000
	if r.Regret[0].RegretPct != wantRegret || r.Regret[0].Apps != "pr+km" {
		t.Fatalf("regret row: %+v", r.Regret[0])
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"accuracy 75.0%", "pr+km", "drift", "class C"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// Without an oracle the reference sections stay empty.
	r2 := l.Quality(nil)
	if len(r2.Interference) != 0 || len(r2.Regret) != 0 {
		t.Fatalf("nil oracle produced reference rows: %+v", r2)
	}
}

func TestQualityOracleErrors(t *testing.T) {
	l := NewLog(DriftConfig{})
	l.Submit(0, "broken", 5, "C", "C", 0)
	l.Submit(1, "broken", 5, "C", "C", 0)
	l.Place(0, 0, 0, BranchReserve, -1)
	l.Place(1, 0, 0, BranchPairHead, -1)
	l.Paired(0, 1, 0, 0, BranchPairHead, Expectation{EDP: 1})
	l.AddEnergy(0, 5)
	l.AddEnergy(1, 5)
	l.Complete(0, 10)
	l.Complete(1, 10)
	r := l.Quality(fakeOracle{})
	if r.OracleErrors != 3 { // 2 interference rows + 1 regret row skipped
		t.Fatalf("oracle errors = %d, want 3", r.OracleErrors)
	}
}

func TestWriteJSONLDeterministic(t *testing.T) {
	render := func() string {
		l := NewLog(DriftConfig{})
		drive(l)
		l.Complete(0, 11)
		l.Complete(1, 9)
		l.Complete(2, 15)
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("JSONL not deterministic:\n%s\nvs\n%s", a, b)
	}
	if n := strings.Count(a, "\n"); n != 4 {
		t.Fatalf("want 4 JSONL lines, got %d", n)
	}
	if !strings.Contains(a, `"branch":"pair_leap"`) || !strings.Contains(a, `"leap_over":3`) {
		t.Fatalf("JSONL missing branch fields:\n%s", a)
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	if l.Enabled() {
		t.Fatal("nil log enabled")
	}
	l.Submit(0, "nb", 5, "C", "C", 0)
	l.Place(0, 0, 0, BranchReserve, -1)
	l.Tune(0, "LkT", "cfg", TuneSolo, Expectation{})
	l.Retune(0, "cfg")
	l.Paired(0, 1, 0, 0, BranchPairHead, Expectation{})
	l.AddEnergy(0, 1)
	if joins, alerts := l.Complete(0, 1); joins != nil || alerts != nil {
		t.Fatal("nil log returned joins")
	}
	if l.Decisions() != nil || l.Pairings() != nil || l.Joins() != nil || l.Alerts() != nil {
		t.Fatal("nil log returned records")
	}
	r := l.Quality(fakeOracle{})
	if r.Jobs != 0 {
		t.Fatal("nil log produced a report")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatal("nil log wrote JSONL")
	}
}

func TestUnknownJobIgnored(t *testing.T) {
	l := NewLog(DriftConfig{})
	l.Place(99, 0, 0, BranchReserve, -1)
	l.Tune(99, "LkT", "cfg", TuneSolo, Expectation{})
	l.AddEnergy(99, 1)
	if joins, _ := l.Complete(99, 1); joins != nil {
		t.Fatal("unknown job joined")
	}
	if len(l.Decisions()) != 0 {
		t.Fatal("unknown job created a record")
	}
}

func TestEnumStrings(t *testing.T) {
	for want, got := range map[string]string{
		"none": BranchNone.String(), "reserve": BranchReserve.String(),
		"pair_head": BranchPairHead.String(), "pair_leap": BranchPairLeap.String(),
		"unknown": Branch(99).String(),
	} {
		if got != want {
			t.Fatalf("branch: got %q want %q", got, want)
		}
	}
	if TuneNone.String() != "none" || TunePair.String() != "pair" ||
		TuneSolo.String() != "solo" || TunePath(99).String() != "unknown" {
		t.Fatal("tune path strings")
	}
}

// BenchmarkDisabledAudit proves the nil-log fast path is a single
// branch: ≤1 ns/op, zero allocations (the acceptance bar shared with
// the nil tracer and nil registry).
func BenchmarkDisabledAudit(b *testing.B) {
	var l *Log
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.AddEnergy(i, 1.5)
	}
}

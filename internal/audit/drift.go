package audit

// Drift detection over the rolling STP relative error. Self-tuning
// predictors degrade silently as the workload drifts away from the
// training database (arXiv:1301.4753, arXiv:1303.3632); the detector
// turns that degradation into a typed alert.
//
// The test is a one-sided CUSUM with a *fixed* reference level rather
// than Page-Hinkley's self-adapting mean: a database that is stale from
// the first join produces uniformly huge errors with no in-stream
// "healthy" baseline to shift away from, which a mean-tracking test
// would wave through. Against a fixed acceptable-error level the
// statistic S_t = max(0, S_{t-1} + x_t − δ) accumulates every percent
// of excess error and alarms as soon as the budget λ is spent, while a
// healthy stream (errors mostly below δ) pins it to zero.

// DriftConfig parameterizes the CUSUM test.
type DriftConfig struct {
	// Delta is the reference level in error percentage points: the
	// per-join relative error the controller considers healthy. Joins
	// below Delta drain the statistic, joins above it charge the
	// excess. It absorbs the scatter of predicted-vs-realized EDP under
	// co-location timing effects.
	Delta float64 `json:"delta"`
	// Lambda is the alarm threshold on the cumulative excess
	// (percentage points). Larger values trade detection latency for
	// fewer false alarms.
	Lambda float64 `json:"lambda"`
	// MinSamples suppresses alarms until at least this many joins have
	// been consumed since the last reset (warm-up).
	MinSamples int `json:"min_samples"`
}

// DefaultDriftConfig returns the tuned defaults. The tuning constraint
// is asymmetric: a stale database *underpredicts*, and underprediction
// error saturates just below 100% of realized (|pred−real|/real → 1 as
// pred → 0), while healthy LkT pair forecasts land well under 80% even
// with union-window inflation (core's seeded scenarios measure 14–77%).
// δ=85 sits in that gap; λ=40 then needs ≈3 near-saturated joins past
// warm-up before alarming, so isolated healthy excursions above δ stay
// quiet (see TestDriftAlertStaleDatabase and
// TestSchedulerAuditQualityPopulated in internal/core).
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Delta: 85, Lambda: 40, MinSamples: 4}
}

// Alert is one drift alarm: the detector's state at the moment the
// cumulative statistic crossed Lambda.
type Alert struct {
	// AtS is the simulated completion time whose join fired the alarm.
	AtS float64 `json:"at_s"`
	// Job is the completing job whose join fired the alarm.
	Job int `json:"job"`
	// Sample is how many joins the detector had consumed since the
	// last reset (1-based).
	Sample int `json:"sample"`
	// Stat is the CUSUM statistic at the alarm (> Lambda).
	Stat float64 `json:"stat"`
	// Mean is the running mean relative error at the alarm.
	Mean float64 `json:"mean"`
}

// cusum is the one-sided fixed-reference CUSUM state (see the file
// comment for why this beats Page-Hinkley's self-adapting mean here).
type cusum struct {
	cfg  DriftConfig
	n    int
	mean float64
	cum  float64
}

// observe consumes one relative-error sample and reports whether the
// alarm fired, with the alert's detector-state fields filled in. After
// an alarm the state resets, so a persistently stale database re-alarms
// every MinSamples joins.
func (p *cusum) observe(x float64) (Alert, bool) {
	p.n++
	p.mean += (x - p.mean) / float64(p.n)
	p.cum += x - p.cfg.Delta
	if p.cum < 0 {
		p.cum = 0
	}
	if p.n >= p.cfg.MinSamples && p.cum > p.cfg.Lambda {
		a := Alert{Sample: p.n, Stat: p.cum, Mean: p.mean}
		p.n = 0
		p.mean = 0
		p.cum = 0
		return a, true
	}
	return Alert{}, false
}

// state reports the detector's current sample count, running mean, and
// statistic (for the quality report).
func (p *cusum) state() (n int, mean, stat float64) {
	return p.n, p.mean, p.cum
}

package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// shardFixture builds a two-shard set with interleaved span starts and
// a steal pair linking the shards, exercising the merge tie-breaks:
// identical starts across shards and within one shard.
func shardFixture(t *testing.T) *ShardSet {
	t.Helper()
	ts := NewShardSet()
	for i := 0; i < 2; i++ {
		clk := &fakeClock{}
		ts.Attach(New(clk.now))
	}
	a, b := ts.Tracer(0), ts.Tracer(1)
	a.Record(KindNode, "solo", nil, 0, 10, Attrs{Node: 0}).AddEnergy(4)
	b.Record(KindNode, "solo", nil, 0, 10, Attrs{Node: 1}).AddEnergy(6)
	a.Record(KindRun, "run j0", nil, 1, 5, Attrs{Job: 0, Node: 0, App: "wc"}).AddEnergy(4)
	b.Record(KindRun, "run j1", nil, 1, 7, Attrs{Job: 1, Node: 1, App: "pr"}).AddEnergy(6)
	a.Record(KindStealOut, "steal_out", nil, 3, 3, Attrs{Job: 2, Node: -1, App: "wc", Detail: "to=shard1", Link: 1})
	b.Record(KindStealIn, "steal_in", nil, 3, 3, Attrs{Job: 2, Node: -1, App: "wc", Detail: "from=shard0", Link: 1})
	return ts
}

// TestMergeDeterministic: Merge sorts on (Start, Shard, ID) and is
// invariant to the order the per-shard span sets are supplied in.
func TestMergeDeterministic(t *testing.T) {
	ts := shardFixture(t)
	s0, s1 := ts.Tracer(0).Spans(), ts.Tracer(1).Spans()
	fwd := Merge(s0, s1)
	rev := Merge(s1, s0)
	if len(fwd) != len(s0)+len(s1) {
		t.Fatalf("merged %d spans from %d+%d inputs", len(fwd), len(s0), len(s1))
	}
	for i := range fwd {
		if fwd[i] != rev[i] {
			t.Fatalf("merge order depends on input order at %d: %+v vs %+v", i, fwd[i], rev[i])
		}
	}
	for i := 1; i < len(fwd); i++ {
		a, b := fwd[i-1], fwd[i]
		if a.Start > b.Start ||
			(a.Start == b.Start && a.Shard > b.Shard) ||
			(a.Start == b.Start && a.Shard == b.Shard && a.ID > b.ID) {
			t.Fatalf("merged order violates (Start, Shard, ID) at %d: %+v then %+v", i, a, b)
		}
	}
	// Spans carry the shard they were recorded on.
	for _, s := range fwd {
		if s.Shard != 0 && s.Shard != 1 {
			t.Fatalf("span %q has shard %d, want 0 or 1", s.Name, s.Shard)
		}
	}
}

// TestShardSetSingleDelegation: a one-shard set's exports are
// byte-identical to the lone tracer's own exporters — the sharded path
// is a superset, not a dialect.
func TestShardSetSingleDelegation(t *testing.T) {
	ts := NewShardSet()
	clk := &fakeClock{}
	tr := New(clk.now)
	ts.Attach(tr)
	tr.Record(KindNode, "node", nil, 0, 10, Attrs{Node: 0}).AddEnergy(4)
	tr.Record(KindRun, "run", nil, 1, 5, Attrs{Job: 0, Node: 0, App: "wc"}).AddEnergy(4)

	var setChrome, soloChrome, setTL, soloTL bytes.Buffer
	if err := ts.WriteChromeTrace(&setChrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&soloChrome); err != nil {
		t.Fatal(err)
	}
	if setChrome.String() != soloChrome.String() {
		t.Fatalf("single-shard Chrome trace != solo export:\n%s\nvs\n%s", setChrome.String(), soloChrome.String())
	}
	if err := ts.WriteTimeline(&setTL); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteTimeline(&soloTL); err != nil {
		t.Fatal(err)
	}
	if setTL.String() != soloTL.String() {
		t.Fatalf("single-shard timeline != solo export:\n%s\nvs\n%s", setTL.String(), soloTL.String())
	}
	if strings.Contains(setTL.String(), "== shard") {
		t.Fatal("single-shard timeline grew section headers")
	}
}

// TestMergedChromeTrace: the multi-shard Chrome export is valid JSON
// with one contiguous pid block per shard (scheduler + its nodes,
// named and sort-indexed), and the steal pair renders as a flow
// start/finish joined by the link id.
func TestMergedChromeTrace(t *testing.T) {
	ts := shardFixture(t)
	var buf bytes.Buffer
	if err := ts.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			ID   int            `json:"id"`
			BP   string         `json:"bp"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, buf.String())
	}
	names := map[string]bool{}
	var flowS, flowF int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			if n, ok := e.Args["name"].(string); ok {
				names[n] = true
			}
		case e.Ph == "s":
			flowS++
			if e.ID != 1 {
				t.Fatalf("flow start id %d, want steal link 1", e.ID)
			}
		case e.Ph == "f":
			flowF++
			if e.BP != "e" {
				t.Fatalf("flow finish missing bp=e: %+v", e)
			}
		}
	}
	for _, want := range []string{"shard 0 scheduler", "shard 1 scheduler", "node 0 (shard 0)", "node 1 (shard 1)"} {
		if !names[want] {
			t.Fatalf("merged trace missing track group %q (have %v)", want, names)
		}
	}
	if flowS != 1 || flowF != 1 {
		t.Fatalf("steal pair produced %d flow starts and %d finishes, want 1/1", flowS, flowF)
	}
}

// TestMergedTimelineSections: the multi-shard timeline renders one
// "== shard N ==" section per shard plus the global "== merged =="
// section whose rows lead with the shard column.
func TestMergedTimelineSections(t *testing.T) {
	ts := shardFixture(t)
	var buf bytes.Buffer
	if err := ts.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== shard 0 ==", "== shard 1 ==", "== merged ==", "# ecost merged trace timeline", "steal_out", "steal_in", "link=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged timeline missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "== shard 0 ==") > strings.Index(out, "== shard 1 ==") ||
		strings.Index(out, "== shard 1 ==") > strings.Index(out, "== merged ==") {
		t.Fatalf("timeline sections out of order:\n%s", out)
	}
}

// TestShardSetNilSafety: a nil set and out-of-range lookups behave
// like disabled tracing end to end — no panics, empty exports.
func TestShardSetNilSafety(t *testing.T) {
	var ts *ShardSet
	if ts.Shards() != 0 {
		t.Fatal("nil set reports shards")
	}
	if tr := ts.Tracer(0); tr != nil {
		t.Fatal("nil set yields a tracer")
	}
	// The full span chain on the nil-tracer result is a no-op.
	sp := ts.Tracer(3).Start(KindRun, "run", nil, Attrs{})
	sp.AddEnergy(1)
	sp.Finish()
	if got := ts.Merge(); len(got) != 0 {
		t.Fatalf("nil set merges %d spans", len(got))
	}
	live := NewShardSet()
	live.Attach(New(nil))
	if tr := live.Tracer(7); tr != nil {
		t.Fatal("out-of-range Tracer index yields a tracer")
	}
	if tr := live.Tracer(-1); tr != nil {
		t.Fatal("negative Tracer index yields a tracer")
	}
}

// TestMergedReportRollsUp: the merged report attributes energy across
// both shards and ignores the zero-duration steal markers.
func TestMergedReportRollsUp(t *testing.T) {
	ts := shardFixture(t)
	rep := ts.Report()
	if got := rep.Phases.TotalJ(); got != 10 {
		t.Fatalf("merged report total %v J, want 10", got)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("merged report has %d jobs, want 2", len(rep.Jobs))
	}
}

// BenchmarkDisabledShardSpan proves the disabled sharded path costs
// the same single branch as disabled solo tracing: a nil ShardSet's
// Tracer lookup plus the full span chain must stay under the
// benchguard-gated sub-nanosecond/zero-alloc budget.
func BenchmarkDisabledShardSpan(b *testing.B) {
	var ts *ShardSet
	attrs := Attrs{Job: 1, Node: 0, App: "wc", Class: "C"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := ts.Tracer(i & 3).Start(KindRun, "run", nil, attrs)
		sp.AddEnergy(1)
		sp.Finish()
	}
}

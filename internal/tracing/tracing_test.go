package tracing

import (
	"math"
	"testing"
)

// fakeClock is a manually advanced simulated clock.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64 { return c.t }

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(KindJob, "job", nil, Attrs{Job: 1})
	if sp != nil {
		t.Fatal("nil tracer handed out a non-nil span")
	}
	// Every span operation must tolerate nil.
	sp.Finish()
	sp.FinishAt(5)
	sp.AddEnergy(10)
	sp.SetEnergy(10)
	sp.SetConfig("cfg")
	sp.SetPartner("p")
	if got := sp.Snapshot(); got.Parent != -1 {
		t.Fatalf("nil span snapshot = %+v", got)
	}
	if tr.Record(KindMap, "m", nil, 0, 1, Attrs{}) != nil {
		t.Fatal("nil tracer recorded a span")
	}
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer claims spans")
	}
}

func TestSpanLifecycle(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	clk.t = 10
	job := tr.Start(KindJob, "job wc", nil, Attrs{Job: 3, Node: -1, App: "wc", Class: "C", SizeGB: 5})
	wait := tr.Start(KindWait, "wait", job, Attrs{Job: 3, Node: -1})
	if job.Snapshot().Parent != -1 || wait.Snapshot().Parent != job.ID {
		t.Fatal("parent linkage wrong")
	}
	if !job.Snapshot().Open() {
		t.Fatal("unended span not open")
	}
	clk.t = 25
	wait.Finish()
	run := tr.Start(KindRun, "run wc", job, Attrs{Job: 3, Node: 0})
	run.SetConfig("f2.4 m4 b128")
	run.SetPartner("nb")
	run.AddEnergy(50)
	run.AddEnergy(25)
	clk.t = 100
	run.Finish()
	run.Finish() // double Finish keeps the first timestamp
	job.FinishAt(100)

	ws := wait.Snapshot()
	if ws.Start != 10 || ws.End != 25 || ws.Dur() != 15 {
		t.Fatalf("wait span = %+v", ws)
	}
	rs := run.Snapshot()
	if rs.EnergyJ != 75 || rs.Attrs.Config != "f2.4 m4 b128" || rs.Attrs.Partner != "nb" {
		t.Fatalf("run span = %+v", rs)
	}
	if rs.End != 100 {
		t.Fatalf("double End moved the timestamp: %+v", rs)
	}
	if js := job.Snapshot(); js.Dur() != 90 {
		t.Fatalf("job span = %+v", js)
	}
}

func TestRecordRetroactive(t *testing.T) {
	tr := New(nil)
	m := tr.Record(KindMap, "map", nil, 5, 12, Attrs{Job: 0, Node: 1})
	if s := m.Snapshot(); s.Start != 5 || s.End != 12 {
		t.Fatalf("retroactive span = %+v", s)
	}
	// An inverted interval clamps to zero length rather than going negative.
	r := tr.Record(KindReduce, "reduce", nil, 12, 7, Attrs{})
	if s := r.Snapshot(); s.Dur() != 0 || s.Start != 12 {
		t.Fatalf("inverted interval = %+v", s)
	}
}

func TestSpansCanonicalOrder(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk.now)
	clk.t = 50
	a := tr.Start(KindRun, "late", nil, Attrs{Job: 0})
	tr.Record(KindMap, "early", nil, 10, 20, Attrs{Job: 1})
	tr.Record(KindMap, "same-start-2", nil, 30, 31, Attrs{Job: 2})
	tr.Record(KindMap, "same-start-1", nil, 30, 32, Attrs{Job: 3})
	a.Finish()
	got := tr.Spans()
	wantNames := []string{"early", "same-start-2", "same-start-1", "late"}
	for i, w := range wantNames {
		if got[i].Name != w {
			t.Fatalf("order[%d] = %q, want %q (full: %+v)", i, got[i].Name, w, got)
		}
	}
	if !math.IsNaN(tr.Start(KindJob, "open", nil, Attrs{}).Snapshot().End) {
		t.Fatal("open span has a non-NaN end")
	}
}

func TestTotalEnergy(t *testing.T) {
	tr := New(nil)
	tr.Record(KindNode, "idle", nil, 0, 1, Attrs{Node: 0}).AddEnergy(3)
	tr.Record(KindNode, "solo", nil, 1, 2, Attrs{Node: 0}).AddEnergy(5)
	tr.Record(KindRun, "run", nil, 1, 2, Attrs{Job: 0, Node: 0}).AddEnergy(5)
	spans := tr.Spans()
	if got := TotalEnergyJ(spans, KindNode); got != 8 {
		t.Fatalf("node energy = %v, want 8", got)
	}
	if got := TotalEnergyJ(spans, KindRun); got != 5 {
		t.Fatalf("run energy = %v, want 5", got)
	}
}

// BenchmarkDisabledSpan proves disabled tracing costs one predictable
// branch per call — the same contract as metrics.BenchmarkDisabledCounter.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	attrs := Attrs{Job: 1, Node: 0, App: "wc", Class: "C"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindRun, "run", nil, attrs)
		sp.AddEnergy(1)
		sp.Finish()
	}
}

// BenchmarkEnabledSpan is the enabled-path cost for contrast.
func BenchmarkEnabledSpan(b *testing.B) {
	clk := &fakeClock{}
	tr := New(clk.now)
	attrs := Attrs{Job: 1, Node: 0, App: "wc", Class: "C"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(KindRun, "run", nil, attrs)
		sp.AddEnergy(1)
		sp.Finish()
	}
}

package tracing

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"ecost/internal/power"
)

// The EDP attribution report rolls the span table up into the view the
// paper argues from: per-job and per-class Energy × Delay products,
// plus the cluster energy split by node-occupancy phase. Delay here is
// the job's residency (placement → completion); energy is the node
// power integrated over that residency and shared among residents, so
// the per-job joules sum exactly to the solo+co-located share of the
// cluster bill (the idle remainder is reported separately).

// JobReport is one job's attribution row.
type JobReport struct {
	Job     int
	App     string
	Class   string
	SizeGB  float64
	Node    int
	Config  string
	Partner string

	SubmitS float64
	WaitS   float64
	RunS    float64
	MapS    float64
	ReduceS float64

	EnergyJ float64
	// EDP is the job-level Energy × Delay product (joule-seconds) with
	// the residency as the delay.
	EDP float64
}

// ClassReport aggregates one application class.
type ClassReport struct {
	Class   string
	Jobs    int
	WaitS   float64 // summed
	RunS    float64 // summed
	EnergyJ float64
	EDP     float64 // summed job EDPs
}

// Report is the rolled-up attribution.
type Report struct {
	Jobs    []JobReport
	Classes []ClassReport
	// Phases re-integrates the per-node occupancy spans; TotalJ matches
	// the scheduler's EnergyJ() to float precision.
	Phases power.PhaseAccumulator
	// AttributedJ is the energy carried by job run spans (= solo +
	// co-located); the idle remainder has no job to bill.
	AttributedJ float64
}

// BuildReport rolls a span snapshot (Tracer.Spans order) into the
// attribution report.
func BuildReport(spans []Span) Report {
	byJob := map[int]*JobReport{}
	job := func(id int) *JobReport {
		r, ok := byJob[id]
		if !ok {
			r = &JobReport{Job: id, Node: -1}
			byJob[id] = r
		}
		return r
	}
	var rep Report
	for _, s := range spans {
		switch s.Kind {
		case KindJob:
			r := job(s.Attrs.Job)
			r.App = s.Attrs.App
			r.Class = s.Attrs.Class
			r.SizeGB = s.Attrs.SizeGB
			r.SubmitS = s.Start
		case KindWait:
			job(s.Attrs.Job).WaitS = s.Dur()
		case KindRun:
			r := job(s.Attrs.Job)
			r.Node = s.Attrs.Node
			r.Config = s.Attrs.Config
			r.Partner = s.Attrs.Partner
			r.RunS = s.Dur()
			r.EnergyJ += s.EnergyJ
			rep.AttributedJ += s.EnergyJ
		case KindMap:
			job(s.Attrs.Job).MapS += s.Dur()
		case KindReduce:
			job(s.Attrs.Job).ReduceS += s.Dur()
		case KindNode:
			rep.Phases.AddNamed(s.Name, s.EnergyJ)
		}
	}
	for _, r := range byJob {
		r.EDP = r.EnergyJ * r.RunS
		rep.Jobs = append(rep.Jobs, *r)
	}
	sort.Slice(rep.Jobs, func(i, j int) bool { return rep.Jobs[i].Job < rep.Jobs[j].Job })

	byClass := map[string]*ClassReport{}
	for _, r := range rep.Jobs {
		c, ok := byClass[r.Class]
		if !ok {
			c = &ClassReport{Class: r.Class}
			byClass[r.Class] = c
		}
		c.Jobs++
		c.WaitS += r.WaitS
		c.RunS += r.RunS
		c.EnergyJ += r.EnergyJ
		c.EDP += r.EDP
	}
	for _, c := range byClass {
		rep.Classes = append(rep.Classes, *c)
	}
	sort.Slice(rep.Classes, func(i, j int) bool { return rep.Classes[i].Class < rep.Classes[j].Class })
	return rep
}

// Report builds the attribution from the tracer's current spans.
func (t *Tracer) Report() Report { return BuildReport(t.Spans()) }

// WriteText renders the report as aligned text tables. Deterministic
// for same-seed runs (all inputs are simulated quantities).
func (r Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# ecost EDP attribution")
	fmt.Fprintf(bw, "%-4s %-6s %-6s %6s %4s %9s %9s %9s %9s %12s %14s  %-14s %s\n",
		"job", "app", "class", "size", "node", "wait_s", "run_s", "map_s", "reduce_s",
		"energy_j", "edp_js", "config", "partner")
	for _, j := range r.Jobs {
		fmt.Fprintf(bw, "%-4d %-6s %-6s %5.0fG %4d %9.1f %9.1f %9.1f %9.1f %12.1f %14.4g  %-14s %s\n",
			j.Job, j.App, j.Class, j.SizeGB, j.Node, j.WaitS, j.RunS, j.MapS, j.ReduceS,
			j.EnergyJ, j.EDP, j.Config, j.Partner)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "%-6s %5s %11s %11s %13s %15s\n",
		"class", "jobs", "wait_s", "run_s", "energy_j", "edp_js")
	for _, c := range r.Classes {
		fmt.Fprintf(bw, "%-6s %5d %11.1f %11.1f %13.1f %15.4g\n",
			c.Class, c.Jobs, c.WaitS, c.RunS, c.EnergyJ, c.EDP)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "cluster energy by occupancy phase: idle %.1f J, solo %.1f J, co-located %.1f J (total %.1f J)\n",
		r.Phases.IdleJ, r.Phases.SoloJ, r.Phases.CoJ, r.Phases.TotalJ())
	fmt.Fprintf(bw, "attributed to jobs: %.1f J (%.1f%% of total)\n",
		r.AttributedJ, pct(r.AttributedJ, r.Phases.TotalJ()))
	return bw.Flush()
}

func pct(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}

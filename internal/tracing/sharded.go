package tracing

// Sharded tracing: each shard of the sharded control plane owns its own
// Tracer (written only by that shard's goroutine between barriers, so
// span recording needs no cross-shard synchronization), and a ShardSet
// groups them for export. The merge is deterministic by construction:
//
//   - Span identity is (shard, ID) — the shard index stamped at
//     creation plus the per-tracer creation-order ID — so a span's
//     identity never depends on when its shard drained relative to the
//     others.
//
//   - Merge sorts by (Start, Shard, ID). Start comes from the simulated
//     clock and Shard/ID from single-threaded per-shard event loops, so
//     the merged order — and every byte the exporters derive from it —
//     is identical at any GOMAXPROCS and invariant to drain order.
//
//   - Cross-shard steals appear as a victim-side steal_out span and a
//     thief-side steal_in span sharing one Attrs.Link id (the control
//     plane's steal sequence number); the Chrome export joins them with
//     flow events so Perfetto draws the hand-off arrow between shard
//     track groups.
//
// With a single shard every ShardSet export delegates to the shard's
// own exporter, byte-identical to the legacy unsharded tracer.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// ShardSet is an ordered set of per-shard tracers. Construct with
// NewShardSet and let core.ShardedScheduler.SetTracer populate it (or
// Attach tracers yourself in shard order). A nil *ShardSet is the
// disabled mode: Tracer returns nil, so the whole per-span path
// collapses to the usual nil-tracer branch (BenchmarkDisabledShardSpan).
type ShardSet struct {
	mu  sync.Mutex
	trs []*Tracer
}

// NewShardSet returns an empty shard set.
func NewShardSet() *ShardSet { return &ShardSet{} }

// Attach appends tr as the next shard's tracer and stamps the shard
// index on it. Nil-safe on both sides; attach in shard order, before
// the tracer records any spans.
func (ts *ShardSet) Attach(tr *Tracer) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	tr.SetShard(len(ts.trs))
	ts.trs = append(ts.trs, tr)
	ts.mu.Unlock()
}

// Shards reports how many tracers are attached. Nil-safe.
func (ts *ShardSet) Shards() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.trs)
}

// Tracer returns shard i's tracer, or nil when the set is nil or i is
// out of range — so a disabled set hands out disabled tracers and the
// per-span cost stays one branch per call. The nil check lives here
// and the locked lookup in tracerAt so the disabled path inlines.
func (ts *ShardSet) Tracer(i int) *Tracer {
	if ts == nil {
		return nil
	}
	return ts.tracerAt(i)
}

func (ts *ShardSet) tracerAt(i int) *Tracer {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if i < 0 || i >= len(ts.trs) {
		return nil
	}
	return ts.trs[i]
}

// tracers snapshots the tracer slice under the lock.
func (ts *ShardSet) tracers() []*Tracer {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]*Tracer(nil), ts.trs...)
}

// Merge flattens per-shard span sets into the canonical merged order:
// (Start, Shard, ID). Each input slice must come from one shard's
// Tracer.Spans (already Shard-stamped); the result is a pure function
// of the span sets, independent of slice order or GOMAXPROCS.
func Merge(shards ...[]Span) []Span {
	n := 0
	for _, s := range shards {
		n += len(s)
	}
	out := make([]Span, 0, n)
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Shard != out[j].Shard {
			return out[i].Shard < out[j].Shard
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// shardSpans snapshots every shard's canonical span set, in shard
// order.
func (ts *ShardSet) shardSpans() [][]Span {
	trs := ts.tracers()
	out := make([][]Span, len(trs))
	for i, tr := range trs {
		out[i] = tr.Spans()
	}
	return out
}

// Merge returns the set's spans in the canonical merged order.
// Nil-safe.
func (ts *ShardSet) Merge() []Span { return Merge(ts.shardSpans()...) }

// Report builds the per-job / per-class EDP attribution over the merged
// span set — job and node ids are global, so the single-tracer rollup
// applies unchanged.
func (ts *ShardSet) Report() Report { return BuildReport(ts.Merge()) }

// WriteChromeTrace renders the set as one Chrome trace_event document.
// With one shard it delegates to that shard's exporter (byte-identical
// to the legacy unsharded trace); with more it emits one process block
// — scheduler process plus that shard's node processes, contiguous
// pids, process_sort_index pinned — per shard, so Perfetto shows one
// track group per shard, and joins steal span pairs with flow events.
func (ts *ShardSet) WriteChromeTrace(w io.Writer) error {
	shards := ts.shardSpans()
	if len(shards) == 1 {
		return WriteChromeTrace(w, shards[0])
	}
	return json.NewEncoder(w).Encode(mergedChromeTrace(shards))
}

// mergedChromeTrace lays the multi-shard document out: shard s owns a
// contiguous pid block [base, base+1+len(nodes)) — the scheduler
// process first, then that shard's nodes in ascending global id — and
// every process carries a process_sort_index so the shard grouping
// survives Perfetto's sorting.
func mergedChromeTrace(shards [][]Span) chromeDoc {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	schedPid := make([]int, len(shards))
	nodePid := make(map[int]int)
	next := 0
	meta := func(pid int, name string) {
		doc.TraceEvents = append(doc.TraceEvents,
			chromeEvent{Name: "process_name", Cat: "__metadata", Ph: "M",
				Pid: pid, Args: map[string]any{"name": name}},
			chromeEvent{Name: "process_sort_index", Cat: "__metadata", Ph: "M",
				Pid: pid, Args: map[string]any{"sort_index": pid}})
	}
	for si, spans := range shards {
		schedPid[si] = next
		meta(next, "shard "+strconv.Itoa(si)+" scheduler")
		next++
		for _, n := range shardNodes(spans) {
			nodePid[n] = next
			meta(next, fmt.Sprintf("node %d (shard %d)", n, si))
			next++
		}
	}
	for _, s := range Merge(shards...) {
		pid, tid := mergedTrack(s, schedPid, nodePid)
		dur := s.Dur() * 1e6
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  &dur,
			Pid:  pid,
			Tid:  tid,
			Args: chromeArgs(s),
		})
		if ev, ok := flowEvent(s, pid, tid); ok {
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	return doc
}

// mergedTrack maps a span onto its shard's pid block, mirroring the
// solo chromeTrack layout within the block.
func mergedTrack(s Span, schedPid []int, nodePid map[int]int) (pid, tid int) {
	switch s.Kind {
	case KindJob, KindWait, KindTune, KindStealOut, KindStealIn:
		return schedPid[s.Shard], s.Attrs.Job
	case KindNode:
		return nodePid[s.Attrs.Node], 0
	default: // run / map / reduce live on their node, one track per job
		return nodePid[s.Attrs.Node], s.Attrs.Job + 1
	}
}

// shardNodes lists the distinct global node ids a shard's spans touch,
// ascending.
func shardNodes(spans []Span) []int {
	seen := make(map[int]bool)
	var out []int
	for _, s := range spans {
		if s.Attrs.Node >= 0 && !seen[s.Attrs.Node] {
			seen[s.Attrs.Node] = true
			out = append(out, s.Attrs.Node)
		}
	}
	sort.Ints(out)
	return out
}

// WriteTimeline renders the set as text. With one shard it delegates
// (byte-identical to the legacy timeline); with more it writes one
// "== shard N ==" section per shard — each byte-identical to that
// shard's solo export — followed by a "== merged ==" section in the
// canonical merged order with a leading shard column.
func (ts *ShardSet) WriteTimeline(w io.Writer) error {
	shards := ts.shardSpans()
	if len(shards) == 1 {
		return WriteTimeline(w, shards[0])
	}
	bw := bufio.NewWriter(w)
	for i, spans := range shards {
		fmt.Fprintf(bw, "== shard %d ==\n", i)
		if err := WriteTimeline(bw, spans); err != nil {
			return err
		}
	}
	fmt.Fprintf(bw, "== merged ==\n")
	if err := WriteMergedTimeline(bw, Merge(shards...), len(shards)); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMergedTimeline renders merged spans (already in canonical merged
// order) as text with a shard column. Like WriteTimeline, every value
// derives from simulated quantities, so the output is byte-stable.
func WriteMergedTimeline(w io.Writer, spans []Span, shards int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ecost merged trace timeline: %d spans across %d shards\n", len(spans), shards)
	fmt.Fprintf(bw, "#%5s %13s %13s %13s %-9s %-22s %4s %4s %14s  %s\n",
		"shard", "start_s", "end_s", "dur_s", "kind", "name", "job", "node", "energy_j", "attrs")
	for _, s := range spans {
		end := s.End
		open := ""
		if s.Open() {
			end = s.Start
			open = " (open)"
		}
		fmt.Fprintf(bw, " %5d %13.6f %13.6f %13.6f %-9s %-22s %4d %4d %14.6f  %s%s\n",
			s.Shard, s.Start, end, s.Dur(), s.Kind, s.Name, s.Attrs.Job, s.Attrs.Node,
			s.EnergyJ, fmtAttrs(s.Attrs), open)
	}
	return bw.Flush()
}

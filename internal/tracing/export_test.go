package tracing

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

// sampleTracer builds a small two-node, two-job trace with energy.
func sampleTracer() *Tracer {
	tr := New(nil)
	j0 := tr.Record(KindJob, "job wc", nil, 0, 100, Attrs{Job: 0, Node: -1, App: "wc", Class: "C", SizeGB: 5})
	tr.Record(KindWait, "wait", j0, 0, 10, Attrs{Job: 0, Node: -1})
	run := tr.Record(KindRun, "run wc", j0, 10, 100, Attrs{Job: 0, Node: 0, App: "wc", Class: "C", Config: "f2.4 m4", Partner: "nb"})
	run.AddEnergy(900)
	tr.Record(KindMap, "map", run, 10, 70, Attrs{Job: 0, Node: 0}).AddEnergy(600)
	tr.Record(KindReduce, "reduce", run, 70, 100, Attrs{Job: 0, Node: 0}).AddEnergy(300)

	j1 := tr.Record(KindJob, "job nb", nil, 5, 80, Attrs{Job: 1, Node: -1, App: "nb", Class: "I", SizeGB: 1})
	r1 := tr.Record(KindRun, "run nb", j1, 5, 80, Attrs{Job: 1, Node: 0, App: "nb", Class: "I", Config: "f1.6 m2"})
	r1.AddEnergy(300)

	tr.Record(KindNode, "idle", nil, 0, 5, Attrs{Job: -1, Node: 0}).AddEnergy(40)
	tr.Record(KindNode, "solo", nil, 5, 10, Attrs{Job: -1, Node: 0}).AddEnergy(60)
	tr.Record(KindNode, "co-located", nil, 10, 80, Attrs{Job: -1, Node: 0}).AddEnergy(1000)
	tr.Record(KindNode, "solo", nil, 80, 100, Attrs{Job: -1, Node: 0}).AddEnergy(100)
	tr.Record(KindNode, "idle", nil, 0, 100, Attrs{Job: -1, Node: 1}).AddEnergy(100)
	return tr
}

func TestChromeTraceExport(t *testing.T) {
	tr := sampleTracer()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("negative ts/dur in %+v", e)
			}
			if _, ok := e.Args["energy_j"]; !ok {
				t.Errorf("complete event %q missing energy_j", e.Name)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if complete != tr.Len() {
		t.Fatalf("exported %d complete events for %d spans", complete, tr.Len())
	}
	// Process metadata: scheduler plus the two nodes.
	if meta != 3 {
		t.Fatalf("exported %d process_name records, want 3", meta)
	}
	// The run span carries its config and partner and sits on node 0's
	// process (pid 1).
	for _, e := range doc.TraceEvents {
		if e.Name == "run wc" {
			if e.Pid != 1 {
				t.Errorf("run span on pid %d, want 1", e.Pid)
			}
			if e.Args["config"] != "f2.4 m4" || e.Args["partner"] != "nb" {
				t.Errorf("run span args = %v", e.Args)
			}
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := sampleTracer().WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("chrome export not byte-stable:\n%s\n---\n%s", a, b)
	}
}

func TestTimelineExport(t *testing.T) {
	tr := sampleTracer()
	open := tr.Start(KindJob, "job open", nil, Attrs{Job: 2, Node: -1, App: "pr"})
	_ = open
	var buf bytes.Buffer
	if err := tr.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header (2 lines) + one line per span.
	if got, want := len(lines), tr.Len()+2; got != want {
		t.Fatalf("timeline has %d lines, want %d:\n%s", got, want, out)
	}
	if !strings.Contains(out, "(open)") {
		t.Fatalf("open span not marked:\n%s", out)
	}
	if !strings.Contains(out, "partner=nb") || !strings.Contains(out, "cfg=f2.4 m4") {
		t.Fatalf("attributes missing:\n%s", out)
	}
	// Start times must be non-decreasing down the page.
	prev := math.Inf(-1)
	for _, ln := range lines[2:] {
		fields := strings.Fields(ln)
		if len(fields) == 0 {
			continue
		}
		start, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("unparseable line %q: %v", ln, err)
		}
		if start < prev {
			t.Fatalf("timeline not sorted at %q", ln)
		}
		prev = start
	}
	var buf2 bytes.Buffer
	if err := tr.WriteTimeline(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatal("timeline not byte-stable across renders")
	}
}

func TestReportRollup(t *testing.T) {
	rep := sampleTracer().Report()
	if len(rep.Jobs) != 2 {
		t.Fatalf("report has %d jobs: %+v", len(rep.Jobs), rep.Jobs)
	}
	j0 := rep.Jobs[0]
	if j0.App != "wc" || j0.Class != "C" || j0.WaitS != 10 || j0.RunS != 90 {
		t.Fatalf("job 0 row = %+v", j0)
	}
	if j0.EnergyJ != 900 || j0.EDP != 900*90 {
		t.Fatalf("job 0 energy/EDP = %v / %v", j0.EnergyJ, j0.EDP)
	}
	if j0.MapS != 60 || j0.ReduceS != 30 {
		t.Fatalf("job 0 phases = map %v reduce %v", j0.MapS, j0.ReduceS)
	}
	if rep.AttributedJ != 1200 {
		t.Fatalf("attributed = %v, want 1200", rep.AttributedJ)
	}
	if rep.Phases.IdleJ != 140 || rep.Phases.SoloJ != 160 || rep.Phases.CoJ != 1000 {
		t.Fatalf("phase split = %+v", rep.Phases)
	}
	if len(rep.Classes) != 2 || rep.Classes[0].Class != "C" || rep.Classes[0].EDP != j0.EDP {
		t.Fatalf("class rollup = %+v", rep.Classes)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"job", "class", "occupancy phase", "attributed to jobs"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report text missing %q:\n%s", want, buf.String())
		}
	}
}

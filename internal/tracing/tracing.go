// Package tracing is the span layer of the ECoST observability stack:
// where internal/metrics answers "how much" (counts, depths,
// percentiles), tracing answers "where did the time and energy go".
// Every job's lifecycle (submit → queue-wait → tune → map →
// shuffle/reduce → complete) and every node's occupancy phase (idle /
// solo / co-located) becomes a span over the simulated clock, carrying
// attributes (application, class, size, chosen configuration, partner)
// and an energy attribution in joules integrated from the power model.
//
// Two properties carry over from internal/metrics:
//
//  1. Determinism. Span timestamps come from the simulated clock and
//     span order from the single-threaded event loop, so the exported
//     timeline (export.go) is byte-identical across same-seed runs at
//     any GOMAXPROCS — golden tests enforce it.
//
//  2. Nil-safety. A nil *Tracer hands out nil *Spans, and every span
//     operation on nil is a single-branch no-op (BenchmarkDisabledSpan
//     — sub-nanosecond), so uninstrumented runs pay nothing.
//
// The tracer itself is concurrency-safe (a mutex guards the span
// table) because the -serve endpoints read it live while the
// simulation runs.
package tracing

import (
	"math"
	"sort"
	"sync"
)

// Kind labels what a span covers.
type Kind uint8

// The span vocabulary, following the paper's Figure-4 job flow plus
// the per-node occupancy view the energy split needs.
const (
	// KindJob is the whole job: submit to complete.
	KindJob Kind = iota
	// KindWait is the queueing delay: submit to placement.
	KindWait
	// KindTune is the STP tuning decision (instantaneous in sim-time).
	KindTune
	// KindRun is the residency on a node: placement to completion.
	KindRun
	// KindMap is the map phase of a run.
	KindMap
	// KindReduce is the shuffle/reduce phase of a run.
	KindReduce
	// KindNode is one node-occupancy phase: the interval over which a
	// node's resident set stays unchanged (named idle/solo/co-located).
	KindNode
	// KindStealOut marks the victim side of a cross-shard work steal:
	// the instant a queued job leaves this shard. Paired with the
	// thief's KindStealIn through Attrs.Link.
	KindStealOut
	// KindStealIn marks the thief side of a cross-shard work steal: the
	// instant the stolen job re-queues on this shard.
	KindStealIn
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindJob:
		return "job"
	case KindWait:
		return "wait"
	case KindTune:
		return "tune"
	case KindRun:
		return "run"
	case KindMap:
		return "map"
	case KindReduce:
		return "reduce"
	case KindNode:
		return "node"
	case KindStealOut:
		return "steal_out"
	case KindStealIn:
		return "steal_in"
	}
	return "unknown"
}

// Attrs are a span's attributes. Every field must derive from simulated
// state only, so the exported trace stays deterministic.
type Attrs struct {
	// Job is the subject job's ID (-1 when not job-scoped).
	Job int
	// Node is the node the span ran on (-1 when not node-scoped).
	Node int
	// App and Class identify the application (empty when not job-scoped).
	App   string
	Class string
	// SizeGB is the job's input size.
	SizeGB float64
	// Config is the rendered tuning configuration applied to the span.
	Config string
	// Partner names the co-located application, when there was one.
	Partner string
	// Detail is a short free-form annotation.
	Detail string
	// Link joins the two halves of a cross-shard steal: the victim's
	// steal_out span and the thief's steal_in span carry the same
	// positive link id (the control plane's deterministic steal
	// sequence number). 0 means unlinked.
	Link int
}

// Span is one traced interval. Fields are written by the tracer under
// its lock; readers must go through Tracer.Spans (which copies) or hold
// a finished span.
type Span struct {
	// ID is the creation-order identifier (deterministic under the
	// single-threaded event loop). Together with Shard it is the span's
	// stable global identity: (shard, ID) never changes across merges.
	ID int
	// Shard is the owning tracer's shard index (0 for the unsharded
	// scheduler), stamped at creation so merged exports can keep one
	// track group per shard and sort invariant of drain order.
	Shard int
	// Parent is the enclosing span's ID, or -1 for a root span.
	Parent int
	// Kind and Name classify the span.
	Kind Kind
	Name string
	// Start and End are simulated seconds. End is NaN while the span is
	// open.
	Start float64
	End   float64
	// EnergyJ is the energy attributed to the span's interval, in
	// joules, integrated from the power model by the owner.
	EnergyJ float64
	// Attrs carries the span's attributes.
	Attrs Attrs

	tr *Tracer
}

// Open reports whether the span has not ended yet.
func (s Span) Open() bool { return math.IsNaN(s.End) }

// Dur returns the span duration in simulated seconds (0 while open).
func (s Span) Dur() float64 {
	if s.Open() {
		return 0
	}
	return s.End - s.Start
}

// Tracer records spans against a simulated clock. Construct with New;
// a nil *Tracer is the disabled mode.
type Tracer struct {
	mu    sync.Mutex
	now   func() float64
	shard int
	spans []*Span
}

// New returns a tracer reading the simulated clock through now
// (typically sim.Engine.Clock()).
func New(now func() float64) *Tracer {
	if now == nil {
		now = func() float64 { return 0 }
	}
	return &Tracer{now: now}
}

// SetShard stamps the tracer's shard index onto every span it records
// from now on. Call once, before any spans, when the tracer is one of a
// sharded set (ShardSet.Attach does it for you); the default 0 is the
// unsharded scheduler. Nil-safe.
func (t *Tracer) SetShard(i int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.shard = i
	t.mu.Unlock()
}

// Shard reports the tracer's shard index. Nil-safe.
func (t *Tracer) Shard() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shard
}

// Start opens a span at the current simulated time. Nil-safe: a nil
// tracer returns a nil span whose operations are no-ops. The nil branch
// is small enough to inline, so disabled tracing compiles down to a
// compare-and-return at call sites (see BenchmarkDisabledSpan).
func (t *Tracer) Start(kind Kind, name string, parent *Span, a Attrs) *Span {
	if t == nil {
		return nil
	}
	return t.start(kind, name, parent, a)
}

func (t *Tracer) start(kind Kind, name string, parent *Span, a Attrs) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.add(kind, name, parent, t.now(), math.NaN(), a)
}

// Record adds an already-finished span retroactively — how the
// scheduler materializes map/reduce sub-phases once a job's actual
// interval is known. Nil-safe.
func (t *Tracer) Record(kind Kind, name string, parent *Span, start, end float64, a Attrs) *Span {
	if t == nil {
		return nil
	}
	return t.record(kind, name, parent, start, end, a)
}

func (t *Tracer) record(kind Kind, name string, parent *Span, start, end float64, a Attrs) *Span {
	if end < start {
		end = start
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.add(kind, name, parent, start, end, a)
}

// add appends a span; the caller holds t.mu.
func (t *Tracer) add(kind Kind, name string, parent *Span, start, end float64, a Attrs) *Span {
	pid := -1
	if parent != nil {
		pid = parent.ID
	}
	s := &Span{
		ID:     len(t.spans),
		Shard:  t.shard,
		Parent: pid,
		Kind:   kind,
		Name:   name,
		Start:  start,
		End:    end,
		Attrs:  a,
		tr:     t,
	}
	t.spans = append(t.spans, s)
	return s
}

// Finish closes the span at the current simulated time. Finishing a
// finished span (or a nil span) is a no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.finish()
}

func (s *Span) finish() {
	s.tr.mu.Lock()
	if math.IsNaN(s.End) {
		s.End = s.tr.now()
	}
	s.tr.mu.Unlock()
}

// FinishAt closes the span at an explicit simulated time.
func (s *Span) FinishAt(at float64) {
	if s == nil {
		return
	}
	s.finishAt(at)
}

func (s *Span) finishAt(at float64) {
	s.tr.mu.Lock()
	if math.IsNaN(s.End) {
		if at < s.Start {
			at = s.Start
		}
		s.End = at
	}
	s.tr.mu.Unlock()
}

// AddEnergy accrues joules onto the span. Nil-safe.
func (s *Span) AddEnergy(j float64) {
	if s == nil {
		return
	}
	s.addEnergy(j)
}

func (s *Span) addEnergy(j float64) {
	s.tr.mu.Lock()
	s.EnergyJ += j
	s.tr.mu.Unlock()
}

// SetEnergy overwrites the span's energy attribution. Nil-safe.
func (s *Span) SetEnergy(j float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.EnergyJ = j
	s.tr.mu.Unlock()
}

// SetConfig records the applied tuning configuration. Nil-safe.
func (s *Span) SetConfig(cfg string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs.Config = cfg
	s.tr.mu.Unlock()
}

// SetPartner records the co-located application. Nil-safe.
func (s *Span) SetPartner(p string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs.Partner = p
	s.tr.mu.Unlock()
}

// Snapshot returns a value copy of the span's current state (safe to
// read fields from). A nil span yields a zero value.
func (s *Span) Snapshot() Span {
	if s == nil {
		return Span{Parent: -1}
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	cp := *s
	cp.tr = nil
	return cp
}

// Len reports the number of recorded spans. Nil-safe.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns value copies of every span, sorted by (Start, ID) —
// the canonical deterministic order every exporter uses. Open spans are
// included with End = NaN. Nil-safe.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		out[i].tr = nil
	}
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TotalEnergyJ sums the energy attributed to spans of the given kind.
func TotalEnergyJ(spans []Span, kind Kind) float64 {
	var sum float64
	for _, s := range spans {
		if s.Kind == kind {
			sum += s.EnergyJ
		}
	}
	return sum
}

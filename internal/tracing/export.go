package tracing

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// This file renders recorded spans in two forms:
//
//   - Chrome trace_event JSON ("X" complete events), loadable in
//     Perfetto (ui.perfetto.dev) or chrome://tracing. Jobs appear as a
//     "scheduler" process with one thread per job; each node is its own
//     process with an occupancy track plus one track per resident job.
//
//   - A sorted text timeline, one line per span, designed for golden
//     tests: all values derive from the simulated clock, so same-seed
//     runs render byte-identical output at any GOMAXPROCS.
//
// Both exporters consume the canonical (Start, ID)-sorted snapshot from
// Tracer.Spans and skip nothing silently: open spans are rendered with
// their start time and a zero duration, marked "open".

// chromeEvent is one trace_event entry. Struct (not map) fields keep
// the JSON key order fixed; Args is a map but encoding/json sorts map
// keys, so the whole document is deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the JSON-object form of the trace (the form Perfetto
// documents for metadata support).
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTrack maps a span onto a (pid, tid) track. Process 0 is the
// scheduler-level job view; process n+1 is node n.
func chromeTrack(s Span) (pid, tid int) {
	switch s.Kind {
	case KindJob, KindWait, KindTune, KindStealOut, KindStealIn:
		return 0, s.Attrs.Job
	case KindNode:
		return s.Attrs.Node + 1, 0
	default: // run / map / reduce live on their node, one track per job
		return s.Attrs.Node + 1, s.Attrs.Job + 1
	}
}

// chromeArgs renders the span attributes and energy attribution.
func chromeArgs(s Span) map[string]any {
	args := map[string]any{"energy_j": s.EnergyJ}
	a := s.Attrs
	if a.Job >= 0 {
		args["job"] = a.Job
	}
	if a.Node >= 0 {
		args["node"] = a.Node
	}
	if a.App != "" {
		args["app"] = a.App
	}
	if a.Class != "" {
		args["class"] = a.Class
	}
	if a.SizeGB > 0 {
		args["size_gb"] = a.SizeGB
	}
	if a.Config != "" {
		args["config"] = a.Config
	}
	if a.Partner != "" {
		args["partner"] = a.Partner
	}
	if a.Detail != "" {
		args["detail"] = a.Detail
	}
	if a.Link > 0 {
		args["link"] = a.Link
	}
	if s.Open() {
		args["open"] = true
	}
	return args
}

// flowEvent returns the Chrome flow event a steal span carries: the
// victim's steal_out starts a flow ("s") and the thief's steal_in
// finishes it ("f", binding to the enclosing slice), joined by the
// link id. Perfetto then draws an arrow from the victim shard's track
// to the thief's, so a stolen job's wait→tune→run chain reads
// continuously across shards.
func flowEvent(s Span, pid, tid int) (chromeEvent, bool) {
	if s.Attrs.Link <= 0 {
		return chromeEvent{}, false
	}
	ev := chromeEvent{
		Name: "steal", Cat: "steal",
		Ts: s.Start * 1e6, Pid: pid, Tid: tid, ID: s.Attrs.Link,
	}
	switch s.Kind {
	case KindStealOut:
		ev.Ph = "s"
	case KindStealIn:
		ev.Ph, ev.BP = "f", "e"
	default:
		return chromeEvent{}, false
	}
	return ev, true
}

// ChromeTrace converts spans into the trace_event document.
func ChromeTrace(spans []Span) chromeDoc {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	// Name the processes that actually appear, in pid order.
	maxNode := -1
	for _, s := range spans {
		if s.Attrs.Node > maxNode {
			maxNode = s.Attrs.Node
		}
	}
	meta := func(pid int, name string) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M",
			Pid: pid, Args: map[string]any{"name": name},
		})
	}
	meta(0, "scheduler")
	for n := 0; n <= maxNode; n++ {
		meta(n+1, "node "+strconv.Itoa(n))
	}
	for _, s := range spans {
		pid, tid := chromeTrack(s)
		dur := s.Dur() * 1e6
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Kind.String(),
			Ph:   "X",
			Ts:   s.Start * 1e6,
			Dur:  &dur,
			Pid:  pid,
			Tid:  tid,
			Args: chromeArgs(s),
		})
		if ev, ok := flowEvent(s, pid, tid); ok {
			doc.TraceEvents = append(doc.TraceEvents, ev)
		}
	}
	return doc
}

// WriteChromeTrace renders the span set as Chrome trace_event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, t.Spans())
}

// WriteChromeTrace renders spans as Chrome trace_event JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ChromeTrace(spans))
}

// fmtAttrs renders the non-empty attributes in a fixed order.
func fmtAttrs(a Attrs) string {
	out := ""
	add := func(k, v string) {
		if v == "" {
			return
		}
		if out != "" {
			out += " "
		}
		out += k + "=" + v
	}
	add("app", a.App)
	add("class", a.Class)
	if a.SizeGB > 0 {
		add("size_gb", strconv.FormatFloat(a.SizeGB, 'g', -1, 64))
	}
	add("cfg", a.Config)
	add("partner", a.Partner)
	add("detail", a.Detail)
	if a.Link > 0 {
		add("link", strconv.Itoa(a.Link))
	}
	return out
}

// WriteTimeline renders the span set as the sorted text timeline.
func (t *Tracer) WriteTimeline(w io.Writer) error {
	return WriteTimeline(w, t.Spans())
}

// WriteTimeline renders spans (already in canonical order) as text, one
// line per span. The format is fixed-width and derived from simulated
// quantities only, so it is byte-stable across same-seed runs.
func WriteTimeline(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# ecost trace timeline: %d spans\n", len(spans))
	fmt.Fprintf(bw, "#%13s %13s %13s %-6s %-22s %4s %4s %14s  %s\n",
		"start_s", "end_s", "dur_s", "kind", "name", "job", "node", "energy_j", "attrs")
	for _, s := range spans {
		end := s.End
		dur := s.Dur()
		open := ""
		if s.Open() {
			end = s.Start
			open = " (open)"
		}
		fmt.Fprintf(bw, " %13.6f %13.6f %13.6f %-6s %-22s %4d %4d %14.6f  %s%s\n",
			s.Start, end, dur, s.Kind, s.Name, s.Attrs.Job, s.Attrs.Node,
			s.EnergyJ, fmtAttrs(s.Attrs), open)
	}
	return bw.Flush()
}

// Package cluster models the hardware substrate of the ECoST study: a
// local cluster of Intel Atom C2758 class microserver nodes, each with 8
// cores, a two-level cache hierarchy, 8 GB DDR3-1600 memory, and per-core
// DVFS at 1.2/1.6/2.0/2.4 GHz.
//
// The paper measures whole-system power with an external meter and
// subtracts idle power; this package carries the static node parameters
// (frequency/voltage table, bandwidths, idle power) that the power and
// performance models in internal/power and internal/mapreduce consume.
package cluster

import (
	"fmt"
	"sort"
)

// FreqGHz is a CPU operating frequency in GHz.
type FreqGHz float64

// The DVFS operating points of the Atom C2758 study platform.
const (
	Freq1200 FreqGHz = 1.2
	Freq1600 FreqGHz = 1.6
	Freq2000 FreqGHz = 2.0
	Freq2400 FreqGHz = 2.4
)

// Frequencies lists the available DVFS levels in ascending order.
func Frequencies() []FreqGHz {
	return []FreqGHz{Freq1200, Freq1600, Freq2000, Freq2400}
}

// MinFreq and MaxFreq bound the DVFS range.
const (
	MinFreq = Freq1200
	MaxFreq = Freq2400
)

// Voltage returns the supply voltage (V) at frequency f, from a linear
// V/f table representative of low-power Silvermont-class parts
// (~0.8 V at 1.2 GHz up to ~1.16 V at 2.4 GHz). Frequencies between table
// points interpolate linearly; outside the range they clamp.
func Voltage(f FreqGHz) float64 {
	const (
		v0 = 0.80 // volts at MinFreq
		v1 = 1.16 // volts at MaxFreq
	)
	if f <= MinFreq {
		return v0
	}
	if f >= MaxFreq {
		return v1
	}
	t := float64(f-MinFreq) / float64(MaxFreq-MinFreq)
	return v0 + t*(v1-v0)
}

// ValidFreq reports whether f is one of the platform DVFS levels.
func ValidFreq(f FreqGHz) bool {
	for _, g := range Frequencies() {
		if g == f {
			return true
		}
	}
	return false
}

// NodeSpec holds the static parameters of one microserver node.
type NodeSpec struct {
	Cores      int     // physical cores (8 on the C2758)
	MemGB      float64 // system memory
	MemBWGBps  float64 // peak memory bandwidth (DDR3-1600, single channel-ish)
	DiskBWMBps float64 // sustained sequential disk bandwidth
	IdleWatts  float64 // whole-system idle power (board, mem, disk, NIC)
	// CoreDynWattsMax is the per-core dynamic power at MaxFreq and 100%
	// utilization; dynamic power scales as V^2 * f from this anchor.
	CoreDynWattsMax float64
	// CoreStaticWatts is the per-core leakage when the core is active.
	CoreStaticWatts float64
	// DiskActiveWatts is the extra power while the disk services I/O.
	DiskActiveWatts float64
	// MemActiveWattsMax is the extra power at full memory bandwidth.
	MemActiveWattsMax float64
}

// AtomC2758 returns the node specification used throughout the study:
// an 8-core Intel Atom C2758 microserver with 8 GB DDR3-1600.
func AtomC2758() NodeSpec {
	return NodeSpec{
		Cores:             8,
		MemGB:             8,
		MemBWGBps:         12.8, // DDR3-1600, single channel 64-bit
		DiskBWMBps:        140,  // 7200rpm SATA HDD sustained
		IdleWatts:         16.0, // whole system at the wall
		CoreDynWattsMax:   1.9,
		CoreStaticWatts:   0.25,
		DiskActiveWatts:   4.5,
		MemActiveWattsMax: 3.0,
	}
}

// Node is one server in the cluster. Frequency is a per-node setting in
// this study (the paper tunes frequency per co-located application by
// pinning each application's mappers to cores in its frequency domain;
// we track per-allocation frequency in the run model and use the node
// only for capacity accounting).
type Node struct {
	ID   int
	Spec NodeSpec

	coresInUse int
}

// NewNode returns a node with the given id and spec.
func NewNode(id int, spec NodeSpec) *Node {
	return &Node{ID: id, Spec: spec}
}

// FreeCores reports how many cores are unallocated.
func (n *Node) FreeCores() int { return n.Spec.Cores - n.coresInUse }

// CoresInUse reports how many cores are allocated.
func (n *Node) CoresInUse() int { return n.coresInUse }

// Allocate reserves k cores, failing if the node lacks capacity.
func (n *Node) Allocate(k int) error {
	if k <= 0 {
		return fmt.Errorf("cluster: allocate %d cores on node %d: count must be positive", k, n.ID)
	}
	if k > n.FreeCores() {
		return fmt.Errorf("cluster: allocate %d cores on node %d: only %d free", k, n.ID, n.FreeCores())
	}
	n.coresInUse += k
	return nil
}

// Release returns k cores to the free pool.
func (n *Node) Release(k int) error {
	if k <= 0 || k > n.coresInUse {
		return fmt.Errorf("cluster: release %d cores on node %d: %d in use", k, n.ID, n.coresInUse)
	}
	n.coresInUse -= k
	return nil
}

// Cluster is a fixed set of identical nodes.
type Cluster struct {
	Nodes []*Node
}

// New returns a cluster of n nodes with the given spec.
func New(n int, spec NodeSpec) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("cluster: node count %d must be positive", n))
	}
	c := &Cluster{Nodes: make([]*Node, n)}
	for i := range c.Nodes {
		c.Nodes[i] = NewNode(i, spec)
	}
	return c
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.Nodes) }

// TotalCores returns the core count across all nodes.
func (c *Cluster) TotalCores() int {
	t := 0
	for _, n := range c.Nodes {
		t += n.Spec.Cores
	}
	return t
}

// MostFree returns the node with the most free cores (lowest id wins
// ties), or nil if every node is fully allocated.
func (c *Cluster) MostFree() *Node {
	var best *Node
	for _, n := range c.Nodes {
		if n.FreeCores() == 0 {
			continue
		}
		if best == nil || n.FreeCores() > best.FreeCores() {
			best = n
		}
	}
	return best
}

// ByFreeCores returns the nodes sorted by free cores descending (stable
// by id). The returned slice is freshly allocated.
func (c *Cluster) ByFreeCores() []*Node {
	out := make([]*Node, len(c.Nodes))
	copy(out, c.Nodes)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].FreeCores() > out[j].FreeCores()
	})
	return out
}

// String implements fmt.Stringer for diagnostics.
func (f FreqGHz) String() string { return fmt.Sprintf("%.1fGHz", float64(f)) }

package cluster

import (
	"testing"
	"testing/quick"
)

func TestFrequenciesAscending(t *testing.T) {
	fs := Frequencies()
	if len(fs) != 4 {
		t.Fatalf("want 4 DVFS levels, got %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i] <= fs[i-1] {
			t.Fatalf("frequencies not ascending: %v", fs)
		}
	}
	if fs[0] != MinFreq || fs[len(fs)-1] != MaxFreq {
		t.Fatalf("bounds mismatch: %v", fs)
	}
}

func TestVoltageMonotone(t *testing.T) {
	prev := 0.0
	for _, f := range Frequencies() {
		v := Voltage(f)
		if v <= prev {
			t.Fatalf("Voltage(%v) = %v not increasing", f, v)
		}
		prev = v
	}
	if Voltage(MinFreq-1) != Voltage(MinFreq) {
		t.Error("voltage below range should clamp")
	}
	if Voltage(MaxFreq+1) != Voltage(MaxFreq) {
		t.Error("voltage above range should clamp")
	}
}

func TestVoltageRange(t *testing.T) {
	f := func(x float64) bool {
		v := Voltage(FreqGHz(x))
		return v >= 0.80 && v <= 1.16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidFreq(t *testing.T) {
	for _, f := range Frequencies() {
		if !ValidFreq(f) {
			t.Errorf("ValidFreq(%v) = false", f)
		}
	}
	for _, f := range []FreqGHz{0, 1.0, 1.4, 2.2, 3.0} {
		if ValidFreq(f) {
			t.Errorf("ValidFreq(%v) = true", f)
		}
	}
}

func TestNodeAllocateRelease(t *testing.T) {
	n := NewNode(0, AtomC2758())
	if n.FreeCores() != 8 {
		t.Fatalf("fresh node free = %d, want 8", n.FreeCores())
	}
	if err := n.Allocate(5); err != nil {
		t.Fatal(err)
	}
	if n.FreeCores() != 3 || n.CoresInUse() != 5 {
		t.Fatalf("after alloc 5: free=%d used=%d", n.FreeCores(), n.CoresInUse())
	}
	if err := n.Allocate(4); err == nil {
		t.Fatal("over-allocation succeeded")
	}
	if err := n.Allocate(0); err == nil {
		t.Fatal("zero allocation succeeded")
	}
	if err := n.Release(5); err != nil {
		t.Fatal(err)
	}
	if err := n.Release(1); err == nil {
		t.Fatal("over-release succeeded")
	}
}

func TestAllocateReleaseInvariant(t *testing.T) {
	f := func(ops []int8) bool {
		n := NewNode(0, AtomC2758())
		held := 0
		for _, op := range ops {
			k := int(op)
			if k > 0 {
				if n.Allocate(k) == nil {
					held += k
				}
			} else if k < 0 {
				if n.Release(-k) == nil {
					held += k
				}
			}
			if n.CoresInUse() != held || held < 0 || held > n.Spec.Cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClusterShape(t *testing.T) {
	c := New(8, AtomC2758())
	if c.Size() != 8 {
		t.Fatalf("size = %d", c.Size())
	}
	if c.TotalCores() != 64 {
		t.Fatalf("total cores = %d, want 64", c.TotalCores())
	}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has id %d", i, n.ID)
		}
	}
}

func TestMostFree(t *testing.T) {
	c := New(3, AtomC2758())
	if err := c.Nodes[0].Allocate(8); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Allocate(3); err != nil {
		t.Fatal(err)
	}
	if got := c.MostFree(); got == nil || got.ID != 2 {
		t.Fatalf("MostFree = %+v, want node 2", got)
	}
	if err := c.Nodes[2].Allocate(8); err != nil {
		t.Fatal(err)
	}
	if got := c.MostFree(); got == nil || got.ID != 1 {
		t.Fatalf("MostFree = %+v, want node 1", got)
	}
	if err := c.Nodes[1].Allocate(5); err != nil {
		t.Fatal(err)
	}
	if got := c.MostFree(); got != nil {
		t.Fatalf("MostFree on full cluster = %+v, want nil", got)
	}
}

func TestByFreeCores(t *testing.T) {
	c := New(4, AtomC2758())
	if err := c.Nodes[0].Allocate(4); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[2].Allocate(7); err != nil {
		t.Fatal(err)
	}
	order := c.ByFreeCores()
	for i := 1; i < len(order); i++ {
		if order[i].FreeCores() > order[i-1].FreeCores() {
			t.Fatalf("not sorted: %d then %d", order[i-1].FreeCores(), order[i].FreeCores())
		}
	}
	// Ties broken stably by id: nodes 1 and 3 both have 8 free.
	if order[0].ID != 1 || order[1].ID != 3 {
		t.Fatalf("tie order = %d,%d; want 1,3", order[0].ID, order[1].ID)
	}
}

func TestNewPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, …) did not panic")
		}
	}()
	New(0, AtomC2758())
}

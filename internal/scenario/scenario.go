// Package scenario is the heavy-traffic load source for the online
// ECoST scheduler: a seeded, composable job-stream generator producing
// open-loop arrival traces at production shapes — Poisson, MMPP
// (burst/calm regimes) and diurnal-modulated arrival processes,
// heavy-tailed (Pareto, lognormal) and empirical Table-3 input-size
// distributions, and recurring-job mixes with per-tenant Zipf skew —
// plus a JSONL trace format whose reader/writer pair replays real or
// generated traces byte-identically through the scheduler.
//
// Determinism contract (the anyes.Noise idiom, see DESIGN.md §13):
// every stochastic component draws from its own sim.RNG.Split
// substream keyed by a fixed stream id, never from a shared cursor.
// Substreams therefore regenerate independently of consumption order:
// swapping the size distribution cannot perturb arrival times, and
// swapping the arrival process cannot perturb the application
// sequence. A Spec plus a seed pins the entire stream at any
// GOMAXPROCS.
package scenario

import (
	"fmt"

	"ecost/internal/core"
	"ecost/internal/sim"
	"ecost/internal/trace"
)

// Stream ids for sim.RNG.Split. These are part of the determinism
// contract: renumbering them changes every generated stream, so they
// are frozen (goldens pin the streams they produce).
const (
	streamArrivals int64 = 1 // arrival-process draws (gaps, regime switches, thinning)
	streamSizes    int64 = 2 // per-arrival size draws (non-recurring mixes)
	streamMix      int64 = 3 // application / tenant selection draws
	streamTenants  int64 = 4 // one-shot tenant template construction (zipf mix)
)

// MaxJobs bounds a single generated stream. It is a sanity rail for
// the spec grammar and fuzzers, far above any CI scenario.
const MaxJobs = 10_000_000

// Spec is a fully-parsed scenario specification: how many jobs arrive,
// when (Arrivals), how large their inputs are (Sizes), and which
// applications they run (Mix). The zero value of each component is its
// documented default (all-at-t=0 arrivals, Table-3 sizes, uniform
// mix). Parse one from the `-scenario gen:…` grammar with ParseSpec.
type Spec struct {
	Jobs     int
	Seed     int64
	Arrivals ArrivalSpec
	Sizes    SizeSpec
	Mix      MixSpec

	// legacyRootArrivals draws Poisson gaps from the root seed stream
	// instead of the arrivals substream, reproducing the pre-scenario
	// `-jobs` cycling draw-for-draw (regression-pinned). Only
	// FromWorkload sets it.
	legacyRootArrivals bool
}

// Validate rejects an incoherent spec with a typed *SpecError. A valid
// spec always generates: Generate cannot fail after Validate passes.
func (s Spec) Validate() error {
	if s.Jobs <= 0 || s.Jobs > MaxJobs {
		return specErrf("jobs", "jobs = %d outside 1..%d", s.Jobs, MaxJobs)
	}
	if err := s.Arrivals.validate(); err != nil {
		return err
	}
	if err := s.Sizes.validate(); err != nil {
		return err
	}
	return s.Mix.validate()
}

// Generate produces the spec's deterministic arrival stream. Arrival
// times are finite, non-negative and non-decreasing; every arrival
// carries a real application and a positive finite size.
func Generate(spec Spec) ([]trace.Arrival, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(spec.Seed)
	arrRNG := root.Split(streamArrivals)
	if spec.legacyRootArrivals {
		arrRNG = sim.NewRNG(spec.Seed)
	}
	arr := newArrivalGen(spec.Arrivals, arrRNG)
	sizes := newSizeGen(spec.Sizes, root.Split(streamSizes))
	mix, err := newMixGen(spec.Mix, spec.Sizes, root.Split(streamMix), root.Split(streamTenants))
	if err != nil {
		return nil, err
	}

	out := make([]trace.Arrival, spec.Jobs)
	for i := range out {
		at := arr.next()
		app, sizeGB, recurring := mix.next(i)
		if !recurring {
			sizeGB = sizes.next()
		}
		out[i] = trace.Arrival{At: at, App: app, SizeGB: sizeGB}
	}
	return out, nil
}

// FromWorkload is the degenerate recurring mix: cycle the workload's
// job list to n jobs with Poisson arrivals at the given mean gap
// (0 = everything at t=0). It reproduces the retired `-jobs N`
// cycling in cmd/ecost-sim draw-for-draw — the regression test pins
// stream equality against the old loop — while routing through the
// same generator every other scenario uses.
func FromWorkload(wl core.Workload, n int, meanInterarrival float64, seed int64) ([]trace.Arrival, error) {
	if len(wl.Jobs) == 0 {
		return nil, specErrf("mix", "workload %q has no jobs to cycle", wl.Name)
	}
	if n <= 0 {
		n = len(wl.Jobs)
	}
	spec := Spec{
		Jobs:               n,
		Seed:               seed,
		Arrivals:           ArrivalSpec{Kind: ArrivalAll},
		Mix:                MixSpec{Kind: MixCycle, Workload: wl.Name, jobs: wl.Jobs},
		legacyRootArrivals: true,
	}
	if meanInterarrival > 0 {
		spec.Arrivals = ArrivalSpec{Kind: ArrivalPoisson, Mean: meanInterarrival}
	}
	return Generate(spec)
}

// SpecError is the typed validation/parse error for scenario specs:
// which field of the grammar was wrong and why.
type SpecError struct {
	Field  string // grammar key: "jobs", "arrivals", "sizes", "mix"
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario: bad %s: %s", e.Field, e.Reason)
}

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

package scenario

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"ecost/internal/trace"
	"ecost/internal/workloads"
)

// The JSONL trace format: one arrival per line,
//
//	{"at":123.456,"app":"wc","size_gb":5}
//
// with `at` in simulated seconds (non-negative, non-decreasing across
// lines), `app` one of the eleven studied application codes, and
// `size_gb` a positive finite per-node input size. WriteTrace emits
// the canonical form (shortest float rendering, fixed key order);
// ReadTrace accepts any field order but is otherwise strict — unknown
// fields, NaN/Inf/negative sizes and non-monotone times are typed
// *TraceError rejections. Write→Read is lossless (Go renders floats
// at round-trip precision), so a recorded stream replays through the
// scheduler with byte-identical metrics/timeline/decision exports.

// TraceError is the typed rejection for a malformed JSONL trace: the
// 1-based line and why it was rejected.
type TraceError struct {
	Line   int
	Reason string
}

func (e *TraceError) Error() string {
	return fmt.Sprintf("scenario: trace line %d: %s", e.Line, e.Reason)
}

func traceErrf(line int, format string, args ...any) *TraceError {
	return &TraceError{Line: line, Reason: fmt.Sprintf(format, args...)}
}

// traceLine is the wire form of one arrival.
type traceLine struct {
	At     float64 `json:"at"`
	App    string  `json:"app"`
	SizeGB float64 `json:"size_gb"`
}

// maxTraceLine bounds one JSONL line; a well-formed line is under a
// hundred bytes.
const maxTraceLine = 1 << 20

// WriteTrace writes the stream in canonical JSONL form.
func WriteTrace(w io.Writer, tr []trace.Arrival) error {
	bw := bufio.NewWriter(w)
	for _, a := range tr {
		raw, err := json.Marshal(traceLine{At: a.At, App: a.App.Name, SizeGB: a.SizeGB})
		if err != nil {
			return err
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a JSONL trace, validating every line. Blank lines
// are skipped; everything else must be a well-formed arrival, in
// non-decreasing time order.
func ReadTrace(r io.Reader) ([]trace.Arrival, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLine)
	var out []trace.Arrival
	line := 0
	prev := 0.0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if len(out) >= MaxJobs {
			return nil, traceErrf(line, "trace exceeds %d arrivals", MaxJobs)
		}
		var tl traceLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&tl); err != nil {
			return nil, traceErrf(line, "not a trace arrival: %v", err)
		}
		// One JSON document per line — trailing garbage is a reject.
		if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
			return nil, traceErrf(line, "trailing data after the arrival object")
		}
		if math.IsNaN(tl.At) || math.IsInf(tl.At, 0) || tl.At < 0 {
			return nil, traceErrf(line, "arrival time %v must be finite and non-negative", tl.At)
		}
		if tl.At < prev {
			return nil, traceErrf(line, "arrival time %v precedes %v (times must be non-decreasing)", tl.At, prev)
		}
		if !(tl.SizeGB > 0) || math.IsInf(tl.SizeGB, 0) {
			return nil, traceErrf(line, "size %v GB must be positive and finite", tl.SizeGB)
		}
		app, err := workloads.ByName(tl.App)
		if err != nil {
			return nil, traceErrf(line, "%v", err)
		}
		prev = tl.At
		out = append(out, trace.Arrival{At: tl.At, App: app, SizeGB: tl.SizeGB})
	}
	if err := sc.Err(); err != nil {
		return nil, traceErrf(line+1, "%v", err)
	}
	return out, nil
}

package scenario

import (
	"fmt"
	"math"
	"sort"

	"ecost/internal/core"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// MixKind selects how applications are assigned to arrivals.
type MixKind int

const (
	// MixUniform draws applications uniformly from the pool (all
	// eleven studied apps, or the testing set with Unknown). Sizes
	// come from the size distribution. It is the default.
	MixUniform MixKind = iota
	// MixCycle cycles a Table-3 workload's job list in order — the
	// degenerate recurring mix that subsumes the retired `-jobs N`
	// cycling. With SizeDefault the jobs keep the workload's sizes.
	MixCycle
	// MixZipf models recurring production jobs with per-tenant skew:
	// each tenant owns one recurring (app, size) template fixed at
	// stream construction, and arrivals pick tenants with Zipf
	// rank-frequency weights p(r) ∝ r^-s — a few tenants dominate the
	// stream, the long tail recurs rarely. This is the recurring-
	// profile regime arXiv:1301.4753 / arXiv:1303.3632 exploit and
	// what makes STP memoization meaningful under load.
	MixZipf
)

func (k MixKind) String() string {
	switch k {
	case MixUniform:
		return "uniform"
	case MixCycle:
		return "cycle"
	case MixZipf:
		return "zipf"
	default:
		return fmt.Sprintf("MixKind(%d)", int(k))
	}
}

// MaxTenants bounds the zipf tenant population (sanity rail for the
// grammar and fuzzers; cumulative weights are materialized per
// stream).
const MaxTenants = 1_000_000

// MixSpec parameterizes an application mix. The zero value is
// MixUniform over all applications.
type MixSpec struct {
	Kind MixKind
	// Unknown restricts the draw pool to the testing applications —
	// what a production ECoST deployment actually sees (uniform and
	// zipf).
	Unknown bool
	// Workload names the Table-3 scenario to cycle (MixCycle).
	Workload string
	// S is the Zipf skew exponent (≥ 0; 0 = uniform tenants) and
	// Tenants the tenant-population size (MixZipf).
	S       float64
	Tenants int

	// jobs overrides the cycled list (FromWorkload passes the caller's
	// workload directly so custom job lists need no registry lookup).
	jobs []core.JobSpec
}

func (m MixSpec) validate() error {
	switch m.Kind {
	case MixUniform:
		return nil
	case MixCycle:
		if len(m.jobs) > 0 {
			return nil
		}
		if _, err := core.Scenario(m.Workload); err != nil {
			return specErrf("mix", "cycle workload: %v", err)
		}
		return nil
	case MixZipf:
		if math.IsNaN(m.S) || m.S < 0 || m.S > 20 {
			return specErrf("mix", "zipf skew s=%v must be in [0, 20]", m.S)
		}
		if m.Tenants < 1 || m.Tenants > MaxTenants {
			return specErrf("mix", "zipf tenants=%d outside 1..%d", m.Tenants, MaxTenants)
		}
		return nil
	default:
		return specErrf("mix", "unknown mix kind %v", m.Kind)
	}
}

// tenant is one recurring-job template.
type tenant struct {
	app    workloads.App
	sizeGB float64
}

// mixGen assigns an application (and, for recurring mixes, a size) to
// each arrival index. next reports recurring=true when the size is
// pinned by the mix (cycle jobs, zipf tenant templates) rather than
// drawn from the per-arrival size stream.
type mixGen struct {
	spec MixSpec
	rng  *sim.RNG

	pool        []workloads.App // uniform draws
	jobs        []core.JobSpec  // cycle
	cycleResize bool            // cycle with an explicit size clause
	tenants     []tenant        // zipf templates, index = popularity rank
	cum         []float64       // zipf cumulative weights
}

func newMixGen(spec MixSpec, sizes SizeSpec, rng, tenantRNG *sim.RNG) (*mixGen, error) {
	g := &mixGen{spec: spec, rng: rng}
	switch spec.Kind {
	case MixCycle:
		g.jobs = spec.jobs
		if len(g.jobs) == 0 {
			wl, err := core.Scenario(spec.Workload)
			if err != nil {
				return nil, specErrf("mix", "cycle workload: %v", err)
			}
			g.jobs = wl.Jobs
		}
		g.cycleResize = sizes.Kind != SizeDefault
	case MixZipf:
		pool := workloads.Apps()
		if spec.Unknown {
			pool = workloads.Testing()
		}
		// Tenant templates are built once from the dedicated tenants
		// substream: sampling order is tenant-index order, so the
		// templates are independent of how many arrivals are later
		// drawn — a 100-job and a 1M-job stream share tenants.
		sizeSampler := newSizeGen(sizes, tenantRNG)
		g.tenants = make([]tenant, spec.Tenants)
		for i := range g.tenants {
			app := pool[tenantRNG.Intn(len(pool))]
			g.tenants[i] = tenant{app: app, sizeGB: sizeSampler.next()}
		}
		g.cum = make([]float64, spec.Tenants)
		total := 0.0
		for i := range g.cum {
			total += math.Pow(float64(i+1), -spec.S)
			g.cum[i] = total
		}
	default: // MixUniform
		g.pool = workloads.Apps()
		if spec.Unknown {
			g.pool = workloads.Testing()
		}
	}
	return g, nil
}

func (g *mixGen) next(i int) (app workloads.App, sizeGB float64, recurring bool) {
	switch g.spec.Kind {
	case MixCycle:
		j := g.jobs[i%len(g.jobs)]
		return j.App, j.SizeGB, !g.cycleResize
	case MixZipf:
		u := g.rng.Float64() * g.cum[len(g.cum)-1]
		r := sort.SearchFloat64s(g.cum, u)
		if r >= len(g.tenants) { // u == total on the closed edge
			r = len(g.tenants) - 1
		}
		t := g.tenants[r]
		return t.app, t.sizeGB, true
	default: // MixUniform
		return g.pool[g.rng.Intn(len(g.pool))], 0, false
	}
}

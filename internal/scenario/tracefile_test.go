package scenario

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// TestTraceRoundTrip: Write→Read is lossless and Read→Write is
// byte-identical on canonical input — the invariant behind the
// record→replay golden in internal/experiments.
func TestTraceRoundTrip(t *testing.T) {
	tr := mustGenerate(t, heavySpec(2000, 21))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	got, err := ReadTrace(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(tr) {
		t.Fatal("Read(Write(stream)) is not the original stream")
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("re-written trace is not byte-identical to the recorded one")
	}
}

// TestReadTraceRejects: every malformed line is a typed *TraceError
// carrying the right line number.
func TestReadTraceRejects(t *testing.T) {
	ok := `{"at":0,"app":"wc","size_gb":5}`
	cases := []struct {
		name  string
		input string
		line  int
	}{
		{"garbage", "not json", 1},
		{"negative time", `{"at":-1,"app":"wc","size_gb":5}`, 1},
		{"infinite time", `{"at":1e999,"app":"wc","size_gb":5}`, 1},
		{"non-monotone", ok + "\n" + `{"at":10,"app":"st","size_gb":1}` + "\n" + `{"at":9,"app":"st","size_gb":1}`, 3},
		{"nan size", `{"at":0,"app":"wc","size_gb":NaN}`, 1},
		{"negative size", `{"at":0,"app":"wc","size_gb":-3}`, 1},
		{"zero size", `{"at":0,"app":"wc","size_gb":0}`, 1},
		{"unknown app", `{"at":0,"app":"nope","size_gb":5}`, 1},
		{"missing app", `{"at":0,"size_gb":5}`, 1},
		{"unknown field", `{"at":0,"app":"wc","size_gb":5,"color":"red"}`, 1},
		{"trailing data", ok + ` {"at":1,"app":"wc","size_gb":5}`, 1},
		{"second line bad", ok + "\n" + "{", 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ReadTrace(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("accepted malformed trace %q", c.input)
			}
			if got != nil {
				t.Fatalf("returned arrivals alongside error %v", err)
			}
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("error %T is not a *TraceError: %v", err, err)
			}
			if te.Line != c.line {
				t.Fatalf("error on line %d, want %d: %v", te.Line, c.line, err)
			}
		})
	}
}

// TestReadTraceLenient: blank lines and surrounding whitespace are
// tolerated; equal timestamps are (ties are legal in an open-loop
// trace).
func TestReadTraceLenient(t *testing.T) {
	in := "\n  {\"at\":0,\"app\":\"wc\",\"size_gb\":5}  \n\n{\"at\":0,\"app\":\"st\",\"size_gb\":1}\n"
	got, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].App.Name != "wc" || got[1].App.Name != "st" {
		t.Fatalf("parsed %v", got)
	}
}

// TestReadTraceEmpty: an empty trace is an empty stream, not an error
// (the caller decides whether zero jobs is usable).
func TestReadTraceEmpty(t *testing.T) {
	got, err := ReadTrace(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %d arrivals from empty input", len(got))
	}
}

package scenario

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

// FuzzParseTrace: the JSONL trace reader never panics and either
// rejects with a typed *TraceError or returns a well-formed stream
// (finite non-negative non-decreasing times, known apps, positive
// finite sizes) that round-trips through the canonical writer.
func FuzzParseTrace(f *testing.F) {
	f.Add(`{"at":0,"app":"wc","size_gb":5}`)
	f.Add("{\"at\":0,\"app\":\"wc\",\"size_gb\":5}\n{\"at\":12.5,\"app\":\"st\",\"size_gb\":1}")
	f.Add(`{"at":-1,"app":"wc","size_gb":5}`)
	f.Add(`{"at":1e308,"app":"cf","size_gb":1e-300}`)
	f.Add(`{"at":0,"app":"wc","size_gb":-3}`)
	f.Add("{\"at\":5,\"app\":\"wc\",\"size_gb\":5}\n{\"at\":4,\"app\":\"wc\",\"size_gb\":5}")
	f.Add(`{"at":0,"app":"","size_gb":5}`)
	f.Add("\n\n")
	f.Add(`[1,2,3]`)
	f.Add(`{"at":0,"app":"wc","size_gb":5,"x":1}`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadTrace(strings.NewReader(input))
		if err != nil {
			if tr != nil {
				t.Fatalf("error %v returned alongside a stream", err)
			}
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("error %T is not a *TraceError: %v", err, err)
			}
			return
		}
		prev := 0.0
		for i, a := range tr {
			if math.IsNaN(a.At) || math.IsInf(a.At, 0) || a.At < 0 || a.At < prev {
				t.Fatalf("arrival %d at invalid/non-monotone time %v (prev %v)", i, a.At, prev)
			}
			prev = a.At
			if a.App.Name == "" {
				t.Fatalf("arrival %d has no application", i)
			}
			if !(a.SizeGB > 0) || math.IsInf(a.SizeGB, 0) {
				t.Fatalf("arrival %d has size %v", i, a.SizeGB)
			}
		}
		// Accepted input must survive a write→read round trip intact.
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			t.Fatalf("re-writing an accepted trace failed: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-reading the canonical form failed: %v", err)
		}
		if render(again) != render(tr) {
			t.Fatal("canonical round trip changed the stream")
		}
	})
}

// FuzzParseScenarioSpec: the -scenario grammar never panics; rejects
// are typed *SpecError; accepts generate a well-formed stream, and the
// canonical rendering re-parses to an identical stream (grammar
// round-trip).
func FuzzParseScenarioSpec(f *testing.F) {
	f.Add("gen:jobs=100;arrivals=poisson:60;sizes=pareto:alpha=1.5,min=1;mix=zipf:s=1.1,tenants=16")
	f.Add("jobs=8")
	f.Add("gen:jobs=32;arrivals=mmpp:calm=300,burst=10;mix=cycle:WS4")
	f.Add("gen:jobs=32;arrivals=diurnal:mean=60,amp=0.9,period=3600;sizes=lognormal:mu=2,sigma=1;mix=unknown")
	f.Add("gen:jobs=1;arrivals=all;sizes=fixed:5;mix=uniform")
	f.Add("gen:jobs=nan;arrivals=poisson:NaN")
	f.Add("gen:jobs=10;jobs=10")
	f.Add("gen:jobs=10;sizes=pareto:alpha=-1")
	f.Add("gen:jobs=10;arrivals=poisson:-5")
	f.Add("gen:jobs=10;mix=zipf:s=1,tenants=2.5")
	f.Add(";;;")
	f.Fuzz(func(t *testing.T, input string) {
		spec, err := ParseSpec(input)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not a *SpecError: %v", err, err)
			}
			return
		}
		// An accepted spec must generate; cap the work per input.
		small := spec
		if small.Jobs > 256 {
			small.Jobs = 256
		}
		if small.Mix.Kind == MixZipf && small.Mix.Tenants > 1024 {
			small.Mix.Tenants = 1024
		}
		tr, err := Generate(small)
		if err != nil {
			t.Fatalf("parsed spec %q failed to generate: %v", input, err)
		}
		if len(tr) != small.Jobs {
			t.Fatalf("spec %q generated %d arrivals, want %d", input, len(tr), small.Jobs)
		}
		// Canonical rendering must mean the same stream.
		re, err := ParseSpec(small.String())
		if err != nil {
			t.Fatalf("canonical rendering %q of %q does not re-parse: %v", small.String(), input, err)
		}
		tr2, err := Generate(re)
		if err != nil {
			t.Fatalf("re-parsed spec failed to generate: %v", err)
		}
		if render(tr2) != render(tr) {
			t.Fatalf("spec %q and its canonical rendering %q generate different streams", input, small.String())
		}
	})
}

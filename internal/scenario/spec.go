package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// The -scenario spec grammar (see DESIGN.md §13):
//
//	gen:jobs=N[;arrivals=PROC][;sizes=DIST][;mix=MIX]
//
// with clauses separated by ';' and clause parameters by ','. Each
// clause value is KIND[:PARAMS]; single-parameter kinds take the bare
// value (poisson:120), multi-parameter kinds take key=value pairs:
//
//	arrivals: all | fixed:GAP | poisson:MEAN
//	          | mmpp:calm=G,burst=G[,pcalm=P][,pburst=P]
//	          | diurnal:mean=G[,amp=A][,period=S]
//	sizes:    table3 | fixed:GB | pareto:alpha=A[,min=GB][,max=GB]
//	          | lognormal:mu=M[,sigma=S][,max=GB]
//	mix:      uniform | unknown | cycle:WSn | zipf:s=S,tenants=N[,unknown]
//
// Parsing is strict: unknown clauses, unknown parameters, duplicate
// clauses and malformed numbers are *SpecError rejections, never
// guesses. ParseSpec(s.String()) round-trips every valid spec (the
// fuzzer pins this).

// Grammar defaults, used when a clause omits the parameter.
const (
	defaultMMPPCalmStay  = 0.98
	defaultMMPPBurstStay = 0.90
	defaultDiurnalAmp    = 0.5
	defaultDiurnalPeriod = 86400 // one day
	defaultParetoMin     = 1
	defaultLognormalMu   = 1.2
	defaultLognormSigma  = 0.8
)

// ParseSpec parses the full `gen:` grammar (the prefix is optional so
// sub-commands can pass the bare clause list). The resulting spec is
// validated; Seed stays 0 for the caller to fill in.
func ParseSpec(s string) (Spec, error) {
	body := strings.TrimPrefix(s, "gen:")
	if body == "" {
		return Spec{}, specErrf("spec", "empty scenario spec")
	}
	var spec Spec
	seen := map[string]bool{}
	for _, clause := range strings.Split(body, ";") {
		key, val, found := strings.Cut(clause, "=")
		if !found {
			return Spec{}, specErrf("spec", "clause %q is not key=value", clause)
		}
		if seen[key] {
			return Spec{}, specErrf("spec", "duplicate clause %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "jobs":
			spec.Jobs, err = parsePositiveInt("jobs", val, MaxJobs)
		case "arrivals":
			spec.Arrivals, err = ParseArrivals(val)
		case "sizes":
			spec.Sizes, err = ParseSizes(val)
		case "mix":
			spec.Mix, err = ParseMix(val)
		default:
			err = specErrf("spec", "unknown clause %q (want jobs, arrivals, sizes, mix)", key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	if spec.Jobs == 0 {
		return Spec{}, specErrf("jobs", "spec must set jobs=N")
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// String renders the canonical grammar form of the spec (gen: prefix,
// defaults filled in). An unspecified size distribution is omitted
// rather than rendered as table3: for the cycle mix the two differ
// (SizeDefault keeps the workload's own sizes), and ParseSpec of the
// rendering must mean exactly what the spec means.
func (s Spec) String() string {
	out := fmt.Sprintf("gen:jobs=%d;arrivals=%s", s.Jobs, s.Arrivals)
	if s.Sizes.Kind != SizeDefault {
		out += ";sizes=" + s.Sizes.String()
	}
	return out + ";mix=" + s.Mix.String()
}

// ParseArrivals parses one arrivals clause value.
func ParseArrivals(val string) (ArrivalSpec, error) {
	kind, params, _ := strings.Cut(val, ":")
	var a ArrivalSpec
	switch kind {
	case "all":
		if params != "" {
			return a, specErrf("arrivals", "all takes no parameters, got %q", params)
		}
		a.Kind = ArrivalAll
	case "fixed", "poisson":
		a.Kind = ArrivalFixed
		if kind == "poisson" {
			a.Kind = ArrivalPoisson
		}
		mean, err := parseFloat("arrivals", kind+" mean gap", params)
		if err != nil {
			return a, err
		}
		a.Mean = mean
	case "mmpp":
		a.Kind = ArrivalMMPP
		a.CalmStay, a.BurstStay = defaultMMPPCalmStay, defaultMMPPBurstStay
		err := parseParams("arrivals", params, map[string]*float64{
			"calm": &a.CalmMean, "burst": &a.BurstMean,
			"pcalm": &a.CalmStay, "pburst": &a.BurstStay,
		}, nil)
		if err != nil {
			return a, err
		}
	case "diurnal":
		a.Kind = ArrivalDiurnal
		a.Amplitude, a.Period = defaultDiurnalAmp, defaultDiurnalPeriod
		err := parseParams("arrivals", params, map[string]*float64{
			"mean": &a.Mean, "amp": &a.Amplitude, "period": &a.Period,
		}, nil)
		if err != nil {
			return a, err
		}
	default:
		return a, specErrf("arrivals", "unknown arrival process %q (want all, fixed, poisson, mmpp, diurnal)", kind)
	}
	return a, a.validate()
}

// String renders the canonical clause value for the spec.
func (a ArrivalSpec) String() string {
	switch a.Kind {
	case ArrivalFixed, ArrivalPoisson:
		return fmt.Sprintf("%s:%s", a.Kind, fmtNum(a.Mean))
	case ArrivalMMPP:
		return fmt.Sprintf("mmpp:calm=%s,burst=%s,pcalm=%s,pburst=%s",
			fmtNum(a.CalmMean), fmtNum(a.BurstMean), fmtNum(a.CalmStay), fmtNum(a.BurstStay))
	case ArrivalDiurnal:
		return fmt.Sprintf("diurnal:mean=%s,amp=%s,period=%s",
			fmtNum(a.Mean), fmtNum(a.Amplitude), fmtNum(a.Period))
	default:
		return "all"
	}
}

// ParseSizes parses one sizes clause value.
func ParseSizes(val string) (SizeSpec, error) {
	kind, params, _ := strings.Cut(val, ":")
	var s SizeSpec
	switch kind {
	case "table3":
		if params != "" {
			return s, specErrf("sizes", "table3 takes no parameters, got %q", params)
		}
		s.Kind = SizeTable3
	case "fixed":
		s.Kind = SizeFixed
		gb, err := parseFloat("sizes", "fixed size GB", params)
		if err != nil {
			return s, err
		}
		s.GB = gb
	case "pareto":
		s.Kind = SizePareto
		s.Min = defaultParetoMin
		err := parseParams("sizes", params, map[string]*float64{
			"alpha": &s.Alpha, "min": &s.Min, "max": &s.Max,
		}, nil)
		if err != nil {
			return s, err
		}
	case "lognormal":
		s.Kind = SizeLognormal
		s.Mu, s.Sigma = defaultLognormalMu, defaultLognormSigma
		err := parseParams("sizes", params, map[string]*float64{
			"mu": &s.Mu, "sigma": &s.Sigma, "max": &s.Max,
		}, nil)
		if err != nil {
			return s, err
		}
	default:
		return s, specErrf("sizes", "unknown size distribution %q (want table3, fixed, pareto, lognormal)", kind)
	}
	return s, s.validate()
}

// String renders the canonical clause value for the spec.
func (s SizeSpec) String() string {
	switch s.Kind {
	case SizeFixed:
		return "fixed:" + fmtNum(s.GB)
	case SizePareto:
		out := fmt.Sprintf("pareto:alpha=%s,min=%s", fmtNum(s.Alpha), fmtNum(s.Min))
		if s.Max != 0 {
			out += ",max=" + fmtNum(s.Max)
		}
		return out
	case SizeLognormal:
		out := fmt.Sprintf("lognormal:mu=%s,sigma=%s", fmtNum(s.Mu), fmtNum(s.Sigma))
		if s.Max != 0 {
			out += ",max=" + fmtNum(s.Max)
		}
		return out
	default:
		return "table3"
	}
}

// ParseMix parses one mix clause value.
func ParseMix(val string) (MixSpec, error) {
	kind, params, _ := strings.Cut(val, ":")
	var m MixSpec
	switch kind {
	case "uniform", "unknown":
		if params != "" {
			return m, specErrf("mix", "%s takes no parameters, got %q", kind, params)
		}
		m.Kind = MixUniform
		m.Unknown = kind == "unknown"
	case "cycle":
		m.Kind = MixCycle
		if params == "" {
			return m, specErrf("mix", "cycle needs a workload, e.g. cycle:WS4")
		}
		m.Workload = params
	case "zipf":
		m.Kind = MixZipf
		var tenants float64
		err := parseParams("mix", params, map[string]*float64{
			"s": &m.S, "tenants": &tenants,
		}, map[string]*bool{"unknown": &m.Unknown})
		if err != nil {
			return m, err
		}
		if tenants != float64(int(tenants)) {
			return m, specErrf("mix", "zipf tenants=%v must be an integer", tenants)
		}
		m.Tenants = int(tenants)
	default:
		return m, specErrf("mix", "unknown mix %q (want uniform, unknown, cycle, zipf)", kind)
	}
	return m, m.validate()
}

// String renders the canonical clause value for the spec.
func (m MixSpec) String() string {
	switch m.Kind {
	case MixCycle:
		return "cycle:" + m.Workload
	case MixZipf:
		out := fmt.Sprintf("zipf:s=%s,tenants=%d", fmtNum(m.S), m.Tenants)
		if m.Unknown {
			out += ",unknown"
		}
		return out
	default:
		if m.Unknown {
			return "unknown"
		}
		return "uniform"
	}
}

// fmtNum renders a float in the shortest form that parses back
// identically (round-trip safe for the String goldens).
func fmtNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// parseFloat parses one bare numeric parameter. NaN and infinities are
// rejected here so every downstream validate sees ordinary numbers.
func parseFloat(field, what, s string) (float64, error) {
	if s == "" {
		return 0, specErrf(field, "%s is missing", what)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, specErrf(field, "%s: %q is not a number", what, s)
	}
	return v, nil
}

// parseParams parses a comma-separated key=value list into the given
// numeric slots, plus optional bare boolean flags. Unknown or
// duplicate keys are rejections.
func parseParams(field, params string, nums map[string]*float64, flags map[string]*bool) error {
	if params == "" {
		// All-defaults is only coherent when no slot is mandatory;
		// validate() catches missing mandatory values (still zero).
		return nil
	}
	seen := map[string]bool{}
	for _, p := range strings.Split(params, ",") {
		key, val, found := strings.Cut(p, "=")
		if seen[key] {
			return specErrf(field, "duplicate parameter %q", key)
		}
		seen[key] = true
		if !found {
			if b, ok := flags[key]; ok {
				*b = true
				continue
			}
			return specErrf(field, "parameter %q is not key=value", p)
		}
		slot, ok := nums[key]
		if !ok {
			return specErrf(field, "unknown parameter %q", key)
		}
		v, err := parseFloat(field, key, val)
		if err != nil {
			return err
		}
		*slot = v
	}
	return nil
}

// parsePositiveInt parses a bounded positive integer clause value.
func parsePositiveInt(field, s string, max int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, specErrf(field, "%q is not an integer", s)
	}
	if v < 1 || v > max {
		return 0, specErrf(field, "%d outside 1..%d", v, max)
	}
	return v, nil
}

package scenario

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"ecost/internal/core"
	"ecost/internal/sim"
	"ecost/internal/trace"
)

// render pins a stream as text for byte-level comparisons (shortest
// round-trip float form, same as the JSONL writer).
func render(tr []trace.Arrival) string {
	var b strings.Builder
	for _, a := range tr {
		fmt.Fprintf(&b, "%v %s %v\n", a.At, a.App.Name, a.SizeGB)
	}
	return b.String()
}

func mustGenerate(t *testing.T, spec Spec) []trace.Arrival {
	t.Helper()
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate(%v): %v", spec, err)
	}
	return tr
}

// heavySpec is the kitchen-sink spec the determinism tests pin: MMPP
// bursts, Pareto sizes, Zipf tenants — every substream in play.
func heavySpec(jobs int, seed int64) Spec {
	return Spec{
		Jobs: jobs,
		Seed: seed,
		Arrivals: ArrivalSpec{Kind: ArrivalMMPP,
			CalmMean: 120, BurstMean: 5, CalmStay: 0.95, BurstStay: 0.85},
		Sizes: SizeSpec{Kind: SizePareto, Alpha: 1.5, Min: 1},
		Mix:   MixSpec{Kind: MixZipf, S: 1.1, Tenants: 40},
	}
}

// TestGenerateWellFormed checks the stream contract for every arrival
// process / size / mix combination: exact job count, finite
// non-decreasing times, real applications, positive finite sizes.
func TestGenerateWellFormed(t *testing.T) {
	arrivals := []ArrivalSpec{
		{Kind: ArrivalAll},
		{Kind: ArrivalFixed, Mean: 30},
		{Kind: ArrivalPoisson, Mean: 60},
		{Kind: ArrivalMMPP, CalmMean: 300, BurstMean: 10, CalmStay: 0.98, BurstStay: 0.9},
		{Kind: ArrivalDiurnal, Mean: 60, Amplitude: 0.8, Period: 86400},
	}
	sizes := []SizeSpec{
		{Kind: SizeDefault},
		{Kind: SizeTable3},
		{Kind: SizeFixed, GB: 2.5},
		{Kind: SizePareto, Alpha: 1.2, Min: 0.5, Max: 64},
		{Kind: SizeLognormal, Mu: 1.2, Sigma: 0.8},
	}
	mixes := []MixSpec{
		{Kind: MixUniform},
		{Kind: MixUniform, Unknown: true},
		{Kind: MixCycle, Workload: "WS4"},
		{Kind: MixZipf, S: 1.3, Tenants: 16},
	}
	for _, a := range arrivals {
		for _, s := range sizes {
			for _, m := range mixes {
				spec := Spec{Jobs: 200, Seed: 7, Arrivals: a, Sizes: s, Mix: m}
				name := spec.String()
				tr, err := Generate(spec)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(tr) != 200 {
					t.Fatalf("%s: %d arrivals, want 200", name, len(tr))
				}
				prev := 0.0
				for i, arr := range tr {
					if !(arr.At >= prev) {
						t.Fatalf("%s: arrival %d at %v precedes %v", name, i, arr.At, prev)
					}
					prev = arr.At
					if arr.App.Name == "" {
						t.Fatalf("%s: arrival %d has no application", name, i)
					}
					if !(arr.SizeGB > 0) || arr.SizeGB > maxSizeGB {
						t.Fatalf("%s: arrival %d size %v outside (0, %d]", name, i, arr.SizeGB, maxSizeGB)
					}
				}
			}
		}
	}
}

// TestGenerateDeterministicAcrossGOMAXPROCS is the generator golden:
// the same spec renders byte-identically on repeated runs at
// GOMAXPROCS 1 and 4.
func TestGenerateDeterministicAcrossGOMAXPROCS(t *testing.T) {
	spec := heavySpec(5000, 42)
	old := runtime.GOMAXPROCS(1)
	narrow := render(mustGenerate(t, spec))
	runtime.GOMAXPROCS(4)
	wide := render(mustGenerate(t, spec))
	again := render(mustGenerate(t, spec))
	runtime.GOMAXPROCS(old)
	if narrow != wide {
		t.Fatal("stream diverged across GOMAXPROCS 1 vs 4")
	}
	if wide != again {
		t.Fatal("stream diverged across back-to-back runs")
	}
}

// TestSubstreamComposability pins the Split-stream contract: swapping
// one component's distribution cannot perturb the draws of any other
// component.
func TestSubstreamComposability(t *testing.T) {
	base := Spec{
		Jobs:     2000,
		Seed:     11,
		Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Mean: 45},
		Sizes:    SizeSpec{Kind: SizePareto, Alpha: 1.4, Min: 1},
		Mix:      MixSpec{Kind: MixUniform},
	}
	ref := mustGenerate(t, base)

	t.Run("sizes do not perturb arrivals or apps", func(t *testing.T) {
		alt := base
		alt.Sizes = SizeSpec{Kind: SizeLognormal, Mu: 2, Sigma: 1}
		got := mustGenerate(t, alt)
		for i := range ref {
			if got[i].At != ref[i].At {
				t.Fatalf("arrival %d moved %v -> %v when only sizes changed", i, ref[i].At, got[i].At)
			}
			if got[i].App.Name != ref[i].App.Name {
				t.Fatalf("arrival %d app changed %s -> %s when only sizes changed", i, ref[i].App.Name, got[i].App.Name)
			}
		}
	})
	t.Run("arrivals do not perturb apps or sizes", func(t *testing.T) {
		alt := base
		alt.Arrivals = ArrivalSpec{Kind: ArrivalMMPP, CalmMean: 200, BurstMean: 4, CalmStay: 0.9, BurstStay: 0.9}
		got := mustGenerate(t, alt)
		for i := range ref {
			if got[i].App.Name != ref[i].App.Name || got[i].SizeGB != ref[i].SizeGB {
				t.Fatalf("arrival %d payload changed (%s %v) -> (%s %v) when only arrivals changed",
					i, ref[i].App.Name, ref[i].SizeGB, got[i].App.Name, got[i].SizeGB)
			}
		}
	})
	t.Run("streams are prefix-stable in job count", func(t *testing.T) {
		long := mustGenerate(t, heavySpec(1000, 3))
		short := mustGenerate(t, heavySpec(100, 3))
		if render(long[:100]) != render(short) {
			t.Fatal("first 100 arrivals of a 1000-job stream differ from the 100-job stream")
		}
	})
}

// TestFromWorkloadMatchesLegacyCycling is the -jobs regression: the
// scenario cycle path must reproduce the retired ad-hoc cycling loop
// in cmd/ecost-sim draw-for-draw for the default seed (and others).
func TestFromWorkloadMatchesLegacyCycling(t *testing.T) {
	wl, err := core.Scenario("WS4")
	if err != nil {
		t.Fatal(err)
	}
	legacy := func(jobs int, arrival float64, seed int64) []trace.Arrival {
		// Verbatim re-implementation of the pre-scenario runOnline loop.
		stream := wl.Jobs
		if jobs > 0 {
			stream = make([]core.JobSpec, jobs)
			for i := range stream {
				stream[i] = wl.Jobs[i%len(wl.Jobs)]
			}
		}
		rng := sim.NewRNG(seed)
		at := 0.0
		arrivals := make([]trace.Arrival, 0, len(stream))
		for _, j := range stream {
			arrivals = append(arrivals, trace.Arrival{At: at, App: j.App, SizeGB: j.SizeGB})
			if arrival > 0 {
				at += rng.Exp(arrival)
			}
		}
		return arrivals
	}
	cases := []struct {
		jobs    int
		arrival float64
		seed    int64
	}{
		{0, 0, 42},   // scenario as-is, all at t=0 (default seed)
		{0, 120, 42}, // paper-shaped open loop
		{2000, 6, 42},
		{333, 17.5, 7},
	}
	for _, c := range cases {
		want := legacy(c.jobs, c.arrival, c.seed)
		got, err := FromWorkload(wl, c.jobs, c.arrival, c.seed)
		if err != nil {
			t.Fatalf("FromWorkload(%+v): %v", c, err)
		}
		if render(got) != render(want) {
			t.Fatalf("jobs=%d arrival=%v seed=%d: scenario cycle stream diverged from the legacy loop",
				c.jobs, c.arrival, c.seed)
		}
	}
}

// TestCycleSizesOverride: an explicit size clause re-draws cycle sizes
// per arrival; the default keeps the workload's own sizes.
func TestCycleSizesOverride(t *testing.T) {
	spec := Spec{Jobs: 64, Seed: 9, Mix: MixSpec{Kind: MixCycle, Workload: "WS4"}}
	def := mustGenerate(t, spec)
	for i, a := range def {
		if a.SizeGB != core.DefaultScenarioSizeGB {
			t.Fatalf("arrival %d size %v, want the workload default %v", i, a.SizeGB, float64(core.DefaultScenarioSizeGB))
		}
	}
	spec.Sizes = SizeSpec{Kind: SizeFixed, GB: 1}
	over := mustGenerate(t, spec)
	for i, a := range over {
		if a.SizeGB != 1 {
			t.Fatalf("arrival %d size %v, want the explicit 1 GB", i, a.SizeGB)
		}
		if a.App.Name != def[i].App.Name {
			t.Fatalf("arrival %d app changed when only sizes changed", i)
		}
	}
}

// TestZipfRecurringTemplates: every tenant's arrivals carry one pinned
// (app, size) template — the recurring-profile property the STP memo
// relies on.
func TestZipfRecurringTemplates(t *testing.T) {
	spec := Spec{
		Jobs:  3000,
		Seed:  13,
		Sizes: SizeSpec{Kind: SizePareto, Alpha: 1.5, Min: 1},
		Mix:   MixSpec{Kind: MixZipf, S: 1.0, Tenants: 12},
	}
	tr := mustGenerate(t, spec)
	type tmpl struct {
		app  string
		size float64
	}
	seen := map[tmpl]bool{}
	for _, a := range tr {
		seen[tmpl{a.App.Name, a.SizeGB}] = true
	}
	if len(seen) > 12 {
		t.Fatalf("%d distinct (app,size) templates for 12 tenants; recurring jobs must reuse templates", len(seen))
	}
	if len(seen) < 2 {
		t.Fatalf("only %d template(s) drawn; expected tenant diversity", len(seen))
	}
}

// TestValidateRejects spot-checks typed rejections for each component.
func TestValidateRejects(t *testing.T) {
	bad := []Spec{
		{Jobs: 0},
		{Jobs: MaxJobs + 1},
		{Jobs: 1, Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Mean: 0}},
		{Jobs: 1, Arrivals: ArrivalSpec{Kind: ArrivalMMPP, CalmMean: 10, BurstMean: 20, CalmStay: 0.5, BurstStay: 0.5}},
		{Jobs: 1, Arrivals: ArrivalSpec{Kind: ArrivalDiurnal, Mean: 10, Amplitude: 0.99, Period: 100}},
		{Jobs: 1, Sizes: SizeSpec{Kind: SizeFixed, GB: -1}},
		{Jobs: 1, Sizes: SizeSpec{Kind: SizePareto, Alpha: 0, Min: 1}},
		{Jobs: 1, Sizes: SizeSpec{Kind: SizePareto, Alpha: 1, Min: 2, Max: 1}},
		{Jobs: 1, Mix: MixSpec{Kind: MixCycle, Workload: "WS99"}},
		{Jobs: 1, Mix: MixSpec{Kind: MixZipf, S: -1, Tenants: 5}},
		{Jobs: 1, Mix: MixSpec{Kind: MixZipf, S: 1, Tenants: 0}},
	}
	for _, spec := range bad {
		tr, err := Generate(spec)
		if err == nil {
			t.Fatalf("Generate(%+v) accepted an invalid spec", spec)
		}
		if tr != nil {
			t.Fatalf("Generate(%+v) returned a stream alongside error %v", spec, err)
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Fatalf("Generate(%+v) error %T is not a *SpecError: %v", spec, err, err)
		}
	}
}

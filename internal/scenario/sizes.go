package scenario

import (
	"fmt"
	"math"

	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// SizeKind selects an input-size distribution.
type SizeKind int

const (
	// SizeDefault is the unspecified-size zero value: per-arrival
	// draws fall back to the Table-3 mix, and the cycle mix keeps the
	// workload's own sizes. An explicit `sizes=` clause overrides
	// cycle sizes per arrival and shapes the per-tenant templates of
	// the zipf mix (recurring jobs keep recurring sizes).
	SizeDefault SizeKind = iota
	// SizeTable3 draws uniformly from the paper's studied 1/5/10 GB
	// set (the empirical Table-3 mix).
	SizeTable3
	// SizeFixed pins every job to one size.
	SizeFixed
	// SizePareto draws from a (optionally truncated) Pareto
	// distribution — the classic heavy-tailed model for MapReduce
	// input sizes.
	SizePareto
	// SizeLognormal draws from a lognormal distribution, optionally
	// capped.
	SizeLognormal
)

func (k SizeKind) String() string {
	switch k {
	case SizeDefault:
		return "default"
	case SizeTable3:
		return "table3"
	case SizeFixed:
		return "fixed"
	case SizePareto:
		return "pareto"
	case SizeLognormal:
		return "lognormal"
	default:
		return fmt.Sprintf("SizeKind(%d)", int(k))
	}
}

// maxSizeGB caps sampled input sizes: the execution model is
// calibrated on per-node inputs, and a multi-PB outlier would turn one
// job into the whole makespan. Heavy tails are studied up to this cap.
const maxSizeGB = 4096

// SizeSpec parameterizes a size distribution. The zero value is
// SizeDefault.
type SizeSpec struct {
	Kind SizeKind
	// GB is the fixed size for SizeFixed.
	GB float64
	// Alpha is the Pareto tail index (> 0; smaller = heavier tail);
	// Min the scale (left edge); Max an optional truncation point
	// (0 = cap at maxSizeGB).
	Alpha, Min, Max float64
	// Mu/Sigma parameterize the lognormal in log-space; Max caps the
	// draw (0 = cap at maxSizeGB).
	Mu, Sigma float64
}

func (s SizeSpec) validate() error {
	switch s.Kind {
	case SizeDefault, SizeTable3:
		return nil
	case SizeFixed:
		if !(s.GB > 0) || math.IsInf(s.GB, 0) || s.GB > maxSizeGB {
			return specErrf("sizes", "fixed size %v GB must be in (0, %d]", s.GB, maxSizeGB)
		}
		return nil
	case SizePareto:
		if !(s.Alpha > 0) || math.IsInf(s.Alpha, 0) {
			return specErrf("sizes", "pareto alpha %v must be positive and finite", s.Alpha)
		}
		if !(s.Min > 0) || math.IsInf(s.Min, 0) || s.Min > maxSizeGB {
			return specErrf("sizes", "pareto min %v GB must be in (0, %d]", s.Min, maxSizeGB)
		}
		if s.Max != 0 && (math.IsNaN(s.Max) || s.Max <= s.Min || s.Max > maxSizeGB) {
			return specErrf("sizes", "pareto max %v GB must be 0 (cap at %d) or in (min, %d]", s.Max, maxSizeGB, maxSizeGB)
		}
		return nil
	case SizeLognormal:
		if math.IsNaN(s.Mu) || math.IsInf(s.Mu, 0) || math.Abs(s.Mu) > 20 {
			return specErrf("sizes", "lognormal mu %v must be finite with |mu| <= 20", s.Mu)
		}
		if !(s.Sigma >= 0) || math.IsInf(s.Sigma, 0) || s.Sigma > 5 {
			return specErrf("sizes", "lognormal sigma %v must be in [0, 5]", s.Sigma)
		}
		if s.Max != 0 && (math.IsNaN(s.Max) || s.Max <= 0 || s.Max > maxSizeGB) {
			return specErrf("sizes", "lognormal max %v GB must be 0 (cap at %d) or in (0, %d]", s.Max, maxSizeGB, maxSizeGB)
		}
		return nil
	default:
		return specErrf("sizes", "unknown size kind %v", s.Kind)
	}
}

// sizeGen samples one size per call from its own substream.
type sizeGen struct {
	spec   SizeSpec
	rng    *sim.RNG
	table3 []float64
}

func newSizeGen(spec SizeSpec, rng *sim.RNG) *sizeGen {
	return &sizeGen{spec: spec, rng: rng, table3: workloads.DataSizesGB()}
}

func (g *sizeGen) next() float64 {
	switch g.spec.Kind {
	case SizeFixed:
		return g.spec.GB
	case SizePareto:
		max := g.spec.Max
		if max == 0 {
			max = maxSizeGB
		}
		// Inverse CDF of the Pareto truncated to [min, max]: exact
		// truncation, no resampling, one uniform per draw.
		ratio := math.Pow(g.spec.Min/max, g.spec.Alpha)
		u := g.rng.Float64() * (1 - ratio)
		return g.spec.Min * math.Pow(1-u, -1/g.spec.Alpha)
	case SizeLognormal:
		max := g.spec.Max
		if max == 0 {
			max = maxSizeGB
		}
		x := g.rng.LogNormal(g.spec.Mu, g.spec.Sigma)
		if x > max {
			x = max
		}
		if x <= 0 { // exp underflow at extreme mu/sigma
			x = math.SmallestNonzeroFloat64
		}
		return x
	default: // SizeDefault, SizeTable3
		return g.table3[g.rng.Intn(len(g.table3))]
	}
}

package scenario

import (
	"bytes"
	"testing"
)

// BenchmarkScenarioGen measures generator throughput on the kitchen-
// sink stream (MMPP arrivals, Pareto sizes, Zipf tenants — every
// substream active). Guarded by cmd/benchguard in CI; the jobs/s
// metric is the headline number BENCH_PERF.json records.
func BenchmarkScenarioGen(b *testing.B) {
	const jobs = 10000
	spec := heavySpecBench(jobs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr) != jobs {
			b.Fatalf("%d arrivals", len(tr))
		}
	}
	b.ReportMetric(float64(jobs)/(b.Elapsed().Seconds()/float64(b.N)), "jobs/s")
}

// heavySpecBench mirrors heavySpec without the testing.T plumbing.
func heavySpecBench(jobs int) Spec {
	return Spec{
		Jobs: jobs,
		Seed: 42,
		Arrivals: ArrivalSpec{Kind: ArrivalMMPP,
			CalmMean: 120, BurstMean: 5, CalmStay: 0.95, BurstStay: 0.85},
		Sizes: SizeSpec{Kind: SizePareto, Alpha: 1.5, Min: 1},
		Mix:   MixSpec{Kind: MixZipf, S: 1.1, Tenants: 40},
	}
}

// BenchmarkTraceWrite / BenchmarkTraceRead record the JSONL
// serialization cost of a 10k-job stream (records, not gates).
func BenchmarkTraceWrite(b *testing.B) {
	tr, err := Generate(heavySpecBench(10000))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceRead(b *testing.B) {
	tr, err := Generate(heavySpecBench(10000))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTrace(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

package scenario

import (
	"math"
	"sort"
	"testing"

	"ecost/internal/sim"
)

// The statistical self-tests: the generator's streams must actually
// have the distributions the spec names. Seeds are fixed, so every
// assertion is deterministic; tolerances are sized so a correct
// sampler passes with wide margin while an off-by-a-parameter bug
// (wrong rate, wrong tail, wrong skew) fails every seed.

// TestPoissonRateRecovery: the empirical mean inter-arrival gap lies
// within 3σ of the requested mean across 5 seeds (σ = mean/√n for
// exponential gaps).
func TestPoissonRateRecovery(t *testing.T) {
	const (
		jobs = 20000
		mean = 50.0
	)
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		tr := mustGenerate(t, Spec{
			Jobs:     jobs,
			Seed:     seed,
			Arrivals: ArrivalSpec{Kind: ArrivalPoisson, Mean: mean},
		})
		n := len(tr) - 1 // gaps
		sum := 0.0
		for i := 1; i < len(tr); i++ {
			sum += tr[i].At - tr[i-1].At
		}
		got := sum / float64(n)
		sigma := mean / math.Sqrt(float64(n))
		if math.Abs(got-mean) > 3*sigma {
			t.Errorf("seed %d: empirical mean gap %.3f vs requested %.1f exceeds 3σ=%.3f", seed, got, mean, 3*sigma)
		}
	}
}

// TestParetoTailRecovery: the Hill estimator over the top order
// statistics recovers the requested tail index.
func TestParetoTailRecovery(t *testing.T) {
	const (
		jobs  = 20000
		alpha = 1.5
		k     = 500 // top order statistics for the Hill estimate
	)
	for _, seed := range []int64{1, 2, 3} {
		tr := mustGenerate(t, Spec{
			Jobs:  jobs,
			Seed:  seed,
			Sizes: SizeSpec{Kind: SizePareto, Alpha: alpha, Min: 1},
		})
		sizes := make([]float64, len(tr))
		for i, a := range tr {
			sizes[i] = a.SizeGB
		}
		sort.Float64s(sizes)
		// Hill: 1 / mean(log(x_(n-i) / x_(n-k))) over the k largest.
		ref := sizes[len(sizes)-k-1]
		sum := 0.0
		for i := 0; i < k; i++ {
			sum += math.Log(sizes[len(sizes)-1-i] / ref)
		}
		hill := float64(k) / sum
		// Hill's asymptotic sd is alpha/√k ≈ 0.067 here; the 4096 GB
		// truncation adds a small upward bias, so allow ±0.25.
		if math.Abs(hill-alpha) > 0.25 {
			t.Errorf("seed %d: Hill tail index %.3f vs requested %.1f (tolerance 0.25)", seed, hill, alpha)
		}
	}
}

// TestLognormalLogMoments: log-sizes recover mu and sigma.
func TestLognormalLogMoments(t *testing.T) {
	const (
		jobs  = 20000
		mu    = 1.2
		sigma = 0.8
	)
	for _, seed := range []int64{1, 2, 3} {
		tr := mustGenerate(t, Spec{
			Jobs:  jobs,
			Seed:  seed,
			Sizes: SizeSpec{Kind: SizeLognormal, Mu: mu, Sigma: sigma},
		})
		sum, sum2 := 0.0, 0.0
		for _, a := range tr {
			l := math.Log(a.SizeGB)
			sum += l
			sum2 += l * l
		}
		n := float64(len(tr))
		gotMu := sum / n
		gotSigma := math.Sqrt(sum2/n - gotMu*gotMu)
		if math.Abs(gotMu-mu) > 4*sigma/math.Sqrt(n) {
			t.Errorf("seed %d: log-mean %.3f vs %.1f", seed, gotMu, mu)
		}
		if math.Abs(gotSigma-sigma) > 0.05 {
			t.Errorf("seed %d: log-sd %.3f vs %.1f", seed, gotSigma, sigma)
		}
	}
}

// TestZipfRankFrequencySlope: regressing log(frequency) on log(rank)
// over the head of the tenant popularity table recovers -s.
func TestZipfRankFrequencySlope(t *testing.T) {
	const (
		jobs    = 60000
		s       = 1.2
		tenants = 100
		head    = 30 // head ranks carry enough mass for a stable fit
	)
	for _, seed := range []int64{1, 2, 3} {
		spec := Spec{
			Jobs: jobs,
			Seed: seed,
			Mix:  MixSpec{Kind: MixZipf, S: s, Tenants: tenants},
		}
		tr := mustGenerate(t, spec)
		// Tenant identity is the (app, size) template; rank = tenant
		// index. Recover per-rank counts by regenerating the template
		// table the same way the generator does.
		root := sim.NewRNG(seed)
		mg, err := newMixGen(spec.Mix, spec.Sizes, root.Split(streamMix), root.Split(streamTenants))
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, tenants)
		for _, a := range tr {
			// Templates may collide (same app+size for two tenants), so
			// attribute each arrival to its lowest-ranked matching
			// template; collisions only flatten the measured slope.
			for r, tn := range mg.tenants {
				if tn.app.Name == a.App.Name && tn.sizeGB == a.SizeGB {
					counts[r]++
					break
				}
			}
		}
		// Least-squares slope of log(count) on log(rank+1) over the head.
		var sx, sy, sxx, sxy float64
		n := 0.0
		for r := 0; r < head; r++ {
			if counts[r] == 0 {
				continue
			}
			x, y := math.Log(float64(r+1)), math.Log(counts[r])
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			n++
		}
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		if math.Abs(slope-(-s)) > 0.2 {
			t.Errorf("seed %d: rank-frequency slope %.3f vs requested %.1f (tolerance 0.2)", seed, slope, -s)
		}
	}
}

// TestMMPPBurstiness: an MMPP stream is overdispersed relative to
// Poisson (squared coefficient of variation of gaps > 1) and its
// overall mean gap lies strictly between the regime means.
func TestMMPPBurstiness(t *testing.T) {
	spec := Spec{
		Jobs: 20000,
		Seed: 4,
		Arrivals: ArrivalSpec{Kind: ArrivalMMPP,
			CalmMean: 200, BurstMean: 5, CalmStay: 0.98, BurstStay: 0.95},
	}
	tr := mustGenerate(t, spec)
	var sum, sum2 float64
	n := float64(len(tr) - 1)
	for i := 1; i < len(tr); i++ {
		g := tr[i].At - tr[i-1].At
		sum += g
		sum2 += g * g
	}
	mean := sum / n
	cv2 := (sum2/n - mean*mean) / (mean * mean)
	if cv2 <= 1.2 {
		t.Errorf("MMPP gap CV² = %.3f; want clearly overdispersed (> 1.2, Poisson is 1)", cv2)
	}
	if mean <= spec.Arrivals.BurstMean || mean >= spec.Arrivals.CalmMean {
		t.Errorf("MMPP overall mean gap %.2f outside regime means (%v, %v)", mean, spec.Arrivals.BurstMean, spec.Arrivals.CalmMean)
	}
}

// TestDiurnalModulation: arrival counts in the peak half of the cycle
// exceed the trough half by roughly the modulation ratio.
func TestDiurnalModulation(t *testing.T) {
	const (
		mean   = 10.0
		amp    = 0.8
		period = 10000.0
	)
	tr := mustGenerate(t, Spec{
		Jobs:     40000,
		Seed:     6,
		Arrivals: ArrivalSpec{Kind: ArrivalDiurnal, Mean: mean, Amplitude: amp, Period: period},
	})
	var peak, trough float64
	for _, a := range tr {
		phase := math.Mod(a.At, period) / period
		if phase < 0.5 { // sin > 0: high-rate half
			peak++
		} else {
			trough++
		}
	}
	// Integrated rate ratio between halves is (π+2A)/(π-2A) = 3.03 at
	// A=0.8; require at least 2x to prove real modulation.
	if peak < 2*trough {
		t.Errorf("peak-half arrivals %v vs trough-half %v; want ≥ 2x modulation", peak, trough)
	}
}

// TestSplitSeedInvariance: Split(id) substreams are identical whether
// drawn interleaved or sequentially — the property that makes the
// generator's per-component streams independent of consumption order.
func TestSplitSeedInvariance(t *testing.T) {
	const draws = 1000
	root := sim.NewRNG(99)
	a, b, c := root.Split(1), root.Split(2), root.Split(3)
	inter := make([][]float64, 3)
	for i := 0; i < draws; i++ {
		inter[0] = append(inter[0], a.Float64())
		inter[1] = append(inter[1], b.Float64())
		inter[2] = append(inter[2], c.Float64())
	}
	root2 := sim.NewRNG(99)
	for idx, id := range []int64{1, 2, 3} {
		g := root2.Split(id)
		for i := 0; i < draws; i++ {
			if v := g.Float64(); v != inter[idx][i] {
				t.Fatalf("substream %d draw %d: sequential %v != interleaved %v", id, i, v, inter[idx][i])
			}
		}
	}
	// Splitting must not advance the parent: a root drawn after three
	// Splits matches a fresh root drawn directly.
	r1, r2 := sim.NewRNG(7), sim.NewRNG(7)
	r1.Split(1)
	r1.Split(2)
	if r1.Float64() != r2.Float64() {
		t.Fatal("Split advanced the parent stream")
	}
}

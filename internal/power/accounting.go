package power

// PhaseAccumulator splits integrated cluster energy by node-occupancy
// phase: idle (no residents), solo (one application), and co-located
// (two or more). The online scheduler feeds it per-node energy slices
// at every accounting interval; the split is what shows whether the
// pairing policy is actually converting idle/solo watt-seconds into
// co-located ones (the mechanism behind the paper's EDP wins).
type PhaseAccumulator struct {
	IdleJ float64 // energy burned by empty nodes
	SoloJ float64 // energy burned by single-resident nodes
	CoJ   float64 // energy burned by co-located nodes
}

// Add accrues joules for a node that held `residents` applications over
// the interval.
func (p *PhaseAccumulator) Add(residents int, joules float64) {
	switch {
	case residents <= 0:
		p.IdleJ += joules
	case residents == 1:
		p.SoloJ += joules
	default:
		p.CoJ += joules
	}
}

// TotalJ returns the summed energy across phases.
func (p *PhaseAccumulator) TotalJ() float64 { return p.IdleJ + p.SoloJ + p.CoJ }

package power

// PhaseAccumulator splits integrated cluster energy by node-occupancy
// phase: idle (no residents), solo (one application), and co-located
// (two or more). The online scheduler feeds it per-node energy slices
// at every accounting interval; the split is what shows whether the
// pairing policy is actually converting idle/solo watt-seconds into
// co-located ones (the mechanism behind the paper's EDP wins).
type PhaseAccumulator struct {
	IdleJ float64 // energy burned by empty nodes
	SoloJ float64 // energy burned by single-resident nodes
	CoJ   float64 // energy burned by co-located nodes
}

// Add accrues joules for a node that held `residents` applications over
// the interval.
func (p *PhaseAccumulator) Add(residents int, joules float64) {
	switch {
	case residents <= 0:
		p.IdleJ += joules
	case residents == 1:
		p.SoloJ += joules
	default:
		p.CoJ += joules
	}
}

// TotalJ returns the summed energy across phases.
func (p *PhaseAccumulator) TotalJ() float64 { return p.IdleJ + p.SoloJ + p.CoJ }

// PhaseName labels a node-occupancy phase — the vocabulary shared by
// the accumulator, the tracer's per-node occupancy spans, and the EDP
// attribution report.
func PhaseName(residents int) string {
	switch {
	case residents <= 0:
		return "idle"
	case residents == 1:
		return "solo"
	default:
		return "co-located"
	}
}

// AddNamed accrues joules under a PhaseName label, reporting false for
// an unknown label. It lets consumers that carry the phase as a string
// (trace spans) re-integrate into the accumulator.
func (p *PhaseAccumulator) AddNamed(name string, joules float64) bool {
	switch name {
	case "idle":
		p.IdleJ += joules
	case "solo":
		p.SoloJ += joules
	case "co-located":
		p.CoJ += joules
	default:
		return false
	}
	return true
}

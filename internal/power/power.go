// Package power models whole-system power the way the ECoST study
// measures it: a Wattsup-PRO-style meter samples the wall power of one
// node at one-second granularity; the average over a run, minus the idle
// power, estimates the dissipation attributable to the workload.
//
// The model is the standard decomposition
//
//	P = P_idle + Σ_cores u·(P_static + P_dyn·(V/V_max)²·(f/f_max))
//	      + P_mem·(memBW/memBW_max) + P_disk·diskActive
//
// with V(f) from the cluster package's DVFS table. The energy-delay
// product (EDP = Energy × Delay = P·T²) helpers live here too, since every
// experiment in the paper is scored in EDP.
package power

import (
	"fmt"
	"math"

	"ecost/internal/cluster"
)

// CoreLoad describes a group of cores running at one frequency with a
// given average utilization (0..1). A co-located pair contributes two
// CoreLoads, one per application's core partition.
type CoreLoad struct {
	Cores int
	Freq  cluster.FreqGHz
	Util  float64
}

// Activity is the node-level activity snapshot the model converts to
// watts.
type Activity struct {
	Loads    []CoreLoad
	MemBWGB  float64 // consumed memory bandwidth, GB/s
	DiskBusy float64 // disk utilization 0..1
}

// NodePower returns instantaneous whole-system power (watts) for the
// given activity on a node of the given spec.
func NodePower(spec cluster.NodeSpec, act Activity) float64 {
	p := spec.IdleWatts
	vmax := cluster.Voltage(cluster.MaxFreq)
	for _, l := range act.Loads {
		if l.Cores <= 0 {
			continue
		}
		u := clamp01(l.Util)
		v := cluster.Voltage(l.Freq)
		scale := (v * v / (vmax * vmax)) * (float64(l.Freq) / float64(cluster.MaxFreq))
		p += float64(l.Cores) * u * (spec.CoreStaticWatts + spec.CoreDynWattsMax*scale)
	}
	if spec.MemBWGBps > 0 {
		p += spec.MemActiveWattsMax * clamp01(act.MemBWGB/spec.MemBWGBps)
	}
	p += spec.DiskActiveWatts * clamp01(act.DiskBusy)
	return p
}

// CorePower returns the activity power above idle — the quantity the
// paper reports after subtracting system idle power.
func CorePower(spec cluster.NodeSpec, act Activity) float64 {
	return NodePower(spec, act) - spec.IdleWatts
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// EDP returns the energy-delay product for a run that consumed
// energyJoules over execTime seconds: E × T = P·T².
func EDP(energyJoules, execTime float64) float64 {
	return energyJoules * execTime
}

// EDPFromPower returns the EDP of a run at constant average power:
// P · T².
func EDPFromPower(avgWatts, execTime float64) float64 {
	return avgWatts * execTime * execTime
}

// Sample is one reading from the simulated wall-power meter.
type Sample struct {
	At    float64 // seconds since meter start
	Watts float64
}

// Meter integrates a piecewise-constant power trace and exposes the
// 1 Hz samples a Wattsup-style meter would record. Segments are appended
// in time order.
type Meter struct {
	resolution float64
	segs       []segment
	t          float64
}

type segment struct {
	start, dur, watts float64
}

// NewMeter returns a meter sampling at the given resolution in seconds
// (the paper's instrument records at 1 s).
func NewMeter(resolution float64) *Meter {
	if resolution <= 0 {
		resolution = 1
	}
	return &Meter{resolution: resolution}
}

// Observe appends a segment of `dur` seconds at constant `watts`.
// Non-positive durations are ignored.
func (m *Meter) Observe(watts, dur float64) {
	if dur <= 0 {
		return
	}
	m.segs = append(m.segs, segment{start: m.t, dur: dur, watts: watts})
	m.t += dur
}

// Duration returns the total observed time in seconds.
func (m *Meter) Duration() float64 { return m.t }

// EnergyJoules returns the exact integral of the observed trace.
func (m *Meter) EnergyJoules() float64 {
	var e float64
	for _, s := range m.segs {
		e += s.watts * s.dur
	}
	return e
}

// AveragePower returns energy divided by duration (0 for an empty trace).
func (m *Meter) AveragePower() float64 {
	if m.t == 0 {
		return 0
	}
	return m.EnergyJoules() / m.t
}

// Samples returns the meter's periodic readings: one per resolution
// interval, each reporting the power at the sample instant (like a real
// wall-power meter, this quantizes and can alias short spikes).
func (m *Meter) Samples() []Sample {
	if m.t == 0 {
		return nil
	}
	n := int(math.Floor(m.t / m.resolution))
	out := make([]Sample, 0, n)
	si := 0
	for k := 1; k <= n; k++ {
		at := float64(k) * m.resolution
		for si < len(m.segs) && m.segs[si].start+m.segs[si].dur < at {
			si++
		}
		if si >= len(m.segs) {
			break
		}
		out = append(out, Sample{At: at, Watts: m.segs[si].watts})
	}
	return out
}

// MeteredEnergy estimates energy the way the instrument would: the sum of
// sampled powers times the resolution. It differs from EnergyJoules by
// the quantization error of the sampling.
func (m *Meter) MeteredEnergy() float64 {
	var e float64
	for _, s := range m.Samples() {
		e += s.Watts * m.resolution
	}
	return e
}

// String implements fmt.Stringer for diagnostics.
func (s Sample) String() string { return fmt.Sprintf("%.0fs: %.1fW", s.At, s.Watts) }

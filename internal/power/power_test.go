package power

import (
	"math"
	"testing"
	"testing/quick"

	"ecost/internal/cluster"
)

func spec() cluster.NodeSpec { return cluster.AtomC2758() }

func TestIdleNodePower(t *testing.T) {
	s := spec()
	if got := NodePower(s, Activity{}); got != s.IdleWatts {
		t.Fatalf("idle power = %v, want %v", got, s.IdleWatts)
	}
	if got := CorePower(s, Activity{}); got != 0 {
		t.Fatalf("idle core power = %v, want 0", got)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	s := spec()
	prev := 0.0
	for _, f := range cluster.Frequencies() {
		p := NodePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: f, Util: 1}}})
		if p <= prev {
			t.Fatalf("power at %v = %v not above %v", f, p, prev)
		}
		prev = p
	}
}

func TestPowerSuperlinearInFrequency(t *testing.T) {
	// Dynamic power must grow faster than frequency (V² scaling) so that
	// the EDP race-to-idle tradeoff in the paper exists.
	s := spec()
	dyn := func(f cluster.FreqGHz) float64 {
		return CorePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: f, Util: 1}}})
	}
	lo, hi := dyn(cluster.Freq1200), dyn(cluster.Freq2400)
	if ratio := hi / lo; ratio <= 2.0 {
		t.Fatalf("dynamic power 2.4/1.2 ratio = %v, want > 2 (superlinear)", ratio)
	}
}

func TestPowerScalesWithCoresAndUtil(t *testing.T) {
	s := spec()
	one := CorePower(s, Activity{Loads: []CoreLoad{{Cores: 1, Freq: cluster.MaxFreq, Util: 1}}})
	eight := CorePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: cluster.MaxFreq, Util: 1}}})
	if math.Abs(eight-8*one) > 1e-9 {
		t.Fatalf("core power not linear in cores: 1→%v, 8→%v", one, eight)
	}
	half := CorePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: cluster.MaxFreq, Util: 0.5}}})
	if math.Abs(half-eight/2) > 1e-9 {
		t.Fatalf("core power not linear in util: %v vs %v/2", half, eight)
	}
}

func TestUtilClamped(t *testing.T) {
	s := spec()
	over := NodePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: cluster.MaxFreq, Util: 3}}})
	full := NodePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: cluster.MaxFreq, Util: 1}}})
	if over != full {
		t.Fatalf("util not clamped: %v vs %v", over, full)
	}
	neg := NodePower(s, Activity{Loads: []CoreLoad{{Cores: 8, Freq: cluster.MaxFreq, Util: -1}}, MemBWGB: -4, DiskBusy: -1})
	if neg != s.IdleWatts {
		t.Fatalf("negative activity not clamped: %v", neg)
	}
}

func TestMemAndDiskPower(t *testing.T) {
	s := spec()
	p := NodePower(s, Activity{MemBWGB: s.MemBWGBps, DiskBusy: 1})
	want := s.IdleWatts + s.MemActiveWattsMax + s.DiskActiveWatts
	if math.Abs(p-want) > 1e-9 {
		t.Fatalf("mem+disk power = %v, want %v", p, want)
	}
}

func TestPowerNonNegativeProperty(t *testing.T) {
	s := spec()
	f := func(u, mem, disk float64) bool {
		act := Activity{
			Loads:    []CoreLoad{{Cores: 4, Freq: cluster.Freq2000, Util: u}},
			MemBWGB:  mem,
			DiskBusy: disk,
		}
		p := NodePower(s, act)
		return p >= s.IdleWatts && p < 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEDP(t *testing.T) {
	if got := EDP(100, 10); got != 1000 {
		t.Fatalf("EDP(100,10) = %v", got)
	}
	if got := EDPFromPower(20, 10); got != 2000 {
		t.Fatalf("EDPFromPower(20,10) = %v", got)
	}
	// P·T² identity: EDP(P·T, T) == EDPFromPower(P, T).
	f := func(p, tt float64) bool {
		p = math.Mod(math.Abs(p), 1e3) + 0.1
		tt = math.Mod(math.Abs(tt), 1e5) + 0.1
		return math.Abs(EDP(p*tt, tt)-EDPFromPower(p, tt)) < 1e-6*EDPFromPower(p, tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterEnergy(t *testing.T) {
	m := NewMeter(1)
	m.Observe(20, 10) // 200 J
	m.Observe(30, 5)  // 150 J
	if got := m.EnergyJoules(); math.Abs(got-350) > 1e-9 {
		t.Fatalf("energy = %v, want 350", got)
	}
	if got := m.Duration(); got != 15 {
		t.Fatalf("duration = %v, want 15", got)
	}
	if got := m.AveragePower(); math.Abs(got-350.0/15) > 1e-9 {
		t.Fatalf("avg power = %v", got)
	}
}

func TestMeterSamples(t *testing.T) {
	m := NewMeter(1)
	m.Observe(20, 3.5)
	m.Observe(40, 2.5)
	samples := m.Samples()
	if len(samples) != 6 {
		t.Fatalf("got %d samples, want 6: %v", len(samples), samples)
	}
	wantW := []float64{20, 20, 20, 40, 40, 40}
	for i, s := range samples {
		if s.Watts != wantW[i] {
			t.Fatalf("sample %d = %v, want %vW", i, s, wantW[i])
		}
	}
}

func TestMeteredEnergyCloseToExact(t *testing.T) {
	m := NewMeter(1)
	m.Observe(17, 100.3)
	m.Observe(25, 200.7)
	exact := m.EnergyJoules()
	metered := m.MeteredEnergy()
	if rel := math.Abs(metered-exact) / exact; rel > 0.02 {
		t.Fatalf("metered %v vs exact %v (rel err %v)", metered, exact, rel)
	}
}

func TestMeterIgnoresBogusSegments(t *testing.T) {
	m := NewMeter(1)
	m.Observe(20, 0)
	m.Observe(20, -5)
	if m.Duration() != 0 || len(m.Samples()) != 0 {
		t.Fatal("bogus segments were recorded")
	}
	if m.AveragePower() != 0 {
		t.Fatal("empty meter average power not 0")
	}
}

func TestMeterDefaultResolution(t *testing.T) {
	m := NewMeter(0)
	m.Observe(10, 2)
	if len(m.Samples()) != 2 {
		t.Fatalf("default resolution broken: %v", m.Samples())
	}
}

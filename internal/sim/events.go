package sim

import "container/heap"

// Event is a callback scheduled at a point in simulated time.
type Event struct {
	// At is the absolute simulated time (seconds) the event fires.
	At float64
	// Fire runs when the clock reaches At. It may schedule further events.
	Fire func()

	seq   int64 // tiebreaker: FIFO among equal timestamps
	index int   // heap bookkeeping
}

// eventHeap is a min-heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a minimal deterministic discrete-event simulation kernel.
// Events with equal timestamps fire in scheduling order.
type Engine struct {
	now     float64
	seq     int64
	headSeq int64 // negative tiebreakers handed out by AtHead
	events  eventHeap
	fired   int64

	// recycle enables the event free-list: fired and cancelled Events
	// are reused by later At/After/AtHead calls instead of allocated
	// fresh. See SetRecycle for the aliasing contract.
	recycle bool
	free    []*Event
}

// NewEngine returns a kernel with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Clock returns a closure reading the engine's simulated time — the
// clock signature observability consumers (the span tracer, series
// samplers) take without holding the engine itself.
func (e *Engine) Clock() func() float64 {
	return func() float64 { return e.now }
}

// Fired reports how many events have run so far.
func (e *Engine) Fired() int64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// SetRecycle toggles the event free-list: when on, Events retired by
// Step and Cancel are reused by later At/After/AtHead calls. Recycling
// changes nothing observable about event ordering, but it does alias
// Event pointers across logical events — callers must drop every *Event
// they hold once it has fired or been cancelled (the scheduler's
// per-node completion event, the only retained handle in this codebase,
// does exactly that). Off by default; the sharded control plane turns
// it on for its shard engines.
func (e *Engine) SetRecycle(v bool) { e.recycle = v }

// alloc returns a zeroed-for-reuse Event, from the free-list when
// recycling is on and one is available.
func (e *Engine) alloc(t float64, fn func(), seq int64) *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.At, ev.Fire, ev.seq = t, fn, seq
		return ev
	}
	return &Event{At: t, Fire: fn, seq: seq}
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is clamped to Now: the event fires next, preserving causality.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc(t, fn, e.seq)
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// AtHead schedules fn at absolute time t ahead of every event scheduled
// with At/After at the same timestamp, regardless of scheduling order.
// The scheduler's arrival ring uses it to keep batched arrivals firing
// before same-instant completions, exactly as per-job arrival events
// scheduled before the run would have (their submission-time seq always
// undercuts runtime-scheduled events). Among AtHead events at one
// timestamp the later-scheduled fires first, so callers keep at most
// one in flight per engine (the ring schedules its next head event only
// after the previous one fired).
func (e *Engine) AtHead(t float64, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	e.headSeq--
	ev := e.alloc(t, fn, e.headSeq)
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 || ev.index >= len(e.events) || e.events[ev.index] != ev {
		return false
	}
	heap.Remove(&e.events, ev.index)
	ev.index = -1
	if e.recycle {
		ev.Fire = nil
		e.free = append(e.free, ev)
	}
	return true
}

// NextAt peeks at the timestamp of the next scheduled event without
// firing it. It reports false when no events are pending. The sharded
// control plane uses it to compute the global epoch barrier (the
// minimum next-event time across all shard engines).
func (e *Engine) NextAt() (float64, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].At, true
}

// RunThrough fires every event with a timestamp at or before t, in
// (At, seq) order, and stops without advancing the clock past the last
// fired event. Unlike Run(horizon) it never moves the clock to t when
// no event lands exactly there — shards that sit out an epoch keep
// their own clock, so per-shard accrual intervals stay exactly the
// intervals their own events delimit.
func (e *Engine) RunThrough(t float64) {
	for len(e.events) > 0 && e.events[0].At <= t {
		e.Step()
	}
}

// RunBefore fires every event with a timestamp strictly before t, in
// (At, seq) order, with RunThrough's clock semantics (the clock stops at
// the last fired event, never at t). The sharded control plane's
// free-running windows use it: shards drain everything up to — but
// excluding — the next global arrival time, which is the first instant
// cross-shard interaction (a steal) could possibly occur. RunBefore(+Inf)
// drains the engine completely.
func (e *Engine) RunBefore(t float64) {
	for len(e.events) > 0 && e.events[0].At < t {
		e.Step()
	}
}

// AdvanceTo moves the clock forward to t without firing anything.
// Jumping over a pending event would violate causality, so it panics if
// one is scheduled before t; callers use it only at epoch barriers
// (after RunThrough drained everything at or before t) and when closing
// a drained shard out to the global makespan.
func (e *Engine) AdvanceTo(t float64) {
	if t <= e.now {
		return
	}
	if len(e.events) > 0 && e.events[0].At < t {
		panic("sim: AdvanceTo would skip a pending event")
	}
	e.now = t
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports false when no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*Event)
	ev.index = -1
	e.now = ev.At
	e.fired++
	ev.Fire()
	if e.recycle {
		// Retire after Fire so a callback cancelling or inspecting the
		// firing event never races its own reuse.
		ev.Fire = nil
		e.free = append(e.free, ev)
	}
	return true
}

// Run fires events until none remain or the clock passes horizon
// (horizon <= 0 means no limit). It returns the final clock value.
func (e *Engine) Run(horizon float64) float64 {
	for len(e.events) > 0 {
		if horizon > 0 && e.events[0].At > horizon {
			e.now = horizon
			break
		}
		e.Step()
	}
	return e.now
}

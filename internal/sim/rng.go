// Package sim provides the deterministic simulation substrate used across
// the ECoST reproduction: a seeded pseudo-random source with the
// distribution helpers the models need, and a discrete-event kernel for
// scenario-level (queueing) simulation.
//
// Everything in this package is deterministic for a fixed seed; all
// experiments in the repository derive their randomness from here so that
// tables and figures regenerate identically run-to-run.
package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded PRNG with the distribution helpers used by the
// performance, power and counter models. It is NOT safe for concurrent
// use; give each goroutine its own RNG via Split.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent generator from this one, keyed by id.
// Two Splits with different ids produce uncorrelated streams; the parent
// stream is not advanced.
func (g *RNG) Split(id int64) *RNG {
	// SplitMix-style avalanche of (seed-ish state, id). We cannot read the
	// underlying rand state, so we derive from a dedicated draw.
	z := uint64(id)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return NewRNG(int64(z))
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a sample from N(mean, std).
func (g *RNG) Normal(mean, std float64) float64 {
	return mean + std*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is N(mu, sigma).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Jitter returns x multiplied by a factor drawn from N(1, rel), clamped to
// stay positive. It models measurement and run-to-run noise.
func (g *RNG) Jitter(x, rel float64) float64 {
	f := g.Normal(1, rel)
	if f < 0.05 {
		f = 0.05
	}
	return x * f
}

// Exp returns a sample from an exponential distribution with the given
// mean (used for job inter-arrival times).
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle permutes the slice with the supplied swap function.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

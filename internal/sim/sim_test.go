package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := NewRNG(7).Split(1)
	for i := 0; i < 100; i++ {
		if c1.Float64() != c1again.Float64() {
			t.Fatalf("Split not deterministic at draw %d", i)
		}
	}
	// Different ids should produce different streams.
	c1 = NewRNG(7).Split(1)
	diff := false
	for i := 0; i < 20; i++ {
		if c1.Float64() != c2.Float64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("Split(1) and Split(2) produced identical streams")
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(3)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.Normal(5, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v, want ~5", mean)
	}
	if math.Abs(std-2) > 0.05 {
		t.Errorf("std = %v, want ~2", std)
	}
}

func TestJitterPositive(t *testing.T) {
	g := NewRNG(9)
	f := func(x float64) bool {
		ax := math.Abs(x) + 0.001
		return g.Jitter(ax, 0.5) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(11)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exp(3)
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.1 {
		t.Errorf("exp mean = %v, want ~3", mean)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run(0)
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-timestamp events not FIFO: %v", order)
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run(0)
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %v, want 100", e.Now())
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := false
	e.At(10, func() { fired = true })
	e.Run(5)
	if fired {
		t.Fatal("event past horizon fired")
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want horizon 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel returned true")
	}
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEnginePastSchedulingClamped(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(5, func() {
		e.At(1, func() { at = e.Now() }) // in the past: clamped to now
	})
	e.Run(0)
	if at != 5 {
		t.Fatalf("past-scheduled event fired at %v, want 5", at)
	}
}

func TestEngineStepCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func() {})
	}
	n := 0
	for e.Step() {
		n++
	}
	if n != 7 || e.Fired() != 7 {
		t.Fatalf("stepped %d fired %d, want 7", n, e.Fired())
	}
}

func TestEngineNextAt(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt reported an event on an empty engine")
	}
	e.At(3, func() {})
	e.At(1, func() {})
	if at, ok := e.NextAt(); !ok || at != 1 {
		t.Fatalf("NextAt = %v,%v, want 1,true", at, ok)
	}
	e.Step()
	if at, ok := e.NextAt(); !ok || at != 3 {
		t.Fatalf("NextAt after Step = %v,%v, want 3,true", at, ok)
	}
}

func TestEngineRunThrough(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 2, 3, 5} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunThrough(2)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 2 {
		t.Fatalf("RunThrough(2) fired %v, want [1 2 2]", fired)
	}
	// The clock stops at the last fired event, not at the barrier.
	if e.Now() != 2 {
		t.Fatalf("Now = %v after RunThrough(2), want 2", e.Now())
	}
	e.RunThrough(4)
	if e.Now() != 3 {
		t.Fatalf("Now = %v after RunThrough(4), want 3", e.Now())
	}
	e.RunThrough(10)
	if len(fired) != 5 || e.Now() != 5 {
		t.Fatalf("fired %v Now %v, want all 5 events and Now=5", fired, e.Now())
	}
}

func TestEngineRunThroughCascades(t *testing.T) {
	// An event firing at t may schedule another event at <= barrier;
	// RunThrough must drain it in the same pass.
	e := NewEngine()
	var got []float64
	e.At(1, func() {
		got = append(got, e.Now())
		e.At(2, func() { got = append(got, e.Now()) })
	})
	e.RunThrough(2)
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("cascaded event not drained: fired %v", got)
	}
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(4)
	if e.Now() != 4 {
		t.Fatalf("Now = %v, want 4", e.Now())
	}
	e.AdvanceTo(2) // backward: no-op
	if e.Now() != 4 {
		t.Fatalf("Now = %v after backward AdvanceTo, want 4", e.Now())
	}
	e.At(6, func() {})
	e.AdvanceTo(6) // exactly at the pending event: allowed
	if e.Now() != 6 {
		t.Fatalf("Now = %v, want 6", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a pending event did not panic")
		}
	}()
	e.AdvanceTo(7)
}

func TestEngineRunBefore(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 2, 3} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	// Strictly before: events at the horizon stay pending.
	e.RunBefore(2)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("RunBefore(2) fired %v, want [1]", fired)
	}
	if e.Now() != 1 {
		t.Fatalf("Now = %v after RunBefore(2), want 1", e.Now())
	}
	// +Inf drains everything.
	e.RunBefore(math.Inf(1))
	if len(fired) != 4 || e.Now() != 3 {
		t.Fatalf("RunBefore(+Inf) fired %v Now %v, want all 4 events and Now=3", fired, e.Now())
	}
}

func TestEngineAtHeadPriority(t *testing.T) {
	e := NewEngine()
	var got []string
	// Scheduled first, but At events at the same timestamp must yield to
	// a later-scheduled AtHead event.
	e.At(5, func() { got = append(got, "at") })
	e.AtHead(5, func() { got = append(got, "head") })
	e.At(5, func() { got = append(got, "at2") })
	e.Run(0)
	if len(got) != 3 || got[0] != "head" || got[1] != "at" || got[2] != "at2" {
		t.Fatalf("fired %v, want [head at at2]", got)
	}
	// Distinct timestamps still order by time.
	e2 := NewEngine()
	got = nil
	e2.AtHead(7, func() { got = append(got, "head7") })
	e2.At(6, func() { got = append(got, "at6") })
	e2.Run(0)
	if len(got) != 2 || got[0] != "at6" || got[1] != "head7" {
		t.Fatalf("fired %v, want [at6 head7]", got)
	}
}

func TestEngineRecycle(t *testing.T) {
	e := NewEngine()
	e.SetRecycle(true)
	var fired []float64
	ev1 := e.At(1, func() { fired = append(fired, 1) })
	e.Step()
	// The fired event must be reused by the next schedule.
	ev2 := e.At(2, func() { fired = append(fired, 2) })
	if ev1 != ev2 {
		t.Fatal("fired event was not recycled by the next At")
	}
	// Cancelled events recycle too.
	if !e.Cancel(ev2) {
		t.Fatal("Cancel failed on a live event")
	}
	ev3 := e.At(3, func() { fired = append(fired, 3) })
	if ev3 != ev2 {
		t.Fatal("cancelled event was not recycled by the next At")
	}
	e.Run(0)
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired %v, want [1 3] (event 2 cancelled)", fired)
	}
	// Ordering semantics are unchanged under recycling: interleaved
	// schedules and cascades fire in (At, seq) order.
	var got []float64
	e.At(10, func() {
		got = append(got, e.Now())
		e.At(11, func() { got = append(got, e.Now()) })
	})
	e.At(11, func() { got = append(got, 11.5) }) // seq before the cascade's 11
	e.Run(0)
	if len(got) != 3 || got[0] != 10 || got[1] != 11.5 || got[2] != 11 {
		t.Fatalf("recycled ordering diverged: %v, want [10 11.5 11]", got)
	}
}

package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"ecost/internal/cluster"
	"ecost/internal/hdfs"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

func model() *Model { return NewModel(cluster.AtomC2758()) }

func spec(name string, dataMB float64, f cluster.FreqGHz, b hdfs.BlockMB, m int) RunSpec {
	return RunSpec{
		App:    workloads.MustByName(name),
		DataMB: dataMB,
		Cfg:    Config{Freq: f, Block: b, Mappers: m},
	}
}

func TestConfigValidate(t *testing.T) {
	ok := Config{Freq: cluster.Freq2000, Block: hdfs.Block256, Mappers: 4}
	if err := ok.Validate(8); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Freq: 1.3, Block: hdfs.Block256, Mappers: 4},
		{Freq: cluster.Freq2000, Block: 100, Mappers: 4},
		{Freq: cluster.Freq2000, Block: hdfs.Block256, Mappers: 0},
		{Freq: cluster.Freq2000, Block: hdfs.Block256, Mappers: 9},
	}
	for _, c := range bad {
		if err := c.Validate(8); err == nil {
			t.Errorf("invalid config %v accepted", c)
		}
	}
}

func TestAllConfigsCount(t *testing.T) {
	// The paper's standalone tuning space: 4 freqs × 5 blocks × 8 mappers.
	if got := len(AllConfigs(8)); got != 160 {
		t.Fatalf("|AllConfigs(8)| = %d, want 160", got)
	}
	if got := len(AllConfigs(0)); got != 0 {
		t.Fatalf("|AllConfigs(0)| = %d, want 0", got)
	}
	seen := map[Config]bool{}
	for _, c := range AllConfigs(8) {
		if seen[c] {
			t.Fatalf("duplicate config %v", c)
		}
		seen[c] = true
		if err := c.Validate(8); err != nil {
			t.Fatalf("enumerated invalid config: %v", err)
		}
	}
}

func TestPairConfigsCount(t *testing.T) {
	// mapper pairs with m1,m2 ≥ 1 and m1+m2 ≤ 8: 28; times (4·5)².
	if got := len(PairConfigs(8)); got != 28*400 {
		t.Fatalf("|PairConfigs(8)| = %d, want %d", got, 28*400)
	}
	for _, pc := range PairConfigs(8) {
		if pc[0].Mappers+pc[1].Mappers > 8 {
			t.Fatalf("pair %v overcommits cores", pc)
		}
	}
}

func TestBaseline(t *testing.T) {
	b := Baseline(3)
	if b.Freq != cluster.MinFreq || b.Block != hdfs.Block64 || b.Mappers != 3 {
		t.Fatalf("Baseline(3) = %v", b)
	}
}

func TestSoloBasicSanity(t *testing.T) {
	m := model()
	out, co, err := m.Solo(spec("wc", 10240, cluster.Freq2400, hdfs.Block512, 8))
	if err != nil {
		t.Fatal(err)
	}
	if out.Time <= 0 || co.EnergyJ <= 0 || co.EDP <= 0 {
		t.Fatalf("non-positive outcome: %+v", out)
	}
	if out.Time != co.Makespan {
		t.Fatalf("solo time %v != makespan %v", out.Time, co.Makespan)
	}
	if math.Abs(co.AvgPower*co.Makespan-co.EnergyJ) > 1e-6*co.EnergyJ {
		t.Fatal("energy != power × time")
	}
	if math.Abs(co.EDP-co.EnergyJ*co.Makespan) > 1e-6*co.EDP {
		t.Fatal("EDP != energy × makespan")
	}
	if out.Splits != 20 || out.Waves != 3 {
		t.Fatalf("10GB/512MB with 8 mappers: splits=%d waves=%d, want 20/3", out.Splits, out.Waves)
	}
	if out.CPUUtil <= 0.5 {
		t.Fatalf("wordcount CPU util = %v, want compute-bound (>0.5)", out.CPUUtil)
	}
}

func TestComputeAppScalesWithFrequency(t *testing.T) {
	m := model()
	_, lo, _ := m.Solo(spec("wc", 10240, cluster.Freq1200, hdfs.Block512, 8))
	_, hi, _ := m.Solo(spec("wc", 10240, cluster.Freq2400, hdfs.Block512, 8))
	speedup := lo.Makespan / hi.Makespan
	if speedup < 1.45 {
		t.Fatalf("compute app speedup 1.2→2.4 GHz = %v, want ≥1.45", speedup)
	}
}

func TestMemBoundAppInsensitiveToFrequency(t *testing.T) {
	// The LLC-miss CPI term grows with f, so memory-bound applications
	// gain much less from DVFS — the basis of per-class tuning.
	m := model()
	_, lo, _ := m.Solo(spec("cf", 10240, cluster.Freq1200, hdfs.Block256, 8))
	_, hi, _ := m.Solo(spec("cf", 10240, cluster.Freq2400, hdfs.Block256, 8))
	mSpeed := lo.Makespan / hi.Makespan
	_, wlo, _ := m.Solo(spec("wc", 10240, cluster.Freq1200, hdfs.Block256, 8))
	_, whi, _ := m.Solo(spec("wc", 10240, cluster.Freq2400, hdfs.Block256, 8))
	cSpeed := wlo.Makespan / whi.Makespan
	if mSpeed >= cSpeed-0.15 {
		t.Fatalf("mem-bound DVFS speedup %v not clearly below compute %v", mSpeed, cSpeed)
	}
}

func TestIOBoundAppInsensitiveToFrequencyAndMappers(t *testing.T) {
	m := model()
	_, lo, _ := m.Solo(spec("st", 10240, cluster.Freq1200, hdfs.Block512, 4))
	_, hi, _ := m.Solo(spec("st", 10240, cluster.Freq2400, hdfs.Block512, 4))
	if sp := lo.Makespan / hi.Makespan; sp > 1.3 {
		t.Fatalf("I/O-bound DVFS speedup = %v, want small", sp)
	}
	_, m4, _ := m.Solo(spec("st", 10240, cluster.Freq1600, hdfs.Block512, 4))
	_, m8, _ := m.Solo(spec("st", 10240, cluster.Freq1600, hdfs.Block512, 8))
	if sp := m4.Makespan / m8.Makespan; sp > 1.25 {
		t.Fatalf("I/O-bound mapper speedup 4→8 = %v, want ~flat (disk-limited)", sp)
	}
}

func TestIOBoundLowUtilHighIOWait(t *testing.T) {
	m := model()
	out, _, _ := m.Solo(spec("st", 10240, cluster.Freq1600, hdfs.Block512, 4))
	if out.CPUUtil > 0.5 {
		t.Fatalf("sort CPU util = %v, want low", out.CPUUtil)
	}
	if out.IOWaitFrac < 0.3 {
		t.Fatalf("sort iowait = %v, want high", out.IOWaitFrac)
	}
}

func TestBlockSizeAmortizesStartupAtOneMapper(t *testing.T) {
	m := model()
	_, small, _ := m.Solo(spec("gp", 10240, cluster.Freq2400, hdfs.Block64, 1))
	_, large, _ := m.Solo(spec("gp", 10240, cluster.Freq2400, hdfs.Block1024, 1))
	if small.Makespan <= large.Makespan {
		t.Fatalf("64MB (%vs) should be slower than 1024MB (%vs) at m=1 (160 task startups)",
			small.Makespan, large.Makespan)
	}
	if ratio := small.Makespan / large.Makespan; ratio < 1.5 {
		t.Fatalf("block-size speedup at m=1 = %v, want substantial", ratio)
	}
}

func TestLargeBlocksThrashAtHighMappers(t *testing.T) {
	// 8 mappers × (0.6·1024MB buffers + 760MB working set) far exceeds
	// 8 GB of node memory: the model must charge a thrash penalty, making
	// large blocks a poor choice at a high mapper count — the B×m
	// interaction behind the paper's concurrent-tuning argument.
	m := model()
	_, big, _ := m.Solo(spec("cf", 10240, cluster.Freq2400, hdfs.Block1024, 8))
	_, mid, _ := m.Solo(spec("cf", 10240, cluster.Freq2400, hdfs.Block256, 8))
	if big.EDP <= mid.EDP {
		t.Fatalf("1024MB blocks at m=8 (EDP %g) should thrash vs 256MB (EDP %g)", big.EDP, mid.EDP)
	}
}

func TestPairValidation(t *testing.T) {
	m := model()
	a := spec("wc", 1024, cluster.Freq2400, hdfs.Block256, 5)
	b := spec("st", 1024, cluster.Freq2400, hdfs.Block256, 4)
	if _, err := m.Pair(a, b); err == nil {
		t.Fatal("9 mappers on 8 cores accepted")
	}
	bad := a
	bad.Cfg.Freq = 1.1
	if _, err := m.Pair(bad, b); err == nil {
		t.Fatal("invalid frequency accepted")
	}
	if _, err := m.CoLocate(nil); err == nil {
		t.Fatal("empty co-location accepted")
	}
	neg := a
	neg.DataMB = -1
	neg.Cfg.Mappers = 2
	if _, err := m.Pair(neg, b); err == nil {
		t.Fatal("negative data size accepted")
	}
}

func TestPairSymmetry(t *testing.T) {
	m := model()
	a := spec("wc", 5120, cluster.Freq2400, hdfs.Block256, 4)
	b := spec("st", 5120, cluster.Freq1600, hdfs.Block512, 4)
	ab, err := m.Pair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := m.Pair(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab.EDP-ba.EDP) > 1e-6*ab.EDP {
		t.Fatalf("pair EDP not symmetric: %v vs %v", ab.EDP, ba.EDP)
	}
	if math.Abs(ab.Apps[0].Time-ba.Apps[1].Time) > 1e-6*ab.Apps[0].Time {
		t.Fatal("per-app outcomes not mirrored")
	}
}

func TestCoLocationSharesDisk(t *testing.T) {
	// Two sorts together must be slower each than one sort alone with the
	// same per-app config, but much faster than running serially.
	m := model()
	s := spec("st", 10240, cluster.Freq1600, hdfs.Block512, 4)
	_, solo, _ := m.Solo(s)
	pair, err := m.Pair(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Makespan <= solo.Makespan {
		t.Fatalf("co-located sorts (%vs) faster than solo (%vs)?", pair.Makespan, solo.Makespan)
	}
	if pair.Makespan >= 2*solo.Makespan {
		t.Fatalf("co-located sorts (%vs) no better than serial (%vs)", pair.Makespan, 2*solo.Makespan)
	}
}

func TestColocationBeyondTwoDegrades(t *testing.T) {
	// §4.2: co-locating 4+ applications at a node degrades EDP vs 2.
	m := model()
	mk := func(names []string, mappers int) []RunSpec {
		var out []RunSpec
		for _, n := range names {
			out = append(out, spec(n, 10240, cluster.Freq2000, hdfs.Block256, mappers))
		}
		return out
	}
	two, err := m.CoLocate(mk([]string{"st", "ts"}, 4))
	if err != nil {
		t.Fatal(err)
	}
	four, err := m.CoLocate(mk([]string{"st", "ts", "st", "ts"}, 2))
	if err != nil {
		t.Fatal(err)
	}
	// EDP per unit of work: four apps process twice the data, so compare
	// the four-way EDP against two back-to-back two-way runs
	// (E doubles, T doubles → EDP ×4).
	if four.EDP <= 4*two.EDP {
		t.Fatalf("4-way co-location EDP %g not worse than two 2-way runs %g", four.EDP, 4*two.EDP)
	}
}

func TestContentionRelaxesAfterFinish(t *testing.T) {
	// A short job co-located with a long one: the long job's completion
	// must land between full-contention and no-contention estimates.
	m := model()
	long := spec("cf", 10240, cluster.Freq2400, hdfs.Block256, 4)
	short := spec("gp", 1024, cluster.Freq2400, hdfs.Block256, 4)
	_, soloLong, _ := m.Solo(long)
	pair, err := m.Pair(long, short)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Apps[0].Time < soloLong.Makespan {
		t.Fatal("co-located long job finished faster than solo")
	}
	if pair.Apps[1].Time >= pair.Apps[0].Time {
		t.Fatal("short job did not finish first")
	}
	if pair.Makespan != pair.Apps[0].Time {
		t.Fatal("makespan != last finisher")
	}
}

func TestDeterminism(t *testing.T) {
	m := model()
	s1 := spec("ts", 5120, cluster.Freq2000, hdfs.Block256, 4)
	s2 := spec("km", 5120, cluster.Freq1600, hdfs.Block512, 4)
	a, _ := m.Pair(s1, s2)
	b, _ := m.Pair(s1, s2)
	if a.EDP != b.EDP || a.Makespan != b.Makespan {
		t.Fatal("model is not deterministic")
	}
}

func TestWithNoise(t *testing.T) {
	base := model()
	noisy := base.WithNoise(0.05, sim.NewRNG(1))
	s := spec("wc", 1024, cluster.Freq2400, hdfs.Block256, 4)
	_, a, _ := noisy.Solo(s)
	_, b, _ := noisy.Solo(s)
	if a.Makespan == b.Makespan {
		t.Fatal("noisy model returned identical times")
	}
	// The base model must remain noise-free.
	_, c, _ := base.Solo(s)
	_, d, _ := base.Solo(s)
	if c.Makespan != d.Makespan {
		t.Fatal("WithNoise mutated the base model")
	}
}

func TestTelemetryMapping(t *testing.T) {
	m := model()
	out, _, _ := m.Solo(spec("st", 5120, cluster.Freq1600, hdfs.Block256, 4))
	tl := out.Telemetry()
	if tl.ExecTime != out.Time || tl.EffIPC != out.EffIPC || tl.ReadMB != out.ReadMB {
		t.Fatalf("telemetry mismatch: %+v vs %+v", tl, out)
	}
	if tl.ReadMB < 5120 {
		t.Fatalf("sort must read at least its input: %v", tl.ReadMB)
	}
	if tl.WrittenMB < 5120 {
		t.Fatalf("sort writes its full output: %v", tl.WrittenMB)
	}
}

func TestEDPPositivityProperty(t *testing.T) {
	m := model()
	appNames := []string{"wc", "st", "gp", "ts", "cf"}
	f := func(ai, fi, bi uint8, mappers uint8, dataRaw uint16) bool {
		a := workloads.MustByName(appNames[int(ai)%len(appNames)])
		cfg := Config{
			Freq:    cluster.Frequencies()[int(fi)%4],
			Block:   hdfs.BlockSizes()[int(bi)%5],
			Mappers: 1 + int(mappers)%8,
		}
		data := float64(dataRaw%20000) + 100
		_, co, err := m.Solo(RunSpec{App: a, DataMB: data, Cfg: cfg})
		if err != nil {
			return false
		}
		return co.EDP > 0 && co.EnergyJ > 0 && co.Makespan > 0 &&
			!math.IsNaN(co.EDP) && !math.IsInf(co.EDP, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMoreDataTakesLonger(t *testing.T) {
	m := model()
	f := func(raw uint16) bool {
		d := float64(raw%10000) + 200
		_, small, _ := m.Solo(spec("ts", d, cluster.Freq2000, hdfs.Block256, 4))
		_, large, _ := m.Solo(spec("ts", d*2, cluster.Freq2000, hdfs.Block256, 4))
		return large.Makespan > small.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroDataDegenerates(t *testing.T) {
	m := model()
	_, co, err := m.Solo(spec("wc", 0, cluster.Freq2400, hdfs.Block256, 4))
	if err != nil {
		t.Fatal(err)
	}
	if co.Makespan > m.JobOverheadSec+1 {
		t.Fatalf("empty job took %vs", co.Makespan)
	}
}

func TestMemBoundPrefersMaxCoresWhenPaired(t *testing.T) {
	// The paper's Fig. 5 discussion: an M application paired with an I
	// application grabs nearly all cores (e.g. 7) and the I app gets few.
	m := model()
	bestEDP := math.Inf(1)
	var bestM, bestI int
	for _, pc := range PairConfigs(8) {
		co, err := m.Pair(
			RunSpec{App: workloads.MustByName("cf"), DataMB: 10240, Cfg: pc[0]},
			RunSpec{App: workloads.MustByName("st"), DataMB: 10240, Cfg: pc[1]},
		)
		if err != nil {
			continue
		}
		if co.EDP < bestEDP {
			bestEDP = co.EDP
			bestM, bestI = pc[0].Mappers, pc[1].Mappers
		}
	}
	if bestM <= bestI {
		t.Fatalf("tuned I-M split gives M %d mappers vs I %d; M should dominate", bestM, bestI)
	}
	if bestM < 5 {
		t.Fatalf("memory-bound app got only %d mappers when paired", bestM)
	}
}

func TestSteadyMatchesSolo(t *testing.T) {
	m := model()
	s := spec("ts", 5120, cluster.Freq2000, hdfs.Block256, 4)
	sts, watts, err := m.Steady([]RunSpec{s}[:])
	if err != nil {
		t.Fatal(err)
	}
	_, co, err := m.Solo(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sts[0].JobTime-co.Makespan) > 1e-9 {
		t.Fatalf("Steady job time %v != solo makespan %v", sts[0].JobTime, co.Makespan)
	}
	if watts <= m.IdlePower() {
		t.Fatalf("active node power %v not above idle %v", watts, m.IdlePower())
	}
}

func TestSteadyEmptyIsIdle(t *testing.T) {
	m := model()
	sts, watts, err := m.Steady(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 0 {
		t.Fatalf("empty set produced states: %v", sts)
	}
	if watts != m.IdlePower() {
		t.Fatalf("empty node draws %v, want idle %v", watts, m.IdlePower())
	}
}

func TestSteadyValidation(t *testing.T) {
	m := model()
	a := spec("wc", 1024, cluster.Freq2400, hdfs.Block256, 5)
	b := spec("st", 1024, cluster.Freq2400, hdfs.Block256, 4)
	if _, _, err := m.Steady([]RunSpec{a, b}); err == nil {
		t.Fatal("overcommitted Steady accepted")
	}
	bad := a
	bad.Cfg.Block = 99
	if _, _, err := m.Steady([]RunSpec{bad}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestSteadyContentionSlowsBoth(t *testing.T) {
	m := model()
	a := spec("st", 10240, cluster.Freq1600, hdfs.Block512, 4)
	b := spec("ts", 10240, cluster.Freq1600, hdfs.Block512, 4)
	soloA, _, err := m.Steady([]RunSpec{a})
	if err != nil {
		t.Fatal(err)
	}
	soloB, _, err := m.Steady([]RunSpec{b})
	if err != nil {
		t.Fatal(err)
	}
	both, _, err := m.Steady([]RunSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if both[0].JobTime <= soloA[0].JobTime || both[1].JobTime <= soloB[0].JobTime {
		t.Fatalf("two I/O-heavy apps on one disk did not slow down: %v/%v vs %v/%v",
			both[0].JobTime, both[1].JobTime, soloA[0].JobTime, soloB[0].JobTime)
	}
}

func TestEnergyAboveIdleFloorProperty(t *testing.T) {
	m := model()
	f := func(ai, bi, fi uint8, mappers uint8, raw uint16) bool {
		names := []string{"wc", "st", "gp", "ts", "cf", "km"}
		a := workloads.MustByName(names[int(ai)%len(names)])
		cfg := Config{
			Freq:    cluster.Frequencies()[int(fi)%4],
			Block:   hdfs.BlockSizes()[int(bi)%5],
			Mappers: 1 + int(mappers)%8,
		}
		data := float64(raw%20000) + 200
		_, co, err := m.Solo(RunSpec{App: a, DataMB: data, Cfg: cfg})
		if err != nil {
			return false
		}
		// A run can never use less energy than an idle node over the
		// same span, and never more than the max-power envelope.
		floor := m.IdlePower() * co.Makespan
		ceiling := 80.0 * co.Makespan
		return co.EnergyJ >= floor && co.EnergyJ <= ceiling
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPairEnergyExceedsBusierSolo(t *testing.T) {
	m := model()
	a := spec("wc", 5120, cluster.Freq2400, hdfs.Block256, 4)
	b := spec("st", 5120, cluster.Freq1600, hdfs.Block512, 4)
	pair, err := m.Pair(a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, soloA, _ := m.Solo(a)
	_, soloB, _ := m.Solo(b)
	if pair.EnergyJ <= soloA.EnergyJ || pair.EnergyJ <= soloB.EnergyJ {
		t.Fatalf("pair energy %v below a solo run (%v, %v)", pair.EnergyJ, soloA.EnergyJ, soloB.EnergyJ)
	}
	if pair.EnergyJ >= soloA.EnergyJ+soloB.EnergyJ {
		t.Fatalf("co-location saved no energy: %v vs %v serial",
			pair.EnergyJ, soloA.EnergyJ+soloB.EnergyJ)
	}
}

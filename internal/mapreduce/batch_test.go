package mapreduce

import (
	"testing"

	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// TestEvaluatorMatchesCoLocate is the bit-determinism contract of the
// batched API: every scalar PairMetrics/PairBatch produces must equal
// the serial CoLocate path exactly, for every configuration in the
// joint space.
func TestEvaluatorMatchesCoLocate(t *testing.T) {
	m := model()
	e := m.NewEvaluator()
	a := RunSpec{App: workloads.MustByName("wc"), DataMB: 5 * 1024}
	b := RunSpec{App: workloads.MustByName("st"), DataMB: 1024}
	cfgs := PairConfigsCached(m.Spec.Cores)
	// Every 97th point keeps the sweep fast while covering all knob
	// dimensions.
	var sample [][2]Config
	for i := 0; i < len(cfgs); i += 97 {
		sample = append(sample, cfgs[i])
	}
	out := make([]CoMetrics, len(sample))
	if err := e.PairBatch(a, b, sample, out); err != nil {
		t.Fatal(err)
	}
	for i, pc := range sample {
		a.Cfg, b.Cfg = pc[0], pc[1]
		co, err := m.Pair(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if co.Metrics() != out[i] {
			t.Fatalf("config %v: batch %+v != serial %+v", pc, out[i], co.Metrics())
		}
	}
}

// TestEvaluatorNoisyMatchesPair checks the noisy-model fallback keeps
// the RNG stream identical to the full path: interleaving PairMetrics
// and Pair calls on same-seeded models must agree draw for draw.
func TestEvaluatorNoisyMatchesPair(t *testing.T) {
	m1 := model().WithNoise(0.05, sim.NewRNG(7))
	m2 := model().WithNoise(0.05, sim.NewRNG(7))
	e := m1.NewEvaluator()
	a := spec("wc", 5*1024, 2.4, 256, 4)
	b := spec("st", 1024, 1.6, 512, 3)
	for i := 0; i < 4; i++ {
		got, err := e.PairMetrics(a, b)
		if err != nil {
			t.Fatal(err)
		}
		co, err := m2.Pair(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != co.Metrics() {
			t.Fatalf("call %d: noisy metrics %+v != serial %+v", i, got, co.Metrics())
		}
	}
}

// TestEvaluatorZeroAlloc pins the whole point of the batched API: after
// warm-up, a PairMetrics evaluation performs no heap allocations.
func TestEvaluatorZeroAlloc(t *testing.T) {
	m := model()
	e := m.NewEvaluator()
	a := spec("wc", 5*1024, 2.4, 256, 4)
	b := spec("st", 1024, 1.6, 512, 3)
	if _, err := e.PairMetrics(a, b); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.PairMetrics(a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("PairMetrics allocates %.1f objects per call, want 0", allocs)
	}
}

// TestPairBatchLengthMismatch exercises the defensive check.
func TestPairBatchLengthMismatch(t *testing.T) {
	m := model()
	e := m.NewEvaluator()
	a := spec("wc", 1024, 2.4, 256, 4)
	b := spec("st", 1024, 1.6, 512, 3)
	if err := e.PairBatch(a, b, make([][2]Config, 3), make([]CoMetrics, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// BenchmarkPairMetrics measures the batched single evaluation — the
// unit the brute-force searches are built from — and its allocs/op.
func BenchmarkPairMetrics(b *testing.B) {
	m := model()
	e := m.NewEvaluator()
	ra := spec("wc", 5*1024, 2.4, 256, 4)
	rb := spec("st", 1024, 1.6, 512, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PairMetrics(ra, rb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairSerial is the pre-batch baseline for comparison.
func BenchmarkPairSerial(b *testing.B) {
	m := model()
	ra := spec("wc", 5*1024, 2.4, 256, 4)
	rb := spec("st", 1024, 1.6, 512, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pair(ra, rb); err != nil {
			b.Fatal(err)
		}
	}
}

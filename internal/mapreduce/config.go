// Package mapreduce is the execution model at the centre of the
// reproduction: it predicts execution time, power, energy and EDP for
// Hadoop MapReduce applications running solo or co-located on a
// microserver node, as a function of the three tuning knobs the paper
// studies — CPU frequency, HDFS block size, and the number of mappers
// running simultaneously on the node.
//
// The model is analytic (closed-form with a small fixed-point iteration
// for disk contention) so the brute-force oracle searches of the paper
// (84,480 runs' worth of configuration space) evaluate in milliseconds.
// See DESIGN.md §4 for the model equations and the calibration targets.
package mapreduce

import (
	"fmt"
	"sync"

	"ecost/internal/cluster"
	"ecost/internal/hdfs"
)

// Config is one point in the tuning space of a single application:
// the paper's three interdependent knobs.
type Config struct {
	Freq    cluster.FreqGHz
	Block   hdfs.BlockMB
	Mappers int
}

// String renders a config the way Table 2 of the paper does:
// "freq, hdfs, map".
func (c Config) String() string {
	return fmt.Sprintf("%.1f,%d,%d", float64(c.Freq), int(c.Block), c.Mappers)
}

// Validate checks the config against the studied knob ranges; maxMappers
// is the number of cores available to this application on its node.
func (c Config) Validate(maxMappers int) error {
	if !cluster.ValidFreq(c.Freq) {
		return fmt.Errorf("mapreduce: config %v: frequency not a platform DVFS level", c)
	}
	if !hdfs.ValidBlock(c.Block) {
		return fmt.Errorf("mapreduce: config %v: block size not in studied set", c)
	}
	if c.Mappers < 1 || c.Mappers > maxMappers {
		return fmt.Errorf("mapreduce: config %v: mappers out of range [1,%d]", c, maxMappers)
	}
	return nil
}

// Baseline is the normalization reference used throughout the paper's
// EDP-improvement figures: 64 MB HDFS blocks at the minimum operating
// frequency (mappers vary per experiment).
func Baseline(mappers int) Config {
	return Config{Freq: cluster.MinFreq, Block: hdfs.Block64, Mappers: mappers}
}

// AllConfigs enumerates the full tuning space for one application with up
// to maxMappers mappers: |freqs| × |blocks| × maxMappers points (the
// paper's 4 × 5 × 8 = 160 per standalone application).
func AllConfigs(maxMappers int) []Config {
	if maxMappers < 1 {
		return nil
	}
	out := make([]Config, 0, 20*maxMappers)
	for _, f := range cluster.Frequencies() {
		for _, b := range hdfs.BlockSizes() {
			for m := 1; m <= maxMappers; m++ {
				out = append(out, Config{Freq: f, Block: b, Mappers: m})
			}
		}
	}
	return out
}

var pairConfigCache sync.Map // cores → [][2]Config

// PairConfigsCached returns PairConfigs(cores), memoized. The slice is
// shared: callers must not mutate it. The oracle searches and the
// MLM-STP argmin call this on every pair, so the 11,200-element
// enumeration is built once per core count.
func PairConfigsCached(cores int) [][2]Config {
	if v, ok := pairConfigCache.Load(cores); ok {
		return v.([][2]Config)
	}
	pcs := PairConfigs(cores)
	pairConfigCache.Store(cores, pcs)
	return pcs
}

// PairConfigs enumerates joint tuning points for two co-located
// applications whose mapper counts must share the node's cores:
// m1 ≥ 1, m2 ≥ 1, m1+m2 ≤ cores. This is COLAO's brute-force space.
func PairConfigs(cores int) [][2]Config {
	var out [][2]Config
	for _, f1 := range cluster.Frequencies() {
		for _, b1 := range hdfs.BlockSizes() {
			for _, f2 := range cluster.Frequencies() {
				for _, b2 := range hdfs.BlockSizes() {
					for m1 := 1; m1 < cores; m1++ {
						for m2 := 1; m1+m2 <= cores; m2++ {
							out = append(out, [2]Config{
								{Freq: f1, Block: b1, Mappers: m1},
								{Freq: f2, Block: b2, Mappers: m2},
							})
						}
					}
				}
			}
		}
	}
	return out
}

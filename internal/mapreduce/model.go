package mapreduce

import (
	"fmt"

	"ecost/internal/cluster"
	"ecost/internal/metrics"
	"ecost/internal/perfctr"
	"ecost/internal/power"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// RunSpec is one application's placement on a node: what it runs, how
// much data it processes on this node, and its tuning configuration.
type RunSpec struct {
	App    workloads.App
	DataMB float64
	Cfg    Config
}

// Outcome is the model's prediction for one application's run.
type Outcome struct {
	// Time is the application's completion time in seconds (for a
	// co-located run, measured from the co-located start).
	Time float64
	// MapTime and ReduceTime break the job into its phases (under the
	// initial contention conditions).
	MapTime    float64
	ReduceTime float64

	// CPUUtil is the average busy fraction of the application's
	// allocated cores; IOWaitFrac the fraction stalled on I/O.
	CPUUtil    float64
	IOWaitFrac float64

	// ReadMB / WrittenMB are total disk traffic over the job.
	ReadMB    float64
	WrittenMB float64

	// EffIPC / EffLLCMPKI are the achieved counter values including
	// co-runner contention — what `perf` would report.
	EffIPC     float64
	EffLLCMPKI float64

	// MemMB is the resident working set (tasks + buffers).
	MemMB float64

	// Waves / Splits record the map-phase shape for diagnostics.
	Waves  int
	Splits int
}

// Telemetry converts the outcome into the measurement substrate's input.
func (o Outcome) Telemetry() perfctr.Telemetry {
	return perfctr.Telemetry{
		ExecTime:    o.Time,
		CPUBusyFrac: o.CPUUtil,
		IOWaitFrac:  o.IOWaitFrac,
		ReadMB:      o.ReadMB,
		WrittenMB:   o.WrittenMB,
		EffIPC:      o.EffIPC,
		EffLLCMPKI:  o.EffLLCMPKI,
		MemFootMB:   o.MemMB,
	}
}

// CoOutcome is the node-level result of running one or more applications
// together on a node: the paper's unit of EDP accounting.
type CoOutcome struct {
	Apps     []Outcome // aligned with the input specs
	Makespan float64   // seconds until the last application finishes
	EnergyJ  float64   // whole-node energy over the makespan
	AvgPower float64   // EnergyJ / Makespan
	EDP      float64   // EnergyJ × Makespan
}

// Model predicts MapReduce execution on one node. The zero value is not
// usable; construct with NewModel. All knobs are exported so ablation
// experiments can perturb them.
type Model struct {
	Spec cluster.NodeSpec

	// TaskStartupSec is the per-task constant cost (JVM spawn, task init).
	TaskStartupSec float64
	// JobOverheadSec is the per-job setup/teardown cost.
	JobOverheadSec float64
	// MemLatencyNs is the DRAM access latency; the LLC-miss CPI penalty is
	// MPKI/1000 × MemLatencyNs × f, which is what makes memory-bound
	// applications insensitive to DVFS.
	MemLatencyNs float64
	// OverlapFrac is how much of a task's I/O hides under its compute.
	OverlapFrac float64
	// LLCMB is the shared last-level cache size.
	LLCMB float64
	// LLCBeta scales co-runner LLC MPKI inflation:
	// mpki' = mpki·(1 + LLCBeta·fp/(fp+LLCMB)).
	LLCBeta float64
	// MemCapFrac is the usable fraction of node memory before the model
	// charges a thrashing penalty.
	MemCapFrac float64
	// ThrashK scales the extra I/O charged per unit of memory
	// over-subscription.
	ThrashK float64
	// BufFracOfBlock is the per-mapper sort-buffer charge as a fraction
	// of the block size (io.sort.mb scaled with the split).
	BufFracOfBlock float64
	// SeekPenalty scales the loss of effective disk bandwidth as more
	// distinct jobs interleave bursty streams on one disk:
	// bw_eff = bw/(1+SeekPenalty·(jobs−1)²). This convex penalty is why
	// co-locating beyond two applications degrades EDP (§4.2).
	SeekPenalty float64
	// JobMemMB is the fixed per-job resident overhead (framework daemons,
	// job client, JVM heaps) independent of the mapper count.
	JobMemMB float64

	// Noise, when positive, applies relative run-to-run jitter to times
	// and power using rng; leave zero for the deterministic oracle runs.
	Noise float64
	rng   *sim.RNG

	// Metrics, when non-nil, receives steady-state telemetry from the
	// online scheduling path (phase timings, contention slowdown). The
	// oracle's brute-force searches go through CoLocate/evaluate and
	// stay uninstrumented, so a scheduler-attached registry never taxes
	// the search hot path.
	Metrics *metrics.Registry
}

// NewModel returns the calibrated model for the given node spec.
func NewModel(spec cluster.NodeSpec) *Model {
	return &Model{
		Spec:           spec,
		TaskStartupSec: 3.0,
		JobOverheadSec: 6.0,
		MemLatencyNs:   80,
		OverlapFrac:    0.65,
		LLCMB:          4,
		LLCBeta:        0.30,
		MemCapFrac:     0.85,
		ThrashK:        2.0,
		BufFracOfBlock: 0.6,
		SeekPenalty:    0.06,
		JobMemMB:       400,
	}
}

// WithNoise returns a copy of the model that jitters results with the
// given relative σ, seeded from rng. Used by the "measured run"
// experiments; the oracle searches use the noise-free model.
func (m *Model) WithNoise(rel float64, rng *sim.RNG) *Model {
	c := *m
	c.Noise = rel
	c.rng = rng
	return &c
}

// steady holds one application's behaviour while a fixed set of
// applications co-runs.
type steady struct {
	T          float64 // full-job time under this contention
	mapTime    float64
	redTime    float64
	util       float64 // avg CPU busy fraction of allocated cores
	iowait     float64
	readMB     float64
	writeMB    float64
	ipc        float64
	mpki       float64
	memMB      float64
	ioRateMBps float64 // achieved average disk throughput
	splits     int
	waves      int
}

// evaluate computes the steady-state behaviour of every application in
// specs while they all co-run. It resolves disk contention by damped
// fixed-point iteration on the per-app achieved I/O rates, with each
// app's burst bandwidth capped by its disk duty cycle and the bandwidth
// left by its co-runners (bursts interleave; see workloads.Profile).
// The returned slice is freshly allocated; hot paths use evaluateInto
// (see batch.go) with a reused scratch instead.
func (m *Model) evaluate(specs []RunSpec) []steady {
	var s evalScratch
	sts := m.evaluateInto(specs, &s)
	out := make([]steady, len(sts))
	copy(out, sts)
	return out
}

// activity converts the active set's steady states into a power-model
// activity snapshot.
func (m *Model) activity(specs []RunSpec, sts []steady, active []bool) power.Activity {
	var act power.Activity
	var io, membw float64
	for i, s := range specs {
		if !active[i] {
			continue
		}
		act.Loads = append(act.Loads, power.CoreLoad{
			Cores: s.Cfg.Mappers,
			Freq:  s.Cfg.Freq,
			Util:  sts[i].util,
		})
		io += sts[i].ioRateMBps
		membw += float64(s.Cfg.Mappers) * s.App.Profile.MemBWPerCoreGBps * sts[i].util
	}
	act.DiskBusy = io / m.Spec.DiskBWMBps
	act.MemBWGB = membw
	return act
}

// CoLocate predicts the node-level outcome of running the given
// applications together. Mapper counts must fit the node's cores. As
// applications finish, the survivors speed up (contention relaxes); the
// model handles this with a fluid epoch simulation over the steady
// states of each remaining active set.
func (m *Model) CoLocate(specs []RunSpec) (CoOutcome, error) {
	var s evalScratch
	return m.coLocateInto(specs, &s, make([]Outcome, len(specs)))
}

// Solo predicts a single application running alone on the node.
func (m *Model) Solo(spec RunSpec) (Outcome, CoOutcome, error) {
	co, err := m.CoLocate([]RunSpec{spec})
	if err != nil {
		return Outcome{}, CoOutcome{}, err
	}
	return co.Apps[0], co, nil
}

// Pair predicts two applications co-located on the node.
func (m *Model) Pair(a, b RunSpec) (CoOutcome, error) {
	return m.CoLocate([]RunSpec{a, b})
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SteadyState is the exported per-application view of the contention
// solver, for online schedulers that manage job progress across
// arrival/completion events themselves (internal/core's online mode).
type SteadyState struct {
	// JobTime is the application's full-job time if the current set ran
	// unchanged throughout.
	JobTime float64
	// CPUUtil and IOWait describe the application's cores.
	CPUUtil float64
	IOWait  float64
	// MapTime and ReduceTime split JobTime at the phase boundary under
	// this contention — the split the span tracer uses to place the
	// map → shuffle/reduce transition on a job's timeline.
	MapTime    float64
	ReduceTime float64
}

// Steady solves the contention among the given co-running applications
// and returns each one's steady state plus the whole-node power draw
// while this set runs.
func (m *Model) Steady(specs []RunSpec) ([]SteadyState, float64, error) {
	if len(specs) == 0 {
		return nil, power.NodePower(m.Spec, power.Activity{}), nil
	}
	total := 0
	for _, s := range specs {
		if err := s.Cfg.Validate(m.Spec.Cores); err != nil {
			return nil, 0, err
		}
		total += s.Cfg.Mappers
	}
	if total > m.Spec.Cores {
		return nil, 0, fmt.Errorf("mapreduce: steady: %d mappers exceed %d cores", total, m.Spec.Cores)
	}
	sts := m.evaluate(specs)
	out := make([]SteadyState, len(sts))
	active := make([]bool, len(sts))
	for i, st := range sts {
		out[i] = SteadyState{
			JobTime: st.T, CPUUtil: st.util, IOWait: st.iowait,
			MapTime: st.mapTime, ReduceTime: st.redTime,
		}
		active[i] = true
	}
	watts := power.NodePower(m.Spec, m.activity(specs, sts, active))
	m.observeSteady(specs, sts)
	return out, watts, nil
}

// observeSteady records steady-state telemetry: per-application phase
// timings under the current contention and, for multi-resident sets,
// the contention slowdown factor (co-located job time over the same
// application's solo time at the same configuration). Everything is
// derived from the deterministic model, so the metrics are exact.
func (m *Model) observeSteady(specs []RunSpec, sts []steady) {
	if m.Metrics == nil {
		return
	}
	m.Metrics.Counter("model.steady.calls").Inc()
	mapPhase := m.Metrics.Histogram("model.phase.map_s", metrics.ExpBuckets(16, 2, 14))
	redPhase := m.Metrics.Histogram("model.phase.reduce_s", metrics.ExpBuckets(16, 2, 14))
	for _, st := range sts {
		mapPhase.Observe(st.mapTime)
		redPhase.Observe(st.redTime)
	}
	if len(specs) < 2 {
		return
	}
	slow := m.Metrics.Histogram("model.contention.slowdown", metrics.LinearBuckets(1, 0.25, 17))
	for i := range specs {
		solo := m.evaluate(specs[i : i+1])
		if solo[0].T > 0 {
			slow.Observe(sts[i].T / solo[0].T)
		}
	}
}

// IdlePower returns the node's idle draw — what an empty node burns.
func (m *Model) IdlePower() float64 {
	return power.NodePower(m.Spec, power.Activity{})
}

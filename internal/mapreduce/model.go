package mapreduce

import (
	"fmt"
	"math"

	"ecost/internal/cluster"
	"ecost/internal/hdfs"
	"ecost/internal/metrics"
	"ecost/internal/perfctr"
	"ecost/internal/power"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// RunSpec is one application's placement on a node: what it runs, how
// much data it processes on this node, and its tuning configuration.
type RunSpec struct {
	App    workloads.App
	DataMB float64
	Cfg    Config
}

// Outcome is the model's prediction for one application's run.
type Outcome struct {
	// Time is the application's completion time in seconds (for a
	// co-located run, measured from the co-located start).
	Time float64
	// MapTime and ReduceTime break the job into its phases (under the
	// initial contention conditions).
	MapTime    float64
	ReduceTime float64

	// CPUUtil is the average busy fraction of the application's
	// allocated cores; IOWaitFrac the fraction stalled on I/O.
	CPUUtil    float64
	IOWaitFrac float64

	// ReadMB / WrittenMB are total disk traffic over the job.
	ReadMB    float64
	WrittenMB float64

	// EffIPC / EffLLCMPKI are the achieved counter values including
	// co-runner contention — what `perf` would report.
	EffIPC     float64
	EffLLCMPKI float64

	// MemMB is the resident working set (tasks + buffers).
	MemMB float64

	// Waves / Splits record the map-phase shape for diagnostics.
	Waves  int
	Splits int
}

// Telemetry converts the outcome into the measurement substrate's input.
func (o Outcome) Telemetry() perfctr.Telemetry {
	return perfctr.Telemetry{
		ExecTime:    o.Time,
		CPUBusyFrac: o.CPUUtil,
		IOWaitFrac:  o.IOWaitFrac,
		ReadMB:      o.ReadMB,
		WrittenMB:   o.WrittenMB,
		EffIPC:      o.EffIPC,
		EffLLCMPKI:  o.EffLLCMPKI,
		MemFootMB:   o.MemMB,
	}
}

// CoOutcome is the node-level result of running one or more applications
// together on a node: the paper's unit of EDP accounting.
type CoOutcome struct {
	Apps     []Outcome // aligned with the input specs
	Makespan float64   // seconds until the last application finishes
	EnergyJ  float64   // whole-node energy over the makespan
	AvgPower float64   // EnergyJ / Makespan
	EDP      float64   // EnergyJ × Makespan
}

// Model predicts MapReduce execution on one node. The zero value is not
// usable; construct with NewModel. All knobs are exported so ablation
// experiments can perturb them.
type Model struct {
	Spec cluster.NodeSpec

	// TaskStartupSec is the per-task constant cost (JVM spawn, task init).
	TaskStartupSec float64
	// JobOverheadSec is the per-job setup/teardown cost.
	JobOverheadSec float64
	// MemLatencyNs is the DRAM access latency; the LLC-miss CPI penalty is
	// MPKI/1000 × MemLatencyNs × f, which is what makes memory-bound
	// applications insensitive to DVFS.
	MemLatencyNs float64
	// OverlapFrac is how much of a task's I/O hides under its compute.
	OverlapFrac float64
	// LLCMB is the shared last-level cache size.
	LLCMB float64
	// LLCBeta scales co-runner LLC MPKI inflation:
	// mpki' = mpki·(1 + LLCBeta·fp/(fp+LLCMB)).
	LLCBeta float64
	// MemCapFrac is the usable fraction of node memory before the model
	// charges a thrashing penalty.
	MemCapFrac float64
	// ThrashK scales the extra I/O charged per unit of memory
	// over-subscription.
	ThrashK float64
	// BufFracOfBlock is the per-mapper sort-buffer charge as a fraction
	// of the block size (io.sort.mb scaled with the split).
	BufFracOfBlock float64
	// SeekPenalty scales the loss of effective disk bandwidth as more
	// distinct jobs interleave bursty streams on one disk:
	// bw_eff = bw/(1+SeekPenalty·(jobs−1)²). This convex penalty is why
	// co-locating beyond two applications degrades EDP (§4.2).
	SeekPenalty float64
	// JobMemMB is the fixed per-job resident overhead (framework daemons,
	// job client, JVM heaps) independent of the mapper count.
	JobMemMB float64

	// Noise, when positive, applies relative run-to-run jitter to times
	// and power using rng; leave zero for the deterministic oracle runs.
	Noise float64
	rng   *sim.RNG

	// Metrics, when non-nil, receives steady-state telemetry from the
	// online scheduling path (phase timings, contention slowdown). The
	// oracle's brute-force searches go through CoLocate/evaluate and
	// stay uninstrumented, so a scheduler-attached registry never taxes
	// the search hot path.
	Metrics *metrics.Registry
}

// NewModel returns the calibrated model for the given node spec.
func NewModel(spec cluster.NodeSpec) *Model {
	return &Model{
		Spec:           spec,
		TaskStartupSec: 3.0,
		JobOverheadSec: 6.0,
		MemLatencyNs:   80,
		OverlapFrac:    0.65,
		LLCMB:          4,
		LLCBeta:        0.30,
		MemCapFrac:     0.85,
		ThrashK:        2.0,
		BufFracOfBlock: 0.6,
		SeekPenalty:    0.06,
		JobMemMB:       400,
	}
}

// WithNoise returns a copy of the model that jitters results with the
// given relative σ, seeded from rng. Used by the "measured run"
// experiments; the oracle searches use the noise-free model.
func (m *Model) WithNoise(rel float64, rng *sim.RNG) *Model {
	c := *m
	c.Noise = rel
	c.rng = rng
	return &c
}

// steady holds one application's behaviour while a fixed set of
// applications co-runs.
type steady struct {
	T          float64 // full-job time under this contention
	mapTime    float64
	redTime    float64
	util       float64 // avg CPU busy fraction of allocated cores
	iowait     float64
	readMB     float64
	writeMB    float64
	ipc        float64
	mpki       float64
	memMB      float64
	ioRateMBps float64 // achieved average disk throughput
	splits     int
	waves      int
}

// evaluate computes the steady-state behaviour of every application in
// specs while they all co-run. It resolves disk contention by damped
// fixed-point iteration on the per-app achieved I/O rates, with each
// app's burst bandwidth capped by its disk duty cycle and the bandwidth
// left by its co-runners (bursts interleave; see workloads.Profile).
func (m *Model) evaluate(specs []RunSpec) []steady {
	n := len(specs)
	out := make([]steady, n)
	if n == 0 {
		return out
	}
	// Interleaving distinct jobs' bursty streams costs seeks.
	bw := m.Spec.DiskBWMBps / (1 + m.SeekPenalty*float64((n-1)*(n-1)))

	// Memory pressure is set-wide: per-job fixed overhead plus mappers'
	// buffers and working sets.
	var memTotal float64
	for _, s := range specs {
		perTask := m.BufFracOfBlock*float64(s.Cfg.Block) + s.App.Profile.MemFootprintMBPerTask
		memTotal += m.JobMemMB + float64(s.Cfg.Mappers)*perTask
	}
	memCap := m.MemCapFrac * m.Spec.MemGB * 1024
	thrash := 0.0
	if memTotal > memCap {
		thrash = m.ThrashK * (memTotal/memCap - 1)
	}

	// Memory-bandwidth pressure scales the LLC miss latency (queueing).
	var bwDemand float64
	for _, s := range specs {
		bwDemand += float64(s.Cfg.Mappers) * s.App.Profile.MemBWPerCoreGBps
	}
	bwScale := 1.0
	if m.Spec.MemBWGBps > 0 && bwDemand > m.Spec.MemBWGBps {
		bwScale = bwDemand / m.Spec.MemBWGBps
	}

	// Co-runner LLC pressure inflates each app's MPKI (saturating). The
	// pressure is app-level rather than per-mapper: a job's tasks share
	// most of their working set (dictionaries, model state), so adding
	// mappers of the same job barely grows its LLC footprint.
	mpki := make([]float64, n)
	for i, s := range specs {
		var otherFP float64
		for j, o := range specs {
			if j != i {
				otherFP += o.App.Profile.CacheFootprintMB
			}
		}
		infl := 1 + m.LLCBeta*otherFP/(otherFP+m.LLCMB)
		mpki[i] = s.App.Profile.LLCMPKI * infl
	}

	// Damped fixed point on achieved disk rates.
	rate := make([]float64, n) // achieved MB/s per app
	type phase struct{ cpu, ioMB float64 }
	mapPh := make([]phase, n)
	redPh := make([]phase, n)
	splitMB := make([]float64, n)
	splits := make([]int, n)
	cpi := make([]float64, n)
	for i, s := range specs {
		p := s.App.Profile
		f := float64(s.Cfg.Freq)
		cpi[i] = 1/p.BaseIPC + mpki[i]/1000*m.MemLatencyNs*f*bwScale
		splits[i] = hdfs.Splits(s.DataMB, s.Cfg.Block)
		if splits[i] == 0 {
			continue
		}
		splitMB[i] = s.DataMB / float64(splits[i])
		mapPh[i] = phase{
			cpu:  p.MapInstrPerByte * splitMB[i] * 1e6 * cpi[i] / (f * 1e9),
			ioMB: splitMB[i] * (1 + p.SpillFactor) * (1 + thrash),
		}
		interMB := s.DataMB * p.ShuffleSel
		outMB := s.DataMB * p.OutputSel
		r := float64(s.Cfg.Mappers) // reducers = mapper slots
		redPh[i] = phase{
			cpu:  p.ReduceInstrPerByte * interMB / r * 1e6 * cpi[i] / (f * 1e9),
			ioMB: (interMB + outMB) / r * (1 + thrash),
		}
	}

	taskTime := func(i int, ph phase, burstBW float64) (t, tio float64) {
		mi := float64(specs[i].Cfg.Mappers)
		tio = mi * ph.ioMB / burstBW // m concurrent tasks share the app's burst bandwidth
		t = math.Max(ph.cpu, tio) + (1-m.OverlapFrac)*math.Min(ph.cpu, tio) + m.TaskStartupSec
		return t, tio
	}

	for iter := 0; iter < 8; iter++ {
		var sumRates float64
		for _, r := range rate {
			sumRates += r
		}
		for i, s := range specs {
			if splits[i] == 0 {
				continue
			}
			duty := s.App.Profile.DiskDutyCap
			avail := bw - (sumRates - rate[i])
			if avail < 0.1*bw {
				avail = 0.1 * bw
			}
			burst := duty * bw
			if burst > avail {
				burst = avail
			}
			tMap, _ := taskTime(i, mapPh[i], burst)
			tRed, _ := taskTime(i, redPh[i], burst)
			waves := (splits[i] + s.Cfg.Mappers - 1) / s.Cfg.Mappers
			mapTime := float64(waves) * tMap
			total := mapTime + tRed
			mi := float64(s.Cfg.Mappers)
			newRate := (float64(splits[i])*mapPh[i].ioMB + mi*redPh[i].ioMB) / total
			rate[i] = 0.5*rate[i] + 0.5*newRate
		}
	}

	var sumRates float64
	for _, r := range rate {
		sumRates += r
	}

	for i, s := range specs {
		if splits[i] == 0 {
			out[i] = steady{T: m.JobOverheadSec}
			continue
		}
		p := s.App.Profile
		duty := p.DiskDutyCap
		avail := bw - (sumRates - rate[i])
		if avail < 0.1*bw {
			avail = 0.1 * bw
		}
		burst := duty * bw
		if burst > avail {
			burst = avail
		}
		tMap, tioMap := taskTime(i, mapPh[i], burst)
		tRed, tioRed := taskTime(i, redPh[i], burst)
		waves := (splits[i] + s.Cfg.Mappers - 1) / s.Cfg.Mappers
		mapTime := float64(waves) * tMap
		T := m.JobOverheadSec + mapTime + tRed

		// Busy fraction of the app's cores, time-weighted over phases.
		uMap := mapPh[i].cpu / tMap
		uRed := redPh[i].cpu / tRed
		util := (uMap*mapTime + uRed*tRed) / (mapTime + tRed)
		wMap := math.Max(0, tioMap-m.OverlapFrac*mapPh[i].cpu) / tMap
		wRed := math.Max(0, tioRed-m.OverlapFrac*redPh[i].cpu) / tRed
		iowait := (wMap*mapTime + wRed*tRed) / (mapTime + tRed)

		interMB := s.DataMB * p.ShuffleSel
		outMB := s.DataMB * p.OutputSel
		out[i] = steady{
			T:          T,
			mapTime:    mapTime,
			redTime:    tRed,
			util:       clamp01(util),
			iowait:     clamp01(iowait),
			readMB:     s.DataMB + interMB,
			writeMB:    s.DataMB*p.SpillFactor + interMB + outMB,
			ipc:        1 / cpi[i],
			mpki:       mpki[i],
			memMB:      float64(s.Cfg.Mappers) * (m.BufFracOfBlock*float64(s.Cfg.Block) + p.MemFootprintMBPerTask),
			ioRateMBps: rate[i],
			splits:     splits[i],
			waves:      waves,
		}
	}
	return out
}

// activity converts the active set's steady states into a power-model
// activity snapshot.
func (m *Model) activity(specs []RunSpec, sts []steady, active []bool) power.Activity {
	var act power.Activity
	var io, membw float64
	for i, s := range specs {
		if !active[i] {
			continue
		}
		act.Loads = append(act.Loads, power.CoreLoad{
			Cores: s.Cfg.Mappers,
			Freq:  s.Cfg.Freq,
			Util:  sts[i].util,
		})
		io += sts[i].ioRateMBps
		membw += float64(s.Cfg.Mappers) * s.App.Profile.MemBWPerCoreGBps * sts[i].util
	}
	act.DiskBusy = io / m.Spec.DiskBWMBps
	act.MemBWGB = membw
	return act
}

// CoLocate predicts the node-level outcome of running the given
// applications together. Mapper counts must fit the node's cores. As
// applications finish, the survivors speed up (contention relaxes); the
// model handles this with a fluid epoch simulation over the steady
// states of each remaining active set.
func (m *Model) CoLocate(specs []RunSpec) (CoOutcome, error) {
	if len(specs) == 0 {
		return CoOutcome{}, fmt.Errorf("mapreduce: co-locate: no applications")
	}
	total := 0
	for _, s := range specs {
		if err := s.Cfg.Validate(m.Spec.Cores); err != nil {
			return CoOutcome{}, err
		}
		if s.DataMB < 0 {
			return CoOutcome{}, fmt.Errorf("mapreduce: co-locate %s: negative data size", s.App.Name)
		}
		total += s.Cfg.Mappers
	}
	if total > m.Spec.Cores {
		return CoOutcome{}, fmt.Errorf("mapreduce: co-locate: %d mappers exceed %d cores", total, m.Spec.Cores)
	}

	n := len(specs)
	co := CoOutcome{Apps: make([]Outcome, n)}
	active := make([]bool, n)
	rem := make([]float64, n)
	for i := range specs {
		active[i] = true
		rem[i] = 1
	}
	first := m.evaluate(specs)
	for i, st := range first {
		co.Apps[i] = Outcome{
			MapTime:    st.mapTime,
			ReduceTime: st.redTime,
			CPUUtil:    st.util,
			IOWaitFrac: st.iowait,
			ReadMB:     st.readMB,
			WrittenMB:  st.writeMB,
			EffIPC:     st.ipc,
			EffLLCMPKI: st.mpki,
			MemMB:      st.memMB,
			Waves:      st.waves,
			Splits:     st.splits,
		}
	}

	now := 0.0
	remaining := n
	for remaining > 0 {
		sub := make([]RunSpec, 0, remaining)
		idx := make([]int, 0, remaining)
		for i, a := range active {
			if a {
				sub = append(sub, specs[i])
				idx = append(idx, i)
			}
		}
		sts := m.evaluate(sub)
		// Epoch ends when the first active app finishes.
		dt := math.Inf(1)
		for k, i := range idx {
			if t := rem[i] * sts[k].T; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return CoOutcome{}, fmt.Errorf("mapreduce: co-locate: non-finite epoch")
		}
		subActive := make([]bool, len(sub))
		for k := range sub {
			subActive[k] = true
		}
		watts := power.NodePower(m.Spec, m.activity(sub, sts, subActive))
		co.EnergyJ += watts * dt
		now += dt
		for k, i := range idx {
			rem[i] -= dt / sts[k].T
			if rem[i] <= 1e-9 {
				rem[i] = 0
				active[i] = false
				co.Apps[i].Time = now
				remaining--
			}
		}
	}
	co.Makespan = now
	if m.Noise > 0 && m.rng != nil {
		co.Makespan = m.rng.Jitter(co.Makespan, m.Noise)
		co.EnergyJ = m.rng.Jitter(co.EnergyJ, m.Noise)
		for i := range co.Apps {
			co.Apps[i].Time = m.rng.Jitter(co.Apps[i].Time, m.Noise)
		}
	}
	if co.Makespan > 0 {
		co.AvgPower = co.EnergyJ / co.Makespan
	}
	co.EDP = power.EDP(co.EnergyJ, co.Makespan)
	return co, nil
}

// Solo predicts a single application running alone on the node.
func (m *Model) Solo(spec RunSpec) (Outcome, CoOutcome, error) {
	co, err := m.CoLocate([]RunSpec{spec})
	if err != nil {
		return Outcome{}, CoOutcome{}, err
	}
	return co.Apps[0], co, nil
}

// Pair predicts two applications co-located on the node.
func (m *Model) Pair(a, b RunSpec) (CoOutcome, error) {
	return m.CoLocate([]RunSpec{a, b})
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// SteadyState is the exported per-application view of the contention
// solver, for online schedulers that manage job progress across
// arrival/completion events themselves (internal/core's online mode).
type SteadyState struct {
	// JobTime is the application's full-job time if the current set ran
	// unchanged throughout.
	JobTime float64
	// CPUUtil and IOWait describe the application's cores.
	CPUUtil float64
	IOWait  float64
}

// Steady solves the contention among the given co-running applications
// and returns each one's steady state plus the whole-node power draw
// while this set runs.
func (m *Model) Steady(specs []RunSpec) ([]SteadyState, float64, error) {
	if len(specs) == 0 {
		return nil, power.NodePower(m.Spec, power.Activity{}), nil
	}
	total := 0
	for _, s := range specs {
		if err := s.Cfg.Validate(m.Spec.Cores); err != nil {
			return nil, 0, err
		}
		total += s.Cfg.Mappers
	}
	if total > m.Spec.Cores {
		return nil, 0, fmt.Errorf("mapreduce: steady: %d mappers exceed %d cores", total, m.Spec.Cores)
	}
	sts := m.evaluate(specs)
	out := make([]SteadyState, len(sts))
	active := make([]bool, len(sts))
	for i, st := range sts {
		out[i] = SteadyState{JobTime: st.T, CPUUtil: st.util, IOWait: st.iowait}
		active[i] = true
	}
	watts := power.NodePower(m.Spec, m.activity(specs, sts, active))
	m.observeSteady(specs, sts)
	return out, watts, nil
}

// observeSteady records steady-state telemetry: per-application phase
// timings under the current contention and, for multi-resident sets,
// the contention slowdown factor (co-located job time over the same
// application's solo time at the same configuration). Everything is
// derived from the deterministic model, so the metrics are exact.
func (m *Model) observeSteady(specs []RunSpec, sts []steady) {
	if m.Metrics == nil {
		return
	}
	m.Metrics.Counter("model.steady.calls").Inc()
	mapPhase := m.Metrics.Histogram("model.phase.map_s", metrics.ExpBuckets(16, 2, 14))
	redPhase := m.Metrics.Histogram("model.phase.reduce_s", metrics.ExpBuckets(16, 2, 14))
	for _, st := range sts {
		mapPhase.Observe(st.mapTime)
		redPhase.Observe(st.redTime)
	}
	if len(specs) < 2 {
		return
	}
	slow := m.Metrics.Histogram("model.contention.slowdown", metrics.LinearBuckets(1, 0.25, 17))
	for i := range specs {
		solo := m.evaluate(specs[i : i+1])
		if solo[0].T > 0 {
			slow.Observe(sts[i].T / solo[0].T)
		}
	}
}

// IdlePower returns the node's idle draw — what an empty node burns.
func (m *Model) IdlePower() float64 {
	return power.NodePower(m.Spec, power.Activity{})
}

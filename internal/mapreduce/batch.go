package mapreduce

import (
	"fmt"
	"math"

	"ecost/internal/hdfs"
	"ecost/internal/power"
)

// This file is the allocation-free core of the execution model. The
// public entry points (CoLocate, Solo, Pair) are thin wrappers that
// allocate a fresh scratch per call; the batched hot paths — the COLAO
// brute-force search and the MLM-STP argmin sweeps, which evaluate the
// same application pair at thousands of configurations — hold an
// Evaluator so the contention solver's working buffers are allocated
// once and reused across the whole sweep.
//
// Every routine here computes the exact floating-point sequence of the
// original serial implementation: buffer reuse changes where
// intermediate values live, never what they are, so batched results are
// bit-identical to CoLocate's.

// ioPhase is one MapReduce phase's per-task demand: CPU seconds and
// disk traffic.
type ioPhase struct{ cpu, ioMB float64 }

// evalScratch holds the contention solver's working buffers, sized for
// the largest co-located set seen so far.
type evalScratch struct {
	n        int // current capacity (co-located set size)
	steadies []steady
	mpki     []float64
	rate     []float64
	splitMB  []float64
	cpi      []float64
	rem      []float64
	mapPh    []ioPhase
	redPh    []ioPhase
	splits   []int
	sub      []RunSpec
	idx      []int
	active   []bool
	subActv  []bool
	loads    []power.CoreLoad
}

func (s *evalScratch) ensure(n int) {
	if n <= s.n {
		return
	}
	s.n = n
	s.steadies = make([]steady, n)
	s.mpki = make([]float64, n)
	s.rate = make([]float64, n)
	s.splitMB = make([]float64, n)
	s.cpi = make([]float64, n)
	s.rem = make([]float64, n)
	s.mapPh = make([]ioPhase, n)
	s.redPh = make([]ioPhase, n)
	s.splits = make([]int, n)
	s.sub = make([]RunSpec, 0, n)
	s.idx = make([]int, 0, n)
	s.active = make([]bool, n)
	s.subActv = make([]bool, n)
	s.loads = make([]power.CoreLoad, 0, n)
}

// taskTime is the per-task duration of one phase given the app's burst
// bandwidth: the I/O hides under compute up to OverlapFrac.
func (m *Model) taskTime(mappers float64, ph ioPhase, burstBW float64) (t, tio float64) {
	tio = mappers * ph.ioMB / burstBW // m concurrent tasks share the app's burst bandwidth
	t = math.Max(ph.cpu, tio) + (1-m.OverlapFrac)*math.Min(ph.cpu, tio) + m.TaskStartupSec
	return t, tio
}

// evaluateInto is evaluate with caller-owned buffers; the returned slice
// aliases s.steadies and is valid until the next call with the same
// scratch.
func (m *Model) evaluateInto(specs []RunSpec, s *evalScratch) []steady {
	n := len(specs)
	s.ensure(n)
	out := s.steadies[:n]
	if n == 0 {
		return out
	}
	// Interleaving distinct jobs' bursty streams costs seeks.
	bw := m.Spec.DiskBWMBps / (1 + m.SeekPenalty*float64((n-1)*(n-1)))

	// Memory pressure is set-wide: per-job fixed overhead plus mappers'
	// buffers and working sets.
	var memTotal float64
	for _, sp := range specs {
		perTask := m.BufFracOfBlock*float64(sp.Cfg.Block) + sp.App.Profile.MemFootprintMBPerTask
		memTotal += m.JobMemMB + float64(sp.Cfg.Mappers)*perTask
	}
	memCap := m.MemCapFrac * m.Spec.MemGB * 1024
	thrash := 0.0
	if memTotal > memCap {
		thrash = m.ThrashK * (memTotal/memCap - 1)
	}

	// Memory-bandwidth pressure scales the LLC miss latency (queueing).
	var bwDemand float64
	for _, sp := range specs {
		bwDemand += float64(sp.Cfg.Mappers) * sp.App.Profile.MemBWPerCoreGBps
	}
	bwScale := 1.0
	if m.Spec.MemBWGBps > 0 && bwDemand > m.Spec.MemBWGBps {
		bwScale = bwDemand / m.Spec.MemBWGBps
	}

	// Co-runner LLC pressure inflates each app's MPKI (saturating). The
	// pressure is app-level rather than per-mapper: a job's tasks share
	// most of their working set (dictionaries, model state), so adding
	// mappers of the same job barely grows its LLC footprint.
	mpki := s.mpki[:n]
	for i, sp := range specs {
		var otherFP float64
		for j, o := range specs {
			if j != i {
				otherFP += o.App.Profile.CacheFootprintMB
			}
		}
		infl := 1 + m.LLCBeta*otherFP/(otherFP+m.LLCMB)
		mpki[i] = sp.App.Profile.LLCMPKI * infl
	}

	// Damped fixed point on achieved disk rates.
	rate := s.rate[:n] // achieved MB/s per app
	mapPh := s.mapPh[:n]
	redPh := s.redPh[:n]
	splitMB := s.splitMB[:n]
	splits := s.splits[:n]
	cpi := s.cpi[:n]
	for i := range rate {
		rate[i] = 0
	}
	for i, sp := range specs {
		p := sp.App.Profile
		f := float64(sp.Cfg.Freq)
		cpi[i] = 1/p.BaseIPC + mpki[i]/1000*m.MemLatencyNs*f*bwScale
		splits[i] = hdfs.Splits(sp.DataMB, sp.Cfg.Block)
		if splits[i] == 0 {
			continue
		}
		splitMB[i] = sp.DataMB / float64(splits[i])
		mapPh[i] = ioPhase{
			cpu:  p.MapInstrPerByte * splitMB[i] * 1e6 * cpi[i] / (f * 1e9),
			ioMB: splitMB[i] * (1 + p.SpillFactor) * (1 + thrash),
		}
		interMB := sp.DataMB * p.ShuffleSel
		outMB := sp.DataMB * p.OutputSel
		r := float64(sp.Cfg.Mappers) // reducers = mapper slots
		redPh[i] = ioPhase{
			cpu:  p.ReduceInstrPerByte * interMB / r * 1e6 * cpi[i] / (f * 1e9),
			ioMB: (interMB + outMB) / r * (1 + thrash),
		}
	}

	for iter := 0; iter < 8; iter++ {
		var sumRates float64
		for _, r := range rate {
			sumRates += r
		}
		for i, sp := range specs {
			if splits[i] == 0 {
				continue
			}
			duty := sp.App.Profile.DiskDutyCap
			avail := bw - (sumRates - rate[i])
			if avail < 0.1*bw {
				avail = 0.1 * bw
			}
			burst := duty * bw
			if burst > avail {
				burst = avail
			}
			tMap, _ := m.taskTime(float64(sp.Cfg.Mappers), mapPh[i], burst)
			tRed, _ := m.taskTime(float64(sp.Cfg.Mappers), redPh[i], burst)
			waves := (splits[i] + sp.Cfg.Mappers - 1) / sp.Cfg.Mappers
			mapTime := float64(waves) * tMap
			total := mapTime + tRed
			mi := float64(sp.Cfg.Mappers)
			newRate := (float64(splits[i])*mapPh[i].ioMB + mi*redPh[i].ioMB) / total
			rate[i] = 0.5*rate[i] + 0.5*newRate
		}
	}

	var sumRates float64
	for _, r := range rate {
		sumRates += r
	}

	for i, sp := range specs {
		if splits[i] == 0 {
			out[i] = steady{T: m.JobOverheadSec}
			continue
		}
		p := sp.App.Profile
		duty := p.DiskDutyCap
		avail := bw - (sumRates - rate[i])
		if avail < 0.1*bw {
			avail = 0.1 * bw
		}
		burst := duty * bw
		if burst > avail {
			burst = avail
		}
		tMap, tioMap := m.taskTime(float64(sp.Cfg.Mappers), mapPh[i], burst)
		tRed, tioRed := m.taskTime(float64(sp.Cfg.Mappers), redPh[i], burst)
		waves := (splits[i] + sp.Cfg.Mappers - 1) / sp.Cfg.Mappers
		mapTime := float64(waves) * tMap
		T := m.JobOverheadSec + mapTime + tRed

		// Busy fraction of the app's cores, time-weighted over phases.
		uMap := mapPh[i].cpu / tMap
		uRed := redPh[i].cpu / tRed
		util := (uMap*mapTime + uRed*tRed) / (mapTime + tRed)
		wMap := math.Max(0, tioMap-m.OverlapFrac*mapPh[i].cpu) / tMap
		wRed := math.Max(0, tioRed-m.OverlapFrac*redPh[i].cpu) / tRed
		iowait := (wMap*mapTime + wRed*tRed) / (mapTime + tRed)

		interMB := sp.DataMB * p.ShuffleSel
		outMB := sp.DataMB * p.OutputSel
		out[i] = steady{
			T:          T,
			mapTime:    mapTime,
			redTime:    tRed,
			util:       clamp01(util),
			iowait:     clamp01(iowait),
			readMB:     sp.DataMB + interMB,
			writeMB:    sp.DataMB*p.SpillFactor + interMB + outMB,
			ipc:        1 / cpi[i],
			mpki:       mpki[i],
			memMB:      float64(sp.Cfg.Mappers) * (m.BufFracOfBlock*float64(sp.Cfg.Block) + p.MemFootprintMBPerTask),
			ioRateMBps: rate[i],
			splits:     splits[i],
			waves:      waves,
		}
	}
	return out
}

// activityInto is activity with a caller-owned loads buffer.
func (m *Model) activityInto(specs []RunSpec, sts []steady, active []bool, s *evalScratch) power.Activity {
	act := power.Activity{Loads: s.loads[:0]}
	var io, membw float64
	for i, sp := range specs {
		if !active[i] {
			continue
		}
		act.Loads = append(act.Loads, power.CoreLoad{
			Cores: sp.Cfg.Mappers,
			Freq:  sp.Cfg.Freq,
			Util:  sts[i].util,
		})
		io += sts[i].ioRateMBps
		membw += float64(sp.Cfg.Mappers) * sp.App.Profile.MemBWPerCoreGBps * sts[i].util
	}
	act.DiskBusy = io / m.Spec.DiskBWMBps
	act.MemBWGB = membw
	return act
}

// coLocateInto is CoLocate with caller-owned buffers. apps, when
// non-nil, must have len(specs) elements and receives the per-app
// outcomes; a nil apps skips the initial-contention evaluation and the
// per-app bookkeeping entirely (the node-level energy/makespan math is
// unaffected — the epoch loop is the only thing that feeds it).
func (m *Model) coLocateInto(specs []RunSpec, s *evalScratch, apps []Outcome) (CoOutcome, error) {
	if len(specs) == 0 {
		return CoOutcome{}, fmt.Errorf("mapreduce: co-locate: no applications")
	}
	total := 0
	for _, sp := range specs {
		if err := sp.Cfg.Validate(m.Spec.Cores); err != nil {
			return CoOutcome{}, err
		}
		if sp.DataMB < 0 {
			return CoOutcome{}, fmt.Errorf("mapreduce: co-locate %s: negative data size", sp.App.Name)
		}
		total += sp.Cfg.Mappers
	}
	if total > m.Spec.Cores {
		return CoOutcome{}, fmt.Errorf("mapreduce: co-locate: %d mappers exceed %d cores", total, m.Spec.Cores)
	}

	n := len(specs)
	s.ensure(n)
	co := CoOutcome{Apps: apps}
	active := s.active[:n]
	rem := s.rem[:n]
	for i := range specs {
		active[i] = true
		rem[i] = 1
	}
	if apps != nil {
		first := m.evaluateInto(specs, s)
		for i, st := range first {
			apps[i] = Outcome{
				MapTime:    st.mapTime,
				ReduceTime: st.redTime,
				CPUUtil:    st.util,
				IOWaitFrac: st.iowait,
				ReadMB:     st.readMB,
				WrittenMB:  st.writeMB,
				EffIPC:     st.ipc,
				EffLLCMPKI: st.mpki,
				MemMB:      st.memMB,
				Waves:      st.waves,
				Splits:     st.splits,
			}
		}
	}

	now := 0.0
	remaining := n
	for remaining > 0 {
		sub := s.sub[:0]
		idx := s.idx[:0]
		for i, a := range active {
			if a {
				sub = append(sub, specs[i])
				idx = append(idx, i)
			}
		}
		sts := m.evaluateInto(sub, s)
		// Epoch ends when the first active app finishes.
		dt := math.Inf(1)
		for k, i := range idx {
			if t := rem[i] * sts[k].T; t < dt {
				dt = t
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return CoOutcome{}, fmt.Errorf("mapreduce: co-locate: non-finite epoch")
		}
		subActive := s.subActv[:len(sub)]
		for k := range sub {
			subActive[k] = true
		}
		watts := power.NodePower(m.Spec, m.activityInto(sub, sts, subActive, s))
		co.EnergyJ += watts * dt
		now += dt
		for k, i := range idx {
			rem[i] -= dt / sts[k].T
			if rem[i] <= 1e-9 {
				rem[i] = 0
				active[i] = false
				if apps != nil {
					apps[i].Time = now
				}
				remaining--
			}
		}
	}
	co.Makespan = now
	if m.Noise > 0 && m.rng != nil {
		co.Makespan = m.rng.Jitter(co.Makespan, m.Noise)
		co.EnergyJ = m.rng.Jitter(co.EnergyJ, m.Noise)
		for i := range co.Apps {
			co.Apps[i].Time = m.rng.Jitter(co.Apps[i].Time, m.Noise)
		}
	}
	if co.Makespan > 0 {
		co.AvgPower = co.EnergyJ / co.Makespan
	}
	co.EDP = power.EDP(co.EnergyJ, co.Makespan)
	return co, nil
}

// CoMetrics is the node-level scalar outcome of a co-located run — what
// the brute-force searches and training-row sweeps actually consume.
type CoMetrics struct {
	Makespan float64
	EnergyJ  float64
	AvgPower float64
	EDP      float64
}

// Metrics projects a full outcome onto its node-level scalars.
func (co CoOutcome) Metrics() CoMetrics {
	return CoMetrics{Makespan: co.Makespan, EnergyJ: co.EnergyJ, AvgPower: co.AvgPower, EDP: co.EDP}
}

// Evaluator amortizes the contention solver's allocations across
// repeated evaluations of (usually) the same application pair at many
// configurations. It is NOT goroutine-safe: concurrent sweeps hold one
// Evaluator per worker.
type Evaluator struct {
	m     *Model
	s     evalScratch
	specs [2]RunSpec
	apps  []Outcome // reused only for the noisy-model fallback
}

// NewEvaluator returns a reusable evaluator over the model. The
// evaluator reads the model's knobs on every call, so knob changes
// between calls behave exactly as they do with CoLocate.
func (m *Model) NewEvaluator() *Evaluator { return &Evaluator{m: m} }

// Pair is Model.Pair with buffer reuse; the returned outcome's Apps
// slice is freshly allocated and safe to retain.
func (e *Evaluator) Pair(a, b RunSpec) (CoOutcome, error) {
	e.specs[0], e.specs[1] = a, b
	return e.m.coLocateInto(e.specs[:], &e.s, make([]Outcome, 2))
}

// PairMetrics evaluates a pair and returns only the node-level scalars,
// allocation-free after warm-up. The result is bit-identical to
// Model.Pair(a, b).Metrics().
func (e *Evaluator) PairMetrics(a, b RunSpec) (CoMetrics, error) {
	e.specs[0], e.specs[1] = a, b
	var apps []Outcome
	if e.m.Noise > 0 {
		// The noisy model draws jitter for per-app times too; keep the
		// RNG stream identical to the full path.
		if cap(e.apps) < 2 {
			e.apps = make([]Outcome, 2)
		}
		apps = e.apps[:2]
	}
	co, err := e.m.coLocateInto(e.specs[:], &e.s, apps)
	if err != nil {
		return CoMetrics{}, err
	}
	return co.Metrics(), nil
}

// Solo is Model.Solo's co-outcome with buffer reuse; the returned
// outcome's Apps slice is freshly allocated and safe to retain.
func (e *Evaluator) Solo(spec RunSpec) (CoOutcome, error) {
	e.specs[0] = spec
	return e.m.coLocateInto(e.specs[:1], &e.s, make([]Outcome, 1))
}

// SoloMetrics evaluates one application alone and returns only the
// node-level scalars, allocation-free after warm-up.
func (e *Evaluator) SoloMetrics(spec RunSpec) (CoMetrics, error) {
	e.specs[0] = spec
	var apps []Outcome
	if e.m.Noise > 0 {
		if cap(e.apps) < 1 {
			e.apps = make([]Outcome, 2)
		}
		apps = e.apps[:1]
	}
	co, err := e.m.coLocateInto(e.specs[:1], &e.s, apps)
	if err != nil {
		return CoMetrics{}, err
	}
	return co.Metrics(), nil
}

// PairBatch evaluates the same two applications at every joint
// configuration in cfgs, overwriting each spec's Cfg in turn; out must
// have len(cfgs) elements. This is the inner loop of the COLAO search
// and the database's training-row sweep: zero allocations per
// configuration after the first call.
func (e *Evaluator) PairBatch(a, b RunSpec, cfgs [][2]Config, out []CoMetrics) error {
	if len(out) != len(cfgs) {
		return fmt.Errorf("mapreduce: pair batch: %d outputs for %d configs", len(out), len(cfgs))
	}
	for i := range cfgs {
		a.Cfg, b.Cfg = cfgs[i][0], cfgs[i][1]
		cm, err := e.PairMetrics(a, b)
		if err != nil {
			return err
		}
		out[i] = cm
	}
	return nil
}

package flight

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// This file derives the shard-health observables from the recorder's
// aggregates and renders the deterministic /health report.

// jain computes Jain's fairness index J(x) = (Σx)² / (n·Σx²): 1 when
// every shard carries equal load, 1/n when one shard carries it all.
// An idle cluster (Σx == 0) is perfectly fair.
func jain(x []float64) float64 {
	var sum, sq float64
	for _, v := range x {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(x)) * sq)
}

// jainStats is the instantaneous index over queued+active jobs.
func jainStats(stats []ShardStat) float64 {
	x := make([]float64, len(stats))
	for i, st := range stats {
		x[i] = float64(st.Queue + st.Active)
	}
	return jain(x)
}

// slope fits q = a + b·t by least squares and returns b (queued jobs
// per simulated second), 0 when the window is degenerate (fewer than
// two points, or zero time spread).
func slope(t, q []float64) float64 {
	n := float64(len(t))
	if n < 2 {
		return 0
	}
	var tm, qm float64
	for i := range t {
		tm += t[i]
		qm += q[i]
	}
	tm /= n
	qm /= n
	var num, den float64
	for i := range t {
		dt := t[i] - tm
		num += dt * (q[i] - qm)
		den += dt * dt
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// powerSkew is max/mean of the shards' per-node cumulative energy
// (ShardNodes-normalized): 1 when power is perfectly balanced, rising
// as one shard's nodes burn disproportionately.
func powerSkew(last []ShardStat, nodes []int) float64 {
	var sum, max float64
	for i, st := range last {
		w := 1.0
		if i < len(nodes) && nodes[i] > 0 {
			w = float64(nodes[i])
		}
		v := st.EnergyJ / w
		sum += v
		if v > max {
			max = v
		}
	}
	mean := sum / float64(len(last))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// ShardHealth is one shard's row in the health report: the latest
// barrier state plus the run-cumulative aggregates.
type ShardHealth struct {
	Shard      int     `json:"shard"`
	Nodes      int     `json:"nodes,omitempty"`
	Queue      int     `json:"queue"`
	Free       int     `json:"free"`
	Active     int     `json:"active"`
	EnergyJ    float64 `json:"energy_j"`
	TuneHits   int64   `json:"tune_hits"`
	TuneMisses int64   `json:"tune_misses"`
	Joins      int64   `json:"joins"`
	ErrMeanPct float64 `json:"err_mean_pct"`
	Drifts     int64   `json:"drifts"`
	LoadJobS   float64 `json:"load_job_s"`
	StealsIn   int64   `json:"steals_in"`
	StealsOut  int64   `json:"steals_out"`
}

// HealthReport aggregates the recorder into the shard-health
// observables. Build with Recorder.Health; render with WriteText.
type HealthReport struct {
	Shards        int           `json:"shards"`
	Epochs        int           `json:"epochs"`
	RingLen       int           `json:"ring_len"`
	RingCap       int           `json:"ring_cap"`
	Dropped       int           `json:"dropped"`
	AtS           float64       `json:"at_s"`
	Steals        int64         `json:"steals"`
	Flow          [][]int64     `json:"steal_flow"`
	FairnessQueue float64       `json:"fairness_queue"`
	FairnessLoad  float64       `json:"fairness_load"`
	QueueSlope    float64       `json:"queue_slope_jobs_per_s"`
	SlopeWindow   int           `json:"slope_window"`
	PowerSkew     float64       `json:"power_skew"`
	PerShard      []ShardHealth `json:"per_shard"`
	Triggers      []Trigger     `json:"triggers,omitempty"`
	TriggersTotal int           `json:"triggers_total"`
	Dumps         int           `json:"dumps"`
}

// Health derives the current shard-health report. On a nil recorder it
// returns the zero report (Shards == 0).
func (r *Recorder) Health() HealthReport {
	if r == nil {
		return HealthReport{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.cfg.Shards
	h := HealthReport{
		Shards:        s,
		Epochs:        r.epochs,
		RingLen:       r.count,
		RingCap:       cap(r.ring),
		Dropped:       r.dropped,
		AtS:           r.lastT,
		Flow:          make([][]int64, s),
		FairnessQueue: r.fairLast,
		FairnessLoad:  jain(r.loadJobS),
		QueueSlope:    r.slope,
		SlopeWindow:   r.cfg.QueueSlopeWindow,
		PowerSkew:     powerSkew(r.last, r.cfg.ShardNodes),
		Triggers:      append([]Trigger(nil), r.triggers...),
		TriggersTotal: r.triggersTotal,
		Dumps:         len(r.dumps),
	}
	var stealsIn, stealsOut []int64 = make([]int64, s), make([]int64, s)
	for i, row := range r.flow {
		h.Flow[i] = append([]int64(nil), row...)
		for j, n := range row {
			stealsOut[i] += n
			stealsIn[j] += n
			h.Steals += n
		}
	}
	for i := 0; i < s; i++ {
		sh := ShardHealth{
			Shard:      i,
			Queue:      r.last[i].Queue,
			Free:       r.last[i].Free,
			Active:     r.last[i].Active,
			EnergyJ:    r.last[i].EnergyJ,
			TuneHits:   r.last[i].TuneHits,
			TuneMisses: r.last[i].TuneMisses,
			Joins:      r.joins[i],
			Drifts:     r.drifts[i],
			LoadJobS:   r.loadJobS[i],
			StealsIn:   stealsIn[i],
			StealsOut:  stealsOut[i],
		}
		if i < len(r.cfg.ShardNodes) {
			sh.Nodes = r.cfg.ShardNodes[i]
		}
		if r.joins[i] > 0 {
			sh.ErrMeanPct = r.errSum[i] / float64(r.joins[i])
		}
		h.PerShard = append(h.PerShard, sh)
	}
	return h
}

// fm renders a float at six significant digits — deterministic (a pure
// function of the value) and short enough that the health report stays
// readable; exact values live in the JSON exports, not this text view.
func fm(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteText renders the report as a deterministic text exposition (the
// /health endpoint and -health-report output).
func (h HealthReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# shard health")
	fmt.Fprintf(bw, "shards %d, epochs %d (ring %d/%d, dropped %d), sim-time %s s\n",
		h.Shards, h.Epochs, h.RingLen, h.RingCap, h.Dropped, fm(h.AtS))
	fmt.Fprintf(bw, "steals %d total\n", h.Steals)
	fmt.Fprintf(bw, "fairness (Jain) queue %s, load %s\n", fm(h.FairnessQueue), fm(h.FairnessLoad))
	fmt.Fprintf(bw, "queue growth %s jobs/s (window %d)\n", fm(h.QueueSlope), h.SlopeWindow)
	fmt.Fprintf(bw, "power skew %s (max/mean per-node J)\n", fm(h.PowerSkew))
	fmt.Fprintf(bw, "\n%5s %5s %6s %6s %6s %14s %9s %9s %6s %8s %5s %5s %5s\n",
		"shard", "nodes", "queue", "free", "active", "energy_j", "tune_hit", "tune_miss", "joins", "err%", "drift", "in", "out")
	for _, s := range h.PerShard {
		fmt.Fprintf(bw, "%5d %5d %6d %6d %6d %14.6g %9d %9d %6d %8.2f %5d %5d %5d\n",
			s.Shard, s.Nodes, s.Queue, s.Free, s.Active, s.EnergyJ,
			s.TuneHits, s.TuneMisses, s.Joins, s.ErrMeanPct, s.Drifts, s.StealsIn, s.StealsOut)
	}
	if h.Steals > 0 {
		fmt.Fprintf(bw, "\nsteal-flow matrix (row=from, col=to):\n%6s", "")
		for j := range h.Flow {
			fmt.Fprintf(bw, " %5d", j)
		}
		fmt.Fprintln(bw)
		for i, row := range h.Flow {
			fmt.Fprintf(bw, "%6d", i)
			for _, n := range row {
				if n == 0 {
					fmt.Fprintf(bw, " %5s", ".")
				} else {
					fmt.Fprintf(bw, " %5d", n)
				}
			}
			fmt.Fprintln(bw)
		}
	}
	fmt.Fprintf(bw, "\ntriggers %d (%d dumped, %d kept)\n", h.TriggersTotal, h.Dumps, len(h.Triggers))
	for _, tr := range h.Triggers {
		fmt.Fprintf(bw, "  [epoch %d] %s at %s s: value %s vs bound %s; shards %v; tenants %v\n",
			tr.Epoch, tr.Kind, fm(tr.AtS), fm(tr.Value), fm(tr.Bound), tr.Shards, tr.Tenants)
	}
	return bw.Flush()
}

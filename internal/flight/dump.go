package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Trigger kinds. TriggerDrift mirrors the audit subsystem's
// stp.drift_alert gauge name: any CUSUM alarm inside an epoch snapshots
// the ring, because a drifting tenant profile is exactly what the
// bounded history exists to explain.
const (
	TriggerDrift     = "stp_drift_alert"
	TriggerQueue     = "queue_growth"
	TriggerImbalance = "shard_imbalance"
)

// maxKeptTriggers bounds the trigger list the health report carries;
// triggersTotal keeps counting past it.
const maxKeptTriggers = 64

// Trigger names one anomaly: what fired, when, the implicated shards
// and tenants, and the observed value against its bound (for
// TriggerDrift the value is the worst CUSUM statistic and the bound is
// 0 — the detector's own threshold already gated it).
type Trigger struct {
	Kind    string   `json:"trigger"`
	AtS     float64  `json:"at_s"`
	Epoch   int      `json:"epoch"`
	Shards  []int    `json:"shards,omitempty"`
	Tenants []string `json:"tenants,omitempty"`
	Value   float64  `json:"value"`
	Bound   float64  `json:"bound"`
}

// Dump is one ring snapshot: the trigger that fired it plus the full
// chronological window of epoch records at that moment.
type Dump struct {
	Trigger Trigger
	Records []EpochRecord
}

// evalTriggers runs the anomaly checks for the epoch just recorded.
// Caller holds r.mu.
func (r *Recorder) evalTriggers(epoch int, t float64, stats []ShardStat, drift bool) {
	if drift {
		// Collect the epoch's marks back out of the just-appended
		// records (they were moved off the collectors).
		var shards []int
		var tenants []string
		seenT := map[string]bool{}
		worst := 0.0
		recs := r.snapshotLocked()
		for _, rec := range recs {
			if rec.Epoch != epoch || len(rec.Drift) == 0 {
				continue
			}
			shards = append(shards, rec.Shard)
			for _, m := range rec.Drift {
				if !seenT[m.Tenant] {
					seenT[m.Tenant] = true
					tenants = append(tenants, m.Tenant)
				}
				if m.Stat > worst {
					worst = m.Stat
				}
			}
		}
		sort.Strings(tenants)
		r.fire(Trigger{
			Kind: TriggerDrift, AtS: t, Epoch: epoch,
			Shards: shards, Tenants: tenants, Value: worst,
		})
	}

	load := 0
	for _, st := range stats {
		load += st.Queue + st.Active
	}
	if load < r.cfg.QueueFloor {
		return
	}
	// The hottest shard is the implicated one for both load triggers.
	hot, hotLoad := 0, -1
	for i, st := range stats {
		if l := st.Queue + st.Active; l > hotLoad {
			hot, hotLoad = i, l
		}
	}
	if r.qn == len(r.qt) && r.slope > r.cfg.QueueSlopeBound {
		r.fire(Trigger{
			Kind: TriggerQueue, AtS: t, Epoch: epoch,
			Shards: []int{hot}, Tenants: r.tenantsOf(hot),
			Value: r.slope, Bound: r.cfg.QueueSlopeBound,
		})
	}
	if r.fairLast < r.cfg.FairnessMin {
		r.fire(Trigger{
			Kind: TriggerImbalance, AtS: t, Epoch: epoch,
			Shards: []int{hot}, Tenants: r.tenantsOf(hot),
			Value: r.fairLast, Bound: r.cfg.FairnessMin,
		})
	}
}

func (r *Recorder) tenantsOf(shard int) []string {
	if r.tenants == nil {
		return nil
	}
	return r.tenants(shard, 3)
}

// fire records a trigger and, outside the dump cooldown, snapshots the
// ring. Caller holds r.mu.
func (r *Recorder) fire(tr Trigger) {
	r.triggersTotal++
	if len(r.triggers) < maxKeptTriggers {
		r.triggers = append(r.triggers, tr)
	}
	if len(r.dumps) >= r.cfg.MaxDumps || tr.Epoch < r.cooldownUntil {
		return
	}
	r.cooldownUntil = tr.Epoch + r.cfg.CooldownEpochs
	r.dumps = append(r.dumps, Dump{Trigger: tr, Records: r.snapshotLocked()})
}

// Dumps returns the retained flight dumps in firing order.
func (r *Recorder) Dumps() []Dump {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Dump(nil), r.dumps...)
}

// dumpHeader is the first JSONL line of one dump: the trigger plus the
// record count that follows.
type dumpHeader struct {
	Trigger
	Records int `json:"records"`
}

// WriteDumps renders every retained dump as JSON Lines: one header
// line per dump (the trigger, naming the implicated tenants, shards,
// and epoch) followed by its chronological epoch records. The output
// is a pure function of the recorded stream — byte-identical at any
// GOMAXPROCS — and empty (zero bytes) when nothing fired.
func (r *Recorder) WriteDumps(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	dumps := append([]Dump(nil), r.dumps...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range dumps {
		if err := enc.Encode(dumpHeader{Trigger: d.Trigger, Records: len(d.Records)}); err != nil {
			return err
		}
		for _, rec := range d.Records {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteEpochs renders the ring's records as JSON Lines in
// chronological order; shard >= 0 filters to one shard (the /epochs
// endpoint).
func (r *Recorder) WriteEpochs(w io.Writer, shard int) error {
	if r == nil {
		return nil
	}
	recs := r.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if shard >= 0 && rec.Shard != shard {
			continue
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteShards renders the per-shard health rows as a JSON array (the
// /shards endpoint).
func (r *Recorder) WriteShards(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	h := r.Health()
	if h.PerShard == nil {
		h.PerShard = []ShardHealth{}
	}
	out, err := json.MarshalIndent(h.PerShard, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", out)
	return err
}

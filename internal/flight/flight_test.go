package flight

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// stat builds a minimal ShardStat.
func stat(queue, active int, energy float64) ShardStat {
	return ShardStat{Queue: queue, Active: active, EnergyJ: energy}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var c *Collector
	// Every disabled-path call must be a no-op, not a panic.
	r.RecordEpoch(0, 1, nil)
	r.Steal(0, 1)
	r.SetTenantSource(nil)
	c.Join(12.5)
	c.Drift(1, "nb:C", 50)
	if r.Collector(3) != nil {
		t.Error("nil recorder handed out a collector")
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil recorder snapshot = %v", got)
	}
	if got := r.Health(); got.Shards != 0 {
		t.Errorf("nil recorder health = %+v", got)
	}
	if got := r.Dumps(); got != nil {
		t.Errorf("nil recorder dumps = %v", got)
	}
	var buf bytes.Buffer
	if err := r.WriteDumps(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteDumps: err=%v len=%d", err, buf.Len())
	}
	if err := r.WriteEpochs(&buf, -1); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteEpochs: err=%v len=%d", err, buf.Len())
	}
	if New(Config{Shards: 0}) != nil {
		t.Error("New with zero shards should return the disabled recorder")
	}
}

func TestRingWrap(t *testing.T) {
	r := New(Config{Shards: 2, RingCap: 6})
	for e := 0; e < 5; e++ {
		t0, t1 := float64(e), float64(e+1)
		r.RecordEpoch(t0, t1, []ShardStat{stat(e, 0, 0), stat(0, e, 0)})
	}
	recs := r.Snapshot()
	if len(recs) != 6 {
		t.Fatalf("ring holds %d records, want cap 6", len(recs))
	}
	// 5 epochs x 2 shards = 10 records; the 4 oldest fell off.
	if h := r.Health(); h.Dropped != 4 || h.Epochs != 5 {
		t.Fatalf("dropped=%d epochs=%d, want 4/5", h.Dropped, h.Epochs)
	}
	// Chronological: epoch nondecreasing, shard ascending within epoch.
	for i := 1; i < len(recs); i++ {
		a, b := recs[i-1], recs[i]
		if b.Epoch < a.Epoch || (b.Epoch == a.Epoch && b.Shard <= a.Shard) {
			t.Fatalf("snapshot not chronological at %d: %+v then %+v", i, a, b)
		}
	}
	if recs[0].Epoch != 2 || recs[len(recs)-1].Epoch != 4 {
		t.Fatalf("window spans epochs %d..%d, want 2..4", recs[0].Epoch, recs[len(recs)-1].Epoch)
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{4, 4, 4, 4}, 1},
		{[]float64{8, 0, 0, 0}, 0.25},
		{[]float64{0, 0}, 1},
		{[]float64{1, 1, 0, 0}, 0.5},
	}
	for _, c := range cases {
		if got := jain(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("jain(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestSlope(t *testing.T) {
	// q = 3 + 2t exactly.
	ts := []float64{0, 1, 2, 3}
	qs := []float64{3, 5, 7, 9}
	if got := slope(ts, qs); math.Abs(got-2) > 1e-12 {
		t.Errorf("slope = %v, want 2", got)
	}
	if got := slope([]float64{5}, []float64{1}); got != 0 {
		t.Errorf("degenerate slope = %v, want 0", got)
	}
	if got := slope([]float64{5, 5}, []float64{1, 9}); got != 0 {
		t.Errorf("zero-spread slope = %v, want 0", got)
	}
}

func TestPowerSkew(t *testing.T) {
	last := []ShardStat{stat(0, 0, 100), stat(0, 0, 300)}
	if got := powerSkew(last, nil); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("skew = %v, want 1.5", got)
	}
	// Node-normalized: 100J over 1 node vs 300J over 3 nodes is balanced.
	if got := powerSkew(last, []int{1, 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized skew = %v, want 1", got)
	}
	if got := powerSkew([]ShardStat{stat(0, 0, 0)}, nil); got != 1 {
		t.Errorf("idle skew = %v, want 1", got)
	}
}

func TestStealFlowMatrix(t *testing.T) {
	r := New(Config{Shards: 3})
	r.Steal(0, 1)
	r.Steal(0, 1)
	r.Steal(2, 0)
	r.RecordEpoch(0, 1, []ShardStat{{}, {}, {}})
	flow := r.StealFlow()
	if flow[0][1] != 2 || flow[2][0] != 1 || flow[1][2] != 0 {
		t.Fatalf("flow = %v", flow)
	}
	// The epoch records carry the same edges, sparse and sorted.
	recs := r.Snapshot()
	if got := recs[0].StealsOut; len(got) != 1 || got[0] != (Flow{Peer: 1, Jobs: 2}) {
		t.Errorf("shard 0 out-flow = %v", got)
	}
	if got := recs[1].StealsIn; len(got) != 1 || got[0] != (Flow{Peer: 0, Jobs: 2}) {
		t.Errorf("shard 1 in-flow = %v", got)
	}
	if h := r.Health(); h.Steals != 3 ||
		h.PerShard[0].StealsOut != 2 || h.PerShard[0].StealsIn != 1 {
		t.Errorf("health steal totals: %+v", r.Health().PerShard)
	}
}

// driveGrowth feeds a linearly growing queue concentrated on shard 0
// until the slope window is full and past the floor.
func driveGrowth(r *Recorder, epochs int) {
	for e := 0; e < epochs; e++ {
		q := 10 * (e + 1)
		r.RecordEpoch(float64(e), float64(e+1), []ShardStat{stat(q, 0, 0), stat(0, 0, 0)})
	}
}

func TestTriggerQueueGrowth(t *testing.T) {
	r := New(Config{Shards: 2, QueueSlopeWindow: 8, QueueSlopeBound: 1, FairnessMin: 0.01})
	r.SetTenantSource(func(shard, max int) []string { return []string{"nb", "pr"} })
	driveGrowth(r, 12)
	h := r.Health()
	if h.QueueSlope <= 1 {
		t.Fatalf("slope = %v, want > 1", h.QueueSlope)
	}
	var tr *Trigger
	for i := range h.Triggers {
		if h.Triggers[i].Kind == TriggerQueue {
			tr = &h.Triggers[i]
			break
		}
	}
	if tr == nil {
		t.Fatalf("no queue_growth trigger: %+v", h.Triggers)
	}
	if len(tr.Shards) != 1 || tr.Shards[0] != 0 {
		t.Errorf("implicated shards = %v, want [0]", tr.Shards)
	}
	if len(tr.Tenants) != 2 || tr.Tenants[0] != "nb" {
		t.Errorf("implicated tenants = %v", tr.Tenants)
	}
	if h.Dumps == 0 {
		t.Error("trigger produced no dump")
	}
	// Cooldown: a sustained anomaly keeps counting but dumps once.
	if h.TriggersTotal < 2 || h.Dumps != 1 {
		t.Errorf("total=%d dumps=%d, want repeated triggers with one dump", h.TriggersTotal, h.Dumps)
	}
}

func TestTriggerImbalance(t *testing.T) {
	r := New(Config{Shards: 4, FairnessMin: 0.5, QueueFloor: 8})
	// All load on one shard: J = 1/4 < 0.5.
	r.RecordEpoch(0, 1, []ShardStat{stat(20, 4, 0), {}, {}, {}})
	h := r.Health()
	if len(h.Triggers) != 1 || h.Triggers[0].Kind != TriggerImbalance {
		t.Fatalf("triggers = %+v", h.Triggers)
	}
	if h.FairnessQueue != 0.25 {
		t.Errorf("fairness = %v, want 0.25", h.FairnessQueue)
	}
	// Below the floor nothing fires, however skewed.
	r2 := New(Config{Shards: 4, FairnessMin: 0.5, QueueFloor: 8})
	r2.RecordEpoch(0, 1, []ShardStat{stat(2, 1, 0), {}, {}, {}})
	if h2 := r2.Health(); h2.TriggersTotal != 0 {
		t.Errorf("under-floor skew fired %d triggers", h2.TriggersTotal)
	}
}

func TestTriggerDriftNamesTenant(t *testing.T) {
	r := New(Config{Shards: 2})
	c := r.Collector(1)
	c.Join(120)
	c.Join(80)
	c.Drift(7, "nb:C", 55.2)
	c.Drift(9, "st:I/O", 41.0)
	r.RecordEpoch(0, 40, []ShardStat{{}, stat(1, 1, 9.5)})
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("dumps = %d, want 1", len(dumps))
	}
	tr := dumps[0].Trigger
	if tr.Kind != TriggerDrift {
		t.Fatalf("trigger kind = %s", tr.Kind)
	}
	if len(tr.Shards) != 1 || tr.Shards[0] != 1 {
		t.Errorf("shards = %v, want [1]", tr.Shards)
	}
	if len(tr.Tenants) != 2 || tr.Tenants[0] != "nb:C" || tr.Tenants[1] != "st:I/O" {
		t.Errorf("tenants = %v", tr.Tenants)
	}
	if tr.Value != 55.2 {
		t.Errorf("value = %v, want worst stat 55.2", tr.Value)
	}
	// The wide record carries the drained joins and marks.
	rec := dumps[0].Records[1]
	if rec.Joins != 2 || rec.ErrMeanPct != 100 || len(rec.Drift) != 2 {
		t.Errorf("record = %+v", rec)
	}
	var buf bytes.Buffer
	if err := r.WriteDumps(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"trigger":"stp_drift_alert"`, `"nb:C"`, `"records":2`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("dump JSONL missing %q:\n%s", want, buf.String())
		}
	}
}

// TestExportsDeterministic replays the same synthetic stream twice and
// requires byte-identical health, epochs, and dump exports — the same
// purity contract the run-level GOMAXPROCS goldens enforce end to end.
func TestExportsDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := New(Config{Shards: 3, RingCap: 16, QueueSlopeWindow: 4, QueueSlopeBound: 0.1})
		r.SetTenantSource(func(shard, max int) []string { return []string{"km"} })
		for e := 0; e < 10; e++ {
			r.Steal(0, (e%2)+1)
			c := r.Collector(e % 3)
			c.Join(float64(10 * e))
			if e == 7 {
				c.Drift(e, "km:C", 60)
			}
			r.RecordEpoch(float64(e), float64(e+1),
				[]ShardStat{stat(5*e, 1, float64(100*e)), stat(e, 0, 50), stat(0, 2, 75)})
		}
		return r
	}
	render := func(r *Recorder) string {
		var buf bytes.Buffer
		if err := r.Health().WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteEpochs(&buf, -1); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteDumps(&buf); err != nil {
			t.Fatal(err)
		}
		if err := r.WriteShards(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(build()), render(build())
	if a != b {
		t.Fatalf("exports diverged:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, "stp_drift_alert") {
		t.Fatalf("expected a drift trigger in:\n%s", a)
	}
}

// BenchmarkDisabledEpochRecord measures the nil recorder's barrier
// cost: a single inlined branch (benchguard-gated at ≤1 ns, 0 allocs).
func BenchmarkDisabledEpochRecord(b *testing.B) {
	var r *Recorder
	var stats []ShardStat
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordEpoch(0, 1, stats)
	}
}

// BenchmarkDisabledFlightAppend measures the nil collector's per-join
// cost on the scheduler's completion path (benchguard-gated at ≤1 ns,
// 0 allocs).
func BenchmarkDisabledFlightAppend(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Join(12.5)
	}
}

// Package flight is the control plane's black box: a nil-safe,
// fixed-size ring-buffer flight recorder fed by one wide event per
// shard per barrier epoch. Per-decision logs (tracing spans, audit
// JSONL) do not survive 130k jobs/s; the recorder keeps a bounded
// always-on window of per-shard state — queue depth, free slots,
// active jobs, steal flow by neighbor, accrued energy, tune-cache hit
// rate, forecast-error summary — and aggregates it into shard-health
// observables (steal-flow matrix, Jain's fairness index, queue-growth
// slope, power skew). Anomaly triggers snapshot the ring into a
// deterministic JSONL dump naming the implicated tenants, shards, and
// epochs.
//
// Like every observability layer in this repo (metrics, tracing,
// audit), a nil *Recorder and a nil *Collector are valid and disabled:
// every method short-circuits on a single inlined branch, so the
// instrumented hot paths cost nothing when flight recording is off
// (benchguard-gated by BenchmarkDisabledEpochRecord and
// BenchmarkDisabledFlightAppend).
//
// Determinism contract: the recorder is driven only from the sharded
// control plane's single-threaded barrier loop (RecordEpoch, Steal)
// and from per-shard collectors that are written exclusively by their
// shard's goroutine between barriers (the barrier's WaitGroup
// establishes the happens-before edge for the drain). Every export —
// epoch records, health report, flight dumps — is therefore a pure
// function of the submitted stream, byte-identical at any GOMAXPROCS.
// The mutex on Recorder exists only for live HTTP reads during a run;
// it never reorders writes.
package flight

import "sync"

// Config parameterizes the recorder. The zero value of every field is
// replaced by the documented default in New, so callers set only what
// they tune.
type Config struct {
	// Shards is the shard count (required, >= 1).
	Shards int
	// ShardNodes holds each shard's node count, used to normalize the
	// power-skew observable to per-node watts (an uneven node split is
	// not a power anomaly). Nil weighs every shard equally.
	ShardNodes []int
	// RingCap bounds the record ring (one record per shard per epoch).
	// Default 4096, clamped to at least Shards so a full epoch fits.
	RingCap int
	// QueueSlopeBound is the queue-growth trigger threshold in queued
	// jobs per simulated second, measured by least squares over the
	// slope window. Default 0.5.
	QueueSlopeBound float64
	// QueueSlopeWindow is how many barrier samples the slope regression
	// spans. Default 64.
	QueueSlopeWindow int
	// FairnessMin is the imbalance trigger threshold on the
	// instantaneous Jain index over per-shard load. Default 0.5.
	FairnessMin float64
	// QueueFloor gates the queue-growth and imbalance triggers: below
	// this total load (queued + active jobs) a skewed cluster is merely
	// idle, not anomalous. Default 4*Shards.
	QueueFloor int
	// MaxDumps caps how many ring snapshots a run keeps. Default 8.
	MaxDumps int
	// CooldownEpochs suppresses new dumps for this many epochs after
	// one fires, so a sustained anomaly yields one snapshot, not
	// thousands. Default 256.
	CooldownEpochs int
}

func (c Config) withDefaults() Config {
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	if c.RingCap < c.Shards {
		c.RingCap = c.Shards
	}
	if c.QueueSlopeBound <= 0 {
		c.QueueSlopeBound = 0.5
	}
	if c.QueueSlopeWindow <= 1 {
		c.QueueSlopeWindow = 64
	}
	if c.FairnessMin <= 0 {
		c.FairnessMin = 0.5
	}
	if c.QueueFloor <= 0 {
		c.QueueFloor = 4 * c.Shards
	}
	if c.MaxDumps <= 0 {
		c.MaxDumps = 8
	}
	if c.CooldownEpochs <= 0 {
		c.CooldownEpochs = 256
	}
	return c
}

// ShardStat is one shard's state at a barrier, sampled by the control
// plane after the epoch's events and steal pass have run. Energy and
// tune-cache counts are cumulative; the recorder differences them into
// per-epoch records where needed.
type ShardStat struct {
	Queue   int
	Free    int
	Active  int
	EnergyJ float64
	// TuneHits/TuneMisses mirror the shard tune cache's deterministic
	// hit/miss counts (MemoSTP.HitMiss), cumulative.
	TuneHits   int64
	TuneMisses int64
}

// Flow is one edge of a shard's per-epoch steal flow.
type Flow struct {
	Peer int   `json:"peer"`
	Jobs int64 `json:"jobs"`
}

// DriftMark records one CUSUM drift alert inside an epoch: the
// completing job, its tenant ("app:class" — the recurring identity the
// stale profile belongs to), and the CUSUM statistic at the alarm.
type DriftMark struct {
	Job    int     `json:"job"`
	Tenant string  `json:"tenant"`
	Stat   float64 `json:"stat"`
}

// EpochRecord is the wide event: one shard's full state for one
// barrier epoch. StartS/EndS bound the epoch's sim-time window;
// EnergyJ and TuneHits/TuneMisses are cumulative readings at EndS
// (differencing them across records gives per-epoch deltas without
// losing the running totals a dump reader wants).
type EpochRecord struct {
	Epoch      int         `json:"epoch"`
	Shard      int         `json:"shard"`
	StartS     float64     `json:"start_s"`
	EndS       float64     `json:"end_s"`
	Queue      int         `json:"queue"`
	Free       int         `json:"free"`
	Active     int         `json:"active"`
	EnergyJ    float64     `json:"energy_j"`
	TuneHits   int64       `json:"tune_hits"`
	TuneMisses int64       `json:"tune_misses"`
	Joins      int         `json:"joins,omitempty"`
	ErrMeanPct float64     `json:"err_mean_pct,omitempty"`
	StealsIn   []Flow      `json:"steals_in,omitempty"`
	StealsOut  []Flow      `json:"steals_out,omitempty"`
	Drift      []DriftMark `json:"drift,omitempty"`
}

// Collector is one shard's epoch-scoped accumulator. The shard's
// scheduler appends forecast joins and drift alerts as its events run;
// the recorder drains it at the next barrier. A nil *Collector is
// valid and disabled. No locking: the owning shard goroutine is the
// only writer between barriers, and the barrier WaitGroup orders the
// drain after every write.
type Collector struct {
	joins  int64
	errSum float64
	drifts []DriftMark
}

// Join records one audited forecast join (relative EDP error, percent).
func (c *Collector) Join(relErrPct float64) {
	if c == nil {
		return
	}
	c.join(relErrPct)
}

func (c *Collector) join(relErrPct float64) {
	c.joins++
	c.errSum += relErrPct
}

// Drift records one CUSUM drift alert against tenant ("app:class").
func (c *Collector) Drift(job int, tenant string, stat float64) {
	if c == nil {
		return
	}
	c.drift(job, tenant, stat)
}

func (c *Collector) drift(job int, tenant string, stat float64) {
	c.drifts = append(c.drifts, DriftMark{Job: job, Tenant: tenant, Stat: stat})
}

type flowEdge struct{ from, to int }

// Recorder is the flight recorder. Build with New, hand each shard its
// Collector, then drive Steal/RecordEpoch from the barrier loop. A nil
// *Recorder is valid and disabled.
type Recorder struct {
	mu  sync.Mutex
	cfg Config

	cols []*Collector

	ring    []EpochRecord
	next    int // ring write position
	count   int // filled entries
	epochs  int // epochs recorded (== next epoch index)
	dropped int // records overwritten by ring wrap

	pend map[flowEdge]int64 // steals since the last barrier record
	flow [][]int64          // cumulative steal-flow matrix [from][to]

	// cumulative per-shard aggregates
	loadJobS []float64 // ∫(queue+active) dt — job-seconds of offered load
	joins    []int64
	errSum   []float64
	drifts   []int64
	last     []ShardStat
	lastT    float64

	// queue-growth regression window: (EndS, total queue) rings
	qt, qv   []float64
	qn, qpos int

	fairLast float64
	slope    float64

	triggers      []Trigger
	triggersTotal int
	dumps         []Dump
	cooldownUntil int

	tenants func(shard, max int) []string
}

// New builds a recorder for cfg.Shards shards. Returns nil (the
// disabled recorder) when cfg.Shards < 1.
func New(cfg Config) *Recorder {
	if cfg.Shards < 1 {
		return nil
	}
	cfg = cfg.withDefaults()
	r := &Recorder{
		cfg:      cfg,
		cols:     make([]*Collector, cfg.Shards),
		ring:     make([]EpochRecord, 0, cfg.RingCap),
		pend:     make(map[flowEdge]int64),
		flow:     make([][]int64, cfg.Shards),
		loadJobS: make([]float64, cfg.Shards),
		joins:    make([]int64, cfg.Shards),
		errSum:   make([]float64, cfg.Shards),
		drifts:   make([]int64, cfg.Shards),
		last:     make([]ShardStat, cfg.Shards),
		qt:       make([]float64, cfg.QueueSlopeWindow),
		qv:       make([]float64, cfg.QueueSlopeWindow),
		fairLast: 1,
	}
	for i := range r.cols {
		r.cols[i] = &Collector{}
	}
	for i := range r.flow {
		r.flow[i] = make([]int64, cfg.Shards)
	}
	return r
}

// Collector returns shard i's collector (nil on a nil recorder — the
// disabled collector).
func (r *Recorder) Collector(i int) *Collector {
	if r == nil {
		return nil
	}
	return r.cols[i]
}

// SetTenantSource installs the callback a trigger uses to name the
// implicated tenants of a hot shard (e.g. the most-queued application
// names). It is invoked only when a trigger fires, from the barrier
// goroutine, so it may read shard state directly.
func (r *Recorder) SetTenantSource(fn func(shard, max int) []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tenants = fn
	r.mu.Unlock()
}

// Steal records one stolen job migrating from shard `from` to shard
// `to`, called from the barrier steal pass.
func (r *Recorder) Steal(from, to int) {
	if r == nil {
		return
	}
	r.steal(from, to)
}

func (r *Recorder) steal(from, to int) {
	r.mu.Lock()
	r.pend[flowEdge{from, to}]++
	r.flow[from][to]++
	r.mu.Unlock()
}

// RecordEpoch closes one barrier epoch spanning sim time [t0, t1]:
// it drains every shard's collector and the pending steal flows into
// one wide record per shard, appends them to the ring, refreshes the
// aggregate observables, and evaluates the anomaly triggers. stats
// must hold one entry per shard, in shard order.
func (r *Recorder) RecordEpoch(t0, t1 float64, stats []ShardStat) {
	if r == nil {
		return
	}
	r.recordEpoch(t0, t1, stats)
}

func (r *Recorder) recordEpoch(t0, t1 float64, stats []ShardStat) {
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch := r.epochs
	r.epochs++
	s := r.cfg.Shards

	// Fold the pending steal edges into per-shard sorted flow lists.
	var in, out [][]Flow
	if len(r.pend) > 0 {
		in = make([][]Flow, s)
		out = make([][]Flow, s)
		// Iterate shard pairs in index order rather than map order so
		// the flow lists are deterministic.
		for from := 0; from < s; from++ {
			for to := 0; to < s; to++ {
				if n := r.pend[flowEdge{from, to}]; n > 0 {
					out[from] = append(out[from], Flow{Peer: to, Jobs: n})
					in[to] = append(in[to], Flow{Peer: from, Jobs: n})
				}
			}
		}
		clear(r.pend)
	}

	driftThisEpoch := false
	for i := 0; i < s; i++ {
		st := stats[i]
		rec := EpochRecord{
			Epoch:      epoch,
			Shard:      i,
			StartS:     t0,
			EndS:       t1,
			Queue:      st.Queue,
			Free:       st.Free,
			Active:     st.Active,
			EnergyJ:    st.EnergyJ,
			TuneHits:   st.TuneHits,
			TuneMisses: st.TuneMisses,
		}
		if in != nil {
			rec.StealsIn, rec.StealsOut = in[i], out[i]
		}
		// Drain the shard collector (ordered after the epoch's event
		// processing by the barrier's WaitGroup).
		c := r.cols[i]
		if c.joins > 0 {
			rec.Joins = int(c.joins)
			rec.ErrMeanPct = c.errSum / float64(c.joins)
			r.joins[i] += c.joins
			r.errSum[i] += c.errSum
			c.joins, c.errSum = 0, 0
		}
		if len(c.drifts) > 0 {
			rec.Drift = append([]DriftMark(nil), c.drifts...)
			r.drifts[i] += int64(len(c.drifts))
			c.drifts = c.drifts[:0]
			driftThisEpoch = true
		}
		r.append(rec)

		r.loadJobS[i] += float64(st.Queue+st.Active) * (t1 - t0)
		r.last[i] = st
	}
	r.lastT = t1

	// Slide the queue-growth regression window and refresh the
	// aggregate observables.
	total := 0
	for i := 0; i < s; i++ {
		total += stats[i].Queue
	}
	r.qt[r.qpos], r.qv[r.qpos] = t1, float64(total)
	r.qpos = (r.qpos + 1) % len(r.qt)
	if r.qn < len(r.qt) {
		r.qn++
	}
	r.slope = slope(r.qt[:r.qn], r.qv[:r.qn])
	r.fairLast = jainStats(stats)

	r.evalTriggers(epoch, t1, stats, driftThisEpoch)
}

// append pushes one record into the ring, overwriting the oldest when
// full.
func (r *Recorder) append(rec EpochRecord) {
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
		r.next = len(r.ring) % cap(r.ring)
		r.count = len(r.ring)
		return
	}
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	r.dropped++
}

// snapshotLocked copies the ring in chronological order (oldest first).
func (r *Recorder) snapshotLocked() []EpochRecord {
	out := make([]EpochRecord, 0, r.count)
	if r.count < cap(r.ring) {
		return append(out, r.ring...)
	}
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// Snapshot returns the ring's records in chronological order.
func (r *Recorder) Snapshot() []EpochRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// Epochs reports how many epochs have been recorded.
func (r *Recorder) Epochs() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epochs
}

// StealFlow returns a copy of the cumulative steal-flow matrix
// ([from][to] stolen jobs).
func (r *Recorder) StealFlow() [][]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([][]int64, len(r.flow))
	for i, row := range r.flow {
		out[i] = append([]int64(nil), row...)
	}
	return out
}

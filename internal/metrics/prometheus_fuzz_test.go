package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fuzzSnapshot builds a snapshot that deliberately stresses the
// renderer's naming: the same raw names appear in several sections, a
// gauge squats on the first counter's name plus "_sum", and a second
// histogram squats on the first one's name plus "_count" — the shapes
// that collide after sanitization or through a summary's implicit
// sample suffixes.
func fuzzSnapshot(cname, gname, hname, sname string, v float64) Snapshot {
	return Snapshot{
		Counters: []CounterSnap{
			{Name: cname, Value: 7},
			{Name: gname, Value: 9},
		},
		Gauges: []GaugeSnap{
			{Name: gname, Value: v},
			{Name: cname + "_sum", Value: v},
		},
		Histograms: []HistSnap{
			{Name: hname, Count: 3, Sum: v, P50: v, P95: v, P99: v},
			{Name: hname + "_count", Count: 0},
		},
		Series: []SeriesSnap{
			{Name: sname, Last: v},
		},
	}
}

// FuzzWritePrometheus renders arbitrary instrument names and values and
// round-trips the exposition through the strict parser: whatever the
// registry holds, /metrics must stay well-formed 0.0.4 text with no
// duplicate families or samples.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("sched.submitted", "power.energy_j", "sched.wait_s", "sched.queue_depth", 331.61)
	f.Add("a.b", "a+b", "a/b", "a b", 1.5)                  // all sanitize to a_b
	f.Add("wait_s_sum", "wait_s_count", "wait_s", "x", 0.0) // summary suffix squatting
	f.Add("bad\nname", `quo"te`, "back\\slash", "tab\tname", math.NaN())
	f.Add("温度.測定", "énergie", "μ.ops", "код", math.Inf(1))
	f.Add("", "_", ":", "2leading.digit", math.Inf(-1))
	f.Add("x", "x", "x", "x", -0.0)
	f.Add("x_2", "x", "x.2", "x+2", 1e300)
	f.Fuzz(func(t *testing.T, cname, gname, hname, sname string, v float64) {
		snap := fuzzSnapshot(cname, gname, hname, sname, v)
		var buf bytes.Buffer
		if err := snap.WritePrometheus(&buf); err != nil {
			t.Fatalf("WritePrometheus: %v", err)
		}
		fams, err := parsePromText(buf.String())
		if err != nil {
			t.Fatalf("round-trip: %v\nexposition:\n%s", err, buf.String())
		}
		if len(fams) != 7 {
			t.Fatalf("got %d families, want one per instrument (7):\n%s", len(fams), buf.String())
		}
		// 2 counters + 2 gauges + (3 quantiles + sum + count) + (sum +
		// count) + 1 series sample.
		samples := 0
		for _, fam := range fams {
			samples += len(fam.samples)
		}
		if samples != 12 {
			t.Fatalf("got %d samples, want 12:\n%s", samples, buf.String())
		}
		// Rendering is a pure function of the snapshot.
		var again bytes.Buffer
		if err := snap.WritePrometheus(&again); err != nil {
			t.Fatalf("second render: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), again.Bytes()) {
			t.Fatal("two renders of the same snapshot differ")
		}
		// The shard-labeled merged form must round-trip too: same 7
		// families, one labeled sample per shard per instrument sample,
		// and no duplicates (the shard label disambiguates).
		var sharded bytes.Buffer
		if err := WritePrometheusSharded(&sharded, []Snapshot{snap, snap}); err != nil {
			t.Fatalf("WritePrometheusSharded: %v", err)
		}
		sfams, err := parsePromText(sharded.String())
		if err != nil {
			t.Fatalf("sharded round-trip: %v\nexposition:\n%s", err, sharded.String())
		}
		if len(sfams) != 7 {
			t.Fatalf("sharded: got %d families, want 7:\n%s", len(sfams), sharded.String())
		}
		ssamples := 0
		for _, fam := range sfams {
			for _, sm := range fam.samples {
				if !strings.Contains(sm.labels, `shard="`) {
					t.Fatalf("sharded sample without shard label: %+v\n%s", sm, sharded.String())
				}
				ssamples++
			}
		}
		if ssamples != 24 {
			t.Fatalf("sharded: got %d samples, want 12 per shard x 2:\n%s", ssamples, sharded.String())
		}
		var sagain bytes.Buffer
		if err := WritePrometheusSharded(&sagain, []Snapshot{snap, snap}); err != nil {
			t.Fatalf("second sharded render: %v", err)
		}
		if !bytes.Equal(sharded.Bytes(), sagain.Bytes()) {
			t.Fatal("two sharded renders of the same snapshots differ")
		}
	})
}

// TestPrometheusNameCollisions pins the deterministic disambiguation
// the fuzz target relies on: merged sanitized names and summary-suffix
// squatting each get the next free _N variant, in render order.
func TestPrometheusNameCollisions(t *testing.T) {
	snap := Snapshot{
		Counters: []CounterSnap{
			{Name: "a.b", Value: 1},
			{Name: "a+b", Value: 2},
			{Name: "wait_s_sum", Value: 3},
		},
		Histograms: []HistSnap{
			{Name: "a/b", Count: 1, Sum: 4, P50: 4, P95: 4, P99: 4},
			{Name: "wait_s", Count: 0},
		},
	}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())
	var names []string
	for _, fam := range fams {
		names = append(names, fam.name)
	}
	want := []string{
		"ecost_a_b",        // counter a.b takes the base name
		"ecost_a_b_2",      // counter a+b sanitizes to the same name
		"ecost_wait_s_sum", // counter squatting on the summary's sum
		"ecost_a_b_3",      // histogram a/b is the third a_b claimant
		"ecost_wait_s_2",   // summary renamed so wait_s_sum stays unique
	}
	if len(names) != len(want) {
		t.Fatalf("families = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("family[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

// TestPrometheusNonFiniteValues checks NaN and ±Inf survive the
// exposition round trip as the format's literal tokens.
func TestPrometheusNonFiniteValues(t *testing.T) {
	snap := Snapshot{Gauges: []GaugeSnap{
		{Name: "g.nan", Value: math.NaN()},
		{Name: "g.ninf", Value: math.Inf(-1)},
		{Name: "g.pinf", Value: math.Inf(1)},
	}}
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ecost_g_nan NaN", "ecost_g_pinf +Inf", "ecost_g_ninf -Inf"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, buf.String())
		}
	}
	fams := parsePrometheus(t, buf.String())
	if len(fams) != 3 {
		t.Fatalf("families = %+v", fams)
	}
	if v := fams[0].samples[0].value; !math.IsNaN(v) {
		t.Errorf("NaN gauge parsed as %v", v)
	}
	if v := fams[1].samples[0].value; !math.IsInf(v, -1) {
		t.Errorf("-Inf gauge parsed as %v", v)
	}
	if v := fams[2].samples[0].value; !math.IsInf(v, 1) {
		t.Errorf("+Inf gauge parsed as %v", v)
	}
}

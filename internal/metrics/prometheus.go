package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) — what the ecost-sim -serve /metrics endpoint returns
// so a live online run can be scraped. The mapping:
//
//   - counters  → counter families
//   - gauges    → gauge families
//   - histograms → summary families (the snapshot already carries the
//     interpolated p50/p95/p99, which map onto quantile samples more
//     faithfully than re-deriving cumulative buckets would)
//   - series    → a gauge holding the latest sample
//
// Metric names are prefixed "ecost_" and sanitized to the Prometheus
// grammar (dots and other separators become underscores). Sanitizing
// can merge distinct instrument names ("a.b" and "a+b" both become
// ecost_a_b), and a summary's implicit _sum/_count samples can land on
// a sibling instrument's name; the renderer disambiguates both cases
// with a deterministic _2, _3, ... suffix so the exposition never emits
// duplicate families or samples. Like every snapshot renderer, output
// order is fixed (name-sorted within each section), so the exposition
// is deterministic for a deterministic snapshot.

// PromName sanitizes an instrument name into a Prometheus metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("ecost_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP string per the exposition format.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promNamer hands out collision-free family names. Every sample name a
// family will emit (the family name itself plus any implicit suffixes
// like a summary's _sum/_count) is reserved; a later instrument whose
// sanitized name lands on a reserved one gets the next free _N variant.
// Render order is fixed, so the suffixes are deterministic.
type promNamer struct {
	taken map[string]bool
}

func (n *promNamer) claim(instrument string, suffixes ...string) string {
	if n.taken == nil {
		n.taken = make(map[string]bool)
	}
	base := PromName(instrument)
	cand := base
	for i := 2; n.conflicts(cand, suffixes); i++ {
		cand = fmt.Sprintf("%s_%d", base, i)
	}
	n.taken[cand] = true
	for _, sfx := range suffixes {
		n.taken[cand+sfx] = true
	}
	return cand
}

func (n *promNamer) conflicts(cand string, suffixes []string) bool {
	if n.taken[cand] {
		return true
	}
	for _, sfx := range suffixes {
		if n.taken[cand+sfx] {
			return true
		}
	}
	return false
}

// WritePrometheus renders the snapshot as Prometheus text exposition.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var namer promNamer
	head := func(name, src, typ string) {
		fmt.Fprintf(bw, "# HELP %s ecost instrument %s\n", name, promEscapeHelp(src))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}
	for _, c := range s.Counters {
		name := namer.claim(c.Name)
		head(name, c.Name, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := namer.claim(g.Name)
		head(name, g.Name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtF(g.Value))
	}
	for _, h := range s.Histograms {
		name := namer.claim(h.Name, "_sum", "_count")
		head(name, h.Name, "summary")
		if h.Count > 0 {
			fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", name, fmtF(h.P50))
			fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", name, fmtF(h.P95))
			fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", name, fmtF(h.P99))
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, fmtF(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	for _, se := range s.Series {
		name := namer.claim(se.Name)
		head(name, se.Name+" (latest sample)", "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtF(se.Last))
	}
	return bw.Flush()
}

package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) — what the ecost-sim -serve /metrics endpoint returns
// so a live online run can be scraped. The mapping:
//
//   - counters  → counter families
//   - gauges    → gauge families
//   - histograms → summary families (the snapshot already carries the
//     interpolated p50/p95/p99, which map onto quantile samples more
//     faithfully than re-deriving cumulative buckets would)
//   - series    → a gauge holding the latest sample
//
// Metric names are prefixed "ecost_" and sanitized to the Prometheus
// grammar (dots and other separators become underscores). Sanitizing
// can merge distinct instrument names ("a.b" and "a+b" both become
// ecost_a_b), and a summary's implicit _sum/_count samples can land on
// a sibling instrument's name; the renderer disambiguates both cases
// with a deterministic _2, _3, ... suffix so the exposition never emits
// duplicate families or samples. Like every snapshot renderer, output
// order is fixed (name-sorted within each section), so the exposition
// is deterministic for a deterministic snapshot.

// PromName sanitizes an instrument name into a Prometheus metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("ecost_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP string per the exposition format.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promNamer hands out collision-free family names. Every sample name a
// family will emit (the family name itself plus any implicit suffixes
// like a summary's _sum/_count) is reserved; a later instrument whose
// sanitized name lands on a reserved one gets the next free _N variant.
// Render order is fixed, so the suffixes are deterministic.
type promNamer struct {
	taken map[string]bool
}

func (n *promNamer) claim(instrument string, suffixes ...string) string {
	if n.taken == nil {
		n.taken = make(map[string]bool)
	}
	base := PromName(instrument)
	cand := base
	for i := 2; n.conflicts(cand, suffixes); i++ {
		cand = fmt.Sprintf("%s_%d", base, i)
	}
	n.taken[cand] = true
	for _, sfx := range suffixes {
		n.taken[cand+sfx] = true
	}
	return cand
}

func (n *promNamer) conflicts(cand string, suffixes []string) bool {
	if n.taken[cand] {
		return true
	}
	for _, sfx := range suffixes {
		if n.taken[cand+sfx] {
			return true
		}
	}
	return false
}

// WritePrometheus renders the snapshot as Prometheus text exposition.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var namer promNamer
	head := func(name, src, typ string) {
		fmt.Fprintf(bw, "# HELP %s ecost instrument %s\n", name, promEscapeHelp(src))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}
	for _, c := range s.Counters {
		name := namer.claim(c.Name)
		head(name, c.Name, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := namer.claim(g.Name)
		head(name, g.Name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtF(g.Value))
	}
	for _, h := range s.Histograms {
		name := namer.claim(h.Name, "_sum", "_count")
		head(name, h.Name, "summary")
		if h.Count > 0 {
			fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", name, fmtF(h.P50))
			fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", name, fmtF(h.P95))
			fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", name, fmtF(h.P99))
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, fmtF(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	for _, se := range s.Series {
		name := namer.claim(se.Name)
		head(name, se.Name+" (latest sample)", "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtF(se.Last))
	}
	return bw.Flush()
}

// promInstKey identifies one merged family: an instrument name plus
// its occurrence index within its section (a snapshot may legally hold
// several same-named instruments — e.g. a counter and a volatile
// sibling — and the single-snapshot renderer gives each its own
// family, so the merged form must too).
type promInstKey struct {
	name string
	occ  int
}

// promMerge groups one section's instruments across shards by
// (name, occurrence) and returns the keys in render order (name
// ascending, occurrence ascending — the same order the per-snapshot
// renderer claims them in, so collision suffixes stay deterministic).
// bySample maps each key to the per-shard sample index, -1 when that
// shard lacks the instrument.
func promMerge(n int, section func(shard int) []string) (keys []promInstKey, bySample map[promInstKey][]int) {
	bySample = make(map[promInstKey][]int)
	for shard := 0; shard < n; shard++ {
		occ := make(map[string]int)
		for idx, nm := range section(shard) {
			k := promInstKey{nm, occ[nm]}
			occ[nm]++
			row, ok := bySample[k]
			if !ok {
				row = make([]int, n)
				for i := range row {
					row[i] = -1
				}
				bySample[k] = row
				keys = append(keys, k)
			}
			row[shard] = idx
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].occ < keys[j].occ
	})
	return keys, bySample
}

// WritePrometheusSharded merges per-shard snapshots into one
// exposition: every instrument family appears once, carrying one
// sample per shard labeled shard="i" (snaps index order). An
// instrument absent from a shard's snapshot simply has no sample for
// that shard. Families render in the single-snapshot section order —
// counters, gauges, histograms, series, name-sorted over the union —
// and summary quantile samples carry {quantile="q",shard="i"}.
func WritePrometheusSharded(w io.Writer, snaps []Snapshot) error {
	bw := bufio.NewWriter(w)
	var namer promNamer
	head := func(name, src, typ string) {
		fmt.Fprintf(bw, "# HELP %s ecost instrument %s\n", name, promEscapeHelp(src))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}
	n := len(snaps)

	keys, rows := promMerge(n, func(shard int) []string {
		names := make([]string, len(snaps[shard].Counters))
		for i, c := range snaps[shard].Counters {
			names[i] = c.Name
		}
		return names
	})
	for _, k := range keys {
		fam := namer.claim(k.name)
		head(fam, k.name, "counter")
		for shard, idx := range rows[k] {
			if idx >= 0 {
				fmt.Fprintf(bw, "%s{shard=\"%d\"} %d\n", fam, shard, snaps[shard].Counters[idx].Value)
			}
		}
	}

	keys, rows = promMerge(n, func(shard int) []string {
		names := make([]string, len(snaps[shard].Gauges))
		for i, g := range snaps[shard].Gauges {
			names[i] = g.Name
		}
		return names
	})
	for _, k := range keys {
		fam := namer.claim(k.name)
		head(fam, k.name, "gauge")
		for shard, idx := range rows[k] {
			if idx >= 0 {
				fmt.Fprintf(bw, "%s{shard=\"%d\"} %s\n", fam, shard, fmtF(snaps[shard].Gauges[idx].Value))
			}
		}
	}

	keys, rows = promMerge(n, func(shard int) []string {
		names := make([]string, len(snaps[shard].Histograms))
		for i, h := range snaps[shard].Histograms {
			names[i] = h.Name
		}
		return names
	})
	for _, k := range keys {
		fam := namer.claim(k.name, "_sum", "_count")
		head(fam, k.name, "summary")
		for shard, idx := range rows[k] {
			if idx < 0 {
				continue
			}
			h := snaps[shard].Histograms[idx]
			if h.Count > 0 {
				fmt.Fprintf(bw, "%s{quantile=\"0.5\",shard=\"%d\"} %s\n", fam, shard, fmtF(h.P50))
				fmt.Fprintf(bw, "%s{quantile=\"0.95\",shard=\"%d\"} %s\n", fam, shard, fmtF(h.P95))
				fmt.Fprintf(bw, "%s{quantile=\"0.99\",shard=\"%d\"} %s\n", fam, shard, fmtF(h.P99))
			}
			fmt.Fprintf(bw, "%s_sum{shard=\"%d\"} %s\n", fam, shard, fmtF(h.Sum))
			fmt.Fprintf(bw, "%s_count{shard=\"%d\"} %d\n", fam, shard, h.Count)
		}
	}

	keys, rows = promMerge(n, func(shard int) []string {
		names := make([]string, len(snaps[shard].Series))
		for i, se := range snaps[shard].Series {
			names[i] = se.Name
		}
		return names
	})
	for _, k := range keys {
		fam := namer.claim(k.name)
		head(fam, k.name+" (latest sample)", "gauge")
		for shard, idx := range rows[k] {
			if idx >= 0 {
				fmt.Fprintf(bw, "%s{shard=\"%d\"} %s\n", fam, shard, fmtF(snaps[shard].Series[idx].Last))
			}
		}
	}
	return bw.Flush()
}

package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) — what the ecost-sim -serve /metrics endpoint returns
// so a live online run can be scraped. The mapping:
//
//   - counters  → counter families
//   - gauges    → gauge families
//   - histograms → summary families (the snapshot already carries the
//     interpolated p50/p95/p99, which map onto quantile samples more
//     faithfully than re-deriving cumulative buckets would)
//   - series    → a gauge holding the latest sample
//
// Metric names are prefixed "ecost_" and sanitized to the Prometheus
// grammar (dots and other separators become underscores). Like every
// snapshot renderer, output order is fixed (name-sorted within each
// section), so the exposition is deterministic for a deterministic
// snapshot.

// PromName sanitizes an instrument name into a Prometheus metric name.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 6)
	b.WriteString("ecost_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeHelp escapes a HELP string per the exposition format.
func promEscapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the snapshot as Prometheus text exposition.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	head := func(name, src, typ string) {
		fmt.Fprintf(bw, "# HELP %s ecost instrument %s\n", name, promEscapeHelp(src))
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typ)
	}
	for _, c := range s.Counters {
		name := PromName(c.Name)
		head(name, c.Name, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, c.Value)
	}
	for _, g := range s.Gauges {
		name := PromName(g.Name)
		head(name, g.Name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtF(g.Value))
	}
	for _, h := range s.Histograms {
		name := PromName(h.Name)
		head(name, h.Name, "summary")
		if h.Count > 0 {
			fmt.Fprintf(bw, "%s{quantile=\"0.5\"} %s\n", name, fmtF(h.P50))
			fmt.Fprintf(bw, "%s{quantile=\"0.95\"} %s\n", name, fmtF(h.P95))
			fmt.Fprintf(bw, "%s{quantile=\"0.99\"} %s\n", name, fmtF(h.P99))
		}
		fmt.Fprintf(bw, "%s_sum %s\n", name, fmtF(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count)
	}
	for _, se := range s.Series {
		name := PromName(se.Name)
		head(name, se.Name+" (latest sample)", "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtF(se.Last))
	}
	return bw.Flush()
}

package metrics

// The typed scheduler event log: the run-time flow of the paper's
// Figure 4 (submit → classify → queue → pair → tune → complete) recorded
// as a deterministic, sim-time-ordered sequence. Events are append-only;
// Snapshot copies them in emission order.

// EventKind labels one scheduler decision.
type EventKind uint8

// The scheduler event vocabulary.
const (
	EvSubmit   EventKind = iota // job arrived and was queued
	EvLeap                      // a non-head job leapt forward past the reserved head
	EvReserve                   // the reserved head claimed a fresh node slot
	EvPair                      // a partner was co-located next to a resident
	EvTune                      // a (re-)tuning decision was applied
	EvComplete                  // a job finished
	EvDrift                     // the STP drift detector fired an alarm
	EvSteal                     // a starved shard claimed a queued job from a neighbor
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvLeap:
		return "leap"
	case EvReserve:
		return "reserve"
	case EvPair:
		return "pair"
	case EvTune:
		return "tune"
	case EvComplete:
		return "complete"
	case EvDrift:
		return "drift"
	case EvSteal:
		return "steal"
	}
	return "unknown"
}

// MarshalText makes the kind render as its name in JSON expositions.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one recorded scheduler decision.
type Event struct {
	// At is the simulated time of the decision in seconds.
	At   float64   `json:"at"`
	Kind EventKind `json:"kind"`
	// Job is the subject job's ID (-1 when not job-scoped).
	Job int `json:"job"`
	// Node is the target node (-1 when not node-scoped).
	Node int `json:"node"`
	// Detail is a short free-form annotation (classes, configs, …). It
	// must be derived from simulated state only, so the log stays
	// deterministic.
	Detail string `json:"detail,omitempty"`
}

// Emit appends an event to the log. No-op on a nil registry.
func (r *Registry) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the event log in emission order.
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// EventCount reports the number of recorded events.
func (r *Registry) EventCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

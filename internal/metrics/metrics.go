// Package metrics is the observability substrate of the ECoST
// controller: a small, allocation-light, stdlib-only registry of atomic
// counters, gauges, fixed-bucket histograms (with p50/p95/p99 summaries)
// and sim-time series samplers, plus a typed scheduler event log
// (events.go).
//
// Two properties shape the design:
//
//  1. The simulator is deterministic, so every metric derived from
//     simulated quantities is deterministic too — Snapshot() sorts all
//     names and the text/JSON expositions are byte-identical across
//     same-seed runs. Wall-clock measurements (e.g. STP prediction
//     latency) are real and therefore jittery; instruments that carry
//     them are marked volatile and excluded from the deterministic
//     exposition unless explicitly requested.
//
//  2. Instrumented hot paths must cost nothing when observability is
//     off. Every method is nil-safe: a nil *Registry hands out nil
//     instruments, and operations on nil instruments are single-branch
//     no-ops (see BenchmarkDisabledCounter — sub-nanosecond).
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v       atomic.Int64
	volatil bool // operational instrument: excluded from deterministic snapshots
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Volatile reports whether the counter is excluded from deterministic
// snapshots (implementation-effort telemetry like cache hit rates,
// which must not leak into golden expositions).
func (c *Counter) Volatile() bool { return c != nil && c.volatil }

// atomicFloat is a float64 updated with compare-and-swap on its bits.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func (f *atomicFloat) min(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) max(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Gauge is an instantaneous value (queue depth, accumulated joules).
type Gauge struct {
	v       atomicFloat
	volatil bool // wall-clock instrument: excluded from deterministic snapshots
}

// Set stores the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v.store(v)
	}
}

// Add accumulates a delta.
func (g *Gauge) Add(v float64) {
	if g != nil {
		g.v.add(v)
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Volatile reports whether the gauge carries wall-clock readings.
func (g *Gauge) Volatile() bool { return g != nil && g.volatil }

// Histogram is a fixed-bucket histogram: observations land in the first
// bucket whose upper bound is ≥ the value, with an implicit +Inf
// overflow bucket. Quantiles are estimated by linear interpolation
// within the bucket, clamped to the observed min/max.
type Histogram struct {
	bounds   []float64 // sorted upper bounds
	counts   []atomic.Int64
	count    atomic.Int64
	sum      atomicFloat
	min, max atomicFloat
	volatil  bool // wall-clock instrument: excluded from deterministic snapshots
}

func newHistogram(bounds []float64, volatil bool) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1), volatil: volatil}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// The nil branch must stay small enough to inline: disabled
	// observability compiles down to a compare-and-return at call sites.
	if h == nil {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.min(v)
	h.max.max(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts.
// It returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	mn, mx := h.min.load(), h.max.load()
	rank := q * float64(n)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := mn
			if i > 0 {
				lo = math.Max(mn, h.bounds[i-1])
			}
			hi := mx
			if i < len(h.bounds) {
				hi = math.Min(mx, h.bounds[i])
			}
			if hi < lo {
				hi = lo
			}
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return mx
}

// Volatile reports whether the histogram carries wall-clock readings.
func (h *Histogram) Volatile() bool { return h != nil && h.volatil }

// Point is one series sample.
type Point struct {
	At float64 `json:"at"`
	V  float64 `json:"v"`
}

// Series records a value over simulated time. When the point budget is
// exhausted it decimates deterministically: every other retained point
// is dropped and the sampling stride doubles, so long runs keep a
// bounded, evenly thinned trace.
type Series struct {
	mu     sync.Mutex
	pts    []Point
	stride int
	phase  int
	budget int
}

// defaultSeriesBudget bounds a series' retained points.
const defaultSeriesBudget = 4096

func newSeries() *Series { return &Series{stride: 1, budget: defaultSeriesBudget} }

// Sample appends the value v at sim-time t.
func (s *Series) Sample(t, v float64) {
	// Inlineable nil branch; see Histogram.Observe.
	if s == nil {
		return
	}
	s.sample(t, v)
}

func (s *Series) sample(t, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.phase++
	if s.phase < s.stride {
		return
	}
	s.phase = 0
	s.pts = append(s.pts, Point{At: t, V: v})
	if len(s.pts) >= s.budget {
		kept := s.pts[:0]
		for i := 0; i < len(s.pts); i += 2 {
			kept = append(kept, s.pts[i])
		}
		s.pts = kept
		s.stride *= 2
	}
}

// Points returns a copy of the retained samples in arrival order.
func (s *Series) Points() []Point {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.pts...)
}

// Registry owns the named instruments. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is the disabled mode:
// every lookup returns a nil instrument whose operations are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
	events   []Event
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.counter(name, false)
}

// VolatileCounter is Counter for implementation-effort telemetry
// (e.g. memoization hit/miss rates): the instrument is excluded from
// deterministic snapshots, so optimizations that change how often it
// fires — without changing any simulated outcome — leave the golden
// expositions byte-identical.
func (r *Registry) VolatileCounter(name string) *Counter {
	return r.counter(name, true)
}

func (r *Registry) counter(name string, volatil bool) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{volatil: volatil}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.gauge(name, false)
}

// VolatileGauge is Gauge for wall-clock measurements (build and train
// durations): the instrument is excluded from deterministic snapshots.
func (r *Registry) VolatileGauge(name string) *Gauge {
	return r.gauge(name, true)
}

func (r *Registry) gauge(name string, volatil bool) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{volatil: volatil}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the existing
// instrument and ignore the bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, false)
}

// VolatileHistogram is Histogram for wall-clock measurements: the
// instrument is excluded from deterministic snapshots.
func (r *Registry) VolatileHistogram(name string, bounds []float64) *Histogram {
	return r.histogram(name, bounds, true)
}

func (r *Registry) histogram(name string, bounds []float64, volatil bool) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds, volatil)
		r.hists[name] = h
	}
	return h
}

// Series returns the named series, creating it on first use.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = newSeries()
		r.series[name] = s
	}
	return s
}

// ExpBuckets returns n exponential bucket bounds start, start·factor, …
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// LinearBuckets returns n linear bucket bounds start, start+width, …
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, start+float64(i)*width)
	}
	return out
}

package metrics

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels string
	value  float64
}

// promFamily is one parsed metric family.
type promFamily struct {
	name    string
	typ     string
	samples []promSample
}

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (\S+)$`)
)

// parsePromText is a strict parser for the subset of the text
// exposition format 0.0.4 the renderer emits. It rejects any line that
// is not a well-formed HELP, TYPE, or sample line, samples appearing
// outside their family, duplicate families, and duplicate samples. The
// non-fatal error form lets the fuzz target report the exposition that
// broke it alongside the parse error.
func parsePromText(text string) ([]promFamily, error) {
	var fams []promFamily
	var cur *promFamily
	helpSeen := map[string]bool{}
	seen := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promMetricRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: malformed HELP: %q", ln+1, line)
			}
			if helpSeen[name] {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !promMetricRe.MatchString(fields[0]) {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", ln+1, fields[1])
			}
			if !helpSeen[fields[0]] {
				return nil, fmt.Errorf("line %d: TYPE for %s without preceding HELP", ln+1, fields[0])
			}
			fams = append(fams, promFamily{name: fields[0], typ: fields[1]})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "#"):
			return nil, fmt.Errorf("line %d: unexpected comment %q", ln+1, line)
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d: malformed sample: %q", ln+1, line)
			}
			name, labels, raw := m[1], m[2], m[3]
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad value %q: %v", ln+1, raw, err)
			}
			if cur == nil {
				return nil, fmt.Errorf("line %d: sample %q before any TYPE", ln+1, name)
			}
			base := cur.name
			if name != base && name != base+"_sum" && name != base+"_count" {
				return nil, fmt.Errorf("line %d: sample %q outside family %q", ln+1, name, base)
			}
			if (name == base+"_sum" || name == base+"_count") && cur.typ != "summary" && cur.typ != "histogram" {
				return nil, fmt.Errorf("line %d: %s sample in %s family", ln+1, name, cur.typ)
			}
			key := name + labels
			if seen[key] {
				return nil, fmt.Errorf("line %d: duplicate sample %q", ln+1, key)
			}
			seen[key] = true
			cur.samples = append(cur.samples, promSample{name: name, labels: labels, value: v})
		}
	}
	return fams, nil
}

// parsePrometheus is the test-fatal wrapper around parsePromText.
func parsePrometheus(t *testing.T, text string) []promFamily {
	t.Helper()
	fams, err := parsePromText(text)
	if err != nil {
		t.Fatalf("%v\nexposition:\n%s", err, text)
	}
	return fams
}

// promRegistry builds a registry exercising every instrument kind with
// the awkward names the scheduler actually uses.
func promRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("sched.submitted").Add(16)
	reg.Counter("sched.pair.C+C").Add(3)
	reg.Gauge("power.energy_j.idle").Set(331.61)
	reg.Gauge("trace.jobs").Set(16)
	h := reg.Histogram("sched.wait_s.I/O", ExpBuckets(16, 2, 8))
	for _, v := range []float64{12, 40, 95, 300, 1200} {
		h.Observe(v)
	}
	reg.Histogram("stp.predict.evals", ExpBuckets(1, 4, 6)) // empty histogram
	s := reg.Series("sched.queue_depth")
	s.Sample(0, 1)
	s.Sample(10, 4)
	return reg
}

// TestPrometheusRoundTrip renders a representative snapshot and parses
// it back, checking family structure and values survive.
func TestPrometheusRoundTrip(t *testing.T) {
	snap := promRegistry().Snapshot(false)
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())
	byName := map[string]promFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	want := map[string]string{
		"ecost_sched_submitted":     "counter",
		"ecost_sched_pair_C_C":      "counter",
		"ecost_power_energy_j_idle": "gauge",
		"ecost_trace_jobs":          "gauge",
		"ecost_sched_wait_s_I_O":    "summary",
		"ecost_stp_predict_evals":   "summary",
		"ecost_sched_queue_depth":   "gauge",
	}
	for name, typ := range want {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %s missing; exposition:\n%s", name, buf.String())
		}
		if f.typ != typ {
			t.Errorf("family %s has type %s, want %s", name, f.typ, typ)
		}
	}
	// Value fidelity.
	if f := byName["ecost_sched_submitted"]; len(f.samples) != 1 || f.samples[0].value != 16 {
		t.Errorf("counter samples = %+v", f.samples)
	}
	if f := byName["ecost_power_energy_j_idle"]; len(f.samples) != 1 || f.samples[0].value != 331.61 {
		t.Errorf("gauge samples = %+v", f.samples)
	}
	// The populated summary carries three quantiles + sum + count, with
	// non-decreasing quantile values and the exact observation count.
	f := byName["ecost_sched_wait_s_I_O"]
	if len(f.samples) != 5 {
		t.Fatalf("summary samples = %+v", f.samples)
	}
	var qs []float64
	for _, sm := range f.samples {
		switch {
		case strings.HasSuffix(sm.name, "_count"):
			if sm.value != 5 {
				t.Errorf("summary count = %v, want 5", sm.value)
			}
		case strings.HasSuffix(sm.name, "_sum"):
			if sm.value != 12+40+95+300+1200 {
				t.Errorf("summary sum = %v", sm.value)
			}
		default:
			if !strings.Contains(sm.labels, "quantile=") {
				t.Errorf("quantile sample missing label: %+v", sm)
			}
			qs = append(qs, sm.value)
		}
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Errorf("quantiles not monotone: %v", qs)
		}
	}
	// The empty summary omits quantiles but keeps sum/count.
	if f := byName["ecost_stp_predict_evals"]; len(f.samples) != 2 {
		t.Errorf("empty summary samples = %+v", f.samples)
	}
	// The series gauge carries the latest sample.
	if f := byName["ecost_sched_queue_depth"]; len(f.samples) != 1 || f.samples[0].value != 4 {
		t.Errorf("series samples = %+v", f.samples)
	}
}

// TestPrometheusShardedRoundTrip renders two different per-shard
// registries through the merged shard-labeled writer and parses the
// exposition back: one family per instrument, one shard="i" sample per
// shard that holds it, values intact.
func TestPrometheusShardedRoundTrip(t *testing.T) {
	reg0 := NewRegistry()
	reg0.Counter("sched.submitted").Add(16)
	reg0.Gauge("power.energy_j.idle").Set(331.61)
	h := reg0.Histogram("sched.wait_s", ExpBuckets(16, 2, 8))
	h.Observe(12)
	h.Observe(40)
	reg0.Series("sched.queue_depth").Sample(0, 3)
	reg1 := NewRegistry()
	reg1.Counter("sched.submitted").Add(9)
	reg1.Counter("sched.steals_in").Add(4) // only shard 1 has this one
	reg1.Gauge("power.energy_j.idle").Set(120.5)

	var buf bytes.Buffer
	if err := WritePrometheusSharded(&buf, []Snapshot{reg0.Snapshot(false), reg1.Snapshot(false)}); err != nil {
		t.Fatal(err)
	}
	fams := parsePrometheus(t, buf.String())
	byName := map[string]promFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	sub, ok := byName["ecost_sched_submitted"]
	if !ok || len(sub.samples) != 2 {
		t.Fatalf("submitted family = %+v\n%s", sub, buf.String())
	}
	if sub.samples[0].labels != `{shard="0"}` || sub.samples[0].value != 16 {
		t.Errorf("shard 0 sample = %+v", sub.samples[0])
	}
	if sub.samples[1].labels != `{shard="1"}` || sub.samples[1].value != 9 {
		t.Errorf("shard 1 sample = %+v", sub.samples[1])
	}
	// The shard-1-only counter has exactly one labeled sample.
	if f := byName["ecost_sched_steals_in"]; len(f.samples) != 1 || f.samples[0].labels != `{shard="1"}` {
		t.Errorf("steals_in samples = %+v", f.samples)
	}
	// The shard-0-only summary: 3 quantiles + sum + count, every label
	// set carrying the shard.
	f := byName["ecost_sched_wait_s"]
	if f.typ != "summary" || len(f.samples) != 5 {
		t.Fatalf("wait_s family = %+v", f)
	}
	for _, sm := range f.samples {
		if !strings.Contains(sm.labels, `shard="0"`) {
			t.Errorf("summary sample missing shard label: %+v", sm)
		}
	}
	// Determinism across renders.
	var again bytes.Buffer
	if err := WritePrometheusSharded(&again, []Snapshot{reg0.Snapshot(false), reg1.Snapshot(false)}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != again.String() {
		t.Fatal("sharded exposition not deterministic")
	}
}

// TestPrometheusDeterministic renders twice from equal registries.
func TestPrometheusDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := promRegistry().Snapshot(false).WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("prometheus exposition not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sched.submitted": "ecost_sched_submitted",
		"sched.pair.C+C":  "ecost_sched_pair_C_C",
		"a-b c/d":         "ecost_a_b_c_d",
		"already_ok:x":    "ecost_already_ok:x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

package metrics

import (
	"bytes"
	"math"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", LinearBuckets(10, 10, 10)) // 10,20,…,100
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %v", h.Sum())
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 50, 10},
		{0.95, 95, 10},
		{0.99, 99, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("p%.0f = %v, want %v ± %v", 100*tc.q, got, tc.want, tc.tol)
		}
	}
	// Quantiles clamp to observed extremes.
	if q := h.Quantile(1); q > 100 {
		t.Errorf("p100 = %v exceeds observed max", q)
	}
	if q := h.Quantile(0.001); q < 1 {
		t.Errorf("p0.1 = %v below observed min", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(1000)
	if got := h.Quantile(0.5); got != 1000 {
		t.Fatalf("overflow quantile = %v, want the observed max", got)
	}
}

func TestSeriesDecimation(t *testing.T) {
	s := newSeries()
	s.budget = 8
	for i := 0; i < 100; i++ {
		s.Sample(float64(i), float64(i))
	}
	pts := s.Points()
	if len(pts) == 0 || len(pts) >= 8 {
		t.Fatalf("retained %d points, want 0 < n < budget", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At <= pts[i-1].At {
			t.Fatalf("points out of order after decimation: %v", pts)
		}
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	r.Histogram("x", nil).Observe(1)
	r.VolatileHistogram("x", nil).Observe(1)
	r.Series("x").Sample(0, 1)
	r.Emit(Event{Kind: EvSubmit})
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 ||
		r.Histogram("x", nil).Count() != 0 || r.Histogram("x", nil).Quantile(0.5) != 0 {
		t.Fatal("nil instruments reported values")
	}
	if r.Events() != nil || r.EventCount() != 0 || r.Series("x").Points() != nil {
		t.Fatal("nil registry reported state")
	}
	snap := r.Snapshot(true)
	var buf bytes.Buffer
	if err := snap.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogOrderAndKinds(t *testing.T) {
	r := NewRegistry()
	kinds := []EventKind{EvSubmit, EvLeap, EvReserve, EvPair, EvTune, EvComplete}
	for i, k := range kinds {
		r.Emit(Event{At: float64(i), Kind: k, Job: i, Node: -1})
	}
	evs := r.Events()
	if len(evs) != len(kinds) {
		t.Fatalf("logged %d events, want %d", len(evs), len(kinds))
	}
	seen := map[string]bool{}
	for i, e := range evs {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d kind %v, want %v", i, e.Kind, kinds[i])
		}
		if s := e.Kind.String(); s == "unknown" || seen[s] {
			t.Fatalf("kind %d renders %q", e.Kind, s)
		}
		seen[e.Kind.String()] = true
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("z.count").Add(3)
		r.Counter("a.count").Inc()
		r.Gauge("m.gauge").Set(1.25)
		h := r.Histogram("wait", ExpBuckets(1, 2, 10))
		for _, v := range []float64{1, 3, 9, 27} {
			h.Observe(v)
		}
		r.VolatileHistogram("wall_ns", ExpBuckets(100, 10, 5)).Observe(1234)
		se := r.Series("depth")
		se.Sample(0, 1)
		se.Sample(10, 2)
		r.Emit(Event{At: 0, Kind: EvSubmit, Job: 0, Node: -1, Detail: "wc@5G"})
		return r
	}
	text := func(r *Registry, vol bool) string {
		var buf bytes.Buffer
		if err := r.Snapshot(vol).WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := text(build(), false), text(build(), false)
	if a != b {
		t.Fatalf("snapshot text not deterministic:\n%s\nvs\n%s", a, b)
	}
	if bytes.Contains([]byte(a), []byte("wall_ns")) {
		t.Fatal("volatile histogram leaked into the deterministic exposition")
	}
	if !bytes.Contains([]byte(text(build(), true)), []byte("wall_ns")) {
		t.Fatal("volatile histogram missing from the full exposition")
	}
	// Counters come out name-sorted.
	snap := build().Snapshot(false)
	if snap.Counters[0].Name != "a.count" || snap.Counters[1].Name != "z.count" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(jsonBuf.Bytes(), []byte(`"kind": "submit"`)) {
		t.Fatalf("JSON exposition lacks readable event kinds:\n%s", jsonBuf.String())
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines;
// run under -race this is the data-race check the CI race job relies on.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", ExpBuckets(1, 2, 8)).Observe(float64(i % 50))
				r.Series("s").Sample(float64(i), float64(g))
				if i%100 == 0 {
					r.Emit(Event{At: float64(i), Kind: EvTune, Job: g, Node: -1})
					_ = r.Snapshot(true) // snapshots race with writers
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Gauge("g").Value(); got != goroutines*per {
		t.Fatalf("gauge = %v, want %v", got, goroutines*per)
	}
	if got := r.Histogram("h", nil).Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*per)
	}
	if got := r.EventCount(); got != goroutines*(per/100) {
		t.Fatalf("events = %d, want %d", got, goroutines*(per/100))
	}
}

// BenchmarkDisabledCounter proves the disabled-registry path is a
// single nil check (≤1 ns/op): instrumented code resolves handles once
// and hot paths hit nil instruments.
func BenchmarkDisabledCounter(b *testing.B) {
	var c *Counter // what a nil registry hands out
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkDisabledHistogram is the disabled path for Observe.
func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1)
	}
}

// BenchmarkEnabledCounter is the enabled cost for contrast.
func BenchmarkEnabledCounter(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func TestVolatileGaugeExcludedFromSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Gauge("stable").Set(1)
	r.VolatileGauge("wall").Set(123.4)
	snap := r.Snapshot(false)
	for _, g := range snap.Gauges {
		if g.Name == "wall" {
			t.Fatal("volatile gauge leaked into deterministic snapshot")
		}
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "stable" {
		t.Fatalf("deterministic gauges = %+v, want just stable", snap.Gauges)
	}
	full := r.Snapshot(true)
	found := false
	for _, g := range full.Gauges {
		if g.Name == "wall" {
			found = true
			if !g.Volatile {
				t.Fatal("wall gauge snapshot not marked volatile")
			}
			if g.Value != 123.4 {
				t.Fatalf("wall gauge = %v, want 123.4", g.Value)
			}
		}
	}
	if !found {
		t.Fatal("volatile gauge missing from includeVolatile snapshot")
	}
	var buf bytes.Buffer
	if err := full.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("(volatile)")) {
		t.Fatal("text exposition does not tag the volatile gauge")
	}
	if r.VolatileGauge("wall") != r.Gauge("wall") {
		t.Fatal("volatile gauge lookup returned a different instrument")
	}
}

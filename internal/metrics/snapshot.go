package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time, name-sorted copy of every instrument.
// Taken from a deterministic simulation it is itself deterministic:
// rendering the same snapshot twice — or the snapshot of two same-seed
// runs — yields byte-identical output (volatile wall-clock instruments
// are excluded unless requested; see Registry.Snapshot).
type Snapshot struct {
	Counters   []CounterSnap `json:"counters,omitempty"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
	Series     []SeriesSnap  `json:"series,omitempty"`
	Events     []Event       `json:"events,omitempty"`
}

// CounterSnap is one counter's reading.
type CounterSnap struct {
	Name     string `json:"name"`
	Value    int64  `json:"value"`
	Volatile bool   `json:"volatile,omitempty"`
}

// GaugeSnap is one gauge's reading.
type GaugeSnap struct {
	Name     string  `json:"name"`
	Value    float64 `json:"value"`
	Volatile bool    `json:"volatile,omitempty"`
}

// HistSnap summarizes one histogram.
type HistSnap struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	Sum      float64 `json:"sum"`
	Min      float64 `json:"min"`
	Max      float64 `json:"max"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Volatile bool    `json:"volatile,omitempty"`
}

// SeriesSnap carries one series' retained points plus a summary.
type SeriesSnap struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
	Last   float64 `json:"last"`
	Max    float64 `json:"max"`
}

// Snapshot copies every instrument, sorted by name. Volatile
// instruments (wall-clock readings, implementation-effort counters)
// are included only when includeVolatile is true; everything else in
// the snapshot is deterministic.
func (r *Registry) Snapshot(includeVolatile bool) Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	series := make(map[string]*Series, len(r.series))
	for k, v := range r.series {
		series[k] = v
	}
	s.Events = append([]Event(nil), r.events...)
	r.mu.Unlock()

	for name, c := range counters {
		if c.Volatile() && !includeVolatile {
			continue
		}
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value(), Volatile: c.Volatile()})
	}
	for name, g := range gauges {
		if g.Volatile() && !includeVolatile {
			continue
		}
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value(), Volatile: g.Volatile()})
	}
	for name, h := range hists {
		if h.Volatile() && !includeVolatile {
			continue
		}
		hs := HistSnap{Name: name, Count: h.Count(), Sum: h.Sum(), Volatile: h.Volatile()}
		if hs.Count > 0 {
			hs.Min = h.min.load()
			hs.Max = h.max.load()
			hs.P50 = h.Quantile(0.50)
			hs.P95 = h.Quantile(0.95)
			hs.P99 = h.Quantile(0.99)
		}
		s.Histograms = append(s.Histograms, hs)
	}
	for name, se := range series {
		ss := SeriesSnap{Name: name, Points: se.Points()}
		for i, p := range ss.Points {
			if i == 0 || p.V > ss.Max {
				ss.Max = p.V
			}
			ss.Last = p.V
		}
		s.Series = append(s.Series, ss)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	sort.Slice(s.Series, func(i, j int) bool { return s.Series[i].Name < s.Series[j].Name })
	return s
}

// fmtF renders a float the same way everywhere (shortest round-trip
// form) so text expositions are byte-stable.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteText renders the snapshot as a human-readable exposition. Series
// are summarized (count/last/max); the full point lists travel in the
// JSON form.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "# ecost metrics snapshot"); err != nil {
		return err
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, c := range s.Counters {
			tag := ""
			if c.Volatile {
				tag = " (volatile)"
			}
			fmt.Fprintf(w, "  %-32s %d%s\n", c.Name, c.Value, tag)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, g := range s.Gauges {
			tag := ""
			if g.Volatile {
				tag = " (volatile)"
			}
			fmt.Fprintf(w, "  %-32s %s%s\n", g.Name, fmtF(g.Value), tag)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, h := range s.Histograms {
			tag := ""
			if h.Volatile {
				tag = " (volatile)"
			}
			if h.Count == 0 {
				fmt.Fprintf(w, "  %-32s count=0%s\n", h.Name, tag)
				continue
			}
			fmt.Fprintf(w, "  %-32s count=%d sum=%s min=%s p50=%s p95=%s p99=%s max=%s%s\n",
				h.Name, h.Count, fmtF(h.Sum), fmtF(h.Min),
				fmtF(h.P50), fmtF(h.P95), fmtF(h.P99), fmtF(h.Max), tag)
		}
	}
	if len(s.Series) > 0 {
		fmt.Fprintln(w, "series:")
		for _, se := range s.Series {
			fmt.Fprintf(w, "  %-32s points=%d last=%s max=%s\n",
				se.Name, len(se.Points), fmtF(se.Last), fmtF(se.Max))
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintln(w, "events:")
		for _, e := range s.Events {
			fmt.Fprintf(w, "  %12.3f %-8s job=%-3d node=%-3d %s\n",
				e.At, e.Kind, e.Job, e.Node, e.Detail)
		}
	}
	return nil
}

// WriteJSON renders the snapshot as indented JSON (full series points
// included).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

package metrics

import (
	"fmt"
	"testing"
)

// TestSeriesDownsamplingProperties is the property test for the
// deterministic decimation: across sample counts spanning several
// stride doublings, the retained trace always keeps the first point,
// stays strictly monotone in time, stays under budget, is an exact
// subset of the input, and never lets the tail gap grow beyond the
// current stride (so the newest retained point tracks the end of the
// run).
func TestSeriesDownsamplingProperties(t *testing.T) {
	for _, budget := range []int{4, 8, 64} {
		for _, n := range []int{1, 3, 7, 8, 9, 63, 64, 65, 1000, 4097} {
			t.Run(fmt.Sprintf("budget=%d/n=%d", budget, n), func(t *testing.T) {
				s := newSeries()
				s.budget = budget
				for i := 0; i < n; i++ {
					s.Sample(float64(i), float64(i))
				}
				pts := s.Points()
				if len(pts) == 0 {
					t.Fatal("no points retained")
				}
				if len(pts) >= budget && n >= budget {
					t.Fatalf("retained %d points, budget %d", len(pts), budget)
				}
				if pts[0].At != 0 || pts[0].V != 0 {
					t.Fatalf("first sample dropped: %+v", pts[0])
				}
				maxGap := 0.0
				for i, p := range pts {
					// Subset property: every retained point is one of the
					// sampled (t, v) pairs, where t == v by construction.
					if p.At != p.V || p.At != float64(int(p.At)) || p.At >= float64(n) {
						t.Fatalf("point %d not in the input: %+v", i, p)
					}
					if i > 0 {
						gap := p.At - pts[i-1].At
						if gap <= 0 {
							t.Fatalf("timestamps not strictly increasing at %d: %v", i, pts)
						}
						if gap > maxGap {
							maxGap = gap
						}
					}
				}
				// Recency: after decimation the sampling stride equals the
				// largest retained gap, and at most 2*stride samples can
				// arrive without one being retained (stride skips plus one
				// potential doubling). The tail is never older than that.
				stride := maxGap
				if stride < 1 {
					stride = 1
				}
				if tail := float64(n-1) - pts[len(pts)-1].At; tail > 2*stride {
					t.Fatalf("last retained point %.0f lags the end %d by %.0f > 2*stride %.0f",
						pts[len(pts)-1].At, n-1, tail, stride)
				}
			})
		}
	}
}

// TestSeriesDeterministic: identical sample sequences retain identical
// points — decimation has no hidden state.
func TestSeriesDeterministic(t *testing.T) {
	mk := func() []Point {
		s := newSeries()
		s.budget = 16
		for i := 0; i < 500; i++ {
			s.Sample(float64(i)*0.5, float64(i%7))
		}
		return s.Points()
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("runs retained %d vs %d points", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSeriesEmptyPoints: a registered series that never sampled
// returns an empty (not nil-panicking) trace, and a nil series returns
// nil from the whole API.
func TestSeriesEmptyPoints(t *testing.T) {
	r := NewRegistry()
	se := r.Series("never.sampled")
	if pts := se.Points(); len(pts) != 0 {
		t.Fatalf("empty series retained %d points", len(pts))
	}
	// Sampling after the empty read still works.
	se.Sample(1, 2)
	if pts := se.Points(); len(pts) != 1 || pts[0] != (Point{At: 1, V: 2}) {
		t.Fatalf("series after empty read: %+v", se.Points())
	}
	var nilSeries *Series
	nilSeries.Sample(0, 1)
	if pts := nilSeries.Points(); pts != nil {
		t.Fatalf("nil series returned points: %+v", pts)
	}
}

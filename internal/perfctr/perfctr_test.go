package perfctr

import (
	"math"
	"testing"

	"ecost/internal/sim"
	"ecost/internal/workloads"
)

func sampleTelemetry() Telemetry {
	return Telemetry{
		ExecTime:    100,
		CPUBusyFrac: 0.6,
		IOWaitFrac:  0.2,
		ReadMB:      5000,
		WrittenMB:   1000,
		EffIPC:      0.9,
		EffLLCMPKI:  5,
		MemFootMB:   400,
	}
}

func TestMetricNames(t *testing.T) {
	names := MetricNames()
	if len(names) != int(NumMetrics) || int(NumMetrics) != 14 {
		t.Fatalf("want 14 metrics, got %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Fatalf("bad metric name %q", n)
		}
		seen[n] = true
	}
	if Metric(99).String() == "" {
		t.Error("out-of-range metric has empty name")
	}
}

func TestReducedMetrics(t *testing.T) {
	r := ReducedMetrics()
	if len(r) != 7 {
		t.Fatalf("reduced set has %d metrics, want 7 (paper §3.2)", len(r))
	}
	want := map[Metric]bool{CPUUser: true, CPUIOWait: true, IOReadMBps: true,
		IOWriteMBps: true, IPC: true, MemFootMB: true, LLCMPKI: true}
	for _, m := range r {
		if !want[m] {
			t.Errorf("unexpected reduced metric %v", m)
		}
	}
}

func TestExactVector(t *testing.T) {
	p := workloads.MustByName("wc").Profile
	tl := sampleTelemetry()
	v := Exact(p, tl)
	if got := v.Get(CPUUser); got != 60 {
		t.Errorf("CPUuser = %v, want 60", got)
	}
	if got := v.Get(CPUIOWait); got != 20 {
		t.Errorf("CPUiowait = %v, want 20", got)
	}
	if got := v.Get(IOReadMBps); got != 50 {
		t.Errorf("IORead = %v, want 50", got)
	}
	if got := v.Get(IOWriteMBps); got != 10 {
		t.Errorf("IOWrite = %v, want 10", got)
	}
	if got := v.Get(IPC); got != 0.9 {
		t.Errorf("IPC = %v, want 0.9", got)
	}
	if got := v.Get(LLCMPKI); got != 5 {
		t.Errorf("LLCMPKI = %v, want 5", got)
	}
	if got := v.Get(ICacheMPKI); got != p.ICacheMPKI {
		t.Errorf("ICacheMPKI = %v, want %v", got, p.ICacheMPKI)
	}
	// CPU shares must not exceed 100%.
	sum := v.Get(CPUUser) + v.Get(CPUSystem) + v.Get(CPUIdle) + v.Get(CPUIOWait)
	if sum > 100+1e-9 {
		t.Errorf("CPU shares sum to %v > 100", sum)
	}
}

func TestMeasureNoisyButUnbiased(t *testing.T) {
	p := workloads.MustByName("st").Profile
	tl := sampleTelemetry()
	s := NewSampler(sim.NewRNG(1))
	exact := Exact(p, tl)
	n := 3000
	var sum Vector
	identical := true
	var first Vector
	for i := 0; i < n; i++ {
		v := s.Measure(p, tl)
		if i == 0 {
			first = v
		} else if v != first {
			identical = false
		}
		for m := range sum {
			sum[m] += v[m]
		}
	}
	if identical {
		t.Fatal("Measure produced no noise at all")
	}
	for m := Metric(0); m < NumMetrics; m++ {
		mean := sum[m] / float64(n)
		if exact[m] == 0 {
			continue
		}
		if rel := math.Abs(mean-exact[m]) / exact[m]; rel > 0.02 {
			t.Errorf("%v: mean %v vs exact %v (bias %v)", m, mean, exact[m], rel)
		}
	}
}

func TestMultiplexingNoiseShrinksWithRuns(t *testing.T) {
	p := workloads.MustByName("cf").Profile
	tl := sampleTelemetry()
	exact := Exact(p, tl)

	spread := func(runs int) float64 {
		s := NewSampler(sim.NewRNG(7))
		var sq float64
		n := 2000
		for i := 0; i < n; i++ {
			v := s.MeasureAveraged(p, tl, runs)
			d := (v[LLCMPKI] - exact[LLCMPKI]) / exact[LLCMPKI]
			sq += d * d
		}
		return math.Sqrt(sq / float64(n))
	}
	one, nine := spread(1), spread(9)
	if nine >= one/2 {
		t.Fatalf("averaging 9 runs should cut noise ~3x: 1-run σ=%v, 9-run σ=%v", one, nine)
	}
}

func TestPMUMetricsNoisierThanOSMetrics(t *testing.T) {
	p := workloads.MustByName("wc").Profile
	tl := sampleTelemetry()
	exact := Exact(p, tl)
	s := NewSampler(sim.NewRNG(3))
	n := 4000
	var sqIPC, sqUser float64
	for i := 0; i < n; i++ {
		v := s.Measure(p, tl)
		dI := (v[IPC] - exact[IPC]) / exact[IPC]
		dU := (v[CPUUser] - exact[CPUUser]) / exact[CPUUser]
		sqIPC += dI * dI
		sqUser += dU * dU
	}
	if math.Sqrt(sqIPC/float64(n)) < 2*math.Sqrt(sqUser/float64(n)) {
		t.Fatal("multiplexed PMU metric not noisier than OS metric")
	}
}

func TestMeasureNonNegative(t *testing.T) {
	p := workloads.MustByName("st").Profile
	tl := sampleTelemetry()
	s := NewSampler(sim.NewRNG(11))
	for i := 0; i < 1000; i++ {
		v := s.Measure(p, tl)
		for m := Metric(0); m < NumMetrics; m++ {
			if v[m] < 0 {
				t.Fatalf("negative reading %v = %v", m, v[m])
			}
		}
		for _, m := range []Metric{CPUUser, CPUSystem, CPUIdle, CPUIOWait} {
			if v[m] > 100 {
				t.Fatalf("percentage %v = %v > 100", m, v[m])
			}
		}
	}
}

func TestVectorSelectAndSlice(t *testing.T) {
	var v Vector
	for i := range v {
		v[i] = float64(i)
	}
	s := v.Slice()
	if len(s) != 14 || s[3] != 3 {
		t.Fatalf("Slice broken: %v", s)
	}
	s[0] = 99
	if v[0] == 99 {
		t.Fatal("Slice aliases the vector")
	}
	sel := v.Select([]Metric{LLCMPKI, CPUUser})
	if len(sel) != 2 || sel[0] != float64(LLCMPKI) || sel[1] != float64(CPUUser) {
		t.Fatalf("Select broken: %v", sel)
	}
}

func TestMonitorSummarize(t *testing.T) {
	m := NewMonitor()
	if _, err := m.Summarize(); err == nil {
		t.Fatal("empty monitor summarized without error")
	}
	for i := 1; i <= 10; i++ {
		m.Record(Row{
			At: float64(i), CPUUser: 50, CPUSys: 5, CPUWait: 10,
			ReadMB: 100, WriteMB: 20, ResidMB: float64(100 + i*10),
			Instrs: 1e9, Cycles: 1.25e9, LLCMiss: 5e6, ICMiss: 3e6,
			BrMiss: 2e6, Branches: 1e8,
		})
	}
	v, err := m.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if v[CPUUser] != 50 || v[CPUIOWait] != 10 {
		t.Errorf("CPU shares: user=%v wait=%v", v[CPUUser], v[CPUIOWait])
	}
	if v[IOReadMBps] != 100 { // 1000 MB over 10 s
		t.Errorf("IORead = %v, want 100", v[IOReadMBps])
	}
	if v[MemFootMB] != 200 { // peak
		t.Errorf("MemFoot = %v, want 200", v[MemFootMB])
	}
	if math.Abs(v[IPC]-0.8) > 1e-9 {
		t.Errorf("IPC = %v, want 0.8", v[IPC])
	}
	if math.Abs(v[LLCMPKI]-5) > 1e-9 { // 5e6 misses / 1e6 kilo-instructions
		t.Errorf("LLCMPKI = %v, want 5", v[LLCMPKI])
	}
	if math.Abs(v[ICacheMPKI]-3) > 1e-9 {
		t.Errorf("ICacheMPKI = %v, want 3", v[ICacheMPKI])
	}
	if math.Abs(v[BranchMiss]-2) > 1e-9 {
		t.Errorf("BranchMiss = %v, want 2%%", v[BranchMiss])
	}
}

func TestMonitorRowsSortedAndConcurrent(t *testing.T) {
	m := NewMonitor()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 50; i++ {
				m.Record(Row{At: float64((i*4 + g) % 97)})
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if m.Len() != 200 {
		t.Fatalf("recorded %d rows, want 200", m.Len())
	}
	rows := m.Rows()
	for i := 1; i < len(rows); i++ {
		if rows[i].At < rows[i-1].At {
			t.Fatal("Rows() not sorted by time")
		}
	}
}

func TestMonitorFormat(t *testing.T) {
	m := NewMonitor()
	m.Record(Row{At: 1, CPUUser: 42})
	s := m.Format()
	if len(s) == 0 || s[:6] != "  time" {
		t.Fatalf("unexpected format header: %q", s)
	}
}

// Package perfctr is the measurement substrate of the reproduction: a
// synthetic Performance Monitoring Unit (PMU) in the style of Linux
// `perf`, and a dstat-style OS resource monitor. Together they produce
// the 14 feature metrics the ECoST classifier consumes (§3.1 of the
// paper) from a run's telemetry.
//
// The real Atom microserver exposes only a few hardware counter slots, so
// `perf` multiplexes the PMU across events and the paper re-runs each
// workload several times to obtain accurate values. The Sampler models
// exactly that: single-run readings of multiplexed events carry extra
// noise that averages out as 1/√runs.
package perfctr

import (
	"fmt"
	"math"

	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// Metric identifies one of the 14 collected feature metrics.
type Metric int

// The feature metrics, in the fixed order used by feature vectors.
// The first eight come from the dstat-style resource monitor, the last
// six from the PMU.
const (
	CPUUser     Metric = iota // % CPU in user code
	CPUSystem                 // % CPU in kernel code
	CPUIdle                   // % CPU idle (not waiting on I/O)
	CPUIOWait                 // % CPU idle waiting for I/O completion
	IOReadMBps                // disk read bandwidth
	IOWriteMBps               // disk write bandwidth
	MemFootMB                 // minimum resident memory to run
	MemCacheMB                // page-cache bytes not yet written back
	IPC                       // instructions per cycle
	ICacheMPKI                // instruction-cache misses / kilo-instruction
	LLCMPKI                   // last-level-cache misses / kilo-instruction
	BranchMiss                // branch misprediction rate, %
	CtxSwitch                 // context switches per second (thousands)
	PageFaults                // page faults per second (thousands)

	NumMetrics // count sentinel
)

var metricNames = [NumMetrics]string{
	"CPUuser", "CPUsystem", "CPUidle", "CPUiowait",
	"IORead", "IOWrite", "MemFootprint", "MemCache",
	"IPC", "ICacheMPKI", "LLCMPKI", "BranchMiss",
	"CtxSwitch", "PageFaults",
}

// String returns the metric's display name.
func (m Metric) String() string {
	if m < 0 || m >= NumMetrics {
		return fmt.Sprintf("Metric(%d)", int(m))
	}
	return metricNames[m]
}

// MetricNames returns the display names of all 14 metrics in order.
func MetricNames() []string {
	out := make([]string, NumMetrics)
	for i := range out {
		out[i] = Metric(i).String()
	}
	return out
}

// pmuMetric reports whether the metric is read from the PMU (and is
// therefore subject to counter multiplexing noise) rather than from the
// OS resource monitor.
func pmuMetric(m Metric) bool { return m >= IPC && m <= BranchMiss }

// Vector is one application's feature vector over the 14 metrics.
type Vector [NumMetrics]float64

// Get returns the value of metric m.
func (v Vector) Get(m Metric) float64 { return v[m] }

// Slice returns the vector as a fresh []float64 for the ML package.
func (v Vector) Slice() []float64 {
	out := make([]float64, NumMetrics)
	copy(out, v[:])
	return out
}

// Select returns only the named metrics, in the given order — used after
// PCA reduces the 14 metrics to the 7 most significant ones.
func (v Vector) Select(ms []Metric) []float64 {
	out := make([]float64, len(ms))
	for i, m := range ms {
		out[i] = v[m]
	}
	return out
}

// ReducedMetrics is the 7-feature subset the paper retains after PCA and
// hierarchical clustering (§3.2): CPUuser, CPUiowait, I/O read, I/O
// write, IPC, memory footprint and LLC MPKI.
func ReducedMetrics() []Metric {
	return []Metric{CPUUser, CPUIOWait, IOReadMBps, IOWriteMBps, IPC, MemFootMB, LLCMPKI}
}

// Telemetry is what the execution model observed about a run; the
// Sampler turns it into the feature metrics a real monitoring stack
// would report.
type Telemetry struct {
	ExecTime    float64 // seconds
	CPUBusyFrac float64 // fraction of allocated-core time doing work
	IOWaitFrac  float64 // fraction of allocated-core time stalled on I/O
	ReadMB      float64 // total bytes read from disk
	WrittenMB   float64 // total bytes written to disk
	EffIPC      float64 // achieved IPC including contention penalties
	EffLLCMPKI  float64 // achieved LLC MPKI including co-runner pressure
	MemFootMB   float64 // resident working set
}

// Sampler is the synthetic measurement stack for one node. HWCounters is
// the number of simultaneously programmable PMU counter slots (4 on the
// study's Atom parts); with 6 PMU-derived metrics, a single run
// multiplexes and the affected readings carry extra noise.
type Sampler struct {
	HWCounters int
	// BaseNoise is the relative 1σ measurement noise on every metric.
	BaseNoise float64
	// MuxNoise is the additional relative 1σ noise on multiplexed PMU
	// metrics in a single run.
	MuxNoise float64

	rng *sim.RNG
}

// NewSampler returns a sampler with the study platform's defaults.
func NewSampler(rng *sim.RNG) *Sampler {
	return &Sampler{HWCounters: 4, BaseNoise: 0.015, MuxNoise: 0.06, rng: rng}
}

// rawPMUEvents is the number of raw hardware events needed to derive the
// four PMU metrics: cycles, instructions, I-cache misses, LLC misses,
// branches, and branch mispredictions.
const rawPMUEvents = 6

// multiplexed reports whether the PMU must time-multiplex to cover all
// raw events in one run (it must on the 4-slot Atom PMU).
func (s *Sampler) multiplexed() bool { return rawPMUEvents > s.HWCounters }

// exact builds the noise-free feature vector for a run.
func exact(p workloads.Profile, t Telemetry) Vector {
	var v Vector
	v[CPUUser] = 100 * t.CPUBusyFrac
	v[CPUSystem] = 100 * 0.12 * t.CPUBusyFrac // kernel share of busy time
	v[CPUIOWait] = 100 * t.IOWaitFrac
	idle := 100 - v[CPUUser] - v[CPUSystem] - v[CPUIOWait]
	if idle < 0 {
		idle = 0
	}
	v[CPUIdle] = idle
	if t.ExecTime > 0 {
		v[IOReadMBps] = t.ReadMB / t.ExecTime
		v[IOWriteMBps] = t.WrittenMB / t.ExecTime
	}
	v[MemFootMB] = t.MemFootMB
	// Dirty page cache scales with outstanding writes.
	v[MemCacheMB] = minf(0.25*t.WrittenMB, 1500)
	v[IPC] = t.EffIPC
	v[ICacheMPKI] = p.ICacheMPKI
	v[LLCMPKI] = t.EffLLCMPKI
	v[BranchMiss] = p.BranchMissPct
	// Context switches track I/O interleaving; page faults track memory
	// footprint churn. Reported in thousands/second.
	v[CtxSwitch] = 0.8 + 6*t.IOWaitFrac
	v[PageFaults] = 0.3 + t.MemFootMB/500
	return v
}

// Measure returns the feature vector for one run, with measurement noise
// and single-run PMU multiplexing error applied.
func (s *Sampler) Measure(p workloads.Profile, t Telemetry) Vector {
	return s.measure(p, t, 1)
}

// MeasureAveraged models the paper's methodology of running a workload
// `runs` times and averaging the multiplexed counter readings; noise on
// PMU metrics shrinks as 1/√runs.
func (s *Sampler) MeasureAveraged(p workloads.Profile, t Telemetry, runs int) Vector {
	if runs < 1 {
		runs = 1
	}
	return s.measure(p, t, runs)
}

func (s *Sampler) measure(p workloads.Profile, t Telemetry, runs int) Vector {
	v := exact(p, t)
	scale := 1.0 / math.Sqrt(float64(runs))
	for m := Metric(0); m < NumMetrics; m++ {
		rel := s.BaseNoise
		if pmuMetric(m) && s.multiplexed() {
			rel += s.MuxNoise
		}
		v[m] = s.rng.Jitter(v[m], rel*scale)
		if v[m] < 0 {
			v[m] = 0
		}
	}
	// Percentages stay percentages.
	for _, m := range []Metric{CPUUser, CPUSystem, CPUIdle, CPUIOWait} {
		if v[m] > 100 {
			v[m] = 100
		}
	}
	return v
}

// Exact returns the noise-free vector (the asymptote of infinitely many
// averaged runs) — used by tests and by the model-fidelity experiments.
func Exact(p workloads.Profile, t Telemetry) Vector { return exact(p, t) }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

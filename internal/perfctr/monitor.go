package perfctr

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Monitor is the dstat-style time-series recorder used by the live
// MapReduce engine (internal/engine): callers report per-interval
// resource readings and the monitor exposes per-metric averages and the
// resulting feature Vector. It is safe for concurrent use — the engine's
// worker goroutines report from their own goroutines.
type Monitor struct {
	mu      sync.Mutex
	rows    []Row
	started bool
}

// Row is one sampling interval's readings.
type Row struct {
	At       float64 // seconds since monitoring started
	CPUUser  float64 // %
	CPUSys   float64 // %
	CPUWait  float64 // %
	ReadMB   float64 // MB read during the interval
	WriteMB  float64 // MB written during the interval
	ResidMB  float64 // resident memory at sample time
	Instrs   float64 // instructions retired during the interval
	Cycles   float64 // cycles elapsed during the interval
	LLCMiss  float64 // LLC misses during the interval
	ICMiss   float64 // I-cache misses during the interval
	BrMiss   float64 // branch mispredictions during the interval
	Branches float64 // branches retired during the interval
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// Record appends one interval row.
func (m *Monitor) Record(r Row) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = append(m.rows, r)
	m.started = true
}

// Rows returns a copy of the recorded rows sorted by time.
func (m *Monitor) Rows() []Row {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Row, len(m.rows))
	copy(out, m.rows)
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Len returns the number of recorded rows.
func (m *Monitor) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.rows)
}

// Summarize aggregates the recorded rows into a feature Vector using the
// same definitions the Sampler uses: rates are totals over the observed
// wall time, PMU ratios are computed from summed raw counts, and the
// memory footprint is the peak residency.
func (m *Monitor) Summarize() (Vector, error) {
	rows := m.Rows()
	var v Vector
	if len(rows) == 0 {
		return v, fmt.Errorf("perfctr: summarize: no samples recorded")
	}
	var dur float64
	if n := len(rows); n > 0 {
		dur = rows[n-1].At
		if dur <= 0 {
			dur = float64(n) // assume 1 Hz if timestamps were not set
		}
	}
	var user, sys, wait, read, write, peak float64
	var instr, cyc, llc, ic, brm, br float64
	for _, r := range rows {
		user += r.CPUUser
		sys += r.CPUSys
		wait += r.CPUWait
		read += r.ReadMB
		write += r.WriteMB
		if r.ResidMB > peak {
			peak = r.ResidMB
		}
		instr += r.Instrs
		cyc += r.Cycles
		llc += r.LLCMiss
		ic += r.ICMiss
		brm += r.BrMiss
		br += r.Branches
	}
	n := float64(len(rows))
	v[CPUUser] = user / n
	v[CPUSystem] = sys / n
	v[CPUIOWait] = wait / n
	idle := 100 - v[CPUUser] - v[CPUSystem] - v[CPUIOWait]
	if idle < 0 {
		idle = 0
	}
	v[CPUIdle] = idle
	v[IOReadMBps] = read / dur
	v[IOWriteMBps] = write / dur
	v[MemFootMB] = peak
	v[MemCacheMB] = minf(0.25*write, 1500)
	if cyc > 0 {
		v[IPC] = instr / cyc
	}
	if instr > 0 {
		v[LLCMPKI] = 1000 * llc / instr
		v[ICacheMPKI] = 1000 * ic / instr
	}
	if br > 0 {
		v[BranchMiss] = 100 * brm / br
	}
	v[CtxSwitch] = 0.8 + 6*(v[CPUIOWait]/100)
	v[PageFaults] = 0.3 + peak/500
	return v, nil
}

// Format renders the rows as a dstat-like table for diagnostics.
func (m *Monitor) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%6s %6s %6s %6s %8s %8s %8s\n",
		"time", "usr%", "sys%", "wai%", "readMB", "writMB", "residMB")
	for _, r := range m.Rows() {
		fmt.Fprintf(&b, "%6.1f %6.1f %6.1f %6.1f %8.1f %8.1f %8.1f\n",
			r.At, r.CPUUser, r.CPUSys, r.CPUWait, r.ReadMB, r.WriteMB, r.ResidMB)
	}
	return b.String()
}

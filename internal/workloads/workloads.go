// Package workloads defines the eleven Hadoop MapReduce applications of
// the ECoST study — four micro-benchmarks (WordCount, Sort, Grep,
// TeraSort) and seven real-world applications (Naïve Bayes, FP-Growth,
// Collaborative Filtering, SVM, PageRank, HMM, K-Means) — together with
// the calibrated resource profiles that drive the performance, power and
// counter models.
//
// The paper classifies each application as Compute-bound (C), Hybrid (H),
// I/O-bound (I) or Memory-bound (M) from its measured resource and
// micro-architectural behaviour; the class assignments here follow the
// workload-scenario table (Table 3) of the paper: {WC, SVM, HMM, NB} are
// C, {TS, GP, PR} are H, {ST} is I, and {CF, FP, KM} are M.
//
// Profiles are the substitution for the paper's physical testbed (see
// DESIGN.md §2): each field is an observable the real system would expose
// through perf/dstat, with magnitudes set so the relative behaviour across
// classes matches the published characterization.
package workloads

import "fmt"

// Class is the application behaviour class used by the ECoST classifier
// and pairing decision tree.
type Class int

// The four behaviour classes of the paper.
const (
	Compute  Class = iota // C: high CPU user utilization, low iowait
	Hybrid                // H: mixed compute and I/O
	IOBound               // I: high iowait and disk bandwidth
	MemBound              // M: high LLC MPKI and memory bandwidth demand
)

// String returns the single-letter class code used in the paper's figures.
func (c Class) String() string {
	switch c {
	case Compute:
		return "C"
	case Hybrid:
		return "H"
	case IOBound:
		return "I"
	case MemBound:
		return "M"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classes lists the behaviour classes in the paper's canonical order.
func Classes() []Class { return []Class{Compute, Hybrid, IOBound, MemBound} }

// ParseClass converts a single-letter code to a Class.
func ParseClass(s string) (Class, error) {
	switch s {
	case "C":
		return Compute, nil
	case "H":
		return Hybrid, nil
	case "I":
		return IOBound, nil
	case "M":
		return MemBound, nil
	}
	return 0, fmt.Errorf("workloads: unknown class %q (want C, H, I or M)", s)
}

// Profile captures the per-application constants the models consume.
// They correspond to observables of the real system:
//
//   - MapInstrPerByte / ReduceInstrPerByte: dynamic instruction count per
//     input (resp. shuffled) byte, including framework overhead.
//   - BaseIPC: core IPC excluding LLC-miss stall cycles (the miss penalty
//     is added by the model as MPKI × memory latency × frequency, which is
//     what makes memory-bound applications insensitive to DVFS).
//   - ShuffleSel / OutputSel: intermediate and final output bytes per
//     input byte (e.g. Sort and TeraSort move all their input; Grep emits
//     almost nothing).
//   - SpillFactor: extra map-side disk writes per input byte (sort spills).
//   - MemBWPerCoreGBps: memory bandwidth demand of one mapper; the node
//     saturates at Spec.MemBWGBps, throttling memory-bound co-runners.
//   - CacheFootprintMB: working-set pressure one task puts on the shared
//     LLC; a co-runner's footprint inflates this application's LLC MPKI.
//   - LLCMPKI, ICacheMPKI, BranchMissPct: solo-run counter values.
//   - MemFootprintMBPerTask: resident memory per task beyond I/O buffers.
//   - DiskDutyCap: the maximum fraction of wall time one job of this
//     application can keep the disk busy. MapReduce I/O is bursty (reads,
//     spills and merges are separated by compute and phase barriers), so
//     a single job cannot saturate the disk alone; co-located jobs
//     interleave their bursts. This is the mechanism behind the paper's
//     observation that co-locating two I/O-bound applications wins most.
type Profile struct {
	MapInstrPerByte    float64
	ReduceInstrPerByte float64
	BaseIPC            float64

	ShuffleSel  float64
	OutputSel   float64
	SpillFactor float64

	MemBWPerCoreGBps      float64
	CacheFootprintMB      float64
	DiskDutyCap           float64
	LLCMPKI               float64
	ICacheMPKI            float64
	BranchMissPct         float64
	MemFootprintMBPerTask float64
}

// App is one of the eleven studied applications.
type App struct {
	Name    string // short code used in the paper: wc, st, gp, ts, …
	Long    string // human-readable name
	Class   Class
	Known   bool // true if part of the training set (§7 of the paper)
	Profile Profile
}

// The eleven applications. The training/testing split follows §7:
// NB, CF, SVM, PR, HMM and KM are "unknown" testing applications; the
// micro-benchmarks WC, ST, GP, TS and the real-world FP form the training
// set (covering all four classes).
var apps = []App{
	{
		Name: "wc", Long: "WordCount", Class: Compute, Known: true,
		Profile: Profile{
			MapInstrPerByte: 340, ReduceInstrPerByte: 60, BaseIPC: 1.05,
			ShuffleSel: 0.22, OutputSel: 0.05, SpillFactor: 0.10,
			MemBWPerCoreGBps: 0.25, CacheFootprintMB: 0.4, DiskDutyCap: 0.85,
			LLCMPKI: 2.1, ICacheMPKI: 6.0, BranchMissPct: 3.2,
			MemFootprintMBPerTask: 180,
		},
	},
	{
		Name: "st", Long: "Sort", Class: IOBound, Known: true,
		Profile: Profile{
			MapInstrPerByte: 12, ReduceInstrPerByte: 40, BaseIPC: 0.85,
			ShuffleSel: 1.0, OutputSel: 1.0, SpillFactor: 1.0,
			MemBWPerCoreGBps: 0.45, CacheFootprintMB: 1.2, DiskDutyCap: 0.45,
			LLCMPKI: 6.5, ICacheMPKI: 3.5, BranchMissPct: 1.8,
			MemFootprintMBPerTask: 260,
		},
	},
	{
		Name: "gp", Long: "Grep", Class: Hybrid, Known: true,
		Profile: Profile{
			MapInstrPerByte: 15, ReduceInstrPerByte: 25, BaseIPC: 1.0,
			ShuffleSel: 0.02, OutputSel: 0.01, SpillFactor: 0.02,
			MemBWPerCoreGBps: 0.4, CacheFootprintMB: 0.5, DiskDutyCap: 0.7,
			LLCMPKI: 3.0, ICacheMPKI: 4.0, BranchMissPct: 2.5,
			MemFootprintMBPerTask: 140,
		},
	},
	{
		Name: "ts", Long: "TeraSort", Class: Hybrid, Known: true,
		Profile: Profile{
			MapInstrPerByte: 13, ReduceInstrPerByte: 75, BaseIPC: 0.9,
			ShuffleSel: 1.0, OutputSel: 1.0, SpillFactor: 0.7,
			MemBWPerCoreGBps: 0.5, CacheFootprintMB: 1.5, DiskDutyCap: 0.6,
			LLCMPKI: 8.0, ICacheMPKI: 4.5, BranchMissPct: 2.2,
			MemFootprintMBPerTask: 320,
		},
	},
	{
		Name: "nb", Long: "Naive Bayes", Class: Compute, Known: false,
		Profile: Profile{
			MapInstrPerByte: 390, ReduceInstrPerByte: 70, BaseIPC: 1.0,
			ShuffleSel: 0.18, OutputSel: 0.03, SpillFactor: 0.08,
			MemBWPerCoreGBps: 0.28, CacheFootprintMB: 0.6, DiskDutyCap: 0.85,
			LLCMPKI: 2.6, ICacheMPKI: 7.0, BranchMissPct: 3.6,
			MemFootprintMBPerTask: 220,
		},
	},
	{
		Name: "fp", Long: "FP-Growth", Class: MemBound, Known: true,
		Profile: Profile{
			MapInstrPerByte: 140, ReduceInstrPerByte: 140, BaseIPC: 0.95,
			ShuffleSel: 0.35, OutputSel: 0.10, SpillFactor: 0.15,
			MemBWPerCoreGBps: 0.65, CacheFootprintMB: 3.5, DiskDutyCap: 0.8,
			LLCMPKI: 28, ICacheMPKI: 9.0, BranchMissPct: 4.5,
			MemFootprintMBPerTask: 700,
		},
	},
	{
		Name: "cf", Long: "Collaborative Filtering", Class: MemBound, Known: false,
		Profile: Profile{
			MapInstrPerByte: 150, ReduceInstrPerByte: 160, BaseIPC: 0.9,
			ShuffleSel: 0.40, OutputSel: 0.12, SpillFactor: 0.18,
			MemBWPerCoreGBps: 0.7, CacheFootprintMB: 3.8, DiskDutyCap: 0.8,
			LLCMPKI: 32, ICacheMPKI: 8.0, BranchMissPct: 4.2,
			MemFootprintMBPerTask: 760,
		},
	},
	{
		Name: "svm", Long: "Support Vector Machine", Class: Compute, Known: false,
		Profile: Profile{
			MapInstrPerByte: 370, ReduceInstrPerByte: 75, BaseIPC: 1.07,
			ShuffleSel: 0.10, OutputSel: 0.02, SpillFactor: 0.05,
			MemBWPerCoreGBps: 0.22, CacheFootprintMB: 0.7, DiskDutyCap: 0.85,
			LLCMPKI: 3.2, ICacheMPKI: 5.0, BranchMissPct: 2.8,
			MemFootprintMBPerTask: 260,
		},
	},
	{
		Name: "pr", Long: "PageRank", Class: Hybrid, Known: false,
		Profile: Profile{
			MapInstrPerByte: 12, ReduceInstrPerByte: 80, BaseIPC: 0.85,
			ShuffleSel: 0.85, OutputSel: 0.5, SpillFactor: 0.55,
			MemBWPerCoreGBps: 0.45, CacheFootprintMB: 1.8, DiskDutyCap: 0.65,
			LLCMPKI: 10, ICacheMPKI: 6.5, BranchMissPct: 3.0,
			MemFootprintMBPerTask: 380,
		},
	},
	{
		Name: "hmm", Long: "Hidden Markov Model", Class: Compute, Known: false,
		Profile: Profile{
			MapInstrPerByte: 390, ReduceInstrPerByte: 70, BaseIPC: 1.03,
			ShuffleSel: 0.12, OutputSel: 0.04, SpillFactor: 0.06,
			MemBWPerCoreGBps: 0.24, CacheFootprintMB: 0.5, DiskDutyCap: 0.85,
			LLCMPKI: 2.4, ICacheMPKI: 6.5, BranchMissPct: 3.4,
			MemFootprintMBPerTask: 240,
		},
	},
	{
		Name: "km", Long: "K-Means", Class: MemBound, Known: false,
		Profile: Profile{
			MapInstrPerByte: 130, ReduceInstrPerByte: 120, BaseIPC: 0.9,
			ShuffleSel: 0.30, OutputSel: 0.08, SpillFactor: 0.12,
			MemBWPerCoreGBps: 0.62, CacheFootprintMB: 3.2, DiskDutyCap: 0.8,
			LLCMPKI: 25, ICacheMPKI: 7.5, BranchMissPct: 3.8,
			MemFootprintMBPerTask: 680,
		},
	},
}

// Apps returns the eleven studied applications in a fixed order.
// The returned slice is freshly allocated; elements are value copies.
func Apps() []App {
	out := make([]App, len(apps))
	copy(out, apps)
	return out
}

// ByName returns the application with the given short code.
func ByName(name string) (App, error) {
	for _, a := range apps {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("workloads: unknown application %q", name)
}

// MustByName is ByName for static application codes; it panics on an
// unknown code.
func MustByName(name string) App {
	a, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Training returns the known (training-set) applications.
func Training() []App {
	var out []App
	for _, a := range apps {
		if a.Known {
			out = append(out, a)
		}
	}
	return out
}

// Testing returns the unknown (testing-set) applications.
func Testing() []App {
	var out []App
	for _, a := range apps {
		if !a.Known {
			out = append(out, a)
		}
	}
	return out
}

// OfClass returns all applications of the given class.
func OfClass(c Class) []App {
	var out []App
	for _, a := range apps {
		if a.Class == c {
			out = append(out, a)
		}
	}
	return out
}

// DataSizesGB lists the studied per-node input data sizes: 1, 5 and
// 10 GB, representing small, medium and large datasets.
func DataSizesGB() []float64 { return []float64{1, 5, 10} }

// SizeLabel names a studied data size (small/medium/large).
func SizeLabel(gb float64) string {
	switch gb {
	case 1:
		return "small"
	case 5:
		return "medium"
	case 10:
		return "large"
	default:
		return fmt.Sprintf("%gGB", gb)
	}
}

package workloads

import "testing"

func TestElevenApps(t *testing.T) {
	if n := len(Apps()); n != 11 {
		t.Fatalf("got %d applications, want 11", n)
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Apps() {
		if seen[a.Name] {
			t.Fatalf("duplicate application name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

func TestPaperClassAssignments(t *testing.T) {
	// Classes pinned by Table 3 of the paper.
	want := map[string]Class{
		"wc": Compute, "svm": Compute, "hmm": Compute,
		"ts": Hybrid, "gp": Hybrid,
		"st": IOBound,
		"cf": MemBound, "fp": MemBound,
	}
	for name, cls := range want {
		a := MustByName(name)
		if a.Class != cls {
			t.Errorf("%s class = %v, want %v", name, a.Class, cls)
		}
	}
}

func TestTrainingTestingSplit(t *testing.T) {
	// §7: NB, CF, SVM, PR, HMM, KM are unknown testing applications.
	unknown := map[string]bool{"nb": true, "cf": true, "svm": true, "pr": true, "hmm": true, "km": true}
	for _, a := range Apps() {
		if unknown[a.Name] == a.Known {
			t.Errorf("%s Known = %v, want %v", a.Name, a.Known, !unknown[a.Name])
		}
	}
	if len(Training())+len(Testing()) != 11 {
		t.Fatalf("split sizes %d + %d != 11", len(Training()), len(Testing()))
	}
	if len(Testing()) != 6 {
		t.Fatalf("testing set has %d apps, want 6", len(Testing()))
	}
}

func TestTrainingCoversAllClasses(t *testing.T) {
	// The database of known applications must contain every class or the
	// classifier has nothing to match unknown applications against.
	covered := map[Class]bool{}
	for _, a := range Training() {
		covered[a.Class] = true
	}
	for _, c := range Classes() {
		if !covered[c] {
			t.Errorf("training set has no %v application", c)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("wc")
	if err != nil || a.Long != "WordCount" {
		t.Fatalf("ByName(wc) = %+v, %v", a, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByName on unknown app did not panic")
		}
	}()
	MustByName("bogus")
}

func TestOfClassPartition(t *testing.T) {
	total := 0
	for _, c := range Classes() {
		for _, a := range OfClass(c) {
			if a.Class != c {
				t.Errorf("OfClass(%v) returned %s of class %v", c, a.Name, a.Class)
			}
			total++
		}
	}
	if total != 11 {
		t.Fatalf("classes partition %d apps, want 11", total)
	}
}

func TestProfilesPlausible(t *testing.T) {
	for _, a := range Apps() {
		p := a.Profile
		if p.MapInstrPerByte <= 0 || p.BaseIPC <= 0 || p.BaseIPC > 2 {
			t.Errorf("%s: implausible compute profile %+v", a.Name, p)
		}
		if p.ShuffleSel < 0 || p.ShuffleSel > 1.5 || p.OutputSel < 0 {
			t.Errorf("%s: implausible selectivities %+v", a.Name, p)
		}
		if p.LLCMPKI < 0 || p.MemBWPerCoreGBps <= 0 {
			t.Errorf("%s: implausible memory profile %+v", a.Name, p)
		}
	}
}

func TestClassProfileSeparation(t *testing.T) {
	// Memory-bound applications must have markedly higher LLC MPKI and
	// memory bandwidth demand than compute-bound ones, and the I/O-bound
	// application must move the most bytes per instruction — otherwise
	// the classifier cannot separate them the way the paper reports.
	var maxC, minM float64 = 0, 1e9
	for _, a := range OfClass(Compute) {
		if a.Profile.LLCMPKI > maxC {
			maxC = a.Profile.LLCMPKI
		}
	}
	for _, a := range OfClass(MemBound) {
		if a.Profile.LLCMPKI < minM {
			minM = a.Profile.LLCMPKI
		}
	}
	if minM < 3*maxC {
		t.Errorf("LLC MPKI overlap: max compute %v vs min membound %v", maxC, minM)
	}
	st := MustByName("st")
	for _, a := range Apps() {
		if a.Name == "st" {
			continue
		}
		ioPerInstr := (1 + a.Profile.SpillFactor + a.Profile.OutputSel) / a.Profile.MapInstrPerByte
		stIO := (1 + st.Profile.SpillFactor + st.Profile.OutputSel) / st.Profile.MapInstrPerByte
		if ioPerInstr >= stIO {
			t.Errorf("%s moves more bytes/instr than Sort", a.Name)
		}
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseClass("X"); err == nil {
		t.Error("ParseClass(X) succeeded")
	}
}

func TestDataSizes(t *testing.T) {
	sizes := DataSizesGB()
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 5 || sizes[2] != 10 {
		t.Fatalf("DataSizesGB() = %v", sizes)
	}
	if SizeLabel(1) != "small" || SizeLabel(5) != "medium" || SizeLabel(10) != "large" {
		t.Error("size labels wrong")
	}
	if SizeLabel(2) != "2GB" {
		t.Errorf("SizeLabel(2) = %q", SizeLabel(2))
	}
}

func TestAppsReturnsCopy(t *testing.T) {
	a := Apps()
	a[0].Name = "mutated"
	if Apps()[0].Name == "mutated" {
		t.Fatal("Apps() exposes internal slice")
	}
}

package trace

import (
	"math"
	"testing"
	"testing/quick"

	"ecost/internal/workloads"
)

func TestGenerateBasics(t *testing.T) {
	tr, err := Generate(Spec{N: 100, MeanInterarrival: 60, Poisson: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 100 {
		t.Fatalf("generated %d arrivals", len(tr))
	}
	prev := -1.0
	for _, a := range tr {
		if a.At < prev {
			t.Fatal("arrivals not time-ordered")
		}
		prev = a.At
		if a.SizeGB != 1 && a.SizeGB != 5 && a.SizeGB != 10 {
			t.Fatalf("size %v outside the studied set", a.SizeGB)
		}
		if a.App.Name == "" {
			t.Fatal("empty application")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{N: 50, MeanInterarrival: 30, Poisson: true, Seed: 7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at arrival %d", i)
		}
	}
	c, err := Generate(Spec{N: 50, MeanInterarrival: 30, Poisson: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].App.Name == c[i].App.Name && a[i].SizeGB == c[i].SizeGB {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateBatchMode(t *testing.T) {
	tr, err := Generate(Spec{N: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tr {
		if a.At != 0 {
			t.Fatalf("batch-mode arrival at %v, want 0", a.At)
		}
	}
}

func TestGenerateFixedInterarrival(t *testing.T) {
	tr, err := Generate(Spec{N: 5, MeanInterarrival: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range tr {
		if math.Abs(a.At-float64(i)*100) > 1e-9 {
			t.Fatalf("arrival %d at %v, want %v", i, a.At, float64(i)*100)
		}
	}
}

func TestGenerateClassMix(t *testing.T) {
	tr, err := Generate(Spec{
		N:    400,
		Mix:  map[workloads.Class]float64{workloads.IOBound: 3, workloads.Compute: 1},
		Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := ClassCounts(tr)
	if counts[workloads.Hybrid] != 0 || counts[workloads.MemBound] != 0 {
		t.Fatalf("unselected classes drawn: %v", counts)
	}
	ratio := float64(counts[workloads.IOBound]) / float64(counts[workloads.Compute])
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("I:C ratio = %v, want ≈3", ratio)
	}
}

func TestGenerateUnknownOnly(t *testing.T) {
	tr, err := Generate(Spec{N: 60, UnknownOnly: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, a := range workloads.Training() {
		known[a.Name] = true
	}
	for _, a := range tr {
		if known[a.App.Name] {
			t.Fatalf("training app %s in unknown-only trace", a.App.Name)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Generate(Spec{N: 5, Sizes: []float64{-1}}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Generate(Spec{N: 5, Mix: map[workloads.Class]float64{workloads.Compute: -1}}); err == nil {
		t.Error("negative mix weight accepted")
	}
	zero := map[workloads.Class]float64{workloads.Compute: 0}
	if _, err := Generate(Spec{N: 5, Mix: zero}); err == nil {
		t.Error("all-zero mix accepted")
	}
}

func TestPoissonMeanProperty(t *testing.T) {
	tr, err := Generate(Spec{N: 3000, MeanInterarrival: 50, Poisson: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	last := tr[len(tr)-1].At
	mean := last / float64(len(tr)-1)
	if math.Abs(mean-50) > 4 {
		t.Fatalf("empirical inter-arrival mean = %v, want ≈50", mean)
	}
}

func TestGenerateSizesProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		tr, err := Generate(Spec{N: n, Sizes: []float64{2, 4}, Seed: seed})
		if err != nil {
			return false
		}
		for _, a := range tr {
			if a.SizeGB != 2 && a.SizeGB != 4 {
				return false
			}
		}
		return len(tr) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package trace generates synthetic job-arrival traces for the online
// ECoST scheduler: Poisson (or uniform) arrivals over a configurable
// application-class mix and data-size distribution. The paper evaluates
// fixed 16-job scenarios; traces extend that to open-loop arrival
// dynamics (queueing behaviour, starvation checks, long-run energy).
package trace

import (
	"fmt"
	"math"
	"sort"

	"ecost/internal/metrics"
	"ecost/internal/sim"
	"ecost/internal/workloads"
)

// Arrival is one job arrival.
type Arrival struct {
	At     float64
	App    workloads.App
	SizeGB float64
}

// Spec configures a trace.
type Spec struct {
	// N is the number of jobs.
	N int
	// MeanInterarrival is the mean gap between arrivals in seconds;
	// 0 submits everything at t=0.
	MeanInterarrival float64
	// Poisson draws exponential gaps when true; fixed gaps otherwise.
	Poisson bool
	// Mix weights the application classes (defaults to uniform). Apps
	// within the chosen class are drawn uniformly.
	Mix map[workloads.Class]float64
	// Sizes lists the candidate data sizes (defaults to the studied
	// 1/5/10 GB set); drawn uniformly.
	Sizes []float64
	// UnknownOnly restricts the draw to the testing applications —
	// what a production ECoST deployment actually sees.
	UnknownOnly bool
	// Seed drives all draws.
	Seed int64
}

// Generate produces a deterministic trace for the spec.
func Generate(spec Spec) ([]Arrival, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("trace: N = %d must be positive", spec.N)
	}
	if math.IsNaN(spec.MeanInterarrival) || math.IsInf(spec.MeanInterarrival, 0) {
		return nil, fmt.Errorf("trace: mean interarrival %v must be finite", spec.MeanInterarrival)
	}
	pool := workloads.Apps()
	if spec.UnknownOnly {
		pool = workloads.Testing()
	}
	sizes := spec.Sizes
	if len(sizes) == 0 {
		sizes = workloads.DataSizesGB()
	}
	for _, s := range sizes {
		// The comparison alone lets NaN through (NaN <= 0 is false).
		if !(s > 0) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("trace: size %v must be positive and finite", s)
		}
	}

	// Normalize the class mix over classes that have candidate apps.
	byClass := map[workloads.Class][]workloads.App{}
	for _, a := range pool {
		byClass[a.Class] = append(byClass[a.Class], a)
	}
	mix := spec.Mix
	if len(mix) == 0 {
		mix = map[workloads.Class]float64{}
		for c := range byClass {
			mix[c] = 1
		}
	}
	type slot struct {
		c workloads.Class
		w float64
	}
	var slots []slot
	var total float64
	for _, c := range workloads.Classes() {
		w := mix[c]
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("trace: weight %v for class %v must be finite and non-negative", w, c)
		}
		if w > 0 && len(byClass[c]) > 0 {
			slots = append(slots, slot{c, w})
			total += w
		}
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("trace: class mix selects no applications")
	}

	rng := sim.NewRNG(spec.Seed)
	out := make([]Arrival, 0, spec.N)
	at := 0.0
	for i := 0; i < spec.N; i++ {
		// Class draw.
		u := rng.Float64() * total
		var cls workloads.Class
		for _, s := range slots {
			if u < s.w {
				cls = s.c
				break
			}
			u -= s.w
			cls = s.c // falls through to the last slot on rounding
		}
		apps := byClass[cls]
		app := apps[rng.Intn(len(apps))]
		size := sizes[rng.Intn(len(sizes))]
		out = append(out, Arrival{At: at, App: app, SizeGB: size})
		if spec.MeanInterarrival > 0 {
			if spec.Poisson {
				at += rng.Exp(spec.MeanInterarrival)
			} else {
				at += spec.MeanInterarrival
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out, nil
}

// Record publishes a generated trace's shape to a metrics registry:
// total job count, per-class arrival counters, and the interarrival-gap
// distribution. All values derive from the deterministic trace, so the
// resulting snapshot is reproducible for a fixed seed.
func Record(tr []Arrival, reg *metrics.Registry) {
	if reg == nil || len(tr) == 0 {
		return
	}
	reg.Gauge("trace.jobs").Set(float64(len(tr)))
	for _, a := range tr {
		reg.Counter("trace.arrivals." + a.App.Class.String()).Inc()
	}
	gaps := reg.Histogram("trace.interarrival_s", metrics.ExpBuckets(1, 2, 16))
	for i := 1; i < len(tr); i++ {
		gaps.Observe(tr[i].At - tr[i-1].At)
	}
}

// ClassCounts tallies arrivals per class — used by tests and reports.
func ClassCounts(tr []Arrival) map[workloads.Class]int {
	out := map[workloads.Class]int{}
	for _, a := range tr {
		out[a.App.Class]++
	}
	return out
}

package trace

import (
	"math"
	"testing"

	"ecost/internal/metrics"
	"ecost/internal/workloads"
)

// FuzzGenerate throws arbitrary Spec fields at Generate. The contract:
// Generate either returns an error or a well-formed trace — exactly N
// arrivals, time-ordered, finite non-negative timestamps, every arrival
// carrying a real application and a size from the candidate set. It
// must never panic, including on negative N, NaN/Inf mix weights and
// interarrival means, and empty, negative, or NaN sizes.
func FuzzGenerate(f *testing.F) {
	f.Add(16, 120.0, true, 1.0, 1.0, 5.0, 10.0, false, int64(42))
	f.Add(-3, 0.0, false, 0.0, 0.0, 0.0, 0.0, false, int64(0))
	f.Add(8, math.NaN(), true, math.NaN(), -1.0, math.NaN(), -5.0, true, int64(7))
	f.Add(1, math.Inf(1), false, math.Inf(1), 2.0, math.Inf(-1), 1.0, true, int64(-1))
	f.Add(200, 1e-9, true, 0.5, 3.0, 1e-12, 1e12, false, int64(99))
	f.Fuzz(func(t *testing.T, n int, mean float64, poisson bool,
		wCompute, wIO float64, size1, size2 float64, unknownOnly bool, seed int64) {
		spec := Spec{
			N:                n,
			MeanInterarrival: mean,
			Poisson:          poisson,
			UnknownOnly:      unknownOnly,
			Seed:             seed,
		}
		// A zero-valued mix map means "uniform default", so only attach
		// one when at least one weight is present.
		if wCompute != 0 || wIO != 0 {
			spec.Mix = map[workloads.Class]float64{
				workloads.Compute: wCompute,
				workloads.IOBound: wIO,
			}
		}
		// Empty Sizes exercises the default set; otherwise the fuzzed pair.
		if size1 != 0 || size2 != 0 {
			spec.Sizes = []float64{size1, size2}
		}
		tr, err := Generate(spec)
		if err != nil {
			if tr != nil {
				t.Fatalf("error %v returned alongside a trace", err)
			}
			return
		}
		if len(tr) != spec.N {
			t.Fatalf("generated %d arrivals, want %d", len(tr), spec.N)
		}
		prev := 0.0
		for i, a := range tr {
			if math.IsNaN(a.At) || math.IsInf(a.At, 0) || a.At < 0 {
				t.Fatalf("arrival %d at non-finite/negative time %v", i, a.At)
			}
			if a.At < prev {
				t.Fatalf("arrival %d at %v precedes %v", i, a.At, prev)
			}
			prev = a.At
			if a.App.Name == "" {
				t.Fatalf("arrival %d has no application", i)
			}
			if !(a.SizeGB > 0) {
				t.Fatalf("arrival %d has size %v", i, a.SizeGB)
			}
			if spec.Sizes != nil && a.SizeGB != size1 && a.SizeGB != size2 {
				t.Fatalf("arrival %d size %v outside %v", i, a.SizeGB, spec.Sizes)
			}
		}
		// The published metrics must agree with the trace itself.
		counts := ClassCounts(tr)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != len(tr) {
			t.Fatalf("ClassCounts sums to %d over %d arrivals", total, len(tr))
		}
	})
}

// TestRecordPublishesShape checks the registry contents against the
// trace: job-count gauge, per-class counters, interarrival histogram.
func TestRecordPublishesShape(t *testing.T) {
	tr, err := Generate(Spec{N: 40, MeanInterarrival: 90, Poisson: true, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	Record(tr, reg)
	snap := reg.Snapshot(false)

	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["trace.jobs"] != 40 {
		t.Errorf("trace.jobs = %v, want 40", gauges["trace.jobs"])
	}

	counts := ClassCounts(tr)
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	for cls, n := range counts {
		name := "trace.arrivals." + cls.String()
		if counters[name] != int64(n) {
			t.Errorf("%s = %d, want %d", name, counters[name], n)
		}
	}
	var counterTotal int64
	for name, v := range counters {
		if len(name) > len("trace.arrivals.") && name[:len("trace.arrivals.")] == "trace.arrivals." {
			counterTotal += v
		}
	}
	if counterTotal != 40 {
		t.Errorf("per-class counters sum to %d, want 40", counterTotal)
	}

	for _, h := range snap.Histograms {
		if h.Name == "trace.interarrival_s" {
			if h.Count != 39 {
				t.Errorf("interarrival histogram has %d observations, want 39", h.Count)
			}
			return
		}
	}
	t.Error("trace.interarrival_s histogram missing")
}

// TestRecordNilAndEmpty checks the no-op paths.
func TestRecordNilAndEmpty(t *testing.T) {
	tr, err := Generate(Spec{N: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	Record(tr, nil) // must not panic

	reg := metrics.NewRegistry()
	Record(nil, reg)
	snap := reg.Snapshot(false)
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("empty trace populated the registry: %+v", snap)
	}
}

func TestClassCounts(t *testing.T) {
	if got := ClassCounts(nil); len(got) != 0 {
		t.Errorf("ClassCounts(nil) = %v", got)
	}
	apps := workloads.Apps()
	tr := []Arrival{{App: apps[0]}, {App: apps[0]}, {App: apps[len(apps)-1]}}
	counts := ClassCounts(tr)
	if counts[apps[0].Class] < 2 {
		t.Errorf("counts = %v, want ≥2 for class %v", counts, apps[0].Class)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 3 {
		t.Errorf("counts sum to %d, want 3", total)
	}
}

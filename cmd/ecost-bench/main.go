// Command ecost-bench regenerates the paper's evaluation artifacts —
// every table and figure — against the simulated testbed and prints them
// as aligned text tables.
//
// Usage:
//
//	ecost-bench [-exp all|fig1|fig2|fig3|fig5|table1|table2|table3|fig8|fig9] [-fast] [-nodes 1,2,4,8]
//	            [-cache DIR] [-cpuprofile FILE] [-memprofile FILE]
//
// -fast builds a coarser database (unit-test fidelity) for a quick look;
// the default configuration reproduces the EXPERIMENTS.md numbers.
// -cache persists the built database and trained models under DIR so
// repeat runs skip the build. -cpuprofile/-memprofile write pprof
// profiles covering the whole run (build + experiments); see README.md
// for the analysis workflow.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ecost/internal/cliutil"
	"ecost/internal/experiments"
	"ecost/internal/scenario"
	"ecost/internal/trace"
)

// experimentNames is the closed set -exp accepts.
var experimentNames = []string{
	"all", "fig1", "fig2", "fig3", "fig5", "table1", "table2", "table3",
	"fig8", "fig9", "ablations", "online", "sharded",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(experimentNames, ", "))
	fast := flag.Bool("fast", false, "use the fast (coarse) environment")
	nodesFlag := flag.String("nodes", "1,2,4,8", "cluster sizes for fig9")
	csvDir := flag.String("csv", "", "also write each artifact as CSV into this directory")
	cacheDir := flag.String("cache", "", "cache the built environment (database + models) under this directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	flag.Parse()

	if err := cliutil.SetupLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "ecost-bench:", err)
		os.Exit(cliutil.ExitUsage)
	}
	known := false
	for _, name := range experimentNames {
		known = known || name == *exp
	}
	if !known {
		cliutil.Usagef("unknown -exp", "exp", *exp, "want", strings.Join(experimentNames, ", "))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			cliutil.Fatalf("creating -cpuprofile failed", "err", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			cliutil.Fatalf("starting CPU profile failed", "err", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				slog.Error("creating -memprofile failed", "err", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				slog.Error("writing heap profile failed", "err", err)
			}
		}()
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			cliutil.Fatalf("creating -csv directory failed", "err", err)
		}
	}

	var nodes []int
	for _, part := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			cliutil.Usagef("bad -nodes entry", "entry", part)
		}
		nodes = append(nodes, n)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// Table 3 needs no environment.
	if want("table3") {
		fmt.Println(experiments.Table3Workloads())
		if *exp == "table3" {
			return
		}
	}

	opt := experiments.DefaultOptions()
	if *fast {
		opt = experiments.FastOptions()
	}
	start := time.Now()
	var env *experiments.Env
	var err error
	if *cacheDir != "" {
		var hit bool
		env, hit, err = experiments.LoadOrBuildEnv(opt, *cacheDir)
		if err == nil {
			if hit {
				slog.Info("environment loaded from cache", "took", time.Since(start).Round(time.Millisecond))
			} else {
				slog.Info("environment built and cached", "took", time.Since(start).Round(time.Millisecond))
			}
		}
	} else {
		slog.Info("building environment (database + models)")
		env, err = experiments.NewEnv(opt)
		if err == nil {
			slog.Info("environment ready", "took", time.Since(start).Round(time.Millisecond))
		}
	}
	if err != nil {
		cliutil.Fatalf("building environment failed", "err", err)
	}

	writeCSV := func(name string, tbl experiments.Table) {
		if *csvDir == "" {
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
		if err != nil {
			cliutil.Fatalf("creating CSV failed", "artifact", name, "err", err)
		}
		if err := tbl.WriteCSV(f); err != nil {
			cliutil.Fatalf("writing CSV failed", "artifact", name, "err", err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatalf("closing CSV failed", "artifact", name, "err", err)
		}
	}

	run := func(name string, f func() (experiments.Table, error)) {
		if !want(name) {
			return
		}
		t0 := time.Now()
		tbl, err := f()
		if err != nil {
			cliutil.Fatalf("experiment failed", "exp", name, "err", err)
		}
		fmt.Println(tbl)
		writeCSV(name, tbl)
		slog.Info("experiment done", "exp", name, "took", time.Since(t0).Round(time.Millisecond))
	}

	run("fig1", func() (experiments.Table, error) { t, _, err := experiments.Fig1PCA(env); return t, err })
	run("fig2", func() (experiments.Table, error) { t, _, err := experiments.Fig2EDPImprovement(env); return t, err })
	run("fig3", func() (experiments.Table, error) { t, _, err := experiments.Fig3ColaoVsIlao(env); return t, err })
	run("fig5", func() (experiments.Table, error) { t, _, err := experiments.Fig5PriorityRanking(env); return t, err })
	run("table1", func() (experiments.Table, error) { t, _, err := experiments.Table1ModelAPE(env); return t, err })
	run("table2", func() (experiments.Table, error) { t, _, err := experiments.Table2PredictedConfigs(env); return t, err })
	run("fig8", func() (experiments.Table, error) { t, _, err := experiments.Fig8Overheads(env); return t, err })
	run("fig9", func() (experiments.Table, error) {
		t, _, err := experiments.Fig9MappingPolicies(env, nodes)
		return t, err
	})
	run("ablations", func() (experiments.Table, error) {
		t1, _, err := experiments.AblationDecoupling(env, "WS4", 2)
		if err != nil {
			return experiments.Table{}, err
		}
		fmt.Println(t1)
		t2, _, err := experiments.AblationNoise(env, nil)
		if err != nil {
			return experiments.Table{}, err
		}
		fmt.Println(t2)
		t3, _, err := experiments.AblationBeyondTwo(env)
		if err != nil {
			return experiments.Table{}, err
		}
		fmt.Println(t3)
		t4, _, err := experiments.AblationSizeAware(env, 2)
		return t4, err
	})
	run("online", func() (experiments.Table, error) {
		spec := trace.Spec{N: 32, MeanInterarrival: 180, Poisson: true, UnknownOnly: true, Seed: 42}
		t0 := time.Now()
		t, _, err := experiments.OnlineTrace(env, spec, 4)
		if err == nil {
			// Wall-clock simulation throughput: how many submitted jobs the
			// online event loop chews through per real second. The paper's
			// thousand-node claims rest on this staying interactive; the
			// large-cluster benchmark (BENCH_PERF.json) guards it in CI.
			elapsed := time.Since(t0)
			fmt.Printf("online wall throughput: %.0f jobs simulated/s (%d jobs in %s)\n\n",
				float64(spec.N)/elapsed.Seconds(), spec.N, elapsed.Round(time.Millisecond))
		}
		return t, err
	})
	run("sharded", func() (experiments.Table, error) {
		// Control-plane throughput vs shard count on one recurring-tenant
		// stream: offered load matches the large-cluster benchmark
		// (mean inter-arrival 1536/nodes seconds).
		const shardedNodes = 64
		spec := scenario.Spec{
			Jobs: 512,
			Seed: 42,
			Arrivals: scenario.ArrivalSpec{
				Kind: scenario.ArrivalPoisson, Mean: 1536.0 / shardedNodes,
			},
			Sizes: scenario.SizeSpec{Kind: scenario.SizePareto, Alpha: 1.6, Min: 1, Max: 12},
			Mix:   scenario.MixSpec{Kind: scenario.MixZipf, S: 1.1, Tenants: 12},
		}
		t, _, err := experiments.ShardSweep(env, spec, shardedNodes, []int{1, 2, 4, 8, 16})
		return t, err
	})
}

// Command ecost-train builds the ECoST knowledge base offline — profiles
// the training applications, runs the COLAO searches that populate the
// configuration database, trains all four STP techniques — and reports
// training accuracy (Table 1) and overheads (Figure 8).
//
// Usage:
//
//	ecost-train [-fast]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ecost/internal/cliutil"
	"ecost/internal/experiments"
	"ecost/internal/workloads"
)

func main() {
	fast := flag.Bool("fast", false, "use the fast (coarse) environment")
	saveDB := flag.String("save-db", "", "write the configuration database (lookup entries + feature matrix) to this JSON file")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	flag.Parse()

	if err := cliutil.SetupLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "ecost-train:", err)
		os.Exit(cliutil.ExitUsage)
	}

	opt := experiments.DefaultOptions()
	if *fast {
		opt = experiments.FastOptions()
	}
	start := time.Now()
	env, err := experiments.NewEnv(opt)
	if err != nil {
		cliutil.Fatalf("building environment failed", "err", err)
	}
	fmt.Printf("database: %d pair entries over %d training applications ×%d sizes (built in %v)\n",
		len(env.DB.Entries), len(workloads.Training()), len(workloads.DataSizesGB()),
		time.Since(start).Round(time.Millisecond))
	var rows int
	for _, r := range env.DB.Rows {
		rows += len(r)
	}
	fmt.Printf("training rows: %d across %d class pairs\n", rows, len(env.DB.Rows))
	fmt.Printf("models: LR %d, REPTree %d, MLP %d (per class pair × size combination)\n\n",
		env.LR.Models(), env.REPTree.Models(), env.MLP.Models())

	fmt.Println("classifier check (unknown applications):")
	for _, app := range workloads.Testing() {
		obs, err := env.Observe(app, 5)
		if err != nil {
			cliutil.Fatalf("profiling failed", "app", app.Name, "err", err)
		}
		got := env.DB.Classifier().Classify(obs)
		near := env.DB.Classifier().NearestKnown(obs)
		mark := "ok"
		if got != app.Class {
			mark = "MISCLASSIFIED"
		}
		fmt.Printf("  %-4s true %v → classified %v, nearest known %s  [%s]\n",
			app.Name, app.Class, got, near.App.Name, mark)
	}
	fmt.Println()

	fmt.Println("pairing priorities (decision tree inputs):")
	for _, c := range workloads.Classes() {
		fmt.Printf("  running %v → prefer %v\n", c, env.DB.PartnerPriority(c))
	}
	fmt.Println()

	t1, _, err := experiments.Table1ModelAPE(env)
	if err != nil {
		cliutil.Fatalf("Table 1 failed", "err", err)
	}
	fmt.Println(t1)

	f8, _, err := experiments.Fig8Overheads(env)
	if err != nil {
		cliutil.Fatalf("Figure 8 failed", "err", err)
	}
	fmt.Println(f8)

	if *saveDB != "" {
		f, err := os.Create(*saveDB)
		if err != nil {
			cliutil.Fatalf("creating -save-db failed", "err", err)
		}
		if err := env.DB.SaveDatabase(f); err != nil {
			cliutil.Fatalf("writing -save-db failed", "err", err)
		}
		if err := f.Close(); err != nil {
			cliutil.Fatalf("closing -save-db failed", "err", err)
		}
		fmt.Printf("database written to %s (%d entries)\n", *saveDB, len(env.DB.Entries))
	}
}

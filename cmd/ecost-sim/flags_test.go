package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFlagContradictions covers every flag-combination rejection path
// of the CLI in one table: each contradiction must produce a usage
// message (main exits with cliutil.ExitUsage on any non-empty result),
// and each coherent combination must pass.
func TestFlagContradictions(t *testing.T) {
	cases := []struct {
		name  string
		flags runFlags
		want  string // substring of the usage message; "" = coherent
	}{
		{"defaults", runFlags{}, ""},
		{"online alone", runFlags{Online: true}, ""},
		// Nodes 0 in a table entry means "not under test" (the loop fills
		// the flag default in); the -nodes<1 branch is value-independent,
		// so the negative entries cover -nodes 0 as well.
		{"nonsense nodes offline", runFlags{Nodes: -4}, "-nodes must be a positive"},
		{"nonsense nodes online", runFlags{Online: true, Nodes: -1}, "-nodes must be a positive"},
		{"negative jobs", runFlags{Online: true, Jobs: -1}, "-jobs cannot be negative"},
		{"jobs offline", runFlags{Jobs: 2000}, "-jobs requires the online scheduler"},
		{"jobs online", runFlags{Online: true, Jobs: 2000}, ""},
		// Value checks outrank combination checks: a nonsense -nodes is
		// reported even when an online-only flag is also missing -online.
		{"nonsense nodes and jobs offline", runFlags{Nodes: -4, Jobs: 10}, "-nodes must be a positive"},
		{"metrics json without metrics", runFlags{MetricsJSON: true}, "-metrics-json"},
		{"metrics volatile without metrics", runFlags{MetricsVolatile: true}, "-metrics-volatile"},
		{"metrics json with metrics", runFlags{Online: true, Metrics: true, MetricsJSON: true}, ""},
		{"metrics volatile with metrics", runFlags{Online: true, Metrics: true, MetricsVolatile: true}, ""},
		{"gen scenario online", runFlags{Online: true, ScenarioGen: true}, ""},
		{"gen scenario with arrivals", runFlags{Online: true, ScenarioGen: true, Arrivals: "poisson:60"}, ""},
		{"gen scenario with jobs", runFlags{Online: true, ScenarioGen: true, Jobs: 100}, "-jobs duplicates the jobs= clause"},
		{"gen scenario with arrival", runFlags{Online: true, ScenarioGen: true, Arrival: 60}, "-arrival shapes workload streams"},
		{"arrivals without gen scenario", runFlags{Online: true, Arrivals: "poisson:60"}, "-arrivals retunes a gen: -scenario"},
		{"record online", runFlags{Online: true, TraceRecord: "t.jsonl"}, ""},
		{"record offline", runFlags{TraceRecord: "t.jsonl"}, "-trace-record requires the online scheduler"},
		{"replay online", runFlags{Online: true, TraceReplay: "t.jsonl"}, ""},
		{"replay offline", runFlags{TraceReplay: "t.jsonl"}, "-trace-replay requires the online scheduler"},
		{"replay with gen scenario", runFlags{Online: true, TraceReplay: "t.jsonl", ScenarioGen: true}, "drop the gen: -scenario"},
		{"replay with record", runFlags{Online: true, TraceReplay: "t.jsonl", TraceRecord: "u.jsonl"}, "drop -trace-record"},
		{"replay with jobs", runFlags{Online: true, TraceReplay: "t.jsonl", Jobs: 100}, "cannot resize a -trace-replay recording"},
		{"replay with arrival", runFlags{Online: true, TraceReplay: "t.jsonl", Arrival: 60}, "drop -arrival/-arrivals"},
		{"replay with arrivals", runFlags{Online: true, TraceReplay: "t.jsonl", Arrivals: "poisson:60"}, "drop -arrival/-arrivals"},
		{"trace-out offline", runFlags{TraceOut: "t.json"}, "-trace-out requires the online scheduler"},
		{"timeline-out offline", runFlags{TimelineOut: "t.txt"}, "-timeline-out requires the online scheduler"},
		{"edp-report offline", runFlags{EDPReport: true}, "-edp-report requires the online scheduler"},
		{"quality-report offline", runFlags{QualityReport: true}, "-quality-report requires the online scheduler"},
		{"serve offline", runFlags{ServeAddr: ":0"}, "-serve requires the online scheduler"},
		{"trace-out online", runFlags{Online: true, TraceOut: "t.json"}, ""},
		{"timeline-out online", runFlags{Online: true, TimelineOut: "t.txt"}, ""},
		{"edp-report online", runFlags{Online: true, EDPReport: true}, ""},
		{"quality-report online", runFlags{Online: true, QualityReport: true}, ""},
		{"serve online", runFlags{Online: true, ServeAddr: ":0"}, ""},
		{"everything online", runFlags{
			Online: true, Metrics: true, MetricsJSON: true, MetricsVolatile: true,
			TraceOut: "t.json", TimelineOut: "t.txt", EDPReport: true,
			QualityReport: true, ServeAddr: ":0",
		}, ""},
		// The metrics-shape check wins over the online-only check: it is
		// about a missing -metrics, not a missing -online.
		{"json and trace-out both wrong", runFlags{MetricsJSON: true, TraceOut: "t.json"}, "-metrics-json"},
		// Sharded control plane: -shards must be explicit, positive,
		// bounded by the cluster size, and online; -steal needs a victim.
		{"shards offline", runFlags{Shards: 4, ShardsSet: true, Nodes: 8}, "-shards requires the online scheduler"},
		// ShardsSet deliberately false: with it set, the -shards rejection
		// fires first (onlineOnly reports flags in listing order).
		{"steal offline", runFlags{Steal: true, Shards: 2, Nodes: 8}, "-steal requires the online scheduler"},
		{"shards online", runFlags{Online: true, Shards: 4, ShardsSet: true, Nodes: 8}, ""},
		{"shards zero", runFlags{Online: true, Shards: 0, ShardsSet: true, Nodes: 8}, "-shards must be at least 1"},
		{"shards negative", runFlags{Online: true, Shards: -2, ShardsSet: true, Nodes: 8}, "-shards must be at least 1"},
		{"shards exceed nodes", runFlags{Online: true, Shards: 16, ShardsSet: true, Nodes: 8}, "-shards cannot exceed -nodes"},
		{"shards equal nodes", runFlags{Online: true, Shards: 8, ShardsSet: true, Nodes: 8}, ""},
		{"steal single shard", runFlags{Online: true, Steal: true, Shards: 1, ShardsSet: true, Nodes: 8}, "-steal migrates queued jobs between shards"},
		{"steal default shards", runFlags{Online: true, Steal: true, Shards: 1, Nodes: 8}, "-steal migrates queued jobs between shards"},
		{"steal with shards", runFlags{Online: true, Steal: true, Shards: 2, ShardsSet: true, Nodes: 8}, ""},
		// Sharded tracing: each shard records its own span set and
		// -trace-out merges them deterministically, so the old
		// shards-vs-trace-out contradiction is gone.
		{"shards with trace-out", runFlags{Online: true, Shards: 2, ShardsSet: true, Nodes: 8, TraceOut: "t.json"}, ""},
		{"shards with trace-out and steal", runFlags{Online: true, Shards: 4, ShardsSet: true, Nodes: 8, Steal: true, TraceOut: "t.json"}, ""},
		// -serve works across shards since the mux grew merged + ?shard=N
		// views; the old single-registry contradiction is gone.
		{"shards with serve", runFlags{Online: true, Shards: 2, ShardsSet: true, Nodes: 8, ServeAddr: ":0"}, ""},
		{"single shard with trace-out", runFlags{Online: true, Shards: 1, ShardsSet: true, Nodes: 8, TraceOut: "t.json"}, ""},
		{"shards with timeline and metrics", runFlags{
			Online: true, Shards: 4, ShardsSet: true, Nodes: 8, Steal: true,
			Metrics: true, TimelineOut: "t.txt", QualityReport: true, EDPReport: true,
		}, ""},
		{"everything sharded", runFlags{
			Online: true, Shards: 4, ShardsSet: true, Nodes: 8, Steal: true,
			Metrics: true, TraceOut: "t.json", TimelineOut: "t.txt", EDPReport: true,
			QualityReport: true, ServeAddr: ":0", FlightOut: "f.jsonl", HealthReport: true,
		}, ""},
		// Flight recorder flags record per-shard barrier telemetry; both
		// need the sharded control plane (and, transitively, -online).
		{"flight-out offline", runFlags{FlightOut: "f.jsonl", Shards: 2, ShardsSet: true, Nodes: 8}, "-shards requires the online scheduler"},
		{"flight-out single shard", runFlags{Online: true, FlightOut: "f.jsonl", Shards: 1, Nodes: 8}, "-flight-out records the sharded control plane's epoch barriers"},
		{"flight-out with shards", runFlags{Online: true, FlightOut: "f.jsonl", Shards: 2, ShardsSet: true, Nodes: 8}, ""},
		{"health-report offline", runFlags{HealthReport: true, Shards: 2, Nodes: 8}, "-health-report requires the online scheduler"},
		{"health-report single shard", runFlags{Online: true, HealthReport: true, Shards: 1, Nodes: 8}, "-health-report aggregates per-shard barrier telemetry"},
		{"health-report with shards", runFlags{Online: true, HealthReport: true, Shards: 2, ShardsSet: true, Nodes: 8}, ""},
		{"flight and health with serve", runFlags{
			Online: true, Shards: 4, ShardsSet: true, Nodes: 8, Steal: true,
			FlightOut: "f.jsonl", HealthReport: true, ServeAddr: ":0", Metrics: true,
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := tc.flags
			if f.Nodes == 0 {
				f.Nodes = 4 // the flag's default; 0 in a table entry means "not under test"
			}
			got := f.contradiction()
			if tc.want == "" && got != "" {
				t.Fatalf("coherent flags rejected: %q", got)
			}
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Fatalf("contradiction = %q, want substring %q", got, tc.want)
			}
		})
	}
	// Completeness guard: every online-only flag is represented in the
	// rejection table above.
	all := runFlags{Jobs: 1, TraceRecord: "x", TraceReplay: "x", TraceOut: "x", TimelineOut: "x", EDPReport: true, QualityReport: true, ServeAddr: "x", ShardsSet: true, Steal: true, FlightOut: "x", HealthReport: true}
	if got := len(all.onlineOnly()); got != 12 {
		t.Fatalf("onlineOnly lists %d flags; update TestFlagContradictions", got)
	}
}

// TestUnwritableOutput covers the fail-fast probe for path-writing
// flags: a target in a missing directory, or whose "directory" is a
// plain file, is rejected at validation time (main exits 2) instead of
// erroring on the first dump after a long run.
func TestUnwritableOutput(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "no", "such", "dir", "out.json")
	underFile := filepath.Join(file, "out.json")
	ok := filepath.Join(dir, "out.json")

	cases := []struct {
		name  string
		flags runFlags
		want  string // substring of the usage message; "" = writable
	}{
		{"no outputs", runFlags{Online: true}, ""},
		{"relative path", runFlags{Online: true, TraceOut: "t.json"}, ""},
		{"writable dir", runFlags{Online: true, TraceOut: ok, TimelineOut: ok, FlightOut: ok}, ""},
		{"trace-out missing dir", runFlags{Online: true, TraceOut: missing}, "-trace-out"},
		{"timeline-out missing dir", runFlags{Online: true, TimelineOut: missing}, "-timeline-out"},
		{"flight-out missing dir", runFlags{Online: true, FlightOut: missing}, "-flight-out"},
		{"dir is a file", runFlags{Online: true, TraceOut: underFile}, "not a directory"},
		// Report order follows outputPaths: -flight-out first.
		{"first failure reported", runFlags{Online: true, FlightOut: missing, TraceOut: missing}, "-flight-out"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.flags.unwritableOutput()
			if tc.want == "" && got != "" {
				t.Fatalf("writable outputs rejected: %q", got)
			}
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Fatalf("unwritableOutput = %q, want substring %q", got, tc.want)
			}
		})
	}
	// Every probed flag corresponds to a real output path, and the probe
	// leaves no droppings behind in a writable directory.
	if n := len(runFlags{}.outputPaths()); n != 3 {
		t.Fatalf("outputPaths lists %d flags; update TestUnwritableOutput", n)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("probe left files behind in %s: %v", dir, ents)
	}
}

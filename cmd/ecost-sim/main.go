// Command ecost-sim runs one workload scenario through a mapping policy
// on a simulated cluster — either in batch mode (the Figure-9 runner) or
// as an online, event-driven simulation through the full ECoST pipeline
// (profile → classify → queue → pair → tune).
//
// Usage:
//
//	ecost-sim -scenario WS4 -policy ECoST -nodes 4
//	ecost-sim -scenario WS8 -online -nodes 2 -arrival 120
//	ecost-sim -scenario WS4 -online -nodes 256 -jobs 2000 -arrival 6
//	ecost-sim -scenario 'gen:jobs=500;arrivals=mmpp:calm=300,burst=10;sizes=pareto:alpha=1.5,min=1;mix=zipf:s=1.1,tenants=16' -nodes 8 -seed 7
//	ecost-sim -scenario 'gen:jobs=200' -arrivals poisson:60 -trace-record load.jsonl
//	ecost-sim -online -trace-replay load.jsonl -nodes 8
//	ecost-sim -scenario WS4 -online -metrics
//	ecost-sim -scenario WS4 -online -trace-out trace.json -edp-report
//	ecost-sim -scenario WS4 -online -quality-report
//	ecost-sim -scenario WS4 -online -serve :9090
//
// -scenario accepts either a named workload (WS1..WS8) or a generated
// heavy-traffic scenario in the `gen:` grammar of internal/scenario
// (seeded arrival processes, heavy-tailed sizes, recurring tenant
// mixes); gen: scenarios imply -online. -trace-record writes the
// arrival stream as JSONL before the run; -trace-replay plays a
// recorded stream back byte-identically instead of generating one.
// Stream runs (gen:, -jobs, replay) report queueing observables:
// utilization, wait-queue lengths, and wait/sojourn percentiles.
//
// -metrics appends an observability snapshot of the online run (queue
// depth, per-class wait latency, pairing-tree outcomes, STP prediction
// telemetry, energy split by occupancy phase). The snapshot is
// deterministic: two runs with the same flags produce byte-identical
// output. -metrics-volatile additionally includes wall-clock sections,
// which vary run to run.
//
// -trace-out writes a Chrome trace_event JSON of the run's spans (job
// lifecycle, map/reduce phases, per-node occupancy) loadable in
// Perfetto or chrome://tracing; -timeline-out writes the same spans as
// a deterministic text timeline; -edp-report prints the per-job and
// per-class energy/EDP attribution rollup. Sharded runs (-shards 2+)
// trace too: each shard records its own span set, -trace-out merges
// them deterministically into one document with a track group per
// shard and cross-shard steals drawn as flow arrows (steal_out →
// steal_in), and -timeline-out writes per-shard "== shard N =="
// sections plus a "== merged ==" global section. -quality-report prints the
// decision-quality report (classifier confusion, predicted-vs-realized
// STP error, co-location interference, oracle regret, drift alerts)
// built from the per-decision audit log. -serve exposes all of the
// above plus Prometheus /metrics, the audit log as /decisions JSONL,
// the quality report as /quality, and /debug/pprof/ over HTTP, live
// during the run and until interrupted afterwards. Sharded runs
// (-shards 2+) serve merged views by default — Prometheus families
// gain a shard="N" label — with ?shard=N selecting one shard, and add
// the flight-recorder endpoints /shards, /epochs, /health, and
// /flight.
//
// -flight-out writes the sharded control plane's anomaly-triggered
// flight-recorder dumps (queue growth, shard imbalance, STP drift) as
// JSONL; -health-report prints the aggregated shard-health report
// (steal-flow matrix, Jain fairness, queue-growth slope, power skew)
// after the run. Both require -shards 2 or more.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"ecost/internal/audit"
	"ecost/internal/cliutil"
	"ecost/internal/cluster"
	"ecost/internal/core"
	"ecost/internal/experiments"
	"ecost/internal/mapreduce"
	"ecost/internal/metrics"
	"ecost/internal/scenario"
	"ecost/internal/sim"
	"ecost/internal/trace"
	"ecost/internal/tracing"
)

func main() {
	scenarioFlag := flag.String("scenario", "WS4", "workload scenario WS1..WS8, or a generated stream 'gen:jobs=N[;arrivals=…][;sizes=…][;mix=…]' (implies -online)")
	policy := flag.String("policy", "ECoST", "mapping policy: SM, MNM1, MNM2, SNM, CBM, PTM, ECoST, UB")
	nodes := flag.Int("nodes", 4, "cluster size")
	online := flag.Bool("online", false, "run the event-driven online scheduler instead of batch mapping")
	arrival := flag.Float64("arrival", 0, "mean inter-arrival seconds for -online workload streams (0 = all at t=0)")
	arrivalsFlag := flag.String("arrivals", "", "override a gen: scenario's arrival process, e.g. poisson:60, mmpp:calm=300,burst=10, diurnal:mean=60,amp=0.8")
	jobs := flag.Int("jobs", 0, "scale the online job stream to this many jobs by cycling the scenario's list (0 = scenario as-is; requires -online)")
	traceRecord := flag.String("trace-record", "", "write the arrival stream as a JSONL trace to this file before running (requires -online)")
	traceReplay := flag.String("trace-replay", "", "replay a recorded JSONL arrival trace instead of generating a stream (requires -online)")
	seed := flag.Int64("seed", 42, "random seed")
	emitMetrics := flag.Bool("metrics", false, "collect and print an observability snapshot (implies -online)")
	metricsJSON := flag.Bool("metrics-json", false, "print the -metrics snapshot as JSON instead of text")
	metricsVolatile := flag.Bool("metrics-volatile", false, "include wall-clock (non-deterministic) sections in the -metrics snapshot")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON of the online run to this file (requires -online)")
	timelineOut := flag.String("timeline-out", "", "write the deterministic span timeline of the online run to this file (requires -online)")
	edpReport := flag.Bool("edp-report", false, "print the per-job / per-class EDP attribution report after the online run (requires -online)")
	qualityReport := flag.Bool("quality-report", false, "print the decision-quality report (confusion, STP error, regret, drift) after the online run (requires -online)")
	serveAddr := flag.String("serve", "", "serve /metrics, /trace, /report, /decisions, /quality, and /debug/pprof/ on this address during and after the online run (requires -online)")
	shards := flag.Int("shards", 1, "partition the online cluster into this many per-shard schedulers with hash-routed submissions (requires -online; 1 = the single control plane)")
	steal := flag.Bool("steal", false, "let idle shards steal queued jobs at event barriers (requires -shards 2+)")
	flightOut := flag.String("flight-out", "", "write the flight recorder's anomaly-triggered epoch dumps as JSONL to this file after the run (requires -shards 2+; epoch records need every global event time, so the recorder pins the exact barrier cadence instead of eliding barriers)")
	healthReport := flag.Bool("health-report", false, "print the shard-health report (steal flow, fairness, queue slope, power skew) after the run (requires -shards 2+)")
	logLevel := flag.String("log-level", "warn", "log verbosity: debug, info, warn, error")
	flag.Parse()

	if err := cliutil.SetupLogging(os.Stderr, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "ecost-sim:", err)
		os.Exit(cliutil.ExitUsage)
	}
	if *emitMetrics && !*online {
		slog.Warn("-metrics instruments the online scheduler; enabling -online")
		*online = true
	}
	genMode := strings.HasPrefix(*scenarioFlag, "gen:")
	if genMode && !*online {
		slog.Warn("gen: scenarios drive the online scheduler; enabling -online")
		*online = true
	}
	shardsSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "shards" {
			shardsSet = true
		}
	})
	rf := runFlags{
		Online:          *online,
		Nodes:           *nodes,
		Jobs:            *jobs,
		Arrival:         *arrival,
		ScenarioGen:     genMode,
		Arrivals:        *arrivalsFlag,
		TraceRecord:     *traceRecord,
		TraceReplay:     *traceReplay,
		Metrics:         *emitMetrics,
		MetricsJSON:     *metricsJSON,
		MetricsVolatile: *metricsVolatile,
		TraceOut:        *traceOut,
		TimelineOut:     *timelineOut,
		EDPReport:       *edpReport,
		QualityReport:   *qualityReport,
		ServeAddr:       *serveAddr,
		FlightOut:       *flightOut,
		HealthReport:    *healthReport,
		Shards:          *shards,
		ShardsSet:       shardsSet,
		Steal:           *steal,
	}
	if msg := rf.contradiction(); msg != "" {
		cliutil.Usagef(msg)
	}
	if msg := rf.unwritableOutput(); msg != "" {
		cliutil.Usagef(msg)
	}

	var wl core.Workload
	if !genMode && *traceReplay == "" {
		var err error
		wl, err = core.Scenario(*scenarioFlag)
		if err != nil {
			cliutil.Usagef("bad -scenario", "err", err)
		}
		fmt.Printf("scenario %s %s\n%s\n\n", wl.Name, wl.ClassSignature(), wl.AppSignature())
	}

	slog.Info("building environment (database + models)")
	env, err := experiments.NewEnv(experiments.FastOptions())
	if err != nil {
		cliutil.Fatalf("building environment failed", "err", err)
	}

	if *online {
		arrivals, header, perJobTable := buildStream(wl, genMode, *scenarioFlag, *arrivalsFlag, *traceReplay, *jobs, *arrival, *seed, *nodes)
		if *traceRecord != "" {
			if err := writeArtifact(*traceRecord, func(w io.Writer) error {
				return scenario.WriteTrace(w, arrivals)
			}); err != nil {
				cliutil.Fatalf("writing -trace-record failed", "err", err)
			}
			slog.Info("recorded arrival trace", "path", *traceRecord, "arrivals", len(arrivals))
		}
		if *shards > 1 {
			runOnlineSharded(env, *nodes, *shards, *steal, arrivals, header, perJobTable, shardedOut{
				metrics:         *emitMetrics,
				metricsJSON:     *metricsJSON,
				metricsVolatile: *metricsVolatile,
				traceOut:        *traceOut,
				timelineOut:     *timelineOut,
				edpReport:       *edpReport,
				qualityReport:   *qualityReport,
				serveAddr:       *serveAddr,
				flightOut:       *flightOut,
				healthReport:    *healthReport,
			})
			return
		}
		var reg *metrics.Registry
		if *emitMetrics || *serveAddr != "" {
			reg = metrics.NewRegistry()
		}
		eng := sim.NewEngine()
		var tr *tracing.Tracer
		if *traceOut != "" || *timelineOut != "" || *edpReport || *serveAddr != "" {
			tr = tracing.New(eng.Clock())
		}
		var aud *audit.Log
		if *qualityReport || *serveAddr != "" {
			aud = audit.NewLog(audit.DriftConfig{})
		}
		qualityOracle := core.NewAuditOracle(env.Oracle)
		var srv *http.Server
		if *serveAddr != "" {
			ln, err := net.Listen("tcp", *serveAddr)
			if err != nil {
				cliutil.Fatalf("-serve listen failed", "err", err)
			}
			srv = &http.Server{Handler: newServeMux(serveSources{
				regs:     []*metrics.Registry{reg},
				trs:      []*tracing.Tracer{tr},
				auds:     []*audit.Log{aud},
				qo:       qualityOracle,
				volatile: *metricsVolatile,
			})}
			go func() {
				if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
					slog.Error("observability server failed", "err", err)
				}
			}()
			fmt.Fprintf(os.Stderr, "serving observability endpoints on http://%s/\n", ln.Addr())
		}
		runOnline(env, eng, tr, aud, *nodes, arrivals, reg, header, perJobTable)
		if *traceOut != "" {
			if err := writeArtifact(*traceOut, tr.WriteChromeTrace); err != nil {
				cliutil.Fatalf("writing -trace-out failed", "err", err)
			}
			slog.Info("wrote Chrome trace", "path", *traceOut)
		}
		if *timelineOut != "" {
			if err := writeArtifact(*timelineOut, tr.WriteTimeline); err != nil {
				cliutil.Fatalf("writing -timeline-out failed", "err", err)
			}
			slog.Info("wrote span timeline", "path", *timelineOut)
		}
		if *edpReport {
			fmt.Println()
			if err := tr.Report().WriteText(os.Stdout); err != nil {
				cliutil.Fatalf("writing -edp-report failed", "err", err)
			}
		}
		if *qualityReport {
			fmt.Println()
			if err := aud.Quality(qualityOracle).WriteText(os.Stdout); err != nil {
				cliutil.Fatalf("writing -quality-report failed", "err", err)
			}
		}
		if *emitMetrics {
			fmt.Println()
			snap := reg.Snapshot(*metricsVolatile)
			var werr error
			if *metricsJSON {
				werr = snap.WriteJSON(os.Stdout)
			} else {
				werr = snap.WriteText(os.Stdout)
			}
			if werr != nil {
				cliutil.Fatalf("writing -metrics snapshot failed", "err", werr)
			}
		}
		if srv != nil {
			fmt.Fprintln(os.Stderr, "run finished; endpoints stay up — interrupt (Ctrl-C) to exit")
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
			<-ctx.Done()
			stop()
			srv.Close()
		}
		return
	}

	var pol core.Policy
	found := false
	for _, p := range core.Policies() {
		if p.String() == *policy {
			pol, found = p, true
		}
	}
	if !found {
		cliutil.Usagef("unknown -policy", "policy", *policy)
	}
	runner := &core.PolicyRunner{Oracle: env.Oracle, DB: env.DB, Tuner: env.LkT, Profiler: env.Profiler}
	res, err := runner.Run(pol, wl, *nodes)
	if err != nil {
		cliutil.Fatalf("policy run failed", "policy", pol.String(), "err", err)
	}
	ub, err := runner.Run(core.UB, wl, *nodes)
	if err != nil {
		cliutil.Fatalf("UB baseline run failed", "err", err)
	}
	fmt.Printf("policy %v on %d node(s):\n", pol, *nodes)
	fmt.Printf("  makespan  %.0f s\n", res.Makespan)
	fmt.Printf("  energy    %.0f J\n", res.EnergyJ)
	fmt.Printf("  EDP       %.4g J·s\n", res.EDP)
	fmt.Printf("  vs UB     %.2fx (UB EDP %.4g)\n", res.EDP/ub.EDP, ub.EDP)
}

// writeArtifact streams one exporter into a freshly created file.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// buildStream resolves the online arrival stream from the three
// sources, in precedence order: a replayed JSONL trace, a generated
// gen: scenario, or the named workload cycled through
// scenario.FromWorkload (the -jobs path; 0 keeps the scenario as-is).
// It returns the stream, the run header, and whether the per-job
// completion table should be printed (plain workload runs only —
// stream runs report queueing observables instead).
func buildStream(wl core.Workload, genMode bool, scenarioFlag, arrivalsFlag, traceReplay string, jobs int, arrival float64, seed int64, nodes int) ([]trace.Arrival, string, bool) {
	if traceReplay != "" {
		f, err := os.Open(traceReplay)
		if err != nil {
			cliutil.Fatalf("opening -trace-replay failed", "err", err)
		}
		arrivals, err := scenario.ReadTrace(f)
		f.Close()
		if err != nil {
			cliutil.Fatalf("reading -trace-replay failed", "err", err)
		}
		header := fmt.Sprintf("online ECoST on %d node(s), replaying %s (%d arrivals):", nodes, traceReplay, len(arrivals))
		return arrivals, header, false
	}
	if genMode {
		spec, err := scenario.ParseSpec(scenarioFlag)
		if err != nil {
			cliutil.Usagef("bad -scenario gen: spec", "err", err)
		}
		spec.Seed = seed
		if arrivalsFlag != "" {
			spec.Arrivals, err = scenario.ParseArrivals(arrivalsFlag)
			if err != nil {
				cliutil.Usagef("bad -arrivals", "err", err)
			}
		}
		arrivals, err := scenario.Generate(spec)
		if err != nil {
			cliutil.Usagef("bad -scenario gen: spec", "err", err)
		}
		header := fmt.Sprintf("online ECoST on %d node(s), scenario %s, seed %d:", nodes, spec.String(), seed)
		return arrivals, header, false
	}
	arrivals, err := scenario.FromWorkload(wl, jobs, arrival, seed)
	if err != nil {
		cliutil.Fatalf("building workload stream failed", "err", err)
	}
	header := fmt.Sprintf("online ECoST on %d node(s), mean inter-arrival %.0fs:", nodes, arrival)
	return arrivals, header, jobs == 0
}

func runOnline(env *experiments.Env, eng *sim.Engine, tr *tracing.Tracer, aud *audit.Log, nodes int, arrivals []trace.Arrival, reg *metrics.Registry, header string, perJobTable bool) {
	model := mapreduce.NewModel(cluster.AtomC2758())
	// Recurring jobs re-ask the tuner the same question; the memo cache
	// answers repeats in one lookup. MeteredSTP unwraps it for the
	// deterministic scan-size metric and the hit/miss counters are
	// volatile, so -metrics snapshots are byte-identical either way.
	memo := core.NewMemoSTP(env.LkT, reg)
	var tuner core.STP = memo
	if reg != nil {
		// The model here is private to the online run, so steady-state
		// telemetry stays scoped to it; the STP wrapper adds prediction
		// counters and the predicted-vs-realized EDP error.
		model.Metrics = reg
		tuner = core.NewMeteredSTP(memo, model, reg)
	}
	sched, err := core.NewOnlineScheduler(eng, model, env.DB, tuner, env.Profiler, nodes)
	if err != nil {
		cliutil.Fatalf("building online scheduler failed", "err", err)
	}
	sched.SetMetrics(reg)
	sched.SetTracer(tr)
	sched.SetAudit(aud)
	for _, a := range arrivals {
		sched.Submit(a.App, a.SizeGB, a.At)
	}
	trace.Record(arrivals, reg)
	makespan, energy, err := sched.Run()
	if err != nil {
		cliutil.Fatalf("online run failed", "err", err)
	}
	fmt.Println(header)
	fmt.Printf("  makespan %.0f s, energy %.0f J, EDP %.4g J·s\n\n", makespan, energy, energy*makespan)
	done := sched.Completed()
	if !perJobTable {
		fmt.Printf("%d jobs completed\n", len(done))
		qs := experiments.StreamStats(done, nodes, makespan)
		fmt.Printf("  utilization        %.3f\n", qs.Utilization)
		fmt.Printf("  queue length       mean %.2f, p95 %.0f, max %d\n", qs.MeanQueueLen, qs.P95QueueLen, qs.MaxQueueLen)
		fmt.Printf("  wait p50/p95/p99   %.1f / %.1f / %.1f s\n", qs.WaitP50, qs.WaitP95, qs.WaitP99)
		fmt.Printf("  sojourn p50/p95/p99 %.1f / %.1f / %.1f s\n", qs.SojournP50, qs.SojournP95, qs.SojournP99)
		return
	}
	fmt.Printf("%-4s %-5s %-6s %-5s %9s %9s %9s %5s %s\n",
		"id", "app", "class", "size", "submit", "start", "finish", "node", "config")
	for _, c := range done {
		fmt.Printf("%-4d %-5s %-6v %4.0fG %9.0f %9.0f %9.0f %5d %v\n",
			c.ID, c.App, c.Class, c.SizeGB, c.Submitted, c.Started, c.Finished, c.Node, c.Cfg)
	}
}
